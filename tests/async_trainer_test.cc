#include "dlrm/async_trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/dense_kernels.h"
#include "dlrm/metrics.h"

namespace dlrover {
namespace {

AsyncTrainerOptions SmallRun(uint64_t seed) {
  AsyncTrainerOptions options;
  options.num_workers = 6;
  options.batch_size = 64;
  options.total_batches = 600;
  options.learning_rate = 0.12;
  options.shard_batches = 12;
  options.eval_every_batches = 200;
  options.seed = seed;
  return options;
}

MiniDlrmConfig SmallModel() {
  MiniDlrmConfig config;
  config.arch = ModelKind::kWideDeep;
  config.emb_dim = 6;
  config.hash_buckets = 1024;
  config.mlp_hidden = {16, 8};
  config.seed = 5;
  return config;
}

TEST(AsyncTrainerTest, TrainsEveryBatchExactlyOnceWithoutEvents) {
  MiniDlrm model(SmallModel());
  CriteoSynth data(31);
  AsyncPsTrainer trainer(&model, &data, SmallRun(1));
  const TrainResult result = trainer.Run();
  EXPECT_EQ(result.batches_committed, 600u);
  EXPECT_EQ(result.batches_duplicated, 0u);
  EXPECT_EQ(result.batches_skipped, 0u);
  for (uint8_t times : result.times_trained) EXPECT_EQ(times, 1);
}

class ElasticExactlyOnceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ElasticExactlyOnceTest, DynamicShardingExactlyOnceUnderEvents) {
  MiniDlrm model(SmallModel());
  CriteoSynth data(31);
  AsyncTrainerOptions options = SmallRun(GetParam());
  options.data_mode = DataMode::kDynamicSharding;
  options.events = {
      {100, ElasticEvent::Kind::kAddWorkers, 3, 0.0},
      {220, ElasticEvent::Kind::kCrashWorker, 1, 0.0},
      {320, ElasticEvent::Kind::kMakeStraggler, 1, 0.05},
      {450, ElasticEvent::Kind::kRemoveWorkers, 2, 0.0},
  };
  AsyncPsTrainer trainer(&model, &data, options);
  const TrainResult result = trainer.Run();
  EXPECT_EQ(result.batches_committed, 600u);
  EXPECT_EQ(result.batches_duplicated, 0u);
  EXPECT_EQ(result.batches_skipped, 0u);
  for (size_t i = 0; i < result.times_trained.size(); ++i) {
    EXPECT_EQ(result.times_trained[i], 1) << "batch " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElasticExactlyOnceTest,
                         ::testing::Values(1, 7, 42, 1234));

TEST(AsyncTrainerTest, NaiveStaticElasticityDuplicatesOrSkips) {
  MiniDlrm model(SmallModel());
  CriteoSynth data(31);
  AsyncTrainerOptions options = SmallRun(3);
  options.data_mode = DataMode::kStaticPartition;
  options.events = {
      {100, ElasticEvent::Kind::kAddWorkers, 3, 0.0},
      {220, ElasticEvent::Kind::kCrashWorker, 1, 0.0},
  };
  AsyncPsTrainer trainer(&model, &data, options);
  const TrainResult result = trainer.Run();
  EXPECT_GT(result.batches_duplicated + result.batches_skipped, 0u)
      << "naive re-partitioning should disturb the data sequence";
}

TEST(AsyncTrainerTest, ElasticRunMatchesBaselineConvergence) {
  // The Fig 8 property as a test: final held-out logloss under elastic
  // events with dynamic sharding stays close to the undisturbed baseline.
  CriteoSynth data(99);
  auto run = [&](DataMode mode, bool events) {
    MiniDlrm model(SmallModel());
    AsyncTrainerOptions options = SmallRun(17);
    options.total_batches = 1200;
    options.data_mode = mode;
    if (events) {
      options.events = {
          {200, ElasticEvent::Kind::kAddWorkers, 4, 0.0},
          {500, ElasticEvent::Kind::kCrashWorker, 1, 0.0},
          {800, ElasticEvent::Kind::kRemoveWorkers, 3, 0.0},
      };
    }
    AsyncPsTrainer trainer(&model, &data, options);
    return trainer.Run();
  };
  const TrainResult baseline = run(DataMode::kStaticPartition, false);
  const TrainResult elastic = run(DataMode::kDynamicSharding, true);
  EXPECT_LT(std::fabs(elastic.final_logloss - baseline.final_logloss), 0.02);
  EXPECT_LT(std::fabs(elastic.final_auc - baseline.final_auc), 0.03);
}

TEST(AsyncTrainerTest, ThreadsModeTrainsEveryBatchExactlyOnce) {
  MiniDlrm model(SmallModel());
  CriteoSynth data(31);
  AsyncTrainerOptions options = SmallRun(1);
  options.exec_mode = ExecMode::kThreads;
  options.num_threads = 4;
  AsyncPsTrainer trainer(&model, &data, options);
  const TrainResult result = trainer.Run();
  EXPECT_EQ(result.batches_committed, 600u);
  EXPECT_EQ(result.batches_duplicated, 0u);
  EXPECT_EQ(result.batches_skipped, 0u);
  for (uint8_t times : result.times_trained) EXPECT_EQ(times, 1);
}

TEST(AsyncTrainerTest, ThreadsModeExactlyOnceUnderElasticEvents) {
  MiniDlrm model(SmallModel());
  CriteoSynth data(31);
  AsyncTrainerOptions options = SmallRun(7);
  options.exec_mode = ExecMode::kThreads;
  options.num_threads = 4;
  options.straggler_stall_us = 50;  // keep the injected stall test-sized
  options.events = {
      {100, ElasticEvent::Kind::kAddWorkers, 3, 0.0},
      {220, ElasticEvent::Kind::kCrashWorker, 1, 0.0},
      {320, ElasticEvent::Kind::kMakeStraggler, 1, 0.05},
      {450, ElasticEvent::Kind::kRemoveWorkers, 2, 0.0},
  };
  AsyncPsTrainer trainer(&model, &data, options);
  const TrainResult result = trainer.Run();
  EXPECT_EQ(result.batches_committed, 600u);
  EXPECT_EQ(result.batches_duplicated, 0u);
  EXPECT_EQ(result.batches_skipped, 0u);
  for (size_t i = 0; i < result.times_trained.size(); ++i) {
    EXPECT_EQ(result.times_trained[i], 1) << "batch " << i;
  }
}

TEST(AsyncTrainerTest, ThreadsModeConvergesLikeTickMode) {
  // Tick-vs-threads parity across pool widths: real async interleaving
  // changes the exact floats but must not change what the model learns.
  // Same data, same budget; final held-out metrics within tolerance at
  // every thread count (this drives the per-worker accumulator + batched
  // gather/scatter hot path at 1, 2, 4 and hardware_concurrency threads).
  CriteoSynth data(99);
  auto run = [&](ExecMode mode, int threads) {
    MiniDlrm model(SmallModel());
    AsyncTrainerOptions options = SmallRun(17);
    options.total_batches = 1200;
    options.exec_mode = mode;
    options.num_threads = threads;
    AsyncPsTrainer trainer(&model, &data, options);
    return trainer.Run();
  };
  const TrainResult ticks = run(ExecMode::kTicks, 0);
  std::vector<int> widths = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) widths.push_back(hw);
  for (int threads : widths) {
    const TrainResult result = run(ExecMode::kThreads, threads);
    EXPECT_EQ(result.batches_committed, ticks.batches_committed)
        << threads << " threads";
    EXPECT_LT(std::fabs(result.final_logloss - ticks.final_logloss), 0.02)
        << threads << " threads";
    EXPECT_LT(std::fabs(result.final_auc - ticks.final_auc), 0.03)
        << threads << " threads";
    EXPECT_LT(result.curve.back().test_logloss,
              result.curve.front().test_logloss)
        << threads << " threads";
    // Phase accounting covers every committed batch.
    EXPECT_EQ(result.phases.batches, result.batches_committed)
        << threads << " threads";
    EXPECT_GT(result.phases.BusySeconds(), 0.0) << threads << " threads";
  }
}

TEST(AsyncTrainerTest, ThreadsModeConvergesWithSimdKernels) {
  // The SIMD kernels reassociate reductions, so floats differ from scalar —
  // but learning must not. Run the threaded trainer under kSimd and demand
  // tick-mode-equivalent held-out metrics. No-op (scalar fallback) on
  // hardware without AVX2+FMA.
  const DenseKernelMode applied = SetDenseKernelMode(DenseKernelMode::kSimd);
  CriteoSynth data(99);
  auto run = [&](ExecMode mode) {
    MiniDlrm model(SmallModel());
    AsyncTrainerOptions options = SmallRun(17);
    options.total_batches = 1200;
    options.exec_mode = mode;
    options.num_threads = 4;
    AsyncPsTrainer trainer(&model, &data, options);
    return trainer.Run();
  };
  const TrainResult ticks = run(ExecMode::kTicks);
  const TrainResult threads = run(ExecMode::kThreads);
  SetDenseKernelMode(DenseKernelMode::kScalar);
  if (applied != DenseKernelMode::kSimd) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA; SIMD path not exercised";
  }
  EXPECT_EQ(threads.batches_committed, ticks.batches_committed);
  EXPECT_LT(std::fabs(threads.final_logloss - ticks.final_logloss), 0.02);
  EXPECT_LT(std::fabs(threads.final_auc - ticks.final_auc), 0.03);
}

TEST(AsyncTrainerTest, CurveIsRecordedAndLossImproves) {
  MiniDlrm model(SmallModel());
  CriteoSynth data(55);
  AsyncTrainerOptions options = SmallRun(9);
  options.total_batches = 1500;
  AsyncPsTrainer trainer(&model, &data, options);
  const TrainResult result = trainer.Run();
  ASSERT_GE(result.curve.size(), 3u);
  EXPECT_LT(result.curve.back().test_logloss,
            result.curve.front().test_logloss);
  EXPECT_GT(result.final_auc, 0.55);
}

}  // namespace
}  // namespace dlrover
