// Scaling regression gate (ctest label `perf-smoke`): a reduced version of
// bench_micro_train_throughput's thread sweep with a pass/fail line. On
// machines with >= 4 hardware threads it fails if 4-thread parallel
// efficiency drops below 0.5 — the regression the sharded commit path
// exists to prevent (a single coarse store mutex measures ~0.25 here). On
// smaller machines the efficiency gate skips honestly, but the structural
// invariants of the parallel hot path (phase accounting covers every
// committed batch, every width converges) still run everywhere.
//
// Run just this gate with `ctest -L perf-smoke`.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "dlrm/async_trainer.h"
#include "dlrm/criteo_synth.h"
#include "dlrm/mini_dlrm.h"

namespace dlrover {
namespace {

struct SweepPoint {
  int threads = 0;
  double samples_per_sec = 0.0;
  TrainResult result;
};

MiniDlrmConfig ModelConfig() {
  MiniDlrmConfig config;
  config.arch = ModelKind::kWideDeep;
  config.emb_dim = 8;
  config.hash_buckets = 4096;
  config.mlp_hidden = {32, 16};
  config.seed = 17;
  return config;
}

AsyncTrainerOptions TrainerOptions(int threads) {
  AsyncTrainerOptions options;
  options.exec_mode = ExecMode::kThreads;
  options.num_workers = threads;
  options.num_threads = threads;
  options.batch_size = 64;
  options.total_batches = 400;
  options.shard_batches = 8;
  options.learning_rate = 0.05;
  options.eval_every_batches = 0xffffffff;  // no mid-run evals: pure hot loop
  options.eval_size = 512;
  options.seed = 29;
  return options;
}

SweepPoint RunPoint(int threads) {
  MiniDlrm model{ModelConfig()};
  CriteoSynth data(41);
  const AsyncTrainerOptions options = TrainerOptions(threads);
  AsyncPsTrainer trainer(&model, &data, options);
  const auto t0 = std::chrono::steady_clock::now();
  SweepPoint point;
  point.threads = threads;
  point.result = trainer.Run();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  point.samples_per_sec =
      static_cast<double>(point.result.batches_committed * options.batch_size) /
      std::max(elapsed, 1e-9);
  return point;
}

void CheckStructuralInvariants(const SweepPoint& point) {
  SCOPED_TRACE(::testing::Message() << "threads=" << point.threads);
  const AsyncTrainerOptions options = TrainerOptions(point.threads);
  EXPECT_EQ(point.result.batches_committed, options.total_batches);
  // Phase accounting must cover exactly the committed batches and report
  // nonzero busy time — the bench's breakdown is only trustworthy if so.
  EXPECT_EQ(point.result.phases.batches, point.result.batches_committed);
  EXPECT_GT(point.result.phases.pull_s, 0.0);
  EXPECT_GT(point.result.phases.compute_s, 0.0);
  EXPECT_GT(point.result.phases.push_s, 0.0);
  EXPECT_GT(point.result.phases.BusySeconds(), 0.0);
  // The model must actually learn: an untrained WideDeep sits near 0.69
  // logloss (ln 2) and AUC 0.5 on the synthetic distribution.
  EXPECT_LT(point.result.final_logloss, 0.6);
  EXPECT_GT(point.result.final_auc, 0.6);
}

TEST(PerfSmokeTest, ParallelHotPathStructure) {
  // Runs everywhere, any core count: the 1-thread point plus — where the
  // hardware can actually interleave — a contended 2-thread point.
  std::vector<int> widths = {1};
  if (std::thread::hardware_concurrency() >= 2) widths.push_back(2);
  for (int threads : widths) {
    CheckStructuralInvariants(RunPoint(threads));
  }
}

TEST(PerfSmokeTest, FourThreadEfficiencyAboveHalf) {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have " << hw
                 << ": thread scaling cannot manifest on this machine";
  }
  // Best-of-two per width to shave scheduler noise; the gate sits at 0.5,
  // roughly half of what the sharded path achieves on idle 4-core machines
  // and about double what a single coarse store lock allows.
  auto best = [](int threads) {
    const SweepPoint a = RunPoint(threads);
    const SweepPoint b = RunPoint(threads);
    return std::max(a.samples_per_sec, b.samples_per_sec);
  };
  const double one = best(1);
  const double four = best(4);
  ASSERT_GT(one, 0.0);
  const double efficiency = four / (4.0 * one);
  RecordProperty("samples_per_sec_1t", one);
  RecordProperty("samples_per_sec_4t", four);
  RecordProperty("efficiency_4t", efficiency);
  EXPECT_GE(efficiency, 0.5)
      << "4-thread parallel efficiency " << efficiency
      << " (1t=" << one << " samples/s, 4t=" << four
      << " samples/s): the commit path is serializing the hot loop";
}

}  // namespace
}  // namespace dlrover
