#include "dlrm/criteo_synth.h"

#include <gtest/gtest.h>

#include <map>

#include "common/stats.h"
#include "dlrm/metrics.h"

namespace dlrover {
namespace {

TEST(CriteoSynthTest, RandomAccessIsDeterministic) {
  CriteoSynth a(42);
  CriteoSynth b(42);
  for (uint64_t i : {0ull, 1ull, 999ull, 123456789ull}) {
    const CriteoSample sa = a.Sample(i);
    const CriteoSample sb = b.Sample(i);
    EXPECT_EQ(sa.cats, sb.cats);
    EXPECT_EQ(sa.dense, sb.dense);
    EXPECT_EQ(sa.label, sb.label);
  }
  // Access order does not matter.
  const CriteoSample late_first = CriteoSynth(42).Sample(999);
  EXPECT_EQ(late_first.cats, a.Sample(999).cats);
}

TEST(CriteoSynthTest, DifferentSeedsDiffer) {
  CriteoSynth a(1);
  CriteoSynth b(2);
  int identical = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    if (a.Sample(i).cats == b.Sample(i).cats) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(CriteoSynthTest, ShapeAndRanges) {
  CriteoSynth data(7);
  const CriteoBatch batch = data.Batch(100, 256);
  ASSERT_EQ(batch.size(), 256u);
  for (const CriteoSample& sample : batch.samples) {
    ASSERT_EQ(sample.dense.size(),
              static_cast<size_t>(CriteoSynth::kNumDense));
    ASSERT_EQ(sample.cats.size(),
              static_cast<size_t>(CriteoSynth::kNumCategorical));
    for (int f = 0; f < CriteoSynth::kNumCategorical; ++f) {
      EXPECT_LT(sample.cats[static_cast<size_t>(f)], data.VocabSize(f));
    }
    for (float d : sample.dense) EXPECT_GE(d, 0.0f);  // log1p of positives
    EXPECT_TRUE(sample.label == 0.0f || sample.label == 1.0f);
  }
}

TEST(CriteoSynthTest, CategoricalIdsAreSkewed) {
  CriteoSynth data(9);
  std::map<uint64_t, int> counts;
  for (uint64_t i = 0; i < 4000; ++i) {
    ++counts[data.Sample(i).cats[0]];
  }
  int max_count = 0;
  for (const auto& [id, count] : counts) max_count = std::max(max_count, count);
  // Power-law ids: the hottest id is far above uniform expectation.
  EXPECT_GT(max_count, 40);
}

TEST(CriteoSynthTest, LabelsFollowTeacherProbabilities) {
  CriteoSynth data(11);
  RunningStat click_rate;
  RunningStat teacher_rate;
  for (uint64_t i = 0; i < 20000; ++i) {
    const CriteoSample sample = data.Sample(i);
    click_rate.Add(sample.label);
    teacher_rate.Add(data.TeacherProbability(sample));
  }
  EXPECT_NEAR(click_rate.mean(), teacher_rate.mean(), 0.01);
  // CTR-like base rate: strictly between degenerate extremes.
  EXPECT_GT(click_rate.mean(), 0.05);
  EXPECT_LT(click_rate.mean(), 0.6);
}

TEST(CriteoSynthTest, TeacherIsLearnableSignal) {
  // The Bayes-optimal scores (teacher probabilities) must separate the
  // classes well; otherwise the Fig 8 experiment would measure noise.
  CriteoSynth data(13);
  std::vector<double> scores;
  std::vector<float> labels;
  for (uint64_t i = 0; i < 8000; ++i) {
    const CriteoSample sample = data.Sample(i);
    scores.push_back(data.TeacherProbability(sample));
    labels.push_back(sample.label);
  }
  EXPECT_GT(Auc(scores, labels), 0.72);
}

}  // namespace
}  // namespace dlrover
