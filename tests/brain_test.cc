#include "brain/brain.h"

#include <gtest/gtest.h>

#include "brain/greedy_selector.h"
#include "brain/objectives.h"
#include "brain/plan_generator.h"
#include "brain/warm_start.h"
#include "cluster/cluster.h"
#include "harness/experiment.h"
#include "ps/iteration_model.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

JobMetadata Meta(ModelKind model, const std::string& user,
                 uint64_t steps = 200000, Bytes bytes = GiB(10)) {
  JobMetadata meta;
  meta.user = user;
  meta.model = model;
  meta.total_steps = steps;
  meta.declared_model_bytes = bytes;
  return meta;
}

TEST(ConfigDbTest, SimilarityOrdersSensibly) {
  const JobMetadata query = Meta(ModelKind::kWideDeep, "alice");
  const JobMetadata same = Meta(ModelKind::kWideDeep, "alice");
  const JobMetadata other_user = Meta(ModelKind::kWideDeep, "bob");
  const JobMetadata other_model = Meta(ModelKind::kDcn, "alice");
  EXPECT_GT(ConfigDb::Similarity(query, same),
            ConfigDb::Similarity(query, other_user));
  EXPECT_GT(ConfigDb::Similarity(query, other_user),
            ConfigDb::Similarity(query, other_model));
}

TEST(ConfigDbTest, TopKReturnsMostSimilarLast) {
  ConfigDb db;
  for (int i = 0; i < 5; ++i) {
    JobRecord record;
    record.meta = Meta(ModelKind::kDcn, "bob");
    record.final_config.num_workers = 10 + i;
    db.Insert(record);
  }
  JobRecord best;
  best.meta = Meta(ModelKind::kWideDeep, "alice");
  best.final_config.num_workers = 99;
  db.Insert(best);

  const auto top = db.TopKSimilar(Meta(ModelKind::kWideDeep, "alice"), 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top.back().final_config.num_workers, 99);
}

TEST(ConfigDbTest, SkipsFailedRecords) {
  ConfigDb db;
  JobRecord failed;
  failed.meta = Meta(ModelKind::kWideDeep, "alice");
  failed.completed = false;
  db.Insert(failed);
  EXPECT_TRUE(db.TopKSimilar(Meta(ModelKind::kWideDeep, "alice"), 3).empty());
}

TEST(WarmStartTest, ExponentialSmoothingMatchesHandComputation) {
  // Two records: A0 (less similar, w=10), A1 (most similar, w=20).
  // mu=0.5: smoothed = 0.5*20 + 0.5*10 = 15.
  ConfigDb db;
  JobRecord less;
  less.meta = Meta(ModelKind::kWideDeep, "bob");  // lower similarity
  less.final_config.num_workers = 10;
  less.final_config.num_ps = 2;
  db.Insert(less);
  JobRecord more;
  more.meta = Meta(ModelKind::kWideDeep, "alice");
  more.final_config.num_workers = 20;
  more.final_config.num_ps = 4;
  db.Insert(more);

  WarmStartOptions options;
  options.top_k = 2;
  options.mu = 0.5;
  const JobConfig result =
      WarmStartConfig(db, Meta(ModelKind::kWideDeep, "alice"), options);
  EXPECT_EQ(result.num_workers, 15);
  EXPECT_EQ(result.num_ps, 3);
}

TEST(WarmStartTest, FallsBackToDefaultOnEmptyDb) {
  ConfigDb db;
  WarmStartOptions options;
  options.default_config.num_workers = 7;
  const JobConfig result =
      WarmStartConfig(db, Meta(ModelKind::kWideDeep, "x"), options);
  EXPECT_EQ(result.num_workers, 7);
}

TEST(ObjectivesTest, ResourceCostIsLinear) {
  PriceTable prices;
  prices.cpu_core_hour = 1.0;
  prices.mem_gib_hour = 0.5;
  JobConfig config;
  config.num_workers = 2;
  config.num_ps = 1;
  config.worker_cpu = 4.0;
  config.ps_cpu = 2.0;
  config.worker_memory = GiB(8);
  config.ps_memory = GiB(4);
  // CPU: 2*4 + 1*2 = 10; mem: 2*8 + 4 = 20 GiB.
  EXPECT_DOUBLE_EQ(ResourceCost(config, prices), 10.0 + 10.0);
}

TEST(ObjectivesTest, ThroughputGainSubtractsAmortizedOverhead) {
  ThroughputGainOptions options;
  options.amortization_horizon = 100.0;
  // delta = 50; penalty = 10s * 150/100 = 15.
  EXPECT_DOUBLE_EQ(ThroughputGain(100.0, 150.0, 10.0, options), 35.0);
  EXPECT_DOUBLE_EQ(ThroughputGain(100.0, 150.0, 0.0, options), 50.0);
}

TEST(ObjectivesTest, PriorityWeightFavorsShortJobs) {
  WeightOptions options;
  options.rho = 2.5;
  const double short_job = PriorityWeight(1000.0, 100.0, options);
  const double long_job = PriorityWeight(1000000.0, 100.0, options);
  EXPECT_GT(short_job, long_job);
  // rho = 0: weights become equal.
  options.rho = 0.0;
  EXPECT_DOUBLE_EQ(PriorityWeight(1000.0, 100.0, options),
                   PriorityWeight(1000000.0, 100.0, options));
}

TEST(ObjectivesTest, OverheadModelPrefersSeamless) {
  ScalingOverheadModel model;
  JobConfig from;
  from.num_workers = 8;
  from.num_ps = 2;
  JobConfig to = from;
  to.num_ps = 4;
  const Bytes bytes = GiB(10);
  const Duration seamless =
      model.Estimate(from, to, MigrationMode::kSeamless, true, bytes);
  const Duration restart =
      model.Estimate(from, to, MigrationMode::kStopAndRestart, false, bytes);
  EXPECT_LT(seamless, restart / 10.0);
  EXPECT_DOUBLE_EQ(model.Estimate(from, from, MigrationMode::kSeamless,
                                  true, bytes),
                   0.0);
  // Worker-count-only seamless scaling has no checkpoint handoff at all;
  // both seamless variants are well under a minute.
  JobConfig more_workers = from;
  more_workers.num_workers = 12;
  EXPECT_LT(model.Estimate(from, more_workers, MigrationMode::kSeamless,
                           true, bytes),
            Seconds(30));
  EXPECT_LT(seamless, Seconds(30));
}

TEST(GreedySelectorTest, RespectsBudget) {
  JobPlanRequest request;
  request.job_id = 1;
  request.current.num_workers = 2;
  request.current.num_ps = 1;
  request.current.worker_cpu = 4;
  request.current.ps_cpu = 4;
  request.current.worker_memory = GiB(4);
  request.current.ps_memory = GiB(4);

  PlanCandidate big;
  big.config = request.current;
  big.config.num_workers = 100;  // needs ~400 extra cores
  big.throughput_gain = 1000.0;
  big.resource_efficiency = 10.0;
  big.weight = 1.0;
  request.candidates = {big};

  // Budget has no headroom beyond the current allocation.
  const ResourceSpec budget = request.current.TotalResources();
  const auto selected = GreedySelector::Select({request}, budget);
  EXPECT_TRUE(selected.empty());
}

TEST(GreedySelectorTest, PicksHighestWeightedEfficiency) {
  auto make_request = [](uint64_t id, double re, double wg) {
    JobPlanRequest request;
    request.job_id = id;
    request.current.num_workers = 2;
    request.current.num_ps = 1;
    PlanCandidate plan;
    plan.config = request.current;
    plan.config.num_workers = 4;  // +8 cores
    plan.throughput_gain = 100.0;
    plan.resource_efficiency = re;
    plan.weight = wg;
    request.candidates = {plan};
    return request;
  };
  const auto requests = {make_request(1, 5.0, 1.0), make_request(2, 4.0, 2.0),
                         make_request(3, 1.0, 1.0)};
  // Budget: current allocations plus ~one upgrade's worth of headroom.
  ResourceSpec budget{3 * (2 * 4.0 + 4.0) + 8.0 + 2.0, TiB(1)};
  const auto selected = GreedySelector::Select(
      std::vector<JobPlanRequest>(requests), budget);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected.begin()->first, 2u);  // RE*WG = 8 wins
}

TEST(GreedySelectorTest, ShrinkingPlanFreesBudgetForOthers) {
  JobPlanRequest shrink;
  shrink.job_id = 1;
  shrink.current.num_workers = 10;
  shrink.current.num_ps = 1;
  PlanCandidate smaller;
  smaller.config = shrink.current;
  smaller.config.num_workers = 2;  // frees 32 cores
  smaller.throughput_gain = 10.0;
  smaller.resource_efficiency = 100.0;
  smaller.weight = 1.0;
  shrink.candidates = {smaller};

  JobPlanRequest grow;
  grow.job_id = 2;
  grow.current.num_workers = 2;
  grow.current.num_ps = 1;
  PlanCandidate bigger;
  bigger.config = grow.current;
  bigger.config.num_workers = 8;  // needs 24 cores
  bigger.throughput_gain = 50.0;
  bigger.resource_efficiency = 5.0;
  bigger.weight = 1.0;
  grow.candidates = {bigger};

  // Budget exactly covers the current allocations: growth is only possible
  // because the shrink happens first (higher score).
  const ResourceSpec budget =
      shrink.current.TotalResources() + grow.current.TotalResources();
  const auto selected = GreedySelector::Select({shrink, grow}, budget);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(PlanGeneratorTest, CandidatesImproveOnCurrentThroughput) {
  const ModelProfile profile = GetModelProfile(ModelKind::kWideDeep);
  const EnvironmentProfile env;
  ThroughputModel model(profile.dense_param_bytes, profile.embedding_dim,
                        env.network_bandwidth);
  // Fit-free shortcut: use ground-truth-like params directly.
  PerfModelParams params;
  params.alpha_grad = profile.alpha_grad;
  params.alpha_upd = profile.alpha_upd;
  params.alpha_sync = profile.alpha_sync / env.network_bandwidth;
  params.alpha_emb = profile.alpha_emb;
  params.beta_sum = 0.01;

  JobConfig current;
  current.num_workers = 8;
  current.num_ps = 2;
  current.worker_cpu = 6;
  current.ps_cpu = 4;
  const double current_throughput =
      model.PredictThroughput(params, 512, current);

  PlanGeneratorOptions options;
  options.nsga2.population = 32;
  options.nsga2.generations = 20;
  PlanGenerator generator(options);
  const auto candidates = generator.Generate(
      model, params, 512, current, current_throughput, 50e6, GiB(5));
  ASSERT_FALSE(candidates.empty());
  for (const PlanCandidate& plan : candidates) {
    EXPECT_GT(plan.throughput_gain, 0.0);
    EXPECT_GT(plan.predicted_throughput, current_throughput);
  }
}

TEST(ClusterBrainTest, FitsJobModelAndScalesItUp) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  Cluster cluster(&sim, cluster_options);

  BrainOptions options;
  options.budget = cluster.TotalCapacity();
  ClusterBrain brain(&sim, options);

  JobSpec spec;
  spec.name = "brain-test";
  spec.total_steps = 200000;
  TrainingJob job(&sim, &cluster, spec, ColdStartConfig(spec.model));
  job.Start();
  brain.Manage(&job, MetadataFor(spec.model, 512, spec.total_steps));
  brain.Start();

  sim.RunUntil(Hours(2));
  const auto views = brain.managed_jobs();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_TRUE(views[0].fitted);
  EXPECT_GT(views[0].observations, 10u);
  // Cold-started at 6 workers; the brain should have grown the job.
  EXPECT_GT(job.config().num_workers, 10);
  EXPECT_EQ(job.state() == JobState::kCompleted ||
                job.state() == JobState::kRunning,
            true);
}

TEST(ClusterBrainTest, RecordsFinishedJobsInConfigDb) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  Cluster cluster(&sim, cluster_options);
  BrainOptions options;
  options.budget = cluster.TotalCapacity();
  ClusterBrain brain(&sim, options);

  JobSpec spec;
  spec.total_steps = 30000;
  TrainingJob job(&sim, &cluster, spec, WellTunedConfig(spec.model));
  job.Start();
  brain.Manage(&job, MetadataFor(spec.model, 512, spec.total_steps));
  brain.Start();
  sim.RunUntil(Hours(3));
  ASSERT_EQ(job.state(), JobState::kCompleted);
  EXPECT_EQ(brain.config_db().size(), 1u);
  EXPECT_TRUE(brain.config_db().records()[0].completed);
}

}  // namespace
}  // namespace dlrover
