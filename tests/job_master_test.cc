#include "master/job_master.h"

#include <gtest/gtest.h>

#include "baselines/manual.h"
#include "cluster/cluster.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

struct TestSetup {
  Simulator sim;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<TrainingJob> job;

  explicit TestSetup(uint64_t steps = 80000, Bytes ps_memory = GiB(12)) {
    ClusterOptions options;
    options.num_nodes = 20;
    cluster = std::make_unique<Cluster>(&sim, options);
    JobSpec spec;
    spec.total_steps = steps;
    JobConfig config;
    config.num_workers = 12;
    config.num_ps = 3;
    config.worker_cpu = 8.0;
    config.ps_cpu = 6.0;
    config.worker_memory = GiB(6);
    config.ps_memory = ps_memory;
    job = std::make_unique<TrainingJob>(&sim, cluster.get(), spec, config);
    job->Start();
  }
};

TEST(JobMasterTest, MitigatesInjectedStraggler) {
  TestSetup setup;
  JobMaster master(&setup.sim, setup.job.get());
  master.Start();
  setup.sim.RunUntil(Minutes(5));
  ASSERT_EQ(setup.job->state(), JobState::kRunning);
  // Degrade one worker pod.
  PodId victim = 0;
  setup.cluster->VisitPods([&](const Pod& pod) {
    if (victim == 0 && pod.phase == PodPhase::kRunning &&
        pod.spec.name.find("-worker-") != std::string::npos) {
      victim = pod.id;
    }
  });
  ASSERT_NE(victim, 0u);
  setup.cluster->DegradePod(victim, 0.05);
  setup.sim.RunUntil(Minutes(25));
  EXPECT_GE(setup.job->stats().stragglers_mitigated, 1);
}

TEST(JobMasterTest, FailureDetectionReapsSilentWorker) {
  TestSetup setup;
  JobMasterOptions options;
  options.failure_detection = true;
  options.straggler_mitigation = false;
  JobMaster master(&setup.sim, setup.job.get(), options);
  master.Start();
  setup.sim.RunUntil(Minutes(5));
  ASSERT_EQ(setup.job->state(), JobState::kRunning);
  PodId victim = 0;
  setup.cluster->VisitPods([&](const Pod& pod) {
    if (victim == 0 && pod.phase == PodPhase::kRunning &&
        pod.spec.name.find("-worker-") != std::string::npos) {
      victim = pod.id;
    }
  });
  ASSERT_NE(victim, 0u);
  // Near-zero speed: the pod stays Running but stops heartbeating. The
  // master's failure-detection tick must kill and replace it.
  setup.cluster->DegradePod(victim, 1e-4);
  setup.sim.RunUntil(setup.sim.Now() + Minutes(20));
  EXPECT_GE(setup.job->stats().worker_failures, 1);
  setup.sim.RunUntil(Hours(8));
  EXPECT_EQ(setup.job->state(), JobState::kCompleted);
}

TEST(JobMasterTest, OomGuardPreScalesMemory) {
  TestSetup setup(/*steps=*/100000, /*ps_memory=*/GiB(5));
  JobMaster master(&setup.sim, setup.job.get());
  master.Start();
  setup.sim.RunUntil(Hours(6));
  EXPECT_EQ(setup.job->stats().oom_events, 0);
  EXPECT_GT(setup.job->config().ps_memory, GiB(5));
}

TEST(JobMasterTest, GuardsCanBeDisabled) {
  TestSetup setup(/*steps=*/100000, /*ps_memory=*/GiB(5));
  JobMasterOptions options;
  options.oom_prevention = false;
  options.straggler_mitigation = false;
  JobMaster master(&setup.sim, setup.job.get(), options);
  master.Start();
  setup.sim.RunUntil(Hours(6));
  // Without the guard the growth must hit the limit at least once
  // (recovery then bumps memory reactively).
  EXPECT_GE(setup.job->stats().oom_events, 1);
}

TEST(PolicyDriverTest, AppliesPolicyPlansOnSchedule) {
  TestSetup setup(/*steps=*/150000);
  // A policy that always proposes +1 worker, seamlessly.
  class GrowPolicy : public ScalingPolicy {
   public:
    std::string name() const override { return "grow"; }
    std::optional<ResourcePlan> Propose(TrainingJob& job) override {
      if (job.state() != JobState::kRunning) return std::nullopt;
      ResourcePlan plan;
      plan.config = job.config();
      ++plan.config.num_workers;
      plan.mode = MigrationMode::kSeamless;
      return plan;
    }
  };
  GrowPolicy policy;
  PolicyDriver driver(&setup.sim, &policy, Minutes(3));
  driver.AddJob(setup.job.get());
  driver.Start();
  setup.sim.RunUntil(Minutes(20));
  EXPECT_GE(driver.plans_applied(), 3);
  EXPECT_GT(setup.job->config().num_workers, 12);
}

TEST(PolicyDriverTest, SkipsFinishedJobs) {
  TestSetup setup(/*steps=*/4000);  // finishes quickly
  ManualPolicy noop;
  PolicyDriver driver(&setup.sim, &noop, Minutes(3));
  driver.AddJob(setup.job.get());
  driver.Start();
  setup.sim.RunUntil(Hours(2));
  EXPECT_EQ(setup.job->state(), JobState::kCompleted);
  EXPECT_EQ(driver.plans_applied(), 0);
}

// ---------------------------------------------------------------------------
// Master failover + plan fencing (control channel attached)
// ---------------------------------------------------------------------------

/// TestSetup plus an attached control channel with a healthy network: the
/// failover/fencing machinery is live but no chaos perturbs deliveries.
struct ChannelSetup : TestSetup {
  ControlChannel channel;

  explicit ChannelSetup(uint64_t steps = 80000)
      : TestSetup(steps), channel(&sim, [] {
          ControlChannelOptions options;
          options.enabled = true;
          options.seed = 5;
          return options;
        }()) {
    cluster->set_control_channel(&channel);
  }
};

JobConfig GrownConfig(const TrainingJob& job) {
  JobConfig config = job.config();
  ++config.num_workers;
  return config;
}

TEST(JobMasterFailoverTest, CrashStopsPoliciesWorkersContinueRestartResumes) {
  ChannelSetup setup;
  JobMaster master(&setup.sim, setup.job.get());
  master.AttachChannel(&setup.channel);
  master.Start();
  setup.sim.RunUntil(Minutes(5));
  ASSERT_EQ(setup.job->state(), JobState::kRunning);
  const uint64_t batches_at_crash = setup.job->batches_done();

  ASSERT_EQ(setup.channel.CrashMasterByOrdinal(0), master.channel_handle());
  EXPECT_FALSE(master.up());
  EXPECT_EQ(master.crashes(), 1u);

  // Workers keep training their current shards under the last-known plan
  // while the master is down.
  setup.sim.RunUntil(Minutes(5) + Seconds(30));
  EXPECT_EQ(setup.job->state(), JobState::kRunning);
  EXPECT_GT(setup.job->batches_done(), batches_at_crash);

  // Deterministic failover: the replacement comes up after the restart
  // delay with a bumped epoch, and the job still trains to completion.
  setup.sim.RunUntil(Minutes(7));
  EXPECT_TRUE(master.up());
  EXPECT_EQ(master.restarts(), 1u);
  EXPECT_EQ(setup.channel.MasterEpoch(master.channel_handle()), 1u);
  setup.sim.RunUntil(Hours(8));
  EXPECT_EQ(setup.job->state(), JobState::kCompleted);
}

TEST(JobMasterFailoverTest, MasterGateRejectsDuplicatePlanSequence) {
  ChannelSetup setup;
  JobMaster master(&setup.sim, setup.job.get());
  master.AttachChannel(&setup.channel);
  master.Start();
  setup.sim.RunUntil(Minutes(5));
  ASSERT_EQ(setup.job->state(), JobState::kRunning);

  const JobConfig grown = GrownConfig(*setup.job);
  ASSERT_TRUE(setup.job
                  ->DeliverPlanFromBrain(grown, MigrationMode::kSeamless, 1)
                  .ok());
  const int workers_after_first = setup.job->config().num_workers;

  // A duplicate/reordered copy of the same plan arrives again: the
  // master-side sequence gate rejects it before the job ever sees it.
  const Status replay =
      setup.job->DeliverPlanFromBrain(grown, MigrationMode::kSeamless, 1);
  EXPECT_EQ(replay.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(master.plans_gated_stale(), 1u);
  EXPECT_EQ(setup.channel.stats().plans_fenced_stale, 1u);
  EXPECT_EQ(setup.job->config().num_workers, workers_after_first);

  // The next fresh sequence still applies.
  EXPECT_TRUE(setup.job
                  ->DeliverPlanFromBrain(GrownConfig(*setup.job),
                                         MigrationMode::kSeamless, 2)
                  .ok());
}

TEST(JobMasterFailoverTest, SnapshotRollbackReplayAbsorbedByJobFence) {
  ChannelSetup setup;
  JobMaster master(&setup.sim, setup.job.get());
  master.AttachChannel(&setup.channel);
  master.Start();
  setup.sim.RunUntil(Minutes(5));
  ASSERT_EQ(setup.job->state(), JobState::kRunning);

  // Plan seq 1 applies after the last tick snapshot, so the crash below
  // rolls the master's watermark back past it — the deliberately lossy
  // part of failover.
  ASSERT_TRUE(setup.job
                  ->DeliverPlanFromBrain(GrownConfig(*setup.job),
                                         MigrationMode::kSeamless, 1)
                  .ok());
  const int workers_after_first = setup.job->config().num_workers;
  ASSERT_EQ(setup.channel.CrashMasterByOrdinal(0), master.channel_handle());
  EXPECT_EQ(master.snapshot_last_plan_seq(), 0u);

  setup.sim.RunUntil(Minutes(7));
  ASSERT_TRUE(master.up());

  // A replayed copy of seq 1 now passes the master gate (its watermark was
  // rolled back), but the job-level fence — which does not crash with the
  // master — absorbs it.
  const Status replay = setup.job->DeliverPlanFromBrain(
      GrownConfig(*setup.job), MigrationMode::kSeamless, 1);
  EXPECT_EQ(replay.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(master.plans_gated_stale(), 0u)
      << "the rolled-back master cannot see the replay as stale";
  EXPECT_GE(setup.job->stats().plans_fenced, 1);
  EXPECT_EQ(setup.job->config().num_workers, workers_after_first)
      << "the replay must not double-apply";
}

TEST(JobMasterFailoverTest, DownMasterGateIsUnavailable) {
  ChannelSetup setup;
  JobMaster master(&setup.sim, setup.job.get());
  master.AttachChannel(&setup.channel);
  master.Start();
  setup.sim.RunUntil(Minutes(5));

  ASSERT_GE(setup.channel.CrashMasterByOrdinal(0), 0);
  const Status status = setup.job->DeliverPlanFromBrain(
      GrownConfig(*setup.job), MigrationMode::kSeamless, 1);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST(PolicyDriverTest, ChannelModeDeliversSequencedPlans) {
  ChannelSetup setup(/*steps=*/150000);
  JobMaster master(&setup.sim, setup.job.get());
  master.AttachChannel(&setup.channel);
  master.Start();

  class GrowPolicy : public ScalingPolicy {
   public:
    std::string name() const override { return "grow"; }
    std::optional<ResourcePlan> Propose(TrainingJob& job) override {
      if (job.state() != JobState::kRunning) return std::nullopt;
      ResourcePlan plan;
      plan.config = job.config();
      ++plan.config.num_workers;
      plan.mode = MigrationMode::kSeamless;
      return plan;
    }
  };
  GrowPolicy policy;
  PolicyDriver driver(&setup.sim, &policy, Minutes(3));
  driver.set_control_channel(&setup.channel);
  driver.AddJob(setup.job.get());
  driver.Start();
  setup.sim.RunUntil(Minutes(20));

  // Plans rode the channel (reliable, sequence-stamped) and applied; on a
  // healthy network nothing is fenced.
  EXPECT_GE(driver.plans_sent(), 3);
  EXPECT_GT(setup.job->config().num_workers, 12);
  EXPECT_EQ(setup.job->stats().plans_fenced, 0);
  EXPECT_EQ(setup.job->stats().stale_plan_applies, 0);
  EXPECT_GT(setup.channel.stats().messages_delivered, 0u);
}

TEST(PolicyDriverTest, RestoredSnapshotReplaysAreFencedNotDoubleApplied) {
  ChannelSetup setup(/*steps=*/150000);
  JobMaster master(&setup.sim, setup.job.get());
  master.AttachChannel(&setup.channel);
  master.Start();

  class GrowPolicy : public ScalingPolicy {
   public:
    std::string name() const override { return "grow"; }
    std::optional<ResourcePlan> Propose(TrainingJob& job) override {
      if (job.state() != JobState::kRunning) return std::nullopt;
      ResourcePlan plan;
      plan.config = job.config();
      ++plan.config.num_workers;
      plan.mode = MigrationMode::kSeamless;
      return plan;
    }
  };
  GrowPolicy policy;
  PolicyDriver driver(&setup.sim, &policy, Minutes(3));
  driver.set_control_channel(&setup.channel);
  driver.AddJob(setup.job.get());

  const PolicyDriver::Snapshot genesis = driver.SnapshotState();
  driver.Start();
  setup.sim.RunUntil(Minutes(10));
  const int sent_before = driver.plans_sent();
  ASSERT_GE(sent_before, 2);

  // A brain restart restores an old snapshot: the next rounds re-issue
  // already-used sequence numbers. The fences must reject every replay and
  // the job's worker count must only ever move by fresh plans.
  driver.RestoreState(genesis);
  setup.sim.RunUntil(Minutes(20));
  EXPECT_GT(driver.plans_sent(), sent_before);
  EXPECT_GE(master.plans_gated_stale() +
                static_cast<uint64_t>(setup.job->stats().plans_fenced),
            1u);
  EXPECT_EQ(setup.job->stats().stale_plan_applies, 0);
}

}  // namespace
}  // namespace dlrover
