#include "master/job_master.h"

#include <gtest/gtest.h>

#include "baselines/manual.h"
#include "cluster/cluster.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

struct TestSetup {
  Simulator sim;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<TrainingJob> job;

  explicit TestSetup(uint64_t steps = 80000, Bytes ps_memory = GiB(12)) {
    ClusterOptions options;
    options.num_nodes = 20;
    cluster = std::make_unique<Cluster>(&sim, options);
    JobSpec spec;
    spec.total_steps = steps;
    JobConfig config;
    config.num_workers = 12;
    config.num_ps = 3;
    config.worker_cpu = 8.0;
    config.ps_cpu = 6.0;
    config.worker_memory = GiB(6);
    config.ps_memory = ps_memory;
    job = std::make_unique<TrainingJob>(&sim, cluster.get(), spec, config);
    job->Start();
  }
};

TEST(JobMasterTest, MitigatesInjectedStraggler) {
  TestSetup setup;
  JobMaster master(&setup.sim, setup.job.get());
  master.Start();
  setup.sim.RunUntil(Minutes(5));
  ASSERT_EQ(setup.job->state(), JobState::kRunning);
  // Degrade one worker pod.
  PodId victim = 0;
  setup.cluster->VisitPods([&](const Pod& pod) {
    if (victim == 0 && pod.phase == PodPhase::kRunning &&
        pod.spec.name.find("-worker-") != std::string::npos) {
      victim = pod.id;
    }
  });
  ASSERT_NE(victim, 0u);
  setup.cluster->DegradePod(victim, 0.05);
  setup.sim.RunUntil(Minutes(25));
  EXPECT_GE(setup.job->stats().stragglers_mitigated, 1);
}

TEST(JobMasterTest, FailureDetectionReapsSilentWorker) {
  TestSetup setup;
  JobMasterOptions options;
  options.failure_detection = true;
  options.straggler_mitigation = false;
  JobMaster master(&setup.sim, setup.job.get(), options);
  master.Start();
  setup.sim.RunUntil(Minutes(5));
  ASSERT_EQ(setup.job->state(), JobState::kRunning);
  PodId victim = 0;
  setup.cluster->VisitPods([&](const Pod& pod) {
    if (victim == 0 && pod.phase == PodPhase::kRunning &&
        pod.spec.name.find("-worker-") != std::string::npos) {
      victim = pod.id;
    }
  });
  ASSERT_NE(victim, 0u);
  // Near-zero speed: the pod stays Running but stops heartbeating. The
  // master's failure-detection tick must kill and replace it.
  setup.cluster->DegradePod(victim, 1e-4);
  setup.sim.RunUntil(setup.sim.Now() + Minutes(20));
  EXPECT_GE(setup.job->stats().worker_failures, 1);
  setup.sim.RunUntil(Hours(8));
  EXPECT_EQ(setup.job->state(), JobState::kCompleted);
}

TEST(JobMasterTest, OomGuardPreScalesMemory) {
  TestSetup setup(/*steps=*/100000, /*ps_memory=*/GiB(5));
  JobMaster master(&setup.sim, setup.job.get());
  master.Start();
  setup.sim.RunUntil(Hours(6));
  EXPECT_EQ(setup.job->stats().oom_events, 0);
  EXPECT_GT(setup.job->config().ps_memory, GiB(5));
}

TEST(JobMasterTest, GuardsCanBeDisabled) {
  TestSetup setup(/*steps=*/100000, /*ps_memory=*/GiB(5));
  JobMasterOptions options;
  options.oom_prevention = false;
  options.straggler_mitigation = false;
  JobMaster master(&setup.sim, setup.job.get(), options);
  master.Start();
  setup.sim.RunUntil(Hours(6));
  // Without the guard the growth must hit the limit at least once
  // (recovery then bumps memory reactively).
  EXPECT_GE(setup.job->stats().oom_events, 1);
}

TEST(PolicyDriverTest, AppliesPolicyPlansOnSchedule) {
  TestSetup setup(/*steps=*/150000);
  // A policy that always proposes +1 worker, seamlessly.
  class GrowPolicy : public ScalingPolicy {
   public:
    std::string name() const override { return "grow"; }
    std::optional<ResourcePlan> Propose(TrainingJob& job) override {
      if (job.state() != JobState::kRunning) return std::nullopt;
      ResourcePlan plan;
      plan.config = job.config();
      ++plan.config.num_workers;
      plan.mode = MigrationMode::kSeamless;
      return plan;
    }
  };
  GrowPolicy policy;
  PolicyDriver driver(&setup.sim, &policy, Minutes(3));
  driver.AddJob(setup.job.get());
  driver.Start();
  setup.sim.RunUntil(Minutes(20));
  EXPECT_GE(driver.plans_applied(), 3);
  EXPECT_GT(setup.job->config().num_workers, 12);
}

TEST(PolicyDriverTest, SkipsFinishedJobs) {
  TestSetup setup(/*steps=*/4000);  // finishes quickly
  ManualPolicy noop;
  PolicyDriver driver(&setup.sim, &noop, Minutes(3));
  driver.AddJob(setup.job.get());
  driver.Start();
  setup.sim.RunUntil(Hours(2));
  EXPECT_EQ(setup.job->state(), JobState::kCompleted);
  EXPECT_EQ(driver.plans_applied(), 0);
}

}  // namespace
}  // namespace dlrover
