#include "perfmodel/throughput_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ps/iteration_model.h"
#include "ps/model_profile.h"

namespace dlrover {
namespace {

TEST(ThroughputModelTest, FeaturesMatchEquationBasis) {
  ThroughputModel model(MiB(100), 16, GiBps(1.25));
  const auto f = model.Features(512, 8, 4, 8.0, 4.0);
  EXPECT_DOUBLE_EQ(f[0], 512.0 / 8.0);             // m / lw
  EXPECT_DOUBLE_EQ(f[1], 8.0 / (4.0 * 4.0));       // w / (p lp)
  EXPECT_DOUBLE_EQ(f[2], MiB(100) * 8.0 / (4.0 * GiBps(1.25)));
  EXPECT_DOUBLE_EQ(f[3], 512.0 * 16.0 / 4.0);      // m D / p
  EXPECT_DOUBLE_EQ(f[4], 1.0);
}

TEST(ThroughputModelTest, PredictionInvertsToThroughput) {
  ThroughputModel model(MiB(100), 16, GiBps(1.25));
  PerfModelParams params;
  params.beta_sum = 0.1;  // T = 0.1s flat
  JobConfig config;
  config.num_workers = 10;
  EXPECT_DOUBLE_EQ(model.PredictIterTime(params, 512, config), 0.1);
  EXPECT_DOUBLE_EQ(model.PredictThroughput(params, 512, config),
                   10 * 512 / 0.1);
}

class FitRecoveryTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(FitRecoveryTest, NnlsRecoversGroundTruthLaws) {
  const ModelProfile profile = GetModelProfile(GetParam());
  const EnvironmentProfile env;
  ThroughputModel model(profile.dense_param_bytes, profile.embedding_dim,
                        env.network_bandwidth);
  ModelFitter fitter(model);
  Rng rng(19);
  for (int w : {4, 8, 16, 24, 32}) {
    for (int p : {1, 2, 4, 8}) {
      for (double lw : {4.0, 8.0}) {
        for (double lp : {2.0, 6.0}) {
          JobConfig config;
          config.num_workers = w;
          config.num_ps = p;
          config.worker_cpu = lw;
          config.ps_cpu = lp;
          PerfObservation obs;
          obs.batch_size = 512;
          obs.workers = w;
          obs.ps = p;
          obs.worker_cpu = lw;
          obs.ps_cpu = lp;
          obs.iter_time =
              ComputeHealthyIteration(profile, env, 512, config).Total() *
              rng.LogNormal(1.0, 0.03);
          fitter.AddObservation(obs);
        }
      }
    }
  }
  ASSERT_TRUE(fitter.ReadyToFit());
  auto params = fitter.Fit();
  ASSERT_TRUE(params.ok());
  // The basis absorbs alpha_sync/B into one coefficient.
  EXPECT_NEAR(params->alpha_grad, profile.alpha_grad,
              profile.alpha_grad * 0.15);
  EXPECT_NEAR(params->alpha_emb, profile.alpha_emb,
              profile.alpha_emb * 0.15);
  EXPECT_GT(fitter.EvaluateRSquared(*params), 0.97);
  EXPECT_LT(fitter.EvaluateRmsle(*params), 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllModels, FitRecoveryTest,
                         ::testing::Values(ModelKind::kWideDeep,
                                           ModelKind::kXDeepFm,
                                           ModelKind::kDcn));

TEST(ModelFitterTest, NotReadyWithoutShapeDiversity) {
  ThroughputModel model(MiB(100), 16, GiBps(1.25));
  ModelFitter fitter(model);
  for (int i = 0; i < 10; ++i) {
    PerfObservation obs;
    obs.workers = 8;
    obs.ps = 2;
    obs.worker_cpu = 4;
    obs.ps_cpu = 4;
    obs.iter_time = 0.2;
    fitter.AddObservation(obs);
  }
  EXPECT_FALSE(fitter.ReadyToFit());
  PerfObservation other;
  other.workers = 16;
  other.ps = 2;
  other.worker_cpu = 4;
  other.ps_cpu = 4;
  other.iter_time = 0.25;
  fitter.AddObservation(other);
  EXPECT_TRUE(fitter.ReadyToFit());
}

TEST(ModelFitterTest, IgnoresZeroIterTimeObservations) {
  ThroughputModel model(MiB(100), 16, GiBps(1.25));
  ModelFitter fitter(model);
  PerfObservation obs;
  obs.iter_time = 0.0;
  fitter.AddObservation(obs);
  EXPECT_EQ(fitter.observation_count(), 0u);
}

TEST(ModelFitterTest, LookupBlindModelFitsWorse) {
  // The ablation behind the paper's critique of conventional schedulers:
  // without the T_emb term the model cannot explain PS-count effects.
  const ModelProfile profile = GetModelProfile(ModelKind::kWideDeep);
  const EnvironmentProfile env;
  ThroughputModel aware(profile.dense_param_bytes, profile.embedding_dim,
                        env.network_bandwidth);
  ThroughputModel blind(profile.dense_param_bytes, 0,
                        env.network_bandwidth);
  ModelFitter aware_fitter(aware);
  ModelFitter blind_fitter(blind);
  for (int w : {8, 16, 24}) {
    for (int p : {1, 2, 4, 8}) {
      JobConfig config;
      config.num_workers = w;
      config.num_ps = p;
      config.worker_cpu = 8;
      config.ps_cpu = 4;
      PerfObservation obs;
      obs.batch_size = 512;
      obs.workers = w;
      obs.ps = p;
      obs.worker_cpu = 8;
      obs.ps_cpu = 4;
      obs.iter_time =
          ComputeHealthyIteration(profile, env, 512, config).Total();
      aware_fitter.AddObservation(obs);
      blind_fitter.AddObservation(obs);
    }
  }
  const auto aware_params = aware_fitter.Fit();
  const auto blind_params = blind_fitter.Fit();
  ASSERT_TRUE(aware_params.ok());
  ASSERT_TRUE(blind_params.ok());
  EXPECT_LT(aware_fitter.EvaluateRmsle(*aware_params),
            blind_fitter.EvaluateRmsle(*blind_params) * 0.5);
}

}  // namespace
}  // namespace dlrover
