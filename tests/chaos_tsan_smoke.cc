// Chaos smoke test compiled with -fsanitize=thread regardless of the global
// build flags (see tests/CMakeLists.txt): it recompiles the fault-tolerant
// threaded trainer — supervisor thread, commit gate, checkpoint vault,
// chaos injector — directly into an instrumented binary, so tier-1 `ctest`
// runs the recovery machinery's synchronization under ThreadSanitizer even
// on plain builds. No gtest here: TSan makes the process exit nonzero when
// it reports a race, logic failures return 1.

#include <cstdio>
#include <cstdlib>

#include "dlrm/async_trainer.h"
#include "elastic/chaos.h"

namespace {

#define CHECK_TRUE(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FAILED %s:%d: %s\n", __FILE__, __LINE__,  \
                   #cond);                                            \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

void SmokeFaultTolerantChaosRun() {
  dlrover::MiniDlrmConfig config;
  config.arch = dlrover::ModelKind::kWideDeep;
  config.emb_dim = 4;
  config.hash_buckets = 512;
  config.mlp_hidden = {8};
  config.seed = 5;
  dlrover::MiniDlrm model(config);
  dlrover::CriteoSynth data(31);

  dlrover::ChaosScheduleOptions chaos_options;
  chaos_options.seed = 7;
  chaos_options.total_batches = 240;
  dlrover::ChaosInjector chaos =
      dlrover::ChaosInjector::FromSeed(chaos_options);

  dlrover::AsyncTrainerOptions options;
  options.num_workers = 4;
  options.batch_size = 32;
  options.total_batches = 240;
  options.shard_batches = 8;
  options.eval_every_batches = 120;
  options.seed = 3;
  options.exec_mode = dlrover::ExecMode::kThreads;
  options.num_threads = 4;
  options.fault_tolerance.enabled = true;
  options.fault_tolerance.checkpoint_every_batches = 48;
  // TSan slows every batch down ~10x; a lenient timeout keeps the injected
  // stall (not general slowness) the only heartbeat failure.
  options.fault_tolerance.heartbeat_timeout_ms = 1000.0;
  options.fault_tolerance.supervisor_poll_ms = 2.0;
  options.chaos = &chaos;

  dlrover::AsyncPsTrainer trainer(&model, &data, options);
  const dlrover::TrainResult result = trainer.Run();

  CHECK_TRUE(result.batches_committed == 240);
  CHECK_TRUE(result.batches_duplicated == 0);
  CHECK_TRUE(result.batches_skipped == 0);
  for (uint8_t times : result.times_trained) CHECK_TRUE(times == 1);
  CHECK_TRUE(chaos.remaining() == 0);
  CHECK_TRUE(result.ft.checkpoints_taken > 0);
}

}  // namespace

int main() {
  SmokeFaultTolerantChaosRun();
  std::printf("chaos tsan smoke ok\n");
  return 0;
}
