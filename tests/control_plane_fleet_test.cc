// Fleet-level control-plane resilience invariants.
//
// The contract under test: with the channel disabled nothing control-plane
// related exists in the result (the off-by-default byte-identity story);
// with chaos on and all protections on, the fleet absorbs partitions,
// duplicate/reordered plans, and master crashes without a single stale plan
// apply or double-counted batch; with protections off the hazards are real
// (crashed masters stay down).

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace dlrover {
namespace {

FleetScenario BaseScenario(uint64_t seed) {
  FleetScenario scenario;
  scenario.dlrover_fraction = 1.0;
  scenario.workload.num_jobs = 12;
  scenario.workload.arrival_span = Hours(4);
  scenario.cluster.num_nodes = 16;
  scenario.failures.daily_pod_failure_rate = 0.5;
  scenario.horizon = Hours(24);
  scenario.seed = seed;
  return scenario;
}

FleetScenario ChaosScenario(uint64_t seed) {
  FleetScenario scenario = BaseScenario(seed);
  scenario.control.enabled = true;
  scenario.control.drop_prob = 0.02;
  scenario.control.duplicate_prob = 0.05;
  scenario.control.reorder_prob = 0.05;
  scenario.failures.daily_node_partition_rate = 1.5;
  scenario.failures.daily_cell_partition_rate = 2.0;
  scenario.failures.daily_master_crash_rate = 0.3;
  return scenario;
}

TEST(ControlPlaneFleetTest, DisabledChannelLeavesNoControlPlaneTrace) {
  const FleetResult result = RunFleet(BaseScenario(11));
  EXPECT_TRUE(result.control_stats == ControlChannelStats{});
  EXPECT_TRUE(result.control_log.empty());
  EXPECT_EQ(result.control_faults_injected, 0u);
  EXPECT_EQ(result.plans_fenced, 0u);
  EXPECT_EQ(result.stale_plan_applies, 0u);
  EXPECT_EQ(result.shard_reports_rejected, 0u);
  EXPECT_EQ(result.shard_reports_expired, 0u);
  // And the fleet still trains to completion as before.
  EXPECT_FALSE(result.jobs.empty());
}

TEST(ControlPlaneFleetTest, EnabledHealthyChannelStillCompletesJobs) {
  FleetScenario scenario = BaseScenario(11);
  scenario.control.enabled = true;  // routed, but zero chaos rates
  const FleetResult result = RunFleet(scenario);

  EXPECT_GT(result.control_stats.messages_delivered, 0u);
  EXPECT_EQ(result.control_stats.messages_dropped, 0u);
  EXPECT_EQ(result.control_stats.node_partitions, 0u);
  EXPECT_EQ(result.control_stats.master_crashes, 0u);
  size_t completed = 0;
  for (const FleetJobOutcome& job : result.jobs) {
    if (job.completed) ++completed;
  }
  EXPECT_EQ(completed, result.jobs.size());
}

TEST(ControlPlaneFleetTest, ProtectedChaosRunHoldsResilienceInvariants) {
  const FleetResult result = RunFleet(ChaosScenario(11));
  const ControlChannelStats& stats = result.control_stats;

  // Chaos actually landed.
  EXPECT_GT(result.control_faults_injected, 0u);
  EXPECT_GT(stats.node_partitions + stats.cell_partitions, 0u);
  EXPECT_GT(stats.master_crashes, 0u);
  EXPECT_GT(stats.retries, 0u);

  // Failover: every crashed master came back.
  EXPECT_EQ(stats.master_crashes, stats.master_restarts);

  // Fencing: no stale plan ever applied; something was actually fenced so
  // the defense is exercised, not vacuous.
  EXPECT_EQ(stats.stale_plan_applies, 0u);
  EXPECT_EQ(result.stale_plan_applies, 0u);
  EXPECT_GT(result.plans_fenced + stats.plans_fenced_stale + stats.epoch_fenced,
            0u);

  // Exactly-once shard accounting: duplicate reports were rejected (the
  // duplicate_prob guarantees duplicates arrived) and no job trained more
  // batches than its spec.
  EXPECT_GT(result.shard_reports_rejected, 0u);
  for (const FleetJobOutcome& job : result.jobs) {
    EXPECT_LE(job.batches_done, job.total_steps) << job.name;
  }
}

TEST(ControlPlaneFleetTest, FailoverDisabledLeavesCrashedMastersDown) {
  FleetScenario scenario = ChaosScenario(11);
  scenario.control.failover_enabled = false;
  const FleetResult result = RunFleet(scenario);

  EXPECT_GT(result.control_stats.master_crashes, 0u);
  EXPECT_EQ(result.control_stats.master_restarts, 0u);
}

TEST(ControlPlaneFleetTest, ExactlyOnceHoldsEvenWithoutProtections) {
  // Protections off: retries, fencing, and failover disabled. Goodput
  // craters (jobs stall behind lost shard reports and dead masters), but
  // the shard queue's exactly-once accounting must still never overshoot.
  FleetScenario scenario = ChaosScenario(11);
  scenario.control.retries_enabled = false;
  scenario.control.fencing_enabled = false;
  scenario.control.failover_enabled = false;
  const FleetResult result = RunFleet(scenario);

  for (const FleetJobOutcome& job : result.jobs) {
    EXPECT_LE(job.batches_done, job.total_steps) << job.name;
  }
  // No retries were ever attempted and nothing expired (no retry loop).
  EXPECT_EQ(result.control_stats.retries, 0u);
  EXPECT_EQ(result.control_stats.sends_expired, 0u);
}

}  // namespace
}  // namespace dlrover
