// Self-healing fleet suite (ctest label `resilience`): the evidence-based
// NodeHealthTracker state machine, cordon/drain semantics on the cluster
// substrate, make-before-break drain migration in the training job, and
// lane-count determinism of the fault/health audit logs on the sharded
// engine.

#include "cluster/node_health.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "harness/experiment.h"
#include "harness/sharded_fleet.h"
#include "master/job_master.h"
#include "ps/training_job.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

// ---------------------------------------------------------------------------
// Tracker unit tests: pure bookkeeping, driven by hand.
// ---------------------------------------------------------------------------

TEST(NodeHealthTrackerTest, CrashBurstCordonsThenHysteresisReleases) {
  NodeHealthOptions options;
  NodeHealthTracker tracker(options, 4);
  // Repeated mature-pod crashes (no churn bonus) on node 2: each is worth
  // crash_weight, so the score crosses suspect and then cordon within a few
  // 30-second ticks.
  SimTime now = 0.0;
  bool cordoned = false;
  for (int i = 0; i < 10 && !cordoned; ++i) {
    now += 30.0;
    tracker.ObservePodStopped(2, PodStopReason::kCrash, Minutes(10), now);
    for (const auto& action : tracker.Tick(now)) {
      EXPECT_EQ(action.node, 2u);
      EXPECT_TRUE(action.cordon);
      cordoned = true;
    }
  }
  ASSERT_TRUE(cordoned);
  EXPECT_EQ(tracker.state(2), NodeHealthState::kCordoned);
  EXPECT_EQ(tracker.cordons(), 1u);
  // The crash burst stops. The score decays below clear_threshold well
  // before min_cordon elapses; the cordon must hold regardless.
  const SimTime cordon_time = now;
  bool released = false;
  while (now < cordon_time + Hours(2) && !released) {
    now += 30.0;
    for (const auto& action : tracker.Tick(now)) {
      EXPECT_FALSE(action.cordon);
      released = true;
      EXPECT_GE(now - cordon_time, options.min_cordon);
    }
  }
  ASSERT_TRUE(released);
  EXPECT_EQ(tracker.state(2), NodeHealthState::kHealthy);
  EXPECT_EQ(tracker.uncordons(), 1u);
  // The full transition history reads healthy -> ... -> cordoned -> healthy.
  ASSERT_FALSE(tracker.log().empty());
  EXPECT_EQ(tracker.log().front().from, NodeHealthState::kHealthy);
  EXPECT_EQ(tracker.log().back().to, NodeHealthState::kHealthy);
  // Untouched nodes never moved.
  EXPECT_EQ(tracker.state(0), NodeHealthState::kHealthy);
}

TEST(NodeHealthTrackerTest, IsolatedCrashDecaysWithoutCordon) {
  NodeHealthOptions options;
  NodeHealthTracker tracker(options, 2);
  // One young-pod crash (crash + churn weight) is the worst-looking single
  // event; it may make the node Suspect but must never cordon, and the
  // suspicion must decay back to Healthy on its own.
  tracker.ObservePodStopped(0, PodStopReason::kCrash, Seconds(30), 30.0);
  SimTime now = 30.0;
  for (int i = 0; i < 240; ++i) {
    now += 30.0;
    EXPECT_TRUE(tracker.Tick(now).empty());
  }
  EXPECT_EQ(tracker.state(0), NodeHealthState::kHealthy);
  EXPECT_EQ(tracker.cordons(), 0u);
}

TEST(NodeHealthTrackerTest, UnaccountedFloorCreepCordons) {
  NodeHealthOptions options;
  NodeHealthTracker tracker(options, 2);
  // The node's unaccounted memory share creeps at 1.5e-4 of capacity per
  // second — squarely inside the slope band. After leak_streak windows the
  // evidence stream starts and the node must cordon within the fault's
  // first half hour.
  const double rate = 1.5e-4;
  SimTime now = 0.0;
  double fraction = 0.01;
  bool cordoned = false;
  while (now < Minutes(30) && !cordoned) {
    now += 30.0;
    fraction += rate * 30.0;
    tracker.ObserveNodeMemory(0, fraction, now);
    for (const auto& action : tracker.Tick(now)) {
      EXPECT_TRUE(action.cordon);
      cordoned = true;
    }
  }
  EXPECT_TRUE(cordoned);
  EXPECT_EQ(tracker.state(0), NodeHealthState::kCordoned);
}

TEST(NodeHealthTrackerTest, StepJumpAndFlatSignalNeverFire) {
  NodeHealthOptions options;
  NodeHealthTracker tracker(options, 2);
  // A one-off step (reserved pool appearing) is far steeper than the band's
  // ceiling across the window it lands in, and flat before and after: the
  // streak must never build, so no evidence and no state change.
  SimTime now = 0.0;
  double fraction = 0.02;
  for (int i = 0; i < 120; ++i) {
    now += 30.0;
    if (i == 60) fraction += 0.2;  // the step
    tracker.ObserveNodeMemory(0, fraction, now);
    EXPECT_TRUE(tracker.Tick(now).empty());
  }
  EXPECT_EQ(tracker.state(0), NodeHealthState::kHealthy);
  EXPECT_EQ(tracker.score(0, now), 0.0);
}

TEST(NodeHealthTrackerTest, StragglerVerdictsNeedCorroboration) {
  NodeHealthOptions options;
  // A single pod reported as a straggler every tick for an hour: weak
  // evidence that saturates between suspect and cordon — the node may turn
  // Suspect but is never cordoned on one pod's word.
  NodeHealthTracker lone(options, 2);
  SimTime now = 0.0;
  for (int i = 0; i < 120; ++i) {
    now += 30.0;
    lone.ObserveStraggler(0, /*source=*/7, now);
    EXPECT_TRUE(lone.Tick(now).empty());
  }
  EXPECT_EQ(lone.cordons(), 0u);
  EXPECT_EQ(lone.state(0), NodeHealthState::kSuspect);

  // Two distinct slow pods on one node corroborate each other — the
  // node-level signature — and the tracker cordons within minutes.
  NodeHealthTracker pair(options, 2);
  now = 0.0;
  bool cordoned = false;
  for (int i = 0; i < 120 && !cordoned; ++i) {
    now += 30.0;
    pair.ObserveStraggler(0, 7, now);
    pair.ObserveStraggler(0, 9, now);
    cordoned = !pair.Tick(now).empty();
  }
  EXPECT_TRUE(cordoned);
  EXPECT_LE(now, Minutes(10));
}

// ---------------------------------------------------------------------------
// Cluster integration: cordon/drain semantics on the substrate.
// ---------------------------------------------------------------------------

ClusterOptions TwoNodeCluster() {
  ClusterOptions options;
  options.num_nodes = 2;
  options.node_capacity = {16.0, GiB(64)};
  options.min_pod_startup = Seconds(10);
  options.max_pod_startup = Seconds(10);
  options.validate_placement_index = true;
  return options;
}

PodSpec BigPod(const std::string& name) {
  PodSpec spec;
  spec.name = name;
  spec.request = {10.0, GiB(32)};
  spec.priority = PriorityClass::kTraining;
  return spec;
}

TEST(ClusterCordonTest, CordonExcludesFromPlacementPodsKeepRunning) {
  Simulator sim;
  Cluster cluster(&sim, TwoNodeCluster());
  // One big pod lands on each node.
  const PodId a = cluster.CreatePod(BigPod("a"), nullptr, nullptr);
  const PodId b = cluster.CreatePod(BigPod("b"), nullptr, nullptr);
  sim.RunUntil(Seconds(20));
  ASSERT_EQ(cluster.GetPod(a)->phase, PodPhase::kRunning);
  ASSERT_EQ(cluster.GetPod(b)->phase, PodPhase::kRunning);
  const NodeId node_a = cluster.GetPod(a)->node;

  cluster.CordonNode(node_a);
  EXPECT_TRUE(cluster.IsCordoned(node_a));
  EXPECT_EQ(cluster.counters().nodes_cordoned, 1u);
  // The resident pod keeps running — cordon is a fence, not an eviction.
  EXPECT_EQ(cluster.GetPod(a)->phase, PodPhase::kRunning);
  // Cordoned capacity is visible to the blacklist surface.
  EXPECT_DOUBLE_EQ(cluster.CordonedCapacity().cpu, 16.0);
  EXPECT_GE(cluster.QuarantinedCapacity().cpu, 16.0);

  // A third big pod cannot fit: the other node is full and the cordoned
  // node is excluded from placement, so it must sit pending even though the
  // cordoned node nominally has room for nothing — and even after killing
  // pod `a`, which frees plenty of capacity on the cordoned node.
  cluster.KillPod(a);
  const PodId c = cluster.CreatePod(BigPod("c"), nullptr, nullptr);
  sim.RunUntil(Seconds(120));
  EXPECT_EQ(cluster.GetPod(c)->phase, PodPhase::kPending);

  // Lifting the cordon pumps the pending queue: the pod lands on node_a.
  cluster.UncordonNode(node_a);
  EXPECT_EQ(cluster.counters().nodes_uncordoned, 1u);
  sim.RunUntil(sim.Now() + Seconds(60));
  EXPECT_EQ(cluster.GetPod(c)->phase, PodPhase::kRunning);
  EXPECT_EQ(cluster.GetPod(c)->node, node_a);
  EXPECT_DOUBLE_EQ(cluster.CordonedCapacity().cpu, 0.0);
}

TEST(ClusterCordonTest, EvidenceDrivesCordonThroughControlPlane) {
  Simulator sim;
  ClusterOptions options = TwoNodeCluster();
  options.enable_node_health = true;
  Cluster cluster(&sim, options);
  ASSERT_TRUE(cluster.node_health_enabled());

  // Kill young pods on one node repeatedly: crash + churn evidence per
  // kill. The periodic health tick must classify the node and cordon it
  // without any manual CordonNode call.
  PodSpec spec;
  spec.name = "victim";
  spec.request = {2.0, GiB(4)};
  spec.priority = PriorityClass::kTraining;
  NodeId target = 0;
  for (int i = 0; i < 4; ++i) {
    const PodId id = cluster.CreatePod(spec, nullptr, nullptr);
    sim.RunUntil(sim.Now() + Seconds(15));
    if (cluster.GetPod(id)->phase != PodPhase::kRunning) break;
    target = cluster.GetPod(id)->node;
    if (cluster.IsCordoned(target)) break;
    cluster.FailPod(id, PodStopReason::kCrash);
    sim.RunUntil(sim.Now() + Seconds(45));  // let a health tick land
  }
  EXPECT_GE(cluster.counters().nodes_cordoned, 1u);
  ASSERT_NE(cluster.health(), nullptr);
  EXPECT_FALSE(cluster.health()->log().empty());
}

// ---------------------------------------------------------------------------
// Make-before-break drain migration in the training job.
// ---------------------------------------------------------------------------

JobSpec DrainSpec(uint64_t steps = 60000) {
  JobSpec spec;
  spec.name = "drain-job";
  spec.model = ModelKind::kWideDeep;
  spec.total_steps = steps;
  return spec;
}

JobConfig DrainConfig() {
  JobConfig config;
  config.num_workers = 6;
  config.num_ps = 2;
  config.worker_cpu = 8.0;
  config.ps_cpu = 4.0;
  config.worker_memory = GiB(8);
  config.ps_memory = GiB(48);
  return config;
}

int WorkerPodsOnNode(const Cluster& cluster, NodeId node) {
  int count = 0;
  cluster.VisitPods([&](const Pod& pod) {
    if (!pod.terminal() && pod.node == node &&
        pod.spec.name.find("worker") != std::string::npos) {
      ++count;
    }
  });
  return count;
}

TEST(DrainMigrationTest, WorkersEvacuateMakeBeforeBreak) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  cluster_options.node_capacity = {32.0, GiB(192)};
  Cluster cluster(&sim, cluster_options);
  TrainingJob job(&sim, &cluster, DrainSpec(), DrainConfig());
  JobMaster master(&sim, &job);  // drain_migration defaults on
  job.Start();
  master.Start();
  sim.RunUntil(Minutes(10));
  ASSERT_EQ(job.state(), JobState::kRunning);

  // Drain the node hosting the most workers.
  NodeId victim = 0;
  int most = 0;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    const int count = WorkerPodsOnNode(cluster, static_cast<NodeId>(n));
    if (count > most) {
      most = count;
      victim = static_cast<NodeId>(n);
    }
  }
  ASSERT_GT(most, 0);
  const uint64_t batches_before = job.batches_done();
  cluster.DrainNode(victim);

  // Make-before-break: replacements reach Running before victims stop, so
  // the active worker count never dips below the configured size while the
  // drain is in flight.
  const int configured = DrainConfig().num_workers;
  bool undershoot = false;
  for (int i = 0; i < 60; ++i) {
    sim.RunUntil(sim.Now() + Seconds(30));
    int running = 0;
    cluster.VisitPods([&](const Pod& pod) {
      if (pod.phase == PodPhase::kRunning &&
          pod.spec.name.find("worker") != std::string::npos) {
        ++running;
      }
    });
    if (job.state() == JobState::kRunning && running < configured) {
      undershoot = true;
    }
  }
  EXPECT_FALSE(undershoot);
  EXPECT_EQ(WorkerPodsOnNode(cluster, victim), 0);
  EXPECT_GE(job.stats().drain_migrations, most);
  EXPECT_EQ(job.stats().drain_fallbacks, 0);
  EXPECT_GT(job.batches_done(), batches_before);
}

TEST(DrainMigrationTest, ScarcityFallsBackToStopAndRestart) {
  Simulator sim;
  // Two nodes sized so the job fills both: a drained worker's replacement
  // has nowhere to stage, so make-before-break must give up and take the
  // stop-and-restart path instead of wedging.
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 2;
  cluster_options.node_capacity = {32.0, GiB(192)};
  Cluster cluster(&sim, cluster_options);
  JobConfig config;
  config.num_workers = 6;
  config.num_ps = 1;
  config.worker_cpu = 8.0;
  config.ps_cpu = 4.0;
  config.worker_memory = GiB(16);
  config.ps_memory = GiB(48);
  TrainingJob job(&sim, &cluster, DrainSpec(120000), config);
  JobMaster master(&sim, &job);
  job.Start();
  master.Start();
  sim.RunUntil(Minutes(10));
  ASSERT_EQ(job.state(), JobState::kRunning);

  // Drain the node hosting workers (avoid the PS node: a draining PS takes
  // the whole-deployment migration path instead).
  const Pod* ps_pod = nullptr;
  cluster.VisitPods([&](const Pod& pod) {
    if (!pod.terminal() && pod.spec.name.find("ps") != std::string::npos) {
      ps_pod = &pod;
    }
  });
  NodeId victim = 0;
  int most = 0;
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    const NodeId node = static_cast<NodeId>(n);
    if (ps_pod != nullptr && ps_pod->node == node) continue;
    const int count = WorkerPodsOnNode(cluster, node);
    if (count > most) {
      most = count;
      victim = node;
    }
  }
  ASSERT_GT(most, 0);
  cluster.DrainNode(victim);
  sim.RunUntil(sim.Now() + Hours(1));
  EXPECT_GE(job.stats().drain_fallbacks, 1);
  EXPECT_NE(job.state(), JobState::kFailed);
}

// ---------------------------------------------------------------------------
// Audit-log determinism on the sharded engine (same seed, any lane count).
// ---------------------------------------------------------------------------

FleetScenario GreyFaultScenario() {
  FleetScenario scenario;
  scenario.seed = 91;
  scenario.workload.num_jobs = 10;
  scenario.workload.arrival_span = Hours(2);
  scenario.workload.seed = 17;
  scenario.cluster.num_nodes = 24;
  scenario.cluster.enable_node_health = true;
  scenario.horizon = Hours(6);
  scenario.enable_background = false;
  scenario.failures.daily_pod_failure_rate = 0.3;
  scenario.failures.daily_straggler_rate = 0.05;
  scenario.failures.daily_node_flaky_rate = 2.0;
  scenario.failures.daily_node_degraded_rate = 2.0;
  scenario.failures.daily_node_leak_rate = 2.0;
  scenario.failures.daily_node_crashloop_rate = 2.0;
  return scenario;
}

TEST(ResilienceDeterminismTest, AuditLogsIdenticalAcrossLaneCounts) {
  const FleetScenario scenario = GreyFaultScenario();
  ShardedFleetOptions options;
  options.cells = 2;
  options.shards = 1;
  const ShardedFleetResult one_lane = RunFleetSharded(scenario, options);
  // The campaign must actually exercise the machinery for the parity to
  // mean anything.
  EXPECT_GT(one_lane.fleet.node_faults_injected, 0u);
  EXPECT_GT(one_lane.fleet.nodes_cordoned, 0u);
  ASSERT_FALSE(one_lane.fleet.fault_log.empty());
  ASSERT_FALSE(one_lane.fleet.health_log.empty());

  for (int lanes : {2, 0}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    options.shards = lanes;
    const ShardedFleetResult multi = RunFleetSharded(scenario, options);
    // The ground-truth fault audit log and the health transition log are
    // part of the deterministic result: byte-identical at any lane count.
    ASSERT_EQ(multi.fleet.fault_log.size(), one_lane.fleet.fault_log.size());
    for (size_t i = 0; i < one_lane.fleet.fault_log.size(); ++i) {
      EXPECT_TRUE(multi.fleet.fault_log[i] == one_lane.fleet.fault_log[i])
          << "fault record " << i << " diverges";
    }
    ASSERT_EQ(multi.fleet.health_log.size(),
              one_lane.fleet.health_log.size());
    for (size_t i = 0; i < one_lane.fleet.health_log.size(); ++i) {
      EXPECT_TRUE(multi.fleet.health_log[i] == one_lane.fleet.health_log[i])
          << "health event " << i << " diverges";
    }
    EXPECT_EQ(multi.fleet.nodes_cordoned, one_lane.fleet.nodes_cordoned);
    EXPECT_EQ(multi.fleet.nodes_uncordoned, one_lane.fleet.nodes_uncordoned);
    ASSERT_EQ(multi.fleet.jobs.size(), one_lane.fleet.jobs.size());
    for (size_t i = 0; i < one_lane.fleet.jobs.size(); ++i) {
      EXPECT_EQ(multi.fleet.jobs[i].batches_done,
                one_lane.fleet.jobs[i].batches_done);
      EXPECT_EQ(multi.fleet.jobs[i].stats.drain_migrations,
                one_lane.fleet.jobs[i].stats.drain_migrations);
    }
  }
}

}  // namespace
}  // namespace dlrover
