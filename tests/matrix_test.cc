#include "common/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace dlrover {
namespace {

TEST(MatrixTest, BasicOps) {
  const Matrix a({{1, 2}, {3, 4}});
  const Matrix b({{5, 6}, {7, 8}});
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);

  const Matrix t = a.Transpose();
  EXPECT_DOUBLE_EQ(t(0, 1), 3);
  EXPECT_DOUBLE_EQ(t(1, 0), 2);

  const std::vector<double> y = a.Apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3);
  EXPECT_DOUBLE_EQ(y[1], 7);

  const Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);
}

TEST(LeastSquaresTest, ExactSquareSystem) {
  const Matrix a({{2, 0}, {0, 3}});
  auto x = LeastSquares(a, {4.0, 9.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(LeastSquaresTest, OverdeterminedRecovery) {
  // y = 2*x0 - 0.5*x1 + noiseless observations => exact recovery.
  Rng rng(3);
  const size_t rows = 40;
  Matrix a(rows, 2);
  std::vector<double> b(rows);
  for (size_t i = 0; i < rows; ++i) {
    a(i, 0) = rng.Uniform(-1, 1);
    a(i, 1) = rng.Uniform(-1, 1);
    b[i] = 2.0 * a(i, 0) - 0.5 * a(i, 1);
  }
  auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-9);
  EXPECT_NEAR((*x)[1], -0.5, 1e-9);
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  const Matrix a(1, 2);
  EXPECT_FALSE(LeastSquares(a, {1.0}).ok());
}

TEST(LeastSquaresTest, RejectsRankDeficient) {
  // Second column is a multiple of the first.
  Matrix a(4, 2);
  for (size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);
  }
  EXPECT_FALSE(LeastSquares(a, {1, 2, 3, 4}).ok());
}

TEST(NnlsTest, MatchesUnconstrainedWhenInteriorSolution) {
  Rng rng(5);
  const size_t rows = 50;
  Matrix a(rows, 3);
  std::vector<double> b(rows);
  const std::vector<double> truth = {1.5, 0.7, 2.2};
  for (size_t i = 0; i < rows; ++i) {
    double y = 0.0;
    for (size_t j = 0; j < 3; ++j) {
      a(i, j) = rng.Uniform(0.0, 1.0);
      y += a(i, j) * truth[j];
    }
    b[i] = y;
  }
  auto x = NnlsSolve(a, b);
  ASSERT_TRUE(x.ok());
  for (size_t j = 0; j < 3; ++j) EXPECT_NEAR((*x)[j], truth[j], 1e-8);
}

TEST(NnlsTest, ClampsNegativeComponents) {
  // Unconstrained optimum has a negative coefficient; NNLS must return a
  // non-negative solution at least as good as any other feasible point.
  Matrix a({{1, 1}, {1, 0}, {0, 1}});
  const std::vector<double> b = {1.0, 1.5, -0.5};
  auto x = NnlsSolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_GE((*x)[0], 0.0);
  EXPECT_GE((*x)[1], 0.0);
  // The solution with x1 clamped to zero: x0 = argmin (x-1)^2+(x-1.5)^2.
  EXPECT_NEAR((*x)[0], 1.25, 1e-8);
  EXPECT_NEAR((*x)[1], 0.0, 1e-10);
}

// Property: NNLS solutions satisfy the KKT conditions: x >= 0, and the
// gradient w = A^T(b - Ax) has w[j] <= tol for all j with x[j] == 0 and
// w[j] ~= 0 for x[j] > 0.
class NnlsKktTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NnlsKktTest, SatisfiesKkt) {
  Rng rng(GetParam());
  const size_t rows = 30;
  const size_t cols = 6;
  Matrix a(rows, cols);
  std::vector<double> b(rows);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) a(i, j) = rng.Uniform(-1.0, 1.0);
    b[i] = rng.Uniform(-2.0, 2.0);
  }
  auto solved = NnlsSolve(a, b);
  ASSERT_TRUE(solved.ok());
  const std::vector<double>& x = *solved;
  std::vector<double> residual = b;
  const std::vector<double> ax = a.Apply(x);
  for (size_t i = 0; i < rows; ++i) residual[i] -= ax[i];
  const std::vector<double> w = a.Transpose().Apply(residual);
  for (size_t j = 0; j < cols; ++j) {
    EXPECT_GE(x[j], 0.0);
    if (x[j] > 1e-8) {
      EXPECT_NEAR(w[j], 0.0, 1e-6) << "active coefficient " << j;
    } else {
      EXPECT_LE(w[j], 1e-6) << "clamped coefficient " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, NnlsKktTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(NnlsTest, IgnoresZeroColumn) {
  Rng rng(8);
  Matrix a(20, 3);
  std::vector<double> b(20);
  for (size_t i = 0; i < 20; ++i) {
    a(i, 0) = rng.Uniform(0, 1);
    a(i, 1) = 0.0;  // dead feature
    a(i, 2) = rng.Uniform(0, 1);
    b[i] = 3.0 * a(i, 0) + 1.0 * a(i, 2);
  }
  auto x = NnlsSolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-7);
  EXPECT_NEAR((*x)[1], 0.0, 1e-10);
  EXPECT_NEAR((*x)[2], 1.0, 1e-7);
}

}  // namespace
}  // namespace dlrover
