#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "harness/reporting.h"
#include "trace/workload_gen.h"

namespace dlrover {
namespace {

TEST(ReportingTest, Formatters) {
  EXPECT_EQ(FormatDuration(30.0), "30.0 s");
  EXPECT_EQ(FormatDuration(600.0), "10.0 min");
  EXPECT_EQ(FormatDuration(7200.0), "2.00 h");
  EXPECT_EQ(FormatPercent(0.123), "12.3%");
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

TEST(WorkloadGeneratorTest, DeterministicAndSorted) {
  WorkloadOptions options;
  options.num_jobs = 30;
  options.seed = 5;
  const auto a = WorkloadGenerator(options).Generate();
  const auto b = WorkloadGenerator(options).Generate();
  ASSERT_EQ(a.size(), 30u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.name, b[i].spec.name);
    EXPECT_EQ(a[i].meta.total_steps, b[i].meta.total_steps);
    EXPECT_EQ(a[i].hot_ps, b[i].hot_ps);
    if (i > 0) EXPECT_GE(a[i].arrival, a[i - 1].arrival);
  }
}

TEST(WorkloadGeneratorTest, MixesSizesAndModels) {
  WorkloadOptions options;
  options.num_jobs = 100;
  options.seed = 8;
  const auto jobs = WorkloadGenerator(options).Generate();
  int small = 0, models[3] = {0, 0, 0}, hot = 0;
  for (const GeneratedJob& job : jobs) {
    if (job.size_factor < 0.45) ++small;
    ++models[static_cast<int>(job.spec.model)];
    if (job.hot_ps) ++hot;
  }
  EXPECT_GT(small, 30);
  EXPECT_LT(small, 80);
  for (int m = 0; m < 3; ++m) EXPECT_GT(models[m], 10);
  EXPECT_GT(hot, 3);
  EXPECT_LT(hot, 30);
}

TEST(HarnessTest, ManualTunedJobCompletesNearIdealTime) {
  SingleJobScenario scenario;
  scenario.scheduler = SchedulerKind::kManualTuned;
  scenario.total_steps = 200000;
  scenario.seed = 2;
  const SingleJobResult result = RunSingleJob(scenario);
  ASSERT_EQ(result.final_state, JobState::kCompleted);
  EXPECT_GT(result.jct, Minutes(10));
  EXPECT_LT(result.jct, Minutes(25));
}

TEST(HarnessTest, DlroverWarmStartCompetitiveWithTuned) {
  SingleJobScenario tuned;
  tuned.scheduler = SchedulerKind::kManualTuned;
  tuned.seed = 4;
  SingleJobScenario dlrover = tuned;
  dlrover.scheduler = SchedulerKind::kDlrover;
  const SingleJobResult a = RunSingleJob(tuned);
  const SingleJobResult b = RunSingleJob(dlrover);
  ASSERT_EQ(a.final_state, JobState::kCompleted);
  ASSERT_EQ(b.final_state, JobState::kCompleted);
  // Within 15% of the hand-tuned optimum (paper: ~1.4%).
  EXPECT_LT(b.jct, a.jct * 1.15);
}

TEST(HarnessTest, HotPsHandlingOrderingMatchesPaper) {
  auto run = [](SchedulerKind scheduler) {
    SingleJobScenario scenario;
    scenario.scheduler = scheduler;
    scenario.total_steps = 120000;
    scenario.seed = 6;
    scenario.injection.kind = ScenarioInjection::Kind::kHotPs;
    scenario.injection.at = Minutes(6);
    scenario.initial = WellTunedConfig(scenario.model);
    return RunSingleJob(scenario);
  };
  const SingleJobResult none = run(SchedulerKind::kNoIntervention);
  const SingleJobResult traditional = run(SchedulerKind::kTraditional);
  const SingleJobResult dlrover = run(SchedulerKind::kDlrover);
  ASSERT_EQ(dlrover.final_state, JobState::kCompleted);
  // Fig 12 ordering: DLRover < traditional < no intervention.
  EXPECT_LT(dlrover.jct, traditional.jct);
  EXPECT_LT(traditional.jct, none.jct);
}

TEST(HarnessTest, StragglerHandlingOrderingMatchesPaper) {
  auto run = [](SchedulerKind scheduler) {
    SingleJobScenario scenario;
    scenario.scheduler = scheduler;
    scenario.total_steps = 120000;
    scenario.seed = 6;
    scenario.injection.kind = ScenarioInjection::Kind::kWorkerStraggler;
    scenario.injection.at = Minutes(6);
    scenario.initial = WellTunedConfig(scenario.model);
    return RunSingleJob(scenario);
  };
  const SingleJobResult none = run(SchedulerKind::kNoIntervention);
  const SingleJobResult dlrover = run(SchedulerKind::kDlrover);
  ASSERT_EQ(dlrover.final_state, JobState::kCompleted);
  // Fig 13: dynamic sharding absorbs the straggler without a restart.
  EXPECT_LT(dlrover.jct, none.jct);
  EXPECT_EQ(dlrover.stats.full_restarts, 0);
}

TEST(HarnessTest, FleetDlroverOutperformsManual) {
  FleetScenario scenario;
  scenario.workload.num_jobs = 24;
  scenario.workload.arrival_span = Hours(6);
  scenario.horizon = Hours(30);
  // The paper's operating point: an unstable cloud (compressed failure
  // exposure, see EXPERIMENTS.md). Fault-free, over-provisioned manual
  // configs are fast — just wasteful; the JCT gap opens under churn.
  scenario.failures.daily_pod_failure_rate = 0.5;
  scenario.failures.daily_straggler_rate = 0.35;
  scenario.seed = 21;

  scenario.dlrover_fraction = 0.0;
  const FleetResult manual = RunFleet(scenario);
  scenario.dlrover_fraction = 1.0;
  const FleetResult dlrover = RunFleet(scenario);

  EXPECT_GE(dlrover.CompletionRate(), manual.CompletionRate());
  const Distribution manual_jct = manual.JctDistribution(false, true);
  const Distribution dlrover_jct = dlrover.JctDistribution(true, false);
  ASSERT_GE(manual_jct.count(), 5u);
  ASSERT_GE(dlrover_jct.count(), 5u);
  EXPECT_LT(dlrover_jct.Median(), manual_jct.Median());
  EXPECT_LT(dlrover_jct.Percentile(90), manual_jct.Percentile(90));
}

TEST(HarnessTest, SeededHistoryWarmStartsNearTuned) {
  ConfigDb db;
  SeedHistoricalRecords(&db, 3);
  EXPECT_EQ(db.size(), 48u);  // 8 full-size + 8 small-quota per model
  WarmStartOptions options;
  const JobConfig warm =
      WarmStartConfig(db, MetadataFor(ModelKind::kWideDeep, 512, 200000),
                      options);
  const JobConfig tuned = WellTunedConfig(ModelKind::kWideDeep);
  EXPECT_GT(warm.num_workers, tuned.num_workers / 2);
  EXPECT_LE(warm.num_workers, tuned.num_workers + 4);
}

}  // namespace
}  // namespace dlrover
