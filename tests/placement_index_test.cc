// Unit and fuzz coverage for the PlacementIndex / RunningPodIndex pair: the
// O(log n) structures must answer exactly what the legacy linear scans
// answer — same node, same tie-break, same float rounding — under arbitrary
// insert/remove/update interleavings, and the preemption precheck must never
// reject a node the exact fold could use.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "cluster/placement_index.h"
#include "common/rng.h"

namespace dlrover {
namespace {

/// Mirror of the legacy Cluster::TryPlace scan over a plain node table.
struct FakeNode {
  ResourceSpec available;
  bool healthy = false;
};

int BruteForceBestFit(const std::vector<FakeNode>& nodes,
                      const ResourceSpec& request) {
  int best = -1;
  double best_left = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].healthy) continue;
    if (!request.FitsIn(nodes[i].available)) continue;
    const double left = nodes[i].available.cpu - request.cpu;
    if (left < best_left) {
      best_left = left;
      best = static_cast<int>(i);
    }
  }
  return best;
}

TEST(PlacementIndexTest, EmptyIndexHasNoFit) {
  PlacementIndex index(8);
  EXPECT_EQ(index.BestFit({1.0, GiB(1)}), -1);
  EXPECT_EQ(index.NumIndexedNodes(), 0u);
}

TEST(PlacementIndexTest, TieBreakPicksLowestNodeId) {
  // Homogeneous nodes: every remaining capacity is identical, so the legacy
  // scan keeps the first (lowest-id) node. Insert out of id order to make
  // sure the answer comes from the key order, not insertion order.
  PlacementIndex index(6);
  for (NodeId id : {4u, 1u, 5u, 0u, 3u, 2u}) {
    index.InsertNode(id, {16.0, GiB(64)});
  }
  EXPECT_EQ(index.BestFit({4.0, GiB(8)}), 0);
  index.RemoveNode(0);
  EXPECT_EQ(index.BestFit({4.0, GiB(8)}), 1);
  // A tighter node wins over a lower id.
  index.UpdateNode(5, {4.5, GiB(64)});
  EXPECT_EQ(index.BestFit({4.0, GiB(8)}), 5);
}

TEST(PlacementIndexTest, MemoryInfeasibleNodesAreSkipped) {
  PlacementIndex index(3);
  index.InsertNode(0, {8.0, GiB(2)});    // tightest CPU but not enough memory
  index.InsertNode(1, {12.0, GiB(64)});  // feasible
  index.InsertNode(2, {10.0, GiB(1)});   // second-tightest, memory-infeasible
  EXPECT_EQ(index.BestFit({8.0, GiB(8)}), 1);
  // Memory-only infeasibility across the board.
  EXPECT_EQ(index.BestFit({1.0, GiB(100)}), -1);
}

TEST(PlacementIndexTest, FitEpsilonMatchesLegacyPredicate) {
  // The fit predicate must be FitsIn verbatim: a request that exceeds the
  // available CPU by less than 1e-9 still fits, by more does not.
  PlacementIndex index(1);
  index.InsertNode(0, {8.0, GiB(8)});
  EXPECT_EQ(index.BestFit({8.0 + 0.5e-9, GiB(1)}), 0);
  EXPECT_EQ(index.BestFit({8.0 + 1.0e-8, GiB(1)}), -1);
}

TEST(PlacementIndexTest, FuzzBestFitMatchesBruteForce) {
  // Thousands of random mutations (insert / remove / re-key) interleaved
  // with best-fit queries over a mix of request shapes; every query must
  // agree with the legacy scan replica, including "no fit".
  Rng rng(20240808);
  constexpr size_t kNodes = 64;
  PlacementIndex index(kNodes);
  std::vector<FakeNode> mirror(kNodes);
  int hits = 0;
  int misses = 0;
  for (int step = 0; step < 20000; ++step) {
    const double dice = rng.Uniform();
    const NodeId id = static_cast<NodeId>(rng.UniformInt(kNodes));
    if (dice < 0.25) {
      if (!mirror[id].healthy) {
        // Quantize capacities so distinct nodes collide on the same values
        // often — the tie-break paths get real exercise.
        const ResourceSpec avail{rng.UniformInt(0, 32) * 0.5,
                                 GiB(static_cast<double>(rng.UniformInt(0, 64)))};
        mirror[id] = {avail, true};
        index.InsertNode(id, avail);
      }
    } else if (dice < 0.40) {
      if (mirror[id].healthy) {
        mirror[id].healthy = false;
        index.RemoveNode(id);
      }
    } else if (dice < 0.60) {
      if (mirror[id].healthy) {
        const ResourceSpec avail{rng.UniformInt(0, 32) * 0.5,
                                 GiB(static_cast<double>(rng.UniformInt(0, 64)))};
        mirror[id].available = avail;
        index.UpdateNode(id, avail);
      }
    } else {
      const ResourceSpec request{rng.UniformInt(0, 40) * 0.5,
                                 GiB(static_cast<double>(rng.UniformInt(0, 80)))};
      const int want = BruteForceBestFit(mirror, request);
      ASSERT_EQ(index.BestFit(request), want)
          << "step " << step << " request " << request.ToString();
      (want >= 0 ? hits : misses) += 1;
    }
  }
  // The script must have exercised both outcomes to mean anything.
  EXPECT_GT(hits, 1000);
  EXPECT_GT(misses, 100);
}

TEST(PlacementIndexTest, FuzzMaybeFreeableIsConservative) {
  // MaybeFreeable == false must imply the exact legacy fold cannot free
  // room: evicting *every* strictly-lower-priority pod still does not fit.
  Rng rng(77);
  constexpr PriorityClass kClasses[] = {
      PriorityClass::kBestEffort, PriorityClass::kTraining,
      PriorityClass::kStream, PriorityClass::kOnline};
  for (int round = 0; round < 4000; ++round) {
    PlacementIndex index(1);
    const ResourceSpec avail{rng.Uniform(0.0, 8.0), GiB(rng.Uniform(0.0, 16.0))};
    // Random pod population on the node, mirrored exactly.
    std::vector<std::pair<PriorityClass, ResourceSpec>> pods;
    const int n = static_cast<int>(rng.UniformInt(0, 12));
    for (int i = 0; i < n; ++i) {
      const PriorityClass cls = kClasses[rng.UniformInt(4)];
      const ResourceSpec req{rng.Uniform(0.5, 8.0), GiB(rng.Uniform(0.5, 16.0))};
      pods.emplace_back(cls, req);
      index.AddPod(0, cls, req);
    }
    const PriorityClass preemptor = kClasses[rng.UniformInt(4)];
    const ResourceSpec request{rng.Uniform(0.5, 48.0),
                               GiB(rng.Uniform(0.5, 96.0))};
    // Legacy upper bound: avail plus every strictly-lower-priority request
    // (the fold's final would_free when nothing short of everything fits).
    ResourceSpec would_free = avail;
    for (const auto& pod : pods) {
      if (static_cast<int>(pod.first) < static_cast<int>(preemptor)) {
        would_free += pod.second;
      }
    }
    if (request.FitsIn(would_free)) {
      EXPECT_TRUE(index.MaybeFreeable(0, avail, request, preemptor))
          << "precheck rejected a node the exact fold can use";
    }
  }
}

TEST(PlacementIndexTest, PodAggregatesReanchorOnEmpty) {
  PlacementIndex index(1);
  const ResourceSpec a{1.1, GiB(3)};
  const ResourceSpec b{2.7, GiB(5)};
  index.AddPod(0, PriorityClass::kTraining, a);
  index.AddPod(0, PriorityClass::kTraining, b);
  index.RemovePod(0, PriorityClass::kTraining, a);
  index.RemovePod(0, PriorityClass::kTraining, b);
  const int bucket = PriorityBucket(PriorityClass::kTraining);
  EXPECT_EQ(index.PodCount(0, bucket), 0u);
  // Bitwise zero, not just near-zero: the empty bucket re-anchors.
  EXPECT_EQ(index.PodTotal(0, bucket).cpu, 0.0);
  EXPECT_EQ(index.PodTotal(0, bucket).memory, 0.0);
}

TEST(RunningPodIndexTest, VisitsInCreationOrderPerClass) {
  RunningPodIndex index;
  std::vector<Pod> pods(8);
  // Interleave two classes, inserting out of creation order (pods start
  // running in startup-completion order, not submission order).
  const uint64_t seqs[] = {5, 1, 7, 3, 0, 6, 2, 4};
  for (int i = 0; i < 8; ++i) {
    pods[i].creation_seq = seqs[i];
    pods[i].spec.priority =
        (seqs[i] % 2 == 0) ? PriorityClass::kTraining : PriorityClass::kOnline;
    index.Insert(pods[i].spec.priority, seqs[i], &pods[i]);
  }
  auto collect = [&](PriorityClass cls) {
    std::vector<uint64_t> seen;
    index.Visit(cls, [&](const Pod& pod) { seen.push_back(pod.creation_seq); });
    return seen;
  };
  EXPECT_EQ(collect(PriorityClass::kTraining),
            (std::vector<uint64_t>{0, 2, 4, 6}));
  EXPECT_EQ(collect(PriorityClass::kOnline),
            (std::vector<uint64_t>{1, 3, 5, 7}));
  EXPECT_EQ(index.Size(PriorityClass::kTraining), 4u);

  index.Remove(PriorityClass::kTraining, 2);
  index.Remove(PriorityClass::kOnline, 7);
  EXPECT_EQ(collect(PriorityClass::kTraining),
            (std::vector<uint64_t>{0, 4, 6}));
  EXPECT_EQ(collect(PriorityClass::kOnline), (std::vector<uint64_t>{1, 3, 5}));
  EXPECT_EQ(index.Size(PriorityClass::kTraining), 3u);
  EXPECT_EQ(index.Size(PriorityClass::kOnline), 3u);
}

TEST(RunningPodIndexTest, FuzzMatchesOrderedMirror) {
  Rng rng(31337);
  RunningPodIndex index;
  std::vector<Pod> pods(512);
  std::vector<uint64_t> live;  // mirror, kept sorted = creation order
  uint64_t next_seq = 0;
  for (int step = 0; step < 5000; ++step) {
    if (rng.Uniform() < 0.55 && next_seq < pods.size()) {
      const uint64_t seq = next_seq++;
      pods[seq].creation_seq = seq;
      pods[seq].spec.priority = PriorityClass::kTraining;
      index.Insert(PriorityClass::kTraining, seq, &pods[seq]);
      live.insert(std::lower_bound(live.begin(), live.end(), seq), seq);
    } else if (!live.empty()) {
      const size_t pick = rng.UniformInt(live.size());
      index.Remove(PriorityClass::kTraining, live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 64 == 0) {
      std::vector<uint64_t> seen;
      index.Visit(PriorityClass::kTraining,
                  [&](const Pod& pod) { seen.push_back(pod.creation_seq); });
      ASSERT_EQ(seen, live) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace dlrover
