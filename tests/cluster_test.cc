#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "cluster/background_load.h"
#include "cluster/failure_injector.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

ClusterOptions TinyCluster(int nodes = 2, Cores cpu = 16.0) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.node_capacity = {cpu, GiB(64)};
  options.min_pod_startup = Seconds(10);
  options.max_pod_startup = Seconds(10);
  return options;
}

PodSpec TrainingPod(Cores cpu, Bytes mem = GiB(8)) {
  PodSpec spec;
  spec.name = "train";
  spec.request = {cpu, mem};
  spec.priority = PriorityClass::kTraining;
  return spec;
}

TEST(ClusterTest, PodLifecycleRuns) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster());
  bool running = false;
  bool stopped = false;
  const PodId id = cluster.CreatePod(
      TrainingPod(4.0), [&](Pod&) { running = true; },
      [&](Pod&, PodStopReason reason) {
        stopped = true;
        EXPECT_EQ(reason, PodStopReason::kOwnerKill);
      });
  EXPECT_EQ(cluster.GetPod(id)->phase, PodPhase::kStarting);
  sim.RunUntil(Seconds(20));
  EXPECT_TRUE(running);
  EXPECT_EQ(cluster.GetPod(id)->phase, PodPhase::kRunning);
  cluster.KillPod(id);
  EXPECT_TRUE(stopped);
  EXPECT_EQ(cluster.GetPod(id)->phase, PodPhase::kKilled);
}

TEST(ClusterTest, CapacityNeverExceeded) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(2, 16.0));
  for (int i = 0; i < 10; ++i) {
    cluster.CreatePod(TrainingPod(6.0), nullptr, nullptr);
    for (size_t n = 0; n < cluster.num_nodes(); ++n) {
      const Node& node = cluster.GetNode(static_cast<NodeId>(n));
      EXPECT_LE(node.allocated.cpu, node.capacity.cpu + 1e-9);
      EXPECT_LE(node.allocated.memory, node.capacity.memory + 1e-9);
    }
  }
  // 2 nodes x 16 cores / 6 cores = 2 per node -> 4 placed, 6 pending.
  EXPECT_EQ(cluster.PendingCount(), 6u);
}

TEST(ClusterTest, PendingPodPlacesWhenCapacityFrees) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(1, 16.0));
  const PodId a = cluster.CreatePod(TrainingPod(10.0), nullptr, nullptr);
  const PodId b = cluster.CreatePod(TrainingPod(10.0), nullptr, nullptr);
  EXPECT_EQ(cluster.GetPod(b)->phase, PodPhase::kPending);
  cluster.KillPod(a);
  EXPECT_EQ(cluster.GetPod(b)->phase, PodPhase::kStarting);
}

TEST(ClusterTest, HigherPriorityPreemptsLower) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(1, 16.0));
  PodStopReason reason = PodStopReason::kCompleted;
  const PodId victim = cluster.CreatePod(
      TrainingPod(12.0), nullptr,
      [&](Pod&, PodStopReason r) { reason = r; });
  sim.RunUntil(Seconds(20));
  ASSERT_EQ(cluster.GetPod(victim)->phase, PodPhase::kRunning);

  PodSpec online = TrainingPod(12.0);
  online.priority = PriorityClass::kOnline;
  const PodId high = cluster.CreatePod(std::move(online), nullptr, nullptr);
  EXPECT_EQ(cluster.GetPod(victim)->phase, PodPhase::kPreempted);
  EXPECT_EQ(reason, PodStopReason::kPreemption);
  EXPECT_NE(cluster.GetPod(high)->phase, PodPhase::kPending);
  EXPECT_EQ(cluster.counters().pods_preempted, 1u);
}

TEST(ClusterTest, EqualPriorityNeverPreempts) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(1, 16.0));
  const PodId a = cluster.CreatePod(TrainingPod(12.0), nullptr, nullptr);
  const PodId b = cluster.CreatePod(TrainingPod(12.0), nullptr, nullptr);
  EXPECT_NE(cluster.GetPod(a)->phase, PodPhase::kPreempted);
  EXPECT_EQ(cluster.GetPod(b)->phase, PodPhase::kPending);
}

TEST(ClusterTest, PendingQueueServesHigherPriorityFirst) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(1, 16.0));
  const PodId hog = cluster.CreatePod(TrainingPod(16.0), nullptr, nullptr);
  const PodId low = cluster.CreatePod(TrainingPod(16.0), nullptr, nullptr);
  PodSpec stream = TrainingPod(16.0);
  stream.priority = PriorityClass::kStream;
  const PodId mid = cluster.CreatePod(std::move(stream), nullptr, nullptr);
  // Stream preempts the training hog immediately.
  EXPECT_EQ(cluster.GetPod(hog)->phase, PodPhase::kPreempted);
  EXPECT_NE(cluster.GetPod(mid)->phase, PodPhase::kPending);
  EXPECT_EQ(cluster.GetPod(low)->phase, PodPhase::kPending);
}

TEST(ClusterTest, FailNodeKillsItsPods) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(2, 16.0));
  std::vector<PodId> pods;
  for (int i = 0; i < 4; ++i) {
    pods.push_back(cluster.CreatePod(TrainingPod(8.0), nullptr, nullptr));
  }
  sim.RunUntil(Seconds(20));
  cluster.FailNode(0);
  int failed = 0;
  for (PodId id : pods) {
    if (cluster.GetPod(id)->phase == PodPhase::kFailed) ++failed;
  }
  EXPECT_EQ(failed, 2);
  // The failed node's capacity is gone.
  EXPECT_DOUBLE_EQ(cluster.TotalCapacity().cpu, 16.0);
}

TEST(ClusterTest, UsageAggregation) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(1, 16.0));
  const PodId id = cluster.CreatePod(TrainingPod(8.0), nullptr, nullptr);
  sim.RunUntil(Seconds(20));
  cluster.ReportUsage(id, {4.0, GiB(4)});
  const ClusterUsage usage = cluster.Usage();
  EXPECT_DOUBLE_EQ(usage.cpu_allocated_fraction, 0.5);
  EXPECT_DOUBLE_EQ(usage.cpu_used_fraction, 0.25);
  EXPECT_DOUBLE_EQ(usage.cpu_used_of_allocated, 0.5);
}

TEST(ClusterTest, ScarcityDetection) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(1, 16.0));
  EXPECT_FALSE(cluster.UnderScarcity());
  cluster.CreatePod(TrainingPod(15.0), nullptr, nullptr);
  EXPECT_TRUE(cluster.UnderScarcity());
}

TEST(ClusterTest, VisitPodsSeesEverything) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster());
  for (int i = 0; i < 5; ++i) {
    cluster.CreatePod(TrainingPod(2.0), nullptr, nullptr);
  }
  int count = 0;
  cluster.VisitPods([&](const Pod&) { ++count; });
  EXPECT_EQ(count, 5);
}

// A terminated pod stays resolvable (for post-mortem inspection) until its
// slab slot is re-armed by a new pod; from then on the old id is stale and
// every lookup or kill through it must be a safe no-op.
TEST(ClusterTest, StalePodIdIsNullAfterSlotReuse) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(1, 16.0));
  const PodId dead = cluster.CreatePod(TrainingPod(4.0), nullptr, nullptr);
  cluster.KillPod(dead);
  ASSERT_NE(cluster.GetPod(dead), nullptr);
  EXPECT_EQ(cluster.GetPod(dead)->phase, PodPhase::kKilled);

  // Reuses the freed slot with a bumped generation.
  const PodId fresh = cluster.CreatePod(TrainingPod(4.0), nullptr, nullptr);
  EXPECT_NE(fresh, dead);
  EXPECT_EQ(cluster.GetPod(dead), nullptr);
  ASSERT_NE(cluster.GetPod(fresh), nullptr);
  EXPECT_EQ(cluster.GetPod(fresh)->id, fresh);

  // Operations through the stale id must not touch the new tenant.
  cluster.KillPod(dead);
  cluster.FailPod(dead, PodStopReason::kCrash);
  EXPECT_EQ(cluster.GetPod(fresh)->phase, PodPhase::kStarting);
}

// VisitPods iterates in creation order regardless of slot recycling; the
// failure injector draws one Bernoulli per visited pod, so this order is
// part of the deterministic-output contract.
TEST(ClusterTest, VisitPodsKeepsCreationOrderAcrossSlotReuse) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(2, 16.0));
  std::vector<PodId> created;
  for (int i = 0; i < 4; ++i) {
    created.push_back(cluster.CreatePod(TrainingPod(2.0), nullptr, nullptr));
  }
  cluster.KillPod(created[1]);
  cluster.KillPod(created[2]);
  for (int i = 0; i < 3; ++i) {
    created.push_back(cluster.CreatePod(TrainingPod(2.0), nullptr, nullptr));
  }
  std::vector<PodId> visited;
  cluster.VisitPods([&](const Pod& pod) { visited.push_back(pod.id); });
  EXPECT_EQ(visited, created);
}

// Regression: a fully failed cluster has zero capacity; UnderScarcity must
// report false instead of dividing by zero.
TEST(ClusterTest, UnderScarcityFalseOnZeroCapacity) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(1, 16.0));
  cluster.CreatePod(TrainingPod(15.0), nullptr, nullptr);
  EXPECT_TRUE(cluster.UnderScarcity());
  cluster.FailNode(0);
  EXPECT_DOUBLE_EQ(cluster.TotalCapacity().cpu, 0.0);
  EXPECT_FALSE(cluster.UnderScarcity());
}

// Incremental totals must agree with a fresh per-node scan at every point
// of the pod lifecycle, including node failure.
TEST(ClusterTest, IncrementalAccountingMatchesScan) {
  Simulator sim;
  ClusterOptions scan_options = TinyCluster(3, 16.0);
  scan_options.incremental_accounting = false;
  Simulator scan_sim;

  auto check = [](Cluster& incremental, Cluster& scan) {
    EXPECT_DOUBLE_EQ(incremental.TotalCapacity().cpu,
                     scan.TotalCapacity().cpu);
    EXPECT_DOUBLE_EQ(incremental.TotalAllocated().cpu,
                     scan.TotalAllocated().cpu);
    EXPECT_DOUBLE_EQ(incremental.TotalUsage().cpu, scan.TotalUsage().cpu);
    EXPECT_DOUBLE_EQ(incremental.TotalAllocated().memory,
                     scan.TotalAllocated().memory);
  };

  Cluster incremental(&sim, TinyCluster(3, 16.0));
  Cluster scan(&scan_sim, scan_options);
  std::vector<PodId> a, b;
  for (int i = 0; i < 5; ++i) {
    a.push_back(incremental.CreatePod(TrainingPod(6.0), nullptr, nullptr));
    b.push_back(scan.CreatePod(TrainingPod(6.0), nullptr, nullptr));
  }
  sim.RunUntil(Seconds(20));
  scan_sim.RunUntil(Seconds(20));
  incremental.ReportUsage(a[0], {3.0, GiB(3)});
  scan.ReportUsage(b[0], {3.0, GiB(3)});
  check(incremental, scan);

  incremental.KillPod(a[1]);
  scan.KillPod(b[1]);
  check(incremental, scan);

  incremental.FailNode(0);
  scan.FailNode(0);
  check(incremental, scan);
}

// Regression: killing pods from inside a preemption-victim callback must
// not corrupt the pending queue (this used to be a use-after-free).
TEST(ClusterTest, ReentrantKillDuringPreemptionIsSafe) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(1, 16.0));
  std::vector<PodId> my_pods;
  const PodId a = cluster.CreatePod(
      TrainingPod(8.0), nullptr, [&](Pod&, PodStopReason reason) {
        if (reason == PodStopReason::kPreemption) {
          // Tear down our other pods and submit replacements, like a job
          // restart would.
          for (PodId id : my_pods) cluster.KillPod(id);
          cluster.CreatePod(TrainingPod(8.0), nullptr, nullptr);
          cluster.CreatePod(TrainingPod(8.0), nullptr, nullptr);
        }
      });
  const PodId b = cluster.CreatePod(TrainingPod(8.0), nullptr, nullptr);
  my_pods = {a, b};
  sim.RunUntil(Seconds(20));

  PodSpec online = TrainingPod(16.0);
  online.priority = PriorityClass::kOnline;
  cluster.CreatePod(std::move(online), nullptr, nullptr);
  sim.RunUntil(Minutes(2));  // must not crash
  EXPECT_GE(cluster.counters().pods_preempted, 1u);
}

TEST(ClusterTest, PreemptionBudgetBreaksRelaunchLivelock) {
  // A victim whose stop callback synchronously resubmits an identical pod
  // steals the freed capacity before the preemptor can claim it. With no
  // relaunch backoff that cycle never leaves the current instant; the
  // per-instant preemption budget must cut it off so the simulation keeps
  // advancing (the preemptor waits in the pending queue instead).
  Simulator sim;
  ClusterOptions options = TinyCluster(1, 16.0);
  options.max_preemptions_per_instant = 64;
  Cluster cluster(&sim, options);
  auto respawn =
      std::make_shared<std::function<void(Pod&, PodStopReason)>>();
  *respawn = [&cluster, respawn](Pod&, PodStopReason reason) {
    if (reason == PodStopReason::kPreemption) {
      cluster.CreatePod(TrainingPod(16.0), nullptr, *respawn);
    }
  };
  cluster.CreatePod(TrainingPod(16.0), nullptr, *respawn);

  PodSpec online = TrainingPod(16.0);
  online.priority = PriorityClass::kOnline;
  const PodId svc = cluster.CreatePod(std::move(online), nullptr, nullptr);

  // Each cycle evicts exactly one victim, so the storm stops right at the
  // budget; the service pod is parked pending and the clock can advance.
  EXPECT_EQ(cluster.counters().pods_preempted, 64u);
  EXPECT_EQ(cluster.GetPod(svc)->phase, PodPhase::kPending);

  // A later instant (the periodic reschedule pump) opens a fresh budget —
  // still bounded, still terminating.
  sim.RunUntil(Seconds(16));
  EXPECT_EQ(cluster.counters().pods_preempted, 128u);
}

TEST(FailureInjectorTest, InjectsCrashesAtConfiguredRate) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(20, 32.0));
  for (int i = 0; i < 40; ++i) {
    cluster.CreatePod(TrainingPod(4.0, GiB(2)), nullptr, nullptr);
  }
  FailureInjectorOptions options;
  options.daily_pod_failure_rate = 0.5;  // aggressive for test speed
  options.daily_straggler_rate = 0.5;
  FailureInjector injector(&sim, &cluster, options);
  injector.Start();
  sim.RunUntil(Days(1));
  // Expect roughly 40 * 0.5 = 20 crashes; accept a wide band.
  EXPECT_GT(injector.crashes_injected(), 5u);
  EXPECT_LT(injector.crashes_injected(), 40u);
  EXPECT_GT(injector.stragglers_injected(), 2u);
}

TEST(FailureInjectorTest, OnlyTargetsConfiguredPriority) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(4, 32.0));
  PodSpec online = TrainingPod(4.0, GiB(2));
  online.priority = PriorityClass::kOnline;
  for (int i = 0; i < 10; ++i) {
    PodSpec copy = online;
    cluster.CreatePod(std::move(copy), nullptr, nullptr);
  }
  FailureInjectorOptions options;
  options.daily_pod_failure_rate = 1.0;
  FailureInjector injector(&sim, &cluster, options);
  injector.Start();
  sim.RunUntil(Days(2));
  EXPECT_EQ(injector.crashes_injected(), 0u);
}

TEST(BackgroundLoadTest, TracksDiurnalTarget) {
  Simulator sim;
  Cluster cluster(&sim, TinyCluster(20, 32.0));
  BackgroundLoadOptions options;
  options.base_fraction = 0.2;
  options.peak_fraction = 0.2;
  BackgroundLoad load(&sim, &cluster, options);
  load.Start();
  sim.RunUntil(Hours(1));
  const size_t at_base = load.ActivePods();
  sim.RunUntil(Hours(6));  // sin peak at 1/4 period
  const size_t at_peak = load.ActivePods();
  EXPECT_GT(at_peak, at_base);
  load.Stop();
  EXPECT_EQ(load.ActivePods(), 0u);
}

}  // namespace
}  // namespace dlrover
