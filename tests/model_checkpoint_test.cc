#include "dlrm/model_checkpoint.h"

#include <gtest/gtest.h>

#include "dlrm/criteo_synth.h"
#include "dlrm/mini_dlrm.h"

namespace dlrover {
namespace {

MiniDlrmConfig SmallModel() {
  MiniDlrmConfig config;
  config.arch = ModelKind::kWideDeep;
  config.emb_dim = 6;
  config.hash_buckets = 1024;
  config.mlp_hidden = {16, 8};
  config.seed = 5;
  return config;
}

ModelCheckpoint TinyCheckpoint(uint64_t committed) {
  ModelCheckpoint ckpt;
  ckpt.committed_batches = committed;
  ckpt.model.dense = {0.5, -1.25, 3.0};
  ckpt.model.sparse.emb_keys = {7, 11};
  ckpt.model.sparse.emb_values = {1.0f, 2.0f};
  ckpt.queue.cursor = committed;
  ckpt.queue.completed_batches = committed;
  ckpt.times_trained.assign(16, 0);
  return ckpt;
}

TEST(CheckpointVaultTest, ChecksumDetectsPayloadMutation) {
  ModelCheckpoint ckpt = TinyCheckpoint(10);
  ckpt.checksum = CheckpointVault::Checksum(ckpt);
  EXPECT_TRUE(CheckpointVault::Verify(ckpt));

  ModelCheckpoint dense_flip = ckpt;
  dense_flip.model.dense[1] += 1e-9;
  EXPECT_FALSE(CheckpointVault::Verify(dense_flip));

  ModelCheckpoint count_flip = ckpt;
  count_flip.committed_batches ^= 1;
  EXPECT_FALSE(CheckpointVault::Verify(count_flip));

  ModelCheckpoint audit_flip = ckpt;
  audit_flip.times_trained[3] = 1;
  EXPECT_FALSE(CheckpointVault::Verify(audit_flip));

  ModelCheckpoint queue_flip = ckpt;
  DataShard extra;
  extra.start_batch = 4;
  extra.end_batch = 8;
  queue_flip.queue.pending.push_back(extra);
  EXPECT_FALSE(CheckpointVault::Verify(queue_flip));
}

TEST(CheckpointVaultTest, VerifyRejectsUnknownFormatVersion) {
  ModelCheckpoint ckpt = TinyCheckpoint(10);
  ckpt.format_version = 2;
  ckpt.checksum = CheckpointVault::Checksum(ckpt);
  EXPECT_FALSE(CheckpointVault::Verify(ckpt));
}

TEST(CheckpointVaultTest, KeepsNewestGenerationsAndEvictsOldest) {
  CheckpointVault vault(2);
  vault.Commit(TinyCheckpoint(10));
  vault.Commit(TinyCheckpoint(20));
  const uint64_t gen = vault.Commit(TinyCheckpoint(30));
  EXPECT_EQ(vault.size(), 2u);
  EXPECT_EQ(vault.generations_committed(), 3u);
  const ModelCheckpoint* latest = vault.LatestValid();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->generation, gen);
  EXPECT_EQ(latest->committed_batches, 30u);
}

TEST(CheckpointVaultTest, CorruptedWriteFallsBackToOlderGeneration) {
  CheckpointVault vault(3);
  vault.Commit(TinyCheckpoint(10));
  vault.CommitCorrupted(TinyCheckpoint(20));
  const ModelCheckpoint* latest = vault.LatestValid();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->committed_batches, 10u)
      << "the torn generation-2 write must be skipped";
  EXPECT_EQ(vault.size(), 2u) << "the corrupted generation is still stored";
}

TEST(CheckpointVaultTest, AllGenerationsCorruptedMeansNoRestoreTarget) {
  CheckpointVault vault(2);
  vault.CommitCorrupted(TinyCheckpoint(10));
  vault.CommitCorrupted(TinyCheckpoint(20));
  EXPECT_EQ(vault.LatestValid(), nullptr);
}

TEST(CheckpointVaultTest, TornWriteFallsBackToOlderGeneration) {
  // A write cut short mid-stream leaves a truncated payload whose lengths
  // no longer match the checksum; restore must skip it, not trust it.
  CheckpointVault vault(3);
  vault.Commit(TinyCheckpoint(10));
  const uint64_t torn_gen = vault.CommitTruncated(TinyCheckpoint(20));
  EXPECT_EQ(torn_gen, 1u);  // generations are 0-indexed
  const ModelCheckpoint* latest = vault.LatestValid();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->committed_batches, 10u)
      << "the truncated generation-2 write must be skipped";
  EXPECT_EQ(vault.size(), 2u) << "the torn generation is still stored";
}

TEST(CheckpointVaultTest, TornWriteIsInvalidForEveryPayloadShape) {
  // CommitTruncated cuts whichever payload section exists; every shape must
  // fail verification (the checksum folds all vector lengths).
  ModelCheckpoint sparse = TinyCheckpoint(10);
  ModelCheckpoint dense_only = TinyCheckpoint(10);
  dense_only.model.sparse.emb_values.clear();
  ModelCheckpoint audit_only = TinyCheckpoint(10);
  audit_only.model.sparse.emb_values.clear();
  audit_only.model.dense.clear();
  ModelCheckpoint bare = TinyCheckpoint(10);
  bare.model.sparse.emb_values.clear();
  bare.model.dense.clear();
  bare.times_trained.clear();

  for (ModelCheckpoint* ckpt :
       {&sparse, &dense_only, &audit_only, &bare}) {
    CheckpointVault vault(1);
    vault.CommitTruncated(std::move(*ckpt));
    EXPECT_EQ(vault.LatestValid(), nullptr);
  }
}

TEST(CheckpointVaultTest, TornThenHealthyWriteRestoresNewest) {
  CheckpointVault vault(3);
  vault.Commit(TinyCheckpoint(10));
  vault.CommitTruncated(TinyCheckpoint(20));
  vault.Commit(TinyCheckpoint(30));
  const ModelCheckpoint* latest = vault.LatestValid();
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->committed_batches, 30u);
}

TEST(ModelStateTest, ExportImportRoundTripsPredictions) {
  CriteoSynth data(31);
  const CriteoBatch probe = data.Batch(0, 64);

  MiniDlrm trained(SmallModel());
  for (int step = 0; step < 20; ++step) {
    const CriteoBatch batch = data.Batch(1000 + step * 64, 64);
    const ParamSnapshot snapshot = trained.TakeSnapshot(batch);
    DlrmGradients grads;
    trained.ForwardBackward(batch, snapshot, &grads);
    trained.ApplyGradients(grads, 0.1);
  }
  DlrmStateBlob blob;
  trained.ExportState(&blob);

  MiniDlrm restored(SmallModel());
  ASSERT_TRUE(restored.ImportState(blob).ok());
  const std::vector<double> want = trained.Predict(probe);
  const std::vector<double> got = restored.Predict(probe);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(want[i], got[i]) << "row " << i;
  }
}

TEST(ModelStateTest, ImportRejectsMismatchedBlob) {
  MiniDlrm model(SmallModel());
  DlrmStateBlob blob;
  model.ExportState(&blob);
  blob.dense.pop_back();
  EXPECT_EQ(model.ImportState(blob).code(), StatusCode::kInvalidArgument);
}

TEST(ModelStateTest, SparseExportIsCanonicalAcrossInsertionOrder) {
  // Two models touch the same keys through different interleavings; their
  // exported sparse snapshots must be byte-identical (the checkpoint
  // checksum depends on it).
  CriteoSynth data(31);
  const CriteoBatch a = data.Batch(0, 64);
  const CriteoBatch b = data.Batch(64 * 7, 64);
  auto train_on = [](MiniDlrm* m, const CriteoBatch& batch) {
    const ParamSnapshot snapshot = m->TakeSnapshot(batch);
    DlrmGradients grads;
    m->ForwardBackward(batch, snapshot, &grads);
    m->ApplyGradients(grads, 0.1);
  };
  MiniDlrm ab(SmallModel());
  train_on(&ab, a);
  train_on(&ab, b);
  MiniDlrm ba(SmallModel());
  train_on(&ba, b);
  train_on(&ba, a);

  DlrmStateBlob blob_ab;
  DlrmStateBlob blob_ba;
  ab.ExportState(&blob_ab);
  ba.ExportState(&blob_ba);
  EXPECT_EQ(blob_ab.sparse.emb_keys, blob_ba.sparse.emb_keys);
  EXPECT_EQ(blob_ab.sparse.wide_keys, blob_ba.sparse.wide_keys);
}

}  // namespace
}  // namespace dlrover
