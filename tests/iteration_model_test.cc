#include "ps/iteration_model.h"

#include <gtest/gtest.h>

#include "ps/model_profile.h"

namespace dlrover {
namespace {

JobConfig BaseConfig() {
  JobConfig config;
  config.num_workers = 16;
  config.num_ps = 4;
  config.worker_cpu = 8.0;
  config.ps_cpu = 4.0;
  return config;
}

class IterationLawTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(IterationLawTest, ComponentsMatchEquationsForBalancedGroup) {
  const ModelProfile p = GetModelProfile(GetParam());
  const EnvironmentProfile env;
  const JobConfig config = BaseConfig();
  const IterationBreakdown iter =
      ComputeHealthyIteration(p, env, 512, config);
  // Eqn 2.
  EXPECT_NEAR(iter.t_grad, p.alpha_grad * 512.0 / 8.0 + p.beta_grad, 1e-12);
  // Eqn 3.
  EXPECT_NEAR(iter.t_upd, p.alpha_upd * 16.0 / (4.0 * 4.0) + p.beta_upd,
              1e-12);
  // Eqn 4.
  EXPECT_NEAR(iter.t_sync,
              p.alpha_sync * (p.dense_param_bytes / 4.0) /
                      (env.network_bandwidth / 16.0) +
                  p.beta_sync,
              1e-9);
  // Eqn 5.
  EXPECT_NEAR(iter.t_emb,
              p.alpha_emb * 512.0 * p.embedding_dim / 4.0 + p.beta_emb,
              1e-12);
}

TEST_P(IterationLawTest, MonotoneInResources) {
  const ModelProfile p = GetModelProfile(GetParam());
  const EnvironmentProfile env;
  const JobConfig base = BaseConfig();
  const double t0 = ComputeHealthyIteration(p, env, 512, base).Total();

  JobConfig more_ps = base;
  more_ps.num_ps *= 2;
  EXPECT_LT(ComputeHealthyIteration(p, env, 512, more_ps).Total(), t0);

  JobConfig more_worker_cpu = base;
  more_worker_cpu.worker_cpu = 12.0;
  EXPECT_LT(ComputeHealthyIteration(p, env, 512, more_worker_cpu).Total(),
            t0);

  // More workers *raises* per-iteration time (PS contention, sync traffic);
  // throughput still improves because w scales the numerator.
  JobConfig more_workers = base;
  more_workers.num_workers *= 2;
  const IterationBreakdown crowded =
      ComputeHealthyIteration(p, env, 512, more_workers);
  EXPECT_GT(crowded.Total(), t0);
  EXPECT_GT(ThroughputSamplesPerSec(crowded, 512, more_workers.num_workers),
            ThroughputSamplesPerSec(
                ComputeHealthyIteration(p, env, 512, base), 512,
                base.num_workers));
}

TEST_P(IterationLawTest, ParallelismSaturates) {
  const ModelProfile p = GetModelProfile(GetParam());
  const EnvironmentProfile env;
  JobConfig at_cap = BaseConfig();
  at_cap.worker_cpu = p.max_worker_parallelism;
  JobConfig beyond = at_cap;
  beyond.worker_cpu = p.max_worker_parallelism * 3.0;
  EXPECT_DOUBLE_EQ(ComputeHealthyIteration(p, env, 512, at_cap).Total(),
                   ComputeHealthyIteration(p, env, 512, beyond).Total());
}

INSTANTIATE_TEST_SUITE_P(AllModels, IterationLawTest,
                         ::testing::Values(ModelKind::kWideDeep,
                                           ModelKind::kXDeepFm,
                                           ModelKind::kDcn));

TEST(PsGroupStateTest, BalancedMatchesInverseP) {
  const PsGroupState balanced = PsGroupState::Balanced(4);
  EXPECT_DOUBLE_EQ(balanced.EffectiveInverseP(), 0.25);
}

TEST(PsGroupStateTest, HotPsGatesTheGroup) {
  PsGroupState state = PsGroupState::Balanced(4);
  state.speeds[2] = 0.03;  // paper's degraded PS
  EXPECT_NEAR(state.EffectiveInverseP(), 0.25 / 0.03, 1e-9);

  PsGroupState imbalanced = PsGroupState::Balanced(4);
  imbalanced.shares = {0.4, 0.2, 0.2, 0.2};
  EXPECT_DOUBLE_EQ(imbalanced.EffectiveInverseP(), 0.4);
}

TEST(PsGroupStateTest, HotPsSlowsIterationButNotGradCompute) {
  const ModelProfile p = GetModelProfile(ModelKind::kWideDeep);
  const EnvironmentProfile env;
  const JobConfig config = BaseConfig();
  PsGroupState degraded = PsGroupState::Balanced(config.num_ps);
  degraded.speeds[0] = 0.03;
  const IterationBreakdown healthy =
      ComputeHealthyIteration(p, env, 512, config);
  const IterationBreakdown hot = ComputeIteration(
      p, env, 512, config.num_workers, config, 1.0, degraded);
  EXPECT_DOUBLE_EQ(hot.t_grad, healthy.t_grad);
  EXPECT_GT(hot.t_upd, healthy.t_upd * 5.0);
  EXPECT_GT(hot.t_emb, healthy.t_emb * 5.0);
}

TEST(ModelProfileTest, EmbeddingGrowthSaturates) {
  const ModelProfile p = GetModelProfile(ModelKind::kWideDeep);
  EXPECT_DOUBLE_EQ(p.EmbeddingBytesAt(0.0), 0.0);
  const Bytes early = p.EmbeddingBytesAt(1e6);
  const Bytes mid = p.EmbeddingBytesAt(1e8);
  const Bytes late = p.EmbeddingBytesAt(1e12);
  EXPECT_LT(early, mid);
  EXPECT_LT(mid, late);
  EXPECT_NEAR(late, p.phi_max * p.bytes_per_category, late * 1e-6);
  // Concave: early growth rate exceeds late growth rate.
  EXPECT_GT(early / 1e6, (late - mid) / (1e12 - 1e8));
}

TEST(ModelProfileTest, LookupFractionInPaperBandForTunedShapes) {
  const EnvironmentProfile env;
  for (ModelKind kind : {ModelKind::kWideDeep, ModelKind::kXDeepFm,
                         ModelKind::kDcn}) {
    const ModelProfile p = GetModelProfile(kind);
    JobConfig config;
    config.num_workers = 20;
    config.num_ps = 4;
    config.worker_cpu = 8.0;
    config.ps_cpu = 4.0;
    const double fraction =
        ComputeHealthyIteration(p, env, 512, config).LookupFraction();
    EXPECT_GT(fraction, 0.25) << ModelKindName(kind);
    EXPECT_LT(fraction, 0.55) << ModelKindName(kind);
  }
}

}  // namespace
}  // namespace dlrover
