#include "elastic/chaos.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dlrm/async_trainer.h"

namespace dlrover {
namespace {

MiniDlrmConfig SmallModel() {
  MiniDlrmConfig config;
  config.arch = ModelKind::kWideDeep;
  config.emb_dim = 6;
  config.hash_buckets = 1024;
  config.mlp_hidden = {16, 8};
  config.seed = 5;
  return config;
}

AsyncTrainerOptions ThreadedRun(uint64_t seed) {
  AsyncTrainerOptions options;
  options.num_workers = 6;
  options.batch_size = 64;
  options.total_batches = 600;
  options.learning_rate = 0.12;
  options.shard_batches = 12;
  options.eval_every_batches = 200;
  options.seed = seed;
  options.exec_mode = ExecMode::kThreads;
  options.num_threads = 4;
  return options;
}

FaultToleranceOptions TestFt() {
  FaultToleranceOptions ft;
  ft.enabled = true;
  ft.checkpoint_every_batches = 96;
  ft.heartbeat_timeout_ms = 250.0;
  ft.supervisor_poll_ms = 1.0;
  return ft;
}

ChaosScheduleOptions FullSchedule(uint64_t seed) {
  ChaosScheduleOptions options;
  options.seed = seed;
  options.total_batches = 600;
  return options;  // one fault of every kind, spread over the mid-run
}

TEST(ChaosInjectorTest, SameSeedSameSchedule) {
  const ChaosInjector a = ChaosInjector::FromSeed(FullSchedule(9));
  const ChaosInjector b = ChaosInjector::FromSeed(FullSchedule(9));
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  ASSERT_EQ(a.schedule().size(), 6u);
  for (size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].at_batches, b.schedule()[i].at_batches);
    EXPECT_EQ(a.schedule()[i].kind, b.schedule()[i].kind);
  }
  const ChaosInjector c = ChaosInjector::FromSeed(FullSchedule(10));
  bool differs = false;
  for (size_t i = 0; i < c.schedule().size(); ++i) {
    if (c.schedule()[i].at_batches != a.schedule()[i].at_batches) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs) << "different seeds must give different schedules";
}

TEST(ChaosInjectorTest, ScheduleStaysInsideTheWindow) {
  ChaosScheduleOptions options = FullSchedule(3);
  options.window_begin = 0.2;
  options.window_end = 0.5;
  const ChaosInjector injector = ChaosInjector::FromSeed(options);
  for (const ChaosFault& fault : injector.schedule()) {
    EXPECT_GE(fault.at_batches, 120u);
    EXPECT_LT(fault.at_batches, 300u);
  }
}

TEST(ChaosInjectorTest, TakeFiresEachFaultOnceInTriggerOrder) {
  std::vector<ChaosFault> schedule = {
      {20, ChaosFaultKind::kCrashBeforePush},
      {10, ChaosFaultKind::kCrashBeforePush},
      {15, ChaosFaultKind::kStallWorker},
  };
  ChaosInjector injector(std::move(schedule));
  EXPECT_FALSE(injector.Take(ChaosFaultKind::kCrashBeforePush, 9));
  EXPECT_FALSE(injector.Due(ChaosFaultKind::kCrashBeforePush, 9));
  EXPECT_TRUE(injector.Due(ChaosFaultKind::kCrashBeforePush, 10));
  EXPECT_TRUE(injector.Take(ChaosFaultKind::kCrashBeforePush, 10));
  EXPECT_FALSE(injector.Take(ChaosFaultKind::kCrashBeforePush, 12))
      << "second crash is not due until 20";
  EXPECT_FALSE(injector.Take(ChaosFaultKind::kStallWorker, 14));
  EXPECT_TRUE(injector.Take(ChaosFaultKind::kStallWorker, 100));
  EXPECT_TRUE(injector.Take(ChaosFaultKind::kCrashBeforePush, 25));
  EXPECT_FALSE(injector.Take(ChaosFaultKind::kCrashBeforePush, 1000))
      << "each fault fires exactly once";
  EXPECT_EQ(injector.remaining(), 0u);
  const std::vector<ChaosFiredRecord> fired = injector.fired();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].fault.at_batches, 10u);
  EXPECT_EQ(fired[1].fault.at_batches, 15u);
  EXPECT_EQ(fired[1].fired_at_batches, 100u);
  EXPECT_EQ(fired[2].fault.at_batches, 20u);
}

TEST(ChaosTrainingTest, SupervisorSurvivesFullChaosSchedule) {
  // One fault of every kind against the fault-tolerant threaded runtime:
  // the run must still train every batch exactly once, and the supervisor
  // stats must show the machinery actually engaged.
  MiniDlrm model(SmallModel());
  CriteoSynth data(31);
  ChaosInjector chaos = ChaosInjector::FromSeed(FullSchedule(21));
  AsyncTrainerOptions options = ThreadedRun(1);
  options.fault_tolerance = TestFt();
  options.chaos = &chaos;
  AsyncPsTrainer trainer(&model, &data, options);
  const TrainResult result = trainer.Run();

  EXPECT_EQ(result.batches_committed, 600u);
  EXPECT_EQ(result.batches_duplicated, 0u);
  EXPECT_EQ(result.batches_skipped, 0u);
  for (size_t i = 0; i < result.times_trained.size(); ++i) {
    EXPECT_EQ(result.times_trained[i], 1) << "batch " << i;
  }
  EXPECT_EQ(chaos.remaining(), 0u) << "every scheduled fault must fire";
  EXPECT_EQ(chaos.fired().size(), 6u);
  EXPECT_GT(result.ft.checkpoints_taken, 0u);
  EXPECT_EQ(result.ft.checkpoint_writes_failed, 1u);
  EXPECT_EQ(result.ft.restores, 1u);
  EXPECT_EQ(result.ft.stalls_injected, 1u);
  EXPECT_GT(result.ft.workers_fenced, 0u) << "stalled worker must be fenced";
}

TEST(ChaosTrainingTest, UnprotectedRunLosesWorkWithoutTheSupervisor) {
  // The contrast arm: same chaos, fault tolerance off, no end-of-run drain.
  // Crashed workers take their shards to the grave, so data is lost — the
  // Table-4-style behaviour the supervisor exists to prevent.
  MiniDlrm model(SmallModel());
  CriteoSynth data(31);
  ChaosInjector chaos = ChaosInjector::FromSeed(FullSchedule(21));
  AsyncTrainerOptions options = ThreadedRun(1);
  options.chaos = &chaos;
  options.drain_remainder = false;
  AsyncPsTrainer trainer(&model, &data, options);
  const TrainResult result = trainer.Run();

  EXPECT_LT(result.batches_committed, 600u);
  EXPECT_GT(result.batches_skipped, 0u);
  EXPECT_EQ(result.ft.restores, 0u);
}

TEST(ChaosInjectorTest, TornWritesDefaultOffKeepsLegacySchedules) {
  // torn_checkpoint_writes defaults to 0 and its draws come last in
  // FromSeed, so pre-existing seeds keep their exact schedules — the fault
  // kind is purely additive.
  const ChaosInjector legacy = ChaosInjector::FromSeed(FullSchedule(9));
  ChaosScheduleOptions with_torn = FullSchedule(9);
  with_torn.torn_checkpoint_writes = 2;
  const ChaosInjector extended = ChaosInjector::FromSeed(with_torn);

  ASSERT_EQ(legacy.schedule().size(), 6u);
  ASSERT_EQ(extended.schedule().size(), 8u);
  size_t matched = 0;
  for (const ChaosFault& fault : legacy.schedule()) {
    for (const ChaosFault& other : extended.schedule()) {
      if (other.kind == fault.kind && other.at_batches == fault.at_batches) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_EQ(matched, 6u) << "legacy faults must be unchanged by the new kind";
}

TEST(ChaosTrainingTest, TornCheckpointWriteRecoversFromOlderGeneration) {
  // A torn write truncates the checkpoint mid-stream; a later PS failure
  // forces a restore, which must skip the short read and fall back to an
  // older valid generation — ending with the exactly-once audit intact.
  MiniDlrm model(SmallModel());
  CriteoSynth data(31);
  ChaosScheduleOptions schedule = FullSchedule(21);
  schedule.torn_checkpoint_writes = 1;
  ChaosInjector chaos = ChaosInjector::FromSeed(schedule);
  AsyncTrainerOptions options = ThreadedRun(1);
  options.fault_tolerance = TestFt();
  options.chaos = &chaos;
  AsyncPsTrainer trainer(&model, &data, options);
  const TrainResult result = trainer.Run();

  EXPECT_EQ(result.batches_committed, 600u);
  EXPECT_EQ(result.batches_duplicated, 0u);
  EXPECT_EQ(result.batches_skipped, 0u);
  for (size_t i = 0; i < result.times_trained.size(); ++i) {
    EXPECT_EQ(result.times_trained[i], 1) << "batch " << i;
  }
  EXPECT_EQ(chaos.remaining(), 0u) << "every scheduled fault must fire";
  EXPECT_EQ(result.ft.checkpoint_writes_torn, 1u);
  EXPECT_EQ(result.ft.checkpoint_writes_failed, 1u);
  EXPECT_GE(result.ft.restores, 1u);
}

TEST(ChaosTrainingTest, TornWriteRecoveryEquivalence) {
  // Recovery equivalence for the torn-write fault specifically: a chaos
  // run with torn checkpoint writes ends within tolerance of the clean run.
  CriteoSynth data(99);
  auto run = [&](ChaosInjector* chaos) {
    MiniDlrm model(SmallModel());
    AsyncTrainerOptions options = ThreadedRun(17);
    if (chaos != nullptr) {
      options.fault_tolerance = TestFt();
      options.chaos = chaos;
    }
    AsyncPsTrainer trainer(&model, &data, options);
    return trainer.Run();
  };
  const TrainResult baseline = run(nullptr);
  ASSERT_EQ(baseline.batches_committed, 600u);

  ChaosScheduleOptions schedule = FullSchedule(7);
  schedule.torn_checkpoint_writes = 2;
  ChaosInjector chaos = ChaosInjector::FromSeed(schedule);
  const TrainResult result = run(&chaos);
  EXPECT_EQ(result.batches_committed, 600u);
  EXPECT_EQ(result.batches_duplicated, 0u);
  EXPECT_EQ(result.batches_skipped, 0u);
  EXPECT_EQ(result.ft.checkpoint_writes_torn, 2u);
  EXPECT_LT(std::fabs(result.final_logloss - baseline.final_logloss), 0.05);
  EXPECT_LT(std::fabs(result.final_auc - baseline.final_auc), 0.05);
}

TEST(ChaosTrainingTest, RecoveryEquivalenceAcrossSeeds) {
  // The headline property: for several independently seeded chaos
  // schedules, a fault-tolerant run ends within tolerance of the
  // uninterrupted run, with the exactly-once audit intact.
  CriteoSynth data(99);
  auto run = [&](ChaosInjector* chaos) {
    MiniDlrm model(SmallModel());
    AsyncTrainerOptions options = ThreadedRun(17);
    if (chaos != nullptr) {
      options.fault_tolerance = TestFt();
      options.chaos = chaos;
    }
    AsyncPsTrainer trainer(&model, &data, options);
    return trainer.Run();
  };
  const TrainResult baseline = run(nullptr);
  ASSERT_EQ(baseline.batches_committed, 600u);

  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    ChaosInjector chaos = ChaosInjector::FromSeed(FullSchedule(seed));
    const TrainResult result = run(&chaos);
    EXPECT_EQ(result.batches_committed, 600u) << "chaos seed " << seed;
    EXPECT_EQ(result.batches_duplicated, 0u) << "chaos seed " << seed;
    EXPECT_EQ(result.batches_skipped, 0u) << "chaos seed " << seed;
    for (size_t i = 0; i < result.times_trained.size(); ++i) {
      ASSERT_EQ(result.times_trained[i], 1)
          << "chaos seed " << seed << " batch " << i;
    }
    // Async-PS staleness makes the final metrics depend on commit
    // interleaving, which shifts with machine load; the tolerance needs
    // headroom over the ~0.02 drift seen across schedulers. The hard
    // exactly-once guarantees above are what recovery must not change.
    EXPECT_LT(std::fabs(result.final_logloss - baseline.final_logloss), 0.05)
        << "chaos seed " << seed;
    EXPECT_LT(std::fabs(result.final_auc - baseline.final_auc), 0.05)
        << "chaos seed " << seed;
    EXPECT_EQ(chaos.remaining(), 0u) << "chaos seed " << seed;
  }
}

}  // namespace
}  // namespace dlrover
