#include <gtest/gtest.h>

#include "baselines/elastic_scheduler.h"
#include "baselines/manual.h"
#include "baselines/optimus.h"
#include "cluster/cluster.h"
#include "harness/experiment.h"
#include "ps/iteration_model.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

TEST(ManualConfigTest, WellTunedBeatsTypicalUserStart) {
  const EnvironmentProfile env;
  for (ModelKind kind : {ModelKind::kWideDeep, ModelKind::kXDeepFm,
                         ModelKind::kDcn}) {
    const ModelProfile profile = GetModelProfile(kind);
    const JobConfig tuned = WellTunedConfig(kind);
    const JobConfig user = TypicalUserStart(kind);
    const double tuned_psi = ThroughputSamplesPerSec(
        ComputeHealthyIteration(profile, env, 512, tuned), 512,
        tuned.num_workers);
    const double user_psi = ThroughputSamplesPerSec(
        ComputeHealthyIteration(profile, env, 512, user), 512,
        user.num_workers);
    EXPECT_GT(tuned_psi, user_psi * 1.2) << ModelKindName(kind);
  }
}

TEST(ManualConfigTest, WellTunedRespectsQuotaAndMemory) {
  for (ModelKind kind : {ModelKind::kWideDeep, ModelKind::kXDeepFm,
                         ModelKind::kDcn}) {
    const JobConfig tuned = WellTunedConfig(kind);
    EXPECT_LE(tuned.TotalCpu(), 300.0);
    const ModelProfile profile = GetModelProfile(kind);
    const Bytes final_emb = profile.EmbeddingBytesAt(200000.0 * 512.0);
    // Enough PS memory for the final table plus headroom.
    EXPECT_GT(tuned.ps_memory * tuned.num_ps,
              profile.ps_static_bytes + final_emb);
  }
}

TEST(ManualConfigTest, MisconfigKindsBehaveAsLabeled) {
  Rng rng(12);
  const JobConfig tuned = WellTunedConfig(ModelKind::kWideDeep);
  int seen[4] = {0, 0, 0, 0};
  for (int i = 0; i < 200; ++i) {
    MisconfigKind kind = MisconfigKind::kOverProvisioned;
    const JobConfig config =
        UserMisconfiguredConfig(ModelKind::kWideDeep, rng, &kind);
    ++seen[static_cast<int>(kind)];
    switch (kind) {
      case MisconfigKind::kOverProvisioned:
        EXPECT_GT(config.worker_cpu, tuned.worker_cpu);
        EXPECT_GT(config.ps_memory, tuned.ps_memory);
        break;
      case MisconfigKind::kStarvedPsCpu:
        EXPECT_LT(config.ps_cpu, tuned.ps_cpu);
        break;
      case MisconfigKind::kStarvedPsMemory:
        EXPECT_LT(config.ps_memory, tuned.ps_memory);
        break;
      case MisconfigKind::kUnderProvisionedWorkers:
        EXPECT_LT(config.num_workers, tuned.num_workers);
        break;
    }
  }
  for (int i = 0; i < 4; ++i) EXPECT_GT(seen[i], 0) << "kind " << i;
}

TEST(ElasticSchedulerTest, ScalesWorkersOnlyAndSeamlessly) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  Cluster cluster(&sim, cluster_options);
  JobSpec spec;
  spec.total_steps = 200000;
  JobConfig initial = TypicalUserStart(spec.model);
  TrainingJob job(&sim, &cluster, spec, initial);
  job.Start();
  sim.RunUntil(Minutes(5));
  ASSERT_EQ(job.state(), JobState::kRunning);

  ElasticSchedulerPolicy policy;
  int proposals = 0;
  for (int round = 0; round < 10; ++round) {
    sim.RunUntil(sim.Now() + Minutes(3));
    auto plan = policy.Propose(job);
    if (!plan.has_value()) continue;
    ++proposals;
    // ES never touches the PS tier or per-pod resources.
    EXPECT_EQ(plan->config.num_ps, initial.num_ps);
    EXPECT_EQ(plan->config.worker_cpu, initial.worker_cpu);
    EXPECT_EQ(plan->config.ps_cpu, initial.ps_cpu);
    EXPECT_EQ(plan->mode, MigrationMode::kSeamless);
    ASSERT_TRUE(job.ApplyPlan(plan->config, plan->mode).ok());
  }
  EXPECT_GT(proposals, 1);
  // Hill climbing may settle back where it started, but never below the
  // floor and never on another tier.
  EXPECT_GE(job.config().num_workers, initial.num_workers);
}

TEST(OptimusTest, AddsOnePodViaStopRestart) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  Cluster cluster(&sim, cluster_options);
  JobSpec spec;
  spec.total_steps = 200000;
  spec.use_flash_checkpoint = false;
  const JobConfig initial = TypicalUserStart(spec.model);
  TrainingJob job(&sim, &cluster, spec, initial);
  job.Start();
  sim.RunUntil(Minutes(6));
  ASSERT_EQ(job.state(), JobState::kRunning);

  OptimusPolicy policy;
  auto plan = policy.Propose(job);
  ASSERT_TRUE(plan.has_value());
  // Exactly one pod added, via stop-and-restart.
  const int delta = (plan->config.num_workers - job.config().num_workers) +
                    (plan->config.num_ps - job.config().num_ps);
  EXPECT_EQ(delta, 1);
  EXPECT_EQ(plan->mode, MigrationMode::kStopAndRestart);
}

TEST(OptimusTest, DisappointmentCapStopsChurn) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  Cluster cluster(&sim, cluster_options);
  JobSpec spec;
  spec.total_steps = 200000;
  spec.use_flash_checkpoint = false;
  TrainingJob job(&sim, &cluster, spec, TypicalUserStart(spec.model));
  job.Start();
  sim.RunUntil(Minutes(6));

  OptimusOptions options;
  options.max_disappointments = 0;  // instantly saturated
  OptimusPolicy policy(options);
  // First call records nothing (no previous plan), but the cap is already
  // 0, so after the counter check the policy must go quiet... the very
  // first Propose may still return a plan only if disappointments < cap.
  EXPECT_FALSE(policy.Propose(job).has_value());
}

}  // namespace
}  // namespace dlrover
