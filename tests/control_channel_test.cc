#include "cluster/control_channel.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace dlrover {
namespace {

ControlChannelOptions CleanOptions() {
  ControlChannelOptions options;
  options.enabled = true;
  options.seed = 7;
  return options;
}

// A master endpoint that just records what the channel did to it.
struct RecordingMaster : ControlMasterEndpoint {
  int crashes = 0;
  int restarts = 0;
  void OnMasterCrash() override { ++crashes; }
  void OnMasterRestart() override { ++restarts; }
};

TEST(ControlChannelTest, CleanSendDeliversExactlyOnceWithinLatencyBounds) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  ControlChannel channel(&sim, options);

  int delivered = 0;
  SimTime delivered_at = -1.0;
  channel.Send(ControlMessageKind::kHeartbeat, 3, ControlChannel::kMaster,
               [&] {
                 ++delivered;
                 delivered_at = sim.Now();
               });
  sim.RunToCompletion();

  EXPECT_EQ(delivered, 1);
  EXPECT_GE(delivered_at, options.min_latency);
  EXPECT_LE(delivered_at, options.max_latency);
  EXPECT_EQ(channel.stats().messages_sent, 1u);
  EXPECT_EQ(channel.stats().messages_delivered, 1u);
  EXPECT_EQ(channel.stats().messages_dropped, 0u);
  EXPECT_EQ(channel.stats().retries, 0u);
}

TEST(ControlChannelTest, DropProbabilityOneLosesFireAndForget) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.drop_prob = 1.0;
  ControlChannel channel(&sim, options);

  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    channel.Send(ControlMessageKind::kHeartbeat, 0, ControlChannel::kMaster,
                 [&] { ++delivered; });
  }
  sim.RunToCompletion();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.stats().messages_dropped, 10u);
  EXPECT_EQ(channel.stats().messages_delivered, 0u);
}

TEST(ControlChannelTest, DuplicateProbabilityOneDeliversTwoCopies) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.duplicate_prob = 1.0;
  ControlChannel channel(&sim, options);

  int delivered = 0;
  channel.Send(ControlMessageKind::kHeartbeat, 0, ControlChannel::kMaster,
               [&] { ++delivered; });
  sim.RunToCompletion();

  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(channel.stats().messages_duplicated, 1u);
  EXPECT_EQ(channel.stats().messages_delivered, 2u);
}

TEST(ControlChannelTest, ReorderedCopyArrivesAfterLaterMessage) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.reorder_prob = 1.0;  // every copy held reorder_delay extra
  options.min_latency = Seconds(0.1);
  options.max_latency = Seconds(0.1);
  ControlChannel channel(&sim, options);

  int delivered = 0;
  SimTime delivered_at = -1.0;
  channel.Send(ControlMessageKind::kHeartbeat, 0, ControlChannel::kMaster,
               [&] {
                 ++delivered;
                 delivered_at = sim.Now();
               });
  sim.RunToCompletion();
  EXPECT_EQ(channel.stats().messages_reordered, 1u);
  EXPECT_EQ(delivered, 1);
  // The held copy landed at latency + reorder_delay — late enough for any
  // promptly-sent later message to overtake it.
  EXPECT_GE(delivered_at, options.reorder_delay);
}

TEST(ControlChannelTest, ReliableSendRetriesThroughLossAndEventuallyLands) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.drop_prob = 0.8;  // most attempts lost; retries must recover
  options.retry_base = Seconds(0.5);
  options.retry_cap = Seconds(2);
  options.retry_deadline = Minutes(30);
  ControlChannel channel(&sim, options);

  int delivered = 0;
  int expired = 0;
  channel.SendReliable(ControlMessageKind::kShardReport, 2,
                       ControlChannel::kMaster, [&] { ++delivered; },
                       [&] { ++expired; });
  sim.RunToCompletion();

  EXPECT_GE(delivered, 1);
  EXPECT_EQ(expired, 0);
  EXPECT_GE(channel.stats().retries, 1u);
  EXPECT_EQ(channel.stats().sends_expired, 0u);
}

TEST(ControlChannelTest, ReliableSendExpiresPastDeadlineAndFiresHookOnce) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.drop_prob = 1.0;  // nothing ever gets through
  options.retry_base = Seconds(1);
  options.retry_cap = Seconds(5);
  options.retry_deadline = Minutes(2);
  ControlChannel channel(&sim, options);

  int delivered = 0;
  int expired = 0;
  channel.SendReliable(ControlMessageKind::kShardReport, 2,
                       ControlChannel::kMaster, [&] { ++delivered; },
                       [&] { ++expired; });
  sim.RunToCompletion();

  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(expired, 1);
  EXPECT_EQ(channel.stats().sends_expired, 1u);
  // Expiry is checked at retry time, so it lands after the deadline.
  EXPECT_GT(sim.Now(), options.retry_deadline);
}

TEST(ControlChannelTest, RetriesDisabledMeansSingleAttemptAndNoExpiry) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.drop_prob = 1.0;
  options.retries_enabled = false;
  options.retry_deadline = Seconds(10);
  ControlChannel channel(&sim, options);

  int delivered = 0;
  int expired = 0;
  channel.SendReliable(ControlMessageKind::kShardReport, 2,
                       ControlChannel::kMaster, [&] { ++delivered; },
                       [&] { ++expired; });
  sim.RunUntil(Minutes(30));

  // The one attempt was dropped; without retries the expiry hook is the
  // unprotected arm's blind spot — it must never fire.
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(expired, 0);
  EXPECT_EQ(channel.stats().messages_sent, 1u);
  EXPECT_EQ(channel.stats().retries, 0u);
  EXPECT_EQ(channel.stats().sends_expired, 0u);
}

TEST(ControlChannelTest, NodePartitionSeversOnlyThatNodeThenHeals) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  ControlChannel channel(&sim, options);

  channel.PartitionNode(4, Minutes(5));
  EXPECT_TRUE(channel.NodePartitioned(4));
  EXPECT_FALSE(channel.NodePartitioned(3));
  EXPECT_FALSE(channel.CellPartitioned());

  int from_partitioned = 0;
  int from_healthy = 0;
  channel.Send(ControlMessageKind::kHeartbeat, 4, ControlChannel::kMaster,
               [&] { ++from_partitioned; });
  channel.Send(ControlMessageKind::kHeartbeat, 3, ControlChannel::kMaster,
               [&] { ++from_healthy; });
  sim.RunUntil(Minutes(1));
  EXPECT_EQ(from_partitioned, 0);
  EXPECT_EQ(from_healthy, 1);
  EXPECT_EQ(channel.node_partition_drops(4), 1u);
  EXPECT_EQ(channel.node_partition_drops(3), 0u);

  // After the heal, traffic flows again.
  sim.RunUntil(Minutes(6));
  EXPECT_FALSE(channel.NodePartitioned(4));
  channel.Send(ControlMessageKind::kHeartbeat, 4, ControlChannel::kMaster,
               [&] { ++from_partitioned; });
  sim.RunToCompletion();
  EXPECT_EQ(from_partitioned, 1);
}

TEST(ControlChannelTest, CellPartitionSeversBrainTrafficNotWorkerTraffic) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  ControlChannel channel(&sim, options);

  channel.PartitionCell(Minutes(3));
  EXPECT_TRUE(channel.CellPartitioned());

  int plan_delivered = 0;
  int heartbeat_delivered = 0;
  channel.Send(ControlMessageKind::kPlan, ControlChannel::kBrain,
               ControlChannel::kMaster, [&] { ++plan_delivered; });
  channel.Send(ControlMessageKind::kHeartbeat, 7, ControlChannel::kMaster,
               [&] { ++heartbeat_delivered; });
  sim.RunUntil(Minutes(1));

  EXPECT_EQ(plan_delivered, 0);
  EXPECT_EQ(heartbeat_delivered, 1);
  EXPECT_EQ(channel.cell_partition_drops(), 1u);
  EXPECT_EQ(channel.stats().messages_partition_dropped, 1u);

  sim.RunUntil(Minutes(4));
  EXPECT_FALSE(channel.CellPartitioned());
}

TEST(ControlChannelTest, OverlappingPartitionsExtendToTheLaterEnd) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  ControlChannel channel(&sim, options);

  channel.PartitionNode(1, Minutes(4));
  sim.RunUntil(Minutes(2));
  channel.PartitionNode(1, Minutes(1));  // shorter overlap must not shrink
  sim.RunUntil(Minutes(3.5));
  EXPECT_TRUE(channel.NodePartitioned(1));
  sim.RunUntil(Minutes(4.5));
  EXPECT_FALSE(channel.NodePartitioned(1));
  EXPECT_EQ(channel.stats().node_partitions, 2u);
}

TEST(ControlChannelTest, ReliableSendRetriesAcrossPartitionHeal) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.retry_base = Seconds(5);
  options.retry_cap = Seconds(20);
  options.retry_deadline = Minutes(30);
  ControlChannel channel(&sim, options);

  channel.PartitionNode(2, Minutes(3));
  int delivered = 0;
  channel.SendReliable(ControlMessageKind::kShardReport, 2,
                       ControlChannel::kMaster, [&] { ++delivered; });
  sim.RunToCompletion();

  EXPECT_EQ(delivered, 1);
  EXPECT_GE(channel.stats().messages_partition_dropped, 1u);
  EXPECT_GE(channel.stats().retries, 1u);
  // Delivery happened only after the partition healed.
  EXPECT_GE(channel.node_partition_drops(2), 1u);
}

TEST(ControlChannelTest, MasterCrashFencesInFlightDeliveriesAndRestartBumpsEpoch) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.master_restart_delay = Seconds(45);
  options.min_latency = Seconds(1);
  options.max_latency = Seconds(1);
  ControlChannel channel(&sim, options);

  RecordingMaster master;
  const int handle = channel.RegisterMaster(&master);
  EXPECT_TRUE(channel.MasterUp(handle));
  EXPECT_EQ(channel.MasterEpoch(handle), 0u);
  EXPECT_EQ(channel.MastersUp(), 1u);

  // Fire-and-forget copy in flight when the master dies: it must be fenced,
  // not delivered into the void.
  int delivered = 0;
  channel.SendReliable(ControlMessageKind::kPlan, ControlChannel::kBrain,
                       ControlChannel::kMaster, [&] { ++delivered; },
                       /*on_expire=*/nullptr, handle);
  EXPECT_EQ(channel.CrashMasterByOrdinal(0), handle);
  EXPECT_EQ(master.crashes, 1);
  EXPECT_FALSE(channel.MasterUp(handle));
  EXPECT_EQ(channel.MastersUp(), 0u);

  sim.RunUntil(Seconds(2));
  EXPECT_EQ(delivered, 0);
  EXPECT_GE(channel.stats().epoch_fenced, 1u);

  // Failover brings a replacement with a new epoch; the retry loop
  // re-captures it and the plan finally lands.
  sim.RunToCompletion();
  EXPECT_EQ(master.restarts, 1);
  EXPECT_TRUE(channel.MasterUp(handle));
  EXPECT_EQ(channel.MasterEpoch(handle), 1u);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.stats().master_crashes, 1u);
  EXPECT_EQ(channel.stats().master_restarts, 1u);
}

TEST(ControlChannelTest, FailoverDisabledLeavesMasterDownForGood) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.failover_enabled = false;
  ControlChannel channel(&sim, options);

  RecordingMaster master;
  const int handle = channel.RegisterMaster(&master);
  EXPECT_EQ(channel.CrashMasterByOrdinal(0), handle);
  sim.RunUntil(Minutes(30));

  EXPECT_EQ(master.restarts, 0);
  EXPECT_FALSE(channel.MasterUp(handle));
  EXPECT_EQ(channel.stats().master_restarts, 0u);
}

TEST(ControlChannelTest, CrashOrdinalSkipsDownAndUnregisteredMasters) {
  Simulator sim;
  ControlChannelOptions options = CleanOptions();
  options.failover_enabled = false;
  ControlChannel channel(&sim, options);

  RecordingMaster a, b, c;
  const int ha = channel.RegisterMaster(&a);
  const int hb = channel.RegisterMaster(&b);
  const int hc = channel.RegisterMaster(&c);
  channel.UnregisterMaster(hb);

  // Ordinal 1 among up masters {a, c} is c.
  EXPECT_EQ(channel.CrashMasterByOrdinal(1), hc);
  EXPECT_EQ(c.crashes, 1);
  EXPECT_EQ(a.crashes, 0);
  // Only a remains up; crashing past the end is a no-op.
  EXPECT_EQ(channel.CrashMasterByOrdinal(1), -1);
  EXPECT_EQ(channel.CrashMasterByOrdinal(0), ha);
  EXPECT_EQ(channel.MastersUp(), 0u);
}

TEST(ControlChannelTest, ChaoticRunIsByteIdenticalAcrossReruns) {
  auto run = [](ControlChannelStats* stats, std::vector<ControlEvent>* log) {
    Simulator sim;
    ControlChannelOptions options = CleanOptions();
    options.drop_prob = 0.3;
    options.duplicate_prob = 0.2;
    options.reorder_prob = 0.2;
    options.retry_base = Seconds(0.5);
    options.retry_cap = Seconds(4);
    options.retry_deadline = Minutes(5);
    ControlChannel channel(&sim, options);

    RecordingMaster master;
    const int handle = channel.RegisterMaster(&master);
    channel.PartitionNode(3, Minutes(2));
    int delivered = 0;
    for (int i = 0; i < 40; ++i) {
      const ControlEndpoint src = i % 8;
      if (i % 3 == 0) {
        channel.SendReliable(ControlMessageKind::kShardReport, src,
                             ControlChannel::kMaster, [&] { ++delivered; },
                             nullptr, handle);
      } else {
        channel.Send(ControlMessageKind::kHeartbeat, src,
                     ControlChannel::kMaster, [&] { ++delivered; });
      }
    }
    sim.RunUntil(Minutes(1));
    channel.CrashMasterByOrdinal(0);
    channel.PartitionCell(Minutes(1));
    sim.RunToCompletion();
    *stats = channel.stats();
    *log = channel.log();
  };

  ControlChannelStats stats_a, stats_b;
  std::vector<ControlEvent> log_a, log_b;
  run(&stats_a, &log_a);
  run(&stats_b, &log_b);

  EXPECT_TRUE(stats_a == stats_b);
  ASSERT_EQ(log_a.size(), log_b.size());
  for (size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_TRUE(log_a[i] == log_b[i]) << "log diverges at entry " << i;
  }
  EXPECT_FALSE(log_a.empty());
}

TEST(ControlChannelTest, FencingNotesFeedStatsAndLog) {
  Simulator sim;
  ControlChannel channel(&sim, CleanOptions());
  EXPECT_TRUE(channel.fencing_enabled());
  channel.NotePlanFenced(12, 7);
  channel.NoteStalePlanApplied(12, 6);
  EXPECT_EQ(channel.stats().plans_fenced_stale, 1u);
  EXPECT_EQ(channel.stats().stale_plan_applies, 1u);
  ASSERT_EQ(channel.log().size(), 2u);
  EXPECT_EQ(channel.log()[0].kind, ControlEventKind::kPlanFencedStale);
  EXPECT_EQ(channel.log()[0].a, 12u);
  EXPECT_EQ(channel.log()[0].b, 7u);
  EXPECT_EQ(channel.log()[1].kind, ControlEventKind::kStalePlanApplied);
}

TEST(ControlChannelTest, StatsMergeIsFieldwiseSum) {
  ControlChannelStats a;
  a.messages_sent = 3;
  a.retries = 1;
  a.master_crashes = 1;
  ControlChannelStats b;
  b.messages_sent = 4;
  b.epoch_fenced = 2;
  b.master_restarts = 1;
  a += b;
  EXPECT_EQ(a.messages_sent, 7u);
  EXPECT_EQ(a.retries, 1u);
  EXPECT_EQ(a.epoch_fenced, 2u);
  EXPECT_EQ(a.master_crashes, 1u);
  EXPECT_EQ(a.master_restarts, 1u);
}

}  // namespace
}  // namespace dlrover
