#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "common/rng.h"
#include "elastic/checkpoint.h"
#include "elastic/heartbeat.h"
#include "elastic/oom_predictor.h"
#include "elastic/shard_queue.h"

namespace dlrover {
namespace {

ShardQueueOptions SmallQueue(uint64_t total = 1000, uint64_t shard = 64) {
  ShardQueueOptions options;
  options.total_batches = total;
  options.default_shard_batches = shard;
  options.min_shard_batches = 8;
  return options;
}

TEST(ShardQueueTest, ServesAllDataExactlyOnce) {
  ShardQueue queue(SmallQueue(1000, 64));
  std::set<uint64_t> seen;
  while (true) {
    auto shard = queue.NextShard();
    if (!shard.ok()) break;
    for (uint64_t b = shard->start_batch; b < shard->end_batch; ++b) {
      EXPECT_TRUE(seen.insert(b).second) << "batch served twice: " << b;
    }
    ASSERT_TRUE(queue.ReportCompleted(*shard).ok());
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_TRUE(queue.AllDone());
  ASSERT_TRUE(queue.CheckInvariants().ok());
}

TEST(ShardQueueTest, StragglerGetsSmallerShard) {
  ShardQueue queue(SmallQueue());
  auto normal = queue.NextShard();
  ASSERT_TRUE(normal.ok());
  EXPECT_EQ(normal->batches(), 64u);
  auto small = queue.NextShard(16);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->batches(), 16u);
  // Requests below the minimum are clamped up.
  auto clamped = queue.NextShard(1);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped->batches(), 8u);
}

TEST(ShardQueueTest, FailedShardIsRequeuedWithPartialCredit) {
  ShardQueue queue(SmallQueue(100, 50));
  auto shard = queue.NextShard();
  ASSERT_TRUE(shard.ok());
  ASSERT_TRUE(queue.ReportFailed(*shard, 20).ok());
  EXPECT_EQ(queue.completed_batches(), 20u);
  // The remainder comes back before fresh data.
  auto retry = queue.NextShard();
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->start_batch, 20u);
  EXPECT_EQ(retry->end_batch, 50u);
  ASSERT_TRUE(queue.CheckInvariants().ok());
}

TEST(ShardQueueTest, RejectsUnknownReports) {
  ShardQueue queue(SmallQueue());
  DataShard bogus;
  bogus.index = 999;
  EXPECT_FALSE(queue.ReportCompleted(bogus).ok());
  EXPECT_FALSE(queue.ReportFailed(bogus, 0).ok());
}

TEST(ShardQueueTest, FastForwardResetsToCheckpoint) {
  ShardQueue queue(SmallQueue(1000, 64));
  for (int i = 0; i < 3; ++i) {
    auto shard = queue.NextShard();
    ASSERT_TRUE(shard.ok());
    ASSERT_TRUE(queue.ReportCompleted(*shard).ok());
  }
  auto outstanding = queue.NextShard();
  ASSERT_TRUE(outstanding.ok());
  queue.FastForwardTo(100);
  EXPECT_EQ(queue.completed_batches(), 100u);
  EXPECT_EQ(queue.outstanding_batches(), 0u);
  auto next = queue.NextShard();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->start_batch, 100u);
  ASSERT_TRUE(queue.CheckInvariants().ok());
}

// Property test: simulate a pool of workers that randomly fail mid-shard,
// get replaced, and shrink/grow; every batch must be completed exactly
// once regardless of seed.
class ShardQueueChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardQueueChaosTest, ExactlyOnceUnderRandomFailures) {
  Rng rng(GetParam());
  ShardQueue queue(SmallQueue(5000, 64));
  std::map<uint64_t, int> times_done;  // batch -> completions

  struct Worker {
    std::optional<DataShard> shard;
    uint64_t pos = 0;
  };
  std::vector<Worker> workers(4);

  int steps = 0;
  while (!queue.AllDone() && steps++ < 200000) {
    const size_t i = rng.UniformInt(workers.size());
    Worker& worker = workers[i];
    if (!worker.shard.has_value()) {
      const uint64_t limit = rng.Bernoulli(0.2) ? 16 : 0;
      auto shard = queue.NextShard(limit);
      if (!shard.ok()) continue;
      worker.shard = *shard;
      worker.pos = 0;
      continue;
    }
    const double dice = rng.Uniform();
    if (dice < 0.05) {
      // Worker crashes: partial credit for what it pushed already.
      for (uint64_t b = worker.shard->start_batch;
           b < worker.shard->start_batch + worker.pos; ++b) {
        ++times_done[b];
      }
      ASSERT_TRUE(queue.ReportFailed(*worker.shard, worker.pos).ok());
      worker.shard.reset();
    } else if (worker.pos < worker.shard->batches()) {
      ++worker.pos;
    } else {
      for (uint64_t b = worker.shard->start_batch;
           b < worker.shard->end_batch; ++b) {
        ++times_done[b];
      }
      ASSERT_TRUE(queue.ReportCompleted(*worker.shard).ok());
      worker.shard.reset();
    }
    ASSERT_TRUE(queue.CheckInvariants().ok());
  }
  ASSERT_TRUE(queue.AllDone());
  ASSERT_EQ(times_done.size(), 5000u);
  for (const auto& [batch, times] : times_done) {
    EXPECT_EQ(times, 1) << "batch " << batch;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardQueueChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(ShardQueueTest, WaitNextShardForTimesOutWhenNothingIsServable) {
  ShardQueue queue(SmallQueue(50, 50));
  auto shard = queue.NextShard();
  ASSERT_TRUE(shard.ok());
  // All data is outstanding with its holder: a bounded wait must expire
  // with kDeadlineExceeded, not block forever or claim exhaustion.
  auto waited = queue.WaitNextShardFor(0.02);
  EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded);
  // Once the holder fails, the remainder is immediately servable again.
  ASSERT_TRUE(queue.ReportFailed(*shard, 10).ok());
  auto retry = queue.WaitNextShardFor(0.02);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->start_batch, 10u);
}

TEST(ShardQueueTest, WaitNextShardForReportsExhaustionAsNotFound) {
  ShardQueue queue(SmallQueue(50, 50));
  auto shard = queue.WaitNextShardFor(0.02);
  ASSERT_TRUE(shard.ok());
  ASSERT_TRUE(queue.ReportCompleted(*shard).ok());
  auto done = queue.WaitNextShardFor(0.02);
  EXPECT_EQ(done.status().code(), StatusCode::kNotFound);
}

TEST(ShardQueueTest, WaitNextShardForWakesOnRequeueFromAnotherThread) {
  ShardQueue queue(SmallQueue(50, 50));
  auto shard = queue.NextShard();
  ASSERT_TRUE(shard.ok());
  const DataShard held = *shard;
  std::thread failer([&queue, held] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(queue.ReportFailed(held, 5).ok());
  });
  // Generous deadline: the wake must come from the requeue notification,
  // well before the timeout.
  auto woken = queue.WaitNextShardFor(5.0);
  failer.join();
  ASSERT_TRUE(woken.ok());
  EXPECT_EQ(woken->start_batch, 5u);
}

TEST(ShardQueueTest, SnapshotAccountsInFlightPrefixes) {
  ShardQueue queue(SmallQueue(200, 50));
  auto done = queue.NextShard();
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(queue.ReportCompleted(*done).ok());
  auto in_flight = queue.NextShard();
  ASSERT_TRUE(in_flight.ok());

  // 20 of the outstanding shard's 50 batches are already committed.
  const std::vector<ShardProgress> progress = {{in_flight->index, 20}};
  const ShardQueueSnapshot snapshot = queue.SnapshotState(progress);
  EXPECT_EQ(snapshot.completed_batches, 70u);
  ASSERT_EQ(snapshot.pending.size(), 1u);
  EXPECT_EQ(snapshot.pending[0].start_batch, 70u);
  EXPECT_EQ(snapshot.pending[0].end_batch, 100u);
  EXPECT_EQ(snapshot.cursor, 100u);
}

TEST(ShardQueueTest, RestoreStateResumesExactlyOnceFromTheCut) {
  ShardQueue source(SmallQueue(200, 50));
  auto first = source.NextShard();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(source.ReportCompleted(*first).ok());
  auto second = source.NextShard();
  ASSERT_TRUE(second.ok());
  const ShardQueueSnapshot snapshot =
      source.SnapshotState({{second->index, 10}});

  ShardQueue restored(SmallQueue(200, 50));
  restored.RestoreState(snapshot);
  EXPECT_EQ(restored.completed_batches(), 60u);

  // Draining the restored queue serves batches [60, 200) exactly once:
  // the in-flight remainder first, then untouched data from the cursor.
  std::set<uint64_t> seen;
  while (true) {
    auto shard = restored.NextShard();
    if (!shard.ok()) break;
    for (uint64_t b = shard->start_batch; b < shard->end_batch; ++b) {
      EXPECT_TRUE(seen.insert(b).second) << "batch served twice: " << b;
    }
    ASSERT_TRUE(restored.ReportCompleted(*shard).ok());
  }
  EXPECT_EQ(seen.size(), 140u);
  EXPECT_EQ(*seen.begin(), 60u);
  EXPECT_TRUE(restored.AllDone());
  ASSERT_TRUE(restored.CheckInvariants().ok());

  // Stale indices from the pre-restore lineage bounce off harmlessly.
  EXPECT_EQ(restored.ReportCompleted(*second).code(), StatusCode::kNotFound);
}

TEST(HeartbeatMonitorTest, DetectsSilentMemberAsFailed) {
  HeartbeatMonitorOptions options;
  options.failure_timeout = 60.0;
  HeartbeatMonitor monitor(options);
  monitor.AddMember(1, 0.0);
  monitor.AddMember(2, 0.0);
  monitor.Heartbeat(1, 50.0, 100);
  monitor.Heartbeat(2, 10.0, 100);
  const auto failed = monitor.DetectFailures(100.0);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], 2u);
}

TEST(HeartbeatMonitorTest, DetectsStragglerByProgressRate) {
  HeartbeatMonitorOptions options;
  options.min_observation = 10.0;
  options.straggler_rate_fraction = 0.5;
  HeartbeatMonitor monitor(options);
  for (uint64_t id = 1; id <= 4; ++id) monitor.AddMember(id, 0.0);
  // Members 1-3 progress at 10/sec; member 4 at 1/sec.
  for (int t = 1; t <= 10; ++t) {
    for (uint64_t id = 1; id <= 3; ++id) {
      monitor.Heartbeat(id, t * 10.0, static_cast<uint64_t>(t) * 100);
    }
    monitor.Heartbeat(4, t * 10.0, static_cast<uint64_t>(t) * 10);
  }
  const auto stragglers = monitor.DetectStragglers(100.0);
  ASSERT_EQ(stragglers.size(), 1u);
  EXPECT_EQ(stragglers[0], 4u);
  // Flagged members are not re-reported.
  EXPECT_TRUE(monitor.DetectStragglers(100.0).empty());
}

TEST(HeartbeatMonitorTest, NoStragglersWithFewPeers) {
  HeartbeatMonitor monitor(HeartbeatMonitorOptions{});
  monitor.AddMember(1, 0.0);
  monitor.AddMember(2, 0.0);
  monitor.Heartbeat(1, 100.0, 1000);
  monitor.Heartbeat(2, 100.0, 1);
  EXPECT_TRUE(monitor.DetectStragglers(200.0).empty());
}

TEST(HeartbeatMonitorTest, YoungMemberSuppressesStragglerJudgments) {
  // A member still inside min_observation has no meaningful rate; the
  // monitor must withhold judgment on the whole group rather than compare
  // unbaked numbers.
  HeartbeatMonitorOptions options;
  options.min_observation = 50.0;
  options.straggler_rate_fraction = 0.5;
  HeartbeatMonitor monitor(options);
  for (uint64_t id = 1; id <= 3; ++id) monitor.AddMember(id, 0.0);
  for (int t = 1; t <= 10; ++t) {
    monitor.Heartbeat(1, t * 10.0, static_cast<uint64_t>(t) * 100);
    monitor.Heartbeat(2, t * 10.0, static_cast<uint64_t>(t) * 100);
    monitor.Heartbeat(3, t * 10.0, static_cast<uint64_t>(t) * 1);
  }
  EXPECT_EQ(monitor.DetectStragglers(100.0).size(), 1u);
  // A replacement joins at t=100: even the obvious laggard is not judged
  // until the newcomer has been observed long enough.
  monitor.AddMember(4, 100.0);
  EXPECT_TRUE(monitor.DetectStragglers(120.0).empty());
  monitor.Heartbeat(4, 150.0, 500);
  EXPECT_EQ(monitor.DetectStragglers(151.0, /*include_flagged=*/true).size(),
            1u);
}

TEST(HeartbeatMonitorTest, AllMembersStalledMeansNoStragglers) {
  // Zero median rate (a global pause — migration, PS restart) must not
  // flag the whole fleet, and must not divide by zero.
  HeartbeatMonitor monitor(HeartbeatMonitorOptions{});
  for (uint64_t id = 1; id <= 4; ++id) monitor.AddMember(id, 0.0);
  for (uint64_t id = 1; id <= 4; ++id) monitor.Heartbeat(id, 200.0, 0);
  EXPECT_TRUE(monitor.DetectStragglers(200.0).empty());
}

TEST(HeartbeatMonitorTest, IncludeFlaggedReportsKnownStragglersAgain) {
  HeartbeatMonitorOptions options;
  options.min_observation = 10.0;
  HeartbeatMonitor monitor(options);
  for (uint64_t id = 1; id <= 4; ++id) monitor.AddMember(id, 0.0);
  for (int t = 1; t <= 10; ++t) {
    for (uint64_t id = 1; id <= 3; ++id) {
      monitor.Heartbeat(id, t * 10.0, static_cast<uint64_t>(t) * 100);
    }
    monitor.Heartbeat(4, t * 10.0, static_cast<uint64_t>(t) * 10);
  }
  ASSERT_EQ(monitor.DetectStragglers(100.0).size(), 1u);
  EXPECT_TRUE(monitor.DetectStragglers(100.0).empty())
      << "flagged members are silenced by default";
  const auto again = monitor.DetectStragglers(100.0, /*include_flagged=*/true);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], 4u);
}

TEST(HeartbeatMonitorTest, RemovingFlaggedMemberClearsItFromAllVerdicts) {
  HeartbeatMonitorOptions options;
  options.min_observation = 10.0;
  options.failure_timeout = 30.0;
  HeartbeatMonitor monitor(options);
  for (uint64_t id = 1; id <= 4; ++id) monitor.AddMember(id, 0.0);
  for (int t = 1; t <= 10; ++t) {
    for (uint64_t id = 1; id <= 3; ++id) {
      monitor.Heartbeat(id, t * 10.0, static_cast<uint64_t>(t) * 100);
    }
    monitor.Heartbeat(4, t * 10.0, static_cast<uint64_t>(t) * 10);
  }
  ASSERT_EQ(monitor.DetectStragglers(100.0).size(), 1u);
  monitor.RemoveMember(4);  // the job replaced the straggler
  EXPECT_EQ(monitor.member_count(), 3u);
  EXPECT_TRUE(
      monitor.DetectStragglers(100.0, /*include_flagged=*/true).empty());
  // Nor can the removed member be reported failed later.
  EXPECT_TRUE(monitor.DetectFailures(1000.0).size() == 3u)
      << "only the remaining (now silent) members are reported";
}

TEST(HeartbeatMonitorTest, StragglerVerdictAtExactlyMinObservation) {
  // The observation gate is `window < min_observation`: one tick before the
  // boundary the whole group is unjudged, at exactly the boundary verdicts
  // fire. Pinning the closed/open ends keeps a refactor from silently
  // delaying (or rushing) every straggler call by one monitor period.
  HeartbeatMonitorOptions options;
  options.min_observation = 60.0;
  options.straggler_rate_fraction = 0.5;
  HeartbeatMonitor monitor(options);
  for (uint64_t id = 1; id <= 3; ++id) monitor.AddMember(id, 0.0);
  monitor.Heartbeat(1, 50.0, 500);
  monitor.Heartbeat(2, 50.0, 500);
  monitor.Heartbeat(3, 50.0, 5);
  EXPECT_TRUE(monitor.DetectStragglers(59.999).empty())
      << "no member may be judged before its window is complete";
  const auto at_boundary = monitor.DetectStragglers(60.0);
  ASSERT_EQ(at_boundary.size(), 1u);
  EXPECT_EQ(at_boundary[0], 3u);
}

TEST(HeartbeatMonitorTest, ProgressRateZeroElapsedWindowIsZero) {
  // A heartbeat that lands in the same instant the member registered gives
  // a zero-elapsed observation window; the rate must read 0 rather than
  // divide by zero, and unknown members must read 0 as well.
  HeartbeatMonitor monitor(HeartbeatMonitorOptions{});
  monitor.AddMember(7, 100.0);
  monitor.Heartbeat(7, 100.0, 500);
  EXPECT_DOUBLE_EQ(monitor.ProgressRate(7, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(monitor.ProgressRate(99, 100.0), 0.0) << "unknown member";
  // Once wall time accrues, the same offset yields a finite rate.
  EXPECT_DOUBLE_EQ(monitor.ProgressRate(7, 150.0), 10.0);
}

TEST(HeartbeatMonitorTest, ReAddedMemberStartsWithCleanSlate) {
  // Remove-then-re-add with the same id (a replacement pod reusing a rank)
  // must reset the flagged bit and the observation window: the newcomer is
  // neither pre-flagged nor judged until it has been watched long enough.
  HeartbeatMonitorOptions options;
  options.min_observation = 10.0;
  HeartbeatMonitor monitor(options);
  for (uint64_t id = 1; id <= 4; ++id) monitor.AddMember(id, 0.0);
  for (int t = 1; t <= 10; ++t) {
    for (uint64_t id = 1; id <= 3; ++id) {
      monitor.Heartbeat(id, t * 10.0, static_cast<uint64_t>(t) * 100);
    }
    monitor.Heartbeat(4, t * 10.0, static_cast<uint64_t>(t) * 10);
  }
  ASSERT_EQ(monitor.DetectStragglers(100.0).size(), 1u);
  monitor.RemoveMember(4);
  monitor.AddMember(4, 100.0);
  ASSERT_FALSE(monitor.members().at(4).flagged_straggler);
  EXPECT_TRUE(monitor.DetectStragglers(105.0, /*include_flagged=*/true).empty())
      << "fresh observation window suppresses judgment on the whole group";
  // After the newcomer's window completes at a healthy rate, nobody is slow.
  monitor.Heartbeat(4, 115.0, 1500);
  EXPECT_TRUE(
      monitor.DetectStragglers(115.0, /*include_flagged=*/true).empty());
}

TEST(HeartbeatMonitorTest, OutOfOrderHeartbeatDoesNotRewindSilenceClock) {
  // A reordered control plane can deliver an old heartbeat after a newer
  // one. The stale packet must not rewind liveness (which would delay
  // failure detection) but its progress still folds in monotonically.
  HeartbeatMonitorOptions options;
  options.failure_timeout = 60.0;
  HeartbeatMonitor monitor(options);
  monitor.AddMember(1, 0.0);
  monitor.Heartbeat(1, 50.0, 500);
  monitor.Heartbeat(1, 10.0, 800);  // late delivery of an older packet
  EXPECT_EQ(monitor.stale_heartbeats_ignored(), 1u);
  EXPECT_EQ(monitor.members().at(1).last_heartbeat, 50.0);
  EXPECT_EQ(monitor.members().at(1).progress_offset, 800u);
  // Liveness judged from the newest accepted packet, not the stale one.
  EXPECT_TRUE(monitor.DetectFailures(100.0).empty());
  ASSERT_EQ(monitor.DetectFailures(111.0).size(), 1u);
}

TEST(HeartbeatMonitorTest, DuplicateHeartbeatIsHarmless) {
  HeartbeatMonitor monitor(HeartbeatMonitorOptions{});
  monitor.AddMember(1, 0.0);
  monitor.Heartbeat(1, 10.0, 100);
  monitor.Heartbeat(1, 10.0, 100);  // duplicated copy, same timestamp
  EXPECT_EQ(monitor.stale_heartbeats_ignored(), 0u);
  EXPECT_EQ(monitor.members().at(1).last_heartbeat, 10.0);
  EXPECT_EQ(monitor.members().at(1).progress_offset, 100u);
}

TEST(HeartbeatMonitorTest, FencedMemberCannotBeResurrectedByLatePackets) {
  // Once the master gives up on a worker, heartbeat packets still in flight
  // must not auto-register a ghost member that would then be "detected" as
  // failed all over again.
  HeartbeatMonitor monitor(HeartbeatMonitorOptions{});
  monitor.AddMember(7, 0.0);
  monitor.Heartbeat(7, 5.0, 50);
  monitor.FenceMember(7);
  EXPECT_TRUE(monitor.IsFenced(7));
  EXPECT_EQ(monitor.member_count(), 0u);

  monitor.Heartbeat(7, 6.0, 60);  // late in-flight packet
  EXPECT_EQ(monitor.member_count(), 0u);
  EXPECT_EQ(monitor.fenced_heartbeats_ignored(), 1u);

  // An unknown-but-unfenced id still auto-registers (first contact).
  monitor.Heartbeat(8, 6.0, 10);
  EXPECT_EQ(monitor.member_count(), 1u);
}

TEST(HeartbeatMonitorTest, ExplicitReAddLiftsFence) {
  // AddMember is the one path that lifts a fence: a replacement pod
  // legitimately reusing the id is a new incarnation.
  HeartbeatMonitor monitor(HeartbeatMonitorOptions{});
  monitor.AddMember(7, 0.0);
  monitor.FenceMember(7);
  monitor.AddMember(7, 10.0);
  EXPECT_FALSE(monitor.IsFenced(7));
  monitor.Heartbeat(7, 12.0, 5);
  EXPECT_EQ(monitor.member_count(), 1u);
  EXPECT_EQ(monitor.fenced_heartbeats_ignored(), 0u);
  EXPECT_EQ(monitor.members().at(7).progress_offset, 5u);
}

TEST(CheckpointStoreTest, FlashIsOrdersOfMagnitudeFasterThanRds) {
  RdsStore rds;
  CacheStore cache;
  const Bytes model = GiB(20);
  // Paper: RDS checkpoint 5-10 minutes; flash-checkpoint < 1s + overhead.
  EXPECT_GT(rds.WriteTime(model), Minutes(5));
  EXPECT_LT(rds.WriteTime(model), Minutes(10));
  EXPECT_LT(cache.WriteTime(model), Seconds(1.5));
  EXPECT_LT(cache.LocalReadTime(model), cache.ReadTime(model));
}

TEST(CheckpointStoreTest, AsyncFlushAccumulates) {
  CacheStore cache;
  cache.AsyncFlushToRds(GiB(1));
  cache.AsyncFlushToRds(GiB(2));
  EXPECT_DOUBLE_EQ(cache.flushed_bytes(), GiB(3));
}

TEST(OomPredictorTest, FitsLinearGrowth) {
  OomPredictor predictor;
  for (int i = 0; i < 10; ++i) {
    predictor.Observe(i * 10.0, GiB(1) + i * MiB(100));
  }
  EXPECT_NEAR(predictor.SlopeBytesPerSec(), MiB(10), MiB(0.1));
  EXPECT_NEAR(predictor.ProjectAt(190.0), GiB(1) + MiB(1900), MiB(20));
}

TEST(OomPredictorTest, RecommendsWhenLimitWillBeHit) {
  OomPredictor predictor;
  for (int i = 0; i < 10; ++i) {
    predictor.Observe(i * 10.0, GiB(1) + i * MiB(100));
  }
  // Growing ~10 MiB/s; a 2 GiB limit is hit around t=190s.
  const auto rec = predictor.RecommendLimit(GiB(2), 500.0);
  ASSERT_TRUE(rec.has_value());
  EXPECT_GT(*rec, GiB(4));
  // A roomy limit needs no action.
  EXPECT_FALSE(predictor.RecommendLimit(GiB(64), 500.0).has_value());
}

TEST(OomPredictorTest, SilentWithTooFewSamples) {
  OomPredictor predictor;
  predictor.Observe(0.0, GiB(1));
  predictor.Observe(1.0, GiB(2));
  EXPECT_FALSE(predictor.RecommendLimit(GiB(1), 100.0).has_value());
}

TEST(OomPredictorTest, FlatUsageNeverTriggers) {
  OomPredictor predictor;
  for (int i = 0; i < 20; ++i) predictor.Observe(i * 10.0, GiB(3));
  EXPECT_FALSE(predictor.RecommendLimit(GiB(4), 1e9).has_value());
}

}  // namespace
}  // namespace dlrover
