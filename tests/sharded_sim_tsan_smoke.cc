// Sharded-engine smoke test compiled with -fsanitize=thread regardless of
// the global build flags (see tests/CMakeLists.txt): it recompiles the
// sharded event core and the fleet runner into an instrumented binary and
// advances multi-cell fleets on a real thread pool, so tier-1 `ctest`
// exercises the conservative window protocol — parallel shard advancement,
// per-shard outbox writes, barrier commit — under ThreadSanitizer. The
// smoke also re-checks the engine's central promise while instrumented:
// lane count never changes results. No gtest here: TSan makes the process
// exit nonzero when it reports a race, logic failures return 1.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "harness/sharded_fleet.h"
#include "sim/sharded_simulator.h"

namespace {

#define CHECK_TRUE(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FAILED: %s at %s:%d\n", #cond, __FILE__,  \
                   __LINE__);                                         \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

// Raw engine: four shards ping effects across shard boundaries for a few
// hundred windows; the delivery trace on 4 lanes must equal the sequential
// one exactly.
void EngineWindowSmoke() {
  using namespace dlrover;
  auto run = [](size_t lanes) {
    ThreadPool pool(4);
    ShardedSimOptions options;
    options.num_shards = 4;
    options.window = 5.0;
    options.pool = lanes > 1 ? &pool : nullptr;
    options.parallelism = lanes;
    ShardedSimulator engine(options);
    // Every effect targets shard 0, so the trace is only ever written from
    // shard 0's (sequential) event loop — while shards 1..3 run on other
    // lanes, which is the concurrency TSan is here to watch.
    Simulator& sink = engine.shard(0);
    std::vector<std::pair<SimTime, int>> trace;
    std::vector<std::unique_ptr<PeriodicTask>> tasks;
    for (int s = 1; s < 4; ++s) {
      Simulator& sim = engine.shard(s);
      tasks.push_back(std::make_unique<PeriodicTask>(
          &sim, 2.0 + 0.5 * s, [&engine, &trace, &sink, s] {
            engine.Send(s, 0, engine.Now() + 3.0, [&trace, &sink, s] {
              trace.emplace_back(sink.Now(), s);
            });
          }));
      tasks.back()->Start();
    }
    engine.RunUntil(1000.0);
    return std::make_pair(trace, engine.cross_shard_sends());
  };
  const auto sequential = run(1);
  const auto parallel = run(4);
  CHECK_TRUE(sequential.second > 0);
  CHECK_TRUE(sequential.second == parallel.second);
  CHECK_TRUE(sequential.first == parallel.first);
}

// Fleet runner: a three-cell manual fleet advanced on 1, 2, and 4 lanes
// must produce byte-identical outcomes.
void ShardedFleetSmoke() {
  using namespace dlrover;
  FleetScenario scenario;
  scenario.dlrover_fraction = 0.0;
  scenario.workload.num_jobs = 9;
  scenario.workload.arrival_span = Hours(2);
  scenario.cluster.num_nodes = 12;
  scenario.horizon = Hours(6);
  scenario.seed = 11;

  auto run = [&scenario](int lanes) {
    ShardedFleetOptions options;
    options.cells = 3;
    options.shards = lanes;
    options.window = Minutes(2);
    return RunFleetSharded(scenario, options);
  };
  const ShardedFleetResult one = run(1);
  CHECK_TRUE(one.fleet.jobs.size() == 9);
  CHECK_TRUE(one.fleet.executed_events > 0);
  CHECK_TRUE(one.windows > 0);
  for (int lanes : {2, 4}) {
    const ShardedFleetResult wide = run(lanes);
    CHECK_TRUE(wide.fleet.executed_events == one.fleet.executed_events);
    CHECK_TRUE(wide.fleet.pods_preempted == one.fleet.pods_preempted);
    CHECK_TRUE(wide.windows == one.windows);
    CHECK_TRUE(wide.cross_shard_sends == one.cross_shard_sends);
    CHECK_TRUE(wide.ledger_entries == one.ledger_entries);
    for (size_t i = 0; i < one.fleet.jobs.size(); ++i) {
      CHECK_TRUE(wide.fleet.jobs[i].completed == one.fleet.jobs[i].completed);
      CHECK_TRUE(wide.fleet.jobs[i].jct == one.fleet.jobs[i].jct);
      CHECK_TRUE(wide.fleet.jobs[i].pending_time ==
                 one.fleet.jobs[i].pending_time);
    }
  }
}

}  // namespace

int main() {
  EngineWindowSmoke();
  ShardedFleetSmoke();
  std::printf("sharded sim tsan smoke: ok\n");
  return 0;
}
