// Allocation regression guard for the event hot path. The build compiles the
// counting operator-new replacement (src/common/alloc_hooks.cc) into this
// binary, warms up a single training job until every pooled structure (event
// slab, shard queue, iteration cache, usage scratch) has reached steady
// state, and then asserts that simulating thousands more events performs
// ZERO heap allocations. Any new per-event allocation in Simulator, Cluster,
// ShardQueue, or TrainingJob turns this red.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement_index.h"
#include "common/alloc_counter.h"
#include "dlrm/criteo_synth.h"
#include "dlrm/mini_dlrm.h"
#include "elastic/shard_queue.h"
#include "ps/training_job.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

TEST(AllocGuardTest, HooksAreLinkedAndCounting) {
  ASSERT_TRUE(AllocationCountingEnabled());
  const uint64_t before = AllocationCount();
  // Call the replaced operator directly: unlike a new-expression, a direct
  // call is not eligible for allocation elision.
  void* p = ::operator new(64);
  const uint64_t after = AllocationCount();
  ::operator delete(p);
  EXPECT_GT(after, before);
}

TEST(AllocGuardTest, WarmSingleJobRunIsAllocationFree) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  cluster_options.node_capacity = {32.0, GiB(192)};
  Cluster cluster(&sim, cluster_options);

  JobSpec spec;
  spec.name = "alloc-guard";
  spec.model = ModelKind::kWideDeep;
  spec.total_steps = 2000000;  // Long enough that the queue never drains.
  // Pre-size the per-window history so steady state never grows it.
  spec.history_reserve = 1 << 14;

  JobConfig config;
  config.num_workers = 8;
  config.num_ps = 2;
  config.worker_cpu = 8.0;
  config.ps_cpu = 4.0;
  config.worker_memory = GiB(8);
  config.ps_memory = GiB(48);

  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();

  // Warm-up: startup, first profile windows, shard-queue capacity growth,
  // iteration-cache population all happen here.
  sim.RunUntil(Minutes(30));
  ASSERT_EQ(job.state(), JobState::kRunning);

  constexpr int kEvents = 5000;
  const uint64_t allocs_before = AllocationCount();
  int stepped = 0;
  for (; stepped < kEvents; ++stepped) {
    if (!sim.Step()) break;
  }
  const uint64_t allocs_after = AllocationCount();

  ASSERT_EQ(stepped, kEvents) << "event queue drained during measurement";
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "hot path allocated " << (allocs_after - allocs_before)
      << " times across " << kEvents << " events";
}

TEST(AllocGuardTest, WarmTrainingHotLoopIsAllocationFree) {
  // The kThreads per-batch cycle — FillBatch, PullBatch, ComputeBatch,
  // PushBatch against a reusable DlrmBatchWork — must allocate nothing once
  // warmed: batch buffers, the pulled dense copy, key/slot tables, gathered
  // rows and gradient accumulators are all reused, and the store's
  // steady-state lookups are find/try_emplace on materialized keys. Loop a
  // fixed batch range so every embedding key (and every buffer's maximum
  // size) is seen during warm-up.
  MiniDlrmConfig config;
  config.arch = ModelKind::kWideDeep;
  config.emb_dim = 8;
  config.hash_buckets = 512;
  config.mlp_hidden = {16, 8};
  config.seed = 3;
  MiniDlrm model(config);
  CriteoSynth data(7);
  DlrmBatchWork work;
  constexpr uint64_t kBatches = 12;
  constexpr uint64_t kBatchSize = 32;
  auto one_pass = [&]() {
    for (uint64_t b = 0; b < kBatches; ++b) {
      data.FillBatch(b * kBatchSize, kBatchSize, &work.batch);
      model.PullBatch(&work);
      model.ComputeBatch(&work);
      model.PushBatch(&work, 0.05);
    }
  };
  one_pass();  // materialize every row, grow every buffer to its max
  one_pass();  // second pass: hash-map load factors, vector capacities settle

  const uint64_t before = AllocationCount();
  one_pass();
  one_pass();
  const uint64_t after = AllocationCount();
  EXPECT_EQ(after - before, 0u)
      << "training hot loop allocated " << (after - before) << " times across "
      << 2 * kBatches << " steady-state batches";
}

TEST(AllocGuardTest, WarmShardQueueDispatchCycleIsAllocationFree) {
  // The per-shard piece of the threaded hot loop: dispatch a shard, report
  // it completed. After a few cycles warm the outstanding-registry capacity,
  // the steady-state dispatch/complete cycle must not allocate. (The
  // failure/requeue path is exempt — it only runs on elastic events and
  // crashes, never per healthy shard.)
  ShardQueueOptions options;
  options.total_batches = 16384;
  options.default_shard_batches = 16;
  options.min_shard_batches = 2;
  ShardQueue queue(options);
  auto cycle = [&](int n) {
    for (int i = 0; i < n; ++i) {
      auto shard = queue.NextShard();
      ASSERT_TRUE(shard.ok());
      ASSERT_TRUE(queue.ReportCompleted(*shard).ok());
    }
  };
  cycle(32);
  const uint64_t before = AllocationCount();
  cycle(512);
  const uint64_t after = AllocationCount();
  EXPECT_EQ(after - before, 0u)
      << "shard dispatch/complete cycle allocated " << (after - before)
      << " times";
}

TEST(AllocGuardTest, WarmPlacementIndexOpsAreAllocationFree) {
  // The scheduling index itself: every slab lives in vectors sized at
  // construction (capacity treap) or grown to a high-water mark (running-pod
  // treaps), so a steady-state place/preempt-precheck/kill cycle — BestFit,
  // key updates, pod aggregates, running-pod insert/remove/visit — performs
  // zero heap allocations.
  constexpr size_t kNodes = 128;
  PlacementIndex index(kNodes);
  for (size_t i = 0; i < kNodes; ++i) {
    index.InsertNode(static_cast<NodeId>(i),
                     {32.0 - static_cast<double>(i % 7) * 0.5, GiB(192)});
  }
  RunningPodIndex running;
  std::vector<Pod> pods(256);
  for (size_t i = 0; i < pods.size(); ++i) {
    pods[i].creation_seq = i;
    running.Insert(PriorityClass::kTraining, i, &pods[i]);
  }
  // High-water the free list, then refill so steady state recycles entries.
  for (size_t i = 0; i < pods.size(); ++i) {
    running.Remove(PriorityClass::kTraining, i);
  }
  for (size_t i = 0; i < pods.size(); ++i) {
    running.Insert(PriorityClass::kTraining, i, &pods[i]);
  }

  const ResourceSpec request{4.0, GiB(8)};
  uint64_t visited = 0;
  const uint64_t before = AllocationCount();
  for (int cycle = 0; cycle < 2000; ++cycle) {
    const NodeId nid = static_cast<NodeId>(cycle % kNodes);
    const int best = index.BestFit(request);
    ASSERT_GE(best, 0);
    index.AddPod(nid, PriorityClass::kTraining, request);
    index.UpdateNode(nid, {24.0, GiB(160)});
    for (size_t n = 0; n < kNodes; ++n) {
      if (index.MaybeFreeable(static_cast<NodeId>(n), {1.0, GiB(4)}, request,
                              PriorityClass::kOnline)) {
        break;
      }
    }
    index.RemovePod(nid, PriorityClass::kTraining, request);
    index.UpdateNode(nid, {32.0 - static_cast<double>(nid % 7) * 0.5, GiB(192)});
    index.RemoveNode(nid);
    index.InsertNode(nid, {32.0 - static_cast<double>(nid % 7) * 0.5, GiB(192)});
    const uint64_t seq = static_cast<uint64_t>(cycle % 256);
    running.Remove(PriorityClass::kTraining, seq);
    running.Insert(PriorityClass::kTraining, seq, &pods[seq]);
    running.Visit(PriorityClass::kBestEffort, [&](const Pod&) { ++visited; });
  }
  const uint64_t after = AllocationCount();
  EXPECT_EQ(after - before, 0u)
      << "placement index cycle allocated " << (after - before) << " times";
  EXPECT_EQ(visited, 0u);  // nothing runs in the best-effort bucket
}

TEST(AllocGuardTest, WarmIndexedClusterChurnIsAllocationFree) {
  // Cluster-level steady state through the index: usage reports, kills, and
  // the resulting key updates / running-directory removals / empty-queue
  // pumps must not allocate once slot free-lists and index slabs are at
  // their high-water mark. (CreatePod is exempt by design — constructing a
  // pod allocates its control block — so the measured cycle churns a
  // prewarmed pool.)
  Simulator sim;
  ClusterOptions options;
  options.num_nodes = 20;
  options.node_capacity = {32.0, GiB(192)};
  Cluster cluster(&sim, options);

  auto create_batch = [&](int n, std::vector<PodId>* out) {
    for (int i = 0; i < n; ++i) {
      PodSpec spec;
      spec.name = "churn";
      spec.request = {2.0, GiB(4)};
      spec.priority = PriorityClass::kTraining;
      out->push_back(cluster.CreatePod(std::move(spec), nullptr, nullptr));
    }
  };
  std::vector<PodId> warm;
  warm.reserve(512);
  create_batch(256, &warm);
  sim.RunUntil(Minutes(5));  // all started and running
  // High-water the termination structures (pod slot free list, running-pod
  // free list), then refill so the measured kills recycle warm capacity.
  for (int i = 0; i < 128; ++i) cluster.KillPod(warm[static_cast<size_t>(i)]);
  create_batch(128, &warm);
  sim.RunUntil(Minutes(10));

  const uint64_t before = AllocationCount();
  int killed = 0;
  for (size_t i = 128; i < warm.size() && killed < 128; ++i, ++killed) {
    cluster.ReportUsage(warm[i], {1.5, GiB(3)});
    cluster.KillPod(warm[i]);
  }
  const uint64_t after = AllocationCount();
  ASSERT_EQ(killed, 128);
  EXPECT_EQ(after - before, 0u)
      << "indexed cluster churn allocated " << (after - before)
      << " times across " << killed << " usage-report/kill cycles";
}

TEST(AllocGuardTest, WarmShardedWindowDispatchIsAllocationFree) {
  // Sequential-lane sharded engine: advancing warm windows — per-shard
  // periodic work plus cross-shard sends gathered, sorted, and committed at
  // every barrier — must not allocate. The pool dispatch path is exempt by
  // design (ParallelFor allocates its task closures); since lane count never
  // changes results, the sequential path exercises the identical event work.
  ShardedSimOptions options;
  options.num_shards = 3;
  options.window = 10.0;
  ShardedSimulator engine(options);
  engine.ReserveCommitLogs(64);
  int delivered = 0;
  std::vector<std::unique_ptr<PeriodicTask>> tasks;
  for (int s = 0; s < 3; ++s) {
    Simulator& sim = engine.shard(s);
    const int dst = (s + 1) % 3;
    tasks.push_back(std::make_unique<PeriodicTask>(
        &sim, 3.0, [&engine, &delivered, s, dst] {
          engine.Send(s, dst, engine.Now() + 5.0,
                      [&delivered] { ++delivered; });
        }));
    tasks.back()->Start();
  }
  engine.RunUntil(200.0);  // warm: event slabs, outboxes, commit scratch
  ASSERT_GT(delivered, 0);
  const uint64_t windows_before = engine.windows_run();

  const uint64_t before = AllocationCount();
  engine.RunUntil(400.0);
  const uint64_t after = AllocationCount();
  EXPECT_GT(engine.windows_run(), windows_before);
  EXPECT_EQ(after - before, 0u)
      << "sharded window dispatch allocated " << (after - before)
      << " times across " << (engine.windows_run() - windows_before)
      << " warm windows";
}

}  // namespace
}  // namespace dlrover
