// Allocation regression guard for the event hot path. The build compiles the
// counting operator-new replacement (src/common/alloc_hooks.cc) into this
// binary, warms up a single training job until every pooled structure (event
// slab, shard queue, iteration cache, usage scratch) has reached steady
// state, and then asserts that simulating thousands more events performs
// ZERO heap allocations. Any new per-event allocation in Simulator, Cluster,
// ShardQueue, or TrainingJob turns this red.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/alloc_counter.h"
#include "dlrm/criteo_synth.h"
#include "dlrm/mini_dlrm.h"
#include "elastic/shard_queue.h"
#include "ps/training_job.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

TEST(AllocGuardTest, HooksAreLinkedAndCounting) {
  ASSERT_TRUE(AllocationCountingEnabled());
  const uint64_t before = AllocationCount();
  // Call the replaced operator directly: unlike a new-expression, a direct
  // call is not eligible for allocation elision.
  void* p = ::operator new(64);
  const uint64_t after = AllocationCount();
  ::operator delete(p);
  EXPECT_GT(after, before);
}

TEST(AllocGuardTest, WarmSingleJobRunIsAllocationFree) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  cluster_options.node_capacity = {32.0, GiB(192)};
  Cluster cluster(&sim, cluster_options);

  JobSpec spec;
  spec.name = "alloc-guard";
  spec.model = ModelKind::kWideDeep;
  spec.total_steps = 2000000;  // Long enough that the queue never drains.
  // Pre-size the per-window history so steady state never grows it.
  spec.history_reserve = 1 << 14;

  JobConfig config;
  config.num_workers = 8;
  config.num_ps = 2;
  config.worker_cpu = 8.0;
  config.ps_cpu = 4.0;
  config.worker_memory = GiB(8);
  config.ps_memory = GiB(48);

  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();

  // Warm-up: startup, first profile windows, shard-queue capacity growth,
  // iteration-cache population all happen here.
  sim.RunUntil(Minutes(30));
  ASSERT_EQ(job.state(), JobState::kRunning);

  constexpr int kEvents = 5000;
  const uint64_t allocs_before = AllocationCount();
  int stepped = 0;
  for (; stepped < kEvents; ++stepped) {
    if (!sim.Step()) break;
  }
  const uint64_t allocs_after = AllocationCount();

  ASSERT_EQ(stepped, kEvents) << "event queue drained during measurement";
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "hot path allocated " << (allocs_after - allocs_before)
      << " times across " << kEvents << " events";
}

TEST(AllocGuardTest, WarmTrainingHotLoopIsAllocationFree) {
  // The kThreads per-batch cycle — FillBatch, PullBatch, ComputeBatch,
  // PushBatch against a reusable DlrmBatchWork — must allocate nothing once
  // warmed: batch buffers, the pulled dense copy, key/slot tables, gathered
  // rows and gradient accumulators are all reused, and the store's
  // steady-state lookups are find/try_emplace on materialized keys. Loop a
  // fixed batch range so every embedding key (and every buffer's maximum
  // size) is seen during warm-up.
  MiniDlrmConfig config;
  config.arch = ModelKind::kWideDeep;
  config.emb_dim = 8;
  config.hash_buckets = 512;
  config.mlp_hidden = {16, 8};
  config.seed = 3;
  MiniDlrm model(config);
  CriteoSynth data(7);
  DlrmBatchWork work;
  constexpr uint64_t kBatches = 12;
  constexpr uint64_t kBatchSize = 32;
  auto one_pass = [&]() {
    for (uint64_t b = 0; b < kBatches; ++b) {
      data.FillBatch(b * kBatchSize, kBatchSize, &work.batch);
      model.PullBatch(&work);
      model.ComputeBatch(&work);
      model.PushBatch(&work, 0.05);
    }
  };
  one_pass();  // materialize every row, grow every buffer to its max
  one_pass();  // second pass: hash-map load factors, vector capacities settle

  const uint64_t before = AllocationCount();
  one_pass();
  one_pass();
  const uint64_t after = AllocationCount();
  EXPECT_EQ(after - before, 0u)
      << "training hot loop allocated " << (after - before) << " times across "
      << 2 * kBatches << " steady-state batches";
}

TEST(AllocGuardTest, WarmShardQueueDispatchCycleIsAllocationFree) {
  // The per-shard piece of the threaded hot loop: dispatch a shard, report
  // it completed. After a few cycles warm the outstanding-registry capacity,
  // the steady-state dispatch/complete cycle must not allocate. (The
  // failure/requeue path is exempt — it only runs on elastic events and
  // crashes, never per healthy shard.)
  ShardQueueOptions options;
  options.total_batches = 16384;
  options.default_shard_batches = 16;
  options.min_shard_batches = 2;
  ShardQueue queue(options);
  auto cycle = [&](int n) {
    for (int i = 0; i < n; ++i) {
      auto shard = queue.NextShard();
      ASSERT_TRUE(shard.ok());
      ASSERT_TRUE(queue.ReportCompleted(*shard).ok());
    }
  };
  cycle(32);
  const uint64_t before = AllocationCount();
  cycle(512);
  const uint64_t after = AllocationCount();
  EXPECT_EQ(after - before, 0u)
      << "shard dispatch/complete cycle allocated " << (after - before)
      << " times";
}

TEST(AllocGuardTest, WarmShardedWindowDispatchIsAllocationFree) {
  // Sequential-lane sharded engine: advancing warm windows — per-shard
  // periodic work plus cross-shard sends gathered, sorted, and committed at
  // every barrier — must not allocate. The pool dispatch path is exempt by
  // design (ParallelFor allocates its task closures); since lane count never
  // changes results, the sequential path exercises the identical event work.
  ShardedSimOptions options;
  options.num_shards = 3;
  options.window = 10.0;
  ShardedSimulator engine(options);
  engine.ReserveCommitLogs(64);
  int delivered = 0;
  std::vector<std::unique_ptr<PeriodicTask>> tasks;
  for (int s = 0; s < 3; ++s) {
    Simulator& sim = engine.shard(s);
    const int dst = (s + 1) % 3;
    tasks.push_back(std::make_unique<PeriodicTask>(
        &sim, 3.0, [&engine, &delivered, s, dst] {
          engine.Send(s, dst, engine.Now() + 5.0,
                      [&delivered] { ++delivered; });
        }));
    tasks.back()->Start();
  }
  engine.RunUntil(200.0);  // warm: event slabs, outboxes, commit scratch
  ASSERT_GT(delivered, 0);
  const uint64_t windows_before = engine.windows_run();

  const uint64_t before = AllocationCount();
  engine.RunUntil(400.0);
  const uint64_t after = AllocationCount();
  EXPECT_GT(engine.windows_run(), windows_before);
  EXPECT_EQ(after - before, 0u)
      << "sharded window dispatch allocated " << (after - before)
      << " times across " << (engine.windows_run() - windows_before)
      << " warm windows";
}

}  // namespace
}  // namespace dlrover
