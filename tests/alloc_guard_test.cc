// Allocation regression guard for the event hot path. The build compiles the
// counting operator-new replacement (src/common/alloc_hooks.cc) into this
// binary, warms up a single training job until every pooled structure (event
// slab, shard queue, iteration cache, usage scratch) has reached steady
// state, and then asserts that simulating thousands more events performs
// ZERO heap allocations. Any new per-event allocation in Simulator, Cluster,
// ShardQueue, or TrainingJob turns this red.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/alloc_counter.h"
#include "ps/training_job.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

TEST(AllocGuardTest, HooksAreLinkedAndCounting) {
  ASSERT_TRUE(AllocationCountingEnabled());
  const uint64_t before = AllocationCount();
  // Call the replaced operator directly: unlike a new-expression, a direct
  // call is not eligible for allocation elision.
  void* p = ::operator new(64);
  const uint64_t after = AllocationCount();
  ::operator delete(p);
  EXPECT_GT(after, before);
}

TEST(AllocGuardTest, WarmSingleJobRunIsAllocationFree) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  cluster_options.node_capacity = {32.0, GiB(192)};
  Cluster cluster(&sim, cluster_options);

  JobSpec spec;
  spec.name = "alloc-guard";
  spec.model = ModelKind::kWideDeep;
  spec.total_steps = 2000000;  // Long enough that the queue never drains.
  // Pre-size the per-window history so steady state never grows it.
  spec.history_reserve = 1 << 14;

  JobConfig config;
  config.num_workers = 8;
  config.num_ps = 2;
  config.worker_cpu = 8.0;
  config.ps_cpu = 4.0;
  config.worker_memory = GiB(8);
  config.ps_memory = GiB(48);

  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();

  // Warm-up: startup, first profile windows, shard-queue capacity growth,
  // iteration-cache population all happen here.
  sim.RunUntil(Minutes(30));
  ASSERT_EQ(job.state(), JobState::kRunning);

  constexpr int kEvents = 5000;
  const uint64_t allocs_before = AllocationCount();
  int stepped = 0;
  for (; stepped < kEvents; ++stepped) {
    if (!sim.Step()) break;
  }
  const uint64_t allocs_after = AllocationCount();

  ASSERT_EQ(stepped, kEvents) << "event queue drained during measurement";
  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "hot path allocated " << (allocs_after - allocs_before)
      << " times across " << kEvents << " events";
}

}  // namespace
}  // namespace dlrover
