// Property tests: the cluster substrate's bookkeeping must survive
// arbitrary interleavings of pod creation, kills, failures, preemptions and
// node loss. Each seed drives a random operation script and the invariants
// are checked after every step.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "ps/training_job.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

class ClusterChaosTest : public ::testing::TestWithParam<uint64_t> {};

void CheckInvariants(const Cluster& cluster) {
  // (1) No node over-committed; (2) allocated equals the sum of placed pod
  // requests; (3) every placed pod's node lists it exactly once.
  std::map<NodeId, ResourceSpec> per_node;
  std::map<NodeId, int> placed_count;
  cluster.VisitPods([&](const Pod& pod) {
    if (pod.phase == PodPhase::kStarting || pod.phase == PodPhase::kRunning) {
      per_node[pod.node] += pod.spec.request;
      ++placed_count[pod.node];
    }
  });
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    const Node& node = cluster.GetNode(static_cast<NodeId>(n));
    ASSERT_LE(node.allocated.cpu, node.capacity.cpu + 1e-6);
    ASSERT_LE(node.allocated.memory, node.capacity.memory + 1e-3);
    ASSERT_GE(node.allocated.cpu, -1e-6);
    const ResourceSpec expected = per_node[node.id];
    ASSERT_NEAR(node.allocated.cpu, expected.cpu, 1e-6);
    ASSERT_NEAR(node.allocated.memory, expected.memory, 1.0);
    ASSERT_EQ(static_cast<int>(node.pods.size()), placed_count[node.id]);
  }
}

TEST_P(ClusterChaosTest, BookkeepingSurvivesRandomOperations) {
  Rng rng(GetParam());
  Simulator sim;
  ClusterOptions options;
  options.num_nodes = 6;
  options.node_capacity = {16.0, GiB(64)};
  options.seed = GetParam() * 3 + 1;
  Cluster cluster(&sim, options);

  std::vector<PodId> pods;
  int stop_callbacks = 0;
  for (int step = 0; step < 400; ++step) {
    const double dice = rng.Uniform();
    if (dice < 0.40) {
      PodSpec spec;
      spec.name = "chaos";
      spec.request = {rng.Uniform(1.0, 8.0), GiB(rng.Uniform(1.0, 16.0))};
      const double cls = rng.Uniform();
      spec.priority = cls < 0.6   ? PriorityClass::kTraining
                      : cls < 0.85 ? PriorityClass::kStream
                                   : PriorityClass::kOnline;
      pods.push_back(cluster.CreatePod(
          std::move(spec), nullptr,
          [&](Pod&, PodStopReason) { ++stop_callbacks; }));
    } else if (dice < 0.60 && !pods.empty()) {
      cluster.KillPod(pods[rng.UniformInt(pods.size())]);
    } else if (dice < 0.75 && !pods.empty()) {
      cluster.FailPod(pods[rng.UniformInt(pods.size())],
                      PodStopReason::kCrash);
    } else if (dice < 0.80) {
      cluster.FailNode(static_cast<NodeId>(
          rng.UniformInt(static_cast<uint64_t>(options.num_nodes))));
    } else {
      sim.RunUntil(sim.Now() + rng.Uniform(1.0, 60.0));
    }
    CheckInvariants(cluster);
  }
  sim.RunUntil(sim.Now() + Hours(1));
  CheckInvariants(cluster);

  // Terminal pods never sit in the pending queue.
  size_t pending_seen = 0;
  cluster.VisitPods([&](const Pod& pod) {
    if (pod.phase == PodPhase::kPending) ++pending_seen;
  });
  ASSERT_EQ(pending_seen, cluster.PendingCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Node lifecycle idempotence: FailNode / RecoverNode must be safe to call
// redundantly (monitoring races deliver duplicate "node down" reports; a
// repair loop may retry RecoverNode on a node that already rejoined), and
// both must compose with the cordon ledger — dead capacity leaves the
// cordoned totals, repaired capacity rejoins them, and the cordon itself
// survives the repair.
// ---------------------------------------------------------------------------

void ExpectResourceNear(const ResourceSpec& got, const ResourceSpec& want) {
  ASSERT_NEAR(got.cpu, want.cpu, 1e-6);
  ASSERT_NEAR(got.memory, want.memory, 1.0);
}

TEST(NodeLifecycleIdempotenceTest, DoubleFailAndDoubleRecoverAreNoOps) {
  Simulator sim;
  ClusterOptions options;
  options.num_nodes = 3;
  options.node_capacity = {16.0, GiB(64)};
  options.validate_placement_index = true;
  Cluster cluster(&sim, options);

  // Spread some load so FailNode has allocations to release.
  for (int i = 0; i < 6; ++i) {
    PodSpec spec;
    spec.name = "victim";
    spec.request = {4.0, GiB(8)};
    cluster.CreatePod(std::move(spec), nullptr, nullptr);
  }
  sim.RunUntil(sim.Now() + Minutes(1));
  CheckInvariants(cluster);

  const ResourceSpec full_capacity = cluster.TotalCapacity();
  const ResourceSpec node_capacity = cluster.GetNode(1).capacity;

  cluster.FailNode(1);
  CheckInvariants(cluster);
  const ResourceSpec after_fail_capacity = cluster.TotalCapacity();
  const ResourceSpec after_fail_allocated = cluster.TotalAllocated();
  ExpectResourceNear(after_fail_capacity, full_capacity - node_capacity);
  ASSERT_TRUE(cluster.GetNode(1).pods.empty());

  // Second FailNode on a dead node: no double subtraction, no new victims.
  cluster.FailNode(1);
  CheckInvariants(cluster);
  ExpectResourceNear(cluster.TotalCapacity(), after_fail_capacity);
  ExpectResourceNear(cluster.TotalAllocated(), after_fail_allocated);

  cluster.RecoverNode(1);
  CheckInvariants(cluster);
  ExpectResourceNear(cluster.TotalCapacity(), full_capacity);

  // RecoverNode on a healthy node early-returns: totals must not inflate.
  cluster.RecoverNode(1);
  cluster.RecoverNode(0);  // never failed
  CheckInvariants(cluster);
  ExpectResourceNear(cluster.TotalCapacity(), full_capacity);
  sim.RunUntil(sim.Now() + Minutes(1));
  CheckInvariants(cluster);
}

TEST(NodeLifecycleIdempotenceTest, CordonSurvivesNodeFailureAndRepair) {
  Simulator sim;
  ClusterOptions options;
  options.num_nodes = 3;
  options.node_capacity = {16.0, GiB(64)};
  options.validate_placement_index = true;
  Cluster cluster(&sim, options);

  const ResourceSpec node_capacity = cluster.GetNode(2).capacity;
  const ResourceSpec full_capacity = cluster.TotalCapacity();

  cluster.CordonNode(2);
  ASSERT_TRUE(cluster.IsCordoned(2));
  ExpectResourceNear(cluster.CordonedCapacity(), node_capacity);
  // Cordoning is idempotent too.
  cluster.CordonNode(2);
  ExpectResourceNear(cluster.CordonedCapacity(), node_capacity);
  ASSERT_EQ(cluster.counters().nodes_cordoned, 1u);

  // The node dies while cordoned: its capacity leaves both the running
  // totals and the cordoned ledger (dead capacity is not "fenced-off
  // healthy capacity"), but the cordon flag itself persists.
  cluster.FailNode(2);
  CheckInvariants(cluster);
  ASSERT_TRUE(cluster.IsCordoned(2));
  ExpectResourceNear(cluster.CordonedCapacity(), ResourceSpec{});
  ExpectResourceNear(cluster.TotalCapacity(), full_capacity - node_capacity);
  cluster.FailNode(2);  // still idempotent while cordoned
  ExpectResourceNear(cluster.CordonedCapacity(), ResourceSpec{});
  ExpectResourceNear(cluster.TotalCapacity(), full_capacity - node_capacity);

  // Repair: capacity rejoins the totals as cordoned capacity, and the node
  // stays out of placement until explicitly uncordoned.
  cluster.RecoverNode(2);
  CheckInvariants(cluster);
  ASSERT_TRUE(cluster.IsCordoned(2));
  ExpectResourceNear(cluster.TotalCapacity(), full_capacity);
  ExpectResourceNear(cluster.CordonedCapacity(), node_capacity);

  // Fill the two schedulable nodes, then submit one more node-sized pod: it
  // must pend (node 2 is back but cordoned) until the cordon lifts.
  for (int i = 0; i < 2; ++i) {
    PodSpec spec;
    spec.name = "filler";
    spec.request = node_capacity;
    cluster.CreatePod(std::move(spec), nullptr, nullptr);
  }
  sim.RunUntil(sim.Now() + Minutes(1));
  ASSERT_EQ(cluster.PendingCount(), 0u);

  PodSpec spec;
  spec.name = "blocked";
  spec.request = node_capacity;
  cluster.CreatePod(std::move(spec), nullptr, nullptr);
  sim.RunUntil(sim.Now() + Minutes(1));
  ASSERT_EQ(cluster.PendingCount(), 1u);

  cluster.UncordonNode(2);
  CheckInvariants(cluster);
  ASSERT_FALSE(cluster.IsCordoned(2));
  ExpectResourceNear(cluster.CordonedCapacity(), ResourceSpec{});
  sim.RunUntil(sim.Now() + Minutes(1));
  ASSERT_EQ(cluster.PendingCount(), 0u);
  ASSERT_FALSE(cluster.GetNode(2).pods.empty());
  CheckInvariants(cluster);
}

// ---------------------------------------------------------------------------
// Indexed vs legacy decision parity: the PlacementIndex arm must make
// *identical* scheduling decisions — same placement node for every pod, same
// preemption victims in the same order, same stop reasons, same counters —
// as the legacy linear scans, under thousands of mixed
// place/kill/node-fail/recover/preempt/usage-report operations. The indexed
// arm additionally runs with validate_placement_index, so every mutation is
// cross-checked against a fresh scan while the script runs.

/// Everything observable about one run of the random op script.
struct DecisionTrace {
  /// (pod creation ordinal, stop reason) in stop-callback firing order —
  /// preemption victim identity AND order land here.
  std::vector<std::pair<uint64_t, int>> stops;
  /// Per-op digest: for each created pod its (phase, node) after the op.
  std::vector<int> state_digest;
  std::vector<PodId> ids;
  uint64_t placements = 0;
  uint64_t preempted = 0;
  uint64_t failed = 0;
  size_t pending = 0;

  bool operator==(const DecisionTrace& o) const {
    return stops == o.stops && state_digest == o.state_digest &&
           ids == o.ids && placements == o.placements &&
           preempted == o.preempted && failed == o.failed &&
           pending == o.pending;
  }
};

DecisionTrace RunDecisionScript(uint64_t seed, bool use_index) {
  Rng rng(seed * 101 + 7);
  Simulator sim;
  ClusterOptions options;
  options.num_nodes = 8;
  options.node_capacity = {16.0, GiB(64)};
  options.seed = seed * 3 + 1;
  options.use_placement_index = use_index;
  options.validate_placement_index = use_index;
  Cluster cluster(&sim, options);

  DecisionTrace trace;
  std::vector<PodId> pods;
  uint64_t ordinal = 0;
  for (int step = 0; step < 2500; ++step) {
    const double dice = rng.Uniform();
    if (dice < 0.38) {
      PodSpec spec;
      spec.name = "parity";
      // Quantized sizes so capacity ties across nodes are common (the
      // tie-break rule is the part most worth pinning).
      spec.request = {static_cast<double>(rng.UniformInt(1, 8)),
                      GiB(static_cast<double>(rng.UniformInt(1, 16)))};
      const double cls = rng.Uniform();
      spec.priority = cls < 0.45   ? PriorityClass::kBestEffort
                      : cls < 0.75 ? PriorityClass::kTraining
                      : cls < 0.9  ? PriorityClass::kStream
                                   : PriorityClass::kOnline;
      const uint64_t my_ordinal = ordinal++;
      pods.push_back(cluster.CreatePod(
          std::move(spec), nullptr,
          [&trace, my_ordinal](Pod&, PodStopReason reason) {
            trace.stops.emplace_back(my_ordinal, static_cast<int>(reason));
          }));
      trace.ids.push_back(pods.back());
    } else if (dice < 0.52 && !pods.empty()) {
      cluster.KillPod(pods[rng.UniformInt(pods.size())]);
    } else if (dice < 0.62 && !pods.empty()) {
      cluster.FailPod(pods[rng.UniformInt(pods.size())],
                      PodStopReason::kCrash);
    } else if (dice < 0.68) {
      cluster.FailNode(static_cast<NodeId>(
          rng.UniformInt(static_cast<uint64_t>(options.num_nodes))));
    } else if (dice < 0.74) {
      cluster.RecoverNode(static_cast<NodeId>(
          rng.UniformInt(static_cast<uint64_t>(options.num_nodes))));
    } else if (dice < 0.84 && !pods.empty()) {
      const PodId id = pods[rng.UniformInt(pods.size())];
      cluster.ReportUsage(id, {rng.Uniform(0.1, 4.0), GiB(rng.Uniform(0.1, 4.0))});
    } else {
      sim.RunUntil(sim.Now() + rng.Uniform(1.0, 90.0));
    }
    // Digest every pod's (phase, node) — placement decisions land here.
    for (PodId id : pods) {
      const Pod* pod = cluster.GetPod(id);
      if (pod == nullptr) {
        trace.state_digest.push_back(-1);
        continue;
      }
      trace.state_digest.push_back(static_cast<int>(pod->phase) * 1000 +
                                   static_cast<int>(pod->node));
    }
  }
  sim.RunUntil(sim.Now() + Hours(2));
  trace.placements = cluster.counters().placements;
  trace.preempted = cluster.counters().pods_preempted;
  trace.failed = cluster.counters().pods_failed;
  trace.pending = cluster.PendingCount();
  return trace;
}

class PlacementParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlacementParityTest, IndexedDecisionsMatchLegacyScan) {
  const DecisionTrace indexed = RunDecisionScript(GetParam(), true);
  const DecisionTrace legacy = RunDecisionScript(GetParam(), false);
  ASSERT_EQ(indexed.ids, legacy.ids);
  ASSERT_EQ(indexed.stops, legacy.stops)
      << "victim identity/order or stop reasons diverged";
  ASSERT_EQ(indexed.state_digest, legacy.state_digest)
      << "a pod was placed on a different node";
  EXPECT_EQ(indexed.placements, legacy.placements);
  EXPECT_EQ(indexed.preempted, legacy.preempted);
  EXPECT_EQ(indexed.failed, legacy.failed);
  EXPECT_EQ(indexed.pending, legacy.pending);
  // Paranoia: the traces must describe a run where scheduling actually
  // happened (preemptions included), or parity means little.
  EXPECT_GT(indexed.placements, 100u);
  EXPECT_GT(indexed.preempted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementParityTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

class JobChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JobChaosTest, JobAccountingSurvivesRandomFaults) {
  Rng rng(GetParam() * 17 + 3);
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  Cluster cluster(&sim, cluster_options);

  JobSpec spec;
  spec.name = "chaos-job";
  spec.total_steps = 60000;
  spec.checkpoint_interval = Minutes(3);
  spec.seed = GetParam();
  JobConfig config;
  config.num_workers = 12;
  config.num_ps = 3;
  config.worker_cpu = 8.0;
  config.ps_cpu = 6.0;
  config.worker_memory = GiB(6);
  config.ps_memory = GiB(10);
  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();

  // Random fault script against the job's own pods.
  for (int burst = 0; burst < 30; ++burst) {
    sim.RunUntil(sim.Now() + rng.Uniform(30.0, 180.0));
    if (job.finished()) break;
    std::vector<PodId> victims;
    cluster.VisitPods([&](const Pod& pod) {
      if (pod.phase == PodPhase::kRunning) victims.push_back(pod.id);
    });
    if (victims.empty()) continue;
    const PodId victim = victims[rng.UniformInt(victims.size())];
    const double dice = rng.Uniform();
    if (dice < 0.5) {
      cluster.FailPod(victim, PodStopReason::kCrash);
    } else if (dice < 0.8) {
      cluster.DegradePod(victim, 0.1);
    } else {
      cluster.KillPod(victim);
    }
    // Accounting invariants hold at every point.
    ASSERT_LE(job.batches_done(), job.total_batches());
    ASSERT_GE(job.stats().downtime_checkpoint, 0.0);
    ASSERT_GE(job.stats().downtime_waiting_pods, 0.0);
  }
  sim.RunUntil(Hours(24));

  // With dynamic sharding + recovery the job must finish, having processed
  // exactly its step budget, or have exhausted its restart budget cleanly.
  if (job.state() == JobState::kCompleted) {
    EXPECT_EQ(job.batches_done(), spec.total_steps);
  } else {
    EXPECT_EQ(job.state(), JobState::kFailed);
    EXPECT_FALSE(job.stats().fail_reason.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JobChaosTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace dlrover
