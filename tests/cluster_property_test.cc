// Property tests: the cluster substrate's bookkeeping must survive
// arbitrary interleavings of pod creation, kills, failures, preemptions and
// node loss. Each seed drives a random operation script and the invariants
// are checked after every step.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "ps/training_job.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

class ClusterChaosTest : public ::testing::TestWithParam<uint64_t> {};

void CheckInvariants(const Cluster& cluster) {
  // (1) No node over-committed; (2) allocated equals the sum of placed pod
  // requests; (3) every placed pod's node lists it exactly once.
  std::map<NodeId, ResourceSpec> per_node;
  std::map<NodeId, int> placed_count;
  cluster.VisitPods([&](const Pod& pod) {
    if (pod.phase == PodPhase::kStarting || pod.phase == PodPhase::kRunning) {
      per_node[pod.node] += pod.spec.request;
      ++placed_count[pod.node];
    }
  });
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    const Node& node = cluster.GetNode(static_cast<NodeId>(n));
    ASSERT_LE(node.allocated.cpu, node.capacity.cpu + 1e-6);
    ASSERT_LE(node.allocated.memory, node.capacity.memory + 1e-3);
    ASSERT_GE(node.allocated.cpu, -1e-6);
    const ResourceSpec expected = per_node[node.id];
    ASSERT_NEAR(node.allocated.cpu, expected.cpu, 1e-6);
    ASSERT_NEAR(node.allocated.memory, expected.memory, 1.0);
    ASSERT_EQ(static_cast<int>(node.pods.size()), placed_count[node.id]);
  }
}

TEST_P(ClusterChaosTest, BookkeepingSurvivesRandomOperations) {
  Rng rng(GetParam());
  Simulator sim;
  ClusterOptions options;
  options.num_nodes = 6;
  options.node_capacity = {16.0, GiB(64)};
  options.seed = GetParam() * 3 + 1;
  Cluster cluster(&sim, options);

  std::vector<PodId> pods;
  int stop_callbacks = 0;
  for (int step = 0; step < 400; ++step) {
    const double dice = rng.Uniform();
    if (dice < 0.40) {
      PodSpec spec;
      spec.name = "chaos";
      spec.request = {rng.Uniform(1.0, 8.0), GiB(rng.Uniform(1.0, 16.0))};
      const double cls = rng.Uniform();
      spec.priority = cls < 0.6   ? PriorityClass::kTraining
                      : cls < 0.85 ? PriorityClass::kStream
                                   : PriorityClass::kOnline;
      pods.push_back(cluster.CreatePod(
          std::move(spec), nullptr,
          [&](Pod&, PodStopReason) { ++stop_callbacks; }));
    } else if (dice < 0.60 && !pods.empty()) {
      cluster.KillPod(pods[rng.UniformInt(pods.size())]);
    } else if (dice < 0.75 && !pods.empty()) {
      cluster.FailPod(pods[rng.UniformInt(pods.size())],
                      PodStopReason::kCrash);
    } else if (dice < 0.80) {
      cluster.FailNode(static_cast<NodeId>(
          rng.UniformInt(static_cast<uint64_t>(options.num_nodes))));
    } else {
      sim.RunUntil(sim.Now() + rng.Uniform(1.0, 60.0));
    }
    CheckInvariants(cluster);
  }
  sim.RunUntil(sim.Now() + Hours(1));
  CheckInvariants(cluster);

  // Terminal pods never sit in the pending queue.
  size_t pending_seen = 0;
  cluster.VisitPods([&](const Pod& pod) {
    if (pod.phase == PodPhase::kPending) ++pending_seen;
  });
  ASSERT_EQ(pending_seen, cluster.PendingCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class JobChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JobChaosTest, JobAccountingSurvivesRandomFaults) {
  Rng rng(GetParam() * 17 + 3);
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  Cluster cluster(&sim, cluster_options);

  JobSpec spec;
  spec.name = "chaos-job";
  spec.total_steps = 60000;
  spec.checkpoint_interval = Minutes(3);
  spec.seed = GetParam();
  JobConfig config;
  config.num_workers = 12;
  config.num_ps = 3;
  config.worker_cpu = 8.0;
  config.ps_cpu = 6.0;
  config.worker_memory = GiB(6);
  config.ps_memory = GiB(10);
  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();

  // Random fault script against the job's own pods.
  for (int burst = 0; burst < 30; ++burst) {
    sim.RunUntil(sim.Now() + rng.Uniform(30.0, 180.0));
    if (job.finished()) break;
    std::vector<PodId> victims;
    cluster.VisitPods([&](const Pod& pod) {
      if (pod.phase == PodPhase::kRunning) victims.push_back(pod.id);
    });
    if (victims.empty()) continue;
    const PodId victim = victims[rng.UniformInt(victims.size())];
    const double dice = rng.Uniform();
    if (dice < 0.5) {
      cluster.FailPod(victim, PodStopReason::kCrash);
    } else if (dice < 0.8) {
      cluster.DegradePod(victim, 0.1);
    } else {
      cluster.KillPod(victim);
    }
    // Accounting invariants hold at every point.
    ASSERT_LE(job.batches_done(), job.total_batches());
    ASSERT_GE(job.stats().downtime_checkpoint, 0.0);
    ASSERT_GE(job.stats().downtime_waiting_pods, 0.0);
  }
  sim.RunUntil(Hours(24));

  // With dynamic sharding + recovery the job must finish, having processed
  // exactly its step budget, or have exhausted its restart budget cleanly.
  if (job.state() == JobState::kCompleted) {
    EXPECT_EQ(job.batches_done(), spec.total_steps);
  } else {
    EXPECT_EQ(job.state(), JobState::kFailed);
    EXPECT_FALSE(job.stats().fail_reason.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JobChaosTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace dlrover
