#include "ps/training_job.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/failure_injector.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

ClusterOptions SmallCluster() {
  ClusterOptions options;
  options.num_nodes = 20;
  options.node_capacity = {32.0, GiB(192)};
  return options;
}

JobSpec QuickSpec(uint64_t steps = 2000) {
  JobSpec spec;
  spec.name = "test-job";
  spec.model = ModelKind::kWideDeep;
  spec.total_steps = steps;
  return spec;
}

JobConfig TunedConfig() {
  JobConfig config;
  config.num_workers = 8;
  config.num_ps = 2;
  config.worker_cpu = 8.0;
  config.ps_cpu = 4.0;
  config.worker_memory = GiB(8);
  config.ps_memory = GiB(48);
  return config;
}

std::vector<PodId> RunningWorkerPods(const Cluster& cluster) {
  std::vector<PodId> ids;
  cluster.VisitPods([&](const Pod& pod) {
    if (pod.phase == PodPhase::kRunning &&
        pod.spec.name.find("worker") != std::string::npos) {
      ids.push_back(pod.id);
    }
  });
  return ids;
}

TEST(TrainingJobTest, RunsToCompletion) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  TrainingJob job(&sim, &cluster, QuickSpec(), TunedConfig());
  job.Start();
  sim.RunUntil(Hours(4));
  ASSERT_EQ(job.state(), JobState::kCompleted);
  EXPECT_EQ(job.batches_done(), 2000u);
  EXPECT_GT(job.stats().Jct(), 0.0);
  EXPECT_GE(job.stats().first_training_time, 0.0);
}

TEST(TrainingJobTest, ThroughputMatchesIterationModel) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  JobSpec spec = QuickSpec(120000);
  JobConfig config = TunedConfig();
  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();
  sim.RunUntil(Minutes(10));
  ASSERT_EQ(job.state(), JobState::kRunning);
  const IterationBreakdown iter = ComputeHealthyIteration(
      job.model_profile(), job.environment(), spec.batch_size, config);
  const double expected =
      ThroughputSamplesPerSec(iter, spec.batch_size, config.num_workers);
  // Average over the whole run: per-window samples are quantized by shard
  // completions, the long-run average is not.
  const double elapsed = Minutes(10) - job.stats().first_training_time;
  const double measured = static_cast<double>(job.batches_done()) *
                          static_cast<double>(spec.batch_size) / elapsed;
  ASSERT_GT(measured, 0.0);
  EXPECT_NEAR(measured, expected, expected * 0.12);
}

TEST(TrainingJobTest, SurvivesWorkerCrashWithDynamicSharding) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  TrainingJob job(&sim, &cluster, QuickSpec(60000), TunedConfig());
  job.Start();
  sim.RunUntil(Minutes(5));
  ASSERT_EQ(job.state(), JobState::kRunning);
  // Crash two workers: shards must be re-queued, replacements created.
  int crashed = 0;
  for (PodId id : RunningWorkerPods(cluster)) {
    if (crashed >= 2) break;
    cluster.FailPod(id, PodStopReason::kCrash);
    ++crashed;
  }
  ASSERT_EQ(crashed, 2);
  sim.RunUntil(Hours(6));
  ASSERT_EQ(job.state(), JobState::kCompleted);
  EXPECT_EQ(job.batches_done(), 60000u);
  EXPECT_EQ(job.stats().worker_failures, 2);
  EXPECT_EQ(job.stats().full_restarts, 0);
}

TEST(TrainingJobTest, StaticPartitionRestartsOnWorkerCrash) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  JobSpec spec = QuickSpec(60000);
  spec.data_mode = DataMode::kStaticPartition;
  spec.use_flash_checkpoint = false;
  TrainingJob job(&sim, &cluster, spec, TunedConfig());
  job.Start();
  sim.RunUntil(Minutes(5));
  ASSERT_EQ(job.state(), JobState::kRunning);
  const std::vector<PodId> crash_targets = RunningWorkerPods(cluster);
  ASSERT_FALSE(crash_targets.empty());
  cluster.FailPod(crash_targets.front(), PodStopReason::kCrash);
  sim.RunUntil(Hours(8));
  ASSERT_EQ(job.state(), JobState::kCompleted);
  EXPECT_EQ(job.stats().full_restarts, 1);
  EXPECT_GT(job.stats().downtime_checkpoint, 0.0);
  EXPECT_GT(job.stats().downtime_waiting_pods, 0.0);
}

TEST(TrainingJobTest, SeamlessScaleWorkersHasNoDowntime) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  TrainingJob job(&sim, &cluster, QuickSpec(120000), TunedConfig());
  job.Start();
  sim.RunUntil(Minutes(5));
  ASSERT_EQ(job.state(), JobState::kRunning);
  JobConfig bigger = job.config();
  bigger.num_workers += 8;
  ASSERT_TRUE(job.ApplyPlan(bigger, MigrationMode::kSeamless).ok());
  EXPECT_EQ(job.state(), JobState::kRunning);  // never paused
  sim.RunUntil(Minutes(15));
  EXPECT_EQ(job.ActiveWorkerCount(), 16);
  EXPECT_EQ(job.stats().scale_operations, 1);
  EXPECT_EQ(job.stats().downtime_checkpoint, 0.0);
  sim.RunUntil(Hours(6));
  EXPECT_EQ(job.state(), JobState::kCompleted);
}

TEST(TrainingJobTest, SeamlessMigrationMuchCheaperThanStopRestart) {
  auto run = [](bool flash, MigrationMode mode) {
    Simulator sim;
    Cluster cluster(&sim, SmallCluster());
    JobSpec spec = QuickSpec(120000);
    spec.use_flash_checkpoint = flash;
    TrainingJob job(&sim, &cluster, spec, TunedConfig());
    job.Start();
    sim.RunUntil(Minutes(5));
    JobConfig plan = job.config();
    plan.num_ps += 2;
    EXPECT_TRUE(job.ApplyPlan(plan, mode).ok());
    sim.RunUntil(Hours(8));
    EXPECT_EQ(job.state(), JobState::kCompleted);
    return job.stats();
  };
  const JobStats seamless = run(true, MigrationMode::kSeamless);
  const JobStats restart = run(false, MigrationMode::kStopAndRestart);
  EXPECT_EQ(seamless.migrations, 1);
  EXPECT_EQ(restart.migrations, 1);
  // Seamless + flash downtime is seconds; stop-and-restart is minutes.
  EXPECT_LT(seamless.downtime_checkpoint, Seconds(30));
  EXPECT_GT(restart.downtime_checkpoint, Minutes(2));
  EXPECT_GT(restart.downtime_waiting_pods, Seconds(20));
  EXPECT_EQ(seamless.downtime_waiting_pods, 0.0);
}

TEST(TrainingJobTest, PsOomTriggersRecoveryAndVerticalScale) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  JobSpec spec = QuickSpec(60000);
  spec.checkpoint_interval = Minutes(2);
  JobConfig config = TunedConfig();
  config.ps_memory = GiB(4.5);  // too small: embedding growth will blow it
  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();
  sim.RunUntil(Hours(12));
  // The job OOMs at least once, recovers with more memory, and finishes.
  EXPECT_GE(job.stats().oom_events, 1);
  EXPECT_EQ(job.state(), JobState::kCompleted);
  EXPECT_GT(job.config().ps_memory, GiB(4.5));
}

TEST(TrainingJobTest, OomPreventionAvoidsOomEntirely) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  JobSpec spec = QuickSpec(60000);
  JobConfig config = TunedConfig();
  config.ps_memory = GiB(4.5);
  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();
  // A master loop that runs the OOM predictor periodically.
  PeriodicTask guard(&sim, Minutes(1), [&job] { job.MaybePreventOom(); });
  guard.Start();
  sim.RunUntil(Hours(12));
  EXPECT_EQ(job.state(), JobState::kCompleted);
  EXPECT_EQ(job.stats().oom_events, 0);
  EXPECT_GT(job.config().ps_memory, GiB(4.5));
}

TEST(TrainingJobTest, RelaunchBackoffDelaysWorkerReplacement) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  JobSpec spec = QuickSpec(60000);
  spec.relaunch_backoff_base = Seconds(20);
  spec.relaunch_backoff_cap = Seconds(60);
  TrainingJob job(&sim, &cluster, spec, TunedConfig());
  job.Start();
  sim.RunUntil(Minutes(5));
  ASSERT_EQ(job.state(), JobState::kRunning);

  auto live_worker_pods = [&cluster] {
    int count = 0;
    cluster.VisitPods([&](const Pod& pod) {
      if (!pod.terminal() &&
          pod.spec.name.find("worker") != std::string::npos) {
        ++count;
      }
    });
    return count;
  };
  const int before = live_worker_pods();
  const std::vector<PodId> targets = RunningWorkerPods(cluster);
  ASSERT_FALSE(targets.empty());
  cluster.FailPod(targets.front(), PodStopReason::kCrash);

  // First-attempt backoff is 20s * jitter in [0.5, 1.5): no replacement pod
  // may even be requested inside the first 10 seconds.
  sim.RunUntil(sim.Now() + Seconds(9));
  EXPECT_EQ(live_worker_pods(), before - 1)
      << "replacement must wait out the backoff";
  // Well past the jittered delay the replacement exists and the job heals.
  sim.RunUntil(sim.Now() + Seconds(60));
  EXPECT_EQ(live_worker_pods(), before);
  EXPECT_GT(job.stats().downtime_waiting_pods, 0.0);

  sim.RunUntil(Hours(6));
  ASSERT_EQ(job.state(), JobState::kCompleted);
  EXPECT_EQ(job.batches_done(), 60000u);
  EXPECT_EQ(job.stats().worker_failures, 1);
}

TEST(TrainingJobTest, StopAndRestartMigrationFlushesFlashCache) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  JobSpec spec = QuickSpec(60000);
  // Disarm the periodic checkpoint so any flush observed here comes from
  // the migration path itself.
  spec.checkpoint_interval = Hours(100);
  TrainingJob job(&sim, &cluster, spec, TunedConfig());
  job.Start();
  sim.RunUntil(Minutes(5));
  ASSERT_EQ(job.state(), JobState::kRunning);
  ASSERT_DOUBLE_EQ(job.flash_cache().flushed_bytes(), 0.0);

  JobConfig bigger = TunedConfig();
  bigger.num_ps = 3;
  ASSERT_TRUE(job.ApplyPlan(bigger, MigrationMode::kStopAndRestart).ok());
  sim.RunUntil(Hours(6));
  ASSERT_EQ(job.state(), JobState::kCompleted);
  EXPECT_EQ(job.stats().migrations, 1);
  // The migration checkpoint went to the flash tier and must have been
  // asynchronously persisted to RDS, not left in volatile memory only.
  EXPECT_GT(job.flash_cache().flushed_bytes(), 0.0);
}

TEST(TrainingJobTest, ReapSilentWorkersReplacesHalfDeadPod) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  TrainingJob job(&sim, &cluster, QuickSpec(60000), TunedConfig());
  job.Start();
  sim.RunUntil(Minutes(5));
  ASSERT_EQ(job.state(), JobState::kRunning);
  EXPECT_EQ(job.ReapSilentWorkers(), 0) << "healthy fleet: nothing to reap";

  // Degrade one worker pod to near-zero speed: the pod stays Running but
  // will never finish another shard, so its heartbeats stop — the
  // half-dead failure mode heartbeat timeouts exist for.
  const std::vector<PodId> targets = RunningWorkerPods(cluster);
  ASSERT_FALSE(targets.empty());
  cluster.DegradePod(targets.front(), 1e-4);
  sim.RunUntil(sim.Now() + Minutes(10));
  EXPECT_EQ(job.ReapSilentWorkers(), 1);
  sim.RunUntil(Hours(6));
  ASSERT_EQ(job.state(), JobState::kCompleted);
  EXPECT_EQ(job.batches_done(), 60000u);
  EXPECT_EQ(job.stats().worker_failures, 1);
  EXPECT_EQ(job.stats().full_restarts, 0);
}

TEST(TrainingJobTest, StragglerMitigationShrinksShards) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster());
  TrainingJob job(&sim, &cluster, QuickSpec(60000), TunedConfig());
  job.Start();
  sim.RunUntil(Minutes(5));
  ASSERT_EQ(job.state(), JobState::kRunning);
  // Degrade one worker pod to 3% speed (paper's straggler experiment).
  const std::vector<PodId> degrade_targets = RunningWorkerPods(cluster);
  ASSERT_FALSE(degrade_targets.empty());
  cluster.DegradePod(degrade_targets.front(), 0.03);
  PeriodicTask mitigate(&sim, Seconds(30), [&job] { job.MitigateStragglers(); });
  mitigate.Start();
  sim.RunUntil(Minutes(30));
  EXPECT_GE(job.stats().stragglers_mitigated, 1);
}

}  // namespace
}  // namespace dlrover
