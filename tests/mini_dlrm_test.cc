#include "dlrm/mini_dlrm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dlrm/criteo_synth.h"
#include "dlrm/metrics.h"

namespace dlrover {
namespace {

MiniDlrmConfig SmallConfig(ModelKind arch) {
  MiniDlrmConfig config;
  config.arch = arch;
  config.emb_dim = 4;
  config.hash_buckets = 64;
  config.mlp_hidden = {8, 4};
  config.cross_layers = 2;
  config.fm_maps = 3;
  config.seed = 33;
  return config;
}

// Numerical gradient check of the dense parameters: perturb each parameter,
// compare the loss delta against the analytic gradient.
class GradCheckTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(GradCheckTest, DenseGradientsMatchNumerical) {
  const MiniDlrmConfig config = SmallConfig(GetParam());
  MiniDlrm model(config);
  CriteoSynth data(5);
  const CriteoBatch batch = data.Batch(0, 4);
  const ParamSnapshot snap = model.TakeSnapshot(batch);

  DlrmGradients grads;
  model.ForwardBackward(batch, snap, &grads);

  const double eps = 1e-5;
  auto loss_with = [&](const ParamSnapshot& s) {
    DlrmGradients scratch;
    return model.ForwardBackward(batch, s, &scratch);
  };

  // Check a sample of parameters across every dense component.
  struct Probe {
    const char* name;
    double* param;
    double analytic;
  };
  std::vector<Probe> probes;
  ParamSnapshot mutated = snap;
  probes.push_back({"dense_proj", &mutated.dense.dense_proj.data()[3],
                    grads.dense.dense_proj.data()[3]});
  probes.push_back({"mlp_w0", &mutated.dense.mlp_w[0].data()[7],
                    grads.dense.mlp_w[0].data()[7]});
  probes.push_back({"mlp_b0", &mutated.dense.mlp_b[0][2],
                    grads.dense.mlp_b[0][2]});
  probes.push_back({"mlp_w_last", &mutated.dense.mlp_w.back().data()[1],
                    grads.dense.mlp_w.back().data()[1]});
  probes.push_back({"bias", &mutated.dense.bias, grads.dense.bias});
  if (GetParam() == ModelKind::kDcn) {
    probes.push_back({"cross_w", &mutated.dense.cross_w[0][5],
                      grads.dense.cross_w[0][5]});
    probes.push_back({"cross_b", &mutated.dense.cross_b[1][9],
                      grads.dense.cross_b[1][9]});
    probes.push_back({"cross_out_w", &mutated.dense.cross_out_w[11],
                      grads.dense.cross_out_w[11]});
  }
  if (GetParam() == ModelKind::kXDeepFm) {
    probes.push_back({"fm_proj", &mutated.dense.fm_proj[1][2],
                      grads.dense.fm_proj[1][2]});
    probes.push_back({"fm_w", &mutated.dense.fm_w[2],
                      grads.dense.fm_w[2]});
  }

  for (const Probe& probe : probes) {
    const double original = *probe.param;
    *probe.param = original + eps;
    const double up = loss_with(mutated);
    *probe.param = original - eps;
    const double down = loss_with(mutated);
    *probe.param = original;
    const double numerical = (up - down) / (2.0 * eps);
    EXPECT_NEAR(probe.analytic, numerical,
                1e-4 * std::max(1.0, std::fabs(numerical)))
        << "parameter " << probe.name;
  }
}

TEST_P(GradCheckTest, EmbeddingGradientsMatchNumerical) {
  const MiniDlrmConfig config = SmallConfig(GetParam());
  MiniDlrm model(config);
  CriteoSynth data(6);
  const CriteoBatch batch = data.Batch(0, 3);
  const ParamSnapshot snap = model.TakeSnapshot(batch);

  DlrmGradients grads;
  model.ForwardBackward(batch, snap, &grads);

  // Pick the first touched embedding entry of feature 0.
  ASSERT_FALSE(snap.rows.emb[0].empty());
  const uint64_t bucket = snap.rows.emb[0].begin()->first;
  ASSERT_TRUE(grads.rows.emb[0].count(bucket) > 0);
  const double analytic = grads.rows.emb[0].at(bucket)[1];

  ParamSnapshot mutated = snap;
  const double eps = 1e-5;
  auto loss_with = [&](const ParamSnapshot& s) {
    DlrmGradients scratch;
    return model.ForwardBackward(batch, s, &scratch);
  };
  const double original = mutated.rows.emb[0][bucket][1];
  mutated.rows.emb[0][bucket][1] = original + eps;
  const double up = loss_with(mutated);
  mutated.rows.emb[0][bucket][1] = original - eps;
  const double down = loss_with(mutated);
  const double numerical = (up - down) / (2.0 * eps);
  EXPECT_NEAR(analytic, numerical, 1e-4 * std::max(1.0, std::fabs(numerical)));
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, GradCheckTest,
                         ::testing::Values(ModelKind::kWideDeep,
                                           ModelKind::kXDeepFm,
                                           ModelKind::kDcn));

class LearningTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(LearningTest, SgdReducesHeldOutLogLoss) {
  MiniDlrmConfig config = SmallConfig(GetParam());
  config.emb_dim = 8;
  config.hash_buckets = 2048;
  config.mlp_hidden = {32, 16};
  MiniDlrm model(config);
  CriteoSynth data(17);

  const CriteoBatch test = data.Batch(1'000'000, 1024);
  const double before = model.Evaluate(test);

  for (int step = 0; step < 800; ++step) {
    const CriteoBatch batch = data.Batch(static_cast<uint64_t>(step) * 64, 64);
    const ParamSnapshot snap = model.TakeSnapshot(batch);
    DlrmGradients grads;
    model.ForwardBackward(batch, snap, &grads);
    model.ApplyGradients(grads, 0.15);
  }
  const double after = model.Evaluate(test);
  EXPECT_LT(after, before - 0.02)
      << "training did not reduce held-out logloss";

  std::vector<double> probs = model.Predict(test);
  std::vector<float> labels;
  for (const auto& s : test.samples) labels.push_back(s.label);
  EXPECT_GT(Auc(probs, labels), 0.58);
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, LearningTest,
                         ::testing::Values(ModelKind::kWideDeep,
                                           ModelKind::kXDeepFm,
                                           ModelKind::kDcn));

TEST(MiniDlrmTest, MaterializedRowsGrowWithData) {
  MiniDlrmConfig config = SmallConfig(ModelKind::kWideDeep);
  config.hash_buckets = 1 << 16;
  MiniDlrm model(config);
  CriteoSynth data(9);
  size_t prev = 0;
  for (int step = 0; step < 8; ++step) {
    const CriteoBatch batch =
        data.Batch(static_cast<uint64_t>(step) * 256, 256);
    const ParamSnapshot snap = model.TakeSnapshot(batch);
    DlrmGradients grads;
    model.ForwardBackward(batch, snap, &grads);
    model.ApplyGradients(grads, 0.05);
    EXPECT_GE(model.MaterializedRows(), prev);
    prev = model.MaterializedRows();
  }
  EXPECT_GT(prev, 1000u);  // new categories keep arriving
}

TEST(MiniDlrmTest, DeterministicAcrossMaterializationOrder) {
  // Embedding row init must not depend on the order rows are touched.
  MiniDlrmConfig config = SmallConfig(ModelKind::kDcn);
  CriteoSynth data(21);
  const CriteoBatch b1 = data.Batch(0, 32);
  const CriteoBatch b2 = data.Batch(5000, 32);

  MiniDlrm forward_order(config);
  (void)forward_order.Predict(b1);
  const std::vector<double> p_fwd = forward_order.Predict(b2);

  MiniDlrm reverse_order(config);
  const std::vector<double> p_rev = reverse_order.Predict(b2);
  ASSERT_EQ(p_fwd.size(), p_rev.size());
  for (size_t i = 0; i < p_fwd.size(); ++i) {
    EXPECT_DOUBLE_EQ(p_fwd[i], p_rev[i]);
  }
}

// The allocation-free batch hot path (PullBatch / ComputeBatch / PushBatch)
// must be arithmetically indistinguishable from the legacy snapshot path:
// train two identically-initialized models, one per path, and demand
// bit-identical losses every step and a bit-identical final state.
class FastPathTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(FastPathTest, MatchesLegacyBitExact) {
  const MiniDlrmConfig config = SmallConfig(GetParam());
  CriteoSynth data(9);
  MiniDlrm legacy(config);
  MiniDlrm fast(config);
  DlrmBatchWork work;
  const double lr = 0.05;
  const uint64_t batch_size = 16;

  for (int b = 0; b < 6; ++b) {
    const CriteoBatch batch = data.Batch(b * batch_size, batch_size);
    const ParamSnapshot snap = legacy.TakeSnapshot(batch);
    DlrmGradients grads;
    const double legacy_loss = legacy.ForwardBackward(batch, snap, &grads);
    legacy.ApplyGradients(grads, lr);

    data.FillBatch(b * batch_size, batch_size, &work.batch);
    fast.PullBatch(&work);
    const double fast_loss = fast.ComputeBatch(&work);
    fast.PushBatch(&work, lr);

    EXPECT_EQ(legacy_loss, fast_loss) << "batch " << b;
  }

  DlrmStateBlob legacy_state;
  DlrmStateBlob fast_state;
  legacy.ExportState(&legacy_state);
  fast.ExportState(&fast_state);
  ASSERT_EQ(legacy_state.dense.size(), fast_state.dense.size());
  for (size_t i = 0; i < legacy_state.dense.size(); ++i) {
    ASSERT_EQ(legacy_state.dense[i], fast_state.dense[i]) << "dense[" << i
                                                          << "]";
  }
  EXPECT_EQ(legacy_state.sparse.emb_keys, fast_state.sparse.emb_keys);
  EXPECT_EQ(legacy_state.sparse.emb_values, fast_state.sparse.emb_values);
  EXPECT_EQ(legacy_state.sparse.wide_keys, fast_state.sparse.wide_keys);
  EXPECT_EQ(legacy_state.sparse.wide_values, fast_state.sparse.wide_values);

  // And the models keep agreeing on fresh data.
  const CriteoBatch held_out = data.Batch(100000, 64);
  EXPECT_EQ(legacy.Evaluate(held_out), fast.Evaluate(held_out));
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, FastPathTest,
                         ::testing::Values(ModelKind::kWideDeep,
                                           ModelKind::kXDeepFm,
                                           ModelKind::kDcn));

}  // namespace
}  // namespace dlrover
