// Concurrency smoke test compiled with -fsanitize=thread regardless of the
// global build flags (see tests/CMakeLists.txt): it recompiles the
// threading-sensitive sources — ThreadPool, ShardQueue, EmbStore — directly
// into an instrumented binary, so tier-1 `ctest` always runs the hot
// synchronization paths under ThreadSanitizer. No gtest here: TSan makes
// the process exit nonzero when it reports a race, logic failures return 1.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "dlrm/emb_store.h"
#include "elastic/shard_queue.h"
#include "runtime/thread_pool.h"

namespace {

#define CHECK_TRUE(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FAILED: %s at %s:%d\n", #cond, __FILE__,  \
                   __LINE__);                                         \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

void ThreadPoolSmoke() {
  dlrover::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  CHECK_TRUE(counter.load() == 200);

  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1, 1001, 13, [&sum](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  CHECK_TRUE(sum.load() == 500500);
}

void ShardQueueSmoke() {
  constexpr uint64_t kTotal = 4000;
  dlrover::ShardQueueOptions options;
  options.total_batches = kTotal;
  options.default_shard_batches = 32;
  options.min_shard_batches = 8;
  dlrover::ShardQueue queue(options);

  std::vector<std::atomic<uint32_t>> done(kTotal);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&queue, &done, t]() {
      uint64_t n = static_cast<uint64_t>(t) + 1;
      for (;;) {
        auto shard = queue.WaitNextShard();
        if (!shard.ok()) return;
        n = n * 6364136223846793005ull + 1442695040888963407ull;
        const bool fail = (n >> 33) % 5 == 0;  // ~20% failures
        const uint64_t processed =
            fail ? (n >> 17) % (shard->batches() + 1) : shard->batches();
        for (uint64_t b = 0; b < processed; ++b) {
          done[shard->start_batch + b].fetch_add(1);
        }
        const dlrover::Status s =
            fail && processed < shard->batches()
                ? queue.ReportFailed(*shard, processed)
                : queue.ReportCompleted(*shard);
        CHECK_TRUE(s.ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CHECK_TRUE(queue.AllDone());
  CHECK_TRUE(queue.CheckInvariants().ok());
  for (uint64_t b = 0; b < kTotal; ++b) CHECK_TRUE(done[b].load() == 1);
}

void EmbStoreSmoke() {
  dlrover::EmbStoreOptions options;
  options.num_features = 26;
  options.emb_dim = 8;
  options.hash_buckets = 1024;
  options.seed = 7;
  options.stripes = 8;
  dlrover::EmbStore store(options);

  const std::vector<double> grad(8, 1.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&store, &grad, t]() {
      for (int i = 0; i < 500; ++i) {
        const int f = (t + i) % 26;
        const uint64_t bucket = static_cast<uint64_t>(i % 32);
        store.GetRow(f, bucket);
        store.ApplyRowGradient(f, bucket, grad, 0.01);
        store.GetWide(f, bucket);
        store.ApplyWideGradient(f, bucket, 1.0, 0.01);
        store.MaterializedRows();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CHECK_TRUE(store.MaterializedRows() >= 32);
}

// Batched gather/scatter under contention: many threads pulling and pushing
// overlapping key sets through GatherRows/ScatterApply while others hammer
// the per-key API on the same stripes. This is the sharded gradient
// application of the threaded trainer, distilled.
void EmbStoreBatchedSmoke() {
  dlrover::EmbStoreOptions options;
  options.num_features = 26;
  options.emb_dim = 8;
  options.hash_buckets = 1024;
  options.seed = 7;
  options.stripes = 8;
  dlrover::EmbStore store(options);
  const size_t dim = 8;

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&store, t]() {
      dlrover::EmbStore::BatchScratch scratch;
      std::vector<uint64_t> keys;
      std::vector<double> rows;
      std::vector<double> wide;
      std::vector<double> grads;
      std::vector<double> wgrads;
      for (int i = 0; i < 200; ++i) {
        keys.clear();
        for (int f = 0; f < 26; ++f) {
          keys.push_back(store.PackKey(f, static_cast<uint64_t>(
                                              (t * 7 + i + f) % 48)));
        }
        rows.assign(keys.size() * dim, 0.0);
        wide.assign(keys.size(), 0.0);
        store.GatherRows(keys.data(), keys.size(), rows.data(), wide.data(),
                         &scratch);
        grads.assign(keys.size() * dim, 0.5);
        wgrads.assign(keys.size(), 0.25);
        store.ScatterApply(keys.data(), keys.size(), grads.data(),
                           wgrads.data(), 0.01, &scratch);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&store, t]() {
      const std::vector<double> grad(dim, 1.0);
      for (int i = 0; i < 400; ++i) {
        const int f = (t + i) % 26;
        const uint64_t bucket = static_cast<uint64_t>(i % 48);
        store.GetRow(f, bucket);
        store.ApplyRowGradient(f, bucket, grad, 0.01);
        store.MaterializedRows();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CHECK_TRUE(store.MaterializedRows() >= 48);
}

}  // namespace

int main() {
  ThreadPoolSmoke();
  ShardQueueSmoke();
  EmbStoreSmoke();
  EmbStoreBatchedSmoke();
  std::printf("tsan smoke: ok\n");
  return 0;
}
