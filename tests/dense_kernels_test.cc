#include "common/dense_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dlrover {
namespace {

// The test binary flips the process-wide kernel mode; restore scalar so
// test order never changes what other tests in this binary run against.
class DenseKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { SetDenseKernelMode(DenseKernelMode::kScalar); }
};

std::vector<double> Ramp(size_t n, double scale) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = scale * (static_cast<double>(i % 17) - 8.0) / 7.0;
  }
  return v;
}

TEST_F(DenseKernelsTest, ScalarDotIsLeftToRightSum) {
  // Bit-identical to the historical accumulation loop, for any length
  // (the goldens depend on this).
  for (size_t n : {0u, 1u, 3u, 4u, 15u, 16u, 17u, 64u, 129u}) {
    const std::vector<double> a = Ramp(n, 1.3);
    const std::vector<double> b = Ramp(n, -0.7);
    double expect = 0.0;
    for (size_t i = 0; i < n; ++i) expect += a[i] * b[i];
    EXPECT_EQ(KernelDot(a.data(), b.data(), n), expect) << "n=" << n;
  }
}

TEST_F(DenseKernelsTest, ScalarAxpyMatchesElementwise) {
  for (size_t n : {0u, 1u, 5u, 8u, 13u, 32u, 100u}) {
    const std::vector<double> x = Ramp(n, 2.1);
    std::vector<double> y = Ramp(n, 0.4);
    std::vector<double> expect = y;
    const double alpha = -0.3;
    for (size_t i = 0; i < n; ++i) expect[i] += alpha * x[i];
    KernelAxpy(n, alpha, x.data(), y.data());
    EXPECT_EQ(y, expect) << "n=" << n;
  }
}

TEST_F(DenseKernelsTest, ModeSwitchRoundTripsAndGatesOnCpu) {
  ASSERT_EQ(ActiveDenseKernelMode(), DenseKernelMode::kScalar);
  const DenseKernelMode applied = SetDenseKernelMode(DenseKernelMode::kSimd);
  if (SimdKernelsAvailable()) {
    EXPECT_EQ(applied, DenseKernelMode::kSimd);
    EXPECT_EQ(ActiveDenseKernelMode(), DenseKernelMode::kSimd);
  } else {
    // Requesting SIMD on unsupported hardware silently keeps scalar.
    EXPECT_EQ(applied, DenseKernelMode::kScalar);
    EXPECT_EQ(ActiveDenseKernelMode(), DenseKernelMode::kScalar);
  }
  EXPECT_EQ(SetDenseKernelMode(DenseKernelMode::kScalar),
            DenseKernelMode::kScalar);
}

TEST_F(DenseKernelsTest, SimdAgreesWithScalarToRounding) {
  if (SetDenseKernelMode(DenseKernelMode::kSimd) != DenseKernelMode::kSimd) {
    GTEST_SKIP() << "CPU lacks AVX2+FMA";
  }
  // Reassociated reductions differ only in accumulated rounding: demand
  // near-equality at a tolerance far below any gradient signal, across
  // lengths covering every unrolled-loop remainder case.
  for (size_t n : {1u, 4u, 7u, 16u, 19u, 64u, 100u, 257u}) {
    const std::vector<double> a = Ramp(n, 1.3);
    const std::vector<double> b = Ramp(n, -0.7);
    const double simd = KernelDot(a.data(), b.data(), n);
    SetDenseKernelMode(DenseKernelMode::kScalar);
    const double scalar = KernelDot(a.data(), b.data(), n);
    SetDenseKernelMode(DenseKernelMode::kSimd);
    EXPECT_NEAR(simd, scalar, 1e-12 * (1.0 + std::fabs(scalar))) << "n=" << n;

    std::vector<double> y_simd = Ramp(n, 0.4);
    KernelAxpy(n, 0.25, a.data(), y_simd.data());
    SetDenseKernelMode(DenseKernelMode::kScalar);
    std::vector<double> y_scalar = Ramp(n, 0.4);
    KernelAxpy(n, 0.25, a.data(), y_scalar.data());
    SetDenseKernelMode(DenseKernelMode::kSimd);
    for (size_t i = 0; i < n; ++i) {
      // Element-wise FMA differs from mul+add by at most one rounding.
      EXPECT_NEAR(y_simd[i], y_scalar[i], 1e-15 * (1.0 + std::fabs(y_scalar[i])))
          << "n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace dlrover
