// Node-health smoke test compiled with -fsanitize=thread regardless of the
// global build flags (see tests/CMakeLists.txt): it recompiles the fleet
// stack — including the node-health control plane, the grey-fault injector
// and the drain-migration path — into an instrumented binary and runs a
// grey-fault campaign on multi-lane sharded fleets, so tier-1 `ctest`
// exercises cordon/drain/uncordon and the audit logs under ThreadSanitizer.
// It also re-checks, while instrumented, that lane count changes nothing:
// the fault audit log and the health transition log are byte-identical on
// one lane and on a real thread pool. No gtest here: TSan makes the process
// exit nonzero when it reports a race, logic failures return 1.

#include <cstdio>
#include <cstdlib>

#include "harness/sharded_fleet.h"

namespace {

#define CHECK_TRUE(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FAILED: %s at %s:%d\n", #cond, __FILE__,  \
                   __LINE__);                                         \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

void GreyFaultCampaignSmoke() {
  using namespace dlrover;
  FleetScenario scenario;
  scenario.seed = 53;
  scenario.workload.num_jobs = 8;
  scenario.workload.arrival_span = Hours(1);
  scenario.workload.seed = 29;
  scenario.cluster.num_nodes = 16;
  scenario.cluster.enable_node_health = true;
  scenario.horizon = Hours(4);
  scenario.enable_background = false;
  scenario.failures.daily_node_flaky_rate = 3.0;
  scenario.failures.daily_node_degraded_rate = 3.0;
  scenario.failures.daily_node_leak_rate = 3.0;
  scenario.failures.daily_node_crashloop_rate = 3.0;

  ShardedFleetOptions options;
  options.cells = 2;
  options.shards = 1;
  const ShardedFleetResult one_lane = RunFleetSharded(scenario, options);
  CHECK_TRUE(one_lane.fleet.node_faults_injected > 0);
  CHECK_TRUE(!one_lane.fleet.fault_log.empty());
  CHECK_TRUE(!one_lane.fleet.health_log.empty());

  options.shards = 2;
  const ShardedFleetResult two_lanes = RunFleetSharded(scenario, options);
  CHECK_TRUE(two_lanes.fleet.fault_log.size() ==
             one_lane.fleet.fault_log.size());
  for (size_t i = 0; i < one_lane.fleet.fault_log.size(); ++i) {
    CHECK_TRUE(two_lanes.fleet.fault_log[i] == one_lane.fleet.fault_log[i]);
  }
  CHECK_TRUE(two_lanes.fleet.health_log.size() ==
             one_lane.fleet.health_log.size());
  for (size_t i = 0; i < one_lane.fleet.health_log.size(); ++i) {
    CHECK_TRUE(two_lanes.fleet.health_log[i] == one_lane.fleet.health_log[i]);
  }
  CHECK_TRUE(two_lanes.fleet.nodes_cordoned == one_lane.fleet.nodes_cordoned);
  CHECK_TRUE(two_lanes.fleet.nodes_uncordoned ==
             one_lane.fleet.nodes_uncordoned);
  CHECK_TRUE(two_lanes.fleet.jobs.size() == one_lane.fleet.jobs.size());
  for (size_t i = 0; i < one_lane.fleet.jobs.size(); ++i) {
    CHECK_TRUE(two_lanes.fleet.jobs[i].batches_done ==
               one_lane.fleet.jobs[i].batches_done);
  }
}

}  // namespace

int main() {
  GreyFaultCampaignSmoke();
  std::printf("node_health_tsan_smoke OK\n");
  return 0;
}
