#include "brain/nsga2.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dlrover {
namespace {

TEST(Nsga2Test, DominanceLogic) {
  EXPECT_TRUE(Nsga2::Dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(Nsga2::Dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(Nsga2::Dominates({1, 3}, {2, 2}));
  EXPECT_FALSE(Nsga2::Dominates({2, 2}, {2, 2}));  // equal: no domination
}

TEST(Nsga2Test, NonDominatedSortKnownFronts) {
  const std::vector<std::vector<double>> objs = {
      {1, 5},  // front 0
      {5, 1},  // front 0
      {3, 3},  // front 0
      {4, 4},  // front 1 (dominated by {3,3})
      {6, 6},  // front 2 (dominated by {4,4})
  };
  const auto fronts = Nsga2::NonDominatedSort(objs);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(fronts[0].size(), 3u);
  EXPECT_EQ(fronts[1].size(), 1u);
  EXPECT_EQ(fronts[1][0], 3u);
  EXPECT_EQ(fronts[2][0], 4u);
}

TEST(Nsga2Test, CrowdingBoundariesAreInfinite) {
  const std::vector<std::vector<double>> objs = {
      {1, 5}, {2, 4}, {3, 3}, {4, 2}, {5, 1}};
  const std::vector<size_t> front = {0, 1, 2, 3, 4};
  const auto crowding = Nsga2::CrowdingDistances(objs, front);
  EXPECT_TRUE(std::isinf(crowding[0]));
  EXPECT_TRUE(std::isinf(crowding[4]));
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_GT(crowding[i], 0.0);
    EXPECT_FALSE(std::isinf(crowding[i]));
  }
}

// ZDT1: the classic two-objective benchmark with a known Pareto front
// f2 = 1 - sqrt(f1) at g(x)=1 (all tail variables zero).
std::vector<double> Zdt1(const std::vector<double>& x) {
  const double f1 = x[0];
  double g = 0.0;
  for (size_t i = 1; i < x.size(); ++i) g += x[i];
  g = 1.0 + 9.0 * g / static_cast<double>(x.size() - 1);
  const double f2 = g * (1.0 - std::sqrt(f1 / g));
  return {f1, f2};
}

TEST(Nsga2Test, ConvergesToZdt1Front) {
  std::vector<DecisionBounds> bounds(8, {0.0, 1.0, false});
  Nsga2Options options;
  options.population = 64;
  options.generations = 120;
  options.seed = 3;
  Nsga2 nsga2(bounds, Zdt1, options);
  const auto front = nsga2.Run();
  ASSERT_GE(front.size(), 10u);
  // Every returned point should lie close to the analytic front.
  double worst_gap = 0.0;
  for (const auto& ind : front) {
    const double f1 = ind.objectives[0];
    const double f2 = ind.objectives[1];
    const double ideal = 1.0 - std::sqrt(f1);
    worst_gap = std::max(worst_gap, f2 - ideal);
  }
  EXPECT_LT(worst_gap, 0.15);
}

TEST(Nsga2Test, FrontIsMutuallyNonDominated) {
  std::vector<DecisionBounds> bounds(4, {0.0, 1.0, false});
  Nsga2Options options;
  options.population = 32;
  options.generations = 30;
  Nsga2 nsga2(bounds, Zdt1, options);
  const auto front = nsga2.Run();
  for (size_t i = 0; i < front.size(); ++i) {
    for (size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(
          Nsga2::Dominates(front[i].objectives, front[j].objectives));
    }
  }
}

TEST(Nsga2Test, IntegerVariablesStayIntegral) {
  std::vector<DecisionBounds> bounds = {{1.0, 40.0, true},
                                        {1.0, 8.0, true}};
  auto objective = [](const std::vector<double>& x) {
    return std::vector<double>{x[0] + x[1], 100.0 / (x[0] * x[1])};
  };
  Nsga2Options options;
  options.population = 24;
  options.generations = 15;
  Nsga2 nsga2(bounds, objective, options);
  for (const auto& ind : nsga2.Run()) {
    EXPECT_DOUBLE_EQ(ind.x[0], std::round(ind.x[0]));
    EXPECT_DOUBLE_EQ(ind.x[1], std::round(ind.x[1]));
    EXPECT_GE(ind.x[0], 1.0);
    EXPECT_LE(ind.x[0], 40.0);
  }
}

TEST(Nsga2Test, DeterministicForSeed) {
  std::vector<DecisionBounds> bounds(4, {0.0, 1.0, false});
  Nsga2Options options;
  options.population = 16;
  options.generations = 10;
  options.seed = 77;
  Nsga2 a(bounds, Zdt1, options);
  Nsga2 b(bounds, Zdt1, options);
  const auto fa = a.Run();
  const auto fb = b.Run();
  ASSERT_EQ(fa.size(), fb.size());
  for (size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].x, fb[i].x);
  }
}

TEST(Nsga2Test, FrozenDimensionStaysPut) {
  std::vector<DecisionBounds> bounds = {{5.0, 5.0, true},
                                        {0.0, 1.0, false}};
  auto objective = [](const std::vector<double>& x) {
    return std::vector<double>{x[1], 1.0 - x[1] + x[0] * 0.0};
  };
  Nsga2 nsga2(bounds, objective, Nsga2Options{});
  for (const auto& ind : nsga2.Run()) {
    EXPECT_DOUBLE_EQ(ind.x[0], 5.0);
  }
}

}  // namespace
}  // namespace dlrover
