#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace dlrover {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran]() { ran.fetch_add(1); });
    }
  }  // ~ThreadPool must run everything already submitted
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForCompletesWhenPoolIsSaturated) {
  // Occupy every pool thread with a long-running task; the calling thread
  // must still drive the loop to completion by claiming chunks itself.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> parked{0};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&]() {
      parked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (parked.load() < 2) std::this_thread::yield();
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1, 101, 10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  release.store(true);
  EXPECT_EQ(sum.load(), 5050u);
}

TEST(ThreadPoolTest, SubmitFromInsidePoolTaskWorks) {
  ThreadPool pool(2);
  auto outer = pool.Submit([&pool]() {
    auto inner = pool.Submit([]() { return 41; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 42);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> covered{0};
  pool.ParallelFor(0, 3, 0, [&](size_t begin, size_t end) {
    covered.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(covered.load(), 3);
}

}  // namespace
}  // namespace dlrover
