#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace dlrover {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.Now(), 3.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(SimulatorTest, FifoTieBreakAtEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(SimulatorTest, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.RunToCompletion();
  EXPECT_EQ(fired, 1);
  // The event already executed: cancelling its id must report false (the
  // pre-generation-tag implementation wrongly returned true and leaked a
  // tombstone for every such call).
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelNeverScheduledReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(0));
  EXPECT_FALSE(sim.Cancel(12345));
  EXPECT_FALSE(sim.Cancel(~EventId{0}));
  EXPECT_EQ(sim.pending_events(), 0u);
  // And none of those bogus cancels may disturb a real event.
  bool fired = false;
  sim.ScheduleAt(1.0, [&] { fired = true; });
  sim.RunToCompletion();
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StaleIdCannotCancelRecycledSlot) {
  Simulator sim;
  bool first = false;
  bool second = false;
  const EventId a = sim.ScheduleAt(1.0, [&] { first = true; });
  EXPECT_TRUE(sim.Cancel(a));
  // The slot is recycled for a new event; the stale id must not touch it.
  const EventId b = sim.ScheduleAt(2.0, [&] { second = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.Cancel(a));
  sim.RunToCompletion();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(SimulatorTest, CancelDoesNotLeakPendingState) {
  Simulator sim;
  // Repeated schedule/cancel cycles must not accumulate tombstones or
  // grow the pending count; fired events release their slots too.
  for (int round = 0; round < 1000; ++round) {
    const EventId id = sim.ScheduleAt(1.0, [] {});
    EXPECT_TRUE(sim.Cancel(id));
    EXPECT_FALSE(sim.Cancel(id));  // second cancel is a no-op
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(SimulatorTest, CallbackMayCancelItsOwnFiringId) {
  Simulator sim;
  EventId self = 0;
  bool cancel_result = true;
  self = sim.ScheduleAt(1.0, [&] {
    // By the time the callback runs its id is stale; self-cancel is a safe
    // no-op (it must not disturb the recycled slot).
    cancel_result = sim.Cancel(self);
    sim.ScheduleAt(2.0, [] {});
  });
  sim.RunToCompletion();
  EXPECT_FALSE(cancel_result);
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(SimulatorTest, SchedulingInPastClampsToNow) {
  Simulator sim;
  sim.ScheduleAt(10.0, [] {});
  sim.RunToCompletion();
  double fired_at = -1.0;
  sim.ScheduleAt(5.0, [&] { fired_at = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(SimulatorTest, RunUntilIncludesDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(5.0, [&] { ++fired; });
  sim.ScheduleAt(10.0, [&] { ++fired; });
  sim.ScheduleAt(10.0001, [&] { ++fired; });
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 2);  // the event exactly at the deadline runs
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
  sim.RunUntil(20.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.Now(), 20.0);  // advances even when queue drains
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.ScheduleAfter(1.0, recurse);
  };
  sim.ScheduleAfter(1.0, recurse);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(PeriodicTaskTest, TicksAtInterval) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 10.0, [&] { ++ticks; });
  task.Start();
  sim.RunUntil(55.0);
  EXPECT_EQ(ticks, 5);  // at t=10,20,30,40,50
}

TEST(PeriodicTaskTest, StopHalts) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 10.0, [&] { ++ticks; });
  task.Start();
  sim.ScheduleAt(25.0, [&] { task.Stop(); });
  sim.RunUntil(100.0);
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, CallbackMayStopItself) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 5.0, [&] {
    if (++ticks == 3) sim.ScheduleAfter(0.0, [&] { task.Stop(); });
  });
  task.Start();
  sim.RunUntil(100.0);
  EXPECT_EQ(ticks, 3);
}

// Deadline-edge contract: a tick landing exactly on a RunUntil deadline
// runs inside that call and re-arms strictly past the deadline, so chaining
// windows whose boundaries coincide with tick times neither drops nor
// double-fires a tick.
TEST(PeriodicTaskTest, TickAtWindowBoundaryFiresExactlyOncePerWindow) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 10.0, [&] { ++ticks; });
  task.Start();
  sim.RunUntil(10.0);
  EXPECT_EQ(ticks, 1);  // the tick at the deadline belongs to this window
  sim.RunUntil(20.0);
  EXPECT_EQ(ticks, 2);  // not re-fired from a stale clock
  sim.RunUntil(30.0);
  EXPECT_EQ(ticks, 3);
}

// Chained RunUntil windows are byte-identical to one big RunUntil: the tick
// trace (count and timestamps) must not depend on where the window
// boundaries fall, aligned with tick times or not.
TEST(PeriodicTaskTest, ChainedWindowsMatchSingleRunTickTrace) {
  auto trace = [](const std::vector<SimTime>& deadlines) {
    Simulator sim;
    std::vector<SimTime> ticks;
    PeriodicTask task(&sim, 7.0, [&] { ticks.push_back(sim.Now()); });
    task.Start();
    for (SimTime deadline : deadlines) sim.RunUntil(deadline);
    return ticks;
  };
  const std::vector<SimTime> single = trace({100.0});
  EXPECT_EQ(single.size(), 14u);  // t = 7, 14, ..., 98
  EXPECT_EQ(trace({7.0, 14.0, 21.0, 100.0}), single);   // aligned boundaries
  EXPECT_EQ(trace({3.0, 50.0, 98.0, 100.0}), single);   // arbitrary ones
  EXPECT_EQ(trace({98.0, 98.0, 100.0}), single);        // repeated deadline
}

TEST(PeriodicTaskTest, SetIntervalReArmsPendingTick) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTask task(&sim, 100.0, [&] { ticks.push_back(sim.Now()); });
  task.Start();  // armed for t=100
  sim.RunUntil(50.0);
  task.set_interval(60.0);  // re-armed at armed_from (0) + 60
  sim.RunUntil(65.0);
  ASSERT_EQ(ticks.size(), 1u);
  EXPECT_DOUBLE_EQ(ticks[0], 60.0);
  task.set_interval(100.0);  // re-armed at 60 + 100
  sim.RunUntil(150.0);
  EXPECT_EQ(ticks.size(), 1u);  // the old 60s cadence must not fire at 120
  // Shrinking below the already-elapsed part of the cycle clamps to now:
  // the overdue tick fires immediately, then the new cadence holds.
  task.set_interval(10.0);  // 60 + 10 is in the past -> due now (150)
  sim.RunUntil(169.0);
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[1], 150.0);
  EXPECT_DOUBLE_EQ(ticks[2], 160.0);
}

TEST(PeriodicTaskTest, SetIntervalWhileStoppedOnlyChangesCadence) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTask task(&sim, 10.0, [&] { ticks.push_back(sim.Now()); });
  task.set_interval(25.0);  // not running: nothing to re-arm
  task.Start();
  sim.RunUntil(60.0);
  ASSERT_EQ(ticks.size(), 2u);
  EXPECT_DOUBLE_EQ(ticks[0], 25.0);
  EXPECT_DOUBLE_EQ(ticks[1], 50.0);
}

TEST(PeriodicTaskTest, DoubleStartIsNoOp) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 10.0, [&] { ++ticks; });
  task.Start();
  task.Start();
  sim.RunUntil(35.0);
  EXPECT_EQ(ticks, 3);  // not doubled
}

// Captures larger than InlineCallback's inline buffer spill to the heap
// fallback; the callback must still run, move, and destroy correctly.
TEST(InlineCallbackTest, LargeCaptureUsesHeapFallback) {
  Simulator sim;
  std::array<double, 32> payload{};  // 256 bytes, well over the inline limit
  payload[0] = 1.5;
  payload[31] = 2.5;
  static_assert(sizeof(payload) > InlineCallback::kInlineBytes);
  double sum = 0.0;
  sim.ScheduleAt(1.0, [payload, &sum] { sum = payload[0] + payload[31]; });
  sim.RunUntil(2.0);
  EXPECT_DOUBLE_EQ(sum, 4.0);
}

// Move-only captures (the common case: unique_ptr-owned state handed to the
// event) must compile and execute through the inline storage.
TEST(InlineCallbackTest, MoveOnlyCaptureRuns) {
  Simulator sim;
  auto owned = std::make_unique<int>(7);
  int seen = 0;
  sim.ScheduleAt(1.0, [p = std::move(owned), &seen] { seen = *p; });
  sim.RunUntil(2.0);
  EXPECT_EQ(seen, 7);
}

// Cancelling must destroy the stored callable (heap fallback included)
// without running it — destruction is observable via shared_ptr use count.
TEST(InlineCallbackTest, CancelDestroysWithoutInvoking) {
  Simulator sim;
  auto tracker = std::make_shared<int>(0);
  std::array<char, 100> bulk{};  // force the heap fallback path
  int runs = 0;
  const EventId id = sim.ScheduleAt(1.0, [tracker, bulk, &runs] {
    (void)bulk;
    ++runs;
  });
  EXPECT_EQ(tracker.use_count(), 2);
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_EQ(tracker.use_count(), 1);  // capture destroyed on cancel
  sim.RunUntil(2.0);
  EXPECT_EQ(runs, 0);
}

}  // namespace
}  // namespace dlrover
