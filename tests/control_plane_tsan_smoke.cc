// Control-plane smoke test compiled with -fsanitize=thread regardless of
// the global build flags (see tests/CMakeLists.txt): it recompiles the
// fleet stack — including the ControlChannel message layer, the partition/
// master-crash injector arm and the plan-fencing paths — into an
// instrumented binary and runs a partition-chaos campaign on multi-lane
// sharded fleets, so tier-1 `ctest` exercises drops, duplicates, reorder,
// partitions and master failover under ThreadSanitizer. It also re-checks,
// while instrumented, that lane count changes nothing: the control event
// log and the channel counters are byte-identical on one lane and on a
// real thread pool. No gtest here: TSan makes the process exit nonzero
// when it reports a race, logic failures return 1.

#include <cstdio>
#include <cstdlib>

#include "harness/sharded_fleet.h"

namespace {

#define CHECK_TRUE(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FAILED: %s at %s:%d\n", #cond, __FILE__,  \
                   __LINE__);                                         \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

void ControlChaosCampaignSmoke() {
  using namespace dlrover;
  FleetScenario scenario;
  scenario.seed = 53;
  scenario.dlrover_fraction = 1.0;
  scenario.workload.num_jobs = 8;
  scenario.workload.arrival_span = Hours(1);
  scenario.workload.seed = 29;
  scenario.cluster.num_nodes = 16;
  scenario.horizon = Hours(4);
  scenario.enable_background = false;
  scenario.control.enabled = true;
  scenario.control.drop_prob = 0.02;
  scenario.control.duplicate_prob = 0.05;
  scenario.control.reorder_prob = 0.05;
  scenario.failures.daily_node_partition_rate = 4.0;
  scenario.failures.daily_cell_partition_rate = 4.0;
  scenario.failures.daily_master_crash_rate = 1.0;

  ShardedFleetOptions options;
  options.cells = 2;
  options.shards = 1;
  const ShardedFleetResult one_lane = RunFleetSharded(scenario, options);
  CHECK_TRUE(one_lane.fleet.control_stats.messages_delivered > 0);
  CHECK_TRUE(one_lane.fleet.control_faults_injected > 0);
  CHECK_TRUE(!one_lane.fleet.control_log.empty());
  // Protections on: no stale plan ever applies, failover is balanced.
  CHECK_TRUE(one_lane.fleet.control_stats.stale_plan_applies == 0);
  CHECK_TRUE(one_lane.fleet.stale_plan_applies == 0);
  CHECK_TRUE(one_lane.fleet.control_stats.master_crashes ==
             one_lane.fleet.control_stats.master_restarts);
  for (const FleetJobOutcome& job : one_lane.fleet.jobs) {
    CHECK_TRUE(job.batches_done <= job.total_steps);
  }

  options.shards = 2;
  const ShardedFleetResult two_lanes = RunFleetSharded(scenario, options);
  CHECK_TRUE(two_lanes.fleet.control_stats == one_lane.fleet.control_stats);
  CHECK_TRUE(two_lanes.fleet.control_log.size() ==
             one_lane.fleet.control_log.size());
  for (size_t i = 0; i < one_lane.fleet.control_log.size(); ++i) {
    CHECK_TRUE(two_lanes.fleet.control_log[i] ==
               one_lane.fleet.control_log[i]);
  }
  CHECK_TRUE(two_lanes.fleet.control_faults_injected ==
             one_lane.fleet.control_faults_injected);
  CHECK_TRUE(two_lanes.fleet.plans_fenced == one_lane.fleet.plans_fenced);
  CHECK_TRUE(two_lanes.fleet.shard_reports_rejected ==
             one_lane.fleet.shard_reports_rejected);
  CHECK_TRUE(two_lanes.fleet.shard_reports_expired ==
             one_lane.fleet.shard_reports_expired);
  CHECK_TRUE(two_lanes.fleet.jobs.size() == one_lane.fleet.jobs.size());
  for (size_t i = 0; i < one_lane.fleet.jobs.size(); ++i) {
    CHECK_TRUE(two_lanes.fleet.jobs[i].batches_done ==
               one_lane.fleet.jobs[i].batches_done);
  }
}

}  // namespace

int main() {
  ControlChaosCampaignSmoke();
  std::printf("control_plane_tsan_smoke OK\n");
  return 0;
}
