// Tests for the parallel scenario-sweep engine: submission-ordered results,
// exception propagation, and — the load-bearing property — byte-identical
// results at every thread count. Each scenario builds its own Simulator,
// Cluster, and Rng chain from its seed, so a sweep at N threads must
// reproduce the 1-thread (and plain sequential) results exactly.

#include "harness/sweep.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <string>
#include <thread>
#include <vector>

#include "brain/nsga2.h"
#include "gtest/gtest.h"
#include "harness/reporting.h"

namespace dlrover {
namespace {

// Exact textual fingerprint of a result: every float printed as %a (hex,
// lossless), so two fingerprints match iff the results are bit-identical.
std::string Fingerprint(const SingleJobResult& r) {
  std::string out = StrFormat(
      "state=%d jct=%a recovery=%a events=%" PRIu64
      " w=%d ps=%d wcpu=%a pscpu=%a wmem=%a psmem=%a",
      static_cast<int>(r.final_state), r.jct, r.recovery_time,
      r.executed_events, r.final_config.num_workers, r.final_config.num_ps,
      r.final_config.worker_cpu, r.final_config.ps_cpu,
      r.final_config.worker_memory, r.final_config.ps_memory);
  out += StrFormat(
      " ckpt=%a wait=%a repart=%a restarts=%d migr=%d scale=%d strag=%d",
      r.stats.downtime_checkpoint, r.stats.downtime_waiting_pods,
      r.stats.downtime_repartition, r.stats.full_restarts,
      r.stats.migrations, r.stats.scale_operations,
      r.stats.stragglers_mitigated);
  out += StrFormat(" hist=%zu", r.history.size());
  for (const ThroughputSample& s : r.history) {
    out += StrFormat(" (%a,%a,%d,%" PRIu64 ")", s.time, s.samples_per_sec,
                     s.active_workers, s.batches_done);
  }
  return out;
}

std::string Fingerprint(const FleetResult& r) {
  std::string out = StrFormat(
      "jobs=%zu preempted=%" PRIu64 " crashes=%" PRIu64 " strag=%" PRIu64
      " events=%" PRIu64,
      r.jobs.size(), r.pods_preempted, r.crashes_injected,
      r.stragglers_injected, r.executed_events);
  for (const FleetJobOutcome& j : r.jobs) {
    out += StrFormat(" [%s done=%d jct=%a pend=%a wcpu=%a pscpu=%a %s]",
                     j.name.c_str(), j.completed ? 1 : 0, j.jct,
                     j.pending_time, j.avg_worker_cpu_util,
                     j.avg_ps_cpu_util, j.fail_reason.c_str());
  }
  return out;
}

std::vector<SingleJobScenario> SmallSingleJobGrid() {
  std::vector<SingleJobScenario> scenarios;
  for (ModelKind model : {ModelKind::kWideDeep, ModelKind::kXDeepFm}) {
    for (SchedulerKind scheduler :
         {SchedulerKind::kDlrover, SchedulerKind::kEs,
          SchedulerKind::kManualTuned}) {
      for (uint64_t seed : {3ull, 21ull}) {
        SingleJobScenario scenario;
        scenario.model = model;
        scenario.scheduler = scheduler;
        scenario.seed = seed;
        scenario.total_steps = 60000;  // small but long enough to scale
        scenarios.push_back(scenario);
      }
    }
  }
  return scenarios;
}

std::vector<FleetScenario> SmallFleetGrid() {
  std::vector<FleetScenario> scenarios;
  for (uint64_t seed : {31ull, 77ull}) {
    FleetScenario scenario;
    scenario.workload.num_jobs = 8;
    scenario.workload.arrival_span = Hours(2);
    scenario.horizon = Hours(8);
    scenario.seed = seed;
    scenario.dlrover_fraction = seed == 31ull ? 1.0 : 0.5;
    scenarios.push_back(scenario);
  }
  return scenarios;
}

std::vector<std::string> Fingerprints(
    const std::vector<SingleJobResult>& results) {
  std::vector<std::string> prints;
  prints.reserve(results.size());
  for (const SingleJobResult& r : results) prints.push_back(Fingerprint(r));
  return prints;
}

TEST(SweepEngineTest, MapReturnsSubmissionOrderedResults) {
  SweepOptions options;
  options.num_threads = 4;
  SweepEngine engine(options);
  std::vector<int> items;
  for (int i = 0; i < 64; ++i) items.push_back(i);
  // Early items sleep longest, so completion order inverts submission
  // order; the result vector must still match submission order.
  const std::vector<int> results = engine.Map(items, [](int item) {
    std::this_thread::sleep_for(std::chrono::microseconds(640 - item * 10));
    return item * item;
  });
  ASSERT_EQ(results.size(), items.size());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

TEST(SweepEngineTest, MapDrainsAllTasksThenRethrows) {
  SweepOptions options;
  options.num_threads = 2;
  SweepEngine engine(options);
  std::vector<int> items;
  for (int i = 0; i < 32; ++i) items.push_back(i);
  std::atomic<int> ran{0};
  EXPECT_THROW(engine.Map(items,
                          [&ran](int item) {
                            ran.fetch_add(1);
                            if (item == 5) throw std::runtime_error("boom");
                            return item;
                          }),
               std::runtime_error);
  // Every task ran to completion before the exception escaped; none was
  // left to write into a dead stack frame.
  EXPECT_EQ(ran.load(), 32);
}

TEST(SweepEngineTest, SingleJobSweepMatchesSequentialRun) {
  const std::vector<SingleJobScenario> scenarios = SmallSingleJobGrid();
  SweepOptions options;
  options.num_threads = 4;
  const std::vector<SingleJobResult> swept =
      RunSingleJobSweep(scenarios, options);
  ASSERT_EQ(swept.size(), scenarios.size());
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(Fingerprint(swept[i]), Fingerprint(RunSingleJob(scenarios[i])))
        << "scenario " << i;
  }
}

TEST(SweepEngineTest, SingleJobSweepDeterministicAcrossThreadCounts) {
  const std::vector<SingleJobScenario> scenarios = SmallSingleJobGrid();
  std::vector<size_t> counts = {1, 2};
  const size_t hardware = std::thread::hardware_concurrency();
  if (hardware > 2) counts.push_back(hardware);
  std::vector<std::string> reference;
  for (size_t threads : counts) {
    SweepOptions options;
    options.num_threads = threads;
    const std::vector<std::string> prints =
        Fingerprints(RunSingleJobSweep(scenarios, options));
    if (reference.empty()) {
      reference = prints;
      continue;
    }
    ASSERT_EQ(prints.size(), reference.size());
    for (size_t i = 0; i < prints.size(); ++i) {
      EXPECT_EQ(prints[i], reference[i])
          << "scenario " << i << " diverged at " << threads << " threads";
    }
  }
}

TEST(SweepEngineTest, FleetSweepDeterministicAcrossThreadCounts) {
  const std::vector<FleetScenario> scenarios = SmallFleetGrid();
  // Sequential reference first, then sweeps at 2 and hardware threads.
  std::vector<std::string> reference;
  reference.reserve(scenarios.size());
  for (const FleetScenario& scenario : scenarios) {
    reference.push_back(Fingerprint(RunFleet(scenario)));
  }
  std::vector<size_t> counts = {1, 2};
  const size_t hardware = std::thread::hardware_concurrency();
  if (hardware > 2) counts.push_back(hardware);
  for (size_t threads : counts) {
    SweepOptions options;
    options.num_threads = threads;
    const std::vector<FleetResult> swept = RunFleetSweep(scenarios, options);
    ASSERT_EQ(swept.size(), reference.size());
    for (size_t i = 0; i < swept.size(); ++i) {
      EXPECT_EQ(Fingerprint(swept[i]), reference[i])
          << "fleet scenario " << i << " diverged at " << threads
          << " threads";
    }
  }
}

TEST(SweepEngineTest, ExternalPoolIsUsedAndNotOwned) {
  ThreadPool pool(3);
  SweepOptions options;
  options.pool = &pool;
  SweepEngine engine(options);
  EXPECT_EQ(engine.num_threads(), 3u);
  std::vector<int> items = {1, 2, 3, 4, 5};
  const std::vector<int> doubled =
      engine.Map(items, [](int item) { return item * 2; });
  EXPECT_EQ(doubled, (std::vector<int>{2, 4, 6, 8, 10}));
  // `pool` must still be usable after the engine goes away.
}

// The sweep hands NSGA-II a pool for population evaluation; that fan-out
// must not change the optimizer's output. All randomness lives in the
// sequential variation phase, so pooled and sequential evaluation walk the
// same RNG stream.
TEST(SweepEngineTest, Nsga2PoolEvaluationMatchesSequential) {
  const std::vector<DecisionBounds> bounds = {
      {1.0, 32.0, true}, {0.5, 16.0, false}};
  const auto objective = [](const std::vector<double>& x) {
    // A simple two-objective tradeoff: cost vs inverse throughput.
    const double cost = x[0] * x[1];
    const double inv_gain = 1.0 / (1.0 + x[0] * 0.7 + x[1] * 0.3);
    return std::vector<double>{cost, inv_gain};
  };
  Nsga2Options options;
  options.population = 24;
  options.generations = 12;
  options.seed = 11;

  Nsga2 sequential(bounds, objective, options);
  const std::vector<Nsga2Individual> a = sequential.Run();

  options.pool = &SharedThreadPool();
  Nsga2 pooled(bounds, objective, options);
  const std::vector<Nsga2Individual> b = pooled.Run();

  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x) << "individual " << i;
    EXPECT_EQ(a[i].objectives, b[i].objectives) << "individual " << i;
  }
}

}  // namespace
}  // namespace dlrover
