#include "dlrm/emb_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace dlrover {
namespace {

EmbStoreOptions SmallStore() {
  EmbStoreOptions options;
  options.num_features = 26;
  options.emb_dim = 8;
  options.hash_buckets = 4096;
  options.init_scale = 0.05;
  options.seed = 7;
  options.stripes = 16;
  return options;
}

TEST(EmbStoreTest, InitIsDeterministicAndOrderIndependent) {
  EmbStore a(SmallStore());
  EmbStore b(SmallStore());
  // Touch in different orders; values must match key by key.
  for (int f = 0; f < 26; ++f) a.GetRow(f, static_cast<uint64_t>(f) * 13 + 1);
  for (int f = 25; f >= 0; --f) {
    const uint64_t bucket = static_cast<uint64_t>(f) * 13 + 1;
    EXPECT_EQ(a.GetRow(f, bucket), b.GetRow(f, bucket));
  }
  // Distinct keys get distinct rows (hash init, not a shared template).
  EXPECT_NE(a.GetRow(0, 1), a.GetRow(0, 2));
  EXPECT_NE(a.GetRow(0, 1), a.GetRow(1, 1));
}

TEST(EmbStoreTest, StripeCountRoundsUpToPowerOfTwo) {
  EmbStoreOptions options = SmallStore();
  options.stripes = 9;
  EmbStore store(options);
  EXPECT_EQ(store.stripe_count(), 16u);
  options.stripes = 0;
  EmbStore one(options);
  EXPECT_EQ(one.stripe_count(), 1u);
}

TEST(EmbStoreTest, GradientsAccumulateIntoRows) {
  EmbStore store(SmallStore());
  const std::vector<double> before = store.GetRow(3, 42);
  std::vector<double> grad(8, 2.0);
  store.ApplyRowGradient(3, 42, grad, 0.5);
  const std::vector<double> after = store.GetRow(3, 42);
  for (size_t r = 0; r < after.size(); ++r) {
    EXPECT_DOUBLE_EQ(after[r], before[r] - 1.0);
  }
  EXPECT_DOUBLE_EQ(store.GetWide(3, 42), 0.0);
  store.ApplyWideGradient(3, 42, 4.0, 0.25);
  EXPECT_DOUBLE_EQ(store.GetWide(3, 42), -1.0);
}

TEST(EmbStoreTest, MaterializedRowsCountsEmbeddingRowsOnly) {
  EmbStore store(SmallStore());
  EXPECT_EQ(store.MaterializedRows(), 0u);
  store.GetRow(0, 1);
  store.GetRow(0, 1);  // repeat: no growth
  store.GetRow(1, 1);
  store.GetWide(2, 9);  // wide weights don't count
  EXPECT_EQ(store.MaterializedRows(), 2u);
}

// Concurrency stress: 8 threads hammer an overlapping key set with reads
// and SGD pushes. Every gradient push must land exactly once: the final
// value of each row equals init - lr * (number of pushes it received).
TEST(EmbStoreTest, ConcurrentPushesAreAllApplied) {
  EmbStoreOptions options = SmallStore();
  options.stripes = 8;  // force heavy stripe sharing
  EmbStore store(options);
  constexpr int kThreads = 8;
  constexpr int kKeys = 64;
  constexpr int kPushesPerThread = 250;
  const std::vector<double> grad(8, 1.0);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &grad, t]() {
      for (int i = 0; i < kPushesPerThread; ++i) {
        const int f = (t * 7 + i) % 26;
        const uint64_t bucket = static_cast<uint64_t>((t + i) % kKeys);
        store.GetRow(f, bucket);  // concurrent reads interleave with writes
        store.ApplyRowGradient(f, bucket, grad, 1.0);
        store.ApplyWideGradient(f, bucket, 1.0, 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Recount expected pushes per key and verify the arithmetic landed.
  std::vector<std::vector<int>> pushes(26, std::vector<int>(kKeys, 0));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPushesPerThread; ++i) {
      ++pushes[static_cast<size_t>((t * 7 + i) % 26)][(t + i) % kKeys];
    }
  }
  EmbStore pristine(options);
  for (int f = 0; f < 26; ++f) {
    for (int k = 0; k < kKeys; ++k) {
      const int n = pushes[static_cast<size_t>(f)][static_cast<size_t>(k)];
      if (n == 0) continue;
      const std::vector<double> init =
          pristine.GetRow(f, static_cast<uint64_t>(k));
      const std::vector<double> got =
          store.GetRow(f, static_cast<uint64_t>(k));
      for (size_t r = 0; r < got.size(); ++r) {
        EXPECT_NEAR(got[r], init[r] - n, 1e-9)
            << "feature " << f << " bucket " << k;
      }
      EXPECT_NEAR(store.GetWide(f, static_cast<uint64_t>(k)),
                  -static_cast<double>(n), 1e-9);
    }
  }
}

TEST(EmbStoreBatchedTest, GatherMatchesPerKeyGets) {
  EmbStore store(SmallStore());
  const size_t dim = 8;
  // Keys across many features/buckets, including duplicates and keys that
  // collide on a stripe, in scrambled order.
  std::vector<uint64_t> keys;
  for (int f = 0; f < 26; ++f) {
    keys.push_back(store.PackKey(f, static_cast<uint64_t>(f * 31 + 5)));
    keys.push_back(store.PackKey(f, static_cast<uint64_t>(f * 7 + 1)));
  }
  keys.push_back(keys[3]);  // duplicate
  keys.push_back(keys[40]);

  std::vector<double> rows(keys.size() * dim);
  std::vector<double> wide(keys.size());
  EmbStore::BatchScratch scratch;
  store.GatherRows(keys.data(), keys.size(), rows.data(), wide.data(),
                   &scratch);

  for (size_t i = 0; i < keys.size(); ++i) {
    const int f = static_cast<int>(keys[i] / SmallStore().hash_buckets);
    const uint64_t bucket = keys[i] % SmallStore().hash_buckets;
    const std::vector<double> expect = store.GetRow(f, bucket);
    for (size_t r = 0; r < dim; ++r) {
      EXPECT_EQ(rows[i * dim + r], expect[r]) << "key " << i;
    }
    EXPECT_EQ(wide[i], store.GetWide(f, bucket));
  }
}

TEST(EmbStoreBatchedTest, ScatterApplyMatchesPerKeyApply) {
  EmbStore batched(SmallStore());
  EmbStore perkey(SmallStore());
  const size_t dim = 8;
  const double lr = 0.3;

  std::vector<uint64_t> keys;
  std::vector<double> row_grads;
  std::vector<double> wide_grads;
  for (int f = 0; f < 26; ++f) {
    for (int j = 0; j < 3; ++j) {
      keys.push_back(batched.PackKey(f, static_cast<uint64_t>(f * 17 + j)));
      for (size_t r = 0; r < dim; ++r) {
        row_grads.push_back(0.01 * static_cast<double>(f + j) +
                            0.001 * static_cast<double>(r));
      }
      wide_grads.push_back(0.1 * static_cast<double>(f - j));
    }
  }

  EmbStore::BatchScratch scratch;
  batched.ScatterApply(keys.data(), keys.size(), row_grads.data(),
                       wide_grads.data(), lr, &scratch);
  for (size_t i = 0; i < keys.size(); ++i) {
    const int f = static_cast<int>(keys[i] / SmallStore().hash_buckets);
    const uint64_t bucket = keys[i] % SmallStore().hash_buckets;
    const std::vector<double> grad(row_grads.begin() + i * dim,
                                   row_grads.begin() + (i + 1) * dim);
    perkey.ApplyRowGradient(f, bucket, grad, lr);
    perkey.ApplyWideGradient(f, bucket, wide_grads[i], lr);
  }

  // Bitwise identical: the batched axpy keeps the per-key statement order.
  for (size_t i = 0; i < keys.size(); ++i) {
    const int f = static_cast<int>(keys[i] / SmallStore().hash_buckets);
    const uint64_t bucket = keys[i] % SmallStore().hash_buckets;
    EXPECT_EQ(batched.GetRow(f, bucket), perkey.GetRow(f, bucket));
    EXPECT_EQ(batched.GetWide(f, bucket), perkey.GetWide(f, bucket));
  }
  EXPECT_EQ(batched.MaterializedRows(), perkey.MaterializedRows());
}

TEST(EmbStoreBatchedTest, ScatterWithoutWideLeavesWideUntouched) {
  EmbStore store(SmallStore());
  std::vector<uint64_t> keys = {store.PackKey(2, 9), store.PackKey(11, 40)};
  std::vector<double> grads(keys.size() * 8, 0.5);
  EmbStore::BatchScratch scratch;
  store.ScatterApply(keys.data(), keys.size(), grads.data(),
                     /*wide_grads=*/nullptr, 0.1, &scratch);
  EXPECT_EQ(store.GetWide(2, 9), 0.0);
  EXPECT_EQ(store.MaterializedRows(), 2u);
}

}  // namespace
}  // namespace dlrover
