// Sharded engine determinism and sharded-vs-sequential fleet parity.
//
// The contract under test: for a fixed cell count, RunFleetSharded produces
// byte-identical FleetResults at every execution width (lanes, pool or no
// pool), and with cells == 1 it reproduces the sequential RunFleet exactly.

#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "cluster/cluster.h"
#include "cluster/commit_log.h"
#include "harness/experiment.h"
#include "harness/sharded_fleet.h"
#include "runtime/thread_pool.h"
#include "sim/sharded_simulator.h"

namespace dlrover {
namespace {

// ---------------------------------------------------------------------------
// Engine-level determinism
// ---------------------------------------------------------------------------

/// A (time, tag) trace of cross-shard effects as observed by shard 0.
using Trace = std::vector<std::pair<SimTime, int>>;

/// Three shards ping effects at shard 0 from periodic events; the recorded
/// arrival order must be identical at any execution width.
Trace RunPingTrace(ThreadPool* pool, size_t parallelism) {
  ShardedSimOptions options;
  options.num_shards = 3;
  options.window = 10.0;
  options.pool = pool;
  options.parallelism = parallelism;
  ShardedSimulator engine(options);

  Trace trace;
  for (int s = 1; s < 3; ++s) {
    // Each source shard ticks every 7s/11s and sends a tagged effect due
    // one window out; tags encode (source, tick).
    const Duration interval = s == 1 ? 7.0 : 11.0;
    for (int k = 1; k <= 12; ++k) {
      const SimTime at = interval * k;
      if (at > 120.0) break;
      const int tag = s * 100 + k;
      engine.shard(s).ScheduleAt(at, [&engine, &trace, s, tag] {
        const SimTime now = engine.shard(s).Now();
        engine.Send(s, 0, now, [&trace, &engine, tag] {
          trace.emplace_back(engine.shard(0).Now(), tag);
        });
      });
    }
  }
  engine.RunUntil(120.0);
  return trace;
}

TEST(ShardedSimulatorTest, CanonicalOrderIndependentOfExecutionWidth) {
  const Trace sequential = RunPingTrace(nullptr, 1);
  ASSERT_FALSE(sequential.empty());
  const Trace two_lanes = RunPingTrace(&SharedThreadPool(), 2);
  const Trace hw_lanes = RunPingTrace(&SharedThreadPool(), 0);
  EXPECT_EQ(sequential, two_lanes);
  EXPECT_EQ(sequential, hw_lanes);
}

TEST(ShardedSimulatorTest, SendsClampToWindowEndNeverLandInThePast) {
  ShardedSimOptions options;
  options.num_shards = 2;
  options.window = 10.0;
  ShardedSimulator engine(options);

  std::vector<SimTime> fired;
  // Sent during the first window with a due time in that window's past:
  // conservative lookahead must move it to the window end (10.0), where the
  // destination shard has not yet advanced beyond.
  engine.shard(1).ScheduleAt(4.0, [&] {
    engine.Send(1, 0, 1.0, [&] { fired.push_back(engine.shard(0).Now()); });
  });
  engine.RunUntil(30.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0], 10.0);
}

TEST(ShardedSimulatorTest, CoordinatorSendsOrderAfterShardSendsAtSameDue) {
  ShardedSimOptions options;
  options.num_shards = 2;
  options.window = 10.0;
  ShardedSimulator engine(options);

  std::vector<int> order;
  bool armed = false;
  // Both effects reach shard 0's queue at the same barrier (t=10) with the
  // same due time (t=20): the shard-sourced send (recorded during the
  // window) commits before the coordinator's (recorded in the hook).
  engine.set_barrier_hook([&](SimTime barrier) {
    if (armed || barrier < 10.0) return;
    armed = true;
    engine.Send(ShardedSimulator::kCoordinator, 0, 20.0,
                [&order] { order.push_back(99); });
  });
  engine.shard(1).ScheduleAt(2.0, [&] {
    engine.Send(1, 0, 20.0, [&order] { order.push_back(1); });
  });
  engine.RunUntil(40.0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 99);
}

TEST(ShardedSimulatorTest, SetupSendsCommitOnZeroWidthWindow) {
  ShardedSimOptions options;
  options.num_shards = 2;
  options.window = 10.0;
  ShardedSimulator engine(options);
  int fired = 0;
  engine.Send(ShardedSimulator::kCoordinator, 1, 0.0, [&] { ++fired; });
  engine.RunUntil(0.0);  // zero-width window: commit, no time advance
  EXPECT_EQ(engine.Now(), 0.0);
  EXPECT_EQ(fired, 0);  // committed into shard 1's queue, not yet run
  EXPECT_EQ(engine.pending_events(), 1u);
  engine.RunUntil(1.0);
  EXPECT_EQ(fired, 1);
}

// ---------------------------------------------------------------------------
// Commit log / ledger
// ---------------------------------------------------------------------------

TEST(CommitLogTest, LedgerFoldReconstructsClusterTotals) {
  Simulator sim;
  ClusterOptions options;
  options.num_nodes = 4;
  options.node_capacity = {16.0, GiB(64)};
  Cluster cluster(&sim, options);
  ClusterCommitLog log;
  cluster.set_commit_log(&log);

  PodSpec spec;
  spec.name = "ledger-pod";
  spec.request = {4.0, GiB(8)};
  std::vector<PodId> pods;
  for (int i = 0; i < 5; ++i) {
    pods.push_back(cluster.CreatePod(spec, nullptr, nullptr));
  }
  sim.RunUntil(Minutes(5));
  cluster.ReportUsage(pods[0], {2.0, GiB(3)});
  cluster.KillPod(pods[1]);
  cluster.FailNode(0);
  sim.RunUntil(Minutes(10));
  cluster.RecoverNode(0);
  sim.RunUntil(Minutes(15));

  FleetLedger ledger;
  ledger.Fold({&log});
  EXPECT_TRUE(log.empty());  // fold consumes
  EXPECT_GT(ledger.entries_folded(), 0u);
  EXPECT_DOUBLE_EQ(ledger.totals().capacity.cpu, cluster.TotalCapacity().cpu);
  EXPECT_DOUBLE_EQ(ledger.totals().capacity.memory,
                   cluster.TotalCapacity().memory);
  EXPECT_DOUBLE_EQ(ledger.totals().allocated.cpu,
                   cluster.TotalAllocated().cpu);
  EXPECT_DOUBLE_EQ(ledger.totals().allocated.memory,
                   cluster.TotalAllocated().memory);
  EXPECT_DOUBLE_EQ(ledger.totals().usage.cpu, cluster.TotalUsage().cpu);
  EXPECT_DOUBLE_EQ(ledger.totals().usage.memory, cluster.TotalUsage().memory);
}

TEST(CommitLogTest, RecoverNodeRestoresCapacityAndPumpsPending) {
  Simulator sim;
  ClusterOptions options;
  options.num_nodes = 1;
  options.node_capacity = {8.0, GiB(32)};
  Cluster cluster(&sim, options);
  const double full = cluster.TotalCapacity().cpu;
  cluster.FailNode(0);
  EXPECT_DOUBLE_EQ(cluster.TotalCapacity().cpu, 0.0);

  PodSpec spec;
  spec.name = "waits-for-repair";
  spec.request = {4.0, GiB(8)};
  bool running = false;
  cluster.CreatePod(spec, [&](Pod&) { running = true; }, nullptr);
  sim.RunUntil(Minutes(2));
  EXPECT_FALSE(running);  // no healthy node to land on

  cluster.RecoverNode(0);
  EXPECT_DOUBLE_EQ(cluster.TotalCapacity().cpu, full);
  sim.RunUntil(Minutes(10));
  EXPECT_TRUE(running);  // pending pod placed after repair
}

// ---------------------------------------------------------------------------
// Fleet parity
// ---------------------------------------------------------------------------

/// EXPECT-equality on every field of two FleetResults, including full
/// per-job JobStats: "byte-identical" in the acceptance criteria's sense.
void ExpectFleetResultsIdentical(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.pods_preempted, b.pods_preempted);
  EXPECT_EQ(a.crashes_injected, b.crashes_injected);
  EXPECT_EQ(a.stragglers_injected, b.stragglers_injected);
  EXPECT_EQ(a.node_faults_injected, b.node_faults_injected);
  EXPECT_EQ(a.nodes_cordoned, b.nodes_cordoned);
  EXPECT_EQ(a.nodes_uncordoned, b.nodes_uncordoned);
  ASSERT_EQ(a.fault_log.size(), b.fault_log.size());
  for (size_t i = 0; i < a.fault_log.size(); ++i) {
    EXPECT_TRUE(a.fault_log[i] == b.fault_log[i]) << "fault_log[" << i << "]";
  }
  ASSERT_EQ(a.health_log.size(), b.health_log.size());
  for (size_t i = 0; i < a.health_log.size(); ++i) {
    EXPECT_TRUE(a.health_log[i] == b.health_log[i])
        << "health_log[" << i << "]";
  }
  EXPECT_TRUE(a.control_stats == b.control_stats);
  EXPECT_EQ(a.control_faults_injected, b.control_faults_injected);
  EXPECT_EQ(a.plans_fenced, b.plans_fenced);
  EXPECT_EQ(a.stale_plan_applies, b.stale_plan_applies);
  EXPECT_EQ(a.shard_reports_rejected, b.shard_reports_rejected);
  EXPECT_EQ(a.shard_reports_expired, b.shard_reports_expired);
  ASSERT_EQ(a.control_log.size(), b.control_log.size());
  for (size_t i = 0; i < a.control_log.size(); ++i) {
    EXPECT_TRUE(a.control_log[i] == b.control_log[i])
        << "control_log[" << i << "]";
  }
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i) + " (" + a.jobs[i].name + ")");
    const FleetJobOutcome& x = a.jobs[i];
    const FleetJobOutcome& y = b.jobs[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.model, y.model);
    EXPECT_EQ(x.used_dlrover, y.used_dlrover);
    EXPECT_EQ(x.hot_ps, y.hot_ps);
    EXPECT_EQ(x.misconfig, y.misconfig);
    EXPECT_EQ(x.completed, y.completed);
    EXPECT_EQ(x.fail_reason, y.fail_reason);
    EXPECT_EQ(x.jct, y.jct);
    EXPECT_EQ(x.pending_time, y.pending_time);
    EXPECT_EQ(x.requested_cpus, y.requested_cpus);
    EXPECT_EQ(x.total_steps, y.total_steps);
    EXPECT_EQ(x.max_workers_quota, y.max_workers_quota);
    EXPECT_EQ(x.avg_worker_cpu_util, y.avg_worker_cpu_util);
    EXPECT_EQ(x.avg_ps_cpu_util, y.avg_ps_cpu_util);
    EXPECT_EQ(x.avg_worker_mem_util, y.avg_worker_mem_util);
    EXPECT_EQ(x.avg_ps_mem_util, y.avg_ps_mem_util);
    EXPECT_EQ(x.batches_done, y.batches_done);
    EXPECT_EQ(x.stats.submit_time, y.stats.submit_time);
    EXPECT_EQ(x.stats.first_training_time, y.stats.first_training_time);
    EXPECT_EQ(x.stats.finish_time, y.stats.finish_time);
    EXPECT_EQ(x.stats.downtime_checkpoint, y.stats.downtime_checkpoint);
    EXPECT_EQ(x.stats.downtime_waiting_pods, y.stats.downtime_waiting_pods);
    EXPECT_EQ(x.stats.downtime_repartition, y.stats.downtime_repartition);
    EXPECT_EQ(x.stats.worker_failures, y.stats.worker_failures);
    EXPECT_EQ(x.stats.ps_failures, y.stats.ps_failures);
    EXPECT_EQ(x.stats.oom_events, y.stats.oom_events);
    EXPECT_EQ(x.stats.full_restarts, y.stats.full_restarts);
    EXPECT_EQ(x.stats.migrations, y.stats.migrations);
    EXPECT_EQ(x.stats.scale_operations, y.stats.scale_operations);
    EXPECT_EQ(x.stats.stragglers_mitigated, y.stats.stragglers_mitigated);
    EXPECT_EQ(x.stats.drain_migrations, y.stats.drain_migrations);
    EXPECT_EQ(x.stats.drain_fallbacks, y.stats.drain_fallbacks);
    EXPECT_EQ(x.stats.fail_reason, y.stats.fail_reason);
  }
}

/// Fig 3 shape scaled down: an all-manual fleet under churn.
FleetScenario Fig3ShapedScenario() {
  FleetScenario scenario;
  scenario.dlrover_fraction = 0.0;
  scenario.workload.num_jobs = 12;
  scenario.workload.arrival_span = Hours(4);
  scenario.cluster.num_nodes = 16;
  scenario.failures.daily_pod_failure_rate = 0.5;
  scenario.failures.daily_straggler_rate = 0.35;
  scenario.horizon = Hours(24);
  scenario.seed = 11;
  return scenario;
}

/// Scarcity shape: demand well above capacity, so pending queues, slow
/// startups, and preemption paths all exercise.
FleetScenario ScarcityShapedScenario() {
  FleetScenario scenario;
  scenario.dlrover_fraction = 0.5;
  scenario.workload.num_jobs = 10;
  scenario.workload.arrival_span = Hours(2);
  scenario.cluster.num_nodes = 6;
  scenario.failures.daily_pod_failure_rate = 0.5;
  scenario.horizon = Hours(24);
  scenario.seed = 37;
  return scenario;
}

TEST(ShardedFleetTest, OneCellReproducesSequentialRunFleet) {
  const FleetScenario scenario = Fig3ShapedScenario();
  const FleetResult oracle = RunFleet(scenario);

  for (int lanes : {1, 2, 0}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    ShardedFleetOptions options;
    options.cells = 1;
    options.shards = lanes;
    const ShardedFleetResult sharded = RunFleetSharded(scenario, options);
    ExpectFleetResultsIdentical(oracle, sharded.fleet);
    EXPECT_GT(sharded.windows, 0u);
  }
}

TEST(ShardedFleetTest, MultiCellParityAcrossLanesFig3Shape) {
  FleetScenario scenario = Fig3ShapedScenario();
  ShardedFleetOptions options;
  options.cells = 3;
  options.shards = 1;
  const ShardedFleetResult one_lane = RunFleetSharded(scenario, options);
  ASSERT_EQ(one_lane.fleet.jobs.size(), 12u);

  options.shards = 2;
  const ShardedFleetResult two_lanes = RunFleetSharded(scenario, options);
  ExpectFleetResultsIdentical(one_lane.fleet, two_lanes.fleet);
  EXPECT_EQ(one_lane.windows, two_lanes.windows);

  options.shards = 0;  // hardware concurrency
  const ShardedFleetResult hw_lanes = RunFleetSharded(scenario, options);
  ExpectFleetResultsIdentical(one_lane.fleet, hw_lanes.fleet);
}

TEST(ShardedFleetTest, MultiCellParityAcrossLanesScarcityShape) {
  FleetScenario scenario = ScarcityShapedScenario();
  ShardedFleetOptions options;
  options.cells = 2;
  options.shards = 1;
  const ShardedFleetResult one_lane = RunFleetSharded(scenario, options);

  options.shards = 0;
  const ShardedFleetResult hw_lanes = RunFleetSharded(scenario, options);
  ExpectFleetResultsIdentical(one_lane.fleet, hw_lanes.fleet);
}

/// Chaotic control plane turned all the way up: drops, duplicates, reorder,
/// node and cell partitions, master crashes. The acceptance bar is that
/// sharded runs stay byte-identical at every lane count with the channel on.
FleetScenario ControlChaosScenario() {
  FleetScenario scenario = Fig3ShapedScenario();
  scenario.dlrover_fraction = 1.0;  // control traffic needs dynamic sharding
  scenario.control.enabled = true;
  scenario.control.drop_prob = 0.02;
  scenario.control.duplicate_prob = 0.05;
  scenario.control.reorder_prob = 0.05;
  scenario.failures.daily_node_partition_rate = 1.5;
  scenario.failures.daily_cell_partition_rate = 2.0;
  scenario.failures.daily_master_crash_rate = 0.3;
  return scenario;
}

TEST(ShardedFleetTest, ControlChannelChaosParityAcrossLanes) {
  const FleetScenario scenario = ControlChaosScenario();
  ShardedFleetOptions options;
  options.cells = 2;
  options.shards = 1;
  const ShardedFleetResult one_lane = RunFleetSharded(scenario, options);
  // The chaos actually ran: control messages flowed and faults landed.
  EXPECT_GT(one_lane.fleet.control_stats.messages_delivered, 0u);
  EXPECT_GT(one_lane.fleet.control_faults_injected, 0u);
  ASSERT_FALSE(one_lane.fleet.control_log.empty());

  options.shards = 2;
  const ShardedFleetResult two_lanes = RunFleetSharded(scenario, options);
  ExpectFleetResultsIdentical(one_lane.fleet, two_lanes.fleet);

  options.shards = 0;  // hardware concurrency
  const ShardedFleetResult hw_lanes = RunFleetSharded(scenario, options);
  ExpectFleetResultsIdentical(one_lane.fleet, hw_lanes.fleet);
}

TEST(ShardedFleetTest, ControlChannelChaosRerunIdentity) {
  const FleetScenario scenario = ControlChaosScenario();
  ShardedFleetOptions options;
  options.cells = 2;
  options.shards = 0;
  const ShardedFleetResult first = RunFleetSharded(scenario, options);
  const ShardedFleetResult second = RunFleetSharded(scenario, options);
  ExpectFleetResultsIdentical(first.fleet, second.fleet);
}

TEST(ShardedFleetTest, CoupledStormArmDeterministicAcrossLanes) {
  FleetScenario scenario = Fig3ShapedScenario();
  ShardedFleetOptions options;
  options.cells = 3;
  options.scarcity_coupling = true;
  options.scarcity_threshold = 0.35;
  options.storm.node_strikes_per_hour = 1.5;
  options.storm.mttr = Minutes(30);

  options.shards = 1;
  const ShardedFleetResult one_lane = RunFleetSharded(scenario, options);
  EXPECT_GT(one_lane.storm_strikes, 0u);
  EXPECT_GT(one_lane.cross_shard_sends, 0u);
  EXPECT_GT(one_lane.ledger_entries, 0u);
  EXPECT_GT(one_lane.fleet_peak_allocated_cpu, 0.0);

  options.shards = 0;
  const ShardedFleetResult hw_lanes = RunFleetSharded(scenario, options);
  ExpectFleetResultsIdentical(one_lane.fleet, hw_lanes.fleet);
  EXPECT_EQ(one_lane.storm_strikes, hw_lanes.storm_strikes);
  EXPECT_EQ(one_lane.cross_shard_sends, hw_lanes.cross_shard_sends);
  EXPECT_EQ(one_lane.ledger_entries, hw_lanes.ledger_entries);
}

}  // namespace
}  // namespace dlrover
