// Sweep smoke test compiled with -fsanitize=thread regardless of the global
// build flags (see tests/CMakeLists.txt): it recompiles the whole scenario
// stack — simulator, cluster, training job, brain, baselines, harness —
// into an instrumented binary and runs a small multi-threaded sweep, so
// tier-1 `ctest` exercises the concurrent sweep path (shared ConfigDb
// cache, WellTunedConfig statics, pooled NSGA-II evaluation) under
// ThreadSanitizer. No gtest here: TSan makes the process exit nonzero when
// it reports a race, logic failures return 1.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/experiment.h"
#include "harness/sweep.h"

namespace {

#define CHECK_TRUE(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FAILED: %s at %s:%d\n", #cond, __FILE__,  \
                   __LINE__);                                         \
      std::exit(1);                                                   \
    }                                                                 \
  } while (0)

void SingleJobSweepSmoke() {
  using namespace dlrover;
  std::vector<SingleJobScenario> scenarios;
  for (SchedulerKind scheduler :
       {SchedulerKind::kDlrover, SchedulerKind::kEs,
        SchedulerKind::kManualTuned, SchedulerKind::kOptimus}) {
    for (uint64_t seed : {3ull, 7ull}) {
      SingleJobScenario scenario;
      scenario.scheduler = scheduler;
      scenario.model = ModelKind::kWideDeep;
      scenario.total_steps = 40000;
      scenario.seed = seed;
      scenarios.push_back(scenario);
    }
  }

  SweepOptions options;
  options.num_threads = 4;
  const std::vector<SingleJobResult> parallel =
      RunSingleJobSweep(scenarios, options);
  CHECK_TRUE(parallel.size() == scenarios.size());

  options.num_threads = 1;
  const std::vector<SingleJobResult> serial =
      RunSingleJobSweep(scenarios, options);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    CHECK_TRUE(parallel[i].final_state == serial[i].final_state);
    CHECK_TRUE(parallel[i].jct == serial[i].jct);
    CHECK_TRUE(parallel[i].executed_events == serial[i].executed_events);
    CHECK_TRUE(parallel[i].final_config == serial[i].final_config);
    CHECK_TRUE(parallel[i].executed_events > 0);
  }
}

void FleetSweepSmoke() {
  using namespace dlrover;
  std::vector<FleetScenario> scenarios;
  for (uint64_t seed : {5ull, 11ull}) {
    FleetScenario scenario;
    scenario.workload.num_jobs = 6;
    scenario.workload.arrival_span = Hours(2);
    scenario.horizon = Hours(6);
    scenario.seed = seed;
    scenarios.push_back(scenario);
  }
  SweepOptions options;
  options.num_threads = 2;
  const std::vector<FleetResult> results = RunFleetSweep(scenarios, options);
  CHECK_TRUE(results.size() == 2);
  for (const FleetResult& result : results) {
    CHECK_TRUE(result.jobs.size() == 6);
    CHECK_TRUE(result.executed_events > 0);
  }
}

}  // namespace

int main() {
  SingleJobSweepSmoke();
  FleetSweepSmoke();
  std::printf("sweep tsan smoke: ok\n");
  return 0;
}
