#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"

namespace dlrover {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status status = NotFoundError("missing shard");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing shard");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing shard");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = InvalidArgumentError("bad");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(3.0, 7.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.UniformInt(uint64_t{10})];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stat.mean(), 2.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.1);
}

TEST(RngTest, ZipfInBoundsAndSkewed) {
  Rng rng(11);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.Zipf(100, 1.2);
    ASSERT_LT(k, 100u);
    ++counts[k];
  }
  // Head must dominate the tail.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  EXPECT_NE(child.NextU64(), child2.NextU64());
}

TEST(RunningStatTest, MatchesClosedForm) {
  RunningStat stat;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  for (double x : xs) stat.Add(x);
  EXPECT_EQ(stat.count(), 6u);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.5);
  EXPECT_NEAR(stat.variance(), 3.5, 1e-12);
  EXPECT_EQ(stat.min(), 1.0);
  EXPECT_EQ(stat.max(), 6.0);
}

TEST(RunningStatTest, MergeEqualsCombined) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Normal();
    if (i % 2 == 0) {
      a.Add(x);
    } else {
      b.Add(x);
    }
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(DistributionTest, PercentilesInterpolate) {
  Distribution dist;
  for (int i = 1; i <= 100; ++i) dist.Add(i);
  EXPECT_DOUBLE_EQ(dist.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(dist.Percentile(100), 100.0);
  EXPECT_NEAR(dist.Median(), 50.5, 1e-9);
  EXPECT_NEAR(dist.Percentile(90), 90.1, 0.2);
}

TEST(DistributionTest, CdfMonotone) {
  Distribution dist;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) dist.Add(rng.Uniform(0, 10));
  double prev = -1.0;
  for (const auto& [x, f] : dist.CdfSeries(20)) {
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(dist.CdfAt(11.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.CdfAt(-1.0), 0.0);
}

TEST(MetricsTest, RmsleZeroForPerfectPrediction) {
  const std::vector<double> y = {1.0, 2.0, 10.0};
  EXPECT_DOUBLE_EQ(Rmsle(y, y), 0.0);
  EXPECT_DOUBLE_EQ(Rmse(y, y), 0.0);
  EXPECT_DOUBLE_EQ(RSquared(y, y), 1.0);
}

TEST(MetricsTest, RmsleKnownValue) {
  const std::vector<double> predicted = {std::exp(1.0) - 1.0};
  const std::vector<double> actual = {0.0};
  EXPECT_NEAR(Rmsle(predicted, actual), 1.0, 1e-12);
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(Minutes(2), 120.0);
  EXPECT_DOUBLE_EQ(Hours(1), 3600.0);
  EXPECT_DOUBLE_EQ(Days(1), 86400.0);
  EXPECT_DOUBLE_EQ(ToGiB(GiB(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToTiB(TiB(2)), 2.0);
  EXPECT_DOUBLE_EQ(GiB(1), 1024.0 * 1024.0 * 1024.0);
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Filtered logs must not crash and must be cheap no-ops.
  DLROVER_LOG_STREAM(Info) << "dropped " << 42;
  SetLogLevel(old);
}

}  // namespace
}  // namespace dlrover
