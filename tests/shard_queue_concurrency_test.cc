#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "elastic/shard_queue.h"

namespace dlrover {
namespace {

// The threaded-runtime contract: N real threads pulling via WaitNextShard,
// with random mid-shard failures, must complete every batch exactly once
// and terminate (no thread left blocked).
TEST(ShardQueueConcurrencyTest, ExactlyOnceUnderEightThreads) {
  constexpr uint64_t kTotal = 20000;
  constexpr int kThreads = 8;
  ShardQueueOptions options;
  options.total_batches = kTotal;
  options.default_shard_batches = 64;
  options.min_shard_batches = 8;
  ShardQueue queue(options);

  std::vector<std::atomic<uint32_t>> times_done(kTotal);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&queue, &times_done, t]() {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (;;) {
        auto shard = queue.WaitNextShard(rng.Bernoulli(0.3) ? 16 : 0);
        if (!shard.ok()) return;
        const uint64_t len = shard->batches();
        // Fail ~15% of shards partway through; the prefix we "pushed"
        // counts as done, the rest must be re-served to someone.
        const bool fail = rng.Bernoulli(0.15);
        const uint64_t processed =
            fail ? rng.UniformInt(len) : len;
        for (uint64_t b = 0; b < processed; ++b) {
          times_done[shard->start_batch + b].fetch_add(1);
        }
        const Status s = fail ? queue.ReportFailed(*shard, processed)
                              : queue.ReportCompleted(*shard);
        ASSERT_TRUE(s.ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(queue.AllDone());
  ASSERT_TRUE(queue.CheckInvariants().ok());
  for (uint64_t b = 0; b < kTotal; ++b) {
    EXPECT_EQ(times_done[b].load(), 1u) << "batch " << b;
  }
}

// Report-after-timeout double-dispatch audit: a worker is presumed dead and
// its shard re-queued (ReportFailed by the supervisor), the remainder is
// re-served to a new worker — then the "dead" worker comes back and reports
// completion with its old shard handle. The stale report must be rejected,
// not double-count the re-served range.
TEST(ShardQueueConcurrencyTest, StaleReportAfterRedispatchIsRejected) {
  ShardQueueOptions options;
  options.total_batches = 100;
  options.default_shard_batches = 50;
  ShardQueue queue(options);

  auto first = queue.NextShard();
  ASSERT_TRUE(first.ok());
  // Supervisor times the worker out: partial credit, remainder re-queued.
  ASSERT_TRUE(queue.ReportFailed(*first, 10).ok());
  // Remainder is re-dispatched to a replacement under a fresh index.
  auto retry = queue.NextShard();
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->start_batch, 10u);
  EXPECT_NE(retry->index, first->index);

  // The zombie worker reports with its retired handle: rejected both ways.
  EXPECT_FALSE(queue.ReportCompleted(*first).ok());
  EXPECT_FALSE(queue.ReportFailed(*first, 0).ok());
  ASSERT_TRUE(queue.CheckInvariants().ok());

  // The replacement's report is the one that counts.
  ASSERT_TRUE(queue.ReportCompleted(*retry).ok());
  EXPECT_EQ(queue.completed_batches(), 50u);
  ASSERT_TRUE(queue.CheckInvariants().ok());
}

// WaitNextShard parks when the queue is empty but work is outstanding, and
// wakes to serve the re-queued remainder of a failed shard.
TEST(ShardQueueConcurrencyTest, WaitNextShardBlocksUntilRequeue) {
  ShardQueueOptions options;
  options.total_batches = 64;
  options.default_shard_batches = 64;
  ShardQueue queue(options);

  auto holder = queue.NextShard();
  ASSERT_TRUE(holder.ok());  // all data now outstanding

  std::atomic<bool> got{false};
  std::thread waiter([&queue, &got]() {
    auto shard = queue.WaitNextShard();
    ASSERT_TRUE(shard.ok());
    EXPECT_EQ(shard->start_batch, 16u);
    ASSERT_TRUE(queue.ReportCompleted(*shard).ok());
    got.store(true);
  });
  // Give the waiter a moment to park, then fail the outstanding shard.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(queue.ReportFailed(*holder, 16).ok());
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_TRUE(queue.AllDone());
}

}  // namespace
}  // namespace dlrover
