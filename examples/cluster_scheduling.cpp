// Cluster-level scheduling demo: a mixed fleet of DLRM jobs arrives over
// several hours on a shared cluster with a diurnal high-priority service
// load. The brain allocates resources across jobs with NSGA-II candidate
// generation and weighted greedy selection under a budget (Eqns 11-14).
//
// Build & run:  ./build/examples/cluster_scheduling

#include <cstdio>

#include "harness/experiment.h"
#include "harness/reporting.h"

using namespace dlrover;  // NOLINT: example code

int main() {
  FleetScenario scenario;
  scenario.dlrover_fraction = 1.0;
  scenario.workload.num_jobs = 24;
  scenario.workload.arrival_span = Hours(6);
  scenario.horizon = Hours(24);
  scenario.seed = 2026;

  std::printf("Running %d jobs through DLRover-RM on a %d-node cluster...\n",
              scenario.workload.num_jobs, scenario.cluster.num_nodes);
  const FleetResult result = RunFleet(scenario);

  TablePrinter table({"job", "model", "done", "JCT", "pending", "cpus",
                      "w cpu util", "ps mem util"});
  for (const FleetJobOutcome& job : result.jobs) {
    table.AddRow({job.name, ModelKindName(job.model),
                  job.completed ? "yes" : job.fail_reason,
                  FormatDuration(job.jct),
                  FormatDuration(job.pending_time),
                  StrFormat("%d", job.requested_cpus),
                  FormatPercent(job.avg_worker_cpu_util),
                  FormatPercent(job.avg_ps_mem_util)});
  }
  table.Print();

  const Distribution jct = result.JctDistribution(false, false);
  std::printf("\ncompleted %d/%zu jobs; JCT %s\n", result.Completed(),
              result.jobs.size(), jct.Summary().c_str());
  std::printf("pods preempted by the co-located online service: %llu\n",
              static_cast<unsigned long long>(result.pods_preempted));
  return 0;
}
