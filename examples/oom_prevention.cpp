// OOM prevention demo (paper Section 5.3): a DLRM job whose embedding
// tables outgrow the PS memory limit. Without protection the PS is
// OOM-killed and the job crash-loops; with the predictor the job is
// seamlessly migrated to bigger (or more) PSes before the limit is hit.
//
// Build & run:  ./build/examples/oom_prevention

#include <cstdio>

#include "cluster/cluster.h"
#include "harness/reporting.h"
#include "master/job_master.h"
#include "ps/training_job.h"
#include "sim/simulator.h"

using namespace dlrover;  // NOLINT: example code

namespace {

void RunOne(bool prevention) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  Cluster cluster(&sim, cluster_options);

  JobSpec spec;
  spec.name = prevention ? "guarded" : "unguarded";
  spec.model = ModelKind::kWideDeep;
  spec.total_steps = 160000;
  spec.data_mode = DataMode::kDynamicSharding;
  spec.use_flash_checkpoint = true;

  JobConfig config;
  config.num_workers = 16;
  config.num_ps = 2;
  config.worker_cpu = 8.0;
  config.ps_cpu = 6.0;
  config.worker_memory = GiB(6);
  config.ps_memory = GiB(5);  // far too small for the final tables

  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();
  JobMasterOptions master_options;
  master_options.oom_prevention = prevention;
  JobMaster master(&sim, &job, master_options);
  master.Start();

  // Trace the memory race: usage vs limit every 10 minutes.
  std::printf("\n--- %s (OOM prevention %s) ---\n", spec.name.c_str(),
              prevention ? "ON" : "OFF");
  PeriodicTask tracer(&sim, Minutes(10), [&] {
    if (job.finished()) return;
    std::printf("t=%5.1f min  ps_mem used %6.2f GiB / limit %6.2f GiB  "
                "(ps=%d)  ooms=%d\n",
                sim.Now() / 60.0, ToGiB(job.MaxPsMemory()),
                ToGiB(job.config().ps_memory), job.config().num_ps,
                job.stats().oom_events);
  });
  tracer.Start();

  sim.RunUntil(Hours(10));
  std::printf("result: %s, OOM kills: %d, migrations: %d, JCT: %s\n",
              JobStateName(job.state()).c_str(), job.stats().oom_events,
              job.stats().migrations,
              job.finished() ? FormatDuration(job.stats().Jct()).c_str()
                             : "-");
}

}  // namespace

int main() {
  RunOne(/*prevention=*/false);
  RunOne(/*prevention=*/true);
  std::printf(
      "\nThe predictor extrapolates the embedding-growth trend and "
      "pre-scales PS memory through cheap seamless migrations, so the "
      "guarded job never hits the limit.\n");
  return 0;
}
