// Quickstart: submit one DLRM training job to a simulated cluster under
// DLRover-RM and watch the three-stage algorithm work:
//   stage 1  warm-starting from the config DB,
//   stage 2  online model fitting + NSGA-II + weighted greedy auto-scaling,
//   stage 3  instability handling (straggler mitigation, OOM prevention).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "brain/brain.h"
#include "cluster/cluster.h"
#include "harness/experiment.h"
#include "harness/reporting.h"
#include "master/job_master.h"
#include "sim/simulator.h"

using namespace dlrover;  // NOLINT: example code

int main() {
  // A 20-node cluster like the paper's small-scale testbed.
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  cluster_options.node_capacity = {32.0, GiB(192)};
  Cluster cluster(&sim, cluster_options);

  // The cluster brain, seeded with historical job records (the config DB a
  // production deployment accumulates over time).
  BrainOptions brain_options;
  brain_options.budget = cluster.TotalCapacity();
  ClusterBrain brain(&sim, brain_options);
  SeedHistoricalRecords(&brain.config_db(), /*seed=*/7);

  // Describe the job: a Wide&Deep model, batch 512, 200k steps.
  JobSpec spec;
  spec.name = "quickstart";
  spec.model = ModelKind::kWideDeep;
  spec.batch_size = 512;
  spec.total_steps = 200000;
  spec.data_mode = DataMode::kDynamicSharding;
  spec.use_flash_checkpoint = true;

  // Stage 1: the user supplies metadata, not a resource configuration.
  const JobMetadata meta = MetadataFor(spec.model, spec.batch_size,
                                       spec.total_steps);
  const JobConfig initial = brain.WarmStart(meta);
  std::printf("warm-started initial allocation: %s\n",
              initial.ToString().c_str());

  // Submit. The job master handles fast local reactions; the brain runs
  // cluster-level scheduling rounds every 3 minutes.
  TrainingJob job(&sim, &cluster, spec, initial);
  job.Start();
  brain.Manage(&job, meta);
  brain.Start();
  JobMaster master(&sim, &job);
  master.Start();

  // Print a progress line every 2 simulated minutes.
  PeriodicTask reporter(&sim, Minutes(2), [&] {
    if (job.finished()) return;
    std::printf("t=%5.1f min  state=%-12s  progress=%5.1f%%  "
                "throughput=%7.0f samples/s  config=%s\n",
                sim.Now() / 60.0, JobStateName(job.state()).c_str(),
                job.Progress() * 100.0, job.MeasuredThroughput(),
                job.config().ToString().c_str());
  });
  reporter.Start();

  sim.RunUntil(Hours(4));

  std::printf("\nfinal state: %s\n", JobStateName(job.state()).c_str());
  std::printf("job completion time: %s\n",
              FormatDuration(job.stats().Jct()).c_str());
  std::printf("plans applied by the brain: %d, migrations: %d, "
              "scale operations: %d\n",
              brain.plans_applied(), job.stats().migrations,
              job.stats().scale_operations);
  return job.state() == JobState::kCompleted ? 0 : 1;
}
