// Fault tolerance demo: a job survives worker crashes, a degraded PS, and
// a straggler while dynamic data sharding guarantees every batch is trained
// exactly once. Contrast with a conventional static-partition job that must
// stop-and-restart through remote storage.
//
// Build & run:  ./build/examples/elastic_fault_tolerance

#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/failure_injector.h"
#include "harness/reporting.h"
#include "master/job_master.h"
#include "ps/training_job.h"
#include "sim/simulator.h"

using namespace dlrover;  // NOLINT: example code

namespace {

JobStats RunOne(DataMode mode, bool flash, const char* label) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  Cluster cluster(&sim, cluster_options);

  JobSpec spec;
  spec.name = "ft-demo";
  spec.model = ModelKind::kDcn;
  spec.total_steps = 120000;
  spec.data_mode = mode;
  spec.use_flash_checkpoint = flash;
  spec.checkpoint_interval = Minutes(5);

  JobConfig config;
  config.num_workers = 16;
  config.num_ps = 4;
  config.worker_cpu = 8.0;
  config.ps_cpu = 6.0;
  config.worker_memory = GiB(6);
  config.ps_memory = GiB(16);

  TrainingJob job(&sim, &cluster, spec, config);
  job.Start();
  JobMaster master(&sim, &job);  // straggler mitigation + OOM guard
  master.Start();

  // Cloud instability: aggressive crash + straggler injection.
  FailureInjectorOptions failures;
  failures.daily_pod_failure_rate = 8.0;  // several faults per job lifetime
  failures.daily_straggler_rate = 4.0;
  FailureInjector injector(&sim, &cluster, failures);
  injector.Start();

  sim.RunUntil(Hours(12));

  std::printf(
      "%-28s state=%-10s JCT=%-10s worker_failures=%d ps_failures=%d "
      "restarts=%d ckpt_downtime=%s\n",
      label, JobStateName(job.state()).c_str(),
      job.finished() ? FormatDuration(job.stats().Jct()).c_str() : "-",
      job.stats().worker_failures, job.stats().ps_failures,
      job.stats().full_restarts,
      FormatDuration(job.stats().downtime_checkpoint).c_str());
  return job.stats();
}

}  // namespace

int main() {
  std::printf("Injecting heavy crash and straggler pressure into a "
              "20-pod job:\n\n");
  const JobStats dlrover =
      RunOne(DataMode::kDynamicSharding, true,
             "DLRover (sharding + flash)");
  const JobStats baseline =
      RunOne(DataMode::kStaticPartition, false,
             "baseline (static + RDS)");

  std::printf(
      "\nDLRover absorbed %d worker failures with %d full restarts; the "
      "baseline needed %d full restarts and %s of checkpoint downtime.\n",
      dlrover.worker_failures, dlrover.full_restarts,
      baseline.full_restarts,
      FormatDuration(baseline.downtime_checkpoint).c_str());
  return 0;
}
