// Ablation: dynamic data sharding design choices (DESIGN.md section 4).
//   (a) shard size — the paper uses small shards (64/128/256 batches);
//       larger shards make straggler mitigation and failure re-queuing
//       coarser, smaller shards add dispatch overhead events;
//   (b) data serving mode — dynamic sharding vs static partitioning under
//       worker churn.

#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/failure_injector.h"
#include "common/stats.h"
#include "harness/reporting.h"
#include "master/job_master.h"
#include "ps/training_job.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

struct Outcome {
  Duration jct = 0.0;
  int restarts = 0;
  bool completed = false;
};

Outcome RunJob(DataMode mode, uint64_t shard_batches, bool inject_faults,
               uint64_t seed) {
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 20;
  cluster_options.seed = seed;
  Cluster cluster(&sim, cluster_options);

  JobSpec spec;
  spec.name = "ablate";
  spec.model = ModelKind::kWideDeep;
  spec.total_steps = 120000;
  spec.data_mode = mode;
  spec.use_flash_checkpoint = true;
  spec.seed = seed * 31;

  JobConfig config;
  config.num_workers = 20;
  config.num_ps = 4;
  config.worker_cpu = 8.0;
  config.ps_cpu = 6.0;
  config.worker_memory = GiB(6);
  config.ps_memory = GiB(12);

  TrainingJob job(&sim, &cluster, spec, config);
  // Note: shard size is a ShardQueue option; emulate per-size runs by
  // capping every worker's shard request.
  job.Start();
  if (mode == DataMode::kDynamicSharding && shard_batches != 0) {
    sim.ScheduleAfter(Seconds(1), [&] {
      for (int i = 0; i < config.num_workers; ++i) {
        (void)job.SetWorkerShardLimit(i, shard_batches);
      }
    });
  }
  JobMaster master(&sim, &job);
  master.Start();

  std::unique_ptr<FailureInjector> injector;
  if (inject_faults) {
    FailureInjectorOptions failures;
    failures.daily_pod_failure_rate = 0.6;
    failures.daily_straggler_rate = 0.4;
    failures.seed = seed;
    injector = std::make_unique<FailureInjector>(&sim, &cluster, failures);
    injector->Start();
  }
  sim.RunUntil(Hours(12));
  Outcome outcome;
  outcome.completed = job.state() == JobState::kCompleted;
  outcome.jct = outcome.completed ? job.stats().Jct() : Hours(12);
  outcome.restarts = job.stats().full_restarts;
  return outcome;
}

void Run() {
  PrintBanner("Ablation (a): shard size under faults (dynamic sharding)");
  TablePrinter sizes({"shard batches", "JCT", "completed"});
  for (uint64_t batches : {32ull, 64ull, 128ull, 256ull, 1024ull}) {
    RunningStat jct;
    int done = 0;
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      const Outcome o =
          RunJob(DataMode::kDynamicSharding, batches, true, seed);
      if (o.completed) {
        jct.Add(o.jct);
        ++done;
      }
    }
    sizes.AddRow({StrFormat("%llu", static_cast<unsigned long long>(batches)),
                  FormatDuration(jct.mean()), StrFormat("%d/3", done)});
  }
  sizes.Print();

  PrintBanner("Ablation (b): data serving mode under worker churn");
  TablePrinter modes({"mode", "faults", "JCT", "restarts"});
  for (bool faults : {false, true}) {
    for (DataMode mode : {DataMode::kDynamicSharding,
                          DataMode::kStaticPartition}) {
      const Outcome o = RunJob(mode, 0, faults, 7);
      modes.AddRow({mode == DataMode::kDynamicSharding ? "dynamic sharding"
                                                       : "static partition",
                    faults ? "yes" : "no", FormatDuration(o.jct),
                    StrFormat("%d", o.restarts)});
    }
  }
  modes.Print();
  std::printf(
      "\nshape check: without faults the modes tie; with churn, static\n"
      "partitioning pays full restarts while dynamic sharding re-queues\n"
      "shards and keeps going (paper Section 5.1).\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
