// Reproduces Fig 1(b): the memory demand of one production-scale DLRM job
// over time. The paper shows a job whose embedding tables surge past 2.3 TB
// within 15 hours. We instantiate a production-scale profile (the
// small-cluster evaluation profiles are deliberately smaller; see DESIGN.md)
// and integrate the same growth law the simulator uses.

#include <cstdio>

#include "harness/reporting.h"
#include "ps/iteration_model.h"
#include "ps/model_profile.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner("Fig 1(b): embedding memory of one production job over time");

  // Production-scale job: tens of billions of candidate categories, wide
  // embeddings, hundreds of workers.
  ModelProfile profile = GetModelProfile(ModelKind::kWideDeep);
  profile.phi_max = 2.1e10;
  profile.phi_n0 = 5.0e9;  // samples scale of the category discovery curve
  profile.bytes_per_category = 4.0 * 26 + 16;
  const double throughput = 250000.0;  // samples/sec at production scale

  TablePrinter table({"hours", "samples (B)", "embedding memory (TB)"});
  double mem_15h = 0.0;
  for (double hours = 0.0; hours <= 15.01; hours += 1.0) {
    const double samples = throughput * hours * 3600.0;
    const Bytes mem = profile.EmbeddingBytesAt(samples);
    if (hours >= 14.99) mem_15h = mem / 1e12;
    table.AddRow({StrFormat("%.0f", hours), StrFormat("%.2f", samples / 1e9),
                  StrFormat("%.2f", mem / 1e12)});
  }
  table.Print();
  std::printf("\nmemory after 15 h: %.2f TB (paper: surges past 2.3 TB)\n",
              mem_15h);
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
