// Reproduces Fig 7: end-to-end JCT for Models X/Y/Z (batch 512, 200k steps)
// under a well-tuned static configuration, DLRover-RM, ES, and Optimus on
// the small cluster. The paper's shape: DLRover-RM lands within a few
// percent of the hand-tuned optimum and beats ES and Optimus (by 17.7% and
// 28.5% on average in the paper; our Optimus gap is larger because each of
// its stop-and-restart adjustments pays a full RDS checkpoint — see
// EXPERIMENTS.md).

#include <cstdio>
#include <map>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sweep.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner("Fig 7: JCT by scheduler (batch 512, 200k steps)");
  const std::vector<SchedulerKind> schedulers = {
      SchedulerKind::kManualTuned, SchedulerKind::kDlrover,
      SchedulerKind::kEs, SchedulerKind::kOptimus};
  const std::vector<uint64_t> seeds = {3, 7, 21};
  const std::vector<ModelKind> models = {
      ModelKind::kWideDeep, ModelKind::kXDeepFm, ModelKind::kDcn};

  // The 36 scenarios are independent seed-determined simulations: fan them
  // out across the sweep engine (results come back in grid order).
  std::vector<SingleJobScenario> scenarios;
  for (ModelKind kind : models) {
    for (SchedulerKind scheduler : schedulers) {
      for (uint64_t seed : seeds) {
        SingleJobScenario scenario;
        scenario.scheduler = scheduler;
        scenario.model = kind;
        scenario.total_steps = 200000;
        scenario.seed = seed;
        scenarios.push_back(scenario);
      }
    }
  }
  const std::vector<SingleJobResult> results = RunSingleJobSweep(scenarios);

  TablePrinter table({"model", "scheduler", "JCT (mean)", "vs well-tuned",
                      "completed"});
  std::map<SchedulerKind, Distribution> overall;
  size_t index = 0;
  for (ModelKind kind : models) {
    std::map<SchedulerKind, Distribution> jcts;
    std::map<SchedulerKind, int> completed;
    for (SchedulerKind scheduler : schedulers) {
      for (size_t s = 0; s < seeds.size(); ++s) {
        const SingleJobResult& result = results[index++];
        if (result.final_state == JobState::kCompleted) {
          jcts[scheduler].Add(result.jct);
          overall[scheduler].Add(result.jct);
          ++completed[scheduler];
        }
      }
    }
    const double tuned = jcts[SchedulerKind::kManualTuned].mean();
    for (SchedulerKind scheduler : schedulers) {
      const double mean = jcts[scheduler].empty() ? 0.0
                                                  : jcts[scheduler].mean();
      table.AddRow({ModelKindName(kind), SchedulerKindName(scheduler),
                    FormatDuration(mean),
                    tuned > 0.0 ? StrFormat("%+.1f%%",
                                            (mean / tuned - 1.0) * 100.0)
                                : "-",
                    StrFormat("%d/%zu", completed[scheduler], seeds.size())});
    }
  }
  table.Print();

  const double dlrover = overall[SchedulerKind::kDlrover].mean();
  std::printf(
      "\naverage JCT: DLRover-RM %s | ES %s (%+.1f%% vs DLRover; paper "
      "+17.7%%) | Optimus %s (%+.1f%%; paper +28.5%%)\n",
      FormatDuration(dlrover).c_str(),
      FormatDuration(overall[SchedulerKind::kEs].mean()).c_str(),
      (overall[SchedulerKind::kEs].mean() / dlrover - 1.0) * 100.0,
      FormatDuration(overall[SchedulerKind::kOptimus].mean()).c_str(),
      (overall[SchedulerKind::kOptimus].mean() / dlrover - 1.0) * 100.0);
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
