// Reproduces Fig 13: a worker degraded to 3% of its tuned CPU mid-run
// (straggler), handled three ways:
//   no intervention       — the static partition owned by the straggler
//                           gates the whole job;
//   traditional handling  — detect, stop-and-restart with a fresh pod;
//   DLRover-RM            — dynamic data sharding redistributes the
//                           straggler's work and shrinks its shards.
// Paper shape: DLRover-RM shortens JCT by 48.5% vs no-intervention and 37%
// vs traditional handling, recovering within about a minute without any
// restart.

#include <cstdio>
#include <map>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sweep.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner(
      "Fig 13: worker straggler handling (worker at 3% CPU from t=10min)");
  const std::vector<SchedulerKind> strategies = {
      SchedulerKind::kNoIntervention, SchedulerKind::kTraditional,
      SchedulerKind::kDlrover};

  std::vector<SingleJobScenario> scenarios;
  for (SchedulerKind strategy : strategies) {
    SingleJobScenario scenario;
    scenario.scheduler = strategy;
    scenario.model = ModelKind::kWideDeep;
    scenario.total_steps = 200000;
    scenario.seed = 9;
    scenario.injection.kind = ScenarioInjection::Kind::kWorkerStraggler;
    scenario.injection.at = Minutes(10);
    scenario.injection.speed = 0.03;
    scenario.initial = WellTunedConfig(scenario.model);
    scenarios.push_back(scenario);
  }
  const std::vector<SingleJobResult> results = RunSingleJobSweep(scenarios);

  TablePrinter table({"strategy", "JCT", "ckpt save/load", "pod wait",
                      "repartition", "recovery", "restarts", "mitigated"});
  std::map<SchedulerKind, double> jct;
  for (size_t i = 0; i < strategies.size(); ++i) {
    const SchedulerKind strategy = strategies[i];
    const SingleJobResult& result = results[i];
    jct[strategy] = result.jct;
    table.AddRow(
        {SchedulerKindName(strategy), FormatDuration(result.jct),
         FormatDuration(result.stats.downtime_checkpoint),
         FormatDuration(result.stats.downtime_waiting_pods),
         FormatDuration(result.stats.downtime_repartition),
         result.recovery_time >= 0.0 ? FormatDuration(result.recovery_time)
                                     : "never",
         StrFormat("%d", result.stats.full_restarts +
                             result.stats.migrations),
         StrFormat("%d", result.stats.stragglers_mitigated)});
  }
  table.Print();

  const double none = jct[SchedulerKind::kNoIntervention];
  const double traditional = jct[SchedulerKind::kTraditional];
  const double dlrover = jct[SchedulerKind::kDlrover];
  std::printf(
      "\nDLRover-RM JCT reduction: %.1f%% vs no-intervention (paper 48.5%%)"
      ", %.1f%% vs traditional handling (paper 37%%)\n",
      (1.0 - dlrover / none) * 100.0,
      (1.0 - dlrover / traditional) * 100.0);
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
