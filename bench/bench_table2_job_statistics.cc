// Reproduces the context of Table 2: the mix of workloads sharing the
// cloud-based cluster (training, stream processing, online services) and
// their utilisation levels. We run the synthetic fleet and report the same
// columns the paper tabulates, scaled to the simulated cluster.

#include <cstdio>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner("Table 2: workload consolidation on the shared cluster");

  // Sample the cluster at steady state with a manual (pre-DLRover) fleet.
  Simulator sim;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 100;
  Cluster cluster(&sim, cluster_options);

  BackgroundLoadOptions bg;
  bg.base_fraction = 0.18;
  bg.peak_fraction = 0.12;
  BackgroundLoad background(&sim, &cluster, bg);
  background.Start();

  WorkloadOptions workload;
  workload.num_jobs = 30;
  workload.arrival_span = Hours(2);
  const auto trace = WorkloadGenerator(workload).Generate();
  std::vector<std::unique_ptr<TrainingJob>> jobs;
  Rng rng(5);
  for (const GeneratedJob& gen : trace) {
    JobSpec spec = gen.spec;
    spec.data_mode = DataMode::kStaticPartition;
    JobConfig config = UserMisconfiguredConfig(gen.spec.model, rng);
    config.num_workers =
        std::max(2, static_cast<int>(config.num_workers * gen.size_factor));
    auto job = std::make_unique<TrainingJob>(&sim, &cluster, spec, config);
    job->Start();
    jobs.push_back(std::move(job));
  }
  sim.RunUntil(Hours(4));

  // Aggregate by priority class (job type).
  struct Row {
    int count = 0;
    double vcpu = 0.0;
    double used_cpu = 0.0;
    Bytes mem = 0.0;
  };
  Row training, online;
  cluster.VisitPods([&](const Pod& pod) {
    if (pod.phase != PodPhase::kRunning) return;
    Row& row = pod.spec.priority == PriorityClass::kTraining ? training
                                                             : online;
    ++row.count;
    row.vcpu += pod.spec.request.cpu;
    row.used_cpu += pod.usage.cpu;
    row.mem += pod.spec.request.memory;
  });

  TablePrinter table({"job type", "pods", "vCPU", "CPU util", "MEM"});
  auto add = [&](const char* name, const Row& row) {
    table.AddRow({name, StrFormat("%d", row.count),
                  StrFormat("%.0f", row.vcpu),
                  row.vcpu > 0 ? FormatPercent(row.used_cpu / row.vcpu) : "-",
                  StrFormat("%.1f TiB", ToTiB(row.mem))});
  };
  add("Training (DLRM)", training);
  add("Online/Stream services", online);
  table.Print();
  std::printf(
      "\nshape check (paper Table 2): training jobs dominate the pod count "
      "but run at low CPU utilisation (~20%%) next to the co-located "
      "services; pending pods right now: %zu.\n",
      cluster.PendingCount());
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
