// Reproduces Fig 1(a): the proportion of iteration time spent in embedding
// lookups across DLRM training jobs. The paper reports lookups consuming
// 30-48% of the training duration; we sweep realistic configurations of the
// three models and report the per-operator breakdown.

#include <cstdio>
#include <vector>

#include "harness/reporting.h"
#include "ps/iteration_model.h"
#include "ps/model_profile.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner("Fig 1(a): operator time proportions across DLRM jobs");
  EnvironmentProfile env;
  const uint64_t batch = 512;

  TablePrinter table({"job", "model", "w", "p", "cpu_w", "cpu_p", "T_iter(s)",
                      "grad", "update", "sync", "lookup"});
  double min_lookup = 1.0;
  double max_lookup = 0.0;
  int job_id = 0;
  for (ModelKind kind : {ModelKind::kWideDeep, ModelKind::kXDeepFm,
                         ModelKind::kDcn}) {
    const ModelProfile profile = GetModelProfile(kind);
    struct Shape {
      int w, p;
      double lw, lp;
    };
    // Realistic configurations users run with, from lean to generous.
    const std::vector<Shape> shapes = {
        {12, 2, 6, 4}, {16, 2, 8, 6}, {20, 4, 8, 4},
        {28, 4, 8, 6}, {32, 6, 10, 6},
    };
    for (const Shape& shape : shapes) {
      JobConfig config;
      config.num_workers = shape.w;
      config.num_ps = shape.p;
      config.worker_cpu = shape.lw;
      config.ps_cpu = shape.lp;
      const IterationBreakdown iter =
          ComputeHealthyIteration(profile, env, batch, config);
      const double total = iter.Total();
      min_lookup = std::min(min_lookup, iter.t_emb / total);
      max_lookup = std::max(max_lookup, iter.t_emb / total);
      table.AddRow({StrFormat("job-%d", ++job_id), ModelKindName(kind),
                    StrFormat("%d", shape.w), StrFormat("%d", shape.p),
                    StrFormat("%.0f", shape.lw), StrFormat("%.0f", shape.lp),
                    StrFormat("%.3f", total),
                    FormatPercent(iter.t_grad / total),
                    FormatPercent(iter.t_upd / total),
                    FormatPercent(iter.t_sync / total),
                    FormatPercent(iter.t_emb / total)});
    }
  }
  table.Print();
  std::printf(
      "\nlookup fraction range across jobs: %.1f%% .. %.1f%% "
      "(paper: 30%%-48%%)\n",
      min_lookup * 100.0, max_lookup * 100.0);
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
