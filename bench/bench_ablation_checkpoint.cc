// Ablation: checkpoint tier and cadence (DESIGN.md section 4).
// Flash-checkpoint's value decomposes into (a) cheap saves enable frequent
// checkpoints => small rollback windows on PS loss, and (b) cheap handoffs
// make migrations near-free. This bench sweeps tier x interval for a job
// that loses a PS mid-run and reports JCT plus rollback size.

#include <cstdio>

#include "cluster/cluster.h"
#include "harness/reporting.h"
#include "ps/training_job.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner(
      "Ablation: checkpoint tier x interval, PS crash at t = 8 min");
  TablePrinter table({"tier", "interval", "JCT", "ckpt downtime",
                      "batches rolled back"});
  for (bool flash : {true, false}) {
    for (double minutes : {2.5, 10.0, 30.0}) {
      Simulator sim;
      ClusterOptions cluster_options;
      cluster_options.num_nodes = 20;
      Cluster cluster(&sim, cluster_options);

      JobSpec spec;
      spec.name = "ckpt-ablate";
      spec.model = ModelKind::kWideDeep;
      spec.total_steps = 120000;
      spec.data_mode = DataMode::kDynamicSharding;
      spec.use_flash_checkpoint = flash;
      spec.checkpoint_interval = Minutes(minutes);

      JobConfig config;
      config.num_workers = 20;
      config.num_ps = 4;
      config.worker_cpu = 8.0;
      config.ps_cpu = 6.0;
      config.worker_memory = GiB(6);
      config.ps_memory = GiB(12);

      TrainingJob job(&sim, &cluster, spec, config);
      job.Start();

      uint64_t batches_at_crash = 0;
      sim.ScheduleAt(Minutes(8), [&] {
        batches_at_crash = job.batches_done();
        PodId victim = 0;
        cluster.VisitPods([&](const Pod& pod) {
          if (victim == 0 && pod.phase == PodPhase::kRunning &&
              pod.spec.name.find("-ps-") != std::string::npos) {
            victim = pod.id;
          }
        });
        if (victim != 0) cluster.FailPod(victim, PodStopReason::kCrash);
      });

      // Observe the rollback: minimum batches_done after the crash.
      uint64_t min_after = ~0ull;
      PeriodicTask watcher(&sim, Seconds(15), [&] {
        if (batches_at_crash > 0 && !job.finished()) {
          min_after = std::min(min_after, job.batches_done());
        }
      });
      watcher.Start();

      sim.RunUntil(Hours(10));
      const uint64_t rolled_back =
          min_after == ~0ull ? 0 : batches_at_crash - std::min(
                                       batches_at_crash, min_after);
      table.AddRow({flash ? "flash-cache" : "RDS",
                    StrFormat("%.1f min", minutes),
                    job.state() == JobState::kCompleted
                        ? FormatDuration(job.stats().Jct())
                        : "failed",
                    FormatDuration(job.stats().downtime_checkpoint),
                    StrFormat("%llu",
                              static_cast<unsigned long long>(rolled_back))});
    }
  }
  table.Print();
  std::printf(
      "\nshape check: the flash tier keeps checkpoint downtime in seconds "
      "at any cadence, so frequent checkpoints (small rollback windows) "
      "are free; RDS forces a choice between rollback size and overhead "
      "(paper Section 5.2).\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
