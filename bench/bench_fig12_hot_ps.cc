// Reproduces Fig 12: a parameter server degraded to 3% of its tuned CPU
// mid-run ("hot PS"), handled three ways:
//   no intervention      — training limps along at the degraded rate;
//   traditional migration — detect, checkpoint to RDS, stop-and-restart;
//   DLRover-RM           — seamless migration + flash-checkpoint.
// Paper shape: DLRover-RM cuts JCT by 36.4% vs no-intervention and 27.6%
// vs traditional migration; seamless overlap saves ~5 minutes of restart
// wait and flash-checkpoint ~3 minutes of save/load.

#include <cstdio>
#include <map>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sweep.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner("Fig 12: hot PS handling (PS degraded to 3% CPU at t=10min)");
  const std::vector<SchedulerKind> strategies = {
      SchedulerKind::kNoIntervention, SchedulerKind::kTraditional,
      SchedulerKind::kDlrover};

  std::vector<SingleJobScenario> scenarios;
  for (SchedulerKind strategy : strategies) {
    SingleJobScenario scenario;
    scenario.scheduler = strategy;
    scenario.model = ModelKind::kWideDeep;
    scenario.total_steps = 200000;
    scenario.seed = 9;
    scenario.injection.kind = ScenarioInjection::Kind::kHotPs;
    scenario.injection.at = Minutes(10);
    scenario.injection.speed = 0.03;
    // The DLRover job here starts well-tuned so the comparison isolates the
    // instability-handling mechanism, as in the paper's experiment.
    scenario.initial = WellTunedConfig(scenario.model);
    scenarios.push_back(scenario);
  }
  const std::vector<SingleJobResult> results = RunSingleJobSweep(scenarios);

  TablePrinter table({"strategy", "JCT", "ckpt save/load", "pod wait",
                      "repartition", "recovery time"});
  std::map<SchedulerKind, double> jct;
  for (size_t i = 0; i < strategies.size(); ++i) {
    const SchedulerKind strategy = strategies[i];
    const SingleJobResult& result = results[i];
    jct[strategy] = result.jct;
    table.AddRow(
        {SchedulerKindName(strategy), FormatDuration(result.jct),
         FormatDuration(result.stats.downtime_checkpoint),
         FormatDuration(result.stats.downtime_waiting_pods),
         FormatDuration(result.stats.downtime_repartition),
         result.recovery_time >= 0.0 ? FormatDuration(result.recovery_time)
                                     : "never"});
  }
  table.Print();

  const double none = jct[SchedulerKind::kNoIntervention];
  const double traditional = jct[SchedulerKind::kTraditional];
  const double dlrover = jct[SchedulerKind::kDlrover];
  std::printf(
      "\nDLRover-RM JCT reduction: %.1f%% vs no-intervention (paper 36.4%%)"
      ", %.1f%% vs traditional migration (paper 27.6%%)\n",
      (1.0 - dlrover / none) * 100.0,
      (1.0 - dlrover / traditional) * 100.0);
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
