// Reproduces Fig 8: elastic operations under DLRover-RM do not compromise
// model convergence. We train the *real* mini-DLRM (all three
// architectures) on synthetic Criteo with async-PS semantics under three
// regimes:
//   baseline     — static partitioning, no elastic events (= well-tuned);
//   DLRover      — dynamic data sharding with scale-out/scale-in, a worker
//                  crash and a straggler injected mid-run;
//   naive elastic — the same events under conventional static
//                  re-partitioning (duplicates and skips batches).
// Shape to verify: DLRover's loss/AUC curves track the baseline; the naive
// scheme drifts (and loses/duplicates data).

#include <cstdio>

#include "dlrm/async_trainer.h"
#include "harness/reporting.h"

namespace dlrover {
namespace {

AsyncTrainerOptions BaseOptions(uint64_t seed) {
  AsyncTrainerOptions options;
  options.num_workers = 8;
  options.batch_size = 96;
  options.total_batches = 2400;
  options.learning_rate = 0.12;
  options.shard_batches = 16;
  options.eval_every_batches = 400;
  // CTR evaluation: the test window is the *future* right after the
  // training range — under concept drift the most recent data matters most.
  options.eval_start = options.total_batches * options.batch_size;
  options.eval_size = 4096;
  options.seed = seed;
  return options;
}

// Concept-drift horizon: the teacher rotates meaningfully over one
// training run, like production CTR distributions drifting intra-day.
constexpr double kDriftSamples = 120000.0;

std::vector<ElasticEvent> Faults() {
  return {
      {400, ElasticEvent::Kind::kAddWorkers, 4, 0.0},
      // Early straggler: it accumulates a large backlog of *late* data
      // that naive static re-partitioning silently drops.
      {700, ElasticEvent::Kind::kMakeStraggler, 1, 0.05},
      {900, ElasticEvent::Kind::kCrashWorker, 1, 0.0},
      {1800, ElasticEvent::Kind::kRemoveWorkers, 3, 0.0},
  };
}

void Run() {
  PrintBanner("Fig 8: convergence under elasticity (real mini-DLRM)");
  for (ModelKind arch : {ModelKind::kWideDeep, ModelKind::kXDeepFm,
                         ModelKind::kDcn}) {
    MiniDlrmConfig model_config;
    model_config.arch = arch;
    model_config.emb_dim = 8;
    model_config.hash_buckets = 4096;
    model_config.mlp_hidden = {32, 16};
    model_config.seed = 77;
    CriteoSynth data(1234, kDriftSamples);

    auto train = [&](DataMode mode, bool events) {
      MiniDlrm model(model_config);
      AsyncTrainerOptions options = BaseOptions(55);
      options.data_mode = mode;
      if (events) options.events = Faults();
      AsyncPsTrainer trainer(&model, &data, options);
      return trainer.Run();
    };

    const TrainResult baseline =
        train(DataMode::kStaticPartition, /*events=*/false);
    const TrainResult dlrover =
        train(DataMode::kDynamicSharding, /*events=*/true);
    const TrainResult naive =
        train(DataMode::kStaticPartition, /*events=*/true);

    std::printf("\n-- %s --\n", ModelKindName(arch).c_str());
    TablePrinter table({"batches", "baseline logloss", "DLRover logloss",
                        "naive logloss", "baseline AUC", "DLRover AUC",
                        "naive AUC"});
    const size_t points =
        std::min({baseline.curve.size(), dlrover.curve.size(),
                  naive.curve.size()});
    for (size_t i = 0; i < points; ++i) {
      table.AddRow({StrFormat("%llu", static_cast<unsigned long long>(
                                          baseline.curve[i].batches)),
                    StrFormat("%.4f", baseline.curve[i].test_logloss),
                    StrFormat("%.4f", dlrover.curve[i].test_logloss),
                    StrFormat("%.4f", naive.curve[i].test_logloss),
                    StrFormat("%.4f", baseline.curve[i].test_auc),
                    StrFormat("%.4f", dlrover.curve[i].test_auc),
                    StrFormat("%.4f", naive.curve[i].test_auc)});
    }
    table.Print();
    std::printf(
        "data accounting: DLRover duplicated=%llu skipped=%llu | naive "
        "duplicated=%llu skipped=%llu\n",
        static_cast<unsigned long long>(dlrover.batches_duplicated),
        static_cast<unsigned long long>(dlrover.batches_skipped),
        static_cast<unsigned long long>(naive.batches_duplicated),
        static_cast<unsigned long long>(naive.batches_skipped));
    std::printf(
        "final: baseline logloss %.4f / AUC %.4f | DLRover %.4f / %.4f "
        "(gap %.4f) | naive %.4f / %.4f\n",
        baseline.final_logloss, baseline.final_auc, dlrover.final_logloss,
        dlrover.final_auc, dlrover.final_logloss - baseline.final_logloss,
        naive.final_logloss, naive.final_auc);
  }
  std::printf(
      "\nshape check: DLRover's curves track the baseline (exactly-once "
      "consumption), the naive scheme trains some data twice and drops "
      "some entirely.\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
