// Fleet-scale hot-path benchmark: runs a Fig 3-shaped mixed fleet (half
// DLRover-managed, half manual) at 1x, 5x, and 20x the base size (48 jobs /
// 60 nodes), once with the optimized hot path (inline event callbacks, slab
// pods, O(1) cluster accounting, memoized iteration model) and once with
// FleetScenario::legacy_hot_path, which reruns the per-call scan paths the
// optimizations replaced. Both paths must produce identical fleet outcomes
// — the bench verifies that in-process and fails otherwise — so the
// speedup column measures pure hot-path cost. Results land in
// BENCH_fleet_scale.json: events/sec, wall seconds, peak RSS, and speedup
// per scale.
//
// Usage: bench_fleet_scale [max_scale]   (default 20; ctest runs 1)

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"

namespace dlrover {
namespace {

struct ScaleRun {
  int scale = 1;
  int num_jobs = 0;
  int num_nodes = 0;
  uint64_t events = 0;
  double optimized_seconds = 0.0;
  double legacy_seconds = 0.0;
  double optimized_eps = 0.0;
  double legacy_eps = 0.0;
  double peak_rss_mb = 0.0;  // process peak after the optimized run
  bool outcomes_match = false;
};

FleetScenario ScaledScenario(int scale, bool legacy) {
  FleetScenario scenario;
  // Fig 3 shape: an all-manual fleet. No brain/NSGA-II planning in the
  // loop, so events/sec measures the event hot path itself rather than
  // plan optimization (which both paths pay identically).
  scenario.dlrover_fraction = 0.0;
  scenario.workload.num_jobs = 48 * scale;
  scenario.workload.arrival_span = Hours(8);
  scenario.cluster.num_nodes = 60 * scale;
  scenario.horizon = Hours(30);
  scenario.seed = 11;
  scenario.legacy_hot_path = legacy;
  return scenario;
}

double PeakRssMb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB -> MiB
}

bool SameOutcomes(const FleetResult& a, const FleetResult& b) {
  if (a.executed_events != b.executed_events ||
      a.pods_preempted != b.pods_preempted ||
      a.crashes_injected != b.crashes_injected ||
      a.stragglers_injected != b.stragglers_injected ||
      a.jobs.size() != b.jobs.size()) {
    return false;
  }
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].completed != b.jobs[i].completed ||
        a.jobs[i].jct != b.jobs[i].jct ||
        a.jobs[i].pending_time != b.jobs[i].pending_time) {
      return false;
    }
  }
  return true;
}

ScaleRun RunScale(int scale) {
  ScaleRun run;
  run.scale = scale;
  run.num_jobs = 48 * scale;
  run.num_nodes = 60 * scale;

  // Optimized first: the process-wide RSS high-water mark then reflects the
  // optimized path, not the scan-path baseline that follows.
  auto start = std::chrono::steady_clock::now();
  const FleetResult optimized = RunFleet(ScaledScenario(scale, false));
  run.optimized_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.peak_rss_mb = PeakRssMb();

  start = std::chrono::steady_clock::now();
  const FleetResult legacy = RunFleet(ScaledScenario(scale, true));
  run.legacy_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  run.events = optimized.executed_events;
  run.optimized_eps =
      static_cast<double>(run.events) / run.optimized_seconds;
  run.legacy_eps = static_cast<double>(run.events) / run.legacy_seconds;
  run.outcomes_match = SameOutcomes(optimized, legacy);
  return run;
}

void Run(int max_scale) {
  PrintBanner("fleet-scale hot path: optimized vs legacy scan paths");

  std::vector<ScaleRun> runs;
  for (int scale : {1, 5, 20}) {
    if (scale > max_scale) continue;
    std::printf("running scale %dx (%d jobs / %d nodes)...\n", scale,
                48 * scale, 60 * scale);
    std::fflush(stdout);
    runs.push_back(RunScale(scale));
  }

  bool all_match = true;
  TablePrinter table({"scale", "jobs", "nodes", "events", "opt events/s",
                      "legacy events/s", "speedup", "peak RSS", "outcomes"});
  for (const ScaleRun& r : runs) {
    all_match = all_match && r.outcomes_match;
    table.AddRow({StrFormat("%dx", r.scale), StrFormat("%d", r.num_jobs),
                  StrFormat("%d", r.num_nodes),
                  StrFormat("%llu", static_cast<unsigned long long>(r.events)),
                  StrFormat("%.3g", r.optimized_eps),
                  StrFormat("%.3g", r.legacy_eps),
                  StrFormat("%.2fx", r.optimized_eps / r.legacy_eps),
                  StrFormat("%.0f MiB", r.peak_rss_mb),
                  r.outcomes_match ? "identical" : "DIVERGED"});
  }
  table.Print();
  std::printf("\nlegacy vs optimized outcomes: %s\n",
              all_match ? "identical at every scale" : "DIVERGED");

  FILE* json = OpenBenchJson("BENCH_fleet_scale.json", "fleet_scale");
  if (json == nullptr) std::exit(1);
  std::fprintf(json, "  \"outcomes_match\": %s,\n",
               all_match ? "true" : "false");
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const ScaleRun& r = runs[i];
    std::fprintf(
        json,
        "    {\"scale\": %d, \"jobs\": %d, \"nodes\": %d, "
        "\"events\": %llu, \"optimized_seconds\": %.4f, "
        "\"legacy_seconds\": %.4f, \"optimized_events_per_sec\": %.1f, "
        "\"legacy_events_per_sec\": %.1f, \"speedup_vs_legacy\": %.3f, "
        "\"peak_rss_mb\": %.1f}%s\n",
        r.scale, r.num_jobs, r.num_nodes,
        static_cast<unsigned long long>(r.events), r.optimized_seconds,
        r.legacy_seconds, r.optimized_eps, r.legacy_eps,
        r.optimized_eps / r.legacy_eps, r.peak_rss_mb,
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_fleet_scale.json\n");

  if (!all_match) std::exit(1);
}

}  // namespace
}  // namespace dlrover

int main(int argc, char** argv) {
  int max_scale = 20;
  if (argc > 1) max_scale = std::atoi(argv[1]);
  dlrover::Run(max_scale);
  return 0;
}
