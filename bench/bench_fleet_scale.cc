// Fleet-scale benchmark for the sharded event core: runs a Fig 3-shaped
// all-manual fleet (48 jobs / 60 nodes at 1x) at up to 250x the base size
// on the sharded engine, sweeping execution lanes {1, 2, 4, hw}. Cells
// partition the fleet (part of the scenario shape); lanes only change which
// thread advances which cell, so the bench verifies in-process that every
// lane count produces byte-identical outcomes — the speedup column measures
// pure execution-width effect. At 1x it additionally checks the sequential
// oracle: RunFleetSharded with one cell must reproduce RunFleet exactly.
// Results land in BENCH_fleet_scale.json: events/sec per lane count,
// speedup vs one lane, window size, peak RSS, and both parity verdicts.
//
// Usage: bench_fleet_scale [max_scale]   (default 100; ctest runs 1)

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sharded_fleet.h"

namespace dlrover {
namespace {

struct LaneRun {
  int lanes = 1;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double speedup_vs_1 = 1.0;
};

struct ScaleRun {
  int scale = 1;
  int num_jobs = 0;
  int num_nodes = 0;
  int cells = 1;
  uint64_t events = 0;
  uint64_t windows = 0;
  uint64_t cross_shard_sends = 0;
  std::vector<LaneRun> lanes;
  double peak_rss_mb = 0.0;
  bool lanes_identical = false;
};

FleetScenario ScaledScenario(int scale) {
  FleetScenario scenario;
  // Fig 3 shape: an all-manual fleet. No brain/NSGA-II planning in the
  // loop, so events/sec measures the event core itself rather than plan
  // optimization.
  scenario.dlrover_fraction = 0.0;
  scenario.workload.num_jobs = 48 * scale;
  scenario.workload.arrival_span = Hours(8);
  scenario.cluster.num_nodes = 60 * scale;
  scenario.horizon = Hours(30);
  scenario.seed = 11;
  return scenario;
}

int CellsForScale(int scale) {
  // Enough cells that sharding is always exercised, capped so small fleets
  // keep a few nodes per cell.
  return std::min(16, 4 * scale);
}

double PeakRssMb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB -> MiB
}

bool SameOutcomes(const FleetResult& a, const FleetResult& b) {
  if (a.executed_events != b.executed_events ||
      a.pods_preempted != b.pods_preempted ||
      a.crashes_injected != b.crashes_injected ||
      a.stragglers_injected != b.stragglers_injected ||
      a.jobs.size() != b.jobs.size()) {
    return false;
  }
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    if (a.jobs[i].completed != b.jobs[i].completed ||
        a.jobs[i].jct != b.jobs[i].jct ||
        a.jobs[i].pending_time != b.jobs[i].pending_time) {
      return false;
    }
  }
  return true;
}

std::vector<int> LaneSweep() {
  std::vector<int> lanes = {1, 2, 4};
  const int hw = static_cast<int>(
      std::max<unsigned>(1, std::thread::hardware_concurrency()));
  if (std::find(lanes.begin(), lanes.end(), hw) == lanes.end()) {
    lanes.push_back(hw);
  }
  return lanes;
}

ScaleRun RunScale(int scale, Duration window) {
  ScaleRun run;
  run.scale = scale;
  run.num_jobs = 48 * scale;
  run.num_nodes = 60 * scale;
  run.cells = CellsForScale(scale);
  const FleetScenario scenario = ScaledScenario(scale);

  ShardedFleetOptions options;
  options.cells = run.cells;
  options.window = window;

  run.lanes_identical = true;
  FleetResult reference;
  for (int lanes : LaneSweep()) {
    options.shards = lanes;
    const auto start = std::chrono::steady_clock::now();
    ShardedFleetResult result = RunFleetSharded(scenario, options);
    LaneRun lane;
    lane.lanes = lanes;
    lane.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    lane.events_per_sec =
        static_cast<double>(result.fleet.executed_events) / lane.seconds;
    if (run.lanes.empty()) {
      run.events = result.fleet.executed_events;
      run.windows = result.windows;
      run.cross_shard_sends = result.cross_shard_sends;
      reference = std::move(result.fleet);
      lane.speedup_vs_1 = 1.0;
    } else {
      lane.speedup_vs_1 = lane.seconds > 0.0
                              ? run.lanes.front().seconds / lane.seconds
                              : 0.0;
      run.lanes_identical =
          run.lanes_identical && SameOutcomes(reference, result.fleet);
    }
    run.lanes.push_back(lane);
  }
  run.peak_rss_mb = PeakRssMb();
  return run;
}

void Run(int max_scale) {
  PrintBanner("fleet scale: sharded event core, lane sweep");
  const Duration window = Minutes(2);

  // Sequential oracle at the base scale: one cell on one lane must be the
  // sequential RunFleet byte for byte.
  std::printf("checking 1-cell parity against sequential RunFleet...\n");
  std::fflush(stdout);
  const FleetScenario base = ScaledScenario(1);
  ShardedFleetOptions one_cell;
  one_cell.cells = 1;
  one_cell.shards = 1;
  one_cell.window = window;
  const bool sequential_parity =
      SameOutcomes(RunFleet(base), RunFleetSharded(base, one_cell).fleet);
  std::printf("  sequential parity: %s\n",
              sequential_parity ? "identical" : "DIVERGED");

  std::vector<ScaleRun> runs;
  for (int scale : {1, 20, 100, 250}) {
    if (scale > max_scale) continue;
    std::printf("running scale %dx (%d jobs / %d nodes / %d cells)...\n",
                scale, 48 * scale, 60 * scale, CellsForScale(scale));
    std::fflush(stdout);
    runs.push_back(RunScale(scale, window));
  }

  bool all_identical = sequential_parity;
  TablePrinter table({"scale", "jobs", "nodes", "cells", "lanes", "events",
                      "seconds", "events/s", "speedup", "peak RSS",
                      "outcomes"});
  for (const ScaleRun& r : runs) {
    all_identical = all_identical && r.lanes_identical;
    for (const LaneRun& lane : r.lanes) {
      table.AddRow(
          {StrFormat("%dx", r.scale), StrFormat("%d", r.num_jobs),
           StrFormat("%d", r.num_nodes), StrFormat("%d", r.cells),
           StrFormat("%d", lane.lanes),
           StrFormat("%llu", static_cast<unsigned long long>(r.events)),
           StrFormat("%.2f", lane.seconds),
           StrFormat("%.3g", lane.events_per_sec),
           StrFormat("%.2fx", lane.speedup_vs_1),
           StrFormat("%.0f MiB", r.peak_rss_mb),
           r.lanes_identical ? "identical" : "DIVERGED"});
    }
  }
  table.Print();
  std::printf("\nlane-count independence: %s\n",
              all_identical ? "byte-identical outcomes at every width"
                            : "DIVERGED");

  FILE* json = OpenBenchJson("BENCH_fleet_scale.json", "fleet_scale");
  if (json == nullptr) std::exit(1);
  std::fprintf(json, "  \"window_seconds\": %.1f,\n", window);
  std::fprintf(json, "  \"sequential_parity_1cell\": %s,\n",
               sequential_parity ? "true" : "false");
  std::fprintf(json, "  \"lanes_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const ScaleRun& r = runs[i];
    std::fprintf(json,
                 "    {\"scale\": %d, \"jobs\": %d, \"nodes\": %d, "
                 "\"cells\": %d, \"events\": %llu, \"windows\": %llu, "
                 "\"cross_shard_sends\": %llu, \"peak_rss_mb\": %.1f, "
                 "\"shard_runs\": [",
                 r.scale, r.num_jobs, r.num_nodes, r.cells,
                 static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.windows),
                 static_cast<unsigned long long>(r.cross_shard_sends),
                 r.peak_rss_mb);
    for (size_t j = 0; j < r.lanes.size(); ++j) {
      const LaneRun& lane = r.lanes[j];
      std::fprintf(json,
                   "{\"shards\": %d, \"seconds\": %.4f, "
                   "\"events_per_sec\": %.1f, \"speedup_vs_1shard\": %.3f}%s",
                   lane.lanes, lane.seconds, lane.events_per_sec,
                   lane.speedup_vs_1, j + 1 < r.lanes.size() ? ", " : "");
    }
    std::fprintf(json, "]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_fleet_scale.json\n");

  if (!all_identical) std::exit(1);
}

}  // namespace
}  // namespace dlrover

int main(int argc, char** argv) {
  int max_scale = 100;
  if (argc > 1) max_scale = std::atoi(argv[1]);
  dlrover::Run(max_scale);
  return 0;
}
