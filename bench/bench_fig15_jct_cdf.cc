// Reproduces Fig 15: cluster-level JCT distributions before and after
// DLRover-RM, overall and for the two pathological job classes the paper
// calls out. Paper shape:
//   all jobs:                 median JCT -31%, p90 -35.7%;
//   hot-PS jobs (~13%):       median -21%, p90 -28.6%;
//   PS-CPU-starved jobs (~6%): median -57%, p90 -28.7%.
// Also includes the rho ablation for the weighted-greedy priority (Eqn 14).

#include <cstdio>
#include <vector>

#include "brain/objectives.h"
#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sweep.h"

namespace dlrover {
namespace {

Distribution Filtered(const FleetResult& result,
                      const std::function<bool(const FleetJobOutcome&)>& keep) {
  Distribution dist;
  for (const FleetJobOutcome& job : result.jobs) {
    if (job.completed && keep(job)) dist.Add(job.jct);
  }
  return dist;
}

void PrintDelta(const char* label, const Distribution& before,
                const Distribution& after, double paper_median,
                double paper_p90) {
  if (before.count() < 3 || after.count() < 3) {
    std::printf("%-24s insufficient samples (%zu before / %zu after)\n",
                label, before.count(), after.count());
    return;
  }
  std::printf(
      "%-24s median %s -> %s (%+.1f%%; paper %.1f%%)   p90 %s -> %s "
      "(%+.1f%%; paper %.1f%%)\n",
      label, FormatDuration(before.Median()).c_str(),
      FormatDuration(after.Median()).c_str(),
      (after.Median() / before.Median() - 1.0) * 100.0, paper_median,
      FormatDuration(before.Percentile(90)).c_str(),
      FormatDuration(after.Percentile(90)).c_str(),
      (after.Percentile(90) / before.Percentile(90) - 1.0) * 100.0,
      paper_p90);
}

void Run() {
  PrintBanner("Fig 15: cluster-level JCT, w/o vs w/ DLRover-RM");
  FleetScenario scenario;
  scenario.workload.num_jobs = 72;
  scenario.workload.arrival_span = Hours(10);
  scenario.horizon = Hours(40);
  scenario.failures.daily_straggler_rate = 0.25;
  scenario.seed = 77;

  // Before/after fleets are independent traces: sweep both at once.
  std::vector<FleetScenario> scenarios(2, scenario);
  scenarios[0].dlrover_fraction = 0.0;
  scenarios[1].dlrover_fraction = 1.0;
  const std::vector<FleetResult> swept = RunFleetSweep(scenarios);
  const FleetResult& before = swept[0];
  const FleetResult& after = swept[1];

  auto all = [](const FleetJobOutcome&) { return true; };
  auto hot = [](const FleetJobOutcome& job) { return job.hot_ps; };
  auto starved = [](const FleetJobOutcome& job) {
    return job.misconfig == MisconfigKind::kStarvedPsCpu;
  };
  PrintDelta("all jobs", Filtered(before, all), Filtered(after, all), -31.0,
             -35.7);
  PrintDelta("hot-PS jobs", Filtered(before, hot), Filtered(after, hot),
             -21.0, -28.6);
  PrintDelta("PS-CPU-starved jobs", Filtered(before, starved),
             Filtered(after, starved), -57.0, -28.7);

  PrintBanner("JCT CDF (completed jobs, minutes)");
  TablePrinter cdf({"percentile", "w/o DLRover", "w/ DLRover"});
  const Distribution b = Filtered(before, all);
  const Distribution a = Filtered(after, all);
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    cdf.AddRow({StrFormat("p%.0f", pct),
                FormatDuration(b.Percentile(pct)),
                FormatDuration(a.Percentile(pct))});
  }
  cdf.Print();

  PrintBanner("ablation: weighted-greedy priority exponent rho (Eqn 14)");
  // WG(A) ranks jobs by remaining time; sweep rho and show how the weight
  // separates a short job from a long one.
  TablePrinter rho_table({"rho", "WG(short 10min)", "WG(long 3h)",
                          "short/long ratio"});
  for (double rho : {0.0, 1.0, 2.5, 4.0}) {
    WeightOptions options;
    options.rho = rho;
    const double short_weight = PriorityWeight(600.0 * 50000.0, 50000.0,
                                               options);
    const double long_weight =
        PriorityWeight(3.0 * 3600.0 * 50000.0, 50000.0, options);
    rho_table.AddRow({StrFormat("%.1f", rho),
                      StrFormat("%.3g", short_weight),
                      StrFormat("%.3g", long_weight),
                      StrFormat("%.3g", short_weight / long_weight)});
  }
  rho_table.Print();
  std::printf("\nAntGroup uses rho=2.5: short jobs finish first and release "
              "resources.\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
