// Sweep-engine scaling benchmark: runs the Fig 7-shaped 36-scenario grid
// (3 models x 4 schedulers x 3 seeds) through the SweepEngine at 1, 2, 4,
// and hardware_concurrency threads, verifying along the way that every
// thread count reproduces the 1-thread results bit-for-bit. Results land in
// BENCH_sweep_scaling.json: wall-clock seconds, simulator events/sec
// (summed over scenarios), and speedup vs the 1-thread sweep, alongside
// hardware_threads so single-core CI boxes are interpretable (speedup ~1x
// there is expected, not a regression).

#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sweep.h"

namespace dlrover {
namespace {

struct RunStats {
  size_t threads = 0;
  double seconds = 0.0;
  double events_per_sec = 0.0;
  double speedup = 1.0;
};

std::vector<SingleJobScenario> BuildGrid() {
  std::vector<SingleJobScenario> scenarios;
  for (ModelKind model :
       {ModelKind::kWideDeep, ModelKind::kXDeepFm, ModelKind::kDcn}) {
    for (SchedulerKind scheduler :
         {SchedulerKind::kDlrover, SchedulerKind::kEs, SchedulerKind::kOptimus,
          SchedulerKind::kManualTuned}) {
      for (uint64_t seed : {3ull, 7ull, 21ull}) {
        SingleJobScenario scenario;
        scenario.model = model;
        scenario.scheduler = scheduler;
        scenario.seed = seed;
        scenarios.push_back(scenario);
      }
    }
  }
  return scenarios;
}

bool SameResults(const std::vector<SingleJobResult>& a,
                 const std::vector<SingleJobResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].jct != b[i].jct || a[i].final_state != b[i].final_state ||
        !(a[i].final_config == b[i].final_config) ||
        a[i].executed_events != b[i].executed_events ||
        a[i].history.size() != b[i].history.size()) {
      return false;
    }
  }
  return true;
}

void Run() {
  PrintBanner("sweep engine scaling (Fig 7 grid, 36 scenarios)");
  const std::vector<SingleJobScenario> scenarios = BuildGrid();
  const unsigned hardware = std::thread::hardware_concurrency();

  std::set<size_t> thread_counts = {1, 2, 4};
  thread_counts.insert(static_cast<size_t>(hardware));

  std::vector<RunStats> runs;
  std::vector<SingleJobResult> reference;
  bool determinism_ok = true;
  uint64_t total_events = 0;

  for (size_t threads : thread_counts) {
    SweepOptions options;
    options.num_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const std::vector<SingleJobResult> results =
        RunSingleJobSweep(scenarios, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    if (reference.empty()) {
      reference = results;
      total_events = 0;
      for (const SingleJobResult& r : results) total_events += r.executed_events;
    } else if (!SameResults(reference, results)) {
      determinism_ok = false;
    }

    RunStats stats;
    stats.threads = threads;
    stats.seconds = seconds;
    stats.events_per_sec = static_cast<double>(total_events) / seconds;
    stats.speedup = runs.empty() ? 1.0 : runs.front().seconds / seconds;
    runs.push_back(stats);
  }

  TablePrinter table({"threads", "seconds", "events/sec", "speedup vs 1t"});
  for (const RunStats& stats : runs) {
    table.AddRow({StrFormat("%zu", stats.threads),
                  StrFormat("%.3f", stats.seconds),
                  StrFormat("%.3g", stats.events_per_sec),
                  StrFormat("%.2fx", stats.speedup)});
  }
  table.Print();
  std::printf("\nhardware threads: %u   simulator events per sweep: %llu   "
              "determinism across thread counts: %s\n",
              hardware, static_cast<unsigned long long>(total_events),
              determinism_ok ? "ok" : "FAILED");

  FILE* json = OpenBenchJson("BENCH_sweep_scaling.json", "sweep_scaling");
  if (json == nullptr) std::exit(1);
  std::fprintf(json, "  \"num_scenarios\": %zu,\n", scenarios.size());
  std::fprintf(json, "  \"events_per_sweep\": %llu,\n",
               static_cast<unsigned long long>(total_events));
  std::fprintf(json, "  \"determinism_ok\": %s,\n",
               determinism_ok ? "true" : "false");
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(json,
                 "    {\"threads\": %zu, \"seconds\": %.6f, "
                 "\"events_per_sec\": %.1f, \"speedup_vs_1thread\": %.3f}%s\n",
                 runs[i].threads, runs[i].seconds, runs[i].events_per_sec,
                 runs[i].speedup, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_sweep_scaling.json\n");

  if (!determinism_ok) std::exit(1);
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
