// Reproduces Table 1: DLRM training cost, CPU-only vs CPU-GPU hybrid.
// The paper trains Wide&Deep and DeepFM on AWS and reports that the hybrid
// runs are faster in wall clock but train fewer samples per dollar, with
// GPU utilisation under 4% (lookups and host<->device transfers starve the
// GPU). We reproduce the table with an analytic cost model driven by the
// published stall fractions (see DESIGN.md for the substitution note).

#include <cstdio>

#include "harness/reporting.h"
#include "ps/iteration_model.h"
#include "ps/model_profile.h"

namespace dlrover {
namespace {

struct DeviceRun {
  const char* device;
  double hours;
  double price_per_hour;
  double cpu_util;
  double gpu_util;  // < 0: no GPU
};

void Run() {
  PrintBanner("Table 1: CPU-only vs CPU-GPU hybrid training cost");
  // AWS on-demand prices (as in the paper's setup): a CPU instance at
  // $0.53/h vs a GPU instance at $3.59/h.
  const double cpu_price = 0.53;
  const double hybrid_price = 3.59;
  const double total_samples = 10.0e6;  // single-node AWS-scale run

  EnvironmentProfile env;
  TablePrinter table({"model", "device", "time", "unit price", "samples/$",
                      "CPU util", "GPU util"});

  for (ModelKind kind : {ModelKind::kWideDeep, ModelKind::kXDeepFm}) {
    const ModelProfile profile = GetModelProfile(kind);
    // Single-node training, as in the paper's AWS comparison.
    JobConfig config;
    config.num_workers = 1;
    config.num_ps = 1;
    config.worker_cpu = 8.0;
    config.ps_cpu = 4.0;
    const IterationBreakdown iter =
        ComputeHealthyIteration(profile, env, 512, config);
    const double cpu_throughput = ThroughputSamplesPerSec(iter, 512, 1);
    const double cpu_hours = total_samples / cpu_throughput / 3600.0;
    const double cpu_util = iter.t_grad / iter.Total();

    // Hybrid: the dense part moves to the GPU (~12x faster math), but each
    // iteration still pays the embedding lookups on CPUs plus host<->device
    // embedding transfers — the paper cites up to 22% of training time for
    // transfers and >30% for lookups. The GPU is busy only during the
    // (now tiny) dense compute.
    const double gpu_speedup = 12.0;
    const double t_dense_gpu = iter.t_grad / gpu_speedup;
    const double t_transfer = 0.22 * iter.Total();
    const double t_hybrid =
        t_dense_gpu + t_transfer + iter.t_emb + iter.t_upd + iter.t_sync;
    const double hybrid_throughput = 512.0 / t_hybrid;
    const double hybrid_hours = total_samples / hybrid_throughput / 3600.0;
    const double gpu_util = t_dense_gpu / t_hybrid;
    const double hybrid_cpu_util =
        (iter.t_emb + iter.t_upd + 0.3 * t_transfer) / t_hybrid;

    const char* model_name =
        kind == ModelKind::kWideDeep ? "Wide&Deep" : "DeepFM";
    table.AddRow({model_name, "CPU", StrFormat("%.2fh", cpu_hours),
                  StrFormat("%.2fusd/h", cpu_price),
                  StrFormat("%.1fm/usd",
                            total_samples / (cpu_hours * cpu_price) / 1e6),
                  FormatPercent(cpu_util), "/"});
    table.AddRow({model_name, "Hybrid", StrFormat("%.2fh", hybrid_hours),
                  StrFormat("%.2fusd/h", hybrid_price),
                  StrFormat("%.1fm/usd",
                            total_samples / (hybrid_hours * hybrid_price) / 1e6),
                  FormatPercent(hybrid_cpu_util), FormatPercent(gpu_util)});
  }
  table.Print();
  std::printf(
      "\nshape check: hybrid is faster in wall clock but trains fewer "
      "samples per dollar; GPU utilisation stays in the low single digits "
      "(paper: <=4%%).\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
