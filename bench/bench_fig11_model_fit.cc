// Reproduces Fig 11: the throughput prediction model (Eqns 1-6) fitted with
// NNLS against sampled training runs at varying (w, p, cpu_w, cpu_p). The
// paper shows the fitted curves tracking the measured points closely and
// reports the fitted coefficients. We sample the simulator's ground truth
// (with noise), fit, report the coefficients, R^2/RMSLE, and an ablation:
// the same fit *without* the embedding-lookup term (what a conventional
// scheduler like Optimus models).

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "harness/reporting.h"
#include "perfmodel/throughput_model.h"
#include "ps/iteration_model.h"
#include "ps/model_profile.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner("Fig 11: throughput model fit (NNLS)");
  const ModelProfile profile = GetModelProfile(ModelKind::kWideDeep);
  const EnvironmentProfile env;
  const uint64_t batch = 512;
  Rng rng(42);

  // Sample iteration times across the configuration grid, with the same
  // multiplicative noise the simulator applies.
  ThroughputModel model(profile.dense_param_bytes, profile.embedding_dim,
                        env.network_bandwidth);
  ThroughputModel blind(profile.dense_param_bytes, /*embedding_dim=*/0,
                        env.network_bandwidth);
  ModelFitter fitter(model);
  ModelFitter blind_fitter(blind);
  for (int w : {4, 8, 12, 16, 20, 28, 36}) {
    for (int p : {1, 2, 4, 6, 8}) {
      for (double lw : {4.0, 8.0, 12.0}) {
        for (double lp : {2.0, 4.0, 8.0}) {
          JobConfig config;
          config.num_workers = w;
          config.num_ps = p;
          config.worker_cpu = lw;
          config.ps_cpu = lp;
          const double truth =
              ComputeHealthyIteration(profile, env, batch, config).Total();
          PerfObservation obs;
          obs.batch_size = batch;
          obs.workers = w;
          obs.ps = p;
          obs.worker_cpu = lw;
          obs.ps_cpu = lp;
          obs.iter_time = truth * rng.LogNormal(1.0, env.timing_noise_sigma);
          fitter.AddObservation(obs);
          blind_fitter.AddObservation(obs);
        }
      }
    }
  }

  const auto params = fitter.Fit();
  const auto blind_params = blind_fitter.Fit();
  if (!params.ok() || !blind_params.ok()) {
    std::printf("fit failed: %s\n", params.status().ToString().c_str());
    return;
  }
  std::printf("fitted: %s\n", params->ToString().c_str());
  std::printf("truth:  {a_grad=%.4g, a_upd=%.4g, a_sync=%.4g, a_emb=%.4g, "
              "beta=%.4g}\n",
              profile.alpha_grad, profile.alpha_upd,
              profile.alpha_sync / env.network_bandwidth,
              profile.alpha_emb,
              profile.beta_grad + profile.beta_upd + profile.beta_sync +
                  profile.beta_emb);
  std::printf("fit quality: R^2=%.4f RMSLE=%.4f\n",
              fitter.EvaluateRSquared(*params),
              fitter.EvaluateRmsle(*params));
  std::printf("lookup-blind ablation (no Eqn 5 term): R^2=%.4f RMSLE=%.4f\n",
              blind_fitter.EvaluateRSquared(*blind_params),
              blind_fitter.EvaluateRmsle(*blind_params));

  // Fig 11's curves: predicted vs measured throughput while sweeping one
  // variable at a time.
  PrintBanner("predicted vs measured throughput (samples/s)");
  TablePrinter table({"sweep", "value", "measured", "predicted", "error"});
  auto sweep = [&](const char* name, JobConfig base,
                   const std::vector<double>& values, int which) {
    for (double v : values) {
      JobConfig config = base;
      if (which == 0) config.num_workers = static_cast<int>(v);
      if (which == 1) config.num_ps = static_cast<int>(v);
      if (which == 2) config.worker_cpu = v;
      if (which == 3) config.ps_cpu = v;
      const double truth_iter =
          ComputeHealthyIteration(profile, env, batch, config).Total() *
          rng.LogNormal(1.0, env.timing_noise_sigma);
      const double measured =
          config.num_workers * static_cast<double>(batch) / truth_iter;
      const double predicted =
          model.PredictThroughput(*params, batch, config);
      table.AddRow({name, StrFormat("%.0f", v), StrFormat("%.0f", measured),
                    StrFormat("%.0f", predicted),
                    StrFormat("%+.1f%%",
                              (predicted / measured - 1.0) * 100.0)});
    }
  };
  JobConfig base;
  base.num_workers = 16;
  base.num_ps = 4;
  base.worker_cpu = 8.0;
  base.ps_cpu = 4.0;
  sweep("workers", base, {4, 8, 16, 24, 32, 40}, 0);
  sweep("ps", base, {1, 2, 4, 6, 8}, 1);
  sweep("cpu_w", base, {2, 4, 8, 12, 16}, 2);
  sweep("cpu_p", base, {2, 4, 8, 12}, 3);
  table.Print();
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
