// Reproduces Fig 14: the 12-month progressive migration of the production
// fleet to DLRover-RM. As the DLRover share of jobs grows from 0% to 90%,
// worker/PS CPU utilisation, memory utilisation, and job completion rate
// all climb. Paper endpoints:
//   worker CPU util 19% -> 40%, PS CPU util 13% -> 41.4%;
//   worker mem util 15.2% -> 46.8%, PS mem util 13.8% -> 31.1%;
//   JCR 84% -> 95% (jobs < 100 CPUs) and 67% -> 87% (jobs >= 100 CPUs).

#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sweep.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner("Fig 14: progressive fleet migration to DLRover-RM");
  TablePrinter table({"month", "dlrover share", "worker CPU", "ps CPU",
                      "worker MEM", "ps MEM", "JCR small", "JCR large"});

  // Seven months of fleet simulation, each an independent trace: sweep
  // them in parallel (this is the slowest figure of the suite).
  const int months = 7;
  std::vector<FleetScenario> scenarios;
  for (int month = 0; month < months; ++month) {
    FleetScenario scenario;
    scenario.dlrover_fraction =
        0.9 * static_cast<double>(month) / static_cast<double>(months - 1);
    scenario.workload.num_jobs = 56;
    scenario.workload.arrival_span = Hours(9);
    scenario.horizon = Hours(36);
    // Compressed failure exposure (jobs here are ~1 h vs many hours in
    // production; see EXPERIMENTS.md).
    scenario.failures.daily_pod_failure_rate = 0.8;
    scenario.failures.daily_straggler_rate = 0.4;
    scenario.seed = 400 + static_cast<uint64_t>(month);
    scenarios.push_back(scenario);
  }
  const std::vector<FleetResult> results = RunFleetSweep(scenarios);

  for (int month = 0; month < months; ++month) {
    const double fraction = scenarios[static_cast<size_t>(month)].dlrover_fraction;
    const FleetResult& result = results[static_cast<size_t>(month)];

    RunningStat wcpu, pcpu, wmem, pmem;
    int small_total = 0, small_done = 0, big_total = 0, big_done = 0;
    for (const FleetJobOutcome& job : result.jobs) {
      if (job.avg_worker_cpu_util > 0.0) {
        wcpu.Add(job.avg_worker_cpu_util);
        pcpu.Add(job.avg_ps_cpu_util);
        wmem.Add(job.avg_worker_mem_util);
        pmem.Add(job.avg_ps_mem_util);
      }
      if (job.max_workers_quota < 20) {
        ++small_total;
        if (job.completed) ++small_done;
      } else {
        ++big_total;
        if (job.completed) ++big_done;
      }
    }
    table.AddRow(
        {StrFormat("%d", month + 1), FormatPercent(fraction),
         FormatPercent(wcpu.mean()), FormatPercent(pcpu.mean()),
         FormatPercent(wmem.mean()), FormatPercent(pmem.mean()),
         small_total > 0
             ? FormatPercent(static_cast<double>(small_done) / small_total)
             : "-",
         big_total > 0
             ? FormatPercent(static_cast<double>(big_done) / big_total)
             : "-"});
  }
  table.Print();
  std::printf(
      "\npaper endpoints: worker/PS CPU 19/13%% -> 40/41.4%%; worker/PS mem "
      "15.2/13.8%% -> 46.8/31.1%%; JCR 84->95%% (<100 CPU), 67->87%% "
      "(>=100 CPU).\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
