// Reproduces Fig 10 (auto-scaling ablation): training throughput over time
// when jobs are cold-started (no warm-starting) and schedulers adjust
// resources every 3 minutes. The paper's shape: DLRover-RM climbs to high
// throughput (e.g., ~250 steps/s for Model-X) within ~12 minutes while ES
// and Optimus are still at a fraction of that.

#include <cstdio>
#include <map>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sweep.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner("Fig 10: cold-start throughput over time (steps/s)");
  const std::vector<SchedulerKind> schedulers = {
      SchedulerKind::kDlrover, SchedulerKind::kEs, SchedulerKind::kOptimus};
  const std::vector<ModelKind> models = {
      ModelKind::kWideDeep, ModelKind::kXDeepFm, ModelKind::kDcn};

  // All nine model x scheduler runs are independent: sweep them at once.
  std::vector<SingleJobScenario> scenarios;
  for (ModelKind kind : models) {
    for (SchedulerKind scheduler : schedulers) {
      SingleJobScenario scenario;
      scenario.scheduler = scheduler;
      scenario.model = kind;
      scenario.total_steps = 200000;
      scenario.warm_start = false;  // cold start isolates stage 2
      scenario.seed = 5;
      scenarios.push_back(scenario);
    }
  }
  const std::vector<SingleJobResult> swept = RunSingleJobSweep(scenarios);

  size_t index = 0;
  for (ModelKind kind : models) {
    std::map<SchedulerKind, SingleJobResult> results;
    for (SchedulerKind scheduler : schedulers) {
      results[scheduler] = swept[index++];
    }

    std::printf("\n-- %s --\n", ModelKindName(kind).c_str());
    TablePrinter table({"minute", "DLRover-RM", "ES", "Optimus"});
    const uint64_t batch = 512;
    for (double minute = 2.0; minute <= 40.0; minute += 2.0) {
      std::vector<std::string> row = {StrFormat("%.0f", minute)};
      for (SchedulerKind scheduler : schedulers) {
        // steps/s = samples/s / batch, averaged around this minute.
        const auto& history = results[scheduler].history;
        double value = 0.0;
        int count = 0;
        for (const ThroughputSample& sample : history) {
          if (sample.time >= Minutes(minute - 1.5) &&
              sample.time <= Minutes(minute + 1.5)) {
            value += sample.samples_per_sec / static_cast<double>(batch);
            ++count;
          }
        }
        row.push_back(count > 0 ? StrFormat("%.0f", value / count) : "-");
      }
      table.AddRow(row);
    }
    table.Print();
    for (SchedulerKind scheduler : schedulers) {
      std::printf("%-12s JCT %s\n", SchedulerKindName(scheduler).c_str(),
                  FormatDuration(results[scheduler].jct).c_str());
    }
  }
  std::printf(
      "\nshape check: DLRover-RM reaches high steps/s first (its "
      "lookup-aware model scales PSes, not just workers).\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
