// Fault-tolerance benchmark (Table-4 style, but for the threaded training
// runtime): the same seeded chaos schedules — worker crashes before/after
// push, stalls, lost shard reports, torn checkpoint writes, PS failures —
// are replayed against two arms:
//
//   unprotected:  fault tolerance off, no end-of-run drain. Crashed
//                 workers take their shards to the grave; lost work stays
//                 lost.
//   protected:    supervisor on — heartbeat-driven fencing + reclamation,
//                 periodic checkpoints, restore-on-PS-loss.
//
// Reported per chaos seed: completion rate (committed / scheduled),
// goodput (useful samples per wall-clock second), and the exactly-once
// audit. The protected arm must complete everything exactly once and land
// within tolerance of an uninterrupted reference run; the gap between the
// arms is the work the supervisor saves. Written to
// BENCH_fault_tolerance.json.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dlrm/async_trainer.h"
#include "elastic/chaos.h"
#include "harness/reporting.h"

namespace dlrover {
namespace {

constexpr uint64_t kTotalBatches = 600;
constexpr uint64_t kBatchSize = 64;

MiniDlrmConfig BenchModel() {
  MiniDlrmConfig config;
  config.arch = ModelKind::kWideDeep;
  config.emb_dim = 6;
  config.hash_buckets = 1024;
  config.mlp_hidden = {16, 8};
  config.seed = 5;
  return config;
}

AsyncTrainerOptions BenchOptions() {
  AsyncTrainerOptions options;
  options.num_workers = 6;
  options.batch_size = kBatchSize;
  options.total_batches = kTotalBatches;
  options.learning_rate = 0.12;
  options.shard_batches = 12;
  options.eval_every_batches = 1 << 30;  // final eval only
  options.seed = 17;
  options.exec_mode = ExecMode::kThreads;
  options.num_threads = 4;
  return options;
}

struct ArmResult {
  std::string arm;
  uint64_t seed = 0;
  uint64_t committed = 0;
  uint64_t skipped = 0;
  uint64_t duplicated = 0;
  bool exactly_once = false;
  double seconds = 0.0;
  double goodput = 0.0;  // useful samples / wall second
  double final_logloss = 0.0;
  double final_auc = 0.0;
  size_t faults_fired = 0;
  FaultToleranceStats ft;
};

ArmResult RunArm(const std::string& arm, uint64_t seed, ChaosInjector* chaos,
                 bool protect, const CriteoSynth& data) {
  MiniDlrm model(BenchModel());
  AsyncTrainerOptions options = BenchOptions();
  options.chaos = chaos;
  if (protect) {
    options.fault_tolerance.enabled = true;
    options.fault_tolerance.checkpoint_every_batches = 96;
    options.fault_tolerance.heartbeat_timeout_ms = 250.0;
    options.fault_tolerance.supervisor_poll_ms = 1.0;
  } else if (chaos != nullptr) {
    options.drain_remainder = false;  // lost work stays lost
  }
  AsyncPsTrainer trainer(&model, &data, options);
  const auto start = std::chrono::steady_clock::now();
  const TrainResult result = trainer.Run();
  const auto stop = std::chrono::steady_clock::now();

  ArmResult out;
  out.arm = arm;
  out.seed = seed;
  out.committed = result.batches_committed;
  out.skipped = result.batches_skipped;
  out.duplicated = result.batches_duplicated;
  out.exactly_once = result.batches_duplicated == 0 &&
                     result.batches_skipped == 0 &&
                     result.batches_committed == kTotalBatches;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  out.goodput = static_cast<double>(result.batches_committed) *
                static_cast<double>(kBatchSize) / out.seconds;
  out.final_logloss = result.final_logloss;
  out.final_auc = result.final_auc;
  out.faults_fired = chaos != nullptr ? chaos->fired().size() : 0;
  out.ft = result.ft;
  return out;
}

void Run() {
  PrintBanner("fault tolerance: completion & goodput under seeded chaos");
  CriteoSynth data(99);

  // Warm-up, then the uninterrupted reference: the quality target the
  // protected arm must match and the goodput ceiling chaos eats into.
  RunArm("warmup", 0, nullptr, false, data);
  const ArmResult reference = RunArm("reference", 0, nullptr, false, data);

  std::vector<ArmResult> runs;
  const std::vector<uint64_t> seeds = {1, 2, 3, 4, 5};
  for (uint64_t seed : seeds) {
    ChaosScheduleOptions schedule;
    schedule.seed = seed;
    schedule.total_batches = kTotalBatches;
    {
      ChaosInjector chaos = ChaosInjector::FromSeed(schedule);
      runs.push_back(RunArm("unprotected", seed, &chaos, false, data));
    }
    {
      ChaosInjector chaos = ChaosInjector::FromSeed(schedule);
      runs.push_back(RunArm("protected", seed, &chaos, true, data));
    }
  }

  TablePrinter table({"seed", "arm", "committed", "completion", "goodput",
                      "exactly-once", "|dlogloss|", "restores", "fenced"});
  double off_completion = 0.0, on_completion = 0.0;
  double off_goodput = 0.0, on_goodput = 0.0;
  int on_exactly_once = 0;
  for (const ArmResult& r : runs) {
    const double completion =
        static_cast<double>(r.committed) / static_cast<double>(kTotalBatches);
    const double dlogloss = std::fabs(r.final_logloss - reference.final_logloss);
    table.AddRow({StrFormat("%llu", static_cast<unsigned long long>(r.seed)),
                  r.arm,
                  StrFormat("%llu/%llu",
                            static_cast<unsigned long long>(r.committed),
                            static_cast<unsigned long long>(kTotalBatches)),
                  FormatPercent(completion), StrFormat("%.0f", r.goodput),
                  r.exactly_once ? "yes" : "NO",
                  StrFormat("%.4f", dlogloss),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(r.ft.restores)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        r.ft.workers_fenced))});
    if (r.arm == "protected") {
      on_completion += completion;
      on_goodput += r.goodput;
      on_exactly_once += r.exactly_once ? 1 : 0;
    } else {
      off_completion += completion;
      off_goodput += r.goodput;
    }
  }
  table.Print();
  const double n = static_cast<double>(seeds.size());
  std::printf(
      "\nreference (no chaos): goodput %.0f samples/s, logloss %.4f, "
      "auc %.4f\nmean completion: unprotected %s, protected %s; "
      "exactly-once %d/%d protected runs.\n",
      reference.goodput, reference.final_logloss, reference.final_auc,
      FormatPercent(off_completion / n).c_str(),
      FormatPercent(on_completion / n).c_str(), on_exactly_once,
      static_cast<int>(seeds.size()));

  FILE* json =
      OpenBenchJson("BENCH_fault_tolerance.json", "fault_tolerance");
  if (json == nullptr) return;
  std::fprintf(json, "  \"total_batches\": %llu,\n",
               static_cast<unsigned long long>(kTotalBatches));
  std::fprintf(json, "  \"batch_size\": %llu,\n",
               static_cast<unsigned long long>(kBatchSize));
  std::fprintf(json,
               "  \"reference\": {\"goodput\": %.1f, \"final_logloss\": "
               "%.5f, \"final_auc\": %.5f},\n",
               reference.goodput, reference.final_logloss,
               reference.final_auc);
  std::fprintf(json, "  \"mean_completion_unprotected\": %.4f,\n",
               off_completion / n);
  std::fprintf(json, "  \"mean_completion_protected\": %.4f,\n",
               on_completion / n);
  std::fprintf(json, "  \"mean_goodput_unprotected\": %.1f,\n",
               off_goodput / n);
  std::fprintf(json, "  \"mean_goodput_protected\": %.1f,\n", on_goodput / n);
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const ArmResult& r = runs[i];
    std::fprintf(
        json,
        "    {\"seed\": %llu, \"arm\": \"%s\", \"committed\": %llu, "
        "\"skipped\": %llu, \"duplicated\": %llu, \"exactly_once\": %s, "
        "\"seconds\": %.4f, \"goodput\": %.1f, \"final_logloss\": %.5f, "
        "\"final_auc\": %.5f, \"faults_fired\": %zu, "
        "\"checkpoints_taken\": %llu, \"checkpoint_writes_failed\": %llu, "
        "\"restores\": %llu, \"batches_rolled_back\": %llu, "
        "\"workers_fenced\": %llu, \"workers_replaced\": %llu, "
        "\"shards_reclaimed\": %llu, \"lost_reports_reaped\": %llu, "
        "\"stalls_injected\": %llu}%s\n",
        static_cast<unsigned long long>(r.seed), r.arm.c_str(),
        static_cast<unsigned long long>(r.committed),
        static_cast<unsigned long long>(r.skipped),
        static_cast<unsigned long long>(r.duplicated),
        r.exactly_once ? "true" : "false", r.seconds, r.goodput,
        r.final_logloss, r.final_auc, r.faults_fired,
        static_cast<unsigned long long>(r.ft.checkpoints_taken),
        static_cast<unsigned long long>(r.ft.checkpoint_writes_failed),
        static_cast<unsigned long long>(r.ft.restores),
        static_cast<unsigned long long>(r.ft.batches_rolled_back),
        static_cast<unsigned long long>(r.ft.workers_fenced),
        static_cast<unsigned long long>(r.ft.workers_replaced),
        static_cast<unsigned long long>(r.ft.shards_reclaimed),
        static_cast<unsigned long long>(r.ft.lost_reports_reaped),
        static_cast<unsigned long long>(r.ft.stalls_injected),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_fault_tolerance.json\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
