// Component microbenchmarks (google-benchmark): the building blocks whose
// cost determines whether the cluster brain can run its 3-minute rounds over
// thousands of jobs — NNLS fitting, NSGA-II plan generation, the shards
// queue, the event queue, and the mini-DLRM's forward/backward.

#include <benchmark/benchmark.h>

#include "brain/nsga2.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "dlrm/criteo_synth.h"
#include "dlrm/mini_dlrm.h"
#include "elastic/shard_queue.h"
#include "perfmodel/throughput_model.h"
#include "ps/iteration_model.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

void BM_NnlsFit(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  Rng rng(7);
  Matrix a(rows, 5);
  std::vector<double> b(rows);
  std::vector<double> truth = {0.5, 1.2, 0.0, 2.0, 0.3};
  for (size_t i = 0; i < rows; ++i) {
    double y = 0.0;
    for (size_t j = 0; j < 5; ++j) {
      a(i, j) = rng.Uniform(0.0, 2.0);
      y += a(i, j) * truth[j];
    }
    b[i] = y * rng.LogNormal(1.0, 0.02);
  }
  for (auto _ : state) {
    auto solution = NnlsSolve(a, b);
    benchmark::DoNotOptimize(solution);
  }
}
BENCHMARK(BM_NnlsFit)->Arg(64)->Arg(256)->Arg(1024);

void BM_ModelFitterFit(benchmark::State& state) {
  ThroughputModel model(MiB(100), 16, GiBps(1.25));
  ModelFitter fitter(model);
  Rng rng(3);
  const ModelProfile profile = GetModelProfile(ModelKind::kWideDeep);
  const EnvironmentProfile env;
  for (int i = 0; i < 240; ++i) {
    JobConfig config;
    config.num_workers = static_cast<int>(rng.UniformInt(int64_t{4}, int64_t{40}));
    config.num_ps = static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{8}));
    config.worker_cpu = rng.Uniform(2.0, 16.0);
    config.ps_cpu = rng.Uniform(2.0, 8.0);
    PerfObservation obs;
    obs.workers = config.num_workers;
    obs.ps = config.num_ps;
    obs.worker_cpu = config.worker_cpu;
    obs.ps_cpu = config.ps_cpu;
    obs.iter_time =
        ComputeHealthyIteration(profile, env, 512, config).Total();
    fitter.AddObservation(obs);
  }
  for (auto _ : state) {
    auto params = fitter.Fit();
    benchmark::DoNotOptimize(params);
  }
}
BENCHMARK(BM_ModelFitterFit);

void BM_Nsga2PlanSearch(benchmark::State& state) {
  std::vector<DecisionBounds> bounds = {
      {1, 40, true}, {1, 8, true}, {1, 16, true}, {1, 16, true}};
  Nsga2Options options;
  options.population = static_cast<int>(state.range(0));
  options.generations = static_cast<int>(state.range(1));
  auto objective = [](const std::vector<double>& x) {
    const double cost = x[0] * x[2] + x[1] * x[3];
    const double thr = x[0] / (0.1 + 0.01 * x[0] / (x[1] * x[3]) +
                               0.48 / x[2] + 0.2 / x[1]);
    return std::vector<double>{cost, 1.0 / std::max(1.0, thr)};
  };
  for (auto _ : state) {
    Nsga2 nsga2(bounds, objective, options);
    auto front = nsga2.Run();
    benchmark::DoNotOptimize(front);
  }
}
BENCHMARK(BM_Nsga2PlanSearch)->Args({32, 20})->Args({48, 40});

void BM_ShardQueueCycle(benchmark::State& state) {
  for (auto _ : state) {
    ShardQueueOptions options;
    options.total_batches = 200000;
    options.default_shard_batches = 128;
    ShardQueue queue(options);
    while (true) {
      auto shard = queue.NextShard();
      if (!shard.ok()) break;
      benchmark::DoNotOptimize(queue.ReportCompleted(*shard));
    }
  }
}
BENCHMARK(BM_ShardQueueCycle);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 10000; ++i) {
      sim.ScheduleAt(static_cast<double>(i % 977), [] {});
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(sim.executed_events());
  }
}
BENCHMARK(BM_EventQueueThroughput);

void BM_MiniDlrmForwardBackward(benchmark::State& state) {
  MiniDlrmConfig config;
  config.arch = static_cast<ModelKind>(state.range(0));
  config.emb_dim = 8;
  config.hash_buckets = 4096;
  config.mlp_hidden = {32, 16};
  MiniDlrm model(config);
  CriteoSynth data(5);
  const CriteoBatch batch = data.Batch(0, 64);
  const ParamSnapshot snap = model.TakeSnapshot(batch);
  for (auto _ : state) {
    DlrmGradients grads;
    const double loss = model.ForwardBackward(batch, snap, &grads);
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_MiniDlrmForwardBackward)->Arg(0)->Arg(1)->Arg(2);

void BM_IterationModel(benchmark::State& state) {
  const ModelProfile profile = GetModelProfile(ModelKind::kDcn);
  const EnvironmentProfile env;
  JobConfig config;
  config.num_workers = 24;
  config.num_ps = 6;
  const PsGroupState group = PsGroupState::Balanced(6);
  for (auto _ : state) {
    const IterationBreakdown iter =
        ComputeIteration(profile, env, 512, 24, config, 1.0, group);
    benchmark::DoNotOptimize(iter);
  }
}
BENCHMARK(BM_IterationModel);

}  // namespace
}  // namespace dlrover

BENCHMARK_MAIN();
