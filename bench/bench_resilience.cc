// Resilience scorecard: labeled grey-fault campaigns replayed against the
// self-healing control plane, on and off.
//
// Each campaign seeds the failure injector's node-scoped grey faults (flaky,
// degraded, leaking, crash-looping nodes) over a production-like fleet and
// runs three arms:
//
//   clean:        baseline pod-level instability only, no grey faults —
//                 the goodput ceiling the faulted arms are scored against.
//   unprotected:  grey faults on, node-health detection off. Jobs see raw
//                 crash storms, silent slowdowns, and OOM creep.
//   protected:    same faults, ClusterOptions::enable_node_health on —
//                 evidence-based detection, cordon/drain, brain blacklist,
//                 make-before-break migration.
//
// The injector's ground-truth audit log is matched against the detector's
// cordon events to score detection precision/recall, time-to-detect, MTTR
// (fault onset to the node's return to service), and the false-cordon rate;
// fleet goodput (committed batches) gives the retention comparison.
//
// A second, partition campaign grades the control-plane resilience layer:
// heartbeats, shard reports, and scaling plans ride a lossy ControlChannel
// (drops, duplicates, reordering) under injected node partitions, cell
// partitions, and job-master crashes. Its three arms:
//
//   clean:        channel disabled — the direct-call control plane.
//   unprotected:  channel + faults on; retries, fencing, and failover OFF.
//   protected:    same faults; retries + epoch/sequence fencing + master
//                 failover ON.
//
// Scored on goodput retention, zero stale-plan applies, exactly-once shard
// accounting (no job overshoots its step budget), fencing actually
// exercised, and crash/restart balance. Written to BENCH_resilience.json.
// `gate` mode (ctest label perf-smoke/resilience) runs one campaign of each
// and fails unless recall >= 0.9, false-cordon rate <= 0.05, the protected
// grey arm preserves >= 1.5x more of the lost goodput than the unprotected
// arm, and the partition gate below holds.
//
// Usage: bench_resilience [gate]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"

namespace dlrover {
namespace {

// Detection credit window past fault expiry: evidence decays over the EWMA
// half-life, so a cordon shortly after the fault ends is still the detector
// doing its job, not a false positive.
constexpr Duration kDetectSlack = Minutes(10);

// A grey fault only counts as ground truth once it manifested at least this
// many symptoms. The detector is deliberately calibrated not to cordon on
// one or two pod events (that is exactly the background failure process, and
// reacting to it is what the false-cordon metric punishes), so a fault whose
// entire observable footprint stays below the noise floor is undetectable by
// construction, not missed.
constexpr uint64_t kMinTruthSymptoms = 3;

struct Campaign {
  uint64_t seed = 1;
  double flaky = 1.0;
  double degraded = 1.0;
  double leak = 0.9;
  double crashloop = 0.75;
};

FleetScenario BaseScenario(uint64_t seed) {
  FleetScenario scenario;
  scenario.seed = seed * 31 + 7;
  scenario.workload.num_jobs = 48;
  scenario.workload.arrival_span = Hours(8);
  scenario.workload.seed = seed * 131 + 9;
  scenario.horizon = Hours(14);
  scenario.failures.daily_straggler_rate = 0.01;
  // Background load slows whole nodes at once — from the detector's seat
  // that IS node-level degradation, but it has no ground-truth label, so a
  // labeled campaign turns it off to keep the scorecard honest.
  scenario.enable_background = false;
  return scenario;
}

void ArmFaults(FleetScenario* scenario, const Campaign& c) {
  scenario->failures.daily_node_flaky_rate = c.flaky;
  scenario->failures.daily_node_degraded_rate = c.degraded;
  scenario->failures.daily_node_leak_rate = c.leak;
  scenario->failures.daily_node_crashloop_rate = c.crashloop;
}

struct ArmResult {
  std::string arm;
  uint64_t seed = 0;
  uint64_t goodput_batches = 0;
  int completed = 0;
  int jobs = 0;
  uint64_t grey_faults = 0;
  uint64_t cordons = 0;
  uint64_t uncordons = 0;
  int drain_migrations = 0;
  int drain_fallbacks = 0;
  FleetResult fleet;
};

ArmResult RunArm(const std::string& arm, uint64_t seed,
                 const FleetScenario& scenario) {
  ArmResult out;
  out.arm = arm;
  out.seed = seed;
  out.fleet = RunFleet(scenario);
  out.jobs = static_cast<int>(out.fleet.jobs.size());
  out.completed = out.fleet.Completed();
  for (const FleetJobOutcome& job : out.fleet.jobs) {
    out.goodput_batches += job.batches_done;
    out.drain_migrations += job.stats.drain_migrations;
    out.drain_fallbacks += job.stats.drain_fallbacks;
  }
  for (const FaultRecord& f : out.fleet.fault_log) {
    if (f.kind >= FaultKind::kFlakyNode && f.kind <= FaultKind::kCrashLoop) {
      ++out.grey_faults;
    }
  }
  out.cordons = out.fleet.nodes_cordoned;
  out.uncordons = out.fleet.nodes_uncordoned;
  return out;
}

struct DetectionScore {
  int truth = 0;      // grey faults that manifested symptoms
  int detected = 0;   // matched by a cordon in the credit window
  int cordons = 0;    // total cordon events
  int false_cordons = 0;
  double recall = 0.0;
  double precision = 0.0;
  double false_rate = 0.0;
  double ttd_mean = 0.0;   // onset -> cordon, detected faults
  double mttr_mean = 0.0;  // onset -> uncordon (node back in service)
  // Indexed by FaultKind - kFlakyNode.
  int truth_by_kind[4] = {0, 0, 0, 0};
  int detected_by_kind[4] = {0, 0, 0, 0};
};

DetectionScore ScoreDetection(const FleetResult& fleet, Duration horizon) {
  DetectionScore score;
  struct Truth {
    NodeId node;
    SimTime start;
    SimTime end;
    int kind;
  };
  std::vector<Truth> truths;
  for (const FaultRecord& f : fleet.fault_log) {
    if (f.kind < FaultKind::kFlakyNode || f.kind > FaultKind::kCrashLoop ||
        f.symptoms < kMinTruthSymptoms) {
      continue;
    }
    truths.push_back({static_cast<NodeId>(f.target), f.time,
                      f.time + f.duration + kDetectSlack,
                      static_cast<int>(f.kind) -
                          static_cast<int>(FaultKind::kFlakyNode)});
  }
  score.truth = static_cast<int>(truths.size());

  double ttd_sum = 0.0, mttr_sum = 0.0;
  int mttr_n = 0;
  std::vector<uint8_t> cordon_matched;
  std::vector<const NodeHealthEvent*> cordon_events;
  for (const NodeHealthEvent& e : fleet.health_log) {
    if (e.to == NodeHealthState::kCordoned) cordon_events.push_back(&e);
  }
  cordon_matched.assign(cordon_events.size(), 0);
  score.cordons = static_cast<int>(cordon_events.size());

  for (const Truth& t : truths) {
    ++score.truth_by_kind[t.kind];
    const NodeHealthEvent* first = nullptr;
    for (size_t i = 0; i < cordon_events.size(); ++i) {
      const NodeHealthEvent* e = cordon_events[i];
      if (e->node != t.node || e->time < t.start || e->time > t.end) continue;
      cordon_matched[i] = 1;
      if (first == nullptr || e->time < first->time) first = e;
    }
    if (first == nullptr) continue;
    ++score.detected;
    ++score.detected_by_kind[t.kind];
    ttd_sum += first->time - t.start;
    // Return to service: the first uncordon on the node after detection;
    // still-cordoned-at-horizon counts the full remaining window.
    SimTime back = horizon;
    for (const NodeHealthEvent& e : fleet.health_log) {
      if (e.node == t.node && e.time > first->time &&
          e.from == NodeHealthState::kCordoned) {
        back = e.time;
        break;
      }
    }
    mttr_sum += back - t.start;
    ++mttr_n;
  }
  for (size_t i = 0; i < cordon_matched.size(); ++i) {
    if (!cordon_matched[i]) ++score.false_cordons;
  }
  score.recall = score.truth > 0
                     ? static_cast<double>(score.detected) / score.truth
                     : 1.0;
  score.precision =
      score.cordons > 0
          ? 1.0 - static_cast<double>(score.false_cordons) / score.cordons
          : 1.0;
  score.false_rate = 1.0 - score.precision;
  score.ttd_mean = score.detected > 0 ? ttd_sum / score.detected : 0.0;
  score.mttr_mean = mttr_n > 0 ? mttr_sum / mttr_n : 0.0;
  return score;
}

// ---- Partition campaign (control-plane resilience) ----

/// Arm kinds for the partition campaign.
enum class ControlArm : int { kClean = 0, kUnprotected = 1, kProtected = 2 };

FleetScenario PartitionScenario(uint64_t seed, ControlArm arm) {
  FleetScenario scenario = BaseScenario(seed);
  if (arm == ControlArm::kClean) return scenario;  // channel disabled
  scenario.control.enabled = true;
  // Ambient control-plane weather, independent of the injected partitions:
  // a few percent of messages dropped, duplicated, or reordered.
  scenario.control.drop_prob = 0.02;
  scenario.control.duplicate_prob = 0.05;
  scenario.control.reorder_prob = 0.05;
  // Injected control faults: node partitions sever worker shard reports,
  // cell partitions sever brain plans, master crashes exercise failover.
  scenario.failures.daily_node_partition_rate = 1.5;
  scenario.failures.daily_cell_partition_rate = 2.0;
  scenario.failures.daily_master_crash_rate = 0.3;
  if (arm == ControlArm::kUnprotected) {
    scenario.control.retries_enabled = false;
    scenario.control.fencing_enabled = false;
    scenario.control.failover_enabled = false;
  }
  return scenario;
}

struct PartitionScore {
  uint64_t seed = 0;
  double retention_unprot = 1.0;
  double retention_prot = 1.0;
  uint64_t control_faults = 0;
  uint64_t stale_plan_applies_prot = 0;
  uint64_t stale_plan_applies_unprot = 0;
  uint64_t plans_fenced_prot = 0;  // job fences + master gates + epoch fences
  uint64_t retries = 0;
  uint64_t reports_expired = 0;
  uint64_t reports_rejected = 0;
  uint64_t master_crashes = 0;
  uint64_t master_restarts = 0;
  /// Jobs whose committed batches exceed their step budget — the queue's
  /// exactly-once guarantee failing under duplicated delivery. Must be 0.
  int exactly_once_violations = 0;
};

int CountOvershoot(const FleetResult& fleet) {
  int violations = 0;
  for (const FleetJobOutcome& job : fleet.jobs) {
    if (job.batches_done > job.total_steps) ++violations;
  }
  return violations;
}

PartitionScore ScorePartition(uint64_t seed, const ArmResult& clean,
                              const ArmResult& unprot, const ArmResult& prot) {
  PartitionScore score;
  score.seed = seed;
  const double clean_gp = static_cast<double>(clean.goodput_batches);
  score.retention_unprot =
      clean_gp > 0.0
          ? static_cast<double>(unprot.goodput_batches) / clean_gp
          : 1.0;
  score.retention_prot =
      clean_gp > 0.0 ? static_cast<double>(prot.goodput_batches) / clean_gp
                     : 1.0;
  score.control_faults = prot.fleet.control_faults_injected;
  score.stale_plan_applies_prot = prot.fleet.stale_plan_applies +
                                  prot.fleet.control_stats.stale_plan_applies;
  score.stale_plan_applies_unprot =
      unprot.fleet.stale_plan_applies +
      unprot.fleet.control_stats.stale_plan_applies;
  score.plans_fenced_prot = prot.fleet.plans_fenced +
                            prot.fleet.control_stats.plans_fenced_stale +
                            prot.fleet.control_stats.epoch_fenced;
  score.retries = prot.fleet.control_stats.retries;
  score.reports_expired = prot.fleet.shard_reports_expired;
  score.reports_rejected = prot.fleet.shard_reports_rejected;
  score.master_crashes = prot.fleet.control_stats.master_crashes;
  score.master_restarts = prot.fleet.control_stats.master_restarts;
  score.exactly_once_violations =
      CountOvershoot(prot.fleet) + CountOvershoot(unprot.fleet);
  return score;
}

int Run(bool gate) {
  PrintBanner(gate ? "resilience: detection & goodput gate"
                   : "resilience: grey-fault campaigns, self-healing on/off");
  const std::vector<uint64_t> seeds = gate ? std::vector<uint64_t>{1}
                                           : std::vector<uint64_t>{1, 2};

  std::vector<ArmResult> runs;
  std::vector<DetectionScore> scores;
  double recovery_ratio_min = 1.0e18;
  double retention_prot_min = 1.0;
  for (uint64_t seed : seeds) {
    Campaign campaign;
    campaign.seed = seed;
    const FleetScenario clean_scenario = BaseScenario(seed);

    FleetScenario faulted = clean_scenario;
    ArmFaults(&faulted, campaign);

    FleetScenario protected_scenario = faulted;
    protected_scenario.cluster.enable_node_health = true;

    std::printf("campaign seed %llu: running 3 arms...\n",
                static_cast<unsigned long long>(seed));
    std::fflush(stdout);
    ArmResult clean = RunArm("clean", seed, clean_scenario);
    ArmResult unprot = RunArm("unprotected", seed, faulted);
    ArmResult prot = RunArm("protected", seed, protected_scenario);

    DetectionScore score =
        ScoreDetection(prot.fleet, clean_scenario.horizon);
    scores.push_back(score);

    const double clean_gp = static_cast<double>(clean.goodput_batches);
    const double lost_unprot =
        clean_gp - static_cast<double>(unprot.goodput_batches);
    const double lost_prot =
        clean_gp - static_cast<double>(prot.goodput_batches);
    // How much of the goodput the faults destroyed does self-healing keep?
    // Ratio of losses: > 1 means the protected arm lost less.
    const double ratio = lost_unprot / std::max(lost_prot, 1.0);
    recovery_ratio_min = std::min(recovery_ratio_min, ratio);
    retention_prot_min = std::min(
        retention_prot_min,
        clean_gp > 0.0 ? static_cast<double>(prot.goodput_batches) / clean_gp
                       : 1.0);

    runs.push_back(std::move(clean));
    runs.push_back(std::move(unprot));
    runs.push_back(std::move(prot));
  }

  // ---- Partition campaign: the control plane itself under attack ----
  std::vector<ArmResult> partition_runs;
  std::vector<PartitionScore> partition_scores;
  for (uint64_t seed : seeds) {
    std::printf("partition campaign seed %llu: running 3 arms...\n",
                static_cast<unsigned long long>(seed));
    std::fflush(stdout);
    ArmResult clean = RunArm(
        "clean", seed, PartitionScenario(seed, ControlArm::kClean));
    ArmResult unprot = RunArm(
        "unprotected", seed, PartitionScenario(seed, ControlArm::kUnprotected));
    ArmResult prot = RunArm(
        "protected", seed, PartitionScenario(seed, ControlArm::kProtected));
    partition_scores.push_back(ScorePartition(seed, clean, unprot, prot));
    partition_runs.push_back(std::move(clean));
    partition_runs.push_back(std::move(unprot));
    partition_runs.push_back(std::move(prot));
  }

  TablePrinter table({"seed", "arm", "goodput", "retention", "completed",
                      "grey faults", "cordons", "drains", "fallbacks"});
  for (size_t i = 0; i < runs.size(); i += 3) {
    const double clean_gp = static_cast<double>(runs[i].goodput_batches);
    for (size_t k = 0; k < 3; ++k) {
      const ArmResult& r = runs[i + k];
      table.AddRow(
          {StrFormat("%llu", static_cast<unsigned long long>(r.seed)), r.arm,
           StrFormat("%llu", static_cast<unsigned long long>(
                                 r.goodput_batches)),
           FormatPercent(clean_gp > 0.0
                             ? static_cast<double>(r.goodput_batches) /
                                   clean_gp
                             : 1.0),
           StrFormat("%d/%d", r.completed, r.jobs),
           StrFormat("%llu", static_cast<unsigned long long>(r.grey_faults)),
           StrFormat("%llu", static_cast<unsigned long long>(r.cordons)),
           StrFormat("%d", r.drain_migrations),
           StrFormat("%d", r.drain_fallbacks)});
    }
  }
  table.Print();

  double recall_min = 1.0, false_rate_max = 0.0;
  double ttd_sum = 0.0, mttr_sum = 0.0;
  for (const DetectionScore& s : scores) {
    recall_min = std::min(recall_min, s.recall);
    false_rate_max = std::max(false_rate_max, s.false_rate);
    ttd_sum += s.ttd_mean;
    mttr_sum += s.mttr_mean;
    std::printf(
        "detection: %d/%d grey faults cordoned (recall %s), %d/%d cordons "
        "false (rate %s), mean time-to-detect %s, mean MTTR %s\n",
        s.detected, s.truth, FormatPercent(s.recall).c_str(), s.false_cordons,
        s.cordons, FormatPercent(s.false_rate).c_str(),
        FormatDuration(s.ttd_mean).c_str(),
        FormatDuration(s.mttr_mean).c_str());
    std::printf(
        "  by kind: flaky %d/%d, degraded %d/%d, leak %d/%d, crashloop "
        "%d/%d\n",
        s.detected_by_kind[0], s.truth_by_kind[0], s.detected_by_kind[1],
        s.truth_by_kind[1], s.detected_by_kind[2], s.truth_by_kind[2],
        s.detected_by_kind[3], s.truth_by_kind[3]);
  }
  std::printf(
      "goodput: protected arm retains >= %s of clean; loss ratio "
      "unprotected/protected %.2fx\n",
      FormatPercent(retention_prot_min).c_str(), recovery_ratio_min);

  TablePrinter ptable({"seed", "faults", "ret unprot", "ret prot", "stale",
                       "fenced", "retries", "expired", "rejected",
                       "crash/restart", "overshoot"});
  double partition_retention_min = 1.0;
  uint64_t partition_stale_total = 0;
  uint64_t partition_fenced_total = 0;
  int partition_overshoot_total = 0;
  bool failover_balanced = true;
  for (const PartitionScore& s : partition_scores) {
    partition_retention_min =
        std::min(partition_retention_min, s.retention_prot);
    partition_stale_total += s.stale_plan_applies_prot;
    partition_fenced_total += s.plans_fenced_prot;
    partition_overshoot_total += s.exactly_once_violations;
    failover_balanced =
        failover_balanced && s.master_crashes == s.master_restarts;
    ptable.AddRow(
        {StrFormat("%llu", static_cast<unsigned long long>(s.seed)),
         StrFormat("%llu", static_cast<unsigned long long>(s.control_faults)),
         FormatPercent(s.retention_unprot), FormatPercent(s.retention_prot),
         StrFormat("%llu",
                   static_cast<unsigned long long>(s.stale_plan_applies_prot)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(s.plans_fenced_prot)),
         StrFormat("%llu", static_cast<unsigned long long>(s.retries)),
         StrFormat("%llu", static_cast<unsigned long long>(s.reports_expired)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(s.reports_rejected)),
         StrFormat("%llu/%llu",
                   static_cast<unsigned long long>(s.master_crashes),
                   static_cast<unsigned long long>(s.master_restarts)),
         StrFormat("%d", s.exactly_once_violations)});
  }
  std::printf("partition campaign (channel drops/dups/reorder + node & cell "
              "partitions + master crashes):\n");
  ptable.Print();

  FILE* json = OpenBenchJson("BENCH_resilience.json", "resilience");
  if (json != nullptr) {
    std::fprintf(json, "  \"gate_mode\": %s,\n", gate ? "true" : "false");
    std::fprintf(json, "  \"recall_min\": %.4f,\n", recall_min);
    std::fprintf(json, "  \"false_cordon_rate_max\": %.4f,\n", false_rate_max);
    std::fprintf(json, "  \"ttd_mean_s\": %.1f,\n",
                 ttd_sum / static_cast<double>(scores.size()));
    std::fprintf(json, "  \"mttr_mean_s\": %.1f,\n",
                 mttr_sum / static_cast<double>(scores.size()));
    std::fprintf(json, "  \"goodput_retention_protected_min\": %.4f,\n",
                 retention_prot_min);
    std::fprintf(json, "  \"goodput_loss_ratio_min\": %.3f,\n",
                 recovery_ratio_min);
    std::fprintf(json, "  \"arms\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
      const ArmResult& r = runs[i];
      std::fprintf(
          json,
          "    {\"seed\": %llu, \"arm\": \"%s\", \"goodput_batches\": %llu, "
          "\"completed\": %d, \"jobs\": %d, \"grey_faults\": %llu, "
          "\"cordons\": %llu, \"uncordons\": %llu, \"drain_migrations\": %d, "
          "\"drain_fallbacks\": %d}%s\n",
          static_cast<unsigned long long>(r.seed), r.arm.c_str(),
          static_cast<unsigned long long>(r.goodput_batches), r.completed,
          r.jobs, static_cast<unsigned long long>(r.grey_faults),
          static_cast<unsigned long long>(r.cordons),
          static_cast<unsigned long long>(r.uncordons), r.drain_migrations,
          r.drain_fallbacks, i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"detection\": [\n");
    for (size_t i = 0; i < scores.size(); ++i) {
      const DetectionScore& s = scores[i];
      std::fprintf(json,
                   "    {\"truth\": %d, \"detected\": %d, \"cordons\": %d, "
                   "\"false_cordons\": %d, \"recall\": %.4f, \"precision\": "
                   "%.4f, \"ttd_mean_s\": %.1f, \"mttr_mean_s\": %.1f}%s\n",
                   s.truth, s.detected, s.cordons, s.false_cordons, s.recall,
                   s.precision, s.ttd_mean, s.mttr_mean,
                   i + 1 < scores.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"partition_retention_protected_min\": %.4f,\n",
                 partition_retention_min);
    std::fprintf(json, "  \"partition_stale_plan_applies_protected\": %llu,\n",
                 static_cast<unsigned long long>(partition_stale_total));
    std::fprintf(json, "  \"partition_plans_fenced\": %llu,\n",
                 static_cast<unsigned long long>(partition_fenced_total));
    std::fprintf(json, "  \"partition_exactly_once_violations\": %d,\n",
                 partition_overshoot_total);
    std::fprintf(json, "  \"partition_failover_balanced\": %s,\n",
                 failover_balanced ? "true" : "false");
    std::fprintf(json, "  \"partition\": [\n");
    for (size_t i = 0; i < partition_scores.size(); ++i) {
      const PartitionScore& s = partition_scores[i];
      std::fprintf(
          json,
          "    {\"seed\": %llu, \"control_faults\": %llu, "
          "\"retention_unprotected\": %.4f, \"retention_protected\": %.4f, "
          "\"stale_plan_applies_protected\": %llu, "
          "\"stale_plan_applies_unprotected\": %llu, \"plans_fenced\": %llu, "
          "\"retries\": %llu, \"reports_expired\": %llu, "
          "\"reports_rejected\": %llu, \"master_crashes\": %llu, "
          "\"master_restarts\": %llu, \"exactly_once_violations\": %d}%s\n",
          static_cast<unsigned long long>(s.seed),
          static_cast<unsigned long long>(s.control_faults),
          s.retention_unprot, s.retention_prot,
          static_cast<unsigned long long>(s.stale_plan_applies_prot),
          static_cast<unsigned long long>(s.stale_plan_applies_unprot),
          static_cast<unsigned long long>(s.plans_fenced_prot),
          static_cast<unsigned long long>(s.retries),
          static_cast<unsigned long long>(s.reports_expired),
          static_cast<unsigned long long>(s.reports_rejected),
          static_cast<unsigned long long>(s.master_crashes),
          static_cast<unsigned long long>(s.master_restarts),
          s.exactly_once_violations,
          i + 1 < partition_scores.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_resilience.json\n");
  }

  // Scorecard gate: detection must be sharp (recall >= 0.9, false-cordon
  // rate <= 0.05) and self-healing must preserve >= 1.5x more of the
  // fault-destroyed goodput than the unprotected arm.
  const bool grey_ok = recall_min >= 0.90 && false_rate_max <= 0.05 &&
                       recovery_ratio_min >= 1.5;
  // Partition gate: with retries + fencing + failover on, the protected arm
  // must hold >= 90% of the clean arm's goodput, never apply a stale or
  // duplicate plan, keep shard accounting exactly-once, actually exercise
  // its fences, and restart every crashed master.
  const bool partition_ok =
      partition_retention_min >= 0.90 && partition_stale_total == 0 &&
      partition_overshoot_total == 0 && partition_fenced_total > 0 &&
      failover_balanced;
  std::printf(
      "resilience gate (recall >= 0.90, false-cordon <= 0.05, loss ratio >= "
      "1.5): %s\n",
      grey_ok ? "PASS" : "FAIL");
  std::printf(
      "partition gate (retention >= 0.90, stale applies == 0, exactly-once "
      "violations == 0, fences > 0, crashes == restarts): %s\n",
      partition_ok ? "PASS" : "FAIL");
  return grey_ok && partition_ok ? 0 : 1;
}

}  // namespace
}  // namespace dlrover

int main(int argc, char** argv) {
  const bool gate = argc > 1 && std::strcmp(argv[1], "gate") == 0;
  return dlrover::Run(gate);
}
