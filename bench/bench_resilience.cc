// Resilience scorecard: labeled grey-fault campaigns replayed against the
// self-healing control plane, on and off.
//
// Each campaign seeds the failure injector's node-scoped grey faults (flaky,
// degraded, leaking, crash-looping nodes) over a production-like fleet and
// runs three arms:
//
//   clean:        baseline pod-level instability only, no grey faults —
//                 the goodput ceiling the faulted arms are scored against.
//   unprotected:  grey faults on, node-health detection off. Jobs see raw
//                 crash storms, silent slowdowns, and OOM creep.
//   protected:    same faults, ClusterOptions::enable_node_health on —
//                 evidence-based detection, cordon/drain, brain blacklist,
//                 make-before-break migration.
//
// The injector's ground-truth audit log is matched against the detector's
// cordon events to score detection precision/recall, time-to-detect, MTTR
// (fault onset to the node's return to service), and the false-cordon rate;
// fleet goodput (committed batches) gives the retention comparison. Written
// to BENCH_resilience.json. `gate` mode (ctest label perf-smoke/resilience)
// runs one campaign and fails unless recall >= 0.9, false-cordon rate
// <= 0.05, and the protected arm preserves >= 1.5x more of the lost goodput
// than the unprotected arm.
//
// Usage: bench_resilience [gate]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"

namespace dlrover {
namespace {

// Detection credit window past fault expiry: evidence decays over the EWMA
// half-life, so a cordon shortly after the fault ends is still the detector
// doing its job, not a false positive.
constexpr Duration kDetectSlack = Minutes(10);

// A grey fault only counts as ground truth once it manifested at least this
// many symptoms. The detector is deliberately calibrated not to cordon on
// one or two pod events (that is exactly the background failure process, and
// reacting to it is what the false-cordon metric punishes), so a fault whose
// entire observable footprint stays below the noise floor is undetectable by
// construction, not missed.
constexpr uint64_t kMinTruthSymptoms = 3;

struct Campaign {
  uint64_t seed = 1;
  double flaky = 1.0;
  double degraded = 1.0;
  double leak = 0.9;
  double crashloop = 0.75;
};

FleetScenario BaseScenario(uint64_t seed) {
  FleetScenario scenario;
  scenario.seed = seed * 31 + 7;
  scenario.workload.num_jobs = 48;
  scenario.workload.arrival_span = Hours(8);
  scenario.workload.seed = seed * 131 + 9;
  scenario.horizon = Hours(14);
  scenario.failures.daily_straggler_rate = 0.01;
  // Background load slows whole nodes at once — from the detector's seat
  // that IS node-level degradation, but it has no ground-truth label, so a
  // labeled campaign turns it off to keep the scorecard honest.
  scenario.enable_background = false;
  return scenario;
}

void ArmFaults(FleetScenario* scenario, const Campaign& c) {
  scenario->failures.daily_node_flaky_rate = c.flaky;
  scenario->failures.daily_node_degraded_rate = c.degraded;
  scenario->failures.daily_node_leak_rate = c.leak;
  scenario->failures.daily_node_crashloop_rate = c.crashloop;
}

struct ArmResult {
  std::string arm;
  uint64_t seed = 0;
  uint64_t goodput_batches = 0;
  int completed = 0;
  int jobs = 0;
  uint64_t grey_faults = 0;
  uint64_t cordons = 0;
  uint64_t uncordons = 0;
  int drain_migrations = 0;
  int drain_fallbacks = 0;
  FleetResult fleet;
};

ArmResult RunArm(const std::string& arm, uint64_t seed,
                 const FleetScenario& scenario) {
  ArmResult out;
  out.arm = arm;
  out.seed = seed;
  out.fleet = RunFleet(scenario);
  out.jobs = static_cast<int>(out.fleet.jobs.size());
  out.completed = out.fleet.Completed();
  for (const FleetJobOutcome& job : out.fleet.jobs) {
    out.goodput_batches += job.batches_done;
    out.drain_migrations += job.stats.drain_migrations;
    out.drain_fallbacks += job.stats.drain_fallbacks;
  }
  for (const FaultRecord& f : out.fleet.fault_log) {
    if (f.kind >= FaultKind::kFlakyNode) ++out.grey_faults;
  }
  out.cordons = out.fleet.nodes_cordoned;
  out.uncordons = out.fleet.nodes_uncordoned;
  return out;
}

struct DetectionScore {
  int truth = 0;      // grey faults that manifested symptoms
  int detected = 0;   // matched by a cordon in the credit window
  int cordons = 0;    // total cordon events
  int false_cordons = 0;
  double recall = 0.0;
  double precision = 0.0;
  double false_rate = 0.0;
  double ttd_mean = 0.0;   // onset -> cordon, detected faults
  double mttr_mean = 0.0;  // onset -> uncordon (node back in service)
  // Indexed by FaultKind - kFlakyNode.
  int truth_by_kind[4] = {0, 0, 0, 0};
  int detected_by_kind[4] = {0, 0, 0, 0};
};

DetectionScore ScoreDetection(const FleetResult& fleet, Duration horizon) {
  DetectionScore score;
  struct Truth {
    NodeId node;
    SimTime start;
    SimTime end;
    int kind;
  };
  std::vector<Truth> truths;
  for (const FaultRecord& f : fleet.fault_log) {
    if (f.kind < FaultKind::kFlakyNode || f.symptoms < kMinTruthSymptoms) {
      continue;
    }
    truths.push_back({static_cast<NodeId>(f.target), f.time,
                      f.time + f.duration + kDetectSlack,
                      static_cast<int>(f.kind) -
                          static_cast<int>(FaultKind::kFlakyNode)});
  }
  score.truth = static_cast<int>(truths.size());

  double ttd_sum = 0.0, mttr_sum = 0.0;
  int mttr_n = 0;
  std::vector<uint8_t> cordon_matched;
  std::vector<const NodeHealthEvent*> cordon_events;
  for (const NodeHealthEvent& e : fleet.health_log) {
    if (e.to == NodeHealthState::kCordoned) cordon_events.push_back(&e);
  }
  cordon_matched.assign(cordon_events.size(), 0);
  score.cordons = static_cast<int>(cordon_events.size());

  for (const Truth& t : truths) {
    ++score.truth_by_kind[t.kind];
    const NodeHealthEvent* first = nullptr;
    for (size_t i = 0; i < cordon_events.size(); ++i) {
      const NodeHealthEvent* e = cordon_events[i];
      if (e->node != t.node || e->time < t.start || e->time > t.end) continue;
      cordon_matched[i] = 1;
      if (first == nullptr || e->time < first->time) first = e;
    }
    if (first == nullptr) continue;
    ++score.detected;
    ++score.detected_by_kind[t.kind];
    ttd_sum += first->time - t.start;
    // Return to service: the first uncordon on the node after detection;
    // still-cordoned-at-horizon counts the full remaining window.
    SimTime back = horizon;
    for (const NodeHealthEvent& e : fleet.health_log) {
      if (e.node == t.node && e.time > first->time &&
          e.from == NodeHealthState::kCordoned) {
        back = e.time;
        break;
      }
    }
    mttr_sum += back - t.start;
    ++mttr_n;
  }
  for (size_t i = 0; i < cordon_matched.size(); ++i) {
    if (!cordon_matched[i]) ++score.false_cordons;
  }
  score.recall = score.truth > 0
                     ? static_cast<double>(score.detected) / score.truth
                     : 1.0;
  score.precision =
      score.cordons > 0
          ? 1.0 - static_cast<double>(score.false_cordons) / score.cordons
          : 1.0;
  score.false_rate = 1.0 - score.precision;
  score.ttd_mean = score.detected > 0 ? ttd_sum / score.detected : 0.0;
  score.mttr_mean = mttr_n > 0 ? mttr_sum / mttr_n : 0.0;
  return score;
}

int Run(bool gate) {
  PrintBanner(gate ? "resilience: detection & goodput gate"
                   : "resilience: grey-fault campaigns, self-healing on/off");
  const std::vector<uint64_t> seeds = gate ? std::vector<uint64_t>{1}
                                           : std::vector<uint64_t>{1, 2};

  std::vector<ArmResult> runs;
  std::vector<DetectionScore> scores;
  double recovery_ratio_min = 1.0e18;
  double retention_prot_min = 1.0;
  for (uint64_t seed : seeds) {
    Campaign campaign;
    campaign.seed = seed;
    const FleetScenario clean_scenario = BaseScenario(seed);

    FleetScenario faulted = clean_scenario;
    ArmFaults(&faulted, campaign);

    FleetScenario protected_scenario = faulted;
    protected_scenario.cluster.enable_node_health = true;

    std::printf("campaign seed %llu: running 3 arms...\n",
                static_cast<unsigned long long>(seed));
    std::fflush(stdout);
    ArmResult clean = RunArm("clean", seed, clean_scenario);
    ArmResult unprot = RunArm("unprotected", seed, faulted);
    ArmResult prot = RunArm("protected", seed, protected_scenario);

    DetectionScore score =
        ScoreDetection(prot.fleet, clean_scenario.horizon);
    scores.push_back(score);

    const double clean_gp = static_cast<double>(clean.goodput_batches);
    const double lost_unprot =
        clean_gp - static_cast<double>(unprot.goodput_batches);
    const double lost_prot =
        clean_gp - static_cast<double>(prot.goodput_batches);
    // How much of the goodput the faults destroyed does self-healing keep?
    // Ratio of losses: > 1 means the protected arm lost less.
    const double ratio = lost_unprot / std::max(lost_prot, 1.0);
    recovery_ratio_min = std::min(recovery_ratio_min, ratio);
    retention_prot_min = std::min(
        retention_prot_min,
        clean_gp > 0.0 ? static_cast<double>(prot.goodput_batches) / clean_gp
                       : 1.0);

    runs.push_back(std::move(clean));
    runs.push_back(std::move(unprot));
    runs.push_back(std::move(prot));
  }

  TablePrinter table({"seed", "arm", "goodput", "retention", "completed",
                      "grey faults", "cordons", "drains", "fallbacks"});
  for (size_t i = 0; i < runs.size(); i += 3) {
    const double clean_gp = static_cast<double>(runs[i].goodput_batches);
    for (size_t k = 0; k < 3; ++k) {
      const ArmResult& r = runs[i + k];
      table.AddRow(
          {StrFormat("%llu", static_cast<unsigned long long>(r.seed)), r.arm,
           StrFormat("%llu", static_cast<unsigned long long>(
                                 r.goodput_batches)),
           FormatPercent(clean_gp > 0.0
                             ? static_cast<double>(r.goodput_batches) /
                                   clean_gp
                             : 1.0),
           StrFormat("%d/%d", r.completed, r.jobs),
           StrFormat("%llu", static_cast<unsigned long long>(r.grey_faults)),
           StrFormat("%llu", static_cast<unsigned long long>(r.cordons)),
           StrFormat("%d", r.drain_migrations),
           StrFormat("%d", r.drain_fallbacks)});
    }
  }
  table.Print();

  double recall_min = 1.0, false_rate_max = 0.0;
  double ttd_sum = 0.0, mttr_sum = 0.0;
  for (const DetectionScore& s : scores) {
    recall_min = std::min(recall_min, s.recall);
    false_rate_max = std::max(false_rate_max, s.false_rate);
    ttd_sum += s.ttd_mean;
    mttr_sum += s.mttr_mean;
    std::printf(
        "detection: %d/%d grey faults cordoned (recall %s), %d/%d cordons "
        "false (rate %s), mean time-to-detect %s, mean MTTR %s\n",
        s.detected, s.truth, FormatPercent(s.recall).c_str(), s.false_cordons,
        s.cordons, FormatPercent(s.false_rate).c_str(),
        FormatDuration(s.ttd_mean).c_str(),
        FormatDuration(s.mttr_mean).c_str());
    std::printf(
        "  by kind: flaky %d/%d, degraded %d/%d, leak %d/%d, crashloop "
        "%d/%d\n",
        s.detected_by_kind[0], s.truth_by_kind[0], s.detected_by_kind[1],
        s.truth_by_kind[1], s.detected_by_kind[2], s.truth_by_kind[2],
        s.detected_by_kind[3], s.truth_by_kind[3]);
  }
  std::printf(
      "goodput: protected arm retains >= %s of clean; loss ratio "
      "unprotected/protected %.2fx\n",
      FormatPercent(retention_prot_min).c_str(), recovery_ratio_min);

  FILE* json = OpenBenchJson("BENCH_resilience.json", "resilience");
  if (json != nullptr) {
    std::fprintf(json, "  \"gate_mode\": %s,\n", gate ? "true" : "false");
    std::fprintf(json, "  \"recall_min\": %.4f,\n", recall_min);
    std::fprintf(json, "  \"false_cordon_rate_max\": %.4f,\n", false_rate_max);
    std::fprintf(json, "  \"ttd_mean_s\": %.1f,\n",
                 ttd_sum / static_cast<double>(scores.size()));
    std::fprintf(json, "  \"mttr_mean_s\": %.1f,\n",
                 mttr_sum / static_cast<double>(scores.size()));
    std::fprintf(json, "  \"goodput_retention_protected_min\": %.4f,\n",
                 retention_prot_min);
    std::fprintf(json, "  \"goodput_loss_ratio_min\": %.3f,\n",
                 recovery_ratio_min);
    std::fprintf(json, "  \"arms\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
      const ArmResult& r = runs[i];
      std::fprintf(
          json,
          "    {\"seed\": %llu, \"arm\": \"%s\", \"goodput_batches\": %llu, "
          "\"completed\": %d, \"jobs\": %d, \"grey_faults\": %llu, "
          "\"cordons\": %llu, \"uncordons\": %llu, \"drain_migrations\": %d, "
          "\"drain_fallbacks\": %d}%s\n",
          static_cast<unsigned long long>(r.seed), r.arm.c_str(),
          static_cast<unsigned long long>(r.goodput_batches), r.completed,
          r.jobs, static_cast<unsigned long long>(r.grey_faults),
          static_cast<unsigned long long>(r.cordons),
          static_cast<unsigned long long>(r.uncordons), r.drain_migrations,
          r.drain_fallbacks, i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"detection\": [\n");
    for (size_t i = 0; i < scores.size(); ++i) {
      const DetectionScore& s = scores[i];
      std::fprintf(json,
                   "    {\"truth\": %d, \"detected\": %d, \"cordons\": %d, "
                   "\"false_cordons\": %d, \"recall\": %.4f, \"precision\": "
                   "%.4f, \"ttd_mean_s\": %.1f, \"mttr_mean_s\": %.1f}%s\n",
                   s.truth, s.detected, s.cordons, s.false_cordons, s.recall,
                   s.precision, s.ttd_mean, s.mttr_mean,
                   i + 1 < scores.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_resilience.json\n");
  }

  // Scorecard gate: detection must be sharp (recall >= 0.9, false-cordon
  // rate <= 0.05) and self-healing must preserve >= 1.5x more of the
  // fault-destroyed goodput than the unprotected arm.
  const bool ok = recall_min >= 0.90 && false_rate_max <= 0.05 &&
                  recovery_ratio_min >= 1.5;
  std::printf(
      "resilience gate (recall >= 0.90, false-cordon <= 0.05, loss ratio >= "
      "1.5): %s\n",
      ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dlrover

int main(int argc, char** argv) {
  const bool gate = argc > 1 && std::strcmp(argv[1], "gate") == 0;
  return dlrover::Run(gate);
}
