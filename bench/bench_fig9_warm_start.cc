// Reproduces Fig 9 (warm-starting ablation): DLRover-RM's stage-1
// allocation sits close to the configuration the job eventually converges
// to. The paper reports ~92% (workers) / ~85% (PS) accuracy of initial vs
// final configuration, and a 26% reduction in scaling time vs cold start.

#include <cmath>
#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sweep.h"

namespace dlrover {
namespace {

double Accuracy(double initial, double final_value) {
  if (final_value <= 0.0) return 0.0;
  return 1.0 - std::fabs(initial - final_value) / final_value;
}

void Run() {
  PrintBanner("Fig 9: warm-start initial vs final configuration");

  TablePrinter table({"model", "seed", "init w", "final w", "init ps",
                      "final ps", "worker acc", "ps acc"});
  RunningStat worker_acc;
  RunningStat ps_acc;
  RunningStat warm_time_to_stable;
  RunningStat cold_time_to_stable;

  // Warm/cold pairs over three models and three seeds: 18 independent
  // simulations, swept in parallel and consumed in grid order.
  std::vector<SingleJobScenario> scenarios;
  for (ModelKind kind : {ModelKind::kWideDeep, ModelKind::kXDeepFm,
                         ModelKind::kDcn}) {
    for (uint64_t seed : {5ull, 9ull, 13ull}) {
      for (bool warm : {true, false}) {
        SingleJobScenario scenario;
        scenario.scheduler = SchedulerKind::kDlrover;
        scenario.model = kind;
        scenario.total_steps = 200000;
        scenario.warm_start = warm;
        scenario.seed = seed;
        scenarios.push_back(scenario);
      }
    }
  }
  const std::vector<SingleJobResult> results = RunSingleJobSweep(scenarios);

  size_t index = 0;
  for (ModelKind kind : {ModelKind::kWideDeep, ModelKind::kXDeepFm,
                         ModelKind::kDcn}) {
    for (uint64_t seed : {5ull, 9ull, 13ull}) {
      for (bool warm : {true, false}) {
        const SingleJobResult& result = results[index++];
        if (result.final_state != JobState::kCompleted) continue;

        // Scaling time: from first training until the configuration last
        // changed (the tail of the run is stable).
        double last_change = result.stats.first_training_time;
        JobConfig prev = result.history.empty() ? result.final_config
                                                : result.history[0].config;
        for (const ThroughputSample& sample : result.history) {
          if (!(sample.config == prev)) {
            last_change = sample.time;
            prev = sample.config;
          }
        }
        const double scaling_time =
            last_change - result.stats.first_training_time;
        if (warm) {
          warm_time_to_stable.Add(scaling_time);
          const JobConfig initial =
              result.history.empty() ? result.final_config
                                     : result.history[0].config;
          const double wa = Accuracy(initial.num_workers,
                                     result.final_config.num_workers);
          const double pa =
              Accuracy(initial.num_ps, result.final_config.num_ps);
          worker_acc.Add(wa);
          ps_acc.Add(pa);
          table.AddRow({ModelKindName(kind), StrFormat("%llu",
                            static_cast<unsigned long long>(seed)),
                        StrFormat("%d", initial.num_workers),
                        StrFormat("%d", result.final_config.num_workers),
                        StrFormat("%d", initial.num_ps),
                        StrFormat("%d", result.final_config.num_ps),
                        FormatPercent(wa), FormatPercent(pa)});
        } else {
          cold_time_to_stable.Add(scaling_time);
        }
      }
    }
  }
  table.Print();
  std::printf(
      "\nmean accuracy of initial vs final config: workers %.0f%% "
      "(paper ~92%%), PS %.0f%% (paper ~85%%)\n",
      worker_acc.mean() * 100.0, ps_acc.mean() * 100.0);
  if (cold_time_to_stable.mean() > 0.0) {
    std::printf(
        "scaling time (first dispatch -> last plan change): warm %s vs "
        "cold %s  (reduction %.0f%%; paper ~26%%)\n",
        FormatDuration(warm_time_to_stable.mean()).c_str(),
        FormatDuration(cold_time_to_stable.mean()).c_str(),
        (1.0 - warm_time_to_stable.mean() / cold_time_to_stable.mean()) *
            100.0);
  }
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
