// Micro-benchmark for the multi-threaded training runtime: trains the real
// mini-DLRM in ExecMode::kThreads across a deduplicated 1/2/4/8/hw thread
// sweep (plus the deterministic kTicks reference) and reports samples/sec,
// speedup over one thread, scaling efficiency, and the per-phase breakdown
// of where worker time goes — pull (data + snapshot + gather), compute
// (forward/backward), push (sharded gradient application), commit-gate
// wait, state-lock wait, and shard-queue wait. A second sweep arm repeats
// the widths with the SIMD (AVX2/FMA) dense kernels when the CPU has them.
// Results are printed as tables and written to
// BENCH_micro_train_throughput.json, seeding the perf trajectory: future
// PRs append runs and compare.
//
// Scaling is bounded by the hardware the bench runs on — the JSON records
// hardware_threads so a 1-core CI box reporting ~1x is interpretable.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/dense_kernels.h"
#include "dlrm/async_trainer.h"
#include "harness/reporting.h"

namespace dlrover {
namespace {

struct RunResult {
  std::string label;
  std::string kernels;  // "scalar" | "simd"
  int threads = 0;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
  double final_auc = 0.0;
  PhaseBreakdown phases;
};

AsyncTrainerOptions BenchOptions() {
  AsyncTrainerOptions options;
  options.num_workers = 8;
  options.batch_size = 128;
  options.total_batches = 240;
  options.learning_rate = 0.1;
  options.shard_batches = 12;
  options.eval_every_batches = 1 << 30;  // no mid-run evals: pure training
  options.eval_size = 1024;
  options.seed = 11;
  return options;
}

MiniDlrmConfig BenchModel() {
  MiniDlrmConfig config;
  config.arch = ModelKind::kWideDeep;
  config.emb_dim = 8;
  config.hash_buckets = 4096;
  config.mlp_hidden = {64, 32};
  config.seed = 5;
  return config;
}

/// Thread widths for the sweep: {1, 2, 4, 8, hardware_concurrency},
/// deduplicated and sorted, so a 64-core box shows its full headroom and a
/// 2-core box doesn't pretend to sweep 8 distinct widths.
std::vector<int> SweepWidths() {
  std::vector<int> widths = {1, 2, 4, 8};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0) widths.push_back(hw);
  std::sort(widths.begin(), widths.end());
  widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
  return widths;
}

RunResult TimeRun(ExecMode mode, int threads, const CriteoSynth& data) {
  MiniDlrm model(BenchModel());
  AsyncTrainerOptions options = BenchOptions();
  options.exec_mode = mode;
  options.num_threads = threads;
  AsyncPsTrainer trainer(&model, &data, options);
  const auto start = std::chrono::steady_clock::now();
  const TrainResult result = trainer.Run();
  const auto stop = std::chrono::steady_clock::now();

  RunResult out;
  out.kernels =
      ActiveDenseKernelMode() == DenseKernelMode::kSimd ? "simd" : "scalar";
  out.label = mode == ExecMode::kTicks
                  ? "ticks"
                  : StrFormat("threads:%d", threads);
  if (out.kernels == "simd") out.label += "+simd";
  out.threads = threads;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  const double samples = static_cast<double>(result.batches_committed) *
                         static_cast<double>(options.batch_size);
  out.samples_per_sec = samples / out.seconds;
  out.final_auc = result.final_auc;
  out.phases = result.phases;
  return out;
}

void PrintSweepTable(const std::vector<RunResult>& runs, double base) {
  TablePrinter table({"mode", "samples/sec", "speedup", "efficiency",
                      "final AUC"});
  for (const RunResult& r : runs) {
    const double speedup = r.samples_per_sec / base;
    const double eff = r.threads > 0 ? speedup / r.threads : 0.0;
    table.AddRow({r.label, StrFormat("%.0f", r.samples_per_sec),
                  StrFormat("%.2fx", speedup),
                  r.threads > 0 ? FormatPercent(eff) : "-",
                  StrFormat("%.4f", r.final_auc)});
  }
  table.Print();
}

void PrintPhaseTable(const std::vector<RunResult>& runs) {
  // Per-phase share of total worker-busy time: where an added thread's
  // second actually goes. Rising commit-wait/lock-wait shares with width
  // is serialization; flat shares with rising samples/sec is real scaling.
  TablePrinter table({"mode", "pull", "compute", "push", "commit-wait",
                      "lock-wait", "queue-wait/batch"});
  for (const RunResult& r : runs) {
    const double busy = std::max(r.phases.BusySeconds(), 1e-12);
    const double batches =
        std::max(static_cast<double>(r.phases.batches), 1.0);
    table.AddRow({r.label, FormatPercent(r.phases.pull_s / busy),
                  FormatPercent(r.phases.compute_s / busy),
                  FormatPercent(r.phases.push_s / busy),
                  FormatPercent(r.phases.commit_wait_s / busy),
                  FormatPercent(r.phases.lock_wait_s / busy),
                  StrFormat("%.1fus", 1e6 * r.phases.queue_wait_s / batches)});
  }
  table.Print();
}

void WriteRunJson(FILE* json, const RunResult& r, double base, bool last) {
  const double speedup = r.samples_per_sec / base;
  std::fprintf(
      json,
      "    {\"mode\": \"%s\", \"kernels\": \"%s\", \"threads\": %d, "
      "\"seconds\": %.4f, \"samples_per_sec\": %.1f, "
      "\"speedup_vs_1thread\": %.3f, \"efficiency\": %.3f, "
      "\"final_auc\": %.4f,\n"
      "     \"phases\": {\"pull_s\": %.4f, \"compute_s\": %.4f, "
      "\"push_s\": %.4f, \"commit_wait_s\": %.4f, \"lock_wait_s\": %.4f, "
      "\"queue_wait_s\": %.4f, \"batches\": %llu}}%s\n",
      r.label.c_str(), r.kernels.c_str(), r.threads, r.seconds,
      r.samples_per_sec, speedup,
      r.threads > 0 ? speedup / r.threads : 0.0, r.final_auc,
      r.phases.pull_s, r.phases.compute_s, r.phases.push_s,
      r.phases.commit_wait_s, r.phases.lock_wait_s, r.phases.queue_wait_s,
      static_cast<unsigned long long>(r.phases.batches), last ? "" : ",");
}

void Run() {
  PrintBanner("micro: training throughput, tick loop vs real threads");
  CriteoSynth data(31);
  const std::vector<int> widths = SweepWidths();

  // Warm-up: touch the data generator and page in the code paths so the
  // 1-thread baseline is not penalized with cold-start costs.
  TimeRun(ExecMode::kThreads, 1, data);

  std::vector<RunResult> scalar_runs;
  scalar_runs.push_back(TimeRun(ExecMode::kTicks, 0, data));
  for (int threads : widths) {
    scalar_runs.push_back(TimeRun(ExecMode::kThreads, threads, data));
  }
  const double base = scalar_runs[1].samples_per_sec;  // threads:1 reference

  // SIMD arm: same sweep with the AVX2/FMA kernels, when the CPU has them.
  // Opt-in per run and restored after — the scalar kernels stay the
  // bit-identical default everywhere else.
  std::vector<RunResult> simd_runs;
  if (SetDenseKernelMode(DenseKernelMode::kSimd) == DenseKernelMode::kSimd) {
    for (int threads : widths) {
      simd_runs.push_back(TimeRun(ExecMode::kThreads, threads, data));
    }
    SetDenseKernelMode(DenseKernelMode::kScalar);
  }

  PrintSweepTable(scalar_runs, base);
  if (!simd_runs.empty()) {
    std::printf("\nsimd (avx2/fma) dense kernels:\n");
    PrintSweepTable(simd_runs, base);
  } else {
    std::printf("simd kernels unavailable on this CPU (needs AVX2+FMA)\n");
  }
  std::printf("\nphase breakdown (share of worker-busy seconds):\n");
  PrintPhaseTable(scalar_runs);
  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());

  FILE* json = OpenBenchJson("BENCH_micro_train_throughput.json",
                             "micro_train_throughput");
  if (json == nullptr) return;
  std::fprintf(json, "  \"total_batches\": %llu,\n",
               static_cast<unsigned long long>(BenchOptions().total_batches));
  std::fprintf(json, "  \"batch_size\": %llu,\n",
               static_cast<unsigned long long>(BenchOptions().batch_size));
  std::fprintf(json, "  \"simd_available\": %s,\n",
               SimdKernelsAvailable() ? "true" : "false");
  std::fprintf(json, "  \"runs\": [\n");
  const size_t total = scalar_runs.size() + simd_runs.size();
  size_t written = 0;
  for (const RunResult& r : scalar_runs) {
    WriteRunJson(json, r, base, ++written == total);
  }
  for (const RunResult& r : simd_runs) {
    WriteRunJson(json, r, base, ++written == total);
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_micro_train_throughput.json\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
