// Micro-benchmark for the multi-threaded training runtime: trains the real
// mini-DLRM in ExecMode::kThreads at 1/2/4/8 pool threads (plus the
// deterministic kTicks reference) and reports samples/sec, speedup over one
// thread, and scaling efficiency. Results are printed as a table and
// written to BENCH_micro_train_throughput.json, seeding the perf
// trajectory: future PRs append runs and compare.
//
// Scaling is bounded by the hardware the bench runs on — the JSON records
// hardware_threads so a 1-core CI box reporting ~1x is interpretable.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "dlrm/async_trainer.h"
#include "harness/reporting.h"

namespace dlrover {
namespace {

struct RunResult {
  std::string label;
  int threads = 0;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
  double final_auc = 0.0;
};

AsyncTrainerOptions BenchOptions() {
  AsyncTrainerOptions options;
  options.num_workers = 8;
  options.batch_size = 128;
  options.total_batches = 240;
  options.learning_rate = 0.1;
  options.shard_batches = 12;
  options.eval_every_batches = 1 << 30;  // no mid-run evals: pure training
  options.eval_size = 1024;
  options.seed = 11;
  return options;
}

MiniDlrmConfig BenchModel() {
  MiniDlrmConfig config;
  config.arch = ModelKind::kWideDeep;
  config.emb_dim = 8;
  config.hash_buckets = 4096;
  config.mlp_hidden = {64, 32};
  config.seed = 5;
  return config;
}

RunResult TimeRun(ExecMode mode, int threads, const CriteoSynth& data) {
  MiniDlrm model(BenchModel());
  AsyncTrainerOptions options = BenchOptions();
  options.exec_mode = mode;
  options.num_threads = threads;
  AsyncPsTrainer trainer(&model, &data, options);
  const auto start = std::chrono::steady_clock::now();
  const TrainResult result = trainer.Run();
  const auto stop = std::chrono::steady_clock::now();

  RunResult out;
  out.label = mode == ExecMode::kTicks
                  ? "ticks"
                  : StrFormat("threads:%d", threads);
  out.threads = threads;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  const double samples = static_cast<double>(result.batches_committed) *
                         static_cast<double>(options.batch_size);
  out.samples_per_sec = samples / out.seconds;
  out.final_auc = result.final_auc;
  return out;
}

void Run() {
  PrintBanner("micro: training throughput, tick loop vs real threads");
  CriteoSynth data(31);

  // Warm-up: touch the data generator and page in the code paths so the
  // 1-thread baseline is not penalized with cold-start costs.
  TimeRun(ExecMode::kThreads, 1, data);

  std::vector<RunResult> runs;
  runs.push_back(TimeRun(ExecMode::kTicks, 0, data));
  for (int threads : {1, 2, 4, 8}) {
    runs.push_back(TimeRun(ExecMode::kThreads, threads, data));
  }

  const double base = runs[1].samples_per_sec;  // threads:1 reference
  TablePrinter table({"mode", "samples/sec", "speedup", "efficiency",
                      "final AUC"});
  for (const RunResult& r : runs) {
    const double speedup = r.samples_per_sec / base;
    const double eff = r.threads > 0 ? speedup / r.threads : 0.0;
    table.AddRow({r.label, StrFormat("%.0f", r.samples_per_sec),
                  StrFormat("%.2fx", speedup),
                  r.threads > 0 ? FormatPercent(eff) : "-",
                  StrFormat("%.4f", r.final_auc)});
  }
  table.Print();
  std::printf("hardware threads: %u\n",
              std::thread::hardware_concurrency());

  FILE* json = OpenBenchJson("BENCH_micro_train_throughput.json",
                             "micro_train_throughput");
  if (json == nullptr) return;
  std::fprintf(json, "  \"total_batches\": %llu,\n",
               static_cast<unsigned long long>(BenchOptions().total_batches));
  std::fprintf(json, "  \"batch_size\": %llu,\n",
               static_cast<unsigned long long>(BenchOptions().batch_size));
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(json,
                 "    {\"mode\": \"%s\", \"threads\": %d, "
                 "\"seconds\": %.4f, \"samples_per_sec\": %.1f, "
                 "\"speedup_vs_1thread\": %.3f, \"final_auc\": %.4f}%s\n",
                 r.label.c_str(), r.threads, r.seconds, r.samples_per_sec,
                 r.samples_per_sec / base, r.final_auc,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_micro_train_throughput.json\n");
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
