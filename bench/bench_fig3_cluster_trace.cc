// Reproduces Fig 3 (and the context of Table 2): resource utilisation and
// pending time of DLRM jobs under the pre-DLRover regime, derived from a
// synthetic cluster trace. The paper's headline: >80% of jobs sat below 50%
// CPU and memory utilisation in 2021, and pending times stretch to tens of
// minutes under contention.

#include <cstdio>

#include "harness/experiment.h"
#include "harness/reporting.h"
#include "harness/sweep.h"

namespace dlrover {
namespace {

void Run() {
  PrintBanner("Fig 3: utilisation and pending time under manual configs");

  FleetScenario scenario;
  scenario.dlrover_fraction = 0.0;  // everything manually configured
  scenario.workload.num_jobs = 48;
  scenario.workload.arrival_span = Hours(8);
  scenario.horizon = Hours(30);
  scenario.seed = 11;
  // Single scenario, but routed through the sweep engine so every figure
  // binary exercises the same execution path.
  const FleetResult result = RunFleetSweep({scenario})[0];

  Distribution cpu_util;
  Distribution mem_util;
  Distribution pending;
  for (const FleetJobOutcome& job : result.jobs) {
    if (job.stats.first_training_time < 0.0) continue;
    const double cpu =
        0.5 * (job.avg_worker_cpu_util + job.avg_ps_cpu_util);
    const double mem =
        0.5 * (job.avg_worker_mem_util + job.avg_ps_mem_util);
    if (cpu > 0.0) cpu_util.Add(cpu);
    if (mem > 0.0) mem_util.Add(mem);
    pending.Add(job.pending_time);
  }

  TablePrinter cdf({"utilisation <=", "CPU CDF", "MEM CDF"});
  for (double x = 0.1; x <= 1.001; x += 0.1) {
    cdf.AddRow({FormatPercent(x), StrFormat("%.2f", cpu_util.CdfAt(x)),
                StrFormat("%.2f", mem_util.CdfAt(x))});
  }
  cdf.Print();
  std::printf(
      "\njobs below 50%% CPU util: %.0f%%   below 50%% mem util: %.0f%% "
      "(paper: >80%% for both)\n",
      cpu_util.CdfAt(0.5) * 100.0, mem_util.CdfAt(0.5) * 100.0);

  PrintBanner("pending time distribution");
  std::printf("pending time: %s\n", pending.Summary().c_str());
  std::printf("p50=%s p90=%s max=%s\n",
              FormatDuration(pending.Percentile(50)).c_str(),
              FormatDuration(pending.Percentile(90)).c_str(),
              FormatDuration(pending.max()).c_str());
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
