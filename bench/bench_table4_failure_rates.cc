// Reproduces Table 4: the rate of job abnormalities before and after
// migrating the fleet to DLRover-RM. The paper's classes:
//   job failure / OOM errors:      4.7%  -> 0.23%
//   job failure / scheduling:      2%    -> 0.1%
//   slow training / hot PSes:      8%    -> 1%
//   slow training / stragglers:    7%    -> 0.7%
// We run the same synthetic production trace twice (all-manual vs
// all-DLRover) under identical failure injection and classify outcomes.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/sweep.h"
#include "ps/iteration_model.h"
#include "harness/reporting.h"

namespace dlrover {
namespace {

struct Rates {
  double oom = 0.0;
  double scheduling = 0.0;
  double hot_ps_slow = 0.0;
  double straggler_slow = 0.0;
  int total = 0;
};

// The JCT an optimally run job of this size would achieve (ground-truth
// laws at the well-tuned configuration, capped by the job's quota), plus
// startup. "Slow" is measured against this absolute reference so the
// classification does not depend on the fleet's own distribution.
Duration IdealJct(const FleetJobOutcome& job) {
  JobConfig config = WellTunedConfig(job.model);
  config.num_workers = std::min(config.num_workers, job.max_workers_quota);
  const ModelProfile profile = GetModelProfile(job.model);
  const EnvironmentProfile env;
  const IterationBreakdown iter =
      ComputeHealthyIteration(profile, env, 512, config);
  const double throughput =
      ThroughputSamplesPerSec(iter, 512, config.num_workers);
  return static_cast<double>(job.total_steps) * 512.0 / throughput +
         Minutes(2);
}

Rates Classify(const FleetResult& result) {
  Rates rates;
  rates.total = static_cast<int>(result.jobs.size());
  if (rates.total == 0) return rates;

  int oom = 0, scheduling = 0, hot_slow = 0, straggler_slow = 0;
  for (const FleetJobOutcome& job : result.jobs) {
    if (!job.completed) {
      if (job.fail_reason.find("oom") != std::string::npos) {
        ++oom;
      } else if (job.fail_reason.find("scheduling") != std::string::npos) {
        ++scheduling;
      }
      continue;
    }
    const bool slow = job.jct - job.pending_time > 2.0 * IdealJct(job);
    if (!slow) continue;
    if (job.hot_ps) {
      ++hot_slow;
    } else {
      ++straggler_slow;
    }
  }
  const double n = rates.total;
  rates.oom = oom / n;
  rates.scheduling = scheduling / n;
  rates.hot_ps_slow = hot_slow / n;
  rates.straggler_slow = straggler_slow / n;
  return rates;
}

void Run() {
  PrintBanner("Table 4: failure / slow-training rates, w/o vs w/ DLRover");
  FleetScenario scenario;
  scenario.workload.num_jobs = 56;
  scenario.workload.arrival_span = Hours(10);
  scenario.horizon = Hours(32);
  scenario.failures.daily_straggler_rate = 0.35;
  scenario.seed = 31;

  // Manual vs DLRover fleets are independent: sweep both in parallel.
  std::vector<FleetScenario> scenarios(2, scenario);
  scenarios[0].dlrover_fraction = 0.0;
  scenarios[1].dlrover_fraction = 1.0;
  const std::vector<FleetResult> swept = RunFleetSweep(scenarios);
  const Rates before = Classify(swept[0]);
  const Rates after = Classify(swept[1]);

  TablePrinter table({"exception", "reason", "w/o DLR", "w/ DLR",
                      "paper w/o", "paper w/"});
  table.AddRow({"Job Failure", "OOM Errors", FormatPercent(before.oom),
                FormatPercent(after.oom), "4.7%", "0.23%"});
  table.AddRow({"Job Failure", "Scheduling",
                FormatPercent(before.scheduling),
                FormatPercent(after.scheduling), "2%", "0.1%"});
  table.AddRow({"Slow Training", "Hot PSes",
                FormatPercent(before.hot_ps_slow),
                FormatPercent(after.hot_ps_slow), "8%", "1%"});
  table.AddRow({"Slow Training", "Worker Straggler",
                FormatPercent(before.straggler_slow),
                FormatPercent(after.straggler_slow), "7%", "0.7%"});
  table.Print();
  std::printf("\njobs per run: %d; shape check: every class drops by an "
              "order of magnitude under DLRover-RM.\n",
              before.total);
}

}  // namespace
}  // namespace dlrover

int main() {
  dlrover::Run();
  return 0;
}
