// Placement-decision microbench: the PlacementIndex arms versus the legacy
// linear scans, at 1x/20x/100x fleet node counts (60/1200/6000 nodes).
//
// Three measurements per scale:
//   - raw best-fit: BestFit() queries against an O(nodes) scan replica over
//     the same capacity state (pure decision cost, no simulator);
//   - cluster churn: create/kill cycles through a live Cluster, indexed vs
//     legacy options (whole-pipeline placement cost);
//   - preempt churn: create-preempt/kill/refill cycles on a saturated
//     cluster (victim-search cost).
// Both arms are verified to make identical decisions before timing starts.
//
// Results land in BENCH_placement.json via the shared stamper. `gate` mode
// (ctest label perf-smoke) runs the 100x comparison only and fails if the
// indexed arm is slower than the legacy arm.
//
// Usage: bench_placement [gate]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement_index.h"
#include "common/rng.h"
#include "harness/reporting.h"
#include "sim/simulator.h"

namespace dlrover {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ArmPair {
  double indexed_ops_per_sec = 0.0;
  double legacy_ops_per_sec = 0.0;
  double Speedup() const {
    return legacy_ops_per_sec > 0.0 ? indexed_ops_per_sec / legacy_ops_per_sec
                                    : 0.0;
  }
};

struct ScaleResult {
  int scale = 1;
  int num_nodes = 0;
  ArmPair best_fit;
  ArmPair churn;
  ArmPair preempt;
};

/// Raw best-fit decision cost: the index versus a verbatim replica of the
/// legacy Cluster::TryPlace scan, over an identical randomized capacity
/// state. Queries cycle through a precomputed request mix (feasible sizes,
/// tight sizes, memory-bound sizes, infeasible sizes).
ArmPair RunBestFitMicro(int num_nodes, int queries) {
  Rng rng(7);
  PlacementIndex index(static_cast<size_t>(num_nodes));
  std::vector<ResourceSpec> available(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    // Quantized occupancy: plenty of exact capacity ties across nodes.
    available[static_cast<size_t>(i)] = {
        static_cast<double>(rng.UniformInt(0, 32)),
        GiB(static_cast<double>(rng.UniformInt(0, 192)))};
    index.InsertNode(static_cast<NodeId>(i), available[static_cast<size_t>(i)]);
  }
  std::vector<ResourceSpec> requests(512);
  for (auto& request : requests) {
    request = {static_cast<double>(rng.UniformInt(1, 40)),
               GiB(static_cast<double>(rng.UniformInt(1, 64)))};
  }

  auto linear_scan = [&](const ResourceSpec& request) {
    int best = -1;
    double best_left = 1e300;
    for (int i = 0; i < num_nodes; ++i) {
      const ResourceSpec& avail = available[static_cast<size_t>(i)];
      if (!request.FitsIn(avail)) continue;
      const double left = avail.cpu - request.cpu;
      if (left < best_left) {
        best_left = left;
        best = i;
      }
    }
    return best;
  };

  // Decision parity before timing: both arms must agree on every request.
  for (const ResourceSpec& request : requests) {
    if (index.BestFit(request) != linear_scan(request)) {
      std::fprintf(stderr, "FATAL: best-fit arms disagree on %s\n",
                   request.ToString().c_str());
      std::exit(1);
    }
  }

  ArmPair out;
  long sink = 0;
  double t0 = NowSeconds();
  for (int q = 0; q < queries; ++q) {
    sink += index.BestFit(requests[static_cast<size_t>(q) % requests.size()]);
  }
  double t1 = NowSeconds();
  out.indexed_ops_per_sec = queries / (t1 - t0);
  // The linear arm pays O(nodes) per query; keep wall time bounded by
  // scaling its query count down at large node counts.
  const int linear_queries = std::max(queries / std::max(num_nodes / 60, 1), 512);
  t0 = NowSeconds();
  for (int q = 0; q < linear_queries; ++q) {
    sink += linear_scan(requests[static_cast<size_t>(q) % requests.size()]);
  }
  t1 = NowSeconds();
  out.legacy_ops_per_sec = linear_queries / (t1 - t0);
  if (sink == 123456789) std::fprintf(stderr, "(sink)\n");
  return out;
}

struct ChurnOutcome {
  double ops_per_sec = 0.0;
  uint64_t placements = 0;
  uint64_t preempted = 0;
};

ClusterOptions ArmOptions(bool indexed, int num_nodes) {
  ClusterOptions options;
  options.num_nodes = num_nodes;
  options.node_capacity = {32.0, GiB(192)};
  options.seed = 23;
  options.use_placement_index = indexed;
  return options;
}

/// Whole-pipeline placement cost: kill a random pod, create a replacement.
/// Every create runs a best-fit decision; kills update the capacity state.
ChurnOutcome RunClusterChurn(bool indexed, int num_nodes, int iters) {
  Simulator sim;
  Cluster cluster(&sim, ArmOptions(indexed, num_nodes));
  Rng rng(11);
  std::vector<PodId> pods;
  auto create = [&]() {
    PodSpec spec;
    spec.name = "churn";
    spec.request = {4.0, GiB(16)};
    spec.priority = PriorityClass::kTraining;
    pods.push_back(cluster.CreatePod(std::move(spec), nullptr, nullptr));
  };
  // ~75% occupancy: six 4-core pods on each 32-core node.
  for (int i = 0; i < num_nodes * 6; ++i) create();
  sim.RunUntil(Minutes(5));

  ChurnOutcome out;
  const double t0 = NowSeconds();
  for (int i = 0; i < iters; ++i) {
    const size_t pick = rng.UniformInt(pods.size());
    cluster.KillPod(pods[pick]);
    pods[pick] = pods.back();
    pods.pop_back();
    create();
    if ((i & 63) == 63) sim.RunUntil(sim.Now() + Seconds(90));
  }
  const double t1 = NowSeconds();
  out.ops_per_sec = 2.0 * iters / (t1 - t0);
  out.placements = cluster.counters().placements;
  out.preempted = cluster.counters().pods_preempted;
  return out;
}

/// Victim-search cost: the cluster is saturated with best-effort pods; each
/// cycle creates an online pod (forcing a preemption), kills it, and refills
/// the hole with a fresh best-effort pod.
ChurnOutcome RunPreemptChurn(bool indexed, int num_nodes, int iters) {
  Simulator sim;
  Cluster cluster(&sim, ArmOptions(indexed, num_nodes));
  std::vector<PodId> online;
  auto create = [&](PriorityClass priority) {
    PodSpec spec;
    spec.name = priority == PriorityClass::kOnline ? "spike" : "filler";
    spec.request = {4.0, GiB(16)};
    spec.priority = priority;
    const PodId id = cluster.CreatePod(std::move(spec), nullptr, nullptr);
    if (priority == PriorityClass::kOnline) online.push_back(id);
    return id;
  };
  // Saturate: eight 4-core pods fill each 32-core node exactly.
  for (int i = 0; i < num_nodes * 8; ++i) create(PriorityClass::kBestEffort);
  sim.RunUntil(Minutes(5));

  ChurnOutcome out;
  const double t0 = NowSeconds();
  for (int i = 0; i < iters; ++i) {
    create(PriorityClass::kOnline);  // full cluster: must preempt a filler
    cluster.KillPod(online.back());
    online.pop_back();
    create(PriorityClass::kBestEffort);  // refill the freed slot
    // Advance time: resets the per-instant preemption budget and retires
    // queued startups before the event backlog grows unbounded.
    if ((i & 63) == 63) sim.RunUntil(sim.Now() + Seconds(90));
  }
  const double t1 = NowSeconds();
  out.ops_per_sec = 3.0 * iters / (t1 - t0);
  out.placements = cluster.counters().placements;
  out.preempted = cluster.counters().pods_preempted;
  return out;
}

/// Runs both arms of a churn shape and cross-checks their decision counters
/// (identical scripts must produce identical placements and preemptions).
ArmPair RunArms(const char* what,
                ChurnOutcome (*run)(bool indexed, int num_nodes, int iters),
                int num_nodes, int indexed_iters, int legacy_iters) {
  const ChurnOutcome indexed = run(true, num_nodes, indexed_iters);
  const ChurnOutcome legacy = run(false, num_nodes, legacy_iters);
  if (indexed_iters == legacy_iters &&
      (indexed.placements != legacy.placements ||
       indexed.preempted != legacy.preempted)) {
    std::fprintf(stderr,
                 "FATAL: %s arms diverged: indexed %llu/%llu vs legacy "
                 "%llu/%llu placements/preemptions\n",
                 what, static_cast<unsigned long long>(indexed.placements),
                 static_cast<unsigned long long>(indexed.preempted),
                 static_cast<unsigned long long>(legacy.placements),
                 static_cast<unsigned long long>(legacy.preempted));
    std::exit(1);
  }
  ArmPair out;
  out.indexed_ops_per_sec = indexed.ops_per_sec;
  out.legacy_ops_per_sec = legacy.ops_per_sec;
  return out;
}

int Run(bool gate) {
  PrintBanner(gate ? "placement decisions: indexed >= legacy gate (100x)"
                   : "placement decisions: indexed vs legacy");
  std::vector<ScaleResult> results;
  const int scales[] = {1, 20, 100};
  for (int scale : scales) {
    if (gate && scale != 100) continue;
    ScaleResult r;
    r.scale = scale;
    r.num_nodes = 60 * scale;
    const int churn_iters = gate ? 1000 : 2000;
    std::printf("running %dx (%d nodes)...\n", scale, r.num_nodes);
    std::fflush(stdout);
    r.best_fit = RunBestFitMicro(r.num_nodes, scale >= 100 ? 200000 : 400000);
    r.churn = RunArms("churn", RunClusterChurn, r.num_nodes, churn_iters,
                      churn_iters);
    r.preempt = RunArms("preempt", RunPreemptChurn, r.num_nodes, churn_iters,
                        churn_iters);
    results.push_back(r);
  }

  TablePrinter table({"scale", "nodes", "bestfit idx/s", "bestfit lin/s",
                      "speedup", "churn idx/s", "churn leg/s", "preempt idx/s",
                      "preempt leg/s"});
  for (const ScaleResult& r : results) {
    table.AddRow({StrFormat("%dx", r.scale), StrFormat("%d", r.num_nodes),
                  StrFormat("%.3g", r.best_fit.indexed_ops_per_sec),
                  StrFormat("%.3g", r.best_fit.legacy_ops_per_sec),
                  StrFormat("%.1fx", r.best_fit.Speedup()),
                  StrFormat("%.3g", r.churn.indexed_ops_per_sec),
                  StrFormat("%.3g", r.churn.legacy_ops_per_sec),
                  StrFormat("%.3g", r.preempt.indexed_ops_per_sec),
                  StrFormat("%.3g", r.preempt.legacy_ops_per_sec)});
  }
  table.Print();

  FILE* json = OpenBenchJson("BENCH_placement.json", "placement");
  if (json != nullptr) {
    std::fprintf(json, "  \"gate_mode\": %s,\n", gate ? "true" : "false");
    std::fprintf(json, "  \"scales\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ScaleResult& r = results[i];
      std::fprintf(
          json,
          "    {\"scale\": %d, \"nodes\": %d,\n"
          "     \"bestfit_indexed_qps\": %.1f, \"bestfit_linear_qps\": %.1f,"
          " \"bestfit_speedup\": %.2f,\n"
          "     \"churn_indexed_ops\": %.1f, \"churn_legacy_ops\": %.1f,\n"
          "     \"preempt_indexed_ops\": %.1f, \"preempt_legacy_ops\": %.1f}%s\n",
          r.scale, r.num_nodes, r.best_fit.indexed_ops_per_sec,
          r.best_fit.legacy_ops_per_sec, r.best_fit.Speedup(),
          r.churn.indexed_ops_per_sec, r.churn.legacy_ops_per_sec,
          r.preempt.indexed_ops_per_sec, r.preempt.legacy_ops_per_sec,
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_placement.json\n");
  }

  // Throughput gate at 100x: the indexed arm must not lose to the legacy
  // scan on any of the three measurements.
  for (const ScaleResult& r : results) {
    if (r.scale != 100) continue;
    const bool ok = r.best_fit.indexed_ops_per_sec >=
                        r.best_fit.legacy_ops_per_sec &&
                    r.churn.indexed_ops_per_sec >= r.churn.legacy_ops_per_sec &&
                    r.preempt.indexed_ops_per_sec >=
                        r.preempt.legacy_ops_per_sec;
    std::printf("100x gate (indexed >= legacy): %s\n", ok ? "PASS" : "FAIL");
    if (!ok) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dlrover

int main(int argc, char** argv) {
  const bool gate = argc > 1 && std::strcmp(argv[1], "gate") == 0;
  return dlrover::Run(gate);
}
