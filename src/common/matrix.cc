#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/dense_kernels.h"

namespace dlrover {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  // Tile over (rows of A, inner dimension): within a tile, the kBlock rows
  // of `other` being streamed fit in cache and are reused by every row of
  // the A-tile. For a fixed output element the k index still advances
  // monotonically, so floating-point results match the untiled loop bit for
  // bit. 64x64 doubles per operand tile = 32 KiB, sized for typical L1+L2.
  constexpr size_t kBlock = 64;
  const size_t n = other.cols_;
  for (size_t rr = 0; rr < rows_; rr += kBlock) {
    const size_t r_end = std::min(rr + kBlock, rows_);
    for (size_t kk = 0; kk < cols_; kk += kBlock) {
      const size_t k_end = std::min(kk + kBlock, cols_);
      for (size_t r = rr; r < r_end; ++r) {
        const double* a_row = &data_[r * cols_];
        double* out_row = &out.data_[r * n];
        for (size_t k = kk; k < k_end; ++k) {
          const double v = a_row[k];
          if (v == 0.0) continue;
          const double* b_row = &other.data_[k * n];
          KernelAxpy(n, v, b_row, out_row);
        }
      }
    }
  }
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  const double* xp = x.data();
  for (size_t r = 0; r < rows_; ++r) {
    y[r] = KernelDot(&data_[r * cols_], xp, cols_);
  }
  return y;
}

void Matrix::ApplyBiasAct(const std::vector<double>& x,
                          const std::vector<double>& bias, bool relu,
                          std::vector<double>* y,
                          std::vector<double>* pre) const {
  assert(x.size() == cols_);
  assert(bias.size() == rows_);
  y->resize(rows_);
  if (pre != nullptr) pre->resize(rows_);
  const double* xp = x.data();
  for (size_t r = 0; r < rows_; ++r) {
    double acc = KernelDot(&data_[r * cols_], xp, cols_);
    acc += bias[r];
    if (pre != nullptr) (*pre)[r] = acc;
    (*y)[r] = relu ? std::max(0.0, acc) : acc;
  }
}

StatusOr<std::vector<double>> LeastSquares(const Matrix& a,
                                           const std::vector<double>& b) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (b.size() != m) {
    return InvalidArgumentError("LeastSquares: b size does not match A rows");
  }
  if (m < n) {
    return InvalidArgumentError("LeastSquares: underdetermined system (rows < cols)");
  }
  if (n == 0) return std::vector<double>{};

  // Householder QR applied in place to a working copy of [A | b].
  Matrix r = a;
  std::vector<double> y = b;
  for (size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      return FailedPreconditionError("LeastSquares: rank-deficient matrix");
    }
    const double alpha = (r(k, k) >= 0.0) ? -norm : norm;
    std::vector<double> v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vnorm2 = 0.0;
    for (double vi : v) vnorm2 += vi * vi;
    if (vnorm2 < 1e-300) continue;  // Column already zeroed below diagonal.

    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and to y.
    for (size_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i - k] * r(i, c);
      const double f = 2.0 * dot / vnorm2;
      for (size_t i = k; i < m; ++i) r(i, c) -= f * v[i - k];
    }
    double dot = 0.0;
    for (size_t i = k; i < m; ++i) dot += v[i - k] * y[i];
    const double f = 2.0 * dot / vnorm2;
    for (size_t i = k; i < m; ++i) y[i] -= f * v[i - k];
  }

  // Back substitution on the upper triangle.
  std::vector<double> x(n, 0.0);
  for (size_t k = n; k-- > 0;) {
    double acc = y[k];
    for (size_t c = k + 1; c < n; ++c) acc -= r(k, c) * x[c];
    const double diag = r(k, k);
    if (std::fabs(diag) < 1e-12) {
      return FailedPreconditionError("LeastSquares: singular upper triangle");
    }
    x[k] = acc / diag;
  }
  return x;
}

namespace {

// Unconstrained least squares restricted to the columns in `passive`.
// Returns the solution scattered into a full-size vector (zeros elsewhere).
StatusOr<std::vector<double>> SolveOnPassiveSet(
    const Matrix& a, const std::vector<double>& b,
    const std::vector<size_t>& passive) {
  const size_t m = a.rows();
  Matrix sub(m, passive.size());
  for (size_t r = 0; r < m; ++r) {
    for (size_t j = 0; j < passive.size(); ++j) sub(r, j) = a(r, passive[j]);
  }
  auto solved = LeastSquares(sub, b);
  if (!solved.ok()) return solved.status();
  std::vector<double> full(a.cols(), 0.0);
  for (size_t j = 0; j < passive.size(); ++j) full[passive[j]] = (*solved)[j];
  return full;
}

}  // namespace

StatusOr<std::vector<double>> NnlsSolve(const Matrix& a,
                                        const std::vector<double>& b,
                                        int max_iter) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (b.size() != m) {
    return InvalidArgumentError("NnlsSolve: b size does not match A rows");
  }
  if (n == 0) return std::vector<double>{};
  if (max_iter <= 0) max_iter = static_cast<int>(3 * n) + 30;

  // Lawson-Hanson: maintain a passive set P (free variables) and active set
  // Z (variables clamped at zero). x is always feasible (>= 0).
  std::vector<bool> in_passive(n, false);
  std::vector<double> x(n, 0.0);
  const Matrix at = a.Transpose();
  const double tol = 1e-10;

  for (int outer = 0; outer < max_iter; ++outer) {
    // Gradient w = A^T (b - A x).
    std::vector<double> residual = b;
    const std::vector<double> ax = a.Apply(x);
    for (size_t i = 0; i < m; ++i) residual[i] -= ax[i];
    const std::vector<double> w = at.Apply(residual);

    // Pick the most promising zero variable.
    int best = -1;
    double best_w = tol;
    for (size_t j = 0; j < n; ++j) {
      if (!in_passive[j] && w[j] > best_w) {
        best_w = w[j];
        best = static_cast<int>(j);
      }
    }
    if (best < 0) break;  // KKT satisfied: optimal.
    in_passive[static_cast<size_t>(best)] = true;

    // Inner loop: solve on the passive set; walk back along the segment from
    // x to the new solution until all passive variables are non-negative.
    for (int inner = 0; inner < max_iter; ++inner) {
      std::vector<size_t> passive;
      for (size_t j = 0; j < n; ++j) {
        if (in_passive[j]) passive.push_back(j);
      }
      auto z_or = SolveOnPassiveSet(a, b, passive);
      if (!z_or.ok()) {
        // Rank deficiency on this passive set: drop the variable we just
        // added and stop trying to grow the set in its direction.
        in_passive[static_cast<size_t>(best)] = false;
        break;
      }
      const std::vector<double>& z = *z_or;

      double min_z = std::numeric_limits<double>::infinity();
      for (size_t j : passive) min_z = std::min(min_z, z[j]);
      if (min_z > tol) {
        x = z;
        break;  // Feasible optimum on this passive set.
      }

      // Find the largest step alpha in [0,1) keeping feasibility.
      double alpha = std::numeric_limits<double>::infinity();
      for (size_t j : passive) {
        if (z[j] <= tol) {
          const double denom = x[j] - z[j];
          if (denom > 1e-300) alpha = std::min(alpha, x[j] / denom);
        }
      }
      if (!std::isfinite(alpha)) alpha = 0.0;
      for (size_t j = 0; j < n; ++j) x[j] += alpha * (z[j] - x[j]);

      // Move variables that hit zero back to the active set.
      for (size_t j : passive) {
        if (x[j] <= tol) {
          x[j] = 0.0;
          in_passive[j] = false;
        }
      }
    }
  }

  for (double& v : x) {
    if (v < 0.0) v = 0.0;  // Numerical cleanup.
  }
  return x;
}

}  // namespace dlrover
