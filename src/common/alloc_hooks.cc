// Program-wide operator new/delete replacement that counts every successful
// allocation. Linking this TU into a binary makes dlrover::AllocationCount()
// live: the zero-allocation-per-event regression test diffs the counter
// across a warm stretch of simulated events. Counting uses one relaxed
// atomic increment, so hooked builds stay fast enough for benches.
//
// Keep this file free of any allocation itself: it can run before main().

#include <cstdlib>
#include <new>

#include "common/alloc_counter.h"

namespace dlrover::internal {
namespace {
struct HookRegistrar {
  HookRegistrar() { g_alloc_hooks_linked.store(true, std::memory_order_relaxed); }
};
HookRegistrar hook_registrar;

void* CountedAlloc(std::size_t size) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded == 0 ? align : rounded);
}
}  // namespace
}  // namespace dlrover::internal

void* operator new(std::size_t size) {
  void* p = dlrover::internal::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = dlrover::internal::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return dlrover::internal::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return dlrover::internal::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = dlrover::internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = dlrover::internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return dlrover::internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return dlrover::internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
