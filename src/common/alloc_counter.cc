#include "common/alloc_counter.h"

namespace dlrover {

namespace internal {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<bool> g_alloc_hooks_linked{false};
}  // namespace internal

uint64_t AllocationCount() {
  return internal::g_alloc_count.load(std::memory_order_relaxed);
}

bool AllocationCountingEnabled() {
  return internal::g_alloc_hooks_linked.load(std::memory_order_relaxed);
}

}  // namespace dlrover
