#ifndef DLROVER_COMMON_STATUS_H_
#define DLROVER_COMMON_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dlrover {

/// Canonical error codes, modeled after absl::StatusCode. The project is
/// exception-free: every fallible operation returns a Status or StatusOr<T>.
enum class StatusCode : int {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kAlreadyExists = 6,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kAborted = 10,
  kOutOfRange = 11,
  kUnimplemented = 12,
  kInternal = 13,
  kUnavailable = 14,
};

/// Returns a stable human-readable name for `code` ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy when OK (no
/// allocation); carries a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and `message`. A kOk code with a
  /// non-empty message is normalized to a plain OK status.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Convenience constructors for common error categories.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status AbortedError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);

namespace internal_status {
[[noreturn]] void DieBecauseNotOk(const Status& status, const char* expr);
}  // namespace internal_status

/// A value-or-error union: holds T when the operation succeeded, a non-OK
/// Status otherwise. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit by design
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status without value");
    }
  }

  /// Constructs from a value; the resulting StatusOr is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& value() const& {
    if (!ok()) internal_status::DieBecauseNotOk(status_, "StatusOr::value");
    return *value_;
  }
  T& value() & {
    if (!ok()) internal_status::DieBecauseNotOk(status_, "StatusOr::value");
    return *value_;
  }
  T&& value() && {
    if (!ok()) internal_status::DieBecauseNotOk(status_, "StatusOr::value");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if OK, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if not OK.
#define DLROVER_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::dlrover::Status dlrover_status_tmp_ = (expr);    \
    if (!dlrover_status_tmp_.ok()) return dlrover_status_tmp_; \
  } while (false)

/// Aborts the process with a diagnostic if `expr` is not OK. For use at
/// call sites where failure indicates a programming error.
#define DLROVER_CHECK_OK(expr)                                              \
  do {                                                                      \
    ::dlrover::Status dlrover_status_tmp_ = (expr);                         \
    if (!dlrover_status_tmp_.ok())                                          \
      ::dlrover::internal_status::DieBecauseNotOk(dlrover_status_tmp_, #expr); \
  } while (false)

}  // namespace dlrover

#endif  // DLROVER_COMMON_STATUS_H_
