#ifndef DLROVER_COMMON_STATS_H_
#define DLROVER_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dlrover {

/// Online mean/variance accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples and answers percentile / CDF queries. Intended for
/// experiment reporting (JCT distributions etc.), so it keeps all samples.
class Distribution {
 public:
  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;

  /// Percentile in [0, 100] with linear interpolation. Requires non-empty.
  double Percentile(double pct) const;
  double Median() const { return Percentile(50.0); }

  /// Fraction of samples <= x.
  double CdfAt(double x) const;

  /// Evenly spaced CDF points (x, F(x)) for plotting: `points` entries from
  /// min to max.
  std::vector<std::pair<double, double>> CdfSeries(size_t points) const;

  const std::vector<double>& samples() const { return samples_; }

  /// Short textual summary: count/mean/p50/p90/p99/max.
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Root mean squared logarithmic error between predictions and targets.
/// Both inputs must be the same non-zero length; values must be > -1.
double Rmsle(const std::vector<double>& predicted,
             const std::vector<double>& actual);

/// Plain RMSE.
double Rmse(const std::vector<double>& predicted,
            const std::vector<double>& actual);

/// Coefficient of determination (R^2) of predictions vs. actuals.
double RSquared(const std::vector<double>& predicted,
                const std::vector<double>& actual);

}  // namespace dlrover

#endif  // DLROVER_COMMON_STATS_H_
