#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

namespace dlrover {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Distribution::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Distribution::AddAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

double Distribution::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Distribution::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Distribution::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Distribution::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

void Distribution::EnsureSorted() const {
  if (sorted_) return;
  auto* self = const_cast<Distribution*>(this);
  std::sort(self->samples_.begin(), self->samples_.end());
  self->sorted_ = true;
}

double Distribution::Percentile(double pct) const {
  assert(!samples_.empty());
  EnsureSorted();
  if (samples_.size() == 1) return samples_[0];
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Distribution::CdfAt(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Distribution::CdfSeries(
    size_t points) const {
  std::vector<std::pair<double, double>> series;
  if (samples_.empty() || points == 0) return series;
  EnsureSorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  series.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? hi
                    : lo + (hi - lo) * static_cast<double>(i) /
                               static_cast<double>(points - 1);
    series.emplace_back(x, CdfAt(x));
  }
  return series;
}

std::string Distribution::Summary() const {
  if (samples_.empty()) return "(empty)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                samples_.size(), mean(), Percentile(50), Percentile(90),
                Percentile(99), max());
  return buf;
}

double Rmsle(const std::vector<double>& predicted,
             const std::vector<double>& actual) {
  assert(predicted.size() == actual.size() && !predicted.empty());
  double acc = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double d = std::log1p(predicted[i]) - std::log1p(actual[i]);
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double Rmse(const std::vector<double>& predicted,
            const std::vector<double>& actual) {
  assert(predicted.size() == actual.size() && !predicted.empty());
  double acc = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double RSquared(const std::vector<double>& predicted,
                const std::vector<double>& actual) {
  assert(predicted.size() == actual.size() && !predicted.empty());
  const double mean =
      std::accumulate(actual.begin(), actual.end(), 0.0) /
      static_cast<double>(actual.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - mean) * (actual[i] - mean);
  }
  if (ss_tot <= std::numeric_limits<double>::min()) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace dlrover
