#ifndef DLROVER_COMMON_MATRIX_H_
#define DLROVER_COMMON_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/status.h"

namespace dlrover {

/// Minimal dense row-major matrix of doubles; just enough linear algebra for
/// the least-squares solvers used by the perf-model fitter (QR factorization
/// with Householder reflections) and for the mini-DLRM dense layers.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix Transpose() const;

  /// Matrix product; requires cols() == other.rows(). Cache-blocked over
  /// (rows, inner) tiles so a tile of `other` rows stays hot in L1/L2; per
  /// output element the inner-dimension accumulation order is unchanged, so
  /// results are bit-identical to the naive triple loop. The row update runs
  /// through the runtime-dispatched dense kernels (common/dense_kernels.h):
  /// the default scalar mode keeps bit-identity, the opt-in SIMD mode
  /// vectorizes it with AVX2/FMA.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; requires cols() == x.size().
  std::vector<double> Apply(const std::vector<double>& x) const;

  /// Fused y = act(W x + bias) for the MLP tower hot path: one pass over
  /// the weights, no intermediate vector. `relu` selects max(0, .) as the
  /// activation, otherwise identity. Writes pre-activation values into
  /// `pre` when non-null (backward needs them). Accumulation order matches
  /// Apply() + separate bias add, so the fused path is bit-identical to the
  /// unfused one. Row dot products go through the runtime-dispatched dense
  /// kernels: scalar (default, bit-identical) or opt-in AVX2/FMA.
  void ApplyBiasAct(const std::vector<double>& x,
                    const std::vector<double>& bias, bool relu,
                    std::vector<double>* y,
                    std::vector<double>* pre = nullptr) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves min_x ||A x - b||_2 by Householder QR. A must have rows >= cols and
/// full column rank; returns kFailedPrecondition on (near-)rank deficiency.
StatusOr<std::vector<double>> LeastSquares(const Matrix& a,
                                           const std::vector<double>& b);

/// Non-negative least squares min_{x >= 0} ||A x - b||_2 via the classical
/// Lawson-Hanson active-set algorithm. This is the solver the paper uses
/// (scipy.optimize.nnls) to fit the throughput model's alpha/beta parameters.
/// Always converges for finite inputs; `max_iter` guards degenerate cycling.
StatusOr<std::vector<double>> NnlsSolve(const Matrix& a,
                                        const std::vector<double>& b,
                                        int max_iter = 0);

}  // namespace dlrover

#endif  // DLROVER_COMMON_MATRIX_H_
