#ifndef DLROVER_COMMON_LOGGING_H_
#define DLROVER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dlrover {

/// Log severities in increasing order of importance.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level: messages below it are dropped. Default kWarning so
/// that tests and benches stay quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink: collects a message and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// A sink that swallows everything (used when the level is filtered out).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define DLROVER_LOG(level)                                                   \
  (static_cast<int>(::dlrover::LogLevel::k##level) <                         \
   static_cast<int>(::dlrover::GetLogLevel()))                               \
      ? (void)0                                                              \
      : (void)(::dlrover::internal_logging::LogMessage(                      \
                   ::dlrover::LogLevel::k##level, __FILE__, __LINE__)        \
                   .stream())

// Stream form: DLROVER_LOG_STREAM(Info) << "x=" << x;
#define DLROVER_LOG_STREAM(level)                                        \
  ::dlrover::internal_logging::LogMessage(::dlrover::LogLevel::k##level, \
                                          __FILE__, __LINE__)            \
      .stream()

}  // namespace dlrover

#endif  // DLROVER_COMMON_LOGGING_H_
