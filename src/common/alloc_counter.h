#ifndef DLROVER_COMMON_ALLOC_COUNTER_H_
#define DLROVER_COMMON_ALLOC_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace dlrover {

/// Number of successful `operator new` calls since process start, counted by
/// the replacement hooks in alloc_hooks.cc. Always callable; returns 0 when
/// the hooks are not linked into this binary (see AllocationCountingEnabled).
/// Binaries opt into counting either via the DLROVER_COUNT_ALLOCS cmake
/// option (whole build) or by compiling alloc_hooks.cc into one target (the
/// allocation-regression guard test does this so tier-1 always checks).
uint64_t AllocationCount();

/// True when the operator-new counting hooks are linked into this binary.
bool AllocationCountingEnabled();

namespace internal {
extern std::atomic<uint64_t> g_alloc_count;
extern std::atomic<bool> g_alloc_hooks_linked;
}  // namespace internal

}  // namespace dlrover

#endif  // DLROVER_COMMON_ALLOC_COUNTER_H_
