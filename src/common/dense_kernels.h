#ifndef DLROVER_COMMON_DENSE_KERNELS_H_
#define DLROVER_COMMON_DENSE_KERNELS_H_

#include <cstddef>

namespace dlrover {

/// Runtime-selected implementation of the dense inner loops (dot products,
/// axpy updates, row accumulation) shared by Matrix and the embedding hot
/// path.
///
/// kScalar is the default and is bit-identical to the historical loops: the
/// same operations in the same order, no fused multiply-add, so kTicks
/// goldens and every figure bench stay byte-stable. kSimd switches the
/// kernels to AVX2/FMA variants when the CPU supports them (checked at
/// dispatch time; unsupported hardware silently keeps the scalar path).
/// The SIMD reductions reassociate partial sums and contract mul+add into
/// FMA, so results differ from scalar in the low bits — callers opt in per
/// process (the throughput bench, perf builds), never by default.
enum class DenseKernelMode : int {
  kScalar = 0,
  kSimd = 1,
};

/// Selects the kernel implementation for the whole process. Thread-safe to
/// call, but intended for startup/bench configuration, not mid-training
/// flips. Returns the mode actually in effect (kScalar when SIMD was
/// requested but the CPU lacks AVX2+FMA).
DenseKernelMode SetDenseKernelMode(DenseKernelMode mode);

/// The mode currently in effect.
DenseKernelMode ActiveDenseKernelMode();

/// True when this CPU can run the AVX2+FMA kernels.
bool SimdKernelsAvailable();

/// sum_i a[i] * b[i]. Scalar mode accumulates left to right (bit-identical
/// to the historical loop); SIMD mode uses 4-lane FMA partial sums.
double KernelDot(const double* a, const double* b, size_t n);

/// y[i] += alpha * x[i]. Element-wise; scalar mode is mul-then-add.
void KernelAxpy(size_t n, double alpha, const double* x, double* y);

}  // namespace dlrover

#endif  // DLROVER_COMMON_DENSE_KERNELS_H_
