#ifndef DLROVER_COMMON_RNG_H_
#define DLROVER_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dlrover {

/// Deterministic pseudo-random number generator (splitmix64 seeded
/// xoshiro256**). All randomness in the project flows through Rng so that
/// every simulation, test, and bench is reproducible for a fixed seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  /// Re-seeds the generator deterministically from `seed`.
  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (NextU64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double Normal() {
    double u1 = Uniform();
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Log-normal such that the *median* of the distribution is `median` and
  /// sigma is the log-space standard deviation. Useful for multiplicative
  /// noise factors around 1.0.
  double LogNormal(double median, double sigma) {
    return median * std::exp(sigma * Normal());
  }

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate) {
    assert(rate > 0);
    double u = Uniform();
    while (u <= 1e-300) u = Uniform();
    return -std::log(u) / rate;
  }

  /// Zipf-like integer in [0, n): P(k) proportional to 1/(k+1)^s. Sampled by
  /// inverse-CDF over precomputed weights is too slow for large n, so this
  /// uses rejection sampling (Devroye). Good enough for skewed id draws.
  uint64_t Zipf(uint64_t n, double s) {
    assert(n > 0);
    if (n == 1) return 0;
    // Rejection method for Zipf; valid for s > 0, s != 1 handled via limits.
    const double sm = (s == 1.0) ? 1.0000001 : s;
    const double t = std::pow(static_cast<double>(n), 1.0 - sm);
    for (;;) {
      const double u = Uniform();
      const double w = (t - 1.0) * u + 1.0;           // in [1, t]
      const double x = std::pow(w, 1.0 / (1.0 - sm));  // inverse of CDF bound
      const uint64_t k = static_cast<uint64_t>(x);
      if (k >= 1 && k <= n) {
        const double ratio = std::pow(static_cast<double>(k) / x, sm);
        if (Uniform() < ratio) return k - 1;
      }
    }
  }

  /// Returns a child generator with independent state derived from this
  /// generator plus `stream_id`; used to give subsystems isolated streams.
  Rng Fork(uint64_t stream_id) {
    return Rng(NextU64() ^ (stream_id * 0x9e3779b97f4a7c15ull) ^ 0xd1b54a32d192ed03ull);
  }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace dlrover

#endif  // DLROVER_COMMON_RNG_H_
