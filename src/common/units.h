#ifndef DLROVER_COMMON_UNITS_H_
#define DLROVER_COMMON_UNITS_H_

#include <cstdint>

namespace dlrover {

/// Simulated time in seconds since the start of the simulation.
using SimTime = double;

/// Duration in (simulated) seconds.
using Duration = double;

inline constexpr Duration Seconds(double s) { return s; }
inline constexpr Duration Minutes(double m) { return m * 60.0; }
inline constexpr Duration Hours(double h) { return h * 3600.0; }
inline constexpr Duration Days(double d) { return d * 86400.0; }

/// CPU capacity measured in cores (fractional cores allowed, as with
/// Kubernetes millicores).
using Cores = double;

/// Memory in bytes, kept as double: embedding tables reach terabytes and we
/// only ever do arithmetic, never addressing.
using Bytes = double;

inline constexpr Bytes KiB(double v) { return v * 1024.0; }
inline constexpr Bytes MiB(double v) { return v * 1024.0 * 1024.0; }
inline constexpr Bytes GiB(double v) { return v * 1024.0 * 1024.0 * 1024.0; }
inline constexpr Bytes TiB(double v) { return v * 1024.0 * 1024.0 * 1024.0 * 1024.0; }

inline constexpr double ToGiB(Bytes b) { return b / (1024.0 * 1024.0 * 1024.0); }
inline constexpr double ToTiB(Bytes b) { return b / (1024.0 * 1024.0 * 1024.0 * 1024.0); }

/// Network bandwidth in bytes per second.
using Bandwidth = double;

inline constexpr Bandwidth GiBps(double v) { return GiB(v); }
inline constexpr Bandwidth MiBps(double v) { return MiB(v); }

}  // namespace dlrover

#endif  // DLROVER_COMMON_UNITS_H_
