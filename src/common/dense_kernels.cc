#include "common/dense_kernels.h"

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#define DLROVER_X86 1
#include <immintrin.h>
#else
#define DLROVER_X86 0
#endif

namespace dlrover {

namespace {

std::atomic<int> g_mode{static_cast<int>(DenseKernelMode::kScalar)};

double DotScalar(const double* a, const double* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void AxpyScalar(size_t n, double alpha, const double* x, double* y) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

#if DLROVER_X86

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b,
                                                   size_t n) {
  // Four independent 4-lane accumulators hide FMA latency; the final
  // horizontal reduction fixes one deterministic summation order, so the
  // SIMD result is reproducible run to run (just not equal to scalar).
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i),
                           _mm256_loadu_pd(b + i), acc0);
  }
  acc0 = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc0);
  double acc = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(size_t n, double alpha,
                                                  const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(y + i + 4,
                     _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4),
                                     _mm256_loadu_pd(y + i + 4)));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                                            _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#else

bool CpuHasAvx2Fma() { return false; }

#endif  // DLROVER_X86

}  // namespace

bool SimdKernelsAvailable() {
  static const bool available = CpuHasAvx2Fma();
  return available;
}

DenseKernelMode SetDenseKernelMode(DenseKernelMode mode) {
  if (mode == DenseKernelMode::kSimd && !SimdKernelsAvailable()) {
    mode = DenseKernelMode::kScalar;
  }
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
  return mode;
}

DenseKernelMode ActiveDenseKernelMode() {
  return static_cast<DenseKernelMode>(g_mode.load(std::memory_order_relaxed));
}

double KernelDot(const double* a, const double* b, size_t n) {
#if DLROVER_X86
  if (ActiveDenseKernelMode() == DenseKernelMode::kSimd) {
    return DotAvx2(a, b, n);
  }
#endif
  return DotScalar(a, b, n);
}

void KernelAxpy(size_t n, double alpha, const double* x, double* y) {
#if DLROVER_X86
  if (ActiveDenseKernelMode() == DenseKernelMode::kSimd) {
    AxpyAvx2(n, alpha, x, y);
    return;
  }
#endif
  AxpyScalar(n, alpha, x, y);
}

}  // namespace dlrover
