#ifndef DLROVER_COMMON_INLINE_CALLBACK_H_
#define DLROVER_COMMON_INLINE_CALLBACK_H_

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dlrover {

/// A move-only `void()` callable with a small-buffer optimization sized for
/// simulation callbacks. Closures whose captures fit in kInlineBytes are
/// stored directly inside the object — scheduling such a callback performs
/// zero heap allocations, which is what keeps the simulator's steady-state
/// event loop allocation-free (std::function only guarantees inline storage
/// for tiny trivially-copyable captures, ~16 bytes on libstdc++).
/// Oversized closures fall back to a single heap allocation; those appear
/// only on cold paths (job arrival, migration) where a capture hauls a whole
/// config around.
///
/// Dispatch is a pointer to a static ops table (invoke / relocate /
/// destroy), so moving a callback is a relocate of at most kInlineBytes and
/// invoking it is one indirect call — same cost profile as std::function's
/// happy path, without its allocation cliff.
class InlineCallback {
 public:
  /// Inline capture budget. Large enough for every steady-state closure in
  /// the codebase (`this` + a couple of values); a cache line keeps the
  /// event slab slots from sharing lines.
  static constexpr size_t kInlineBytes = 56;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT: implicit like std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT: implicit like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = InlineOps<Fn>();
    } else {
      Fn* heap = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) Fn*(heap);
      ops_ = HeapOps<Fn>();
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty InlineCallback");
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs the payload from `src` storage into `dst` storage and
    /// destroys the source payload.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static const Ops* InlineOps() {
    static constexpr Ops ops = {
        [](void* s) { (*static_cast<Fn*>(s))(); },
        [](void* dst, void* src) noexcept {
          Fn* from = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        },
        [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* HeapOps() {
    static constexpr Ops ops = {
        [](void* s) { (**static_cast<Fn**>(s))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        },
        [](void* s) noexcept { delete *static_cast<Fn**>(s); },
    };
    return &ops;
  }

  void MoveFrom(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace dlrover

#endif  // DLROVER_COMMON_INLINE_CALLBACK_H_
