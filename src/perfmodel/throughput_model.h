#ifndef DLROVER_PERFMODEL_THROUGHPUT_MODEL_H_
#define DLROVER_PERFMODEL_THROUGHPUT_MODEL_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "ps/job_config.h"

namespace dlrover {

/// Fitted parameters of the resource-performance model (paper Eqn 6).
/// All are constrained non-negative (the paper fits them with NNLS).
struct PerfModelParams {
  double alpha_grad = 0.0;
  double alpha_upd = 0.0;
  double alpha_sync = 0.0;
  double alpha_emb = 0.0;
  /// Combined constant term (the paper reports "the sum of beta").
  double beta_sum = 0.0;

  std::string ToString() const;
};

/// One runtime observation: the configuration a job ran with and the
/// iteration time the profiler measured.
struct PerfObservation {
  uint64_t batch_size = 512;
  int workers = 1;
  int ps = 1;
  Cores worker_cpu = 1.0;
  Cores ps_cpu = 1.0;
  double iter_time = 0.0;  // seconds
};

/// The resource-performance model of one job (paper Section 4.1):
///
///   T_iter = a_grad * (m / lw) + a_upd * (w / (p * lp))
///          + a_sync * ((M/p) / (B/w)) + a_emb * (m * D / p) + beta
///   Psi    = w * m / T_iter
///
/// Job-level constants M (dense model bytes), D (embedding dim) and B
/// (bandwidth) are fixed at construction; the alphas/beta are fitted online.
class ThroughputModel {
 public:
  ThroughputModel(Bytes dense_param_bytes, int embedding_dim,
                  Bandwidth network_bandwidth)
      : dense_param_bytes_(dense_param_bytes),
        embedding_dim_(embedding_dim),
        bandwidth_(network_bandwidth) {}

  /// The model's linear basis evaluated at a configuration:
  /// [m/lw, w/(p*lp), M*w/(p*B), m*D/p, 1].
  std::array<double, 5> Features(uint64_t batch_size, int workers, int ps,
                                 Cores worker_cpu, Cores ps_cpu) const;

  double PredictIterTime(const PerfModelParams& params, uint64_t batch_size,
                         const JobConfig& config) const;
  double PredictThroughput(const PerfModelParams& params, uint64_t batch_size,
                           const JobConfig& config) const;

  Bytes dense_param_bytes() const { return dense_param_bytes_; }
  int embedding_dim() const { return embedding_dim_; }
  Bandwidth bandwidth() const { return bandwidth_; }

 private:
  Bytes dense_param_bytes_;
  int embedding_dim_;
  Bandwidth bandwidth_;
};

/// Accumulates profiler observations and fits the model with non-negative
/// least squares. Rows are weighted by 1/(1+T) so the linear NNLS objective
/// approximates the paper's RMSLE criterion
/// (d log1p(T) = dT / (1+T), so weighted absolute error ~ log error).
class ModelFitter {
 public:
  explicit ModelFitter(const ThroughputModel& model) : model_(model) {}

  void AddObservation(const PerfObservation& obs);
  void Clear() { observations_.clear(); }
  size_t observation_count() const { return observations_.size(); }
  const std::vector<PerfObservation>& observations() const {
    return observations_;
  }

  /// True when enough diverse observations exist for a meaningful fit.
  bool ReadyToFit() const;

  /// Fits the non-negative parameters. Returns kFailedPrecondition when the
  /// data is insufficient or degenerate.
  StatusOr<PerfModelParams> Fit() const;

  /// RMSLE of `params` against the stored observations.
  double EvaluateRmsle(const PerfModelParams& params) const;
  /// R^2 of predicted iteration times against observed ones.
  double EvaluateRSquared(const PerfModelParams& params) const;

 private:
  ThroughputModel model_;
  std::vector<PerfObservation> observations_;
};

}  // namespace dlrover

#endif  // DLROVER_PERFMODEL_THROUGHPUT_MODEL_H_
