#ifndef DLROVER_PERFMODEL_PROFILE_INGEST_H_
#define DLROVER_PERFMODEL_PROFILE_INGEST_H_

#include <cstddef>

#include "perfmodel/throughput_model.h"
#include "ps/training_job.h"

namespace dlrover {

/// Feeds a job's new profiler samples (from `*cursor` onward) into `fitter`
/// as PerfObservations and advances the cursor. Zero-progress windows are
/// skipped. Shared by the cluster brain and the baseline schedulers.
inline void IngestJobHistory(const TrainingJob& job, size_t* cursor,
                             ModelFitter* fitter) {
  const auto& history = job.history();
  for (; *cursor < history.size(); ++(*cursor)) {
    const ThroughputSample& sample = history[*cursor];
    if (sample.observed_iter_time <= 0.0 || sample.active_workers <= 0) {
      continue;
    }
    PerfObservation obs;
    obs.batch_size = job.spec().batch_size;
    obs.workers = sample.active_workers;
    obs.ps = sample.config.num_ps;
    obs.worker_cpu = sample.config.worker_cpu;
    obs.ps_cpu = sample.config.ps_cpu;
    obs.iter_time = sample.observed_iter_time;
    fitter->AddObservation(obs);
  }
}

}  // namespace dlrover

#endif  // DLROVER_PERFMODEL_PROFILE_INGEST_H_
