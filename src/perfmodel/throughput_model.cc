#include "perfmodel/throughput_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <tuple>

#include "common/matrix.h"
#include "common/stats.h"

namespace dlrover {

std::string PerfModelParams::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{a_grad=%.4g, a_upd=%.4g, a_sync=%.4g, a_emb=%.4g, "
                "beta=%.4g}",
                alpha_grad, alpha_upd, alpha_sync, alpha_emb, beta_sum);
  return buf;
}

std::array<double, 5> ThroughputModel::Features(uint64_t batch_size,
                                                int workers, int ps,
                                                Cores worker_cpu,
                                                Cores ps_cpu) const {
  const double m = static_cast<double>(batch_size);
  const double w = std::max(1, workers);
  const double p = std::max(1, ps);
  // Saturate at TF's op parallelism limits, mirroring the runtime laws.
  const double lw = std::min(std::max(0.1, worker_cpu), 12.0);
  const double lp = std::min(std::max(0.1, ps_cpu), 10.0);
  return {
      m / lw,
      w / (p * lp),
      dense_param_bytes_ * w / (p * bandwidth_),
      m * static_cast<double>(embedding_dim_) / p,
      1.0,
  };
}

double ThroughputModel::PredictIterTime(const PerfModelParams& params,
                                        uint64_t batch_size,
                                        const JobConfig& config) const {
  const auto f = Features(batch_size, config.num_workers, config.num_ps,
                          config.worker_cpu, config.ps_cpu);
  return params.alpha_grad * f[0] + params.alpha_upd * f[1] +
         params.alpha_sync * f[2] + params.alpha_emb * f[3] +
         params.beta_sum * f[4];
}

double ThroughputModel::PredictThroughput(const PerfModelParams& params,
                                          uint64_t batch_size,
                                          const JobConfig& config) const {
  const double t = PredictIterTime(params, batch_size, config);
  if (t <= 0.0) return 0.0;
  return static_cast<double>(config.num_workers) *
         static_cast<double>(batch_size) / t;
}

void ModelFitter::AddObservation(const PerfObservation& obs) {
  if (obs.iter_time <= 0.0) return;  // paused / stalled windows carry no info
  observations_.push_back(obs);
}

bool ModelFitter::ReadyToFit() const {
  if (observations_.size() < 6) return false;
  // Require at least two distinct configurations (any decision variable
  // counts); with a single configuration every basis column is collinear
  // with the constant term and the fit is meaningless.
  std::set<std::tuple<int, int, double, double>> shapes;
  for (const auto& o : observations_) {
    shapes.insert({o.workers, o.ps, o.worker_cpu, o.ps_cpu});
  }
  return shapes.size() >= 2;
}

StatusOr<PerfModelParams> ModelFitter::Fit() const {
  if (observations_.size() < 5) {
    return FailedPreconditionError("not enough observations to fit");
  }
  Matrix a(observations_.size(), 5);
  std::vector<double> b(observations_.size());
  for (size_t i = 0; i < observations_.size(); ++i) {
    const PerfObservation& o = observations_[i];
    const auto f = model_.Features(o.batch_size, o.workers, o.ps,
                                   o.worker_cpu, o.ps_cpu);
    // Weight each row by 1/(1+T): linearized RMSLE (see header).
    const double weight = 1.0 / (1.0 + o.iter_time);
    for (size_t j = 0; j < 5; ++j) a(i, j) = f[j] * weight;
    b[i] = o.iter_time * weight;
  }
  auto solved = NnlsSolve(a, b);
  if (!solved.ok()) return solved.status();
  const std::vector<double>& x = *solved;
  PerfModelParams params;
  params.alpha_grad = x[0];
  params.alpha_upd = x[1];
  params.alpha_sync = x[2];
  params.alpha_emb = x[3];
  params.beta_sum = x[4];
  return params;
}

double ModelFitter::EvaluateRmsle(const PerfModelParams& params) const {
  if (observations_.empty()) return 0.0;
  std::vector<double> predicted;
  std::vector<double> actual;
  predicted.reserve(observations_.size());
  actual.reserve(observations_.size());
  for (const auto& o : observations_) {
    JobConfig config;
    config.num_workers = o.workers;
    config.num_ps = o.ps;
    config.worker_cpu = o.worker_cpu;
    config.ps_cpu = o.ps_cpu;
    predicted.push_back(model_.PredictIterTime(params, o.batch_size, config));
    actual.push_back(o.iter_time);
  }
  return Rmsle(predicted, actual);
}

double ModelFitter::EvaluateRSquared(const PerfModelParams& params) const {
  if (observations_.empty()) return 0.0;
  std::vector<double> predicted;
  std::vector<double> actual;
  for (const auto& o : observations_) {
    JobConfig config;
    config.num_workers = o.workers;
    config.num_ps = o.ps;
    config.worker_cpu = o.worker_cpu;
    config.ps_cpu = o.ps_cpu;
    predicted.push_back(model_.PredictIterTime(params, o.batch_size, config));
    actual.push_back(o.iter_time);
  }
  return RSquared(predicted, actual);
}

}  // namespace dlrover
