#include "cluster/node_health.h"

#include <cmath>

namespace dlrover {

std::string NodeHealthStateName(NodeHealthState state) {
  switch (state) {
    case NodeHealthState::kHealthy:
      return "healthy";
    case NodeHealthState::kSuspect:
      return "suspect";
    case NodeHealthState::kCordoned:
      return "cordoned";
  }
  return "unknown";
}

NodeHealthTracker::NodeHealthTracker(const NodeHealthOptions& options,
                                     size_t num_nodes)
    : options_(options), entries_(num_nodes) {}

void NodeHealthTracker::Decay(Entry& e, SimTime now) const {
  if (now <= e.score_time) return;
  if (e.score > 0.0 && options_.half_life > 0.0) {
    e.score *= std::exp2(-(now - e.score_time) / options_.half_life);
  }
  e.score_time = now;
}

void NodeHealthTracker::AddEvidence(NodeId node, double weight, SimTime now) {
  Entry& e = entries_[node];
  Decay(e, now);
  e.score += weight;
}

void NodeHealthTracker::ObservePodStopped(NodeId node, PodStopReason reason,
                                          Duration uptime, SimTime now) {
  double weight = 0.0;
  switch (reason) {
    case PodStopReason::kCrash:
      weight = options_.crash_weight;
      break;
    case PodStopReason::kOomKill:
      weight = options_.oom_weight;
      break;
    default:
      return;  // completions / preemptions / owner kills are not evidence
  }
  if (uptime >= 0.0 && uptime < options_.churn_uptime) {
    weight += options_.churn_weight;
  }
  AddEvidence(node, weight, now);
}

void NodeHealthTracker::ObserveStraggler(NodeId node, uint64_t source,
                                         SimTime now) {
  (void)now;  // folded into the score at the next Tick
  Entry& e = entries_[node];
  for (uint64_t s : e.straggler_sources) {
    if (s == source) return;
  }
  e.straggler_sources.push_back(source);
}

void NodeHealthTracker::ObservePsSlowdown(NodeId node, uint64_t source,
                                          SimTime now) {
  (void)now;  // folded into the score at the next Tick
  Entry& e = entries_[node];
  for (uint64_t s : e.ps_slowdown_sources) {
    if (s == source) return;
  }
  e.ps_slowdown_sources.push_back(source);
}

void NodeHealthTracker::ObserveNodeMemory(NodeId node, double used_fraction,
                                          SimTime now) {
  Entry& e = entries_[node];
  if (e.window_min < 0.0) {
    e.window_min = used_fraction;
    e.window_start = now;
    return;
  }
  if (used_fraction < e.window_min) e.window_min = used_fraction;
  if (now - e.window_start < options_.leak_window) return;
  // The window closed: difference its floor against the previous window's.
  // The unaccounted share of a healthy node stays flat, so the floor stays
  // put; leaked memory is never given back, so the floor creeps at the
  // leak rate.
  if (e.prev_min >= 0.0) {
    const double slope = (e.window_min - e.prev_min) / (now - e.window_start);
    if (slope > options_.leak_slope_threshold &&
        slope <= options_.leak_slope_ceiling) {
      ++e.rising_streak;
      if (e.rising_streak >= options_.leak_streak) {
        AddEvidence(node, options_.leak_weight, now);
      }
    } else {
      e.rising_streak = 0;
    }
  }
  e.prev_min = e.window_min;
  e.window_start = now;
  e.window_min = used_fraction;
}

void NodeHealthTracker::Transition(Entry& e, NodeId node, NodeHealthState to,
                                   SimTime now) {
  log_.push_back(NodeHealthEvent{now, node, e.state, to, e.score});
  if (to == NodeHealthState::kCordoned) {
    e.cordoned_at = now;
    ++cordons_;
  } else if (e.state == NodeHealthState::kCordoned) {
    ++uncordons_;
  }
  e.state = to;
}

const std::vector<NodeHealthTracker::Action>& NodeHealthTracker::Tick(
    SimTime now) {
  actions_.clear();
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    const NodeId node = static_cast<NodeId>(i);
    if (!e.straggler_sources.empty()) {
      // >= 2 distinct slow pods corroborate each other (node-level
      // degradation); a single source is weak evidence.
      const double n = static_cast<double>(e.straggler_sources.size());
      AddEvidence(node,
                  n >= 2.0 ? options_.straggler_weight * n
                           : options_.straggler_single_weight,
                  now);
      e.straggler_sources.clear();
    }
    if (!e.ps_slowdown_sources.empty()) {
      // A PS-hosting node slowed a whole job uniformly. Cross-job
      // corroboration is near-certain; a single job's verdict is already
      // heavily gated at the source (see TrainingJob) and still counts.
      const double n = static_cast<double>(e.ps_slowdown_sources.size());
      AddEvidence(node,
                  n >= 2.0 ? options_.ps_slowdown_weight * n
                           : options_.ps_slowdown_single_weight,
                  now);
      e.ps_slowdown_sources.clear();
    }
    Decay(e, now);
    switch (e.state) {
      case NodeHealthState::kHealthy:
        if (e.score >= options_.cordon_threshold) {
          Transition(e, node, NodeHealthState::kCordoned, now);
          actions_.push_back(Action{node, /*cordon=*/true});
        } else if (e.score >= options_.suspect_threshold) {
          Transition(e, node, NodeHealthState::kSuspect, now);
        }
        break;
      case NodeHealthState::kSuspect:
        if (e.score >= options_.cordon_threshold) {
          Transition(e, node, NodeHealthState::kCordoned, now);
          actions_.push_back(Action{node, /*cordon=*/true});
        } else if (e.score < options_.clear_threshold) {
          Transition(e, node, NodeHealthState::kHealthy, now);
        }
        break;
      case NodeHealthState::kCordoned:
        if (now - e.cordoned_at >= options_.min_cordon &&
            e.score <= options_.clear_threshold) {
          Transition(e, node, NodeHealthState::kHealthy, now);
          actions_.push_back(Action{node, /*cordon=*/false});
        }
        break;
    }
  }
  return actions_;
}

double NodeHealthTracker::score(NodeId node, SimTime now) const {
  const Entry& e = entries_[node];
  if (now <= e.score_time || e.score <= 0.0 || options_.half_life <= 0.0) {
    return e.score;
  }
  return e.score * std::exp2(-(now - e.score_time) / options_.half_life);
}

}  // namespace dlrover
