#ifndef DLROVER_CLUSTER_RESOURCES_H_
#define DLROVER_CLUSTER_RESOURCES_H_

#include <algorithm>
#include <string>

#include "common/units.h"

namespace dlrover {

/// A bundle of schedulable resources (CPU cores + memory bytes). This is the
/// granularity at which pods request and nodes offer capacity.
struct ResourceSpec {
  Cores cpu = 0.0;
  Bytes memory = 0.0;

  ResourceSpec operator+(const ResourceSpec& o) const {
    return {cpu + o.cpu, memory + o.memory};
  }
  ResourceSpec operator-(const ResourceSpec& o) const {
    return {cpu - o.cpu, memory - o.memory};
  }
  ResourceSpec& operator+=(const ResourceSpec& o) {
    cpu += o.cpu;
    memory += o.memory;
    return *this;
  }
  ResourceSpec& operator-=(const ResourceSpec& o) {
    cpu -= o.cpu;
    memory -= o.memory;
    return *this;
  }
  ResourceSpec operator*(double k) const { return {cpu * k, memory * k}; }

  /// True if this request fits inside `capacity` (component-wise), with a
  /// tiny epsilon so accumulated float error never blocks a legal placement.
  bool FitsIn(const ResourceSpec& capacity) const {
    constexpr double kEps = 1e-9;
    return cpu <= capacity.cpu + kEps && memory <= capacity.memory + kEps;
  }

  bool IsZero() const { return cpu == 0.0 && memory == 0.0; }

  std::string ToString() const;
};

/// Pod priority classes; higher wins. The cluster preempts lower-priority
/// pods when a higher-priority request cannot be placed (the paper's
/// "workload consolidation" pressure on training jobs).
enum class PriorityClass : int {
  kBestEffort = 0,
  kTraining = 10,
  kStream = 50,
  kOnline = 100,
};

std::string PriorityClassName(PriorityClass p);

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_RESOURCES_H_
