#include "cluster/background_load.h"

#include <algorithm>
#include <cmath>

namespace dlrover {

BackgroundLoad::BackgroundLoad(Simulator* sim, Cluster* cluster,
                               const BackgroundLoadOptions& options)
    : sim_(sim), cluster_(cluster), options_(options), rng_(options.seed) {
  task_ = std::make_unique<PeriodicTask>(sim_, options_.reconcile_interval,
                                         [this] { Reconcile(); });
}

void BackgroundLoad::Start() { task_->Start(); }

void BackgroundLoad::Stop() {
  task_->Stop();
  for (PodId id : pods_) cluster_->KillPod(id);
  pods_.clear();
  dead_.clear();
}

double BackgroundLoad::TargetFraction() const {
  const double phase = 2.0 * M_PI * sim_->Now() / options_.period;
  const double diurnal = std::max(0.0, std::sin(phase));
  return std::clamp(options_.base_fraction + options_.peak_fraction * diurnal,
                    0.0, 0.95);
}

void BackgroundLoad::Reconcile() {
  // Drop references to pods that terminated (preempted pods of ours cannot
  // exist — we are top priority — but owner kills can race). Every pod's
  // stop callback records its id in `dead_`, so one stable in-place pass
  // removes exactly the pods the old resolve-every-id loop filtered out,
  // in the same order, without allocating once the vectors are warm.
  if (!dead_.empty()) {
    pods_.erase(std::remove_if(pods_.begin(), pods_.end(),
                               [this](PodId id) {
                                 return std::find(dead_.begin(), dead_.end(),
                                                  id) != dead_.end();
                               }),
                pods_.end());
    dead_.clear();
  }

  const double jitter = 1.0 + 0.05 * rng_.Normal();
  const double target_cpu =
      TargetFraction() * jitter * cluster_->TotalCapacity().cpu;
  const double have_cpu =
      static_cast<double>(pods_.size()) * options_.pod_size.cpu;

  if (have_cpu < target_cpu - options_.pod_size.cpu) {
    const int to_add = static_cast<int>(
        (target_cpu - have_cpu) / options_.pod_size.cpu);
    for (int i = 0; i < to_add; ++i) {
      PodSpec spec;
      spec.name = "bg-service";
      spec.request = options_.pod_size;
      spec.priority = options_.priority;
      const PodId id = cluster_->CreatePod(
          std::move(spec),
          [this](Pod& pod) {
            // Online service pods run hot: report near-full usage.
            cluster_->ReportUsage(pod.id, pod.spec.request * 0.8);
          },
          [this](Pod& pod, PodStopReason) { dead_.push_back(pod.id); });
      pods_.push_back(id);
    }
  } else if (have_cpu > target_cpu + options_.pod_size.cpu) {
    int to_remove = static_cast<int>(
        (have_cpu - target_cpu) / options_.pod_size.cpu);
    while (to_remove-- > 0 && !pods_.empty()) {
      cluster_->KillPod(pods_.back());
      pods_.pop_back();
    }
  }
}

}  // namespace dlrover
