#ifndef DLROVER_CLUSTER_NODE_HEALTH_H_
#define DLROVER_CLUSTER_NODE_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/pod.h"
#include "common/units.h"

namespace dlrover {

/// Graded node-health classification (paper Section 5: the job master
/// blacklists nodes behind repeated anomalies instead of treating every
/// fault as an isolated pod event).
enum class NodeHealthState : int {
  kHealthy = 0,
  kSuspect = 1,   // accumulating evidence; brain stops proposing capacity
  kCordoned = 2,  // excluded from placement; resident pods being drained
};

std::string NodeHealthStateName(NodeHealthState state);

/// Tunables for the evidence-based node-health tracker. The defaults are
/// chosen so that a single isolated pod crash makes a node Suspect at most
/// (one crash decays back to Healthy within a few half-lives) while any
/// repeating per-node pattern — crash bursts, relaunch churn, persistent
/// stragglers, monotone memory growth — crosses the cordon threshold within
/// a few evidence ticks.
struct NodeHealthOptions {
  /// Cadence of the classification tick (decay + state transitions).
  Duration tick_interval = Seconds(30);
  /// Exponential half-life of the per-node suspicion score.
  Duration half_life = Minutes(8);
  /// Evidence weights folded into the EWMA suspicion score.
  double crash_weight = 1.0;
  double oom_weight = 1.2;
  /// Extra weight when a pod dies within `churn_uptime` of entering Running
  /// (relaunch churn: the signature of flaky / crash-looping nodes).
  double churn_weight = 1.0;
  Duration churn_uptime = Seconds(90);
  /// Straggler verdicts from the HeartbeatMonitor are tallied per tick by
  /// distinct reported pod. Two or more distinct slow pods on one node is
  /// the node-level degradation signature and adds `straggler_weight` per
  /// pod per tick (cordons within minutes); a lone slow pod is more likely
  /// a pod-scoped problem and adds only `straggler_single_weight`, sized to
  /// saturate between the suspect and cordon thresholds — the node turns
  /// Suspect but is never cordoned on one pod's word alone.
  double straggler_weight = 0.5;
  double straggler_single_weight = 0.08;
  /// Degraded-PS evidence (the DESIGN §14 blind spot): a job whose *entire*
  /// worker group sustains a throughput collapse relative to its own best —
  /// with no intra-job straggler flagged and no recent rescale to explain it
  /// — charges the nodes hosting its parameter servers. Tallied per tick by
  /// distinct reporting job: two or more jobs corroborating one node is
  /// near-certain node degradation (`ps_slowdown_weight` per job per tick);
  /// a single job's verdict is already heavily gated on the job side
  /// (sustained drop vs own best, straggler-free, disruption-free), so it
  /// carries real weight too — enough to cordon within ~5-6 minutes of
  /// sustained collapse, unlike the one-straggler case.
  double ps_slowdown_weight = 0.5;
  double ps_slowdown_single_weight = 0.4;
  /// Leak evidence works on the node's *unaccounted* memory — the share no
  /// resident pod's cgroup explains. Slopes of total node memory are useless
  /// for this: placement and completion churn swings the used fraction by
  /// several percent within minutes, so short-window slopes of the raw
  /// signal land in any band all the time, while the system/kernel share
  /// stays flat on a healthy node no matter what the workload does. The
  /// tracker takes the minimum sample within each `leak_window` and
  /// differences consecutive window minima (the floor — so even a transient
  /// spike in the unaccounted share cannot fake creep). A floor slope
  /// inside (`leak_slope_threshold`, `leak_slope_ceiling`] (fraction of
  /// node capacity per second) for `leak_streak` consecutive windows adds
  /// `leak_weight` per window; the ceiling rejects step jumps (a reserved
  /// hugepage pool appearing, say), which also reset the streak — as does
  /// any flat or falling window.
  Duration leak_window = Minutes(2);
  double leak_weight = 1.2;
  double leak_slope_threshold = 1.0e-4;
  double leak_slope_ceiling = 1.0e-3;
  int leak_streak = 3;
  /// Hysteresis thresholds on the decayed score. The cordon threshold is
  /// sized so that a burst of independent background pod crashes landing on
  /// one node by coincidence (two or three within minutes, worth ~1-2 each
  /// with churn) stays below it, while any repeating per-node pattern —
  /// crash-looping relaunches, corroborated stragglers, sustained
  /// unaccounted-memory creep — saturates well above it within a few
  /// evidence ticks.
  double suspect_threshold = 1.2;
  double cordon_threshold = 3.5;
  /// A cordoned node is released only after `min_cordon` has elapsed AND the
  /// score has decayed below `clear_threshold`; a suspect node returns to
  /// healthy below `clear_threshold` as well.
  double clear_threshold = 0.4;
  Duration min_cordon = Minutes(15);
};

/// One state transition, kept for scorecards and tests.
struct NodeHealthEvent {
  SimTime time = 0.0;
  NodeId node = 0;
  NodeHealthState from = NodeHealthState::kHealthy;
  NodeHealthState to = NodeHealthState::kHealthy;
  /// Decayed suspicion score at the moment of the transition.
  double score = 0.0;

  bool operator==(const NodeHealthEvent& o) const {
    return time == o.time && node == o.node && from == o.from && to == o.to &&
           score == o.score;
  }
};

/// Folds per-node evidence (pod failures, relaunch churn, straggler
/// verdicts, usage slope) into an exponentially-decayed suspicion score with
/// hysteresis, classifying nodes Healthy -> Suspect -> Cordoned.
///
/// Pure bookkeeping, fully deterministic: the owner (Cluster) feeds
/// observations from its existing pod-lifecycle callbacks and drives time by
/// calling Tick(now); Tick returns the cordon/uncordon actions for the owner
/// to apply. No RNG, no clock reads, no allocation on warm ticks.
class NodeHealthTracker {
 public:
  NodeHealthTracker(const NodeHealthOptions& options, size_t num_nodes);

  /// Evidence: a placed pod on `node` stopped with `reason` (only crash-like
  /// reasons are worth reporting) after `uptime` seconds in Running
  /// (negative = never ran).
  void ObservePodStopped(NodeId node, PodStopReason reason, Duration uptime,
                         SimTime now);
  /// Evidence: the HeartbeatMonitor holds a straggler verdict against pod
  /// `source` resident on `node`. Reports are tallied by distinct source
  /// and folded into the score at the next Tick.
  void ObserveStraggler(NodeId node, uint64_t source, SimTime now);
  /// Evidence: job `source` reports a sustained uniform slowdown of its
  /// whole worker group and `node` hosts one of its parameter servers.
  /// Tallied by distinct source job and folded in at the next Tick.
  void ObservePsSlowdown(NodeId node, uint64_t source, SimTime now);
  /// Sample of the node's unaccounted used-memory fraction (node total
  /// minus the pod-attributed sum); leak evidence is derived internally
  /// from the rising-floor signal across consecutive sample windows.
  void ObserveNodeMemory(NodeId node, double used_fraction, SimTime now);

  struct Action {
    NodeId node = 0;
    bool cordon = false;  // false = uncordon
  };

  /// Decays every score to `now`, applies the hysteresis state machine, and
  /// returns the transitions the owner must apply. The returned reference is
  /// scratch reused across calls.
  const std::vector<Action>& Tick(SimTime now);

  NodeHealthState state(NodeId node) const { return entries_[node].state; }
  /// Suspicion score decayed to `now` (does not mutate).
  double score(NodeId node, SimTime now) const;
  /// Every state transition, in occurrence order.
  const std::vector<NodeHealthEvent>& log() const { return log_; }
  uint64_t cordons() const { return cordons_; }
  uint64_t uncordons() const { return uncordons_; }

 private:
  struct Entry {
    double score = 0.0;
    SimTime score_time = 0.0;  // time the score was last decayed to
    NodeHealthState state = NodeHealthState::kHealthy;
    SimTime cordoned_at = 0.0;
    // Usage-floor bookkeeping: minimum sample within the current
    // `leak_window`, and the previous window's minimum to difference
    // against (-1 = not yet populated).
    double window_min = -1.0;
    SimTime window_start = 0.0;
    double prev_min = -1.0;
    int rising_streak = 0;
    // Distinct pods reported as stragglers since the last Tick.
    std::vector<uint64_t> straggler_sources;
    // Distinct jobs reporting PS-attributed slowdown since the last Tick.
    std::vector<uint64_t> ps_slowdown_sources;
  };

  /// Decays `e.score` to `now` in place.
  void Decay(Entry& e, SimTime now) const;
  void AddEvidence(NodeId node, double weight, SimTime now);
  void Transition(Entry& e, NodeId node, NodeHealthState to, SimTime now);

  NodeHealthOptions options_;
  std::vector<Entry> entries_;
  std::vector<Action> actions_;  // Tick scratch
  std::vector<NodeHealthEvent> log_;
  uint64_t cordons_ = 0;
  uint64_t uncordons_ = 0;
};

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_NODE_HEALTH_H_
