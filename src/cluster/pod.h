#ifndef DLROVER_CLUSTER_POD_H_
#define DLROVER_CLUSTER_POD_H_

#include <cstdint>
#include <functional>
#include <string>

#include "cluster/resources.h"
#include "common/units.h"

namespace dlrover {

using PodId = uint64_t;
using NodeId = uint32_t;

/// Pod lifecycle. Pending -> Starting (image pull / container boot) ->
/// Running -> one of the terminal states.
enum class PodPhase : int {
  kPending = 0,
  kStarting = 1,
  kRunning = 2,
  kSucceeded = 3,
  kFailed = 4,     // crashed (node/network fault or OOM-kill)
  kPreempted = 5,  // evicted for a higher-priority pod
  kKilled = 6,     // deleted by its owner (scale-down, migration)
};

std::string PodPhaseName(PodPhase phase);

/// Why a pod left the Running state; delivered to the owner's callback.
enum class PodStopReason : int {
  kCompleted = 0,
  kCrash = 1,
  kOomKill = 2,
  kPreemption = 3,
  kOwnerKill = 4,
};

std::string PodStopReasonName(PodStopReason reason);

/// Immutable description the owner supplies when creating a pod.
struct PodSpec {
  std::string name;
  ResourceSpec request;
  PriorityClass priority = PriorityClass::kTraining;
  /// Identifier of the owning job (0 = standalone / background).
  uint64_t owner_job = 0;
};

/// A pod instance tracked by the cluster. Owners interact through Cluster
/// (CreatePod/KillPod) and observe transitions via callbacks.
struct Pod {
  PodId id = 0;
  PodSpec spec;
  PodPhase phase = PodPhase::kPending;
  NodeId node = 0;  // valid once phase >= kStarting
  /// Monotonic creation ordinal assigned by the cluster (directory position).
  /// Unlike PodId it is never recycled, so indexes keyed on it reproduce
  /// creation-order iteration exactly.
  uint64_t creation_seq = 0;

  SimTime submit_time = 0.0;
  SimTime start_time = -1.0;  // entered kRunning
  SimTime end_time = -1.0;    // entered a terminal phase

  /// Effective speed multiplier (node heterogeneity x straggler injection).
  /// 1.0 = nominal hardware; 0.03 models the paper's "3% CPU" straggler.
  double speed_factor = 1.0;

  /// Live usage set by the owning job each profiling tick; the cluster sums
  /// these for utilisation metrics. Usage never exceeds the request.
  ResourceSpec usage;

  /// Fired when the pod transitions to kRunning.
  std::function<void(Pod&)> on_running;
  /// Fired when the pod leaves kRunning (or is cancelled while pending).
  std::function<void(Pod&, PodStopReason)> on_stopped;

  bool terminal() const {
    return phase == PodPhase::kSucceeded || phase == PodPhase::kFailed ||
           phase == PodPhase::kPreempted || phase == PodPhase::kKilled;
  }
};

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_POD_H_
