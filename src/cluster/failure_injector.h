#ifndef DLROVER_CLUSTER_FAILURE_INJECTOR_H_
#define DLROVER_CLUSTER_FAILURE_INJECTOR_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace dlrover {

/// Tunables for cloud-instability injection. Defaults reproduce the paper's
/// observed rates: 1.5% daily per-pod failure probability and straggler
/// pods degraded to 3% of nominal speed.
struct FailureInjectorOptions {
  /// Poisson rate of failures per pod per day (the paper observes 1.5%
  /// daily for a single pod; fleet benches compress exposure upward).
  double daily_pod_failure_rate = 0.015;
  /// Poisson rate of straggler onsets per pod per day.
  double daily_straggler_rate = 0.0;
  /// Speed factor applied to straggler pods (paper: 3% of tuned CPU).
  double straggler_speed_factor = 0.03;
  /// Check interval for injection sweeps.
  Duration sweep_interval = Minutes(1);
  /// Restrict injection to pods of this priority class (training pods).
  PriorityClass target_priority = PriorityClass::kTraining;
  uint64_t seed = 97;
};

/// Periodically sweeps running pods and injects crashes / stragglers with
/// per-sweep probabilities derived from the configured daily rates, modeling
/// the memoryless failure process of a shared cloud.
class FailureInjector {
 public:
  FailureInjector(Simulator* sim, Cluster* cluster,
                  const FailureInjectorOptions& options);

  void Start();
  void Stop();

  uint64_t crashes_injected() const { return crashes_; }
  uint64_t stragglers_injected() const { return stragglers_; }

 private:
  void Sweep();

  Simulator* sim_;
  Cluster* cluster_;
  FailureInjectorOptions options_;
  Rng rng_;
  uint64_t crashes_ = 0;
  uint64_t stragglers_ = 0;
  /// Victim scratch reused across sweeps (warm sweeps are allocation-free).
  std::vector<PodId> to_crash_;
  std::vector<PodId> to_degrade_;
  std::unique_ptr<PeriodicTask> task_;
};

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_FAILURE_INJECTOR_H_
