#ifndef DLROVER_CLUSTER_FAILURE_INJECTOR_H_
#define DLROVER_CLUSTER_FAILURE_INJECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace dlrover {

/// Ground-truth label for one injected fault. Pod-scoped kinds target a
/// PodId; node-scoped grey kinds target a NodeId.
enum class FaultKind : int {
  kPodCrash = 0,       // single running pod crashed
  kPodStraggler = 1,   // single running pod degraded to straggler speed
  kFlakyNode = 2,      // intermittent pod crashes on one node
  kDegradedNode = 3,   // node speed factor applied to every resident pod
  kMemoryLeak = 4,     // creeping node usage until resident pods OOM
  kCrashLoop = 5,      // pods (re)launched on the node die within seconds
  kNodePartition = 6,  // node's control traffic severed from its master
  kCellPartition = 7,  // masters severed from the cluster brain
  kMasterCrash = 8,    // one job master's process killed (failover path)
};

std::string FaultKindName(FaultKind kind);

/// One audit-log entry: the labeled ground truth the resilience scorecard
/// compares detections against. Deterministic for a fixed seed regardless of
/// sharded-simulator lane count (each cell's injector draws from its own
/// stream).
struct FaultRecord {
  SimTime time = 0.0;      // onset
  FaultKind kind = FaultKind::kPodCrash;
  uint64_t target = 0;     // PodId for pod kinds, NodeId for node kinds
  /// The afflicted node (== target for node kinds; the victim pod's node
  /// for pod kinds) — lets scorecards localize pod-scoped injections.
  uint64_t node = 0;
  Duration duration = 0.0;  // 0 for instantaneous pod kinds
  /// Observable effects the fault actually produced (crashes, OOM kills,
  /// degraded pods). A grey fault on an idle node manifests nothing and is
  /// excluded from recall denominators.
  uint64_t symptoms = 0;

  bool operator==(const FaultRecord& o) const {
    return time == o.time && kind == o.kind && target == o.target &&
           node == o.node && duration == o.duration && symptoms == o.symptoms;
  }
};

/// Tunables for cloud-instability injection. Defaults reproduce the paper's
/// observed rates: 1.5% daily per-pod failure probability and straggler
/// pods degraded to 3% of nominal speed. The node-scoped grey-fault rates
/// all default to 0: with them at 0 the injector draws exactly the same RNG
/// sequence as before they existed, so every pre-existing bench golden is
/// byte-identical.
struct FailureInjectorOptions {
  /// Poisson rate of failures per pod per day (the paper observes 1.5%
  /// daily for a single pod; fleet benches compress exposure upward).
  double daily_pod_failure_rate = 0.015;
  /// Poisson rate of straggler onsets per pod per day.
  double daily_straggler_rate = 0.0;
  /// Speed factor applied to straggler pods (paper: 3% of tuned CPU).
  double straggler_speed_factor = 0.03;
  /// Check interval for injection sweeps.
  Duration sweep_interval = Minutes(1);
  /// Restrict injection to pods of this priority class (training pods).
  PriorityClass target_priority = PriorityClass::kTraining;
  uint64_t seed = 97;

  // ---- Node-scoped grey faults (all rates per node per day) ----
  /// Flaky node: each resident running target pod crashes with
  /// `flaky_crash_prob` per sweep while the fault is active.
  double daily_node_flaky_rate = 0.0;
  double flaky_crash_prob = 0.30;
  /// Degraded node: every resident pod is slowed to `degraded_speed_factor`
  /// for the fault duration (speed restored to the node's nominal factor on
  /// expiry).
  double daily_node_degraded_rate = 0.0;
  double degraded_speed_factor = 0.25;
  /// Memory leak: phantom node usage creeps at `leak_rate_per_min` until the
  /// node's used-memory fraction exceeds `leak_oom_fraction`, after which
  /// one resident target pod is OOM-killed per sweep.
  double daily_node_leak_rate = 0.0;
  Bytes leak_rate_per_min = GiB(4);
  double leak_oom_fraction = 0.92;
  /// Crash loop: any target pod that entered Running on the node after fault
  /// onset dies within one sweep of starting.
  double daily_node_crashloop_rate = 0.0;
  /// Grey-fault duration, sampled uniformly at onset.
  Duration grey_min_duration = Minutes(20);
  Duration grey_max_duration = Minutes(60);

  // ---- Control-plane faults (require an attached ControlChannel) ----
  /// Node partition: the node's heartbeats / shard reports to the master are
  /// dropped for the fault duration (rate per node per day).
  double daily_node_partition_rate = 0.0;
  /// Cell partition: every master<->brain message is dropped for the fault
  /// duration (rate per cell per day).
  double daily_cell_partition_rate = 0.0;
  /// Master crash: one live registered job master is killed; the channel's
  /// failover machinery restarts it with a bumped epoch (rate per master per
  /// day).
  double daily_master_crash_rate = 0.0;
  /// Partition duration, sampled uniformly at onset.
  Duration partition_min_duration = Minutes(2);
  Duration partition_max_duration = Minutes(8);
};

/// Periodically sweeps running pods and injects crashes / stragglers with
/// per-sweep probabilities derived from the configured daily rates, modeling
/// the memoryless failure process of a shared cloud. With any node-scoped
/// rate above zero it also maintains node-level grey faults (flaky, degraded,
/// leaking, crash-looping nodes) with bounded durations, and records every
/// injected fault in a ground-truth audit log.
class FailureInjector {
 public:
  FailureInjector(Simulator* sim, Cluster* cluster,
                  const FailureInjectorOptions& options);

  void Start();
  void Stop();

  /// Attaches the control channel the control-plane fault kinds act on. With
  /// no channel attached (or every control rate at 0) the control sweep never
  /// runs and the injector's RNG sequence is unchanged.
  void set_control_channel(ControlChannel* channel) { channel_ = channel; }

  uint64_t crashes_injected() const { return crashes_; }
  uint64_t stragglers_injected() const { return stragglers_; }
  uint64_t node_faults_injected() const { return node_faults_; }
  uint64_t control_faults_injected() const { return control_faults_; }
  /// Ground-truth audit log, in injection order. Node-fault entries update
  /// their `symptoms` count in place while the fault stays active.
  const std::vector<FaultRecord>& fault_log() const { return fault_log_; }

 private:
  /// One active node-scoped fault. `record` indexes fault_log_.
  struct ActiveFault {
    FaultKind kind = FaultKind::kFlakyNode;
    NodeId node = 0;
    SimTime start = 0.0;
    SimTime end = 0.0;
    Bytes leak_bias = 0.0;
    size_t record = 0;
  };

  /// One active control-plane fault being tracked for symptom attribution.
  /// The partition itself lives inside the channel; this entry only follows
  /// the channel's partition-drop counters so the audit record's `symptoms`
  /// reflects messages the partition actually suppressed.
  struct ActiveControlFault {
    FaultKind kind = FaultKind::kNodePartition;
    NodeId node = 0;
    SimTime end = 0.0;
    uint64_t drops_at_start = 0;
    size_t record = 0;
  };

  void Sweep();
  /// Grey-fault pass: expire ended faults, apply active effects, draw new
  /// onsets. Only called when some node rate is > 0, so the base
  /// configuration draws no extra randomness.
  void GreySweep(double dt_days);
  /// Control-plane pass: partitions and master crashes against the attached
  /// channel. Only called when a channel is attached and some control rate is
  /// > 0, so non-control configurations draw no extra randomness.
  void ControlSweep(double dt_days);
  void ExpireFault(const ActiveFault& fault);
  void ApplyFault(ActiveFault& fault);
  bool NodeHasRunningTarget(NodeId node) const;

  Simulator* sim_;
  Cluster* cluster_;
  FailureInjectorOptions options_;
  Rng rng_;
  bool grey_enabled_ = false;
  bool control_enabled_ = false;
  ControlChannel* channel_ = nullptr;
  uint64_t crashes_ = 0;
  uint64_t stragglers_ = 0;
  uint64_t node_faults_ = 0;
  uint64_t control_faults_ = 0;
  /// Victim scratch reused across sweeps (warm sweeps are allocation-free).
  std::vector<PodId> to_crash_;
  std::vector<PodId> to_degrade_;
  std::vector<ActiveFault> active_faults_;
  std::vector<ActiveControlFault> active_control_;
  /// Per-node "has an active grey fault" flags (at most one fault per node).
  std::vector<uint8_t> node_afflicted_;
  std::vector<FaultRecord> fault_log_;
  std::unique_ptr<PeriodicTask> task_;
};

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_FAILURE_INJECTOR_H_
