#include "cluster/control_channel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dlrover {

std::string ControlMessageKindName(ControlMessageKind kind) {
  switch (kind) {
    case ControlMessageKind::kHeartbeat:
      return "heartbeat";
    case ControlMessageKind::kShardReport:
      return "shard_report";
    case ControlMessageKind::kStragglerVerdict:
      return "straggler_verdict";
    case ControlMessageKind::kPlan:
      return "plan";
  }
  return "unknown";
}

ControlChannelStats& ControlChannelStats::operator+=(
    const ControlChannelStats& o) {
  messages_sent += o.messages_sent;
  messages_delivered += o.messages_delivered;
  messages_dropped += o.messages_dropped;
  messages_partition_dropped += o.messages_partition_dropped;
  messages_duplicated += o.messages_duplicated;
  messages_reordered += o.messages_reordered;
  retries += o.retries;
  sends_expired += o.sends_expired;
  acks_lost += o.acks_lost;
  epoch_fenced += o.epoch_fenced;
  plans_fenced_stale += o.plans_fenced_stale;
  stale_plan_applies += o.stale_plan_applies;
  node_partitions += o.node_partitions;
  cell_partitions += o.cell_partitions;
  master_crashes += o.master_crashes;
  master_restarts += o.master_restarts;
  return *this;
}

bool ControlChannelStats::operator==(const ControlChannelStats& o) const {
  return messages_sent == o.messages_sent &&
         messages_delivered == o.messages_delivered &&
         messages_dropped == o.messages_dropped &&
         messages_partition_dropped == o.messages_partition_dropped &&
         messages_duplicated == o.messages_duplicated &&
         messages_reordered == o.messages_reordered && retries == o.retries &&
         sends_expired == o.sends_expired && acks_lost == o.acks_lost &&
         epoch_fenced == o.epoch_fenced &&
         plans_fenced_stale == o.plans_fenced_stale &&
         stale_plan_applies == o.stale_plan_applies &&
         node_partitions == o.node_partitions &&
         cell_partitions == o.cell_partitions &&
         master_crashes == o.master_crashes &&
         master_restarts == o.master_restarts;
}

ControlChannel::ControlChannel(Simulator* sim,
                               const ControlChannelOptions& options)
    : sim_(sim), options_(options), rng_(options.seed) {}

ControlChannel::~ControlChannel() = default;

void ControlChannel::Record(ControlEventKind kind, uint64_t a, uint64_t b) {
  log_.push_back(ControlEvent{sim_->Now(), kind, a, b});
}

bool ControlChannel::Severed(ControlEndpoint src, ControlEndpoint dst,
                             bool charge) {
  const SimTime now = sim_->Now();
  if ((src == kBrain || dst == kBrain) && now < cell_partition_until_) {
    if (charge) ++cell_partition_drops_;
    return true;
  }
  for (ControlEndpoint ep : {src, dst}) {
    if (ep < 0) continue;
    const auto node = static_cast<size_t>(ep);
    if (node < node_partition_until_.size() &&
        now < node_partition_until_[node]) {
      if (charge) ++node_partition_drops_[node];
      return true;
    }
  }
  return false;
}

uint32_t ControlChannel::ArmSlot(Message&& msg) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Message& m = slots_[slot];
  const uint32_t gen = m.gen;
  m = std::move(msg);
  m.gen = gen;
  m.armed = true;
  m.seq = next_seq_++;
  return slot;
}

void ControlChannel::MaybeRelease(uint32_t slot) {
  Message& m = slots_[slot];
  if (!m.armed || !m.closed || m.inflight != 0 || m.retry_event != 0) return;
  m.armed = false;
  ++m.gen;
  m.deliver = nullptr;
  m.on_expire = nullptr;
  free_slots_.push_back(slot);
}

void ControlChannel::Close(uint32_t slot) {
  slots_[slot].closed = true;
  MaybeRelease(slot);
}

void ControlChannel::Send(ControlMessageKind kind, ControlEndpoint src,
                          ControlEndpoint dst, std::function<void()> deliver) {
  Message msg;
  msg.kind = kind;
  msg.src = src;
  msg.dst = dst;
  msg.reliable = false;
  msg.deliver = std::move(deliver);
  const uint32_t slot = ArmSlot(std::move(msg));
  slots_[slot].first_send = sim_->Now();
  Attempt(slot);
  // One shot: whatever copies (if any) made it onto the wire are all there
  // will ever be.
  Close(slot);
}

void ControlChannel::SendReliable(ControlMessageKind kind, ControlEndpoint src,
                                  ControlEndpoint dst,
                                  std::function<void()> deliver,
                                  std::function<void()> on_expire,
                                  int dst_master) {
  Message msg;
  msg.kind = kind;
  msg.src = src;
  msg.dst = dst;
  msg.dst_master = dst_master;
  msg.reliable = true;
  msg.deliver = std::move(deliver);
  msg.on_expire = std::move(on_expire);
  const uint32_t slot = ArmSlot(std::move(msg));
  slots_[slot].first_send = sim_->Now();
  Attempt(slot);
  if (slots_[slot].retry_event == 0) {
    // Retries disabled: the single attempt is all we get and the expiry
    // hook never fires (the unprotected arm's hazard).
    Close(slot);
  }
}

void ControlChannel::Attempt(uint32_t slot) {
  Message& m = slots_[slot];
  ++m.attempts;
  ++stats_.messages_sent;
  const ControlMessageKind kind = m.kind;
  const uint64_t seq = m.seq;
  const bool reliable = m.reliable;

  if (Severed(m.src, m.dst, /*charge=*/true)) {
    ++stats_.messages_partition_dropped;
    Record(ControlEventKind::kPartitionDropped, static_cast<uint64_t>(kind),
           seq);
  } else if (rng_.Bernoulli(options_.drop_prob)) {
    ++stats_.messages_dropped;
    Record(ControlEventKind::kDropped, static_cast<uint64_t>(kind), seq);
  } else {
    ScheduleDelivery(slot, /*duplicate_copy=*/false);
    if (rng_.Bernoulli(options_.duplicate_prob)) {
      ++stats_.messages_duplicated;
      Record(ControlEventKind::kDuplicated, static_cast<uint64_t>(kind), seq);
      ScheduleDelivery(slot, /*duplicate_copy=*/true);
    }
  }

  Message& m2 = slots_[slot];
  if (reliable && options_.retries_enabled && !m2.acked && !m2.closed) {
    const double factor =
        std::min(static_cast<double>(1ull << std::min(m2.attempts - 1, 20)),
                 options_.retry_cap / std::max(options_.retry_base, 1e-9));
    const Duration backoff =
        std::min(options_.retry_base * factor, options_.retry_cap) *
        rng_.Uniform(0.5, 1.5);
    const uint32_t gen = m2.gen;
    m2.retry_event = sim_->ScheduleAfter(
        backoff, [this, slot, gen] { RetryFire(slot, gen); }, "ctl_retry");
  }
}

void ControlChannel::ScheduleDelivery(uint32_t slot, bool duplicate_copy) {
  Message& m = slots_[slot];
  Duration latency = rng_.Uniform(options_.min_latency, options_.max_latency);
  if (rng_.Bernoulli(options_.reorder_prob)) {
    ++stats_.messages_reordered;
    Record(ControlEventKind::kReordered, static_cast<uint64_t>(m.kind), m.seq);
    latency += options_.reorder_delay;
  }
  (void)duplicate_copy;
  const uint64_t attempt_epoch =
      (m.dst_master >= 0 &&
       static_cast<size_t>(m.dst_master) < masters_.size())
          ? masters_[m.dst_master].epoch
          : 0;
  ++m.inflight;
  const uint32_t gen = m.gen;
  sim_->ScheduleAfter(
      latency,
      [this, slot, gen, attempt_epoch] { Deliver(slot, gen, attempt_epoch); },
      "ctl_deliver");
}

void ControlChannel::Deliver(uint32_t slot, uint32_t gen,
                             uint64_t attempt_epoch) {
  {
    Message& m = slots_[slot];
    if (!m.armed || m.gen != gen) return;  // defensive; refcount prevents this
    assert(m.inflight > 0);
    --m.inflight;

    if (m.dst_master >= 0) {
      const auto h = static_cast<size_t>(m.dst_master);
      const bool landable = h < masters_.size() && masters_[h].registered &&
                            masters_[h].up &&
                            masters_[h].epoch == attempt_epoch;
      if (!landable) {
        // The destination master is down, or a replacement with a newer
        // epoch took over since this copy left the sender: fence it. The
        // retry loop re-captures the epoch, so a later attempt lands.
        ++stats_.epoch_fenced;
        Record(ControlEventKind::kEpochFenced, static_cast<uint64_t>(m.kind),
               m.seq);
        MaybeRelease(slot);
        return;
      }
    }
  }

  // Copy out before calling: the callback may Send (growing the slab) or
  // even expire/ack this very message.
  std::function<void()> deliver = slots_[slot].deliver;
  const bool reliable = slots_[slot].reliable;
  const ControlMessageKind kind = slots_[slot].kind;
  const uint64_t seq = slots_[slot].seq;
  const ControlEndpoint src = slots_[slot].src;
  const ControlEndpoint dst = slots_[slot].dst;
  ++stats_.messages_delivered;
  if (deliver) deliver();

  if (reliable) {
    // Ack return path: acks ride the same lossy network.
    if (Severed(dst, src, /*charge=*/true) ||
        rng_.Bernoulli(options_.drop_prob)) {
      ++stats_.acks_lost;
      Record(ControlEventKind::kAckLost, static_cast<uint64_t>(kind), seq);
    } else {
      Message& m = slots_[slot];
      if (m.armed && m.gen == gen) {
        const Duration latency =
            rng_.Uniform(options_.min_latency, options_.max_latency);
        ++m.inflight;
        sim_->ScheduleAfter(
            latency,
            [this, slot, gen] {
              Message& mm = slots_[slot];
              if (!mm.armed || mm.gen != gen) return;
              assert(mm.inflight > 0);
              --mm.inflight;
              if (!mm.acked) {
                mm.acked = true;
                if (mm.retry_event != 0) {
                  sim_->Cancel(mm.retry_event);
                  mm.retry_event = 0;
                }
                Close(slot);
                return;
              }
              MaybeRelease(slot);
            },
            "ctl_ack");
      }
    }
  }
  MaybeRelease(slot);
}

void ControlChannel::RetryFire(uint32_t slot, uint32_t gen) {
  Message& m = slots_[slot];
  if (!m.armed || m.gen != gen) return;
  m.retry_event = 0;
  if (m.acked || m.closed) {
    MaybeRelease(slot);
    return;
  }
  if (sim_->Now() - m.first_send > options_.retry_deadline) {
    ++stats_.sends_expired;
    Record(ControlEventKind::kExpired, static_cast<uint64_t>(m.kind), m.seq);
    std::function<void()> on_expire = m.on_expire;
    Close(slot);
    if (on_expire) on_expire();
    return;
  }
  ++stats_.retries;
  Record(ControlEventKind::kRetried, static_cast<uint64_t>(m.kind), m.seq);
  Attempt(slot);
}

void ControlChannel::PartitionNode(NodeId node, Duration duration) {
  const auto idx = static_cast<size_t>(node);
  if (idx >= node_partition_until_.size()) {
    node_partition_until_.resize(idx + 1, -1.0);
    node_partition_drops_.resize(idx + 1, 0);
  }
  const SimTime until = sim_->Now() + duration;
  node_partition_until_[idx] = std::max(node_partition_until_[idx], until);
  ++stats_.node_partitions;
  Record(ControlEventKind::kNodePartitionStart, node, 0);
  sim_->ScheduleAt(
      node_partition_until_[idx],
      [this, node] {
        if (!NodePartitioned(node)) {
          Record(ControlEventKind::kNodePartitionEnd, node, 0);
        }
      },
      "ctl_node_heal");
}

void ControlChannel::PartitionCell(Duration duration) {
  const SimTime until = sim_->Now() + duration;
  cell_partition_until_ = std::max(cell_partition_until_, until);
  ++stats_.cell_partitions;
  Record(ControlEventKind::kCellPartitionStart, 0, 0);
  sim_->ScheduleAt(
      cell_partition_until_,
      [this] {
        if (!CellPartitioned()) {
          Record(ControlEventKind::kCellPartitionEnd, 0, 0);
        }
      },
      "ctl_cell_heal");
}

bool ControlChannel::NodePartitioned(NodeId node) const {
  const auto idx = static_cast<size_t>(node);
  return idx < node_partition_until_.size() &&
         sim_->Now() < node_partition_until_[idx];
}

bool ControlChannel::CellPartitioned() const {
  return sim_->Now() < cell_partition_until_;
}

uint64_t ControlChannel::node_partition_drops(NodeId node) const {
  const auto idx = static_cast<size_t>(node);
  return idx < node_partition_drops_.size() ? node_partition_drops_[idx] : 0;
}

int ControlChannel::RegisterMaster(ControlMasterEndpoint* master) {
  const int handle = static_cast<int>(masters_.size());
  MasterSlot slot;
  slot.endpoint = master;
  slot.registered = true;
  masters_.push_back(slot);
  return handle;
}

void ControlChannel::UnregisterMaster(int handle) {
  if (handle < 0 || static_cast<size_t>(handle) >= masters_.size()) return;
  masters_[handle].registered = false;
  masters_[handle].endpoint = nullptr;
}

bool ControlChannel::MasterUp(int handle) const {
  return handle >= 0 && static_cast<size_t>(handle) < masters_.size() &&
         masters_[handle].registered && masters_[handle].up;
}

uint64_t ControlChannel::MasterEpoch(int handle) const {
  if (handle < 0 || static_cast<size_t>(handle) >= masters_.size()) return 0;
  return masters_[handle].epoch;
}

size_t ControlChannel::MastersUp() const {
  size_t n = 0;
  for (const MasterSlot& m : masters_) {
    if (m.registered && m.up) ++n;
  }
  return n;
}

int ControlChannel::CrashMasterByOrdinal(size_t ordinal) {
  size_t seen = 0;
  for (size_t h = 0; h < masters_.size(); ++h) {
    MasterSlot& m = masters_[h];
    if (!m.registered || !m.up) continue;
    if (seen++ != ordinal) continue;
    m.up = false;
    ++stats_.master_crashes;
    Record(ControlEventKind::kMasterCrash, h, m.epoch);
    if (m.endpoint) m.endpoint->OnMasterCrash();
    if (options_.failover_enabled) {
      sim_->ScheduleAfter(
          options_.master_restart_delay,
          [this, h] {
            MasterSlot& mm = masters_[h];
            if (!mm.registered || mm.up) return;
            mm.up = true;
            ++mm.epoch;
            ++stats_.master_restarts;
            Record(ControlEventKind::kMasterRestart, h, mm.epoch);
            if (mm.endpoint) mm.endpoint->OnMasterRestart();
          },
          "ctl_master_restart");
    }
    return static_cast<int>(h);
  }
  return -1;
}

void ControlChannel::NotePlanFenced(uint64_t source, uint64_t plan_seq) {
  ++stats_.plans_fenced_stale;
  Record(ControlEventKind::kPlanFencedStale, source, plan_seq);
}

void ControlChannel::NoteStalePlanApplied(uint64_t source, uint64_t plan_seq) {
  ++stats_.stale_plan_applies;
  Record(ControlEventKind::kStalePlanApplied, source, plan_seq);
}

}  // namespace dlrover
