#ifndef DLROVER_CLUSTER_CLUSTER_H_
#define DLROVER_CLUSTER_CLUSTER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/commit_log.h"
#include "cluster/node_health.h"
#include "cluster/placement_index.h"
#include "cluster/pod.h"
#include "cluster/resources.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/simulator.h"

namespace dlrover {

class ControlChannel;

/// A physical machine in the simulated cluster.
struct Node {
  NodeId id = 0;
  ResourceSpec capacity;
  ResourceSpec allocated;  // sum of requests of pods placed here
  /// Hardware speed multiplier; heterogeneous clusters draw this around 1.0.
  double speed_factor = 1.0;
  bool healthy = true;
  /// Cordoned: excluded from placement and preemption while resident pods
  /// keep running (the node-health control plane fenced it off).
  bool cordoned = false;
  /// Draining: cordoned *and* the owner wants resident job pods migrated
  /// away (make-before-break, via TrainingJob::EvacuateDrainingPods).
  bool draining = false;
  /// Phantom node-local memory consumption (e.g. a kubelet leak) that is
  /// visible to per-node usage sampling but deliberately not part of the
  /// cluster usage totals: the leak is outside any pod's cgroup.
  Bytes usage_bias = 0.0;
  std::vector<PodId> pods;

  ResourceSpec Available() const { return capacity - allocated; }
};

/// Tunables for the cluster substrate.
struct ClusterOptions {
  int num_nodes = 20;
  ResourceSpec node_capacity{32.0, GiB(192)};
  /// Stddev of node speed factors (log-space); 0 = homogeneous.
  double heterogeneity_sigma = 0.0;
  /// Pod startup = image pull + container boot, sampled uniformly.
  Duration min_pod_startup = Seconds(25);
  Duration max_pod_startup = Seconds(60);
  /// Extra multiplier on startup during resource scarcity (the paper reports
  /// >30 minutes under daytime scarcity).
  double scarcity_startup_factor = 3.0;
  /// Fraction of free cluster CPU below which scarcity mode is assumed.
  double scarcity_threshold = 0.10;
  /// Retry interval for the pending queue.
  Duration reschedule_interval = Seconds(15);
  uint64_t seed = 17;
  /// Maintain running capacity/allocated/usage totals so TotalCapacity /
  /// TotalAllocated / TotalUsage / Usage are O(1). When false the totals are
  /// recomputed by scanning nodes and the whole pod directory on every call
  /// (the pre-optimization behaviour, kept for perf comparison benches).
  bool incremental_accounting = true;
  /// Routes every pod lookup through a std::map index maintained alongside
  /// the slab, reconstructing the pre-slab lookup cost model (tree walk,
  /// node allocation per pod) for before/after benches. Results are
  /// identical either way.
  bool legacy_pod_index = false;
  /// Serve best-fit placement from the O(log n) PlacementIndex (ordered
  /// free-capacity treap + per-node priority-bucketed pod aggregates +
  /// creation-ordered running-pod directory) instead of the legacy O(nodes)
  /// scan / O(nodes x pods log pods) victim search / full-directory sweep.
  /// Decisions are identical either way — same node, same victims, same
  /// order — which the parity property tests assert; the legacy arm is kept
  /// for those tests and for before/after benches.
  bool use_placement_index = true;
  /// Cross-validates the PlacementIndex against a fresh scan of the node and
  /// pod state after every index mutation (O(nodes + pods) per check — test
  /// builds only, works under NDEBUG since it is a runtime option).
  bool validate_placement_index = false;
  /// Livelock breaker: at most this many pods may be preempted at one
  /// simulated instant. A victim's stop callback can synchronously relaunch
  /// a replacement that steals the freed capacity before the preemptor
  /// claims it; with a zero relaunch backoff that cycle never leaves the
  /// current instant and the simulation wedges at a frozen clock. Once the
  /// budget is spent, further preemption attempts fail (the preemptor goes
  /// pending) until simulated time advances. The ceiling is far above any
  /// same-instant cascade a terminating scenario produces, so results are
  /// unchanged except where the simulation previously hung forever.
  uint64_t max_preemptions_per_instant = 512;
  /// Enables the evidence-based node-health control plane: a
  /// NodeHealthTracker fed from pod-lifecycle callbacks plus a periodic
  /// classification tick that drains suspect nodes and uncordons recovered
  /// ones. Off by default — when off, no tracker exists, no periodic task is
  /// scheduled, and every sim trace is byte-identical to pre-feature builds.
  bool enable_node_health = false;
  NodeHealthOptions node_health{};
};

/// Aggregate utilisation sample used by experiment reporting.
struct ClusterUsage {
  double cpu_allocated_fraction = 0.0;  // allocated / capacity
  double cpu_used_fraction = 0.0;       // usage / capacity
  double mem_allocated_fraction = 0.0;
  double mem_used_fraction = 0.0;
  double cpu_used_of_allocated = 0.0;  // usage / allocated (job efficiency)
  double mem_used_of_allocated = 0.0;
};

/// A Kubernetes-like cluster: owns nodes and pods, places pods by best-fit
/// bin packing, keeps a priority-aware pending queue, and supports
/// preemption of lower-priority pods by higher-priority requests.
///
/// The DLRM system (per the paper, Section 2.1) has no control over the
/// cluster: it can only request pods and observe their lifecycle, which is
/// exactly the interface exposed here.
///
/// Pod bookkeeping uses the same slab + generation pattern as the
/// Simulator's events: a PodId encodes {slot+1, generation}, lookup is an
/// O(1) array index with a generation check, and a slot is recycled for a
/// new pod only after its previous tenant terminated. A terminated pod stays
/// resolvable by its id until its slot is reused; after reuse the stale id
/// safely resolves to null. The directory of every pod ever created is kept
/// (in creation order) so VisitPods matches the previous std::map-by-id
/// iteration exactly.
class Cluster {
 public:
  Cluster(Simulator* sim, const ClusterOptions& options);

  /// Submits a pod. The pod starts Pending; placement is attempted
  /// immediately and retried periodically. Returns the pod id.
  PodId CreatePod(PodSpec spec, std::function<void(Pod&)> on_running,
                  std::function<void(Pod&, PodStopReason)> on_stopped);

  /// Owner-initiated deletion (scale-down / migration / job completion).
  /// `graceful_success` marks the pod Succeeded instead of Killed.
  void KillPod(PodId id, bool graceful_success = false);

  /// Crashes a running pod (failure injection / OOM). No-op if not running.
  void FailPod(PodId id, PodStopReason reason);

  /// Degrades a running pod's speed factor (straggler injection).
  void DegradePod(PodId id, double speed_factor);

  /// Marks a node unhealthy and fails everything on it.
  void FailNode(NodeId id);

  /// Returns a failed node to the healthy set (repair / reboot finished):
  /// its capacity rejoins the totals and the pending queue gets a pump.
  /// No-op on a healthy node.
  void RecoverNode(NodeId id);

  /// Fences a node off from scheduling: it leaves the placement index (and
  /// the legacy scan skips it) while resident pods keep running. Cordoned
  /// capacity stays in TotalCapacity but is reported through the commit log
  /// (Kind::kCordoned) so the fleet ledger sees it. Safe no-op if already
  /// cordoned; composes with FailNode/RecoverNode in any order.
  void CordonNode(NodeId id);
  /// CordonNode + marks the node draining: job masters migrate resident
  /// pods away make-before-break (see TrainingJob::EvacuateDrainingPods).
  void DrainNode(NodeId id);
  /// Lifts a cordon: the node rejoins placement (if healthy) and the pending
  /// queue gets a pump. Safe no-op if not cordoned.
  void UncordonNode(NodeId id);
  bool IsCordoned(NodeId id) const { return nodes_[id].cordoned; }
  bool IsDraining(NodeId id) const { return nodes_[id].draining; }

  /// Sets the node's phantom memory bias (leak injection). Not part of the
  /// cluster usage totals; only NodeMemUsedFraction sees it.
  void SetNodeUsageBias(NodeId id, Bytes bias) { nodes_[id].usage_bias = bias; }
  /// Fraction of the node's memory capacity consumed by resident pod usage
  /// plus the phantom bias. O(resident pods).
  double NodeMemUsedFraction(NodeId id) const;
  /// Fraction of the node's memory that no resident pod accounts for (node
  /// total minus the cgroup-attributed sum) — the system/kernel share. On a
  /// healthy node this stays flat; a creeping kernel or daemon leak shows up
  /// here without any workload-churn noise, which is what makes it the
  /// node-health leak signal.
  double NodeUnaccountedMemFraction(NodeId id) const;

  /// Evidence hook for job masters: the HeartbeatMonitor holds a straggler
  /// verdict against this pod, so charge its node. No-op unless the
  /// node-health control plane is enabled and the pod is running on a
  /// healthy node.
  void ReportStragglerEvidence(PodId id);
  /// Evidence hook for the degraded-PS blind spot (DESIGN §14/§15): `id` is
  /// a parameter-server pod of a job whose whole worker group slowed down
  /// uniformly (so intra-job median comparison stays blind); charge the PS
  /// pod's node with a ps-slowdown observation attributed to `source_job`.
  /// Distinct jobs corroborating the same node is the strong signal.
  void ReportPsSlowdownEvidence(PodId id, uint64_t source_job);
  bool node_health_enabled() const { return health_ != nullptr; }
  /// Node-health tracker, or null when the control plane is disabled.
  const NodeHealthTracker* health() const { return health_.get(); }
  /// Capacity of healthy nodes currently cordoned.
  ResourceSpec CordonedCapacity() const { return cordoned_capacity_; }
  /// Capacity the brain should not propose plans against: cordoned nodes
  /// plus healthy nodes the tracker currently classifies as Suspect.
  ResourceSpec QuarantinedCapacity() const;

  const Pod* GetPod(PodId id) const;
  Pod* GetMutablePod(PodId id);
  /// Visits every pod (including terminal ones) in creation order — which is
  /// id order for all pods whose slot has not been recycled.
  void VisitPods(const std::function<void(const Pod&)>& fn) const;
  /// Visits the *running* pods of one priority class in creation order —
  /// the exact subsequence a VisitPods sweep filtered on
  /// (phase == kRunning && priority == `priority`) would produce, served
  /// from the running-pod index in O(matching pods) when the placement
  /// index is enabled (full-directory fallback otherwise).
  void VisitRunningPods(PriorityClass priority,
                        const std::function<void(const Pod&)>& fn) const;
  const Node& GetNode(NodeId id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Records live resource usage for a pod. Writes `pod.usage` and keeps the
  /// cluster-wide usage total in sync; all usage reports must go through
  /// here rather than mutating `pod.usage` directly.
  void ReportUsage(PodId id, const ResourceSpec& usage);

  /// Total cluster capacity across healthy nodes.
  ResourceSpec TotalCapacity() const;
  /// Sum of requests of placed (Starting/Running) pods.
  ResourceSpec TotalAllocated() const;
  /// Sum of live usage reported by running pods.
  ResourceSpec TotalUsage() const;
  ClusterUsage Usage() const;

  /// Number of pods waiting in the pending queue.
  size_t PendingCount() const { return pending_.size(); }

  /// True when free CPU is below the scarcity threshold (startup slows down).
  /// A cluster with zero healthy capacity reports false: scarcity only slows
  /// down startups, and with no capacity nothing can start at all.
  /// A fleet-level scarcity signal (set_fleet_scarcity) ORs in on top of the
  /// local computation: the fleet being starved slows this slice's startups
  /// even when the slice itself still has headroom.
  bool UnderScarcity() const;

  /// Fleet-wide scarcity signal from the sharded coordinator's folded
  /// ledger. Only affects *future* startup-duration draws (no pod state
  /// mutates), so applying it at a window barrier is race-free.
  void set_fleet_scarcity(bool scarce) { fleet_scarcity_ = scarce; }
  bool fleet_scarcity() const { return fleet_scarcity_; }

  /// Attaches an accounting commit log: from now on every capacity /
  /// allocated / usage total mutation also appends its delta, and the
  /// current totals are logged as the opening entries so a fold starting
  /// from zero reconstructs them exactly. The log must outlive the cluster
  /// (or be detached with nullptr).
  void set_commit_log(ClusterCommitLog* log);

  /// Attaches the control-plane message channel (null detaches). When set,
  /// job masters and the brain route heartbeats, shard reports, straggler
  /// verdicts, and scaling plans through it instead of direct calls; when
  /// null (the default) every control interaction stays an infallible
  /// in-memory call and traces are byte-identical to pre-channel builds.
  void set_control_channel(ControlChannel* channel) { control_ = channel; }
  ControlChannel* control_channel() const { return control_; }

  /// Monotonic counter bumped on every pod state mutation (placement,
  /// startup, termination, degradation, node failure). Lets callers cache
  /// derived state (e.g. the memoized iteration law in TrainingJob) and
  /// invalidate it precisely when any pod's phase or speed may have changed.
  uint64_t mutation_version() const { return mutation_version_; }

  Simulator* sim() { return sim_; }
  const ClusterOptions& options() const { return options_; }

  /// Lifetime counters for experiment reporting.
  struct Counters {
    uint64_t pods_created = 0;
    uint64_t pods_preempted = 0;
    uint64_t pods_failed = 0;
    uint64_t placements = 0;
    uint64_t nodes_cordoned = 0;
    uint64_t nodes_uncordoned = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  /// Slab slot backing one PodId. `gen` is bumped when the slot is re-armed
  /// for a new pod, which is what invalidates the previous tenant's id.
  struct PodSlot {
    Pod* pod = nullptr;
    uint32_t gen = 1;
  };

  static constexpr uint32_t kGenMask = 0xffffffffu;

  static PodId MakeId(uint32_t slot, uint32_t gen) {
    // slot+1 keeps every valid id nonzero (callers use 0 as "none").
    return (static_cast<uint64_t>(slot) + 1) << 32 | gen;
  }

  /// Appends an accounting delta to the attached commit log, if any.
  void LogDelta(ClusterCommitLog::Kind kind, const ResourceSpec& delta) {
    if (commit_log_ != nullptr && !delta.IsZero()) {
      commit_log_->Append(sim_->Now(), kind, delta);
    }
  }

  bool TryPlace(Pod& pod);
  bool TryPreemptFor(Pod& pod);
  bool TryPreemptLegacy(Pod& pod);
  /// Shared tail of both preemption arms: spends the per-instant budget and
  /// evicts `victims` in order. Returns `!victims.empty()` (the legacy
  /// contract: a node that fits without evictions yields false).
  bool EvictVictims(const std::vector<PodId>& victims);
  /// Full cross-check of the placement/running indexes against a fresh scan
  /// (enabled by options_.validate_placement_index; aborts on mismatch).
  void ValidatePlacementIndex() const;
  void FinishStartup(PodId id);
  /// Periodic node-health pass: samples per-node memory fractions, ticks the
  /// tracker, and applies its cordon/uncordon actions (cordons drain).
  void HealthTick();
  void Terminate(Pod& pod, PodPhase phase, PodStopReason reason);
  void ReleaseFromNode(Pod& pod);
  void PumpPendingQueue();
  /// Slab lookup without const fuss; shared by GetPod/GetMutablePod.
  Pod* Resolve(PodId id) const;

  ResourceSpec ScanCapacity() const;
  ResourceSpec ScanAllocated() const;
  ResourceSpec ScanUsage() const;

  Simulator* sim_;
  ClusterOptions options_;
  Rng rng_;
  std::vector<Node> nodes_;
  /// Every pod ever created, in creation order; pointers are stable.
  std::vector<std::unique_ptr<Pod>> directory_;
  std::vector<PodSlot> slots_;
  std::vector<uint32_t> free_slots_;
  /// Live-pod map maintained only under options_.legacy_pod_index.
  std::map<PodId, Pod*> legacy_index_;
  /// O(log n) scheduling indexes, maintained under use_placement_index.
  PlacementIndex placement_index_;
  RunningPodIndex running_index_;
  /// Creation ordinal source for Pod::creation_seq.
  uint64_t next_creation_seq_ = 0;
  /// Preemption scratch, reused across calls so the warm victim search does
  /// not allocate. `candidates` is fully consumed before any eviction
  /// callback can re-enter, so a single buffer suffices; the victim list is
  /// still live while callbacks run, so re-entrant preemptions take the next
  /// depth slot (depths beyond the pool fall back to the legacy arm, which
  /// uses locals).
  std::vector<std::pair<int, PodId>> preempt_candidates_;
  std::vector<std::vector<PodId>> victims_pool_;
  size_t preempt_depth_ = 0;
  std::deque<PodId> pending_;
  bool pumping_ = false;
  bool repump_ = false;
  // Per-instant preemption budget (see ClusterOptions). The instant tracker
  // starts negative so the first preemption at t=0 opens a fresh budget.
  SimTime preemption_instant_ = -1.0;
  uint64_t preempted_at_instant_ = 0;
  Counters counters_;
  uint64_t mutation_version_ = 0;
  bool fleet_scarcity_ = false;
  ClusterCommitLog* commit_log_ = nullptr;
  ControlChannel* control_ = nullptr;
  /// Running totals (valid when options_.incremental_accounting).
  ResourceSpec capacity_total_;
  ResourceSpec allocated_total_;
  ResourceSpec usage_total_;
  /// Capacity of healthy nodes currently cordoned (mirrors the kCordoned
  /// commit-log stream).
  ResourceSpec cordoned_capacity_;
  std::unique_ptr<PeriodicTask> pump_task_;
  /// Node-health control plane; both null unless enable_node_health (so the
  /// disabled configuration schedules no extra events).
  std::unique_ptr<NodeHealthTracker> health_;
  std::unique_ptr<PeriodicTask> health_task_;
};

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_CLUSTER_H_
