#ifndef DLROVER_CLUSTER_BACKGROUND_LOAD_H_
#define DLROVER_CLUSTER_BACKGROUND_LOAD_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace dlrover {

/// Options for the co-located high-priority workload (online serving, stream
/// processing) that shares the cluster with DLRM training. Spikes in this
/// load preempt training pods — the paper's main source of cloud
/// instability.
struct BackgroundLoadOptions {
  /// Baseline fraction of cluster CPU held by high-priority services.
  double base_fraction = 0.18;
  /// Peak additional fraction during diurnal peaks.
  double peak_fraction = 0.12;
  /// Diurnal period (one simulated day by default).
  Duration period = Days(1);
  /// Size of each background pod.
  ResourceSpec pod_size{8.0, GiB(32)};
  /// How often the controller reconciles toward the target load.
  Duration reconcile_interval = Minutes(10);
  PriorityClass priority = PriorityClass::kOnline;
  uint64_t seed = 4242;
};

/// Drives a diurnal high-priority workload: target share =
/// base + peak * max(0, sin(2*pi*t/period)) plus noise; the controller adds
/// or removes pods to track it. Because these pods outrank training pods,
/// rising load preempts training workers exactly as in the paper's cloud.
class BackgroundLoad {
 public:
  BackgroundLoad(Simulator* sim, Cluster* cluster,
                 const BackgroundLoadOptions& options);

  void Start();
  void Stop();

  /// Current target fraction of cluster CPU.
  double TargetFraction() const;
  size_t ActivePods() const { return pods_.size(); }

 private:
  void Reconcile();

  Simulator* sim_;
  Cluster* cluster_;
  BackgroundLoadOptions options_;
  Rng rng_;
  std::vector<PodId> pods_;
  /// Ids whose stop callback fired since the last reconcile; compacted out
  /// of `pods_` in one stable pass instead of re-resolving every live id
  /// each tick. Both vectors are reused across ticks (warm reconciles are
  /// allocation-free in the controller itself).
  std::vector<PodId> dead_;
  std::unique_ptr<PeriodicTask> task_;
};

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_BACKGROUND_LOAD_H_
