#include "cluster/failure_injector.h"

#include <cmath>
#include <vector>

#include "cluster/control_channel.h"

namespace dlrover {

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPodCrash:
      return "pod-crash";
    case FaultKind::kPodStraggler:
      return "pod-straggler";
    case FaultKind::kFlakyNode:
      return "flaky-node";
    case FaultKind::kDegradedNode:
      return "degraded-node";
    case FaultKind::kMemoryLeak:
      return "memory-leak";
    case FaultKind::kCrashLoop:
      return "crash-loop";
    case FaultKind::kNodePartition:
      return "node-partition";
    case FaultKind::kCellPartition:
      return "cell-partition";
    case FaultKind::kMasterCrash:
      return "master-crash";
  }
  return "unknown";
}

FailureInjector::FailureInjector(Simulator* sim, Cluster* cluster,
                                 const FailureInjectorOptions& options)
    : sim_(sim), cluster_(cluster), options_(options), rng_(options.seed) {
  grey_enabled_ = options_.daily_node_flaky_rate > 0.0 ||
                  options_.daily_node_degraded_rate > 0.0 ||
                  options_.daily_node_leak_rate > 0.0 ||
                  options_.daily_node_crashloop_rate > 0.0;
  control_enabled_ = options_.daily_node_partition_rate > 0.0 ||
                     options_.daily_cell_partition_rate > 0.0 ||
                     options_.daily_master_crash_rate > 0.0;
  task_ = std::make_unique<PeriodicTask>(sim_, options_.sweep_interval,
                                         [this] { Sweep(); });
}

void FailureInjector::Start() { task_->Start(); }
void FailureInjector::Stop() { task_->Stop(); }

void FailureInjector::Sweep() {
  // Convert daily rates to a per-sweep hazard assuming a Poisson process:
  // p_sweep = 1 - exp(-rate * dt). Valid for any rate >= 0 (rates above
  // 1/day simply mean multiple expected events per pod-day).
  const double dt_days = options_.sweep_interval / Days(1);
  const double p_fail =
      1.0 - std::exp(-options_.daily_pod_failure_rate * dt_days);
  const double p_straggle =
      1.0 - std::exp(-options_.daily_straggler_rate * dt_days);

  // Collect victims first: injecting inside the visit would mutate the pod
  // map mid-iteration (terminations can create replacement pods). The
  // running-pod index serves exactly the (running, target-priority)
  // subsequence of the full directory sweep, in the same creation order, so
  // the hazard draws land on the same pods in the same RNG sequence while
  // the sweep cost drops from O(pods ever) to O(running target pods). The
  // victim buffers are members reused across sweeps: warm sweeps allocate
  // nothing.
  to_crash_.clear();
  to_degrade_.clear();
  cluster_->VisitRunningPods(options_.target_priority, [&](const Pod& pod) {
    if (rng_.Bernoulli(p_fail)) {
      to_crash_.push_back(pod.id);
    } else if (p_straggle > 0.0 && pod.speed_factor >= 0.5 &&
               rng_.Bernoulli(p_straggle)) {
      to_degrade_.push_back(pod.id);
    }
  });
  const SimTime now = sim_->Now();
  for (PodId id : to_crash_) {
    ++crashes_;
    const Pod* pod = cluster_->GetPod(id);
    fault_log_.push_back(FaultRecord{
        now, FaultKind::kPodCrash, id,
        pod != nullptr ? static_cast<uint64_t>(pod->node) : 0, 0.0, 1});
    cluster_->FailPod(id, PodStopReason::kCrash);
  }
  for (PodId id : to_degrade_) {
    ++stragglers_;
    const Pod* pod = cluster_->GetPod(id);
    fault_log_.push_back(FaultRecord{
        now, FaultKind::kPodStraggler, id,
        pod != nullptr ? static_cast<uint64_t>(pod->node) : 0, 0.0, 1});
    cluster_->DegradePod(id, options_.straggler_speed_factor);
  }
  // Grey faults ride the same sweep but behind their own guard: with every
  // node rate at 0 no extra RNG is drawn and the sweep above is bit-for-bit
  // the pre-feature sequence.
  if (grey_enabled_) GreySweep(dt_days);
  // Control-plane faults draw last, behind their own guard, so grey-only
  // campaigns keep their historical RNG sequences too.
  if (control_enabled_ && channel_ != nullptr) ControlSweep(dt_days);
}

bool FailureInjector::NodeHasRunningTarget(NodeId node) const {
  for (PodId pid : cluster_->GetNode(node).pods) {
    const Pod* pod = cluster_->GetPod(pid);
    if (pod != nullptr && pod->phase == PodPhase::kRunning &&
        pod->spec.priority == options_.target_priority) {
      return true;
    }
  }
  return false;
}

void FailureInjector::ExpireFault(const ActiveFault& fault) {
  const Node& node = cluster_->GetNode(fault.node);
  switch (fault.kind) {
    case FaultKind::kDegradedNode: {
      // Restore only pods still at the injected factor: a pod independently
      // degraded to straggler speed keeps its straggler factor.
      to_degrade_.clear();
      for (PodId pid : node.pods) {
        const Pod* pod = cluster_->GetPod(pid);
        if (pod != nullptr && !pod->terminal() &&
            pod->speed_factor == options_.degraded_speed_factor) {
          to_degrade_.push_back(pid);
        }
      }
      for (PodId pid : to_degrade_) {
        cluster_->DegradePod(pid, node.speed_factor);
      }
      break;
    }
    case FaultKind::kMemoryLeak:
      cluster_->SetNodeUsageBias(fault.node, 0.0);
      break;
    default:
      break;
  }
}

void FailureInjector::ApplyFault(ActiveFault& fault) {
  const Node& node = cluster_->GetNode(fault.node);
  if (!node.healthy) return;  // a dead node has nothing left to torment
  FaultRecord& record = fault_log_[fault.record];
  switch (fault.kind) {
    case FaultKind::kFlakyNode: {
      to_crash_.clear();
      for (PodId pid : node.pods) {
        const Pod* pod = cluster_->GetPod(pid);
        if (pod == nullptr || pod->phase != PodPhase::kRunning ||
            pod->spec.priority != options_.target_priority) {
          continue;
        }
        if (rng_.Bernoulli(options_.flaky_crash_prob)) {
          to_crash_.push_back(pid);
        }
      }
      for (PodId pid : to_crash_) {
        ++crashes_;
        ++record.symptoms;
        cluster_->FailPod(pid, PodStopReason::kCrash);
      }
      break;
    }
    case FaultKind::kDegradedNode: {
      to_degrade_.clear();
      for (PodId pid : node.pods) {
        const Pod* pod = cluster_->GetPod(pid);
        if (pod != nullptr && !pod->terminal() &&
            pod->speed_factor > options_.degraded_speed_factor) {
          to_degrade_.push_back(pid);
        }
      }
      for (PodId pid : to_degrade_) {
        ++record.symptoms;
        cluster_->DegradePod(pid, options_.degraded_speed_factor);
      }
      break;
    }
    case FaultKind::kMemoryLeak: {
      fault.leak_bias +=
          options_.leak_rate_per_min * (options_.sweep_interval / Minutes(1));
      cluster_->SetNodeUsageBias(fault.node, fault.leak_bias);
      // The creep itself is an observable symptom (node usage slope), even
      // before anything OOMs.
      ++record.symptoms;
      if (cluster_->NodeMemUsedFraction(fault.node) >
          options_.leak_oom_fraction) {
        // The kernel OOM killer takes one resident victim per sweep.
        for (PodId pid : node.pods) {
          const Pod* pod = cluster_->GetPod(pid);
          if (pod != nullptr && pod->phase == PodPhase::kRunning &&
              pod->spec.priority == options_.target_priority) {
            ++crashes_;
            ++record.symptoms;
            cluster_->FailPod(pid, PodStopReason::kOomKill);
            break;
          }
        }
      }
      break;
    }
    case FaultKind::kCrashLoop: {
      // Every target pod that entered Running after onset dies within one
      // sweep of starting — the relaunch churn signature.
      to_crash_.clear();
      for (PodId pid : node.pods) {
        const Pod* pod = cluster_->GetPod(pid);
        if (pod != nullptr && pod->phase == PodPhase::kRunning &&
            pod->spec.priority == options_.target_priority &&
            pod->start_time >= fault.start) {
          to_crash_.push_back(pid);
        }
      }
      for (PodId pid : to_crash_) {
        ++crashes_;
        ++record.symptoms;
        cluster_->FailPod(pid, PodStopReason::kCrash);
      }
      break;
    }
    default:
      break;
  }
}

void FailureInjector::GreySweep(double dt_days) {
  const SimTime now = sim_->Now();
  if (node_afflicted_.size() < cluster_->num_nodes()) {
    node_afflicted_.assign(cluster_->num_nodes(), 0);
    for (const ActiveFault& f : active_faults_) node_afflicted_[f.node] = 1;
  }
  // 1. Expire faults whose window ended (stable erase keeps onset order).
  size_t keep = 0;
  for (size_t i = 0; i < active_faults_.size(); ++i) {
    ActiveFault& fault = active_faults_[i];
    if (fault.end <= now) {
      ExpireFault(fault);
      node_afflicted_[fault.node] = 0;
      continue;
    }
    active_faults_[keep++] = fault;
  }
  active_faults_.resize(keep);
  // 2. Apply the per-sweep effects of every active fault, in onset order.
  for (ActiveFault& fault : active_faults_) ApplyFault(fault);
  // 3. Draw new onsets, kind-major then node-id order, so the RNG sequence
  // is a pure function of deterministic cluster state. A node hosts at most
  // one grey fault at a time, and only nodes actually running target pods
  // are eligible (a fault nobody can observe proves nothing).
  struct KindRate {
    FaultKind kind;
    double rate;
  };
  const KindRate kinds[] = {
      {FaultKind::kFlakyNode, options_.daily_node_flaky_rate},
      {FaultKind::kDegradedNode, options_.daily_node_degraded_rate},
      {FaultKind::kMemoryLeak, options_.daily_node_leak_rate},
      {FaultKind::kCrashLoop, options_.daily_node_crashloop_rate},
  };
  for (const KindRate& kr : kinds) {
    if (kr.rate <= 0.0) continue;
    const double p_onset = 1.0 - std::exp(-kr.rate * dt_days);
    for (NodeId node = 0; node < cluster_->num_nodes(); ++node) {
      if (node_afflicted_[node]) continue;
      if (!cluster_->GetNode(node).healthy) continue;
      if (!NodeHasRunningTarget(node)) continue;
      if (!rng_.Bernoulli(p_onset)) continue;
      const Duration duration = rng_.Uniform(options_.grey_min_duration,
                                             options_.grey_max_duration);
      ActiveFault fault;
      fault.kind = kr.kind;
      fault.node = node;
      fault.start = now;
      fault.end = now + duration;
      fault.record = fault_log_.size();
      fault_log_.push_back(FaultRecord{now, kr.kind,
                                       static_cast<uint64_t>(node),
                                       static_cast<uint64_t>(node), duration,
                                       0});
      node_afflicted_[node] = 1;
      ++node_faults_;
      // First dose lands immediately; subsequent sweeps keep it going.
      ApplyFault(fault);
      active_faults_.push_back(fault);
    }
  }
}

void FailureInjector::ControlSweep(double dt_days) {
  const SimTime now = sim_->Now();
  // 1. Refresh symptom counts from the channel's partition-drop counters
  // (how many messages the partition actually suppressed) and retire
  // tracking entries whose window ended. The partition itself heals inside
  // the channel; this bookkeeping only serves the audit log.
  size_t keep = 0;
  for (size_t i = 0; i < active_control_.size(); ++i) {
    ActiveControlFault& fault = active_control_[i];
    const uint64_t drops = fault.kind == FaultKind::kCellPartition
                               ? channel_->cell_partition_drops()
                               : channel_->node_partition_drops(fault.node);
    fault_log_[fault.record].symptoms = drops - fault.drops_at_start;
    if (fault.end <= now) continue;
    active_control_[keep++] = fault;
  }
  active_control_.resize(keep);
  // 2. Node partitions, node-id order (one at a time per node).
  if (options_.daily_node_partition_rate > 0.0) {
    const double p_onset =
        1.0 - std::exp(-options_.daily_node_partition_rate * dt_days);
    for (NodeId node = 0; node < cluster_->num_nodes(); ++node) {
      if (channel_->NodePartitioned(node)) continue;
      if (!cluster_->GetNode(node).healthy) continue;
      if (!NodeHasRunningTarget(node)) continue;
      if (!rng_.Bernoulli(p_onset)) continue;
      const Duration duration = rng_.Uniform(options_.partition_min_duration,
                                             options_.partition_max_duration);
      ActiveControlFault fault;
      fault.kind = FaultKind::kNodePartition;
      fault.node = node;
      fault.end = now + duration;
      fault.drops_at_start = channel_->node_partition_drops(node);
      fault.record = fault_log_.size();
      fault_log_.push_back(FaultRecord{now, FaultKind::kNodePartition,
                                       static_cast<uint64_t>(node),
                                       static_cast<uint64_t>(node), duration,
                                       0});
      active_control_.push_back(fault);
      channel_->PartitionNode(node, duration);
      ++control_faults_;
    }
  }
  // 3. Cell partition: one hazard draw per sweep, at most one active.
  if (options_.daily_cell_partition_rate > 0.0 &&
      !channel_->CellPartitioned()) {
    const double p_onset =
        1.0 - std::exp(-options_.daily_cell_partition_rate * dt_days);
    if (rng_.Bernoulli(p_onset)) {
      const Duration duration = rng_.Uniform(options_.partition_min_duration,
                                             options_.partition_max_duration);
      ActiveControlFault fault;
      fault.kind = FaultKind::kCellPartition;
      fault.end = now + duration;
      fault.drops_at_start = channel_->cell_partition_drops();
      fault.record = fault_log_.size();
      fault_log_.push_back(
          FaultRecord{now, FaultKind::kCellPartition, 0, 0, duration, 0});
      active_control_.push_back(fault);
      channel_->PartitionCell(duration);
      ++control_faults_;
    }
  }
  // 4. Master crashes: per-master hazard, victim chosen uniformly among the
  // masters currently up. The crash is instantaneous (the channel schedules
  // the failover restart itself), so no tracking entry is needed; the crash
  // is its own symptom.
  if (options_.daily_master_crash_rate > 0.0) {
    const size_t up = channel_->MastersUp();
    if (up > 0) {
      const double p_onset = 1.0 - std::exp(-options_.daily_master_crash_rate *
                                            static_cast<double>(up) * dt_days);
      if (rng_.Bernoulli(p_onset)) {
        const size_t ordinal =
            static_cast<size_t>(rng_.UniformInt(static_cast<uint64_t>(up)));
        const int handle = channel_->CrashMasterByOrdinal(ordinal);
        if (handle >= 0) {
          fault_log_.push_back(FaultRecord{now, FaultKind::kMasterCrash,
                                           static_cast<uint64_t>(handle), 0,
                                           0.0, 1});
          ++control_faults_;
        }
      }
    }
  }
}

}  // namespace dlrover
