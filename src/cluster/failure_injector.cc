#include "cluster/failure_injector.h"

#include <cmath>
#include <vector>

namespace dlrover {

FailureInjector::FailureInjector(Simulator* sim, Cluster* cluster,
                                 const FailureInjectorOptions& options)
    : sim_(sim), cluster_(cluster), options_(options), rng_(options.seed) {
  task_ = std::make_unique<PeriodicTask>(sim_, options_.sweep_interval,
                                         [this] { Sweep(); });
}

void FailureInjector::Start() { task_->Start(); }
void FailureInjector::Stop() { task_->Stop(); }

void FailureInjector::Sweep() {
  // Convert daily rates to a per-sweep hazard assuming a Poisson process:
  // p_sweep = 1 - exp(-rate * dt). Valid for any rate >= 0 (rates above
  // 1/day simply mean multiple expected events per pod-day).
  const double dt_days = options_.sweep_interval / Days(1);
  const double p_fail =
      1.0 - std::exp(-options_.daily_pod_failure_rate * dt_days);
  const double p_straggle =
      1.0 - std::exp(-options_.daily_straggler_rate * dt_days);

  // Collect victims first: injecting inside the visit would mutate the pod
  // map mid-iteration (terminations can create replacement pods). The
  // running-pod index serves exactly the (running, target-priority)
  // subsequence of the full directory sweep, in the same creation order, so
  // the hazard draws land on the same pods in the same RNG sequence while
  // the sweep cost drops from O(pods ever) to O(running target pods). The
  // victim buffers are members reused across sweeps: warm sweeps allocate
  // nothing.
  to_crash_.clear();
  to_degrade_.clear();
  cluster_->VisitRunningPods(options_.target_priority, [&](const Pod& pod) {
    if (rng_.Bernoulli(p_fail)) {
      to_crash_.push_back(pod.id);
    } else if (p_straggle > 0.0 && pod.speed_factor >= 0.5 &&
               rng_.Bernoulli(p_straggle)) {
      to_degrade_.push_back(pod.id);
    }
  });
  for (PodId id : to_crash_) {
    ++crashes_;
    cluster_->FailPod(id, PodStopReason::kCrash);
  }
  for (PodId id : to_degrade_) {
    ++stragglers_;
    cluster_->DegradePod(id, options_.straggler_speed_factor);
  }
}

}  // namespace dlrover
