#include "cluster/failure_injector.h"

#include <cmath>
#include <vector>

namespace dlrover {

FailureInjector::FailureInjector(Simulator* sim, Cluster* cluster,
                                 const FailureInjectorOptions& options)
    : sim_(sim), cluster_(cluster), options_(options), rng_(options.seed) {
  task_ = std::make_unique<PeriodicTask>(sim_, options_.sweep_interval,
                                         [this] { Sweep(); });
}

void FailureInjector::Start() { task_->Start(); }
void FailureInjector::Stop() { task_->Stop(); }

void FailureInjector::Sweep() {
  // Convert daily rates to a per-sweep hazard assuming a Poisson process:
  // p_sweep = 1 - exp(-rate * dt). Valid for any rate >= 0 (rates above
  // 1/day simply mean multiple expected events per pod-day).
  const double dt_days = options_.sweep_interval / Days(1);
  const double p_fail =
      1.0 - std::exp(-options_.daily_pod_failure_rate * dt_days);
  const double p_straggle =
      1.0 - std::exp(-options_.daily_straggler_rate * dt_days);

  // Collect victims first: injecting inside the visit would mutate the pod
  // map mid-iteration (terminations can create replacement pods).
  std::vector<PodId> to_crash;
  std::vector<PodId> to_degrade;
  cluster_->VisitPods([&](const Pod& pod) {
    if (pod.phase != PodPhase::kRunning) return;
    if (pod.spec.priority != options_.target_priority) return;
    if (rng_.Bernoulli(p_fail)) {
      to_crash.push_back(pod.id);
    } else if (p_straggle > 0.0 && pod.speed_factor >= 0.5 &&
               rng_.Bernoulli(p_straggle)) {
      to_degrade.push_back(pod.id);
    }
  });
  for (PodId id : to_crash) {
    ++crashes_;
    cluster_->FailPod(id, PodStopReason::kCrash);
  }
  for (PodId id : to_degrade) {
    ++stragglers_;
    cluster_->DegradePod(id, options_.straggler_speed_factor);
  }
}

}  // namespace dlrover
