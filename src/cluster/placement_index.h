#ifndef DLROVER_CLUSTER_PLACEMENT_INDEX_H_
#define DLROVER_CLUSTER_PLACEMENT_INDEX_H_

#include <array>
#include <cstdint>
#include <vector>

#include "cluster/pod.h"
#include "cluster/resources.h"

namespace dlrover {

/// Maps a PriorityClass to a dense bucket index [0, kNumPriorityClasses).
/// Bucket order follows priority order, so iterating buckets ascending visits
/// pods lowest-priority-first — the eviction order of the preemption path.
inline constexpr int kNumPriorityClasses = 4;
int PriorityBucket(PriorityClass p);

/// Ordered free-capacity index over the healthy nodes of a cluster.
///
/// The structure answers the scheduler's best-fit query — "healthy node with
/// the least remaining CPU that still fits the request" — in O(log n)
/// instead of the O(n) scan the legacy hot path pays per placement attempt,
/// and keeps per-node, priority-bucketed aggregates that let the preemption
/// path reject hopeless nodes in O(1) instead of sorting every pod on every
/// node per victim search.
///
/// Three parts:
///
///  1. A treap over healthy nodes keyed by (available CPU, node id), each
///     entry augmented with the maximum available memory in its subtree.
///     A best-fit query descends for the leftmost entry that fits both CPU
///     and memory; pruning on the memory augmentation keeps the walk
///     logarithmic. Treap priorities are a fixed hash of the node id, so the
///     tree shape is a pure function of the operation sequence — results
///     are deterministic and independent of execution lanes.
///
///  2. Per-node, per-priority-class pod aggregates (count + summed request)
///     maintained on place/release. `MaybeFreeable` folds the class totals
///     below a preemptor's priority into a conservative O(1) feasibility
///     check (see the slack note below).
///
///  3. A slab for all of the above: entries live in vectors sized to the
///     node count at construction, so steady-state updates and queries never
///     touch the heap.
///
/// Tie-breaking is pinned to the legacy scan's rule: the scan minimizes
/// fl(available_cpu - request_cpu) with a strict `<`, so among equal minimal
/// values the lowest node id (first encountered) wins. The treap's
/// (cpu, id) key order reproduces that for exact CPU ties, and BestFit runs
/// an explicit sweep over any further key groups whose *rounded* remainder
/// collapses to the same double — a pathological float case, but the sweep
/// makes the query's answer equal to the scan's on every input, not just
/// typical ones.
class PlacementIndex {
 public:
  explicit PlacementIndex(size_t num_nodes);

  /// Inserts a (healthy) node with its current available capacity.
  void InsertNode(NodeId id, const ResourceSpec& available);
  /// Removes a node (it failed). No-op if absent.
  void RemoveNode(NodeId id);
  /// Re-keys a node after its available capacity changed.
  void UpdateNode(NodeId id, const ResourceSpec& available);
  bool ContainsNode(NodeId id) const;
  /// Reads back the indexed capacity of a node (validation support).
  /// Returns false when the node is not in the index.
  bool GetIndexed(NodeId id, ResourceSpec* available) const;
  size_t NumIndexedNodes() const { return tree_size_; }

  /// Best-fit query: the node the legacy linear scan would choose for this
  /// request, or -1 when no healthy node fits. O(log n).
  int BestFit(const ResourceSpec& request) const;

  /// Registers a pod placed on `node` (bumps the node's class aggregate).
  void AddPod(NodeId node, PriorityClass priority, const ResourceSpec& request);
  /// Unregisters a pod released from `node`.
  void RemovePod(NodeId node, PriorityClass priority,
                 const ResourceSpec& request);

  /// O(1) conservative feasibility check for the preemption path: can
  /// evicting every pod of priority strictly below `preemptor` on this node
  /// possibly free room for `request` on top of `available`? A false return
  /// is definitive (the node cannot help even under worst-case float
  /// rounding, so the victim search skips it without touching its pods); a
  /// true return means "run the exact per-pod fold". The slack absorbs the
  /// rounding difference between the incrementally-maintained class totals
  /// and the scan-order summation the exact fold performs, so the *decision*
  /// always comes from arithmetic identical to the legacy path.
  bool MaybeFreeable(NodeId node, const ResourceSpec& available,
                     const ResourceSpec& request, PriorityClass preemptor) const;

  /// Pods registered on `node` in bucket `cls` (validation support).
  uint32_t PodCount(NodeId node, int cls) const {
    return node_pods_[node].count[static_cast<size_t>(cls)];
  }
  ResourceSpec PodTotal(NodeId node, int cls) const {
    return node_pods_[node].total[static_cast<size_t>(cls)];
  }

 private:
  static constexpr int kNil = -1;

  struct Entry {
    double key_cpu = 0.0;   // available CPU (the BST key, with node id)
    double mem = 0.0;       // available memory
    double max_mem = 0.0;   // subtree max of `mem`
    uint64_t pri = 0;       // fixed treap priority (min-heap)
    int left = kNil;
    int right = kNil;
    bool in_tree = false;
  };

  struct NodePods {
    std::array<ResourceSpec, kNumPriorityClasses> total;
    std::array<uint32_t, kNumPriorityClasses> count{};
  };

  bool Less(int a, int b) const;
  void Pull(int t);
  void Insert(int& t, int e);
  void Erase(int& t, int e);
  int MergeChildren(int a, int b);
  /// Leftmost fitting entry with key strictly above (`above_cpu`, any id),
  /// or any key when `above_cpu` is -inf.
  int FindFit(int t, const ResourceSpec& request, double above_cpu) const;

  std::vector<Entry> entries_;
  std::vector<NodePods> node_pods_;
  int root_ = kNil;
  size_t tree_size_ = 0;
};

/// Creation-ordered directory of *running* pods, bucketed by priority class.
///
/// The failure injector's sweep draws its per-pod hazards in pod creation
/// order, which the legacy path obtained by walking the entire pod directory
/// (every pod ever created) once per tick. This index keeps only the
/// currently-running pods of each class, ordered by creation sequence, so a
/// sweep enumerates exactly the pods it will draw for — O(running pods of
/// the class) per tick instead of O(pods ever) — while preserving the
/// enumeration order byte for byte.
///
/// Implementation: one treap per class keyed by the pod's creation sequence
/// (unique, monotone), entries recycled through a free list so steady-state
/// insert/erase never allocates once the high-water mark is reached.
class RunningPodIndex {
 public:
  RunningPodIndex();

  void Insert(PriorityClass priority, uint64_t creation_seq, const Pod* pod);
  void Remove(PriorityClass priority, uint64_t creation_seq);
  size_t Size(PriorityClass priority) const;

  /// Visits the running pods of `priority` in creation order.
  template <typename Fn>
  void Visit(PriorityClass priority, Fn&& fn) const {
    VisitSubtree(roots_[static_cast<size_t>(PriorityBucket(priority))], fn);
  }

 private:
  static constexpr int kNil = -1;

  struct Entry {
    uint64_t seq = 0;
    uint64_t pri = 0;
    const Pod* pod = nullptr;
    int left = kNil;
    int right = kNil;
  };

  template <typename Fn>
  void VisitSubtree(int t, Fn&& fn) const {
    if (t == kNil) return;
    VisitSubtree(entries_[static_cast<size_t>(t)].left, fn);
    fn(*entries_[static_cast<size_t>(t)].pod);
    VisitSubtree(entries_[static_cast<size_t>(t)].right, fn);
  }

  int AllocEntry();
  void Insert(int& t, int e);
  void Erase(int& t, uint64_t seq);
  int MergeChildren(int a, int b);

  std::vector<Entry> entries_;
  std::vector<int> free_;
  std::array<int, kNumPriorityClasses> roots_;
  std::array<size_t, kNumPriorityClasses> sizes_{};
};

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_PLACEMENT_INDEX_H_
