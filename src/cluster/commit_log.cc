#include "cluster/commit_log.h"

#include <algorithm>
#include <limits>

namespace dlrover {

void FleetLedger::Fold(const std::vector<ClusterCommitLog*>& logs) {
  cursors_.assign(logs.size(), 0);  // capacity persists across folds
  // K-way merge by (time, seq, shard). Each log is already sorted by
  // (time, seq) — simulated time is monotone within a shard and seq is the
  // append counter — so advancing the minimal cursor visits the canonical
  // order without any sorting or copying.
  for (;;) {
    size_t best = logs.size();
    for (size_t i = 0; i < logs.size(); ++i) {
      if (logs[i] == nullptr) continue;
      const auto& entries = logs[i]->entries();
      if (cursors_[i] >= entries.size()) continue;
      if (best == logs.size()) {
        best = i;
        continue;
      }
      const ClusterCommitLog::Entry& a = entries[cursors_[i]];
      const ClusterCommitLog::Entry& b = logs[best]->entries()[cursors_[best]];
      // Shard index breaks ties last, and i > best here, so strict-less
      // comparison on (time, seq) is all that is needed.
      if (a.time < b.time || (a.time == b.time && a.seq < b.seq)) best = i;
    }
    if (best == logs.size()) break;
    const ClusterCommitLog::Entry& e = logs[best]->entries()[cursors_[best]];
    ++cursors_[best];
    ++entries_folded_;
    switch (e.kind) {
      case ClusterCommitLog::Kind::kCapacity:
        totals_.capacity += e.delta;
        break;
      case ClusterCommitLog::Kind::kAllocated:
        totals_.allocated += e.delta;
        peak_allocated_cpu_ = std::max(peak_allocated_cpu_,
                                       totals_.allocated.cpu);
        break;
      case ClusterCommitLog::Kind::kUsage:
        totals_.usage += e.delta;
        break;
      case ClusterCommitLog::Kind::kCordoned:
        totals_.cordoned += e.delta;
        break;
    }
  }
  for (ClusterCommitLog* log : logs) {
    if (log != nullptr) log->Clear();
  }
}

double FleetLedger::FreeCpuFraction() const {
  if (totals_.capacity.cpu <= 0.0) return 1.0;
  return std::max(0.0, 1.0 - totals_.allocated.cpu / totals_.capacity.cpu);
}

}  // namespace dlrover
