#ifndef DLROVER_CLUSTER_COMMIT_LOG_H_
#define DLROVER_CLUSTER_COMMIT_LOG_H_

#include <cstdint>
#include <vector>

#include "cluster/resources.h"
#include "common/units.h"

namespace dlrover {

/// One cluster's append-only log of accounting deltas for a synchronization
/// window. A sharded fleet gives each shard-local Cluster its own log, so
/// capacity bookkeeping stays O(1) and entirely race-free while shards run
/// in parallel: a shard only ever appends to its own log, and the fleet
/// coordinator folds all logs at the window barrier.
class ClusterCommitLog {
 public:
  /// Which running total the delta applies to.
  enum class Kind : uint8_t {
    kCapacity = 0,   // healthy-node capacity joined/left the fleet
    kAllocated = 1,  // pod requests placed/released
    kUsage = 2,      // live usage reported by running pods
    kCordoned = 3,   // healthy capacity cordoned off / released from cordon
  };

  /// One delta. (time, seq) orders entries within the log; seq is the log's
  /// own append counter, so the key is unique and execution-independent.
  struct Entry {
    SimTime time = 0.0;
    uint64_t seq = 0;
    Kind kind = Kind::kAllocated;
    ResourceSpec delta;
  };

  /// Appends a delta at simulated time `time`. O(1) amortized; with
  /// Reserve() it never allocates on the warm path.
  void Append(SimTime time, Kind kind, const ResourceSpec& delta) {
    entries_.push_back(Entry{time, next_seq_++, kind, delta});
    ++total_appended_;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Drops the entries but keeps capacity (called after each barrier fold).
  void Clear() {
    entries_.clear();
    next_seq_ = 0;
  }

  void Reserve(size_t n) { entries_.reserve(n); }

  /// Lifetime count of appended entries (survives Clear).
  uint64_t total_appended() const { return total_appended_; }

 private:
  std::vector<Entry> entries_;
  uint64_t next_seq_ = 0;
  uint64_t total_appended_ = 0;
};

/// Fleet-wide accounting folded out of per-shard commit logs at window
/// barriers, in canonical (time, seq, shard) order. The fold is a k-way
/// cursor merge over logs whose entries are already (time, seq)-sorted by
/// construction, so it allocates nothing once the cursor scratch is sized.
class FleetLedger {
 public:
  struct Totals {
    ResourceSpec capacity;
    ResourceSpec allocated;
    ResourceSpec usage;
    /// Healthy capacity currently cordoned (still counted in `capacity`,
    /// but unschedulable — the node-health control plane fenced it off).
    ResourceSpec cordoned;
  };

  /// Folds every log's entries (in canonical order) into the running
  /// totals, then clears the logs. `logs[i]` is shard i's log; the shard
  /// index is the fold's final tie-break.
  void Fold(const std::vector<ClusterCommitLog*>& logs);

  const Totals& totals() const { return totals_; }
  /// Peak fleet-wide allocated CPU observed at any fold point.
  double peak_allocated_cpu() const { return peak_allocated_cpu_; }
  /// Fraction of fleet capacity CPU currently free; 1.0 on zero capacity
  /// (nothing allocated means nothing is scarce).
  double FreeCpuFraction() const;
  uint64_t entries_folded() const { return entries_folded_; }

 private:
  Totals totals_;
  double peak_allocated_cpu_ = 0.0;
  uint64_t entries_folded_ = 0;
  /// Per-log cursor scratch, reused across folds.
  std::vector<size_t> cursors_;
};

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_COMMIT_LOG_H_
