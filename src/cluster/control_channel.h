#ifndef DLROVER_CLUSTER_CONTROL_CHANNEL_H_
#define DLROVER_CLUSTER_CONTROL_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/pod.h"
#include "common/rng.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace dlrover {

/// Logical endpoints of the control plane. Workers live on cluster nodes
/// (endpoint == their NodeId); the per-job masters sit together with the
/// cluster API front end (kMaster); the brain is a separate remote service
/// (kBrain). A node-scoped partition severs node <-> master traffic
/// (heartbeats, shard reports from workers on that node); a cell-scoped
/// partition severs master <-> brain traffic (scaling plans, straggler
/// verdicts) — masters then degrade gracefully to their local policies.
using ControlEndpoint = int;

/// What a control message carries; used for the audit/event log only — the
/// channel itself treats every message as an opaque deliverable.
enum class ControlMessageKind : int {
  kHeartbeat = 0,        // worker -> master progress report
  kShardReport = 1,      // worker -> master shard completion (reliable)
  kStragglerVerdict = 2, // master -> brain node-health evidence
  kPlan = 3,             // brain -> master scaling plan (reliable, fenced)
};

std::string ControlMessageKindName(ControlMessageKind kind);

/// One entry of the channel's deterministic event trace. `a` and `b` carry
/// kind-specific detail (message kind + sequence for chaos events, node id
/// for partitions, master handle + epoch for failover, plan sequence for
/// fencing). The trace is part of FleetResult and must be byte-identical
/// across reruns and sharded lane counts.
enum class ControlEventKind : int {
  kDropped = 0,             // a = message kind, b = message seq
  kPartitionDropped = 1,    // a = message kind, b = message seq
  kDuplicated = 2,          // a = message kind, b = message seq
  kReordered = 3,           // a = message kind, b = message seq
  kRetried = 4,             // a = message kind, b = message seq
  kExpired = 5,             // a = message kind, b = message seq
  kAckLost = 6,             // a = message kind, b = message seq
  kNodePartitionStart = 7,  // a = node
  kNodePartitionEnd = 8,    // a = node
  kCellPartitionStart = 9,
  kCellPartitionEnd = 10,
  kMasterCrash = 11,        // a = master handle, b = epoch at crash
  kMasterRestart = 12,      // a = master handle, b = new epoch
  kEpochFenced = 13,        // a = message kind, b = message seq
  kPlanFencedStale = 14,    // a = fencing source id, b = plan seq
  kStalePlanApplied = 15,   // a = fencing source id, b = plan seq
};

struct ControlEvent {
  SimTime time = 0.0;
  ControlEventKind kind = ControlEventKind::kDropped;
  uint64_t a = 0;
  uint64_t b = 0;

  bool operator==(const ControlEvent& o) const {
    return time == o.time && kind == o.kind && a == o.a && b == o.b;
  }
};

/// Channel-wide counters, merged across cells by the sharded fleet runner.
struct ControlChannelStats {
  uint64_t messages_sent = 0;        // attempts, including retries
  uint64_t messages_delivered = 0;   // copies that executed at the receiver
  uint64_t messages_dropped = 0;     // chaos drops
  uint64_t messages_partition_dropped = 0;
  uint64_t messages_duplicated = 0;
  uint64_t messages_reordered = 0;
  uint64_t retries = 0;
  uint64_t sends_expired = 0;        // reliable sends that hit the deadline
  uint64_t acks_lost = 0;
  uint64_t epoch_fenced = 0;         // deliveries to a crashed/re-epoched master
  uint64_t plans_fenced_stale = 0;   // stale/duplicate plans rejected by seq
  uint64_t stale_plan_applies = 0;   // fencing off: stale plan applied anyway
  uint64_t node_partitions = 0;
  uint64_t cell_partitions = 0;
  uint64_t master_crashes = 0;
  uint64_t master_restarts = 0;

  ControlChannelStats& operator+=(const ControlChannelStats& o);
  bool operator==(const ControlChannelStats& o) const;
};

/// Tunables for the control-plane channel. Everything defaults to a fully
/// healthy network so that merely *enabling* the channel (routing messages
/// through scheduled deliveries) is separable from injecting chaos; the
/// channel as a whole is absent unless FleetScenario::control.enabled — the
/// disabled configuration constructs no channel, draws no randomness, and
/// schedules no events, so traces are byte-identical to pre-feature builds.
struct ControlChannelOptions {
  bool enabled = false;
  uint64_t seed = 4242;

  /// One-way delivery latency, sampled uniformly per copy.
  Duration min_latency = Seconds(0.05);
  Duration max_latency = Seconds(0.35);
  /// Per-attempt probability the copy is lost in flight.
  double drop_prob = 0.0;
  /// Probability a delivered attempt arrives twice (second copy gets its own
  /// latency draw, so it may land out of order).
  double duplicate_prob = 0.0;
  /// Probability a copy is held `reorder_delay` extra — enough for later
  /// messages to overtake it.
  double reorder_prob = 0.0;
  Duration reorder_delay = Seconds(2);

  /// Reliable-send policy (plan delivery, shard reports). With retries off
  /// (the unprotected arm) a reliable send degenerates to one attempt and
  /// the expiry callback never fires.
  bool retries_enabled = true;
  Duration retry_base = Seconds(1);
  Duration retry_cap = Seconds(20);
  Duration retry_deadline = Minutes(6);

  /// Epoch/sequence fencing at plan-apply time (the protected arm). With
  /// fencing off, stale and duplicate plans apply and are counted as
  /// `stale_plan_applies` hazards.
  bool fencing_enabled = true;

  /// Master failover: a crashed master restarts from its last tick snapshot
  /// after `master_restart_delay`. With failover off a crashed master stays
  /// down for good.
  bool failover_enabled = true;
  Duration master_restart_delay = Seconds(45);
};

/// Failover interface a job master registers with the channel. The channel
/// owns crash/restart scheduling; the endpoint owns its own state snapshot
/// and what crash/restart mean for its periodic work.
class ControlMasterEndpoint {
 public:
  virtual ~ControlMasterEndpoint() = default;
  /// The master process died: stop all periodic work, lose volatile state.
  virtual void OnMasterCrash() = 0;
  /// A replacement came up (new epoch): restore from the snapshot and
  /// resume periodic work.
  virtual void OnMasterRestart() = 0;
};

/// Deterministic, fault-injectable control-plane message layer. All
/// heartbeats, shard reports, straggler verdicts, and scaling plans of a
/// fleet cell flow through one channel living on the cell's simulator, so
/// every chaos draw happens in event order and sharded runs stay
/// byte-identical at any lane count (control traffic never crosses cells —
/// cross-cell state still flows through the ClusterCommitLog/FleetLedger).
///
/// `Send` is fire-and-forget (heartbeats, verdicts). `SendReliable` retries
/// with capped jittered exponential backoff until an acknowledgement makes
/// it back or the deadline passes; acks are themselves lossy, so receivers
/// must treat deliveries as at-least-once and fence duplicates (plan
/// sequence numbers, exactly-once shard queue).
class ControlChannel {
 public:
  static constexpr ControlEndpoint kBrain = -2;
  static constexpr ControlEndpoint kMaster = -1;

  ControlChannel(Simulator* sim, const ControlChannelOptions& options);
  ~ControlChannel();

  ControlChannel(const ControlChannel&) = delete;
  ControlChannel& operator=(const ControlChannel&) = delete;

  /// Fire-and-forget send. `deliver` runs at the receiver once per arriving
  /// copy (possibly never, possibly twice).
  void Send(ControlMessageKind kind, ControlEndpoint src, ControlEndpoint dst,
            std::function<void()> deliver);

  /// Reliable send: re-attempts with backoff until acked or past the
  /// deadline. `deliver` runs once per arriving copy (the receiver must
  /// dedup); `on_expire` (optional) runs once if the deadline passes without
  /// an ack — the sender-side recovery hook (e.g. requeue a shard).
  /// `dst_master` >= 0 pins delivery to a registered master endpoint:
  /// copies arriving while it is down, or after its epoch moved past the
  /// attempt's, are fenced instead of delivered.
  void SendReliable(ControlMessageKind kind, ControlEndpoint src,
                    ControlEndpoint dst, std::function<void()> deliver,
                    std::function<void()> on_expire = nullptr,
                    int dst_master = -1);

  // ---- Partitions (injector-driven, seeded schedules) ----
  void PartitionNode(NodeId node, Duration duration);
  void PartitionCell(Duration duration);
  bool NodePartitioned(NodeId node) const;
  bool CellPartitioned() const;
  /// Cumulative messages dropped by partitions; the injector differences
  /// these across sweeps to attribute symptoms to its audit records.
  uint64_t node_partition_drops(NodeId node) const;
  uint64_t cell_partition_drops() const { return cell_partition_drops_; }

  // ---- Master failover registry ----
  int RegisterMaster(ControlMasterEndpoint* master);
  void UnregisterMaster(int handle);
  bool MasterUp(int handle) const;
  uint64_t MasterEpoch(int handle) const;
  size_t MastersUp() const;
  /// Crashes the `ordinal`-th currently-up master (injector-driven); with
  /// failover enabled a restart is scheduled after master_restart_delay.
  /// Returns the crashed master's handle, or -1 when none was up.
  int CrashMasterByOrdinal(size_t ordinal);

  // ---- Fencing bookkeeping (receivers report verdicts here) ----
  bool fencing_enabled() const { return options_.fencing_enabled; }
  void NotePlanFenced(uint64_t source, uint64_t plan_seq);
  void NoteStalePlanApplied(uint64_t source, uint64_t plan_seq);

  const ControlChannelOptions& options() const { return options_; }
  const ControlChannelStats& stats() const { return stats_; }
  const std::vector<ControlEvent>& log() const { return log_; }

 private:
  struct Message {
    ControlMessageKind kind = ControlMessageKind::kHeartbeat;
    ControlEndpoint src = 0;
    ControlEndpoint dst = 0;
    int dst_master = -1;
    bool reliable = false;
    bool acked = false;
    bool closed = false;  // no further attempts will be made
    uint64_t seq = 0;
    SimTime first_send = 0.0;
    int attempts = 0;
    uint32_t inflight = 0;  // scheduled events (deliveries/acks) alive
    EventId retry_event = 0;
    std::function<void()> deliver;
    std::function<void()> on_expire;
    uint32_t gen = 1;
    bool armed = false;
  };

  void Record(ControlEventKind kind, uint64_t a, uint64_t b);
  /// True when a message between these endpoints is severed right now;
  /// charges the responsible partition's drop counter when `charge`.
  bool Severed(ControlEndpoint src, ControlEndpoint dst, bool charge);
  uint32_t ArmSlot(Message&& msg);
  void MaybeRelease(uint32_t slot);
  void Close(uint32_t slot);
  /// One network attempt: partition/drop/duplicate/latency draws, delivery
  /// scheduling, and (for reliable sends) the retry arm.
  void Attempt(uint32_t slot);
  void ScheduleDelivery(uint32_t slot, bool duplicate_copy);
  void Deliver(uint32_t slot, uint32_t gen, uint64_t attempt_epoch);
  void RetryFire(uint32_t slot, uint32_t gen);

  struct MasterSlot {
    ControlMasterEndpoint* endpoint = nullptr;
    bool registered = false;
    bool up = true;
    uint64_t epoch = 0;
  };

  Simulator* sim_;
  ControlChannelOptions options_;
  Rng rng_;
  uint64_t next_seq_ = 0;
  std::vector<Message> slots_;
  std::vector<uint32_t> free_slots_;
  std::vector<MasterSlot> masters_;
  std::vector<SimTime> node_partition_until_;
  std::vector<uint64_t> node_partition_drops_;
  SimTime cell_partition_until_ = -1.0;
  uint64_t cell_partition_drops_ = 0;
  ControlChannelStats stats_;
  std::vector<ControlEvent> log_;
};

}  // namespace dlrover

#endif  // DLROVER_CLUSTER_CONTROL_CHANNEL_H_
