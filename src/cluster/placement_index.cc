#include "cluster/placement_index.h"

#include <algorithm>
#include <limits>

namespace dlrover {
namespace {

/// Must equal ResourceSpec::FitsIn's epsilon: BestFit evaluates the same
/// fit predicate the legacy scan does, component-wise, during descent.
constexpr double kFitEps = 1e-9;

/// Slack bands for MaybeFreeable (see the header): orders of magnitude above
/// any float drift the incrementally-maintained class totals can accumulate
/// versus the exact scan-order fold, orders of magnitude below the smallest
/// meaningful request margin (fractional cores / megabytes).
constexpr double kCpuSlack = 1e-5;
constexpr double kMemSlack = 1e6;  // bytes

/// splitmix64: deterministic, well-mixed treap priorities from ids/seqs, so
/// tree shape is a pure function of the operation sequence.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int PriorityBucket(PriorityClass p) {
  switch (p) {
    case PriorityClass::kBestEffort:
      return 0;
    case PriorityClass::kTraining:
      return 1;
    case PriorityClass::kStream:
      return 2;
    case PriorityClass::kOnline:
      return 3;
  }
  return kNumPriorityClasses - 1;
}

PlacementIndex::PlacementIndex(size_t num_nodes)
    : entries_(num_nodes), node_pods_(num_nodes) {
  for (size_t i = 0; i < num_nodes; ++i) {
    entries_[i].pri = Mix64(static_cast<uint64_t>(i));
  }
}

bool PlacementIndex::Less(int a, int b) const {
  const Entry& ea = entries_[static_cast<size_t>(a)];
  const Entry& eb = entries_[static_cast<size_t>(b)];
  if (ea.key_cpu != eb.key_cpu) return ea.key_cpu < eb.key_cpu;
  return a < b;  // entry index == node id: ties resolve to the lower id
}

void PlacementIndex::Pull(int t) {
  Entry& e = entries_[static_cast<size_t>(t)];
  e.max_mem = e.mem;
  if (e.left != kNil) {
    e.max_mem = std::max(e.max_mem, entries_[static_cast<size_t>(e.left)].max_mem);
  }
  if (e.right != kNil) {
    e.max_mem = std::max(e.max_mem, entries_[static_cast<size_t>(e.right)].max_mem);
  }
}

void PlacementIndex::Insert(int& t, int e) {
  if (t == kNil) {
    t = e;
    entries_[static_cast<size_t>(e)].left = kNil;
    entries_[static_cast<size_t>(e)].right = kNil;
    Pull(e);
    return;
  }
  Entry& et = entries_[static_cast<size_t>(t)];
  if (Less(e, t)) {
    Insert(et.left, e);
    if (entries_[static_cast<size_t>(et.left)].pri < et.pri) {
      // Rotate right: the freshly inserted (or bubbled) child takes t's spot.
      const int l = et.left;
      et.left = entries_[static_cast<size_t>(l)].right;
      entries_[static_cast<size_t>(l)].right = t;
      Pull(t);
      t = l;
    }
  } else {
    Insert(et.right, e);
    if (entries_[static_cast<size_t>(et.right)].pri < et.pri) {
      const int r = et.right;
      et.right = entries_[static_cast<size_t>(r)].left;
      entries_[static_cast<size_t>(r)].left = t;
      Pull(t);
      t = r;
    }
  }
  Pull(t);
}

int PlacementIndex::MergeChildren(int a, int b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  if (entries_[static_cast<size_t>(a)].pri < entries_[static_cast<size_t>(b)].pri) {
    entries_[static_cast<size_t>(a)].right =
        MergeChildren(entries_[static_cast<size_t>(a)].right, b);
    Pull(a);
    return a;
  }
  entries_[static_cast<size_t>(b)].left =
      MergeChildren(a, entries_[static_cast<size_t>(b)].left);
  Pull(b);
  return b;
}

void PlacementIndex::Erase(int& t, int e) {
  if (t == kNil) return;
  if (t == e) {
    Entry& et = entries_[static_cast<size_t>(t)];
    t = MergeChildren(et.left, et.right);
    et.left = kNil;
    et.right = kNil;
    return;
  }
  Entry& et = entries_[static_cast<size_t>(t)];
  if (Less(e, t)) {
    Erase(et.left, e);
  } else {
    Erase(et.right, e);
  }
  Pull(t);
}

void PlacementIndex::InsertNode(NodeId id, const ResourceSpec& available) {
  Entry& e = entries_[id];
  if (e.in_tree) return;
  e.key_cpu = available.cpu;
  e.mem = available.memory;
  e.in_tree = true;
  Insert(root_, static_cast<int>(id));
  ++tree_size_;
}

void PlacementIndex::RemoveNode(NodeId id) {
  Entry& e = entries_[id];
  if (!e.in_tree) return;
  Erase(root_, static_cast<int>(id));
  e.in_tree = false;
  --tree_size_;
}

void PlacementIndex::UpdateNode(NodeId id, const ResourceSpec& available) {
  Entry& e = entries_[id];
  if (!e.in_tree) return;
  if (e.key_cpu == available.cpu && e.mem == available.memory) return;
  Erase(root_, static_cast<int>(id));
  e.key_cpu = available.cpu;
  e.mem = available.memory;
  Insert(root_, static_cast<int>(id));
}

bool PlacementIndex::ContainsNode(NodeId id) const {
  return entries_[id].in_tree;
}

bool PlacementIndex::GetIndexed(NodeId id, ResourceSpec* available) const {
  const Entry& e = entries_[id];
  if (!e.in_tree) return false;
  available->cpu = e.key_cpu;
  available->memory = e.mem;
  return true;
}

int PlacementIndex::FindFit(int t, const ResourceSpec& request,
                            double above_cpu) const {
  if (t == kNil) return kNil;
  const Entry& e = entries_[static_cast<size_t>(t)];
  // Nothing in this subtree has enough memory: prune in O(1).
  if (request.memory > e.max_mem + kFitEps) return kNil;
  // The left subtree holds strictly smaller keys; it can contain a candidate
  // only if this entry's CPU already clears both CPU constraints (CPU-fit is
  // monotone in the key, and the strictly-above bound is a key lower bound).
  if (e.key_cpu > above_cpu && request.cpu <= e.key_cpu + kFitEps) {
    const int l = FindFit(e.left, request, above_cpu);
    if (l != kNil) return l;
    if (request.memory <= e.mem + kFitEps) return t;
  }
  return FindFit(e.right, request, above_cpu);
}

int PlacementIndex::BestFit(const ResourceSpec& request) const {
  const int first =
      FindFit(root_, request, -std::numeric_limits<double>::infinity());
  if (first == kNil) return -1;
  // The legacy scan minimizes fl(available_cpu - request_cpu) and keeps the
  // first (lowest-id) node achieving the minimum. The leftmost fitting entry
  // has the minimal available CPU among fitting nodes — and hence the
  // minimal rounded remainder — with the lowest id inside its exact-CPU
  // group. But a *different* CPU value can round to the same remainder;
  // sweep successive fitting CPU groups while the rounded remainder stays
  // equal, keeping the overall minimum id. Normally this loop exits on its
  // first iteration (the next group's remainder is strictly larger).
  const double best_rem =
      entries_[static_cast<size_t>(first)].key_cpu - request.cpu;
  int best_id = first;
  double cursor_cpu = entries_[static_cast<size_t>(first)].key_cpu;
  for (;;) {
    const int next = FindFit(root_, request, cursor_cpu);
    if (next == kNil) break;
    const Entry& e = entries_[static_cast<size_t>(next)];
    if (e.key_cpu - request.cpu != best_rem) break;
    best_id = std::min(best_id, next);
    cursor_cpu = e.key_cpu;
  }
  return best_id;
}

void PlacementIndex::AddPod(NodeId node, PriorityClass priority,
                            const ResourceSpec& request) {
  NodePods& np = node_pods_[node];
  const size_t b = static_cast<size_t>(PriorityBucket(priority));
  np.total[b] += request;
  ++np.count[b];
}

void PlacementIndex::RemovePod(NodeId node, PriorityClass priority,
                               const ResourceSpec& request) {
  NodePods& np = node_pods_[node];
  const size_t b = static_cast<size_t>(PriorityBucket(priority));
  np.total[b] -= request;
  --np.count[b];
  // Re-anchor on empty: the incremental total may carry float dust after a
  // remove sequence ordered differently from the adds; zeroing here keeps
  // drift bounded by one occupancy cycle instead of the cluster's lifetime.
  if (np.count[b] == 0) np.total[b] = ResourceSpec{};
}

bool PlacementIndex::MaybeFreeable(NodeId node, const ResourceSpec& available,
                                   const ResourceSpec& request,
                                   PriorityClass preemptor) const {
  const int limit = PriorityBucket(preemptor);
  double cpu = available.cpu;
  double mem = available.memory;
  const NodePods& np = node_pods_[node];
  for (int b = 0; b < limit; ++b) {
    cpu += np.total[static_cast<size_t>(b)].cpu;
    mem += np.total[static_cast<size_t>(b)].memory;
  }
  return request.cpu <= cpu + kCpuSlack && request.memory <= mem + kMemSlack;
}

RunningPodIndex::RunningPodIndex() { roots_.fill(kNil); }

int RunningPodIndex::AllocEntry() {
  if (!free_.empty()) {
    const int e = free_.back();
    free_.pop_back();
    return e;
  }
  const int e = static_cast<int>(entries_.size());
  entries_.emplace_back();
  return e;
}

void RunningPodIndex::Insert(int& t, int e) {
  if (t == kNil) {
    t = e;
    return;
  }
  Entry& et = entries_[static_cast<size_t>(t)];
  if (entries_[static_cast<size_t>(e)].seq < et.seq) {
    Insert(et.left, e);
    if (entries_[static_cast<size_t>(et.left)].pri < et.pri) {
      const int l = et.left;
      et.left = entries_[static_cast<size_t>(l)].right;
      entries_[static_cast<size_t>(l)].right = t;
      t = l;
    }
  } else {
    Insert(et.right, e);
    if (entries_[static_cast<size_t>(et.right)].pri < et.pri) {
      const int r = et.right;
      et.right = entries_[static_cast<size_t>(r)].left;
      entries_[static_cast<size_t>(r)].left = t;
      t = r;
    }
  }
}

int RunningPodIndex::MergeChildren(int a, int b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  if (entries_[static_cast<size_t>(a)].pri < entries_[static_cast<size_t>(b)].pri) {
    entries_[static_cast<size_t>(a)].right =
        MergeChildren(entries_[static_cast<size_t>(a)].right, b);
    return a;
  }
  entries_[static_cast<size_t>(b)].left =
      MergeChildren(a, entries_[static_cast<size_t>(b)].left);
  return b;
}

void RunningPodIndex::Erase(int& t, uint64_t seq) {
  if (t == kNil) return;
  Entry& et = entries_[static_cast<size_t>(t)];
  if (et.seq == seq) {
    const int dead = t;
    t = MergeChildren(et.left, et.right);
    et.left = kNil;
    et.right = kNil;
    et.pod = nullptr;
    free_.push_back(dead);
    return;
  }
  if (seq < et.seq) {
    Erase(et.left, seq);
  } else {
    Erase(et.right, seq);
  }
}

void RunningPodIndex::Insert(PriorityClass priority, uint64_t creation_seq,
                             const Pod* pod) {
  const int e = AllocEntry();
  Entry& en = entries_[static_cast<size_t>(e)];
  en.seq = creation_seq;
  en.pri = Mix64(creation_seq);
  en.pod = pod;
  en.left = kNil;
  en.right = kNil;
  const size_t b = static_cast<size_t>(PriorityBucket(priority));
  Insert(roots_[b], e);
  ++sizes_[b];
}

void RunningPodIndex::Remove(PriorityClass priority, uint64_t creation_seq) {
  const size_t b = static_cast<size_t>(PriorityBucket(priority));
  const size_t before = free_.size();
  Erase(roots_[b], creation_seq);
  if (free_.size() > before) --sizes_[b];
}

size_t RunningPodIndex::Size(PriorityClass priority) const {
  return sizes_[static_cast<size_t>(PriorityBucket(priority))];
}

}  // namespace dlrover
