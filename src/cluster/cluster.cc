#include "cluster/cluster.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/logging.h"

namespace dlrover {

std::string ResourceSpec::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{cpu=%.2f, mem=%.1fGiB}", cpu, ToGiB(memory));
  return buf;
}

std::string PriorityClassName(PriorityClass p) {
  switch (p) {
    case PriorityClass::kBestEffort:
      return "best-effort";
    case PriorityClass::kTraining:
      return "training";
    case PriorityClass::kStream:
      return "stream";
    case PriorityClass::kOnline:
      return "online";
  }
  return "unknown";
}

std::string PodPhaseName(PodPhase phase) {
  switch (phase) {
    case PodPhase::kPending:
      return "Pending";
    case PodPhase::kStarting:
      return "Starting";
    case PodPhase::kRunning:
      return "Running";
    case PodPhase::kSucceeded:
      return "Succeeded";
    case PodPhase::kFailed:
      return "Failed";
    case PodPhase::kPreempted:
      return "Preempted";
    case PodPhase::kKilled:
      return "Killed";
  }
  return "Unknown";
}

std::string PodStopReasonName(PodStopReason reason) {
  switch (reason) {
    case PodStopReason::kCompleted:
      return "completed";
    case PodStopReason::kCrash:
      return "crash";
    case PodStopReason::kOomKill:
      return "oom-kill";
    case PodStopReason::kPreemption:
      return "preemption";
    case PodStopReason::kOwnerKill:
      return "owner-kill";
  }
  return "unknown";
}

Cluster::Cluster(Simulator* sim, const ClusterOptions& options)
    : sim_(sim),
      options_(options),
      rng_(options.seed),
      placement_index_(static_cast<size_t>(options.num_nodes)) {
  nodes_.reserve(static_cast<size_t>(options.num_nodes));
  for (int i = 0; i < options.num_nodes; ++i) {
    Node node;
    node.id = static_cast<NodeId>(i);
    node.capacity = options.node_capacity;
    node.speed_factor =
        options.heterogeneity_sigma > 0.0
            ? rng_.LogNormal(1.0, options.heterogeneity_sigma)
            : 1.0;
    capacity_total_ += node.capacity;
    nodes_.push_back(node);
    if (options_.use_placement_index) {
      placement_index_.InsertNode(node.id, node.Available());
    }
  }
  // Fixed-size pool: slots are taken by re-entrant preemption depth, and
  // never growing it keeps references into the pool stable across nested
  // calls (depths past the pool fall back to the legacy arm's locals).
  victims_pool_.resize(64);
  pump_task_ = std::make_unique<PeriodicTask>(
      sim_, options.reschedule_interval, [this] { PumpPendingQueue(); });
  pump_task_->Start();
  if (options_.enable_node_health) {
    health_ = std::make_unique<NodeHealthTracker>(options_.node_health,
                                                  nodes_.size());
    health_task_ = std::make_unique<PeriodicTask>(
        sim_, options_.node_health.tick_interval, [this] { HealthTick(); });
    health_task_->Start();
  }
}

PodId Cluster::CreatePod(PodSpec spec, std::function<void(Pod&)> on_running,
                         std::function<void(Pod&, PodStopReason)> on_stopped) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    // Re-arming a recycled slot is the moment the previous tenant's id goes
    // stale: until now a terminated pod was still resolvable by its id.
    ++slots_[slot].gen;
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  auto pod = std::make_unique<Pod>();
  pod->id = MakeId(slot, slots_[slot].gen);
  pod->creation_seq = next_creation_seq_++;
  pod->spec = std::move(spec);
  pod->submit_time = sim_->Now();
  pod->on_running = std::move(on_running);
  pod->on_stopped = std::move(on_stopped);
  const PodId id = pod->id;
  Pod& ref = *pod;
  slots_[slot].pod = pod.get();
  if (options_.legacy_pod_index) legacy_index_.emplace(id, pod.get());
  directory_.push_back(std::move(pod));
  ++counters_.pods_created;

  if (!TryPlace(ref)) {
    // Hold the pending queue off while preempting: the capacity freed for
    // this (higher-priority) pod must not be grabbed by a lower-priority
    // pending pod via the Terminate->pump path.
    const bool was_pumping = pumping_;
    pumping_ = true;
    const bool placed = TryPreemptFor(ref) && TryPlace(ref);
    pumping_ = was_pumping;
    if (!placed) pending_.push_back(id);
    if (!was_pumping && repump_) {
      repump_ = false;
      PumpPendingQueue();
    }
  }
  return id;
}

bool Cluster::TryPlace(Pod& pod) {
  // Best-fit: choose the healthy node with the least remaining CPU that
  // still fits the request (packs tightly, leaving large holes for big pods).
  int best = -1;
  if (options_.use_placement_index) {
    best = placement_index_.BestFit(pod.spec.request);
  } else {
    double best_left = std::numeric_limits<double>::infinity();
    for (const Node& node : nodes_) {
      if (!node.healthy || node.cordoned) continue;
      if (!pod.spec.request.FitsIn(node.Available())) continue;
      const double left = node.Available().cpu - pod.spec.request.cpu;
      if (left < best_left) {
        best_left = left;
        best = static_cast<int>(node.id);
      }
    }
  }
  if (best < 0) return false;

  Node& node = nodes_[static_cast<size_t>(best)];
  node.allocated += pod.spec.request;
  allocated_total_ += pod.spec.request;
  LogDelta(ClusterCommitLog::Kind::kAllocated, pod.spec.request);
  node.pods.push_back(pod.id);
  pod.node = node.id;
  pod.phase = PodPhase::kStarting;
  pod.speed_factor = node.speed_factor;
  ++counters_.placements;
  ++mutation_version_;
  if (options_.use_placement_index) {
    placement_index_.UpdateNode(node.id, node.Available());
    placement_index_.AddPod(node.id, pod.spec.priority, pod.spec.request);
    if (options_.validate_placement_index) ValidatePlacementIndex();
  }

  Duration startup = rng_.Uniform(options_.min_pod_startup,
                                  options_.max_pod_startup);
  if (UnderScarcity()) startup *= options_.scarcity_startup_factor;
  const PodId id = pod.id;
  sim_->ScheduleAfter(startup, [this, id] { FinishStartup(id); });
  return true;
}

bool Cluster::TryPreemptFor(Pod& pod) {
  // Livelock breaker: once this instant's preemption budget is spent the
  // attempt fails outright and the pod waits in the pending queue until
  // simulated time advances (see ClusterOptions::max_preemptions_per_instant).
  if (sim_->Now() == preemption_instant_ &&
      preempted_at_instant_ >= options_.max_preemptions_per_instant) {
    return false;
  }
  if (!options_.use_placement_index || preempt_depth_ >= victims_pool_.size()) {
    return TryPreemptLegacy(pod);
  }
  // Indexed victim search: the per-node priority-bucketed aggregates give an
  // O(1) conservative "can evicting everything below this priority possibly
  // free enough room?" precheck, so the O(pods log pods) sort-and-fold below
  // only runs on nodes that can actually help — normally exactly one, where
  // the exact legacy fold then picks byte-identical victims in byte-identical
  // order. Scratch buffers are reused across calls; the victim list takes a
  // per-reentrancy-depth slot because eviction callbacks can preempt again
  // while it is being walked.
  std::vector<PodId>& victims = victims_pool_[preempt_depth_];
  ++preempt_depth_;
  struct DepthGuard {
    size_t& depth;
    ~DepthGuard() { --depth; }
  } guard{preempt_depth_};
  for (Node& node : nodes_) {
    if (!node.healthy || node.cordoned) continue;
    if (!placement_index_.MaybeFreeable(node.id, node.Available(),
                                        pod.spec.request, pod.spec.priority)) {
      continue;
    }
    // Exact legacy fold. Sorting cached (priority, id) pairs instead of
    // re-resolving ids inside the comparator produces the identical
    // permutation: std::sort's element order depends only on its comparison
    // outcomes, and comparing the cached priorities answers exactly what the
    // legacy comparator answered.
    preempt_candidates_.clear();
    for (PodId pid : node.pods) {
      preempt_candidates_.emplace_back(
          static_cast<int>(Resolve(pid)->spec.priority), pid);
    }
    std::sort(preempt_candidates_.begin(), preempt_candidates_.end(),
              [](const std::pair<int, PodId>& a,
                 const std::pair<int, PodId>& b) { return a.first < b.first; });
    ResourceSpec would_free = node.Available();
    victims.clear();
    for (const std::pair<int, PodId>& cand : preempt_candidates_) {
      if (pod.spec.request.FitsIn(would_free)) break;
      if (cand.first >= static_cast<int>(pod.spec.priority)) continue;
      would_free += Resolve(cand.second)->spec.request;
      victims.push_back(cand.second);
    }
    if (pod.spec.request.FitsIn(would_free)) {
      return EvictVictims(victims);
    }
  }
  return false;
}

bool Cluster::TryPreemptLegacy(Pod& pod) {
  // Only higher-priority pods may preempt. Find a node where evicting the
  // cheapest set of strictly lower-priority pods frees enough room.
  for (Node& node : nodes_) {
    if (!node.healthy || node.cordoned) continue;
    ResourceSpec would_free = node.Available();
    std::vector<PodId> victims;
    // Evict lowest priority first.
    std::vector<PodId> candidates = node.pods;
    std::sort(candidates.begin(), candidates.end(),
              [this](PodId a, PodId b) {
                return static_cast<int>(Resolve(a)->spec.priority) <
                       static_cast<int>(Resolve(b)->spec.priority);
              });
    for (PodId vid : candidates) {
      if (pod.spec.request.FitsIn(would_free)) break;
      Pod& victim = *Resolve(vid);
      if (static_cast<int>(victim.spec.priority) >=
          static_cast<int>(pod.spec.priority)) {
        continue;
      }
      would_free += victim.spec.request;
      victims.push_back(vid);
    }
    if (pod.spec.request.FitsIn(would_free)) {
      return EvictVictims(victims);
    }
  }
  return false;
}

bool Cluster::EvictVictims(const std::vector<PodId>& victims) {
  if (sim_->Now() != preemption_instant_) {
    preemption_instant_ = sim_->Now();
    preempted_at_instant_ = 0;
  }
  preempted_at_instant_ += victims.size();
  for (PodId vid : victims) {
    ++counters_.pods_preempted;
    // A victim's stop callback can transitively kill (and recycle the
    // slot of) a later victim in this list; a stale id then resolves
    // null and the Terminate it would have received is a no-op anyway.
    if (Pod* victim = Resolve(vid)) {
      Terminate(*victim, PodPhase::kPreempted, PodStopReason::kPreemption);
    }
  }
  return !victims.empty();
}

void Cluster::FinishStartup(PodId id) {
  Pod* pod = Resolve(id);
  if (pod == nullptr) return;
  if (pod->phase != PodPhase::kStarting) return;  // killed while starting
  pod->phase = PodPhase::kRunning;
  pod->start_time = sim_->Now();
  ++mutation_version_;
  if (options_.use_placement_index) {
    running_index_.Insert(pod->spec.priority, pod->creation_seq, pod);
    if (options_.validate_placement_index) ValidatePlacementIndex();
  }
  if (pod->on_running) pod->on_running(*pod);
}

void Cluster::KillPod(PodId id, bool graceful_success) {
  Pod* pod = Resolve(id);
  if (pod == nullptr) return;
  if (pod->terminal()) return;
  Terminate(*pod, graceful_success ? PodPhase::kSucceeded : PodPhase::kKilled,
            graceful_success ? PodStopReason::kCompleted
                             : PodStopReason::kOwnerKill);
}

void Cluster::FailPod(PodId id, PodStopReason reason) {
  Pod* pod = Resolve(id);
  if (pod == nullptr) return;
  if (pod->phase != PodPhase::kRunning && pod->phase != PodPhase::kStarting) {
    return;
  }
  ++counters_.pods_failed;
  Terminate(*pod, PodPhase::kFailed, reason);
}

void Cluster::DegradePod(PodId id, double speed_factor) {
  Pod* pod = GetMutablePod(id);
  if (pod == nullptr || pod->terminal()) return;
  pod->speed_factor = speed_factor;
  ++mutation_version_;
}

void Cluster::FailNode(NodeId id) {
  Node& node = nodes_[id];
  if (node.healthy) {
    // The node leaves the healthy set: drop its capacity and whatever is
    // still allocated on it from the running totals. The per-pod releases
    // below keep the node-local `allocated` in sync but skip the cluster
    // total, which this subtraction already covers.
    capacity_total_ -= node.capacity;
    allocated_total_ -= node.allocated;
    LogDelta(ClusterCommitLog::Kind::kCapacity, ResourceSpec{} - node.capacity);
    LogDelta(ClusterCommitLog::Kind::kAllocated,
             ResourceSpec{} - node.allocated);
    if (node.cordoned) {
      // Dead capacity is no longer "cordoned healthy capacity": the cordon
      // ledger tracks only fenced-off capacity that could be uncordoned.
      cordoned_capacity_ -= node.capacity;
      LogDelta(ClusterCommitLog::Kind::kCordoned,
               ResourceSpec{} - node.capacity);
    }
    // No-op when the node was cordoned (already out of the tree).
    if (options_.use_placement_index) placement_index_.RemoveNode(id);
  }
  node.healthy = false;
  ++mutation_version_;
  const std::vector<PodId> victims = node.pods;
  for (PodId pid : victims) {
    FailPod(pid, PodStopReason::kCrash);
  }
}

void Cluster::RecoverNode(NodeId id) {
  Node& node = nodes_[id];
  if (node.healthy) return;
  node.healthy = true;
  // FailNode crashed every pod on the node, and ReleaseFromNode skipped the
  // cluster-wide total while unhealthy (FailNode's bulk subtraction covered
  // it), so whatever `allocated` still reads rejoins the total with the
  // capacity. In practice it is zero: failed pods released synchronously.
  capacity_total_ += node.capacity;
  allocated_total_ += node.allocated;
  LogDelta(ClusterCommitLog::Kind::kCapacity, node.capacity);
  LogDelta(ClusterCommitLog::Kind::kAllocated, node.allocated);
  ++mutation_version_;
  if (node.cordoned) {
    // The node comes back but the cordon survives the repair: capacity
    // rejoins the totals as cordoned, and the node stays out of placement.
    cordoned_capacity_ += node.capacity;
    LogDelta(ClusterCommitLog::Kind::kCordoned, node.capacity);
    if (options_.use_placement_index && options_.validate_placement_index) {
      ValidatePlacementIndex();
    }
    return;
  }
  if (options_.use_placement_index) {
    placement_index_.InsertNode(id, node.Available());
    if (options_.validate_placement_index) ValidatePlacementIndex();
  }
  // Restored capacity may unblock pending pods immediately.
  PumpPendingQueue();
}

void Cluster::CordonNode(NodeId id) {
  Node& node = nodes_[id];
  if (node.cordoned) return;
  node.cordoned = true;
  ++counters_.nodes_cordoned;
  ++mutation_version_;
  if (node.healthy) {
    cordoned_capacity_ += node.capacity;
    LogDelta(ClusterCommitLog::Kind::kCordoned, node.capacity);
    if (options_.use_placement_index) {
      placement_index_.RemoveNode(id);
      if (options_.validate_placement_index) ValidatePlacementIndex();
    }
  }
}

void Cluster::DrainNode(NodeId id) {
  CordonNode(id);
  nodes_[id].draining = true;
}

void Cluster::UncordonNode(NodeId id) {
  Node& node = nodes_[id];
  if (!node.cordoned) return;
  node.cordoned = false;
  node.draining = false;
  ++counters_.nodes_uncordoned;
  ++mutation_version_;
  if (node.healthy) {
    cordoned_capacity_ -= node.capacity;
    LogDelta(ClusterCommitLog::Kind::kCordoned, ResourceSpec{} - node.capacity);
    if (options_.use_placement_index) {
      placement_index_.InsertNode(id, node.Available());
      if (options_.validate_placement_index) ValidatePlacementIndex();
    }
    // The node is schedulable again: pending pods may fit immediately.
    PumpPendingQueue();
  }
}

double Cluster::NodeMemUsedFraction(NodeId id) const {
  const Node& node = nodes_[id];
  if (node.capacity.memory <= 0.0) return 0.0;
  Bytes used = node.usage_bias;
  for (PodId pid : node.pods) {
    const Pod* pod = Resolve(pid);
    if (pod != nullptr) used += pod->usage.memory;
  }
  return used / node.capacity.memory;
}

double Cluster::NodeUnaccountedMemFraction(NodeId id) const {
  const Node& node = nodes_[id];
  if (node.capacity.memory <= 0.0) return 0.0;
  return node.usage_bias / node.capacity.memory;
}

void Cluster::ReportStragglerEvidence(PodId id) {
  if (health_ == nullptr) return;
  const Pod* pod = Resolve(id);
  if (pod == nullptr || pod->phase != PodPhase::kRunning) return;
  if (!nodes_[pod->node].healthy) return;
  health_->ObserveStraggler(pod->node, id, sim_->Now());
}

void Cluster::ReportPsSlowdownEvidence(PodId id, uint64_t source_job) {
  if (health_ == nullptr) return;
  const Pod* pod = Resolve(id);
  if (pod == nullptr || pod->phase != PodPhase::kRunning) return;
  if (!nodes_[pod->node].healthy) return;
  health_->ObservePsSlowdown(pod->node, source_job, sim_->Now());
}

ResourceSpec Cluster::QuarantinedCapacity() const {
  ResourceSpec total = cordoned_capacity_;
  if (health_ != nullptr) {
    for (const Node& node : nodes_) {
      if (node.healthy && !node.cordoned &&
          health_->state(node.id) == NodeHealthState::kSuspect) {
        total += node.capacity;
      }
    }
  }
  return total;
}

void Cluster::HealthTick() {
  const SimTime now = sim_->Now();
  for (const Node& node : nodes_) {
    if (!node.healthy) continue;
    health_->ObserveNodeMemory(node.id, NodeUnaccountedMemFraction(node.id),
                               now);
  }
  // Tick returns actions in node-id order; applying them in that order keeps
  // the commit-log entry sequence deterministic.
  for (const NodeHealthTracker::Action& action : health_->Tick(now)) {
    if (action.cordon) {
      DrainNode(action.node);
    } else {
      UncordonNode(action.node);
    }
  }
}

void Cluster::set_commit_log(ClusterCommitLog* log) {
  commit_log_ = log;
  if (commit_log_ == nullptr) return;
  // Opening entries: a fold that starts from zero reconstructs the totals
  // as they stand at attach time.
  LogDelta(ClusterCommitLog::Kind::kCapacity, TotalCapacity());
  LogDelta(ClusterCommitLog::Kind::kAllocated, TotalAllocated());
  LogDelta(ClusterCommitLog::Kind::kUsage, TotalUsage());
  LogDelta(ClusterCommitLog::Kind::kCordoned, cordoned_capacity_);
}

void Cluster::Terminate(Pod& pod, PodPhase phase, PodStopReason reason) {
  // Idempotent: preemption collects victims up front, and a victim's stop
  // callback can transitively kill other pods in that victim list (a job
  // restarting tears down all of its pods). The second Terminate on such a
  // pod must be a no-op — in particular it must not fire callbacks again.
  if (pod.terminal()) return;
  const bool was_pending = pod.phase == PodPhase::kPending;
  const bool was_placed =
      pod.phase == PodPhase::kStarting || pod.phase == PodPhase::kRunning;
  // Captured before the usage wipe below. An OOM is node evidence only when
  // the victim was within its own memory allocation: the kernel killing an
  // innocent pod points at node-level pressure, while a pod that blew its
  // own budget points at itself (think cgroup-limit kill vs global OOM).
  const bool self_oom = reason == PodStopReason::kOomKill &&
                        pod.usage.memory >= pod.spec.request.memory;
  if (pod.phase == PodPhase::kRunning) {
    usage_total_ -= pod.usage;
    LogDelta(ClusterCommitLog::Kind::kUsage, ResourceSpec{} - pod.usage);
    if (options_.use_placement_index) {
      running_index_.Remove(pod.spec.priority, pod.creation_seq);
    }
  }
  if (pod.phase == PodPhase::kStarting || pod.phase == PodPhase::kRunning) {
    ReleaseFromNode(pod);
  }
  if (was_pending) {
    auto it = std::find(pending_.begin(), pending_.end(), pod.id);
    if (it != pending_.end()) pending_.erase(it);
  }
  pod.phase = phase;
  pod.end_time = sim_->Now();
  pod.usage = {};
  if (options_.legacy_pod_index) legacy_index_.erase(pod.id);
  ++mutation_version_;
  if (options_.use_placement_index && options_.validate_placement_index) {
    ValidatePlacementIndex();
  }
  // Node-health evidence: crash-like deaths of placed pods charge the node.
  // FailNode marks the node unhealthy before crashing its residents, so a
  // whole-node failure storm is not mistaken for grey-fault evidence.
  if (health_ != nullptr && was_placed && nodes_[pod.node].healthy &&
      !self_oom &&
      (reason == PodStopReason::kCrash || reason == PodStopReason::kOomKill)) {
    const Duration uptime =
        pod.start_time >= 0.0 ? sim_->Now() - pod.start_time : -1.0;
    health_->ObservePodStopped(pod.node, reason, uptime, sim_->Now());
  }
  if (pod.on_stopped) pod.on_stopped(pod, reason);
  // Only now does the slot become recyclable (the stop callback above may
  // read the pod by id); the pod itself stays resolvable — and visible to
  // VisitPods — until a later CreatePod re-arms the slot.
  free_slots_.push_back(static_cast<uint32_t>((pod.id >> 32) - 1));
  // Freed capacity may unblock pending pods.
  PumpPendingQueue();
}

void Cluster::ReleaseFromNode(Pod& pod) {
  Node& node = nodes_[pod.node];
  if (node.healthy) {
    allocated_total_ -= pod.spec.request;
    LogDelta(ClusterCommitLog::Kind::kAllocated,
             ResourceSpec{} - pod.spec.request);
  }
  node.allocated -= pod.spec.request;
  node.allocated.cpu = std::max(0.0, node.allocated.cpu);
  node.allocated.memory = std::max(0.0, node.allocated.memory);
  auto it = std::find(node.pods.begin(), node.pods.end(), pod.id);
  if (it != node.pods.end()) node.pods.erase(it);
  if (options_.use_placement_index) {
    placement_index_.RemovePod(node.id, pod.spec.priority, pod.spec.request);
    // A failed or cordoned node is not in the capacity tree; its key is
    // refreshed when RecoverNode/UncordonNode re-inserts it.
    if (node.healthy && !node.cordoned) {
      placement_index_.UpdateNode(node.id, node.Available());
    }
  }
}

void Cluster::PumpPendingQueue() {
  // Placement triggers pod-stop callbacks (preemption) which re-enter the
  // cluster arbitrarily (jobs kill/create pods, which calls back in here).
  // Guard against recursion and iterate over a snapshot: nested calls just
  // request another pass.
  if (pumping_) {
    repump_ = true;
    return;
  }
  pumping_ = true;
  do {
    repump_ = false;
    if (pending_.empty()) break;
    // Highest priority first, FIFO within a class.
    std::stable_sort(pending_.begin(), pending_.end(),
                     [this](PodId a, PodId b) {
                       return static_cast<int>(Resolve(a)->spec.priority) >
                              static_cast<int>(Resolve(b)->spec.priority);
                     });
    const std::vector<PodId> snapshot(pending_.begin(), pending_.end());
    pending_.clear();  // nested CreatePod may add fresh ids meanwhile
    std::deque<PodId> still_pending;
    for (PodId id : snapshot) {
      Pod* pod = GetMutablePod(id);
      if (pod == nullptr || pod->phase != PodPhase::kPending) continue;
      if (!TryPlace(*pod)) {
        if (!TryPreemptFor(*pod) || !TryPlace(*pod)) {
          still_pending.push_back(id);
        }
      }
    }
    for (PodId id : pending_) still_pending.push_back(id);
    pending_ = std::move(still_pending);
  } while (repump_);
  pumping_ = false;
}

Pod* Cluster::Resolve(PodId id) const {
  if (options_.legacy_pod_index) {
    // Pay the pre-slab cost: a tree walk over the live-pod map. Misses
    // (terminal or stale ids) fall through to the slab so semantics stay
    // identical to the optimized path.
    auto it = legacy_index_.find(id);
    if (it != legacy_index_.end()) return it->second;
  }
  const uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return nullptr;
  const PodSlot& s = slots_[slot_plus_one - 1];
  // A recycled slot carries a newer generation: the stale id resolves null.
  if (s.gen != static_cast<uint32_t>(id & kGenMask)) return nullptr;
  return s.pod;
}

const Pod* Cluster::GetPod(PodId id) const { return Resolve(id); }

Pod* Cluster::GetMutablePod(PodId id) { return Resolve(id); }

void Cluster::VisitPods(const std::function<void(const Pod&)>& fn) const {
  for (const auto& pod : directory_) fn(*pod);
}

void Cluster::VisitRunningPods(
    PriorityClass priority, const std::function<void(const Pod&)>& fn) const {
  if (options_.use_placement_index) {
    running_index_.Visit(priority, fn);
    return;
  }
  for (const auto& pod : directory_) {
    if (pod->phase == PodPhase::kRunning && pod->spec.priority == priority) {
      fn(*pod);
    }
  }
}

void Cluster::ValidatePlacementIndex() const {
  auto die = [](const char* what) {
    DLROVER_LOG_STREAM(Error) << "placement index out of sync: " << what;
    std::abort();
  };
  // Capacity tree: every schedulable (healthy, uncordoned) node present with
  // exactly the doubles a fresh Available() computes (bitwise — the index
  // serves the same values the legacy scan would read); failed and cordoned
  // nodes absent.
  size_t schedulable = 0;
  for (const Node& node : nodes_) {
    ResourceSpec indexed;
    const bool present = placement_index_.GetIndexed(node.id, &indexed);
    if (present != (node.healthy && !node.cordoned)) {
      die("tree membership vs node health/cordon state");
    }
    if (present && (indexed.cpu != node.Available().cpu ||
                    indexed.memory != node.Available().memory)) {
      die("indexed capacity vs fresh Available()");
    }
    if (node.healthy && !node.cordoned) ++schedulable;
  }
  if (placement_index_.NumIndexedNodes() != schedulable) die("tree size");
  // Per-node class aggregates: counts must match a fresh scan of node.pods
  // exactly; totals within the MaybeFreeable slack (they are float sums
  // accumulated in a different order).
  for (const Node& node : nodes_) {
    std::array<uint32_t, kNumPriorityClasses> count{};
    std::array<ResourceSpec, kNumPriorityClasses> total;
    for (PodId pid : node.pods) {
      const Pod* pod = Resolve(pid);
      if (pod == nullptr) die("unresolvable pod id on node");
      const size_t b = static_cast<size_t>(PriorityBucket(pod->spec.priority));
      ++count[b];
      total[b] += pod->spec.request;
    }
    for (int b = 0; b < kNumPriorityClasses; ++b) {
      if (placement_index_.PodCount(node.id, b) != count[static_cast<size_t>(b)]) {
        die("aggregate pod count");
      }
      const ResourceSpec have = placement_index_.PodTotal(node.id, b);
      const ResourceSpec want = total[static_cast<size_t>(b)];
      if (std::abs(have.cpu - want.cpu) > 1e-6 ||
          std::abs(have.memory - want.memory) > 1e5) {
        die("aggregate request total drift");
      }
    }
  }
  // Running-pod directory: per class, the index must visit exactly the
  // running pods a full directory sweep would, in the same order.
  for (PriorityClass cls :
       {PriorityClass::kBestEffort, PriorityClass::kTraining,
        PriorityClass::kStream, PriorityClass::kOnline}) {
    std::vector<PodId> want;
    for (const auto& pod : directory_) {
      if (pod->phase == PodPhase::kRunning && pod->spec.priority == cls) {
        want.push_back(pod->id);
      }
    }
    std::vector<PodId> have;
    running_index_.Visit(cls, [&](const Pod& pod) { have.push_back(pod.id); });
    if (have != want) die("running-pod visitation order");
  }
}

void Cluster::ReportUsage(PodId id, const ResourceSpec& usage) {
  Pod* pod = Resolve(id);
  if (pod == nullptr || pod->terminal()) return;
  if (pod->phase == PodPhase::kRunning) {
    usage_total_ += usage;
    usage_total_ -= pod->usage;
    LogDelta(ClusterCommitLog::Kind::kUsage, usage - pod->usage);
  }
  pod->usage = usage;
}

ResourceSpec Cluster::ScanCapacity() const {
  ResourceSpec total;
  for (const Node& node : nodes_) {
    if (node.healthy) total += node.capacity;
  }
  return total;
}

ResourceSpec Cluster::ScanAllocated() const {
  ResourceSpec total;
  for (const Node& node : nodes_) {
    if (node.healthy) total += node.allocated;
  }
  return total;
}

ResourceSpec Cluster::ScanUsage() const {
  ResourceSpec total;
  for (const auto& pod : directory_) {
    if (pod->phase == PodPhase::kRunning) total += pod->usage;
  }
  return total;
}

ResourceSpec Cluster::TotalCapacity() const {
  return options_.incremental_accounting ? capacity_total_ : ScanCapacity();
}

ResourceSpec Cluster::TotalAllocated() const {
  return options_.incremental_accounting ? allocated_total_ : ScanAllocated();
}

ResourceSpec Cluster::TotalUsage() const {
  return options_.incremental_accounting ? usage_total_ : ScanUsage();
}

ClusterUsage Cluster::Usage() const {
  const ResourceSpec cap = TotalCapacity();
  const ResourceSpec alloc = TotalAllocated();
  const ResourceSpec used = TotalUsage();
  ClusterUsage u;
  if (cap.cpu > 0) {
    u.cpu_allocated_fraction = alloc.cpu / cap.cpu;
    u.cpu_used_fraction = used.cpu / cap.cpu;
  }
  if (cap.memory > 0) {
    u.mem_allocated_fraction = alloc.memory / cap.memory;
    u.mem_used_fraction = used.memory / cap.memory;
  }
  if (alloc.cpu > 0) u.cpu_used_of_allocated = used.cpu / alloc.cpu;
  if (alloc.memory > 0) u.mem_used_of_allocated = used.memory / alloc.memory;
  return u;
}

bool Cluster::UnderScarcity() const {
  if (fleet_scarcity_) return true;
  const ResourceSpec cap = TotalCapacity();
  // No healthy capacity: nothing can start, so there is no startup to slow
  // down — and dividing by zero below would poison the fraction with NaN.
  if (cap.cpu <= 0) return false;
  const double free_frac = 1.0 - TotalAllocated().cpu / cap.cpu;
  return free_frac < options_.scarcity_threshold;
}

}  // namespace dlrover
