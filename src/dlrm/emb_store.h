#ifndef DLROVER_DLRM_EMB_STORE_H_
#define DLROVER_DLRM_EMB_STORE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace dlrover {

/// Canonical (sorted-by-key) dump of every materialized embedding row and
/// wide weight. Used by model checkpoints: sorting makes the byte layout
/// independent of stripe hash order, so two exports of identical state
/// produce identical arrays (and identical checksums).
struct EmbStoreSnapshot {
  std::vector<uint64_t> emb_keys;
  std::vector<double> emb_values;  // emb_dim values per key, concatenated
  std::vector<uint64_t> wide_keys;
  std::vector<double> wide_values;  // one value per key
};

struct EmbStoreOptions {
  int num_features = 26;
  int emb_dim = 8;
  uint64_t hash_buckets = 8192;  // per categorical feature
  double init_scale = 0.05;
  uint64_t seed = 7;
  /// Rounded up to a power of two. Default trades memory (one mutex + two
  /// maps per stripe) against contention from tens of worker threads; see
  /// DESIGN.md "Threading model".
  size_t stripes = 64;
};

/// Lock-striped concurrent store for the sparse half of the mini-DLRM: the
/// per-(feature, bucket) embedding rows and the Wide&Deep per-id scalar
/// weights. This is the async-PS hot path — every batch pulls and pushes
/// rows for all 26 categorical features — so instead of one map per feature
/// behind the model's single lock, keys are spread over `stripes`
/// independently-locked shards; N worker threads contend only when they
/// touch the same stripe at the same instant.
///
/// Rows are materialized lazily with a per-key deterministic init
/// (splitmix-style hash of (seed, feature, bucket) seeding the Rng), so the
/// values a key gets are independent of touch order and thread
/// interleaving — elastic and multi-threaded runs stay comparable to the
/// deterministic tick mode.
class EmbStore {
 public:
  explicit EmbStore(const EmbStoreOptions& options);

  EmbStore(const EmbStore&) = delete;
  EmbStore& operator=(const EmbStore&) = delete;

  /// Copy of the embedding row for (feature, bucket), materializing it on
  /// first touch. Thread-safe; returns by value because a reference into a
  /// stripe's map would race with concurrent rehashes.
  std::vector<double> GetRow(int feature, uint64_t bucket) const;

  /// Wide scalar weight for (feature, bucket), materializing 0.0 on first
  /// touch. Thread-safe.
  double GetWide(int feature, uint64_t bucket) const;

  /// SGD push: row -= learning_rate * grad (materializes first if needed).
  /// Thread-safe; the read-modify-write is atomic per row.
  void ApplyRowGradient(int feature, uint64_t bucket,
                        const std::vector<double>& grad,
                        double learning_rate);

  /// SGD push for a wide weight: w -= learning_rate * grad.
  void ApplyWideGradient(int feature, uint64_t bucket, double grad,
                         double learning_rate);

  /// Reusable scratch for the batched gather/scatter calls below: holds the
  /// stripe-bucketing work arrays so steady-state batches allocate nothing.
  /// One instance per worker thread; never shared concurrently.
  struct BatchScratch {
    std::vector<uint32_t> stripe_of;   // per key: owning stripe
    std::vector<uint32_t> start;       // per stripe: offset into order
    std::vector<uint32_t> order;       // key indices grouped by stripe
  };

  /// Packs (feature, bucket) into the store's canonical key. Batched calls
  /// take packed keys so one array round-trips pull -> grad -> push.
  uint64_t PackKey(int feature, uint64_t bucket) const {
    return Key(feature, bucket);
  }

  /// Batched gather for the training hot path: copies the rows for `keys`
  /// (packed via PackKey, any order, duplicates allowed) into
  /// `rows_out[i * emb_dim ...]`, materializing missing rows, and — when
  /// `wide_out` is non-null — the wide weights into `wide_out[i]`. Keys are
  /// grouped by stripe first, so each touched stripe's lock is taken exactly
  /// once per call instead of once per key: one lock round-trip covers the
  /// whole batch. Thread-safe against concurrent per-key and batched calls.
  void GatherRows(const uint64_t* keys, size_t n, double* rows_out,
                  double* wide_out, BatchScratch* scratch) const;

  /// Batched SGD push, the scatter side of GatherRows: for every key,
  /// row -= learning_rate * row_grads[i * emb_dim ...] (and, when
  /// `wide_grads` is non-null, wide -= learning_rate * wide_grads[i]).
  /// Missing rows are materialized first, matching the per-key calls. Keys
  /// are grouped by stripe: one lock acquisition per touched stripe per
  /// batch — this is the sharded gradient application of the parallel
  /// trainer. Per-row arithmetic is identical to ApplyRowGradient.
  void ScatterApply(const uint64_t* keys, size_t n, const double* row_grads,
                    const double* wide_grads, double learning_rate,
                    BatchScratch* scratch);

  /// Embedding rows materialized so far (memory growth proxy). Takes each
  /// stripe lock in turn; the result is a consistent lower bound under
  /// concurrent writers.
  size_t MaterializedRows() const;

  /// Dumps every materialized row/weight in canonical key order. Takes the
  /// stripe locks one at a time, so concurrent writers must be quiesced by
  /// the caller (the trainer's commit gate) for the cut to be consistent.
  void ExportAll(EmbStoreSnapshot* out) const;

  /// Replaces the store contents with a snapshot: all stripes are cleared
  /// first, so keys absent from the snapshot revert to their deterministic
  /// lazy init on next touch — exactly the state of a store that never saw
  /// the rolled-back updates. Rejects malformed snapshots (value array
  /// lengths inconsistent with the key counts and emb_dim).
  Status ImportAll(const EmbStoreSnapshot& snapshot);

  size_t stripe_count() const { return stripes_.size(); }
  const EmbStoreOptions& options() const { return options_; }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<double>> emb;
    std::unordered_map<uint64_t, double> wide;
  };

  /// Injective (feature, bucket) -> key packing.
  uint64_t Key(int feature, uint64_t bucket) const {
    return static_cast<uint64_t>(feature) * options_.hash_buckets + bucket;
  }
  size_t StripeIndexFor(uint64_t key) const;
  Stripe& StripeFor(uint64_t key) const;
  /// Counting-sorts key indices by owning stripe into scratch->order;
  /// group s spans [s == 0 ? 0 : start[s-1], start[s]).
  void GroupByStripe(const uint64_t* keys, size_t n,
                     BatchScratch* scratch) const;
  /// Requires the stripe lock; inserts the deterministic init if absent.
  std::vector<double>& MaterializeRowLocked(Stripe& stripe, int feature,
                                            uint64_t bucket,
                                            uint64_t key) const;

  EmbStoreOptions options_;
  uint64_t stripe_mask_ = 0;
  mutable std::vector<Stripe> stripes_;
};

}  // namespace dlrover

#endif  // DLROVER_DLRM_EMB_STORE_H_
