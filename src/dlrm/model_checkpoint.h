#ifndef DLROVER_DLRM_MODEL_CHECKPOINT_H_
#define DLROVER_DLRM_MODEL_CHECKPOINT_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "dlrm/mini_dlrm.h"
#include "elastic/shard_queue.h"

namespace dlrover {

/// A versioned, checksummed snapshot of everything the threaded trainer
/// needs to resume after losing its parameter state: the full model blob,
/// the data-consumption cut, and the exactly-once audit. Model parameters
/// and data position are captured under the same quiescent cut (the
/// trainer's commit gate), so restoring one restores the other — the
/// invariant behind `ShardQueue::FastForwardTo`-style rollback, generalized
/// to out-of-order shard completion.
struct ModelCheckpoint {
  /// Bumped when the serialized layout changes; restore rejects unknown
  /// versions instead of misinterpreting the payload.
  uint64_t format_version = 1;
  /// Monotonic generation stamped by the vault at commit time.
  uint64_t generation = 0;

  uint64_t committed_batches = 0;
  uint64_t batches_duplicated = 0;
  DlrmStateBlob model;
  ShardQueueSnapshot queue;
  /// Copy of the per-batch training histogram at capture time. Restored
  /// together with the parameters so the audit reflects the surviving
  /// lineage, not batches whose updates were rolled back.
  std::vector<uint8_t> times_trained;

  /// Checksum over every payload field above (not over itself). A torn or
  /// bit-flipped checkpoint fails verification and the vault falls back to
  /// an older generation.
  uint64_t checksum = 0;
};

/// In-memory checkpoint store keeping the last `keep` generations.
/// Commit stamps generation + checksum; LatestValid re-verifies checksums
/// on every call and returns the newest generation that still passes, so a
/// checkpoint corrupted after commit (or deliberately, via
/// CommitCorrupted's simulated failed write) is skipped, not trusted.
/// Not thread-safe: the trainer's supervisor thread is the only writer and
/// reader.
class CheckpointVault {
 public:
  explicit CheckpointVault(size_t keep = 3);

  /// Stamps and stores a checkpoint; evicts the oldest beyond `keep`.
  /// Returns the assigned generation.
  uint64_t Commit(ModelCheckpoint ckpt);

  /// Simulates a failed/torn checkpoint write: the checkpoint is stored
  /// with a payload byte flipped after the checksum was computed, so
  /// LatestValid will reject it. Returns the assigned generation.
  uint64_t CommitCorrupted(ModelCheckpoint ckpt);

  /// Simulates a write cut short mid-stream: the payload is truncated after
  /// the checksum was computed (the checksum folds every vector length, so
  /// the short read fails verification and LatestValid falls back to an
  /// older generation). Returns the assigned generation.
  uint64_t CommitTruncated(ModelCheckpoint ckpt);

  /// Newest stored checkpoint passing checksum verification, or nullptr
  /// when none does. The pointer stays valid until the next Commit.
  const ModelCheckpoint* LatestValid() const;

  size_t size() const { return ring_.size(); }
  uint64_t generations_committed() const { return next_generation_; }

  /// Checksum of the payload fields (excluding `checksum` itself).
  static uint64_t Checksum(const ModelCheckpoint& ckpt);
  static bool Verify(const ModelCheckpoint& ckpt);

 private:
  uint64_t Store(ModelCheckpoint ckpt);

  size_t keep_;
  uint64_t next_generation_ = 0;
  std::deque<ModelCheckpoint> ring_;  // oldest first
};

}  // namespace dlrover

#endif  // DLROVER_DLRM_MODEL_CHECKPOINT_H_
