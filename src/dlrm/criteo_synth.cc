#include "dlrm/criteo_synth.h"

#include <cmath>

#include <algorithm>

namespace dlrover {

namespace {
// Stateless hash used to derive per-id teacher biases without storing them.
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

CriteoSynth::CriteoSynth(uint64_t seed, double drift_samples)
    : seed_(seed), drift_samples_(drift_samples) {
  Rng rng(seed ^ 0xc0ffee);
  vocab_sizes_.resize(kNumCategorical);
  zipf_exponents_.resize(kNumCategorical);
  teacher_cat_scale_.resize(kNumCategorical);
  for (int f = 0; f < kNumCategorical; ++f) {
    // Criteo vocabularies span a few dozen to millions of ids; cover a few
    // orders of magnitude.
    const double log_size = rng.Uniform(2.0, 5.0);  // 100 .. 100k
    vocab_sizes_[f] = static_cast<uint64_t>(std::pow(10.0, log_size));
    zipf_exponents_[f] = rng.Uniform(1.05, 1.6);
    teacher_cat_scale_[f] = rng.Uniform(0.2, 1.0);
  }
  teacher_dense_w_.resize(kNumDense);
  for (int d = 0; d < kNumDense; ++d) {
    teacher_dense_w_[d] = rng.Normal(0.0, 0.6);
  }
  teacher_bias_ = -1.2;  // skewed label prior, like CTR data
}

void CriteoSynth::FillSample(uint64_t index, CriteoSample* out) const {
  // Per-sample generator keyed by (seed, index): random access, no state.
  Rng rng(Mix(seed_ ^ Mix(index + 0x9e3779b9)));
  out->dense.resize(kNumDense);
  for (int d = 0; d < kNumDense; ++d) {
    // Heavy-tailed counts, log-transformed as in standard Criteo pipelines.
    const double raw = rng.LogNormal(1.0, 1.0);
    out->dense[d] = static_cast<float>(std::log1p(raw));
  }
  out->cats.resize(kNumCategorical);
  for (int f = 0; f < kNumCategorical; ++f) {
    out->cats[f] = rng.Zipf(vocab_sizes_[f], zipf_exponents_[f]);
  }
  const double p = TeacherProbability(*out, index);
  out->label = rng.Bernoulli(p) ? 1.0f : 0.0f;
}

CriteoSample CriteoSynth::Sample(uint64_t index) const {
  CriteoSample sample;
  FillSample(index, &sample);
  return sample;
}

void CriteoSynth::FillBatch(uint64_t start, uint64_t count,
                            CriteoBatch* out) const {
  out->samples.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    FillSample(start + i, &out->samples[i]);
  }
}

CriteoBatch CriteoSynth::Batch(uint64_t start, uint64_t count) const {
  CriteoBatch batch;
  FillBatch(start, count, &batch);
  return batch;
}

double CriteoSynth::TeacherLogit(const CriteoSample& sample,
                                 uint64_t index) const {
  double logit = teacher_bias_;
  for (int d = 0; d < kNumDense; ++d) {
    logit += teacher_dense_w_[d] * (sample.dense[d] - 1.0);
  }
  // Concept drift: per-id effects rotate between two independent values
  // over the drift horizon (theta grows with the sample index).
  const double theta = drift_samples_ > 0.0
                           ? 0.5 * M_PI * std::min(
                                 2.0, static_cast<double>(index) /
                                          drift_samples_)
                           : 0.0;
  const double ca = std::cos(theta);
  const double cb = std::sin(theta);
  // Per-id biases via hashing: popular ids get stable, learnable effects.
  for (int f = 0; f < kNumCategorical; ++f) {
    const uint64_t h = Mix(seed_ ^ (static_cast<uint64_t>(f) << 40) ^
                           sample.cats[f]);
    const uint64_t h2 = Mix(h ^ 0x5bd1e995u);
    const double unit =
        static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;  // [-1, 1)
    const double unit2 =
        static_cast<double>(h2 >> 11) * 0x1.0p-53 * 2.0 - 1.0;
    logit += teacher_cat_scale_[f] * (ca * unit + cb * unit2);
  }
  // A few pairwise interactions so nonlinear models have an edge.
  for (int f = 0; f + 1 < 6; f += 2) {
    const uint64_t h = Mix(Mix(seed_ ^ sample.cats[f]) ^ sample.cats[f + 1]);
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
    logit += 0.5 * unit;
  }
  return logit;
}

double CriteoSynth::TeacherProbability(const CriteoSample& sample,
                                       uint64_t index) const {
  return 1.0 / (1.0 + std::exp(-TeacherLogit(sample, index)));
}

}  // namespace dlrover
