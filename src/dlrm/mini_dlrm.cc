#include "dlrm/mini_dlrm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/dense_kernels.h"

namespace dlrover {

namespace {

constexpr int kNumCat = CriteoSynth::kNumCategorical;
constexpr int kNumDense = CriteoSynth::kNumDense;

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

EmbStoreOptions MakeStoreOptions(const MiniDlrmConfig& config) {
  EmbStoreOptions options;
  options.num_features = kNumCat;
  options.emb_dim = config.emb_dim;
  options.hash_buckets = config.hash_buckets;
  options.init_scale = config.init_scale;
  options.seed = config.seed;
  return options;
}

DenseParams MakeDenseParams(const MiniDlrmConfig& config, int n0,
                            bool zero, Rng* rng) {
  DenseParams p;
  const double s = config.init_scale;
  auto val = [&]() { return zero ? 0.0 : rng->Normal(0.0, s); };

  p.dense_proj = Matrix(static_cast<size_t>(config.emb_dim), kNumDense);
  for (auto& v : p.dense_proj.data()) v = val();

  std::vector<int> sizes;
  sizes.push_back(n0);
  for (int h : config.mlp_hidden) sizes.push_back(h);
  sizes.push_back(1);
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    Matrix w(static_cast<size_t>(sizes[l + 1]), static_cast<size_t>(sizes[l]));
    for (auto& v : w.data()) v = val();
    p.mlp_w.push_back(std::move(w));
    p.mlp_b.emplace_back(static_cast<size_t>(sizes[l + 1]), 0.0);
  }

  if (config.arch == ModelKind::kDcn) {
    for (int l = 0; l < config.cross_layers; ++l) {
      std::vector<double> w(static_cast<size_t>(n0));
      std::vector<double> b(static_cast<size_t>(n0), 0.0);
      for (auto& v : w) v = val();
      p.cross_w.push_back(std::move(w));
      p.cross_b.push_back(std::move(b));
    }
    p.cross_out_w.assign(static_cast<size_t>(n0), 0.0);
    for (auto& v : p.cross_out_w) v = val();
  }
  if (config.arch == ModelKind::kXDeepFm) {
    for (int h = 0; h < config.fm_maps; ++h) {
      std::vector<double> a(static_cast<size_t>(config.emb_dim));
      for (auto& v : a) v = zero ? 0.0 : rng->Normal(0.0, 0.3);
      p.fm_proj.push_back(std::move(a));
    }
    p.fm_w.assign(static_cast<size_t>(config.fm_maps), 0.0);
    for (auto& v : p.fm_w) v = val();
  }
  p.bias = 0.0;
  return p;
}

}  // namespace

struct MiniDlrm::SampleCache {
  std::vector<std::vector<double>> fields;  // 27 x emb_dim
  std::vector<double> x0;
  std::vector<std::vector<double>> mlp_pre;   // pre-activation per layer
  std::vector<std::vector<double>> mlp_post;  // post-activation per layer
  std::vector<std::vector<double>> cross_x;   // x_0 .. x_L
  std::vector<double> cross_s;                // s_l = w_l . x_l
  std::vector<std::vector<double>> fm_t;      // fm_maps x 27
  std::vector<double> fm_f;                   // fm_maps
  std::vector<double> fm_s;                   // fm_maps
  double logit = 0.0;
};

MiniDlrm::MiniDlrm(const MiniDlrmConfig& config)
    : config_(config),
      store_(MakeStoreOptions(config)),
      init_rng_(config.seed) {
  n0_ = (1 + kNumCat) * config_.emb_dim;
  params_ = MakeDenseParams(config_, n0_, /*zero=*/false, &init_rng_);
}

ParamSnapshot MiniDlrm::TakeSnapshot(const CriteoBatch& batch) const {
  ParamSnapshot snap;
  {
    // The dense pull is one consistent version (no torn reads of a
    // concurrent push); embedding rows are pulled per stripe afterwards and
    // may be newer — exactly the per-key staleness a real PS exhibits.
    std::shared_lock<std::shared_mutex> lock(params_mu_);
    snap.dense = params_;
  }
  snap.rows.emb.resize(kNumCat);
  snap.rows.wide.resize(kNumCat);
  for (const CriteoSample& sample : batch.samples) {
    for (int f = 0; f < kNumCat; ++f) {
      const uint64_t bucket = Bucket(f, sample.cats[f]);
      auto& table = snap.rows.emb[static_cast<size_t>(f)];
      if (table.count(bucket) == 0) {
        table.emplace(bucket, store_.GetRow(f, bucket));
      }
      if (config_.arch == ModelKind::kWideDeep) {
        auto& wide = snap.rows.wide[static_cast<size_t>(f)];
        if (wide.count(bucket) == 0) {
          wide.emplace(bucket, store_.GetWide(f, bucket));
        }
      }
    }
  }
  return snap;
}

double MiniDlrm::ForwardSample(const CriteoSample& sample,
                               const DenseParams& dense,
                               const SparseRows& rows,
                               SampleCache* cache) const {
  const int d = config_.emb_dim;
  cache->fields.assign(1 + kNumCat, std::vector<double>(d, 0.0));

  // Field 0: projected dense features.
  for (int r = 0; r < d; ++r) {
    double acc = 0.0;
    for (int c = 0; c < kNumDense; ++c) {
      acc += dense.dense_proj(static_cast<size_t>(r),
                              static_cast<size_t>(c)) *
             sample.dense[static_cast<size_t>(c)];
    }
    cache->fields[0][static_cast<size_t>(r)] = acc;
  }
  // Fields 1..26: embedding rows.
  double wide_logit = 0.0;
  for (int f = 0; f < kNumCat; ++f) {
    const uint64_t bucket = Bucket(f, sample.cats[f]);
    const auto& table = rows.emb[static_cast<size_t>(f)];
    const auto it = table.find(bucket);
    assert(it != table.end() && "snapshot missing an embedding row");
    cache->fields[static_cast<size_t>(f + 1)] = it->second;
    if (config_.arch == ModelKind::kWideDeep) {
      const auto& wide = rows.wide[static_cast<size_t>(f)];
      const auto wit = wide.find(bucket);
      if (wit != wide.end()) wide_logit += wit->second;
    }
  }

  // x0: concatenated fields.
  cache->x0.resize(static_cast<size_t>(n0_));
  for (int f = 0; f <= kNumCat; ++f) {
    for (int r = 0; r < d; ++r) {
      cache->x0[static_cast<size_t>(f * d + r)] =
          cache->fields[static_cast<size_t>(f)][static_cast<size_t>(r)];
    }
  }

  // MLP tower: fused W*x + bias + ReLU, one pass per layer.
  cache->mlp_pre.resize(dense.mlp_w.size());
  cache->mlp_post.resize(dense.mlp_w.size());
  const std::vector<double>* act = &cache->x0;
  for (size_t l = 0; l < dense.mlp_w.size(); ++l) {
    const bool last = l + 1 == dense.mlp_w.size();
    dense.mlp_w[l].ApplyBiasAct(*act, dense.mlp_b[l], /*relu=*/!last,
                                &cache->mlp_post[l], &cache->mlp_pre[l]);
    act = &cache->mlp_post[l];
  }
  double logit = (*act)[0] + dense.bias;

  // Architecture head.
  if (config_.arch == ModelKind::kWideDeep) {
    logit += wide_logit;
  } else if (config_.arch == ModelKind::kDcn) {
    cache->cross_x.clear();
    cache->cross_s.clear();
    cache->cross_x.push_back(cache->x0);
    for (size_t l = 0; l < dense.cross_w.size(); ++l) {
      const std::vector<double>& xl = cache->cross_x.back();
      double s = 0.0;
      for (size_t i = 0; i < xl.size(); ++i) s += dense.cross_w[l][i] * xl[i];
      cache->cross_s.push_back(s);
      std::vector<double> next(xl.size());
      for (size_t i = 0; i < xl.size(); ++i) {
        next[i] = cache->x0[i] * s + dense.cross_b[l][i] + xl[i];
      }
      cache->cross_x.push_back(std::move(next));
    }
    const std::vector<double>& xl = cache->cross_x.back();
    for (size_t i = 0; i < xl.size(); ++i) {
      logit += dense.cross_out_w[i] * xl[i];
    }
  } else if (config_.arch == ModelKind::kXDeepFm) {
    const int fields = 1 + kNumCat;
    cache->fm_t.assign(static_cast<size_t>(config_.fm_maps),
                       std::vector<double>(static_cast<size_t>(fields), 0.0));
    cache->fm_f.assign(static_cast<size_t>(config_.fm_maps), 0.0);
    cache->fm_s.assign(static_cast<size_t>(config_.fm_maps), 0.0);
    for (int h = 0; h < config_.fm_maps; ++h) {
      double fsum = 0.0;
      double qsum = 0.0;
      for (int i = 0; i < fields; ++i) {
        double t = 0.0;
        for (int r = 0; r < d; ++r) {
          t += dense.fm_proj[static_cast<size_t>(h)][static_cast<size_t>(r)] *
               cache->fields[static_cast<size_t>(i)][static_cast<size_t>(r)];
        }
        cache->fm_t[static_cast<size_t>(h)][static_cast<size_t>(i)] = t;
        fsum += t;
        qsum += t * t;
      }
      cache->fm_f[static_cast<size_t>(h)] = fsum;
      const double s = 0.5 * (fsum * fsum - qsum);
      cache->fm_s[static_cast<size_t>(h)] = s;
      logit += dense.fm_w[static_cast<size_t>(h)] * s;
    }
  }
  cache->logit = logit;
  return logit;
}

void MiniDlrm::BackwardSample(const CriteoSample& sample,
                              const DenseParams& dense,
                              const SparseRows& rows,
                              const SampleCache& cache, double dlogit,
                              DlrmGradients* grads) const {
  const int d = config_.emb_dim;
  const int fields = 1 + kNumCat;
  std::vector<std::vector<double>> dfields(
      static_cast<size_t>(fields), std::vector<double>(d, 0.0));
  std::vector<double> dx0(static_cast<size_t>(n0_), 0.0);

  grads->dense.bias += dlogit;

  // --- MLP backward ---
  {
    std::vector<double> delta = {dlogit};  // gradient at the output layer
    for (size_t l = dense.mlp_w.size(); l-- > 0;) {
      const std::vector<double>& input =
          l == 0 ? cache.x0 : cache.mlp_post[l - 1];
      // dW = delta (x) input; db = delta.
      Matrix& gw = grads->dense.mlp_w[l];
      std::vector<double>& gb = grads->dense.mlp_b[l];
      for (size_t o = 0; o < delta.size(); ++o) {
        gb[o] += delta[o];
        for (size_t i = 0; i < input.size(); ++i) {
          gw(o, i) += delta[o] * input[i];
        }
      }
      // Propagate to the previous layer.
      std::vector<double> prev(input.size(), 0.0);
      for (size_t o = 0; o < delta.size(); ++o) {
        for (size_t i = 0; i < input.size(); ++i) {
          prev[i] += dense.mlp_w[l](o, i) * delta[o];
        }
      }
      if (l > 0) {
        // Through the ReLU of layer l-1.
        for (size_t i = 0; i < prev.size(); ++i) {
          if (cache.mlp_pre[l - 1][i] <= 0.0) prev[i] = 0.0;
        }
        delta = std::move(prev);
      } else {
        for (size_t i = 0; i < prev.size(); ++i) dx0[i] += prev[i];
      }
    }
  }

  // --- Head backward ---
  if (config_.arch == ModelKind::kWideDeep) {
    for (int f = 0; f < kNumCat; ++f) {
      const uint64_t bucket = Bucket(f, sample.cats[f]);
      grads->rows.wide[static_cast<size_t>(f)][bucket] += dlogit;
    }
  } else if (config_.arch == ModelKind::kDcn) {
    const size_t n = static_cast<size_t>(n0_);
    std::vector<double> dxl(n, 0.0);
    const std::vector<double>& x_last = cache.cross_x.back();
    for (size_t i = 0; i < n; ++i) {
      grads->dense.cross_out_w[i] += dlogit * x_last[i];
      dxl[i] = dlogit * dense.cross_out_w[i];
    }
    for (size_t l = dense.cross_w.size(); l-- > 0;) {
      const std::vector<double>& xl = cache.cross_x[l];
      const double s = cache.cross_s[l];
      double ds = 0.0;
      for (size_t i = 0; i < n; ++i) {
        ds += dxl[i] * cache.x0[i];
        grads->dense.cross_b[l][i] += dxl[i];
        dx0[i] += dxl[i] * s;
      }
      std::vector<double> dprev(n, 0.0);
      for (size_t i = 0; i < n; ++i) {
        grads->dense.cross_w[l][i] += ds * xl[i];
        dprev[i] = dxl[i] + ds * dense.cross_w[l][i];
      }
      dxl = std::move(dprev);
    }
    for (size_t i = 0; i < n; ++i) dx0[i] += dxl[i];  // x_0 is x0 itself
  } else if (config_.arch == ModelKind::kXDeepFm) {
    for (int h = 0; h < config_.fm_maps; ++h) {
      const double s = cache.fm_s[static_cast<size_t>(h)];
      grads->dense.fm_w[static_cast<size_t>(h)] += dlogit * s;
      const double ds = dlogit * dense.fm_w[static_cast<size_t>(h)];
      const double f_sum = cache.fm_f[static_cast<size_t>(h)];
      for (int i = 0; i < fields; ++i) {
        const double t = cache.fm_t[static_cast<size_t>(h)][static_cast<size_t>(i)];
        const double dt = ds * (f_sum - t);
        for (int r = 0; r < d; ++r) {
          grads->dense.fm_proj[static_cast<size_t>(h)][static_cast<size_t>(r)] +=
              dt * cache.fields[static_cast<size_t>(i)][static_cast<size_t>(r)];
          dfields[static_cast<size_t>(i)][static_cast<size_t>(r)] +=
              dt * dense.fm_proj[static_cast<size_t>(h)][static_cast<size_t>(r)];
        }
      }
    }
  }

  // dx0 slices feed field gradients.
  for (int f = 0; f < fields; ++f) {
    for (int r = 0; r < d; ++r) {
      dfields[static_cast<size_t>(f)][static_cast<size_t>(r)] +=
          dx0[static_cast<size_t>(f * d + r)];
    }
  }

  // Field 0 -> dense projection weights.
  for (int r = 0; r < d; ++r) {
    const double df = dfields[0][static_cast<size_t>(r)];
    if (df == 0.0) continue;
    for (int c = 0; c < kNumDense; ++c) {
      grads->dense.dense_proj(static_cast<size_t>(r),
                              static_cast<size_t>(c)) +=
          df * sample.dense[static_cast<size_t>(c)];
    }
  }
  // Fields 1..26 -> embedding rows.
  for (int f = 0; f < kNumCat; ++f) {
    const uint64_t bucket = Bucket(f, sample.cats[f]);
    auto& row = grads->rows.emb[static_cast<size_t>(f)];
    auto it = row.find(bucket);
    if (it == row.end()) {
      it = row.emplace(bucket,
                       std::vector<double>(static_cast<size_t>(d), 0.0))
               .first;
    }
    for (int r = 0; r < d; ++r) {
      it->second[static_cast<size_t>(r)] +=
          dfields[static_cast<size_t>(f + 1)][static_cast<size_t>(r)];
    }
  }
  (void)rows;
}

double MiniDlrm::ForwardBackward(const CriteoBatch& batch,
                                 const ParamSnapshot& snapshot,
                                 DlrmGradients* grads) const {
  assert(!batch.samples.empty());
  Rng dummy(0);
  grads->dense = MakeDenseParams(config_, n0_, /*zero=*/true, &dummy);
  grads->rows.emb.assign(kNumCat, {});
  grads->rows.wide.assign(kNumCat, {});

  const double inv_n = 1.0 / static_cast<double>(batch.size());
  double loss = 0.0;
  SampleCache cache;
  for (const CriteoSample& sample : batch.samples) {
    const double logit =
        ForwardSample(sample, snapshot.dense, snapshot.rows, &cache);
    const double p = Sigmoid(logit);
    const double y = sample.label;
    const double eps = 1e-12;
    loss += -(y * std::log(p + eps) + (1.0 - y) * std::log(1.0 - p + eps));
    BackwardSample(sample, snapshot.dense, snapshot.rows, cache,
                   (p - y) * inv_n, grads);
  }
  return loss * inv_n;
}

void MiniDlrm::ApplyDenseGradientsLocked(const DenseParams& grads,
                                         double learning_rate) {
  // p += (-lr) * g throughout: IEEE-identical to the historical
  // `p[i] -= lr * g[i]` (negation is exact), and SIMD-able under
  // DenseKernelMode::kSimd.
  const double neg_lr = -learning_rate;
  auto axpy = [neg_lr](const std::vector<double>& g, std::vector<double>& p) {
    KernelAxpy(p.size(), neg_lr, g.data(), p.data());
  };
  KernelAxpy(params_.dense_proj.data().size(), neg_lr,
             grads.dense_proj.data().data(), params_.dense_proj.data().data());
  for (size_t l = 0; l < params_.mlp_w.size(); ++l) {
    KernelAxpy(params_.mlp_w[l].data().size(), neg_lr,
               grads.mlp_w[l].data().data(), params_.mlp_w[l].data().data());
    axpy(grads.mlp_b[l], params_.mlp_b[l]);
  }
  for (size_t l = 0; l < params_.cross_w.size(); ++l) {
    axpy(grads.cross_w[l], params_.cross_w[l]);
    axpy(grads.cross_b[l], params_.cross_b[l]);
  }
  if (!params_.cross_out_w.empty()) {
    axpy(grads.cross_out_w, params_.cross_out_w);
  }
  for (size_t h = 0; h < params_.fm_proj.size(); ++h) {
    axpy(grads.fm_proj[h], params_.fm_proj[h]);
  }
  if (!params_.fm_w.empty()) axpy(grads.fm_w, params_.fm_w);
  params_.bias -= learning_rate * grads.bias;
}

void MiniDlrm::ApplyGradients(const DlrmGradients& grads,
                              double learning_rate) {
  const double lr = learning_rate;
  std::unique_lock<std::shared_mutex> lock(params_mu_);
  ApplyDenseGradientsLocked(grads.dense, lr);
  lock.unlock();

  // Sparse push: per-stripe locking inside the store, no global lock.
  for (int f = 0; f < kNumCat; ++f) {
    for (const auto& [bucket, grow] : grads.rows.emb[static_cast<size_t>(f)]) {
      store_.ApplyRowGradient(f, bucket, grow, lr);
    }
    for (const auto& [bucket, gw] : grads.rows.wide[static_cast<size_t>(f)]) {
      store_.ApplyWideGradient(f, bucket, gw, lr);
    }
  }
}

std::vector<double> MiniDlrm::Predict(const CriteoBatch& batch) const {
  const ParamSnapshot snap = TakeSnapshot(batch);
  std::vector<double> probs;
  probs.reserve(batch.size());
  SampleCache cache;
  for (const CriteoSample& sample : batch.samples) {
    probs.push_back(Sigmoid(ForwardSample(sample, snap.dense, snap.rows,
                                          &cache)));
  }
  return probs;
}

double MiniDlrm::Evaluate(const CriteoBatch& batch) const {
  const std::vector<double> probs = Predict(batch);
  double loss = 0.0;
  const double eps = 1e-12;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double y = batch.samples[i].label;
    loss += -(y * std::log(probs[i] + eps) +
              (1.0 - y) * std::log(1.0 - probs[i] + eps));
  }
  return loss / static_cast<double>(probs.size());
}

size_t MiniDlrm::MaterializedRows() const { return store_.MaterializedRows(); }

namespace {

/// Fixed traversal of every dense parameter. Export, import, and size
/// counting must all walk the same order, so they share this visitor.
template <typename Params, typename Fn>
void VisitDenseParams(Params& p, Fn&& fn) {
  for (auto& v : p.dense_proj.data()) fn(v);
  for (auto& m : p.mlp_w) {
    for (auto& v : m.data()) fn(v);
  }
  for (auto& vec : p.mlp_b) {
    for (auto& v : vec) fn(v);
  }
  for (auto& vec : p.cross_w) {
    for (auto& v : vec) fn(v);
  }
  for (auto& vec : p.cross_b) {
    for (auto& v : vec) fn(v);
  }
  for (auto& v : p.cross_out_w) fn(v);
  for (auto& vec : p.fm_proj) {
    for (auto& v : vec) fn(v);
  }
  for (auto& v : p.fm_w) fn(v);
  fn(p.bias);
}

}  // namespace

void MiniDlrm::ExportState(DlrmStateBlob* out) const {
  out->dense.clear();
  {
    std::shared_lock<std::shared_mutex> lock(params_mu_);
    VisitDenseParams(params_, [out](const double& v) {
      out->dense.push_back(v);
    });
  }
  store_.ExportAll(&out->sparse);
}

Status MiniDlrm::ImportState(const DlrmStateBlob& blob) {
  std::unique_lock<std::shared_mutex> lock(params_mu_);
  size_t expected = 0;
  VisitDenseParams(params_, [&expected](const double&) { ++expected; });
  if (blob.dense.size() != expected) {
    return InvalidArgumentError("dense blob does not match model shape");
  }
  size_t i = 0;
  VisitDenseParams(params_, [&blob, &i](double& v) { v = blob.dense[i++]; });
  lock.unlock();
  return store_.ImportAll(blob.sparse);
}

// ---------------------------------------------------------------------------
// Allocation-free batch hot path (ExecMode::kThreads workers).
//
// Same math as TakeSnapshot / ForwardBackward / ApplyGradients, restructured
// around flat reusable buffers: the per-sample field vectors live directly in
// the concatenated x0 buffer, embedding rows are gathered once per batch into
// a flat array indexed by a slot table, and gradients accumulate into
// per-worker flat arrays that PushBatch scatters in one sharded pass. Every
// floating-point statement keeps the legacy order, so losses and updates are
// bit-identical (pinned by mini_dlrm_test.FastPathMatchesLegacyBitExact).
// ---------------------------------------------------------------------------

void MiniDlrm::EnsureWork(DlrmBatchWork* work) const {
  if (work->initialized) return;
  Rng dummy(0);
  work->dense_grads = MakeDenseParams(config_, n0_, /*zero=*/true, &dummy);
  const size_t n0 = static_cast<size_t>(n0_);
  work->x0.resize(n0);
  work->dfields.resize(n0);
  work->dx0.resize(n0);
  const size_t layers = work->dense_grads.mlp_w.size();
  work->mlp_pre.resize(layers);
  work->mlp_post.resize(layers);
  if (config_.arch == ModelKind::kDcn) {
    work->cross_x.assign(static_cast<size_t>(config_.cross_layers) + 1,
                         std::vector<double>(n0));
    work->cross_s.resize(static_cast<size_t>(config_.cross_layers));
    work->dxl.resize(n0);
    work->dprev.resize(n0);
  }
  if (config_.arch == ModelKind::kXDeepFm) {
    work->fm_t.resize(static_cast<size_t>(config_.fm_maps) * (1 + kNumCat));
    work->fm_f.resize(static_cast<size_t>(config_.fm_maps));
    work->fm_s.resize(static_cast<size_t>(config_.fm_maps));
  }
  work->initialized = true;
}

void MiniDlrm::PullBatch(DlrmBatchWork* work) const {
  EnsureWork(work);
  {
    // One consistent dense version, as in TakeSnapshot. Copy-assignment
    // reuses the destination buffers: no allocations once warmed.
    std::shared_lock<std::shared_mutex> lock(params_mu_);
    work->dense = params_;
  }
  // Dedup the batch's (feature, bucket) keys: sort (key, position) pairs,
  // then compact equal runs into one slot each.
  const size_t nsamples = work->batch.samples.size();
  work->key_scratch.resize(nsamples * kNumCat);
  size_t pos = 0;
  for (size_t s = 0; s < nsamples; ++s) {
    const CriteoSample& sample = work->batch.samples[s];
    for (int f = 0; f < kNumCat; ++f) {
      const uint64_t bucket = Bucket(f, sample.cats[f]);
      work->key_scratch[pos] = {store_.PackKey(f, bucket),
                                static_cast<uint32_t>(pos)};
      ++pos;
    }
  }
  std::sort(work->key_scratch.begin(), work->key_scratch.end());
  work->keys.clear();
  work->slot.resize(pos);
  for (const auto& [key, p] : work->key_scratch) {
    if (work->keys.empty() || work->keys.back() != key) {
      work->keys.push_back(key);
    }
    work->slot[p] = static_cast<uint32_t>(work->keys.size() - 1);
  }
  const size_t d = static_cast<size_t>(config_.emb_dim);
  const size_t nk = work->keys.size();
  work->rows.resize(nk * d);
  work->row_grads.assign(nk * d, 0.0);
  double* wide_out = nullptr;
  if (config_.arch == ModelKind::kWideDeep) {
    work->wide.resize(nk);
    work->wide_grads.assign(nk, 0.0);
    wide_out = work->wide.data();
  }
  store_.GatherRows(work->keys.data(), nk, work->rows.data(), wide_out,
                    &work->store_scratch);
}

double MiniDlrm::ForwardSampleFast(const CriteoSample& sample,
                                   size_t sample_idx,
                                   DlrmBatchWork& work) const {
  const int d = config_.emb_dim;
  double* x0 = work.x0.data();

  // Field 0: projected dense features.
  for (int r = 0; r < d; ++r) {
    double acc = 0.0;
    for (int c = 0; c < kNumDense; ++c) {
      acc += work.dense.dense_proj(static_cast<size_t>(r),
                                   static_cast<size_t>(c)) *
             sample.dense[static_cast<size_t>(c)];
    }
    x0[r] = acc;
  }
  // Fields 1..26: gathered embedding rows, straight into x0's field slices.
  double wide_logit = 0.0;
  const uint32_t* slots = &work.slot[sample_idx * kNumCat];
  for (int f = 0; f < kNumCat; ++f) {
    const uint32_t slot = slots[f];
    const double* row = &work.rows[static_cast<size_t>(slot) * d];
    std::copy(row, row + d, x0 + static_cast<size_t>(f + 1) * d);
    if (config_.arch == ModelKind::kWideDeep) {
      wide_logit += work.wide[slot];
    }
  }

  // MLP tower.
  const std::vector<double>* act = &work.x0;
  for (size_t l = 0; l < work.dense.mlp_w.size(); ++l) {
    const bool last = l + 1 == work.dense.mlp_w.size();
    work.dense.mlp_w[l].ApplyBiasAct(*act, work.dense.mlp_b[l],
                                     /*relu=*/!last, &work.mlp_post[l],
                                     &work.mlp_pre[l]);
    act = &work.mlp_post[l];
  }
  double logit = (*act)[0] + work.dense.bias;

  // Architecture head.
  if (config_.arch == ModelKind::kWideDeep) {
    logit += wide_logit;
  } else if (config_.arch == ModelKind::kDcn) {
    work.cross_x[0] = work.x0;
    for (size_t l = 0; l < work.dense.cross_w.size(); ++l) {
      const std::vector<double>& xl = work.cross_x[l];
      double s = 0.0;
      for (size_t i = 0; i < xl.size(); ++i) {
        s += work.dense.cross_w[l][i] * xl[i];
      }
      work.cross_s[l] = s;
      std::vector<double>& next = work.cross_x[l + 1];
      for (size_t i = 0; i < xl.size(); ++i) {
        next[i] = work.x0[i] * s + work.dense.cross_b[l][i] + xl[i];
      }
    }
    const std::vector<double>& xl = work.cross_x.back();
    for (size_t i = 0; i < xl.size(); ++i) {
      logit += work.dense.cross_out_w[i] * xl[i];
    }
  } else if (config_.arch == ModelKind::kXDeepFm) {
    const int fields = 1 + kNumCat;
    for (int h = 0; h < config_.fm_maps; ++h) {
      double fsum = 0.0;
      double qsum = 0.0;
      for (int i = 0; i < fields; ++i) {
        double t = 0.0;
        for (int r = 0; r < d; ++r) {
          t += work.dense.fm_proj[static_cast<size_t>(h)]
                                 [static_cast<size_t>(r)] *
               x0[i * d + r];
        }
        work.fm_t[static_cast<size_t>(h * fields + i)] = t;
        fsum += t;
        qsum += t * t;
      }
      work.fm_f[static_cast<size_t>(h)] = fsum;
      const double s = 0.5 * (fsum * fsum - qsum);
      work.fm_s[static_cast<size_t>(h)] = s;
      logit += work.dense.fm_w[static_cast<size_t>(h)] * s;
    }
  }
  return logit;
}

void MiniDlrm::BackwardSampleFast(const CriteoSample& sample,
                                  size_t sample_idx, double dlogit,
                                  DlrmBatchWork& work) const {
  const int d = config_.emb_dim;
  const int fields = 1 + kNumCat;
  std::fill(work.dfields.begin(), work.dfields.end(), 0.0);
  std::fill(work.dx0.begin(), work.dx0.end(), 0.0);
  const uint32_t* slots = &work.slot[sample_idx * kNumCat];

  work.dense_grads.bias += dlogit;

  // --- MLP backward ---
  {
    work.delta.assign(1, dlogit);  // gradient at the output layer
    for (size_t l = work.dense.mlp_w.size(); l-- > 0;) {
      const std::vector<double>& input =
          l == 0 ? work.x0 : work.mlp_post[l - 1];
      // dW = delta (x) input; db = delta.
      Matrix& gw = work.dense_grads.mlp_w[l];
      std::vector<double>& gb = work.dense_grads.mlp_b[l];
      for (size_t o = 0; o < work.delta.size(); ++o) {
        gb[o] += work.delta[o];
        for (size_t i = 0; i < input.size(); ++i) {
          gw(o, i) += work.delta[o] * input[i];
        }
      }
      // Propagate to the previous layer.
      work.prev.assign(input.size(), 0.0);
      for (size_t o = 0; o < work.delta.size(); ++o) {
        for (size_t i = 0; i < input.size(); ++i) {
          work.prev[i] += work.dense.mlp_w[l](o, i) * work.delta[o];
        }
      }
      if (l > 0) {
        // Through the ReLU of layer l-1.
        for (size_t i = 0; i < work.prev.size(); ++i) {
          if (work.mlp_pre[l - 1][i] <= 0.0) work.prev[i] = 0.0;
        }
        std::swap(work.delta, work.prev);
      } else {
        for (size_t i = 0; i < work.prev.size(); ++i) {
          work.dx0[i] += work.prev[i];
        }
      }
    }
  }

  // --- Head backward ---
  if (config_.arch == ModelKind::kWideDeep) {
    for (int f = 0; f < kNumCat; ++f) {
      work.wide_grads[slots[f]] += dlogit;
    }
  } else if (config_.arch == ModelKind::kDcn) {
    const size_t n = static_cast<size_t>(n0_);
    const std::vector<double>& x_last = work.cross_x.back();
    for (size_t i = 0; i < n; ++i) {
      work.dense_grads.cross_out_w[i] += dlogit * x_last[i];
      work.dxl[i] = dlogit * work.dense.cross_out_w[i];
    }
    for (size_t l = work.dense.cross_w.size(); l-- > 0;) {
      const std::vector<double>& xl = work.cross_x[l];
      const double s = work.cross_s[l];
      double ds = 0.0;
      for (size_t i = 0; i < n; ++i) {
        ds += work.dxl[i] * work.x0[i];
        work.dense_grads.cross_b[l][i] += work.dxl[i];
        work.dx0[i] += work.dxl[i] * s;
      }
      for (size_t i = 0; i < n; ++i) {
        work.dense_grads.cross_w[l][i] += ds * xl[i];
        work.dprev[i] = work.dxl[i] + ds * work.dense.cross_w[l][i];
      }
      std::swap(work.dxl, work.dprev);
    }
    for (size_t i = 0; i < n; ++i) work.dx0[i] += work.dxl[i];
  } else if (config_.arch == ModelKind::kXDeepFm) {
    for (int h = 0; h < config_.fm_maps; ++h) {
      const double s = work.fm_s[static_cast<size_t>(h)];
      work.dense_grads.fm_w[static_cast<size_t>(h)] += dlogit * s;
      const double ds = dlogit * work.dense.fm_w[static_cast<size_t>(h)];
      const double f_sum = work.fm_f[static_cast<size_t>(h)];
      for (int i = 0; i < fields; ++i) {
        const double t = work.fm_t[static_cast<size_t>(h * fields + i)];
        const double dt = ds * (f_sum - t);
        for (int r = 0; r < d; ++r) {
          work.dense_grads.fm_proj[static_cast<size_t>(h)]
                                  [static_cast<size_t>(r)] +=
              dt * work.x0[static_cast<size_t>(i * d + r)];
          work.dfields[static_cast<size_t>(i * d + r)] +=
              dt * work.dense.fm_proj[static_cast<size_t>(h)]
                                     [static_cast<size_t>(r)];
        }
      }
    }
  }

  // dx0 slices feed field gradients (flat layout: same element order as the
  // legacy per-field loop).
  for (size_t i = 0; i < work.dx0.size(); ++i) {
    work.dfields[i] += work.dx0[i];
  }

  // Field 0 -> dense projection weights.
  for (int r = 0; r < d; ++r) {
    const double df = work.dfields[static_cast<size_t>(r)];
    if (df == 0.0) continue;
    for (int c = 0; c < kNumDense; ++c) {
      work.dense_grads.dense_proj(static_cast<size_t>(r),
                                  static_cast<size_t>(c)) +=
          df * sample.dense[static_cast<size_t>(c)];
    }
  }
  // Fields 1..26 -> flat per-slot row gradients.
  for (int f = 0; f < kNumCat; ++f) {
    double* grow = &work.row_grads[static_cast<size_t>(slots[f]) * d];
    const double* dfield = &work.dfields[static_cast<size_t>(f + 1) * d];
    for (int r = 0; r < d; ++r) grow[r] += dfield[r];
  }
}

double MiniDlrm::ComputeBatch(DlrmBatchWork* work) const {
  assert(work->initialized && !work->batch.samples.empty());
  VisitDenseParams(work->dense_grads, [](double& v) { v = 0.0; });
  // row_grads / wide_grads were zeroed by PullBatch when it sized them.
  const double inv_n = 1.0 / static_cast<double>(work->batch.size());
  double loss = 0.0;
  for (size_t s = 0; s < work->batch.samples.size(); ++s) {
    const CriteoSample& sample = work->batch.samples[s];
    const double logit = ForwardSampleFast(sample, s, *work);
    const double p = Sigmoid(logit);
    const double y = sample.label;
    const double eps = 1e-12;
    loss += -(y * std::log(p + eps) + (1.0 - y) * std::log(1.0 - p + eps));
    BackwardSampleFast(sample, s, (p - y) * inv_n, *work);
  }
  return loss * inv_n;
}

void MiniDlrm::PushBatch(DlrmBatchWork* work, double learning_rate) {
  {
    std::unique_lock<std::shared_mutex> lock(params_mu_);
    ApplyDenseGradientsLocked(work->dense_grads, learning_rate);
  }
  const double* wide_grads = config_.arch == ModelKind::kWideDeep
                                 ? work->wide_grads.data()
                                 : nullptr;
  store_.ScatterApply(work->keys.data(), work->keys.size(),
                      work->row_grads.data(), wide_grads, learning_rate,
                      &work->store_scratch);
}

}  // namespace dlrover
