#include "dlrm/emb_store.h"

#include "common/rng.h"

namespace dlrover {

namespace {

/// Must stay identical to the historical MiniDlrm row init so checkpoints
/// and golden convergence numbers carry over: splitmix-style avalanche of
/// (seed, feature, bucket) seeding the per-row Rng.
uint64_t RowInitHash(uint64_t seed, int feature, uint64_t bucket) {
  uint64_t x = seed ^
               (static_cast<uint64_t>(feature + 1) * 0x9e3779b97f4a7c15ull) ^
               (bucket * 0xc4ceb9fe1a85ec53ull);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EmbStore::EmbStore(const EmbStoreOptions& options)
    : options_(options),
      stripes_(RoundUpPow2(options.stripes == 0 ? 1 : options.stripes)) {
  stripe_mask_ = stripes_.size() - 1;
}

EmbStore::Stripe& EmbStore::StripeFor(uint64_t key) const {
  // Finalizer-style mix so adjacent buckets of one feature spread across
  // stripes instead of marching through them in lockstep.
  uint64_t x = key * 0x9e3779b97f4a7c15ull;
  x ^= x >> 32;
  return stripes_[x & stripe_mask_];
}

std::vector<double>& EmbStore::MaterializeRowLocked(Stripe& stripe,
                                                    int feature,
                                                    uint64_t bucket,
                                                    uint64_t key) const {
  auto it = stripe.emb.find(key);
  if (it != stripe.emb.end()) return it->second;
  Rng rng(RowInitHash(options_.seed, feature, bucket));
  std::vector<double> row(static_cast<size_t>(options_.emb_dim));
  for (auto& v : row) v = rng.Normal(0.0, options_.init_scale);
  return stripe.emb.emplace(key, std::move(row)).first->second;
}

std::vector<double> EmbStore::GetRow(int feature, uint64_t bucket) const {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return MaterializeRowLocked(stripe, feature, bucket, key);
}

double EmbStore::GetWide(int feature, uint64_t bucket) const {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.wide.emplace(key, 0.0).first->second;
}

void EmbStore::ApplyRowGradient(int feature, uint64_t bucket,
                                const std::vector<double>& grad,
                                double learning_rate) {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  std::vector<double>& row = MaterializeRowLocked(stripe, feature, bucket, key);
  for (size_t r = 0; r < row.size(); ++r) row[r] -= learning_rate * grad[r];
}

void EmbStore::ApplyWideGradient(int feature, uint64_t bucket, double grad,
                                 double learning_rate) {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  double& w = stripe.wide.emplace(key, 0.0).first->second;
  w -= learning_rate * grad;
}

size_t EmbStore::MaterializedRows() const {
  size_t rows = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    rows += stripe.emb.size();
  }
  return rows;
}

}  // namespace dlrover
