#include "dlrm/emb_store.h"

#include <algorithm>
#include <utility>

#include "common/dense_kernels.h"
#include "common/rng.h"

namespace dlrover {

namespace {

/// Must stay identical to the historical MiniDlrm row init so checkpoints
/// and golden convergence numbers carry over: splitmix-style avalanche of
/// (seed, feature, bucket) seeding the per-row Rng.
uint64_t RowInitHash(uint64_t seed, int feature, uint64_t bucket) {
  uint64_t x = seed ^
               (static_cast<uint64_t>(feature + 1) * 0x9e3779b97f4a7c15ull) ^
               (bucket * 0xc4ceb9fe1a85ec53ull);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EmbStore::EmbStore(const EmbStoreOptions& options)
    : options_(options),
      stripes_(RoundUpPow2(options.stripes == 0 ? 1 : options.stripes)) {
  stripe_mask_ = stripes_.size() - 1;
}

size_t EmbStore::StripeIndexFor(uint64_t key) const {
  // Finalizer-style mix so adjacent buckets of one feature spread across
  // stripes instead of marching through them in lockstep.
  uint64_t x = key * 0x9e3779b97f4a7c15ull;
  x ^= x >> 32;
  return static_cast<size_t>(x & stripe_mask_);
}

EmbStore::Stripe& EmbStore::StripeFor(uint64_t key) const {
  return stripes_[StripeIndexFor(key)];
}

std::vector<double>& EmbStore::MaterializeRowLocked(Stripe& stripe,
                                                    int feature,
                                                    uint64_t bucket,
                                                    uint64_t key) const {
  auto it = stripe.emb.find(key);
  if (it != stripe.emb.end()) return it->second;
  Rng rng(RowInitHash(options_.seed, feature, bucket));
  std::vector<double> row(static_cast<size_t>(options_.emb_dim));
  for (auto& v : row) v = rng.Normal(0.0, options_.init_scale);
  return stripe.emb.emplace(key, std::move(row)).first->second;
}

std::vector<double> EmbStore::GetRow(int feature, uint64_t bucket) const {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return MaterializeRowLocked(stripe, feature, bucket, key);
}

double EmbStore::GetWide(int feature, uint64_t bucket) const {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.wide.try_emplace(key, 0.0).first->second;
}

void EmbStore::ApplyRowGradient(int feature, uint64_t bucket,
                                const std::vector<double>& grad,
                                double learning_rate) {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  std::vector<double>& row = MaterializeRowLocked(stripe, feature, bucket, key);
  for (size_t r = 0; r < row.size(); ++r) row[r] -= learning_rate * grad[r];
}

void EmbStore::ApplyWideGradient(int feature, uint64_t bucket, double grad,
                                 double learning_rate) {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  double& w = stripe.wide.try_emplace(key, 0.0).first->second;
  w -= learning_rate * grad;
}

void EmbStore::GroupByStripe(const uint64_t* keys, size_t n,
                             BatchScratch* scratch) const {
  scratch->stripe_of.resize(n);
  scratch->start.assign(stripes_.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t s = static_cast<uint32_t>(StripeIndexFor(keys[i]));
    scratch->stripe_of[i] = s;
    ++scratch->start[s];
  }
  uint32_t running = 0;
  for (size_t s = 0; s < scratch->start.size(); ++s) {
    const uint32_t count = scratch->start[s];
    scratch->start[s] = running;
    running += count;
  }
  scratch->order.resize(n);
  for (size_t i = 0; i < n; ++i) {
    scratch->order[scratch->start[scratch->stripe_of[i]]++] =
        static_cast<uint32_t>(i);
  }
  // start[s] now holds the END offset of stripe s's group.
}

void EmbStore::GatherRows(const uint64_t* keys, size_t n, double* rows_out,
                          double* wide_out, BatchScratch* scratch) const {
  const size_t dim = static_cast<size_t>(options_.emb_dim);
  GroupByStripe(keys, n, scratch);
  uint32_t begin = 0;
  for (size_t s = 0; s < stripes_.size(); ++s) {
    const uint32_t end = scratch->start[s];
    if (end == begin) continue;
    Stripe& stripe = stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (uint32_t o = begin; o < end; ++o) {
      const uint32_t i = scratch->order[o];
      const uint64_t key = keys[i];
      const int feature = static_cast<int>(key / options_.hash_buckets);
      const uint64_t bucket = key % options_.hash_buckets;
      const std::vector<double>& row =
          MaterializeRowLocked(stripe, feature, bucket, key);
      std::copy(row.begin(), row.end(), rows_out + i * dim);
      if (wide_out != nullptr) {
        wide_out[i] = stripe.wide.try_emplace(key, 0.0).first->second;
      }
    }
    begin = end;
  }
}

void EmbStore::ScatterApply(const uint64_t* keys, size_t n,
                            const double* row_grads, const double* wide_grads,
                            double learning_rate, BatchScratch* scratch) {
  const size_t dim = static_cast<size_t>(options_.emb_dim);
  GroupByStripe(keys, n, scratch);
  uint32_t begin = 0;
  for (size_t s = 0; s < stripes_.size(); ++s) {
    const uint32_t end = scratch->start[s];
    if (end == begin) continue;
    Stripe& stripe = stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (uint32_t o = begin; o < end; ++o) {
      const uint32_t i = scratch->order[o];
      const uint64_t key = keys[i];
      const int feature = static_cast<int>(key / options_.hash_buckets);
      const uint64_t bucket = key % options_.hash_buckets;
      std::vector<double>& row =
          MaterializeRowLocked(stripe, feature, bucket, key);
      // row += (-lr) * grad: IEEE-identical to the per-key
      // `row[r] -= lr * grad[r]` (negation is exact), SIMD-able in kSimd.
      KernelAxpy(dim, -learning_rate, row_grads + i * dim, row.data());
      if (wide_grads != nullptr) {
        double& w = stripe.wide.try_emplace(key, 0.0).first->second;
        w -= learning_rate * wide_grads[i];
      }
    }
    begin = end;
  }
}

void EmbStore::ExportAll(EmbStoreSnapshot* out) const {
  std::vector<std::pair<uint64_t, std::vector<double>>> rows;
  std::vector<std::pair<uint64_t, double>> wides;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& kv : stripe.emb) rows.emplace_back(kv.first, kv.second);
    for (const auto& kv : stripe.wide) wides.emplace_back(kv.first, kv.second);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(wides.begin(), wides.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out->emb_keys.clear();
  out->emb_values.clear();
  out->wide_keys.clear();
  out->wide_values.clear();
  out->emb_keys.reserve(rows.size());
  out->emb_values.reserve(rows.size() *
                          static_cast<size_t>(options_.emb_dim));
  for (const auto& kv : rows) {
    out->emb_keys.push_back(kv.first);
    out->emb_values.insert(out->emb_values.end(), kv.second.begin(),
                           kv.second.end());
  }
  out->wide_keys.reserve(wides.size());
  out->wide_values.reserve(wides.size());
  for (const auto& kv : wides) {
    out->wide_keys.push_back(kv.first);
    out->wide_values.push_back(kv.second);
  }
}

Status EmbStore::ImportAll(const EmbStoreSnapshot& snapshot) {
  const size_t dim = static_cast<size_t>(options_.emb_dim);
  if (snapshot.emb_values.size() != snapshot.emb_keys.size() * dim) {
    return InvalidArgumentError("embedding snapshot has wrong value count");
  }
  if (snapshot.wide_values.size() != snapshot.wide_keys.size()) {
    return InvalidArgumentError("wide snapshot has wrong value count");
  }
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.emb.clear();
    stripe.wide.clear();
  }
  for (size_t i = 0; i < snapshot.emb_keys.size(); ++i) {
    const uint64_t key = snapshot.emb_keys[i];
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.emb.emplace(
        key, std::vector<double>(snapshot.emb_values.begin() + i * dim,
                                 snapshot.emb_values.begin() + (i + 1) * dim));
  }
  for (size_t i = 0; i < snapshot.wide_keys.size(); ++i) {
    const uint64_t key = snapshot.wide_keys[i];
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.wide.emplace(key, snapshot.wide_values[i]);
  }
  return Status::OK();
}

size_t EmbStore::MaterializedRows() const {
  size_t rows = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    rows += stripe.emb.size();
  }
  return rows;
}

}  // namespace dlrover
