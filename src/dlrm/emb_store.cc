#include "dlrm/emb_store.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"

namespace dlrover {

namespace {

/// Must stay identical to the historical MiniDlrm row init so checkpoints
/// and golden convergence numbers carry over: splitmix-style avalanche of
/// (seed, feature, bucket) seeding the per-row Rng.
uint64_t RowInitHash(uint64_t seed, int feature, uint64_t bucket) {
  uint64_t x = seed ^
               (static_cast<uint64_t>(feature + 1) * 0x9e3779b97f4a7c15ull) ^
               (bucket * 0xc4ceb9fe1a85ec53ull);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EmbStore::EmbStore(const EmbStoreOptions& options)
    : options_(options),
      stripes_(RoundUpPow2(options.stripes == 0 ? 1 : options.stripes)) {
  stripe_mask_ = stripes_.size() - 1;
}

EmbStore::Stripe& EmbStore::StripeFor(uint64_t key) const {
  // Finalizer-style mix so adjacent buckets of one feature spread across
  // stripes instead of marching through them in lockstep.
  uint64_t x = key * 0x9e3779b97f4a7c15ull;
  x ^= x >> 32;
  return stripes_[x & stripe_mask_];
}

std::vector<double>& EmbStore::MaterializeRowLocked(Stripe& stripe,
                                                    int feature,
                                                    uint64_t bucket,
                                                    uint64_t key) const {
  auto it = stripe.emb.find(key);
  if (it != stripe.emb.end()) return it->second;
  Rng rng(RowInitHash(options_.seed, feature, bucket));
  std::vector<double> row(static_cast<size_t>(options_.emb_dim));
  for (auto& v : row) v = rng.Normal(0.0, options_.init_scale);
  return stripe.emb.emplace(key, std::move(row)).first->second;
}

std::vector<double> EmbStore::GetRow(int feature, uint64_t bucket) const {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return MaterializeRowLocked(stripe, feature, bucket, key);
}

double EmbStore::GetWide(int feature, uint64_t bucket) const {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.wide.emplace(key, 0.0).first->second;
}

void EmbStore::ApplyRowGradient(int feature, uint64_t bucket,
                                const std::vector<double>& grad,
                                double learning_rate) {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  std::vector<double>& row = MaterializeRowLocked(stripe, feature, bucket, key);
  for (size_t r = 0; r < row.size(); ++r) row[r] -= learning_rate * grad[r];
}

void EmbStore::ApplyWideGradient(int feature, uint64_t bucket, double grad,
                                 double learning_rate) {
  const uint64_t key = Key(feature, bucket);
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  double& w = stripe.wide.emplace(key, 0.0).first->second;
  w -= learning_rate * grad;
}

void EmbStore::ExportAll(EmbStoreSnapshot* out) const {
  std::vector<std::pair<uint64_t, std::vector<double>>> rows;
  std::vector<std::pair<uint64_t, double>> wides;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& kv : stripe.emb) rows.emplace_back(kv.first, kv.second);
    for (const auto& kv : stripe.wide) wides.emplace_back(kv.first, kv.second);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(wides.begin(), wides.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out->emb_keys.clear();
  out->emb_values.clear();
  out->wide_keys.clear();
  out->wide_values.clear();
  out->emb_keys.reserve(rows.size());
  out->emb_values.reserve(rows.size() *
                          static_cast<size_t>(options_.emb_dim));
  for (const auto& kv : rows) {
    out->emb_keys.push_back(kv.first);
    out->emb_values.insert(out->emb_values.end(), kv.second.begin(),
                           kv.second.end());
  }
  out->wide_keys.reserve(wides.size());
  out->wide_values.reserve(wides.size());
  for (const auto& kv : wides) {
    out->wide_keys.push_back(kv.first);
    out->wide_values.push_back(kv.second);
  }
}

Status EmbStore::ImportAll(const EmbStoreSnapshot& snapshot) {
  const size_t dim = static_cast<size_t>(options_.emb_dim);
  if (snapshot.emb_values.size() != snapshot.emb_keys.size() * dim) {
    return InvalidArgumentError("embedding snapshot has wrong value count");
  }
  if (snapshot.wide_values.size() != snapshot.wide_keys.size()) {
    return InvalidArgumentError("wide snapshot has wrong value count");
  }
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.emb.clear();
    stripe.wide.clear();
  }
  for (size_t i = 0; i < snapshot.emb_keys.size(); ++i) {
    const uint64_t key = snapshot.emb_keys[i];
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.emb.emplace(
        key, std::vector<double>(snapshot.emb_values.begin() + i * dim,
                                 snapshot.emb_values.begin() + (i + 1) * dim));
  }
  for (size_t i = 0; i < snapshot.wide_keys.size(); ++i) {
    const uint64_t key = snapshot.wide_keys[i];
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.wide.emplace(key, snapshot.wide_values[i]);
  }
  return Status::OK();
}

size_t EmbStore::MaterializedRows() const {
  size_t rows = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    rows += stripe.emb.size();
  }
  return rows;
}

}  // namespace dlrover
