#ifndef DLROVER_DLRM_MINI_DLRM_H_
#define DLROVER_DLRM_MINI_DLRM_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "dlrm/criteo_synth.h"
#include "dlrm/emb_store.h"
#include "ps/model_profile.h"

namespace dlrover {

/// Configuration of the mini-DLRM used in the convergence experiments.
/// Small enough to train quickly, structurally faithful: per-feature hashed
/// embedding tables, a dense-feature projection, an architecture-specific
/// interaction head and an MLP tower, trained with async-PS semantics.
struct MiniDlrmConfig {
  ModelKind arch = ModelKind::kWideDeep;
  int emb_dim = 8;
  uint64_t hash_buckets = 8192;  // per categorical feature
  std::vector<int> mlp_hidden = {64, 32};
  int cross_layers = 2;  // DCN head
  int fm_maps = 8;       // xDeepFM-lite (FM-style CIN approximation) head
  double init_scale = 0.05;
  uint64_t seed = 7;
};

/// Dense (non-embedding) parameters: copied wholesale into worker
/// snapshots, like pulling the dense part from a PS.
struct DenseParams {
  Matrix dense_proj;                     // emb_dim x 13
  std::vector<Matrix> mlp_w;             // per layer: out x in
  std::vector<std::vector<double>> mlp_b;
  std::vector<std::vector<double>> cross_w;  // DCN: per layer, size n0
  std::vector<std::vector<double>> cross_b;
  std::vector<double> cross_out_w;           // size n0
  std::vector<std::vector<double>> fm_proj;  // fm_maps x emb_dim
  std::vector<double> fm_w;                  // fm_maps
  double bias = 0.0;
};

/// Sparse gradients/rows keyed by (feature, bucket).
struct SparseRows {
  /// embedding rows: per feature, bucket -> vector<emb_dim>.
  std::vector<std::unordered_map<uint64_t, std::vector<double>>> emb;
  /// wide scalar weights (Wide&Deep head): per feature, bucket -> value.
  std::vector<std::unordered_map<uint64_t, double>> wide;
};

/// A worker's pulled view of the parameters: full dense copy + only the
/// embedding/wide rows its batch touches (as a real PS worker pulls).
struct ParamSnapshot {
  DenseParams dense;
  SparseRows rows;
};

/// Gradients produced by one mini-batch, mirroring the snapshot layout.
struct DlrmGradients {
  DenseParams dense;  // same shapes, holding gradient values
  SparseRows rows;
};

/// Serialized full model state: every dense parameter flattened in a fixed
/// traversal order plus the canonical sparse-store dump. This is the
/// payload a model checkpoint stores and checksums; the layout depends only
/// on the model config, never on thread interleaving.
struct DlrmStateBlob {
  std::vector<double> dense;
  EmbStoreSnapshot sparse;
};

/// A small but real deep recommendation model with three selectable
/// architectures (the paper's Model-X/Y/Z):
///   Wide&Deep — MLP tower + wide per-id linear head;
///   xDeepFM   — MLP tower + FM-style compressed interaction head
///               (a CIN approximation; see DESIGN.md);
///   DCN       — MLP tower + explicit cross-layer head.
/// Training is exception-free, deterministic given the seed, and built for
/// async-PS semantics: TakeSnapshot / ForwardBackward(snapshot) /
/// ApplyGradients emulate pull / compute / push.
///
/// Thread safety: TakeSnapshot, ForwardBackward, ApplyGradients, Predict,
/// Evaluate and MaterializedRows may be called concurrently from worker
/// threads (ExecMode::kThreads). The dense parameters are guarded by a
/// reader/writer lock (snapshots read-lock, pushes write-lock); embedding
/// and wide rows live in a lock-striped EmbStore so concurrent pulls and
/// pushes contend only per stripe. dense_params() is NOT synchronized —
/// single-threaded test use only.
class MiniDlrm {
 public:
  explicit MiniDlrm(const MiniDlrmConfig& config);

  /// Pulls the parameters a worker needs to process `batch`.
  ParamSnapshot TakeSnapshot(const CriteoBatch& batch) const;

  /// Computes mean logloss and gradients of `batch` against `snapshot`
  /// (possibly stale). Gradients are averaged over the batch.
  double ForwardBackward(const CriteoBatch& batch,
                         const ParamSnapshot& snapshot,
                         DlrmGradients* grads) const;

  /// Pushes gradients into the live parameters (async SGD step).
  void ApplyGradients(const DlrmGradients& grads, double learning_rate);

  /// Click probabilities under the live parameters.
  std::vector<double> Predict(const CriteoBatch& batch) const;

  /// Mean logloss of the live parameters on a batch.
  double Evaluate(const CriteoBatch& batch) const;

  /// Number of embedding rows materialized so far (memory growth proxy).
  size_t MaterializedRows() const;

  /// Serializes the complete model (dense + materialized sparse state) into
  /// `out`. Takes the dense read lock and the stripe locks one at a time;
  /// for a consistent cut the caller must quiesce concurrent pushes (the
  /// trainer holds its commit gate exclusively while checkpointing).
  void ExportState(DlrmStateBlob* out) const;

  /// Restores the model from a blob produced by ExportState on a model of
  /// the same config. Unmaterialized rows revert to their deterministic
  /// lazy init. Rejects blobs whose dense length or sparse shape does not
  /// match this model.
  Status ImportState(const DlrmStateBlob& blob);

  const MiniDlrmConfig& config() const { return config_; }
  int input_width() const { return n0_; }

  /// Direct parameter access for tests (gradient checking).
  DenseParams& dense_params() { return params_; }
  const DenseParams& dense_params() const { return params_; }

 private:
  struct SampleCache;  // forward activations for one sample

  uint64_t Bucket(int feature, uint64_t id) const {
    return (id * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(feature)) %
           config_.hash_buckets;
  }

  double ForwardSample(const CriteoSample& sample, const DenseParams& dense,
                       const SparseRows& rows, SampleCache* cache) const;
  void BackwardSample(const CriteoSample& sample, const DenseParams& dense,
                      const SparseRows& rows, const SampleCache& cache,
                      double dlogit, DlrmGradients* grads) const;

  MiniDlrmConfig config_;
  int n0_ = 0;  // concatenated field width = (1 + 26) * emb_dim
  DenseParams params_;
  mutable std::shared_mutex params_mu_;  // guards params_ (dense half)
  EmbStore store_;  // lazily materialized embedding/wide rows, lock-striped
  mutable Rng init_rng_;
};

}  // namespace dlrover

#endif  // DLROVER_DLRM_MINI_DLRM_H_
