#ifndef DLROVER_DLRM_MINI_DLRM_H_
#define DLROVER_DLRM_MINI_DLRM_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "dlrm/criteo_synth.h"
#include "dlrm/emb_store.h"
#include "ps/model_profile.h"

namespace dlrover {

/// Configuration of the mini-DLRM used in the convergence experiments.
/// Small enough to train quickly, structurally faithful: per-feature hashed
/// embedding tables, a dense-feature projection, an architecture-specific
/// interaction head and an MLP tower, trained with async-PS semantics.
struct MiniDlrmConfig {
  ModelKind arch = ModelKind::kWideDeep;
  int emb_dim = 8;
  uint64_t hash_buckets = 8192;  // per categorical feature
  std::vector<int> mlp_hidden = {64, 32};
  int cross_layers = 2;  // DCN head
  int fm_maps = 8;       // xDeepFM-lite (FM-style CIN approximation) head
  double init_scale = 0.05;
  uint64_t seed = 7;
};

/// Dense (non-embedding) parameters: copied wholesale into worker
/// snapshots, like pulling the dense part from a PS.
struct DenseParams {
  Matrix dense_proj;                     // emb_dim x 13
  std::vector<Matrix> mlp_w;             // per layer: out x in
  std::vector<std::vector<double>> mlp_b;
  std::vector<std::vector<double>> cross_w;  // DCN: per layer, size n0
  std::vector<std::vector<double>> cross_b;
  std::vector<double> cross_out_w;           // size n0
  std::vector<std::vector<double>> fm_proj;  // fm_maps x emb_dim
  std::vector<double> fm_w;                  // fm_maps
  double bias = 0.0;
};

/// Sparse gradients/rows keyed by (feature, bucket).
struct SparseRows {
  /// embedding rows: per feature, bucket -> vector<emb_dim>.
  std::vector<std::unordered_map<uint64_t, std::vector<double>>> emb;
  /// wide scalar weights (Wide&Deep head): per feature, bucket -> value.
  std::vector<std::unordered_map<uint64_t, double>> wide;
};

/// A worker's pulled view of the parameters: full dense copy + only the
/// embedding/wide rows its batch touches (as a real PS worker pulls).
struct ParamSnapshot {
  DenseParams dense;
  SparseRows rows;
};

/// Gradients produced by one mini-batch, mirroring the snapshot layout.
struct DlrmGradients {
  DenseParams dense;  // same shapes, holding gradient values
  SparseRows rows;
};

/// Serialized full model state: every dense parameter flattened in a fixed
/// traversal order plus the canonical sparse-store dump. This is the
/// payload a model checkpoint stores and checksums; the layout depends only
/// on the model config, never on thread interleaving.
struct DlrmStateBlob {
  std::vector<double> dense;
  EmbStoreSnapshot sparse;
};

/// Reusable per-worker workspace for the allocation-free batch hot path
/// (MiniDlrm::PullBatch / ComputeBatch / PushBatch). Owns every buffer one
/// training step needs: the pulled dense copy, the batch's unique sparse
/// keys with their gathered rows, the per-worker gradient accumulators that
/// PushBatch merges into the live model at commit, and the flat
/// forward/backward scratch. All buffers are sized on first use and reused
/// after that, so a warmed steady-state batch performs zero heap
/// allocations. One instance per worker; never shared across threads.
/// Treat the members as opaque — only `batch` is caller-filled (via
/// CriteoSynth::FillBatch), everything else belongs to MiniDlrm.
struct DlrmBatchWork {
  CriteoBatch batch;

  // Pulled parameters (one consistent dense version + the batch's rows).
  DenseParams dense;
  std::vector<uint64_t> keys;   // sorted unique packed (feature,bucket) keys
  std::vector<double> rows;     // keys.size() * emb_dim gathered rows
  std::vector<double> wide;     // keys.size() wide weights (Wide&Deep only)
  std::vector<uint32_t> slot;   // (sample * 26 + feature) -> index into keys

  // Per-worker gradient accumulators, merged at commit by PushBatch.
  DenseParams dense_grads;
  std::vector<double> row_grads;   // keys.size() * emb_dim
  std::vector<double> wide_grads;  // keys.size() (Wide&Deep only)

  // Forward/backward scratch (flat, reused). x0 doubles as the
  // concatenated field vector: field f lives at [f * emb_dim, ...).
  std::vector<double> x0;
  std::vector<std::vector<double>> mlp_pre;
  std::vector<std::vector<double>> mlp_post;
  std::vector<double> dfields;
  std::vector<double> dx0;
  std::vector<double> delta;
  std::vector<double> prev;
  std::vector<std::vector<double>> cross_x;  // DCN: x_0 .. x_L
  std::vector<double> cross_s;
  std::vector<double> dxl;
  std::vector<double> dprev;
  std::vector<double> fm_t;  // xDeepFM: fm_maps x 27, flat
  std::vector<double> fm_f;
  std::vector<double> fm_s;

  // Key-dedup and stripe-grouping scratch.
  std::vector<std::pair<uint64_t, uint32_t>> key_scratch;
  EmbStore::BatchScratch store_scratch;

  bool initialized = false;
};

/// A small but real deep recommendation model with three selectable
/// architectures (the paper's Model-X/Y/Z):
///   Wide&Deep — MLP tower + wide per-id linear head;
///   xDeepFM   — MLP tower + FM-style compressed interaction head
///               (a CIN approximation; see DESIGN.md);
///   DCN       — MLP tower + explicit cross-layer head.
/// Training is exception-free, deterministic given the seed, and built for
/// async-PS semantics: TakeSnapshot / ForwardBackward(snapshot) /
/// ApplyGradients emulate pull / compute / push.
///
/// Thread safety: TakeSnapshot, ForwardBackward, ApplyGradients, Predict,
/// Evaluate and MaterializedRows may be called concurrently from worker
/// threads (ExecMode::kThreads). The dense parameters are guarded by a
/// reader/writer lock (snapshots read-lock, pushes write-lock); embedding
/// and wide rows live in a lock-striped EmbStore so concurrent pulls and
/// pushes contend only per stripe. dense_params() is NOT synchronized —
/// single-threaded test use only.
class MiniDlrm {
 public:
  explicit MiniDlrm(const MiniDlrmConfig& config);

  /// Pulls the parameters a worker needs to process `batch`.
  ParamSnapshot TakeSnapshot(const CriteoBatch& batch) const;

  /// Computes mean logloss and gradients of `batch` against `snapshot`
  /// (possibly stale). Gradients are averaged over the batch.
  double ForwardBackward(const CriteoBatch& batch,
                         const ParamSnapshot& snapshot,
                         DlrmGradients* grads) const;

  /// Pushes gradients into the live parameters (async SGD step).
  void ApplyGradients(const DlrmGradients& grads, double learning_rate);

  /// Allocation-free batch hot path used by ExecMode::kThreads workers.
  /// The three calls mirror pull / compute / push against a per-worker
  /// workspace:
  ///   PullBatch    — dense copy + batched sparse gather of the batch's
  ///                  deduplicated keys (one lock round-trip per touched
  ///                  stripe instead of one per key);
  ///   ComputeBatch — forward/backward into the worker's private gradient
  ///                  accumulators; returns mean logloss;
  ///   PushBatch    — merges the accumulators into the live model: dense
  ///                  axpy under the write lock, then the sharded sparse
  ///                  scatter with per-stripe locking.
  /// The arithmetic is statement-for-statement identical to the legacy
  /// TakeSnapshot / ForwardBackward / ApplyGradients path: for the same
  /// batch against the same parameters both produce bit-identical losses
  /// and parameter updates (pinned by mini_dlrm_test). Thread-safe with
  /// one DlrmBatchWork per worker.
  void PullBatch(DlrmBatchWork* work) const;
  double ComputeBatch(DlrmBatchWork* work) const;
  void PushBatch(DlrmBatchWork* work, double learning_rate);

  /// Click probabilities under the live parameters.
  std::vector<double> Predict(const CriteoBatch& batch) const;

  /// Mean logloss of the live parameters on a batch.
  double Evaluate(const CriteoBatch& batch) const;

  /// Number of embedding rows materialized so far (memory growth proxy).
  size_t MaterializedRows() const;

  /// Serializes the complete model (dense + materialized sparse state) into
  /// `out`. Takes the dense read lock and the stripe locks one at a time;
  /// for a consistent cut the caller must quiesce concurrent pushes (the
  /// trainer holds its commit gate exclusively while checkpointing).
  void ExportState(DlrmStateBlob* out) const;

  /// Restores the model from a blob produced by ExportState on a model of
  /// the same config. Unmaterialized rows revert to their deterministic
  /// lazy init. Rejects blobs whose dense length or sparse shape does not
  /// match this model.
  Status ImportState(const DlrmStateBlob& blob);

  const MiniDlrmConfig& config() const { return config_; }
  int input_width() const { return n0_; }

  /// Direct parameter access for tests (gradient checking).
  DenseParams& dense_params() { return params_; }
  const DenseParams& dense_params() const { return params_; }

 private:
  struct SampleCache;  // forward activations for one sample

  uint64_t Bucket(int feature, uint64_t id) const {
    return (id * 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(feature)) %
           config_.hash_buckets;
  }

  double ForwardSample(const CriteoSample& sample, const DenseParams& dense,
                       const SparseRows& rows, SampleCache* cache) const;
  void BackwardSample(const CriteoSample& sample, const DenseParams& dense,
                      const SparseRows& rows, const SampleCache& cache,
                      double dlogit, DlrmGradients* grads) const;

  /// Sizes the fixed (batch-independent) buffers of `work` on first use.
  void EnsureWork(DlrmBatchWork* work) const;
  /// Flat-buffer twins of ForwardSample/BackwardSample with identical
  /// floating-point statement order; sparse grads go to work.row_grads /
  /// work.wide_grads via the batch's slot table.
  double ForwardSampleFast(const CriteoSample& sample, size_t sample_idx,
                           DlrmBatchWork& work) const;
  void BackwardSampleFast(const CriteoSample& sample, size_t sample_idx,
                          double dlogit, DlrmBatchWork& work) const;
  /// Dense half of a push; caller holds params_mu_ exclusively. Shared by
  /// ApplyGradients and PushBatch so both apply bit-identical updates.
  void ApplyDenseGradientsLocked(const DenseParams& grads,
                                 double learning_rate);

  MiniDlrmConfig config_;
  int n0_ = 0;  // concatenated field width = (1 + 26) * emb_dim
  DenseParams params_;
  mutable std::shared_mutex params_mu_;  // guards params_ (dense half)
  EmbStore store_;  // lazily materialized embedding/wide rows, lock-striped
  mutable Rng init_rng_;
};

}  // namespace dlrover

#endif  // DLROVER_DLRM_MINI_DLRM_H_
