#ifndef DLROVER_DLRM_ASYNC_TRAINER_H_
#define DLROVER_DLRM_ASYNC_TRAINER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "dlrm/criteo_synth.h"
#include "dlrm/mini_dlrm.h"
#include "elastic/shard_queue.h"
#include "ps/training_job.h"

namespace dlrover {

class ChaosInjector;

/// A scripted elasticity/instability event, triggered when the global
/// number of committed batches reaches `at_batches`.
struct ElasticEvent {
  enum class Kind : int {
    kAddWorkers = 0,
    kRemoveWorkers = 1,
    kCrashWorker = 2,
    kMakeStraggler = 3,
  };
  uint64_t at_batches = 0;
  Kind kind = Kind::kAddWorkers;
  int count = 1;
  double speed = 0.05;  // straggler speed factor
};

/// How logical workers execute.
enum class ExecMode : int {
  /// Deterministic single-threaded tick simulation (the default): workers
  /// advance in lockstep fractions, results are bit-reproducible for a
  /// seed. This is what convergence tests and Fig 8/13 goldens pin.
  kTicks = 0,
  /// Real parallelism: each worker runs pull -> compute -> push on a
  /// ThreadPool thread against the lock-striped parameter store, with
  /// genuine asynchronous staleness. Throughput scales with cores;
  /// interleaving (and thus exact floats) is nondeterministic.
  kThreads = 1,
};

/// Fault-tolerance layer for ExecMode::kThreads (opt-in; default off keeps
/// the runtime exactly as before). When enabled, a supervisor thread runs
/// alongside the workers: it feeds worker progress into a HeartbeatMonitor,
/// fences and reclaims the shards of dead or silent workers, takes periodic
/// checksummed checkpoints (model + data cut + audit under one quiescent
/// gate), and restores from the latest valid generation when parameter
/// state is lost — with seeded exponential backoff, bounded by
/// `max_restores`, degrading to fewer workers when the replacement budget
/// is exhausted.
struct FaultToleranceOptions {
  bool enabled = false;
  /// Committed batches between periodic checkpoints (a generation-0
  /// checkpoint is always taken before training starts).
  uint64_t checkpoint_every_batches = 128;
  /// Checkpoint generations the in-memory vault retains.
  size_t keep_checkpoints = 3;
  /// Worker silence (no commit) before the supervisor declares it failed.
  double heartbeat_timeout_ms = 500.0;
  double supervisor_poll_ms = 2.0;
  /// Restore-attempt budget and backoff shape (base * 2^attempt, capped,
  /// with deterministic seeded jitter in [0.5, 1.5)).
  int max_restores = 5;
  double restore_backoff_base_ms = 1.0;
  double restore_backoff_cap_ms = 50.0;
  /// Replacement workers the supervisor may spawn before degrading
  /// gracefully to a smaller fleet.
  int max_replacements = 64;
};

struct AsyncTrainerOptions {
  int num_workers = 8;
  uint64_t batch_size = 128;
  uint64_t total_batches = 2000;
  double learning_rate = 0.1;
  uint64_t shard_batches = 16;
  ExecMode exec_mode = ExecMode::kTicks;
  /// kThreads only: pool size; 0 = one thread per initial worker.
  int num_threads = 0;
  /// kThreads only: per-batch stall injected into stragglers,
  /// microseconds at speed 1.0 (scaled by 1/speed for the victim).
  int straggler_stall_us = 200;
  /// kDynamicSharding consumes via a ShardQueue with exactly-once
  /// semantics; kStaticPartition emulates the conventional frameworks the
  /// paper criticizes — elastic events re-partition naively, duplicating
  /// already-trained batches, and crashes skip in-flight data.
  DataMode data_mode = DataMode::kDynamicSharding;
  std::vector<ElasticEvent> events;
  uint64_t eval_every_batches = 250;
  /// Test set: indices [eval_start, eval_start + eval_size), disjoint from
  /// the training range (the paper holds out 10% of Criteo).
  uint64_t eval_start = 50'000'000;
  uint64_t eval_size = 4096;
  uint64_t seed = 11;
  /// kThreads only: fault-tolerance supervisor (see FaultToleranceOptions).
  FaultToleranceOptions fault_tolerance;
  /// kThreads only: deterministic fault injector, not owned. Faults fire at
  /// their scheduled committed-batch counts; nullptr disables chaos.
  ChaosInjector* chaos = nullptr;
  /// kThreads only: wall-clock slice for ShardQueue::WaitNextShardFor. A
  /// worker whose wait deadline expires re-checks its control flags and
  /// retries, so nobody blocks forever behind a dead shard holder.
  double shard_wait_timeout_ms = 20.0;
  /// kThreads only: consecutive expired waits before a worker gives up and
  /// exits (how an unsupervised fleet avoids hanging when a crashed worker
  /// took the last outstanding shard to its grave). 0 = auto: unlimited
  /// normally, 40 when chaos is injected without the fault-tolerance
  /// supervisor.
  int give_up_deadline_strikes = 0;
  /// kThreads only: after the fleet exits, train whatever the queue still
  /// holds inline (the legacy guarantee that every run completes). The
  /// fault-tolerance bench disables this on its unprotected arm so lost
  /// batches stay lost, Table-4 style.
  bool drain_remainder = true;
};

struct EvalPoint {
  uint64_t batches = 0;
  double test_logloss = 0.0;
  double test_auc = 0.0;
};

/// What the fault-tolerance supervisor did during a threaded run.
struct FaultToleranceStats {
  uint64_t checkpoints_taken = 0;
  uint64_t checkpoint_writes_failed = 0;  // bit-flip corruption (chaos)
  uint64_t checkpoint_writes_torn = 0;    // truncated mid-stream (chaos)
  uint64_t restores = 0;
  uint64_t batches_rolled_back = 0;  // committed work redone after restores
  uint64_t workers_fenced = 0;
  uint64_t workers_replaced = 0;
  uint64_t shards_reclaimed = 0;
  uint64_t lost_reports_reaped = 0;
  uint64_t stalls_injected = 0;
  uint64_t degraded_exits = 0;  // workers lost without a replacement
};

/// Wall-clock seconds spent in each phase of the training hot loop,
/// accumulated across workers (a perfectly parallel 4-thread run therefore
/// shows ~4x the per-phase time of its critical path). Cheap enough to stay
/// on unconditionally: two steady_clock reads per phase per batch, ~100ns
/// against multi-millisecond batches.
struct PhaseBreakdown {
  double pull_s = 0.0;         // data gen + dense snapshot + sparse gather
  double compute_s = 0.0;      // forward/backward
  double push_s = 0.0;         // gradient application (dense + sharded sparse)
  double commit_wait_s = 0.0;  // acquiring the shared commit gate
  double lock_wait_s = 0.0;    // state_mu acquisition + commit bookkeeping
  double queue_wait_s = 0.0;   // blocked on the shard queue
  uint64_t batches = 0;        // batches these timings cover

  void Merge(const PhaseBreakdown& other);
  /// Total in-batch time (excludes waiting for the shard queue).
  double BusySeconds() const {
    return pull_s + compute_s + push_s + commit_wait_s + lock_wait_s;
  }
};

struct TrainResult {
  std::vector<EvalPoint> curve;
  uint64_t batches_committed = 0;
  uint64_t batches_duplicated = 0;  // trained more than once (static mode)
  uint64_t batches_skipped = 0;     // never trained (static-mode crashes)
  double final_logloss = 0.0;
  double final_auc = 0.0;
  /// Histogram sanity: per-batch training multiplicity (tests assert
  /// all-ones under dynamic sharding).
  std::vector<uint8_t> times_trained;
  /// Supervisor activity (zeros unless fault_tolerance.enabled).
  FaultToleranceStats ft;
  /// Per-phase time accounting (all workers merged; both exec modes).
  PhaseBreakdown phases;
};

/// Trains a MiniDlrm with asynchronous parameter-server semantics:
/// each logical worker pulls a parameter snapshot, computes gradients for
/// one batch over several ticks (slow workers take longer, so their
/// gradients are staler), and pushes the update. Data is served through
/// DLRover's dynamic data sharding or a conventional static partitioning,
/// with scripted elastic/instability events — this is the machinery behind
/// the Fig 8 "elasticity preserves convergence" experiment.
///
/// ExecMode::kThreads swaps the tick simulation for real pool threads
/// (dynamic sharding only); elastic events still fire at their committed
/// batch counts, implemented as stop/crash flags the workers observe at
/// batch boundaries.
class AsyncPsTrainer {
 public:
  AsyncPsTrainer(MiniDlrm* model, const CriteoSynth* data,
                 const AsyncTrainerOptions& options);

  TrainResult Run();

 private:
  struct Worker {
    int id = 0;
    bool active = true;
    double speed = 1.0;
    double progress = 0.0;  // accumulated ticks toward the current batch
    std::optional<DataShard> shard;
    uint64_t shard_pos = 0;  // batches completed within the shard
    std::optional<ParamSnapshot> snapshot;
    std::optional<CriteoBatch> batch;
    uint64_t batch_index = 0;
    // Static-partition mode: strided ownership (worker trains batches
    // cursor, cursor+stride, ... — how file-sharded input pipelines split a
    // time-ordered log). stride == 0 means no assignment.
    uint64_t part_cursor = 0;
    uint64_t part_stride = 0;
  };

  /// Shared state + logic of the threaded execution mode (defined in the
  /// .cc): worker control blocks, the in-flight shard registry, the commit
  /// gate and the fault-tolerance supervisor.
  struct ThreadRuntime;

  bool FetchWork(Worker& worker);
  void StartBatch(Worker& worker, uint64_t batch_index);
  void FinishBatch(Worker& worker);
  void FireEvents();
  void Evaluate(TrainResult* result);
  void RepartitionStatic();
  TrainResult RunTicks();
  TrainResult RunThreads();

  MiniDlrm* model_;
  const CriteoSynth* data_;
  AsyncTrainerOptions options_;
  Rng rng_;
  std::vector<Worker> workers_;
  std::unique_ptr<ShardQueue> queue_;
  uint64_t committed_ = 0;
  size_t next_event_ = 0;
  int next_worker_id_ = 0;
  TrainResult result_;
  CriteoBatch eval_batch_;
  std::vector<float> eval_labels_;
};

}  // namespace dlrover

#endif  // DLROVER_DLRM_ASYNC_TRAINER_H_
