#ifndef DLROVER_DLRM_CRITEO_SYNTH_H_
#define DLROVER_DLRM_CRITEO_SYNTH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dlrover {

/// One Criteo-style sample: 13 continuous features, 26 categorical ids,
/// binary click label.
struct CriteoSample {
  std::vector<float> dense;     // size kNumDense
  std::vector<uint64_t> cats;   // size kNumCategorical, raw ids
  float label = 0.0f;
};

struct CriteoBatch {
  std::vector<CriteoSample> samples;
  size_t size() const { return samples.size(); }
};

/// Synthetic Criteo-like CTR data (substitute for the Kaggle dataset, per
/// DESIGN.md). Key properties preserved for the Fig 8 experiment:
///   - 13 dense + 26 categorical features, power-law (Zipf) id frequencies
///     with per-feature vocabularies, like real CTR logs;
///   - labels from a planted logistic teacher over dense features, per-id
///     biases, and a few pairwise interactions, so models can genuinely
///     learn and test logloss/AUC measure that learning;
///   - fully deterministic addressing: sample #i is a pure function of
///     (seed, i). Data shards reference index ranges, so exactly-once
///     consumption is testable end to end and independent of which worker
///     processes which shard.
class CriteoSynth {
 public:
  static constexpr int kNumDense = 13;
  static constexpr int kNumCategorical = 26;

  /// `drift_samples` > 0 enables temporal concept drift: the teacher's
  /// per-id effects rotate over the sample index with that horizon, as CTR
  /// distributions do in production. Under drift, the most recent training
  /// data is the most predictive of a held-out *future* window — which is
  /// why losing a straggler's late batches (naive elasticity) costs
  /// accuracy while exactly-once sharding does not.
  explicit CriteoSynth(uint64_t seed, double drift_samples = 0.0);

  /// Deterministically materializes sample #index.
  CriteoSample Sample(uint64_t index) const;

  /// Materializes samples [start, start + count).
  CriteoBatch Batch(uint64_t start, uint64_t count) const;

  /// In-place variants for the training hot loop: identical values to
  /// Sample/Batch, but reusing the caller's buffers — once `out` has been
  /// filled at this size, refills perform zero heap allocations.
  void FillSample(uint64_t index, CriteoSample* out) const;
  void FillBatch(uint64_t start, uint64_t count, CriteoBatch* out) const;

  /// Vocabulary size of categorical feature `f`.
  uint64_t VocabSize(int f) const { return vocab_sizes_[f]; }

  /// The teacher's Bayes-optimal click probability for sample #index.
  double TeacherProbability(const CriteoSample& sample,
                            uint64_t index = 0) const;

 private:
  double TeacherLogit(const CriteoSample& sample, uint64_t index) const;

  uint64_t seed_;
  double drift_samples_;
  std::vector<uint64_t> vocab_sizes_;
  std::vector<double> zipf_exponents_;
  // Teacher parameters (fixed at construction from the seed).
  std::vector<double> teacher_dense_w_;
  std::vector<double> teacher_cat_scale_;
  double teacher_bias_;
};

}  // namespace dlrover

#endif  // DLROVER_DLRM_CRITEO_SYNTH_H_
