#ifndef DLROVER_DLRM_METRICS_H_
#define DLROVER_DLRM_METRICS_H_

#include <vector>

namespace dlrover {

/// Area under the ROC curve via the rank statistic (ties get midranks).
/// Returns 0.5 when either class is absent.
double Auc(const std::vector<double>& scores,
           const std::vector<float>& labels);

/// Mean binary cross-entropy of probabilities against labels.
double LogLoss(const std::vector<double>& probs,
               const std::vector<float>& labels);

}  // namespace dlrover

#endif  // DLROVER_DLRM_METRICS_H_
