#include "dlrm/model_checkpoint.h"

#include <cstring>
#include <utility>

namespace dlrover {

namespace {

/// splitmix64 finalizer: the avalanche step used across the codebase for
/// deterministic hashing (EmbStore row init, Rng seeding).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

struct ChecksumFold {
  uint64_t state = 0x5851f42d4c957f2dull;

  void U64(uint64_t v) { state = Mix(state ^ v); }

  void F64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  void U64s(const std::vector<uint64_t>& vs) {
    U64(vs.size());
    for (uint64_t v : vs) U64(v);
  }

  void F64s(const std::vector<double>& vs) {
    U64(vs.size());
    for (double v : vs) F64(v);
  }
};

}  // namespace

uint64_t CheckpointVault::Checksum(const ModelCheckpoint& ckpt) {
  ChecksumFold fold;
  fold.U64(ckpt.format_version);
  fold.U64(ckpt.committed_batches);
  fold.U64(ckpt.batches_duplicated);
  fold.F64s(ckpt.model.dense);
  fold.U64s(ckpt.model.sparse.emb_keys);
  fold.F64s(ckpt.model.sparse.emb_values);
  fold.U64s(ckpt.model.sparse.wide_keys);
  fold.F64s(ckpt.model.sparse.wide_values);
  fold.U64(ckpt.queue.cursor);
  fold.U64(ckpt.queue.completed_batches);
  fold.U64(ckpt.queue.pending.size());
  for (const DataShard& shard : ckpt.queue.pending) {
    fold.U64(shard.start_batch);
    fold.U64(shard.end_batch);
  }
  fold.U64(ckpt.times_trained.size());
  for (uint8_t t : ckpt.times_trained) fold.U64(t);
  return fold.state;
}

bool CheckpointVault::Verify(const ModelCheckpoint& ckpt) {
  return ckpt.format_version == 1 && Checksum(ckpt) == ckpt.checksum;
}

CheckpointVault::CheckpointVault(size_t keep) : keep_(keep == 0 ? 1 : keep) {}

uint64_t CheckpointVault::Store(ModelCheckpoint ckpt) {
  ckpt.generation = next_generation_++;
  const uint64_t generation = ckpt.generation;
  ring_.push_back(std::move(ckpt));
  while (ring_.size() > keep_) ring_.pop_front();
  return generation;
}

uint64_t CheckpointVault::Commit(ModelCheckpoint ckpt) {
  ckpt.checksum = Checksum(ckpt);
  return Store(std::move(ckpt));
}

uint64_t CheckpointVault::CommitCorrupted(ModelCheckpoint ckpt) {
  ckpt.checksum = Checksum(ckpt);
  // Damage the payload after checksumming — a torn write. Prefer a dense
  // weight; fall back to the batch counter for empty models.
  if (!ckpt.model.dense.empty()) {
    ckpt.model.dense[ckpt.model.dense.size() / 2] += 1.0;
  } else {
    ckpt.committed_batches ^= 1;
  }
  return Store(std::move(ckpt));
}

uint64_t CheckpointVault::CommitTruncated(ModelCheckpoint ckpt) {
  ckpt.checksum = Checksum(ckpt);
  // Cut the write short after checksumming: drop the tail of the largest
  // payload stream. The checksum folds vector lengths, so any truncation is
  // detected. Fall back to the batch counter for fully empty payloads.
  if (!ckpt.model.sparse.emb_values.empty()) {
    ckpt.model.sparse.emb_values.resize(ckpt.model.sparse.emb_values.size() /
                                        2);
  } else if (!ckpt.model.dense.empty()) {
    ckpt.model.dense.resize(ckpt.model.dense.size() / 2);
  } else if (!ckpt.times_trained.empty()) {
    ckpt.times_trained.resize(ckpt.times_trained.size() / 2);
  } else {
    ckpt.committed_batches ^= 1;
  }
  return Store(std::move(ckpt));
}

const ModelCheckpoint* CheckpointVault::LatestValid() const {
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (Verify(*it)) return &*it;
  }
  return nullptr;
}

}  // namespace dlrover
