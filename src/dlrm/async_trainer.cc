#include "dlrm/async_trainer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "dlrm/metrics.h"
#include "dlrm/model_checkpoint.h"
#include "elastic/chaos.h"
#include "elastic/heartbeat.h"
#include "runtime/thread_pool.h"

namespace dlrover {

namespace {

using PhaseClock = std::chrono::steady_clock;

double SecondsSince(PhaseClock::time_point t0) {
  return std::chrono::duration<double>(PhaseClock::now() - t0).count();
}

}  // namespace

void PhaseBreakdown::Merge(const PhaseBreakdown& other) {
  pull_s += other.pull_s;
  compute_s += other.compute_s;
  push_s += other.push_s;
  commit_wait_s += other.commit_wait_s;
  lock_wait_s += other.lock_wait_s;
  queue_wait_s += other.queue_wait_s;
  batches += other.batches;
}

AsyncPsTrainer::AsyncPsTrainer(MiniDlrm* model, const CriteoSynth* data,
                               const AsyncTrainerOptions& options)
    : model_(model), data_(data), options_(options), rng_(options.seed) {
  result_.times_trained.assign(options_.total_batches, 0);
  if (options_.data_mode == DataMode::kDynamicSharding) {
    ShardQueueOptions qopts;
    qopts.total_batches = options_.total_batches;
    qopts.default_shard_batches = options_.shard_batches;
    qopts.min_shard_batches = std::max<uint64_t>(1, options_.shard_batches / 8);
    queue_ = std::make_unique<ShardQueue>(qopts);
  }
  for (int i = 0; i < options_.num_workers; ++i) {
    Worker w;
    w.id = next_worker_id_++;
    workers_.push_back(std::move(w));
  }
  if (options_.data_mode == DataMode::kStaticPartition) RepartitionStatic();

  eval_batch_ = data_->Batch(options_.eval_start, options_.eval_size);
  eval_labels_.reserve(eval_batch_.size());
  for (const auto& s : eval_batch_.samples) eval_labels_.push_back(s.label);

  // Sort events so FireEvents can walk them with a cursor.
  std::sort(options_.events.begin(), options_.events.end(),
            [](const ElasticEvent& a, const ElasticEvent& b) {
              return a.at_batches < b.at_batches;
            });
}

void AsyncPsTrainer::RepartitionStatic() {
  // Naive re-partitioning, as conventional frameworks do on scale events:
  // training resumes from the *global step counter* and the remaining data
  // is re-split from there. Scattered batches below that offset that were
  // never trained (a straggler's backlog, in-flight work) are silently
  // lost, and batches above it that were already trained get trained again
  // — the "disrupted data sequence" of paper Section 2.2.
  std::vector<Worker*> active;
  for (Worker& w : workers_) {
    if (w.active) active.push_back(&w);
  }
  if (active.empty()) return;
  const uint64_t start = std::min(committed_, options_.total_batches);
  for (size_t i = 0; i < active.size(); ++i) {
    Worker* w = active[i];
    w->part_cursor = start + i;
    w->part_stride = active.size();
    w->shard.reset();
    w->batch.reset();
    w->snapshot.reset();
    w->progress = 0.0;
  }
}

bool AsyncPsTrainer::FetchWork(Worker& worker) {
  if (options_.data_mode == DataMode::kDynamicSharding) {
    if (!worker.shard.has_value() ||
        worker.shard_pos >= worker.shard->batches()) {
      if (worker.shard.has_value()) {
        const Status s = queue_->ReportCompleted(*worker.shard);
        assert(s.ok());
        (void)s;
        worker.shard.reset();
      }
      auto shard = queue_->NextShard();
      if (!shard.ok()) return false;
      worker.shard = *shard;
      worker.shard_pos = 0;
    }
    StartBatch(worker, worker.shard->start_batch + worker.shard_pos);
    return true;
  }
  if (worker.part_stride == 0 ||
      worker.part_cursor >= options_.total_batches) {
    return false;
  }
  StartBatch(worker, worker.part_cursor);
  return true;
}

void AsyncPsTrainer::StartBatch(Worker& worker, uint64_t batch_index) {
  const auto t0 = PhaseClock::now();
  worker.batch_index = batch_index;
  worker.batch = data_->Batch(batch_index * options_.batch_size,
                              options_.batch_size);
  // Pull: the parameters this gradient will be computed against. Slow
  // workers take many ticks to finish, so by push time this is stale.
  worker.snapshot = model_->TakeSnapshot(*worker.batch);
  result_.phases.pull_s += SecondsSince(t0);
}

void AsyncPsTrainer::FinishBatch(Worker& worker) {
  const auto compute_t0 = PhaseClock::now();
  DlrmGradients grads;
  model_->ForwardBackward(*worker.batch, *worker.snapshot, &grads);
  const auto push_t0 = PhaseClock::now();
  result_.phases.compute_s +=
      std::chrono::duration<double>(push_t0 - compute_t0).count();
  model_->ApplyGradients(grads, options_.learning_rate);
  result_.phases.push_s += SecondsSince(push_t0);
  ++result_.phases.batches;

  if (worker.batch_index < result_.times_trained.size()) {
    uint8_t& times = result_.times_trained[worker.batch_index];
    if (times < 255) ++times;
    if (times > 1) ++result_.batches_duplicated;
  }
  ++committed_;
  if (options_.data_mode == DataMode::kDynamicSharding) {
    ++worker.shard_pos;
  } else {
    worker.part_cursor += worker.part_stride;
  }
  worker.batch.reset();
  worker.snapshot.reset();
}

void AsyncPsTrainer::FireEvents() {
  while (next_event_ < options_.events.size() &&
         options_.events[next_event_].at_batches <= committed_) {
    const ElasticEvent& event = options_.events[next_event_++];
    switch (event.kind) {
      case ElasticEvent::Kind::kAddWorkers: {
        for (int i = 0; i < event.count; ++i) {
          Worker w;
          w.id = next_worker_id_++;
          workers_.push_back(std::move(w));
        }
        if (options_.data_mode == DataMode::kStaticPartition) {
          RepartitionStatic();
        }
        break;
      }
      case ElasticEvent::Kind::kRemoveWorkers: {
        int removed = 0;
        for (auto it = workers_.rbegin();
             it != workers_.rend() && removed < event.count; ++it) {
          if (!it->active) continue;
          it->active = false;
          if (options_.data_mode == DataMode::kDynamicSharding &&
              it->shard.has_value()) {
            // Exactly-once: return the unfinished remainder to the queue.
            const Status s =
                queue_->ReportFailed(*it->shard, it->shard_pos);
            assert(s.ok());
            (void)s;
            it->shard.reset();
          }
          ++removed;
        }
        if (options_.data_mode == DataMode::kStaticPartition) {
          RepartitionStatic();
        }
        break;
      }
      case ElasticEvent::Kind::kCrashWorker: {
        for (Worker& w : workers_) {
          if (!w.active || w.speed < 1.0) continue;  // crash a healthy one
          w.active = false;
          if (options_.data_mode == DataMode::kDynamicSharding) {
            if (w.shard.has_value()) {
              const Status s = queue_->ReportFailed(*w.shard, w.shard_pos);
              assert(s.ok());
              (void)s;
            }
          } else {
            // Conventional frameworks lose the crashed worker's in-flight
            // window (the paper's "workers might miss specific data
            // batches"): the replacement resumes past the prefetch buffer.
            w.part_cursor += w.part_stride * options_.shard_batches / 4;
          }
          // Replacement worker joins.
          Worker fresh;
          fresh.id = next_worker_id_++;
          if (options_.data_mode == DataMode::kStaticPartition) {
            fresh.part_cursor = w.part_cursor;
            fresh.part_stride = w.part_stride;
            w.part_cursor = 0;
            w.part_stride = 0;
          }
          workers_.push_back(std::move(fresh));
          break;
        }
        break;
      }
      case ElasticEvent::Kind::kMakeStraggler: {
        for (Worker& w : workers_) {
          if (w.active && w.speed >= 1.0) {
            w.speed = event.speed;
            break;
          }
        }
        break;
      }
    }
  }
}

void AsyncPsTrainer::Evaluate(TrainResult* result) {
  const std::vector<double> probs = model_->Predict(eval_batch_);
  EvalPoint point;
  point.batches = committed_;
  point.test_logloss = LogLoss(probs, eval_labels_);
  point.test_auc = Auc(probs, eval_labels_);
  result->curve.push_back(point);
}

TrainResult AsyncPsTrainer::Run() {
  if (options_.exec_mode == ExecMode::kThreads) {
    if (options_.data_mode != DataMode::kDynamicSharding) {
      DLROVER_LOG_STREAM(Warning)
          << "kThreads requires dynamic sharding; falling back to kTicks";
    } else {
      return RunThreads();
    }
  }
  return RunTicks();
}

TrainResult AsyncPsTrainer::RunTicks() {
  uint64_t last_eval = 0;
  Evaluate(&result_);

  auto work_remains = [&]() {
    if (options_.data_mode == DataMode::kDynamicSharding) {
      return !queue_->AllDone();
    }
    for (const Worker& w : workers_) {
      if (w.active && w.part_stride > 0 &&
          w.part_cursor < options_.total_batches) {
        return true;
      }
    }
    return false;
  };

  // Tick loop: each tick every active worker advances by `speed`; one unit
  // of progress completes one batch.
  uint64_t guard = 0;
  const uint64_t max_ticks = options_.total_batches * 2000;
  while (work_remains() && guard++ < max_ticks) {
    bool anyone_working = false;
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      if (!w.active) continue;
      if (!w.batch.has_value()) {
        if (!FetchWork(w)) continue;
      }
      anyone_working = true;
      w.progress += w.speed;
      if (w.progress >= 1.0) {
        w.progress -= 1.0;
        FinishBatch(w);
        FireEvents();
        if (committed_ - last_eval >= options_.eval_every_batches) {
          last_eval = committed_;
          Evaluate(&result_);
        }
      }
    }
    if (!anyone_working) break;  // stranded data (static-mode skips)
  }

  Evaluate(&result_);
  result_.batches_committed = committed_;
  // Ground-truth data accounting from the multiplicity histogram.
  uint64_t never_trained = 0;
  for (uint8_t times : result_.times_trained) {
    if (times == 0) ++never_trained;
  }
  result_.batches_skipped = never_trained;
  result_.final_logloss = result_.curve.back().test_logloss;
  result_.final_auc = result_.curve.back().test_auc;
  return std::move(result_);
}

/// Shared state and logic of ExecMode::kThreads. One instance lives on the
/// stack of RunThreads for the duration of a run; worker tasks and the
/// fault-tolerance supervisor all operate through it.
///
/// Locking order (outer to inner): commit_gate -> state_mu -> queue mutex.
/// Workers hold commit_gate shared around their push+commit critical
/// section; the supervisor holds it exclusive while fencing a worker,
/// checkpointing, or restoring — so a checkpoint is a true quiescent cut
/// and a fenced worker can never slip one more update in after its shard
/// was reclaimed.
struct AsyncPsTrainer::ThreadRuntime {
  /// Per-worker control block. Elastic events and chaos faults cannot
  /// preempt a real thread mid-batch; they set flags the worker observes
  /// at batch boundaries, which is also how real PS workers drain.
  struct WorkerCtl {
    int id = 0;
    std::atomic<bool> stop{false};   // graceful scale-in: requeue + exit
    std::atomic<bool> crash{false};  // scripted failure: requeue + exit
    /// Chaos crash: dies without reporting anything; the supervisor (or
    /// the end-of-run reclaim) must recover its shard.
    std::atomic<bool> hard_crash{false};
    /// The supervisor declared this worker dead and reclaimed its shard;
    /// any in-flight update must be dropped, never committed.
    std::atomic<bool> fenced{false};
    /// Chaos stall: alive but silent until fenced.
    std::atomic<bool> stalled{false};
    std::atomic<int> stall_us{0};  // straggler injection per batch
    std::atomic<bool> exited{false};
    /// End-of-run drain worker: chaos must skip it or a fault could keep
    /// the run from ever terminating.
    std::atomic<bool> immune{false};
    std::atomic<uint64_t> beats{0};        // committed batches (progress)
    std::atomic<double> last_beat_s{0.0};  // runtime clock of last commit
    bool monitored = false;                // under state_mu
  };

  /// Registry of dispatched-but-unreported shards: who holds what, and how
  /// much is already reflected in committed state. This is what lets the
  /// supervisor reclaim a dead worker's shard with the exact processed
  /// prefix, and what makes checkpoints consistent with out-of-order shard
  /// completion.
  struct InFlight {
    uint64_t shard_index = 0;
    DataShard shard;
    int owner = 0;
    uint64_t epoch = 0;
    uint64_t processed = 0;
    bool finished = false;  // fully processed; completion report was lost
  };

  AsyncPsTrainer* t;
  const AsyncTrainerOptions& opts;
  ChaosInjector* chaos;
  const bool ft;
  ThreadPool pool;

  // state_mu guards committed_, result_, next_event_, ctls, futures,
  // inflight, monitor and last_eval. Everything inside is O(1)-ish
  // bookkeeping; the expensive pull/compute/push runs outside the lock.
  std::mutex state_mu;
  std::shared_mutex commit_gate;
  std::vector<std::shared_ptr<WorkerCtl>> ctls;
  std::vector<std::future<void>> futures;
  std::vector<InFlight> inflight;
  uint64_t last_eval = 0;
  std::atomic<uint64_t> committed_approx{0};
  /// Bumped on every restore. A worker may commit only under the epoch it
  /// acquired its shard in, so shards rolled back by a restore are
  /// abandoned instead of double-trained.
  std::atomic<uint64_t> epoch{0};

  // Fault-tolerance machinery (constructed always, inert unless ft).
  CheckpointVault vault;
  HeartbeatMonitor monitor;
  FaultToleranceStats stats;
  Rng backoff_rng;
  int replacements_done = 0;
  int restore_attempts = 0;
  std::thread supervisor;
  std::atomic<bool> supervisor_stop{false};
  const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();

  explicit ThreadRuntime(AsyncPsTrainer* trainer)
      : t(trainer),
        opts(trainer->options_),
        chaos(trainer->options_.chaos),
        ft(trainer->options_.fault_tolerance.enabled),
        pool(trainer->options_.num_threads > 0
                 ? static_cast<size_t>(trainer->options_.num_threads)
                 : static_cast<size_t>(
                       std::max(1, trainer->options_.num_workers))),
        vault(trainer->options_.fault_tolerance.keep_checkpoints),
        monitor(MonitorOptions(trainer->options_)),
        backoff_rng(trainer->options_.seed ^ 0xb0ffull) {}

  static HeartbeatMonitorOptions MonitorOptions(const AsyncTrainerOptions& o) {
    HeartbeatMonitorOptions m;
    m.failure_timeout = o.fault_tolerance.heartbeat_timeout_ms / 1000.0;
    m.min_observation = 0.0;
    return m;
  }

  double NowSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  bool ChaosTake(const WorkerCtl& ctl, ChaosFaultKind kind) {
    return chaos != nullptr && !ctl.immune.load() &&
           chaos->Take(kind, committed_approx.load());
  }

  int EffectiveStrikes() const {
    if (opts.give_up_deadline_strikes > 0) return opts.give_up_deadline_strikes;
    // Chaos without a supervisor can strand shards forever; an unprotected
    // fleet must eventually give up instead of hanging the run.
    if (chaos != nullptr && !ft) return 40;
    return 0;  // never give up
  }

  std::shared_ptr<WorkerCtl> SpawnWorkerLocked() {
    auto ctl = std::make_shared<WorkerCtl>();
    ctl->id = t->next_worker_id_++;
    ctl->last_beat_s.store(NowSeconds());
    ctls.push_back(ctl);
    if (ft) {
      monitor.AddMember(static_cast<uint64_t>(ctl->id), NowSeconds());
      ctl->monitored = true;
    }
    futures.push_back(pool.Submit([this, ctl]() { WorkerLoop(ctl); }));
    return ctl;
  }

  void FireEventsLocked() {
    while (t->next_event_ < opts.events.size() &&
           opts.events[t->next_event_].at_batches <= t->committed_) {
      const ElasticEvent& event = opts.events[t->next_event_++];
      switch (event.kind) {
        case ElasticEvent::Kind::kAddWorkers: {
          for (int i = 0; i < event.count; ++i) SpawnWorkerLocked();
          break;
        }
        case ElasticEvent::Kind::kRemoveWorkers: {
          int removed = 0;
          for (auto it = ctls.rbegin();
               it != ctls.rend() && removed < event.count; ++it) {
            WorkerCtl& c = **it;
            if (c.stop.load() || c.crash.load()) continue;
            c.stop.store(true);
            ++removed;
          }
          break;
        }
        case ElasticEvent::Kind::kCrashWorker: {
          for (const auto& c : ctls) {
            if (c->stop.load() || c->crash.load() || c->stall_us.load() > 0) {
              continue;  // crash a healthy worker, as in tick mode
            }
            c->crash.store(true);
            SpawnWorkerLocked();  // replacement joins via the queue
            break;
          }
          break;
        }
        case ElasticEvent::Kind::kMakeStraggler: {
          for (const auto& c : ctls) {
            if (c->stop.load() || c->crash.load() || c->stall_us.load() > 0) {
              continue;
            }
            const double speed = std::max(event.speed, 1e-3);
            c->stall_us.store(
                static_cast<int>(opts.straggler_stall_us / speed));
            break;
          }
          break;
        }
      }
    }
  }

  /// Registers a freshly acquired shard. Fails when a restore happened
  /// since `my_epoch` was read — the caller must hand the shard back (a
  /// stale index bounces off the queue harmlessly) and retry.
  bool RegisterShard(const WorkerCtl& ctl, const DataShard& shard,
                     uint64_t my_epoch) {
    std::lock_guard<std::mutex> lock(state_mu);
    if (epoch.load() != my_epoch) return false;
    InFlight entry;
    entry.shard_index = shard.index;
    entry.shard = shard;
    entry.owner = ctl.id;
    entry.epoch = my_epoch;
    inflight.push_back(entry);
    return true;
  }

  void UnregisterShard(uint64_t shard_index) {
    std::lock_guard<std::mutex> lock(state_mu);
    for (auto it = inflight.begin(); it != inflight.end(); ++it) {
      if (it->shard_index == shard_index) {
        inflight.erase(it);
        return;
      }
    }
  }

  void MarkFinishedUnreported(uint64_t shard_index) {
    std::lock_guard<std::mutex> lock(state_mu);
    for (InFlight& entry : inflight) {
      if (entry.shard_index == shard_index) {
        entry.finished = true;
        return;
      }
    }
  }

  /// Push + commit under the shared gate. Returns false when the worker is
  /// fenced or its epoch is stale: the update is dropped and the caller
  /// abandons the shard (the supervisor owns its fate now). The push itself
  /// is the worker's private accumulators merging into the live model
  /// (dense axpy under the model's write lock, sharded sparse scatter) —
  /// the gate is held shared, so pushes from different workers overlap.
  bool CommitBatch(WorkerCtl& ctl, const DataShard& shard, uint64_t my_epoch,
                   uint64_t batch_index, DlrmBatchWork* work,
                   PhaseBreakdown* ph, bool* crash_after_push) {
    bool do_eval = false;
    uint64_t eval_at = 0;
    {
      const auto gate_t0 = PhaseClock::now();
      std::shared_lock<std::shared_mutex> gate(commit_gate);
      if (ctl.fenced.load() || epoch.load() != my_epoch) return false;
      const auto push_t0 = PhaseClock::now();
      ph->commit_wait_s +=
          std::chrono::duration<double>(push_t0 - gate_t0).count();
      t->model_->PushBatch(work, opts.learning_rate);
      const auto lock_t0 = PhaseClock::now();
      ph->push_s += std::chrono::duration<double>(lock_t0 - push_t0).count();
      uint64_t now_committed = 0;
      {
        std::lock_guard<std::mutex> lock(state_mu);
        if (batch_index < t->result_.times_trained.size()) {
          uint8_t& times = t->result_.times_trained[batch_index];
          if (times < 255) ++times;
          if (times > 1) ++t->result_.batches_duplicated;
        }
        ++t->committed_;
        now_committed = t->committed_;
        committed_approx.store(now_committed);
        for (InFlight& entry : inflight) {
          if (entry.shard_index == shard.index) {
            ++entry.processed;
            break;
          }
        }
        ctl.beats.fetch_add(1);
        ctl.last_beat_s.store(NowSeconds());
        FireEventsLocked();
        if (t->committed_ - last_eval >= opts.eval_every_batches) {
          last_eval = t->committed_;
          eval_at = t->committed_;
          do_eval = true;
        }
      }
      ph->lock_wait_s += SecondsSince(lock_t0);
      ++ph->batches;
      // Crash-after-push: the batch is committed (and must not be redone);
      // the worker dies before it can ever report the shard.
      if (chaos != nullptr && !ctl.immune.load() &&
          chaos->Take(ChaosFaultKind::kCrashAfterPush, now_committed)) {
        *crash_after_push = true;
      }
    }
    if (do_eval) {
      // Predict is thread-safe; only the curve append needs the lock.
      const std::vector<double> probs = t->model_->Predict(t->eval_batch_);
      EvalPoint point;
      point.batches = eval_at;
      point.test_logloss = LogLoss(probs, t->eval_labels_);
      point.test_auc = Auc(probs, t->eval_labels_);
      std::lock_guard<std::mutex> lock(state_mu);
      t->result_.curve.push_back(point);
    }
    return true;
  }

  void WorkerLoop(std::shared_ptr<WorkerCtl> ctl) {
    const double wait_s = std::max(1.0, opts.shard_wait_timeout_ms) / 1000.0;
    const int max_strikes = EffectiveStrikes();
    int strikes = 0;
    // Everything one batch needs lives in this per-worker workspace; after
    // the first few batches warm its buffers the loop is allocation-free
    // (pinned by alloc_guard_test).
    DlrmBatchWork work;
    PhaseBreakdown ph;
    while (!ctl->stop.load() && !ctl->crash.load() &&
           !ctl->hard_crash.load() && !ctl->fenced.load()) {
      const uint64_t my_epoch = epoch.load();
      const auto wait_t0 = PhaseClock::now();
      auto shard_or = t->queue_->WaitNextShardFor(wait_s);
      ph.queue_wait_s += SecondsSince(wait_t0);
      if (shard_or.status().code() == StatusCode::kDeadlineExceeded) {
        if (max_strikes > 0 && ++strikes >= max_strikes) break;
        continue;  // re-check control flags, then wait again
      }
      if (!shard_or.ok()) break;  // terminal: nothing can be served again
      strikes = 0;
      const DataShard shard = *shard_or;
      if (!RegisterShard(*ctl, shard, my_epoch)) {
        // A restore slipped between the epoch read and the dispatch. If the
        // shard came from the restored queue it goes straight back intact;
        // if it predates the restore its index is already retired.
        const Status s = t->queue_->ReportFailed(shard, 0);
        (void)s;
        continue;
      }
      uint64_t pos = 0;
      bool aborted = false;    // graceful: self-report the prefix
      bool abandoned = false;  // fenced/hard-crash: report nothing
      bool stale = false;      // a restore retired this shard mid-flight
      for (; pos < shard.batches(); ++pos) {
        while (ctl->stalled.load() && !ctl->fenced.load() &&
               !ctl->stop.load() && !ctl->crash.load() &&
               !ctl->hard_crash.load()) {
          // Heartbeat silence: alive, making no progress. Only the
          // supervisor's fence (or shutdown) releases the worker.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        if (ctl->stop.load() || ctl->crash.load()) {
          aborted = true;
          break;
        }
        if (ctl->hard_crash.load() || ctl->fenced.load()) {
          abandoned = true;
          break;
        }
        const uint64_t batch_index = shard.start_batch + pos;
        // Pull -> compute -> push with real staleness: other workers push
        // between this pull and this worker's push. All three stages run
        // against the reusable workspace, entirely outside the trainer's
        // locks — the only shared state touched here is the model's
        // read-locked dense block and the store's per-stripe gathers.
        const auto pull_t0 = PhaseClock::now();
        t->data_->FillBatch(batch_index * opts.batch_size, opts.batch_size,
                            &work.batch);
        t->model_->PullBatch(&work);
        const auto compute_t0 = PhaseClock::now();
        ph.pull_s +=
            std::chrono::duration<double>(compute_t0 - pull_t0).count();
        t->model_->ComputeBatch(&work);
        ph.compute_s += SecondsSince(compute_t0);
        const int stall = ctl->stall_us.load();
        if (stall > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(stall));
        }
        if (ChaosTake(*ctl, ChaosFaultKind::kCrashBeforePush)) {
          // Dies with the gradient computed but not pushed: this batch was
          // never committed and must be re-served.
          ctl->hard_crash.store(true);
          abandoned = true;
          break;
        }
        bool crash_after_push = false;
        if (!CommitBatch(*ctl, shard, my_epoch, batch_index, &work, &ph,
                         &crash_after_push)) {
          if (ctl->fenced.load() || ctl->hard_crash.load()) {
            abandoned = true;
          } else {
            // The gate rejected the push because a restore bumped the
            // epoch: this shard's index is retired and its data is
            // re-served by the rolled-back queue. The worker itself is
            // healthy — it drops the shard and fetches fresh work.
            stale = true;
          }
          break;
        }
        if (crash_after_push) {
          ctl->hard_crash.store(true);
          abandoned = true;
          break;
        }
      }
      if (aborted) {
        // Exactly-once: the committed prefix is credited, the remainder is
        // re-served to someone else (with a fresh shard index).
        UnregisterShard(shard.index);
        const Status s = t->queue_->ReportFailed(shard, pos);
        assert(s.ok() || s.code() == StatusCode::kNotFound);
        (void)s;
        break;
      }
      if (abandoned) break;  // leave the registry entry for the supervisor
      if (stale) continue;   // registry entry already cleared by the restore
      if (ChaosTake(*ctl, ChaosFaultKind::kLoseShardReport)) {
        // The work is done but the completion report evaporates. The
        // registry entry stays, flagged, until the supervisor reaps it.
        MarkFinishedUnreported(shard.index);
        continue;
      }
      UnregisterShard(shard.index);
      const Status s = t->queue_->ReportCompleted(shard);
      // A shard dispatched before a restore names a retired index; its
      // completion is void (the data was rolled back and re-served).
      assert(s.ok() || s.code() == StatusCode::kNotFound);
      (void)s;
    }
    {
      std::lock_guard<std::mutex> lock(state_mu);
      t->result_.phases.Merge(ph);
    }
    ctl->exited.store(true);
  }

  // ---- Supervisor (fault-tolerance) ----------------------------------

  /// Declares a worker dead, reclaims its shards with their processed
  /// prefixes, and spawns a replacement if the budget allows. Takes the
  /// gate exclusively: no commit can be in flight while the fence goes up,
  /// so the reclaimed remainder can never lose a racing update.
  void FenceAndReclaim(uint64_t member_id, bool replace) {
    std::unique_lock<std::shared_mutex> gate(commit_gate);
    std::lock_guard<std::mutex> lock(state_mu);
    std::shared_ptr<WorkerCtl> victim;
    for (const auto& c : ctls) {
      if (static_cast<uint64_t>(c->id) == member_id) {
        victim = c;
        break;
      }
    }
    if (!victim || victim->fenced.load()) return;
    victim->fenced.store(true);
    ++stats.workers_fenced;
    if (victim->monitored) {
      monitor.RemoveMember(member_id);
      victim->monitored = false;
    }
    ReclaimEntriesOfLocked(victim->id);
    if (replace && !victim->stop.load()) {
      if (replacements_done < opts.fault_tolerance.max_replacements) {
        ++replacements_done;
        ++stats.workers_replaced;
        SpawnWorkerLocked();
      } else {
        ++stats.degraded_exits;  // smaller fleet from here on
      }
    }
  }

  /// Requires state_mu (and, for live owners, the exclusive gate).
  void ReclaimEntriesOfLocked(int owner) {
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (it->owner != owner) {
        ++it;
        continue;
      }
      const Status s = t->queue_->ReportFailed(it->shard, it->processed);
      assert(s.ok() || s.code() == StatusCode::kNotFound);
      (void)s;
      ++stats.shards_reclaimed;
      it = inflight.erase(it);
    }
  }

  /// Reaps registry entries whose owner already exited (chaos hard crash)
  /// and finished shards whose completion report was lost. No gate needed:
  /// the owner is gone, nothing races on these entries.
  void ReapOrphansLocked() {
    for (auto it = inflight.begin(); it != inflight.end();) {
      bool reap = false;
      if (it->finished) {
        reap = true;
        ++stats.lost_reports_reaped;
      } else {
        for (const auto& c : ctls) {
          if (c->id == it->owner) {
            reap = c->exited.load();
            break;
          }
        }
      }
      if (!reap) {
        ++it;
        continue;
      }
      // processed == batches for lost reports: ReportFailed credits the
      // full prefix and re-queues nothing — the lost completion, recovered.
      const Status s = t->queue_->ReportFailed(it->shard, it->processed);
      assert(s.ok() || s.code() == StatusCode::kNotFound);
      (void)s;
      if (!it->finished) ++stats.shards_reclaimed;
      it = inflight.erase(it);
    }
    for (const auto& c : ctls) {
      if (c->monitored && c->exited.load()) {
        monitor.RemoveMember(static_cast<uint64_t>(c->id));
        c->monitored = false;
      }
    }
  }

  void InjectStallLocked() {
    for (const auto& c : ctls) {
      if (c->stop.load() || c->crash.load() || c->hard_crash.load() ||
          c->fenced.load() || c->stalled.load() || c->exited.load() ||
          c->immune.load()) {
        continue;
      }
      c->stalled.store(true);
      ++stats.stalls_injected;
      return;
    }
  }

  /// Captures a checkpoint under a quiescent cut: model blob, queue
  /// snapshot netted of every in-flight processed prefix, and the audit
  /// histogram — all consistent with `committed_`.
  void TakeCheckpoint() {
    ModelCheckpoint ckpt;
    {
      std::unique_lock<std::shared_mutex> gate(commit_gate);
      std::lock_guard<std::mutex> lock(state_mu);
      ckpt.committed_batches = t->committed_;
      ckpt.batches_duplicated = t->result_.batches_duplicated;
      ckpt.times_trained = t->result_.times_trained;
      std::vector<ShardProgress> progress;
      progress.reserve(inflight.size());
      for (const InFlight& entry : inflight) {
        progress.push_back({entry.shard_index, entry.processed});
      }
      ckpt.queue = t->queue_->SnapshotState(progress);
      t->model_->ExportState(&ckpt.model);
    }
    ++stats.checkpoints_taken;
    if (chaos != nullptr &&
        chaos->Take(ChaosFaultKind::kFailCheckpointWrite,
                    ckpt.committed_batches)) {
      ++stats.checkpoint_writes_failed;
      vault.CommitCorrupted(std::move(ckpt));
      return;
    }
    if (chaos != nullptr &&
        chaos->Take(ChaosFaultKind::kTornCheckpointWrite,
                    ckpt.committed_batches)) {
      ++stats.checkpoint_writes_torn;
      vault.CommitTruncated(std::move(ckpt));
      return;
    }
    vault.Commit(std::move(ckpt));
  }

  /// Parameter state is gone: wait out an exponential backoff (capped,
  /// seeded jitter — the cost of standing up a replacement PS), then roll
  /// model, queue, audit and counters back to the newest checkpoint that
  /// passes its checksum. Gives up (degraded: live state kept) when the
  /// restore budget is exhausted or no generation verifies.
  void PerformRestore() {
    if (restore_attempts >= opts.fault_tolerance.max_restores) return;
    ++restore_attempts;
    const double base = opts.fault_tolerance.restore_backoff_base_ms;
    const double cap = opts.fault_tolerance.restore_backoff_cap_ms;
    double delay_ms =
        base * static_cast<double>(1ull << std::min(restore_attempts - 1, 20));
    delay_ms = std::min(delay_ms, cap) * backoff_rng.Uniform(0.5, 1.5);
    if (delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(delay_ms * 1000.0)));
    }
    std::unique_lock<std::shared_mutex> gate(commit_gate);
    std::lock_guard<std::mutex> lock(state_mu);
    const ModelCheckpoint* ckpt = vault.LatestValid();
    if (ckpt == nullptr) return;  // nothing trustworthy to restore from
    epoch.fetch_add(1);
    const Status s = t->model_->ImportState(ckpt->model);
    assert(s.ok());
    (void)s;
    t->queue_->RestoreState(ckpt->queue);
    if (t->committed_ > ckpt->committed_batches) {
      stats.batches_rolled_back += t->committed_ - ckpt->committed_batches;
    }
    t->committed_ = ckpt->committed_batches;
    committed_approx.store(t->committed_);
    t->result_.times_trained = ckpt->times_trained;
    t->result_.batches_duplicated = ckpt->batches_duplicated;
    last_eval = std::min(last_eval, t->committed_);
    // Every in-flight shard predates the restore; owners will notice their
    // stale epoch and abandon. The restored queue re-serves the data.
    inflight.clear();
    ++stats.restores;
  }

  void SupervisorLoop() {
    const auto poll = std::chrono::microseconds(static_cast<int64_t>(
        std::max(0.1, opts.fault_tolerance.supervisor_poll_ms) * 1000.0));
    uint64_t last_ckpt = committed_approx.load();
    while (!supervisor_stop.load()) {
      std::this_thread::sleep_for(poll);
      const uint64_t committed = committed_approx.load();
      if (chaos != nullptr) {
        if (chaos->Take(ChaosFaultKind::kStallWorker, committed)) {
          std::lock_guard<std::mutex> lock(state_mu);
          InjectStallLocked();
        }
        if (chaos->Take(ChaosFaultKind::kPsFailure, committed)) {
          PerformRestore();
          last_ckpt = committed_approx.load();
        }
      }
      std::vector<uint64_t> dead;
      {
        std::lock_guard<std::mutex> lock(state_mu);
        ReapOrphansLocked();
        const double now = NowSeconds();
        for (const auto& c : ctls) {
          if (!c->monitored) continue;
          monitor.Heartbeat(static_cast<uint64_t>(c->id),
                            c->last_beat_s.load(), c->beats.load());
        }
        dead = monitor.DetectFailures(now);
      }
      for (uint64_t member : dead) FenceAndReclaim(member, /*replace=*/true);
      const uint64_t now_committed = committed_approx.load();
      if (now_committed >= last_ckpt &&
          now_committed - last_ckpt >=
              opts.fault_tolerance.checkpoint_every_batches) {
        TakeCheckpoint();
        last_ckpt = committed_approx.load();
      }
      if (now_committed < last_ckpt) last_ckpt = now_committed;  // rolled back
    }
    // Final cut at shutdown: captures end-of-run state and consumes any
    // still-pending torn-write fault scheduled near the tail.
    if (committed_approx.load() > last_ckpt) TakeCheckpoint();
  }

  // ---- Run ------------------------------------------------------------

  TrainResult Run() {
    t->Evaluate(&t->result_);  // initial point, before any worker starts
    if (ft) TakeCheckpoint();  // generation 0: a restore target always exists
    {
      std::lock_guard<std::mutex> lock(state_mu);
      for (int i = 0; i < opts.num_workers; ++i) SpawnWorkerLocked();
    }
    if (ft) supervisor = std::thread([this]() { SupervisorLoop(); });

    // Join all workers, including ones spawned by events or the supervisor
    // mid-run.
    auto join_all = [this]() {
      for (;;) {
        std::vector<std::future<void>> joinable;
        {
          std::lock_guard<std::mutex> lock(state_mu);
          joinable.swap(futures);
        }
        if (joinable.empty()) break;
        for (std::future<void>& f : joinable) f.get();
      }
    };
    join_all();
    if (ft) {
      supervisor_stop.store(true);
      supervisor.join();
      join_all();  // replacements spawned in the shutdown race window
    }

    if (opts.drain_remainder) {
      // Every worker has exited; whatever the registry still holds belongs
      // to the dead. Return the unprocessed remainders, then train the
      // leftovers inline (a fresh worker no event or fault can touch).
      {
        std::lock_guard<std::mutex> lock(state_mu);
        for (const InFlight& entry : inflight) {
          const Status s =
              t->queue_->ReportFailed(entry.shard, entry.processed);
          assert(s.ok() || s.code() == StatusCode::kNotFound);
          (void)s;
        }
        inflight.clear();
      }
      while (!t->queue_->AllDone()) {
        auto ctl = std::make_shared<WorkerCtl>();
        ctl->id = t->next_worker_id_++;
        ctl->immune.store(true);
        WorkerLoop(ctl);
      }
    }

    // Concurrent commits record eval points slightly out of order.
    std::sort(t->result_.curve.begin(), t->result_.curve.end(),
              [](const EvalPoint& a, const EvalPoint& b) {
                return a.batches < b.batches;
              });
    t->Evaluate(&t->result_);
    t->result_.batches_committed = t->committed_;
    uint64_t never_trained = 0;
    for (uint8_t times : t->result_.times_trained) {
      if (times == 0) ++never_trained;
    }
    t->result_.batches_skipped = never_trained;
    t->result_.final_logloss = t->result_.curve.back().test_logloss;
    t->result_.final_auc = t->result_.curve.back().test_auc;
    t->result_.ft = stats;
    return std::move(t->result_);
  }
};

TrainResult AsyncPsTrainer::RunThreads() {
  ThreadRuntime runtime(this);
  return runtime.Run();
}

}  // namespace dlrover
