#include "dlrm/async_trainer.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "dlrm/metrics.h"
#include "runtime/thread_pool.h"

namespace dlrover {

AsyncPsTrainer::AsyncPsTrainer(MiniDlrm* model, const CriteoSynth* data,
                               const AsyncTrainerOptions& options)
    : model_(model), data_(data), options_(options), rng_(options.seed) {
  result_.times_trained.assign(options_.total_batches, 0);
  if (options_.data_mode == DataMode::kDynamicSharding) {
    ShardQueueOptions qopts;
    qopts.total_batches = options_.total_batches;
    qopts.default_shard_batches = options_.shard_batches;
    qopts.min_shard_batches = std::max<uint64_t>(1, options_.shard_batches / 8);
    queue_ = std::make_unique<ShardQueue>(qopts);
  }
  for (int i = 0; i < options_.num_workers; ++i) {
    Worker w;
    w.id = next_worker_id_++;
    workers_.push_back(std::move(w));
  }
  if (options_.data_mode == DataMode::kStaticPartition) RepartitionStatic();

  eval_batch_ = data_->Batch(options_.eval_start, options_.eval_size);
  eval_labels_.reserve(eval_batch_.size());
  for (const auto& s : eval_batch_.samples) eval_labels_.push_back(s.label);

  // Sort events so FireEvents can walk them with a cursor.
  std::sort(options_.events.begin(), options_.events.end(),
            [](const ElasticEvent& a, const ElasticEvent& b) {
              return a.at_batches < b.at_batches;
            });
}

void AsyncPsTrainer::RepartitionStatic() {
  // Naive re-partitioning, as conventional frameworks do on scale events:
  // training resumes from the *global step counter* and the remaining data
  // is re-split from there. Scattered batches below that offset that were
  // never trained (a straggler's backlog, in-flight work) are silently
  // lost, and batches above it that were already trained get trained again
  // — the "disrupted data sequence" of paper Section 2.2.
  std::vector<Worker*> active;
  for (Worker& w : workers_) {
    if (w.active) active.push_back(&w);
  }
  if (active.empty()) return;
  const uint64_t start = std::min(committed_, options_.total_batches);
  for (size_t i = 0; i < active.size(); ++i) {
    Worker* w = active[i];
    w->part_cursor = start + i;
    w->part_stride = active.size();
    w->shard.reset();
    w->batch.reset();
    w->snapshot.reset();
    w->progress = 0.0;
  }
}

bool AsyncPsTrainer::FetchWork(Worker& worker) {
  if (options_.data_mode == DataMode::kDynamicSharding) {
    if (!worker.shard.has_value() ||
        worker.shard_pos >= worker.shard->batches()) {
      if (worker.shard.has_value()) {
        const Status s = queue_->ReportCompleted(*worker.shard);
        assert(s.ok());
        (void)s;
        worker.shard.reset();
      }
      auto shard = queue_->NextShard();
      if (!shard.ok()) return false;
      worker.shard = *shard;
      worker.shard_pos = 0;
    }
    StartBatch(worker, worker.shard->start_batch + worker.shard_pos);
    return true;
  }
  if (worker.part_stride == 0 ||
      worker.part_cursor >= options_.total_batches) {
    return false;
  }
  StartBatch(worker, worker.part_cursor);
  return true;
}

void AsyncPsTrainer::StartBatch(Worker& worker, uint64_t batch_index) {
  worker.batch_index = batch_index;
  worker.batch = data_->Batch(batch_index * options_.batch_size,
                              options_.batch_size);
  // Pull: the parameters this gradient will be computed against. Slow
  // workers take many ticks to finish, so by push time this is stale.
  worker.snapshot = model_->TakeSnapshot(*worker.batch);
}

void AsyncPsTrainer::FinishBatch(Worker& worker) {
  DlrmGradients grads;
  model_->ForwardBackward(*worker.batch, *worker.snapshot, &grads);
  model_->ApplyGradients(grads, options_.learning_rate);

  if (worker.batch_index < result_.times_trained.size()) {
    uint8_t& times = result_.times_trained[worker.batch_index];
    if (times < 255) ++times;
    if (times > 1) ++result_.batches_duplicated;
  }
  ++committed_;
  if (options_.data_mode == DataMode::kDynamicSharding) {
    ++worker.shard_pos;
  } else {
    worker.part_cursor += worker.part_stride;
  }
  worker.batch.reset();
  worker.snapshot.reset();
}

void AsyncPsTrainer::FireEvents() {
  while (next_event_ < options_.events.size() &&
         options_.events[next_event_].at_batches <= committed_) {
    const ElasticEvent& event = options_.events[next_event_++];
    switch (event.kind) {
      case ElasticEvent::Kind::kAddWorkers: {
        for (int i = 0; i < event.count; ++i) {
          Worker w;
          w.id = next_worker_id_++;
          workers_.push_back(std::move(w));
        }
        if (options_.data_mode == DataMode::kStaticPartition) {
          RepartitionStatic();
        }
        break;
      }
      case ElasticEvent::Kind::kRemoveWorkers: {
        int removed = 0;
        for (auto it = workers_.rbegin();
             it != workers_.rend() && removed < event.count; ++it) {
          if (!it->active) continue;
          it->active = false;
          if (options_.data_mode == DataMode::kDynamicSharding &&
              it->shard.has_value()) {
            // Exactly-once: return the unfinished remainder to the queue.
            const Status s =
                queue_->ReportFailed(*it->shard, it->shard_pos);
            assert(s.ok());
            (void)s;
            it->shard.reset();
          }
          ++removed;
        }
        if (options_.data_mode == DataMode::kStaticPartition) {
          RepartitionStatic();
        }
        break;
      }
      case ElasticEvent::Kind::kCrashWorker: {
        for (Worker& w : workers_) {
          if (!w.active || w.speed < 1.0) continue;  // crash a healthy one
          w.active = false;
          if (options_.data_mode == DataMode::kDynamicSharding) {
            if (w.shard.has_value()) {
              const Status s = queue_->ReportFailed(*w.shard, w.shard_pos);
              assert(s.ok());
              (void)s;
            }
          } else {
            // Conventional frameworks lose the crashed worker's in-flight
            // window (the paper's "workers might miss specific data
            // batches"): the replacement resumes past the prefetch buffer.
            w.part_cursor += w.part_stride * options_.shard_batches / 4;
          }
          // Replacement worker joins.
          Worker fresh;
          fresh.id = next_worker_id_++;
          if (options_.data_mode == DataMode::kStaticPartition) {
            fresh.part_cursor = w.part_cursor;
            fresh.part_stride = w.part_stride;
            w.part_cursor = 0;
            w.part_stride = 0;
          }
          workers_.push_back(std::move(fresh));
          break;
        }
        break;
      }
      case ElasticEvent::Kind::kMakeStraggler: {
        for (Worker& w : workers_) {
          if (w.active && w.speed >= 1.0) {
            w.speed = event.speed;
            break;
          }
        }
        break;
      }
    }
  }
}

void AsyncPsTrainer::Evaluate(TrainResult* result) {
  const std::vector<double> probs = model_->Predict(eval_batch_);
  EvalPoint point;
  point.batches = committed_;
  point.test_logloss = LogLoss(probs, eval_labels_);
  point.test_auc = Auc(probs, eval_labels_);
  result->curve.push_back(point);
}

TrainResult AsyncPsTrainer::Run() {
  if (options_.exec_mode == ExecMode::kThreads) {
    if (options_.data_mode != DataMode::kDynamicSharding) {
      DLROVER_LOG_STREAM(Warning)
          << "kThreads requires dynamic sharding; falling back to kTicks";
    } else {
      return RunThreads();
    }
  }
  return RunTicks();
}

TrainResult AsyncPsTrainer::RunTicks() {
  uint64_t last_eval = 0;
  Evaluate(&result_);

  auto work_remains = [&]() {
    if (options_.data_mode == DataMode::kDynamicSharding) {
      return !queue_->AllDone();
    }
    for (const Worker& w : workers_) {
      if (w.active && w.part_stride > 0 &&
          w.part_cursor < options_.total_batches) {
        return true;
      }
    }
    return false;
  };

  // Tick loop: each tick every active worker advances by `speed`; one unit
  // of progress completes one batch.
  uint64_t guard = 0;
  const uint64_t max_ticks = options_.total_batches * 2000;
  while (work_remains() && guard++ < max_ticks) {
    bool anyone_working = false;
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      if (!w.active) continue;
      if (!w.batch.has_value()) {
        if (!FetchWork(w)) continue;
      }
      anyone_working = true;
      w.progress += w.speed;
      if (w.progress >= 1.0) {
        w.progress -= 1.0;
        FinishBatch(w);
        FireEvents();
        if (committed_ - last_eval >= options_.eval_every_batches) {
          last_eval = committed_;
          Evaluate(&result_);
        }
      }
    }
    if (!anyone_working) break;  // stranded data (static-mode skips)
  }

  Evaluate(&result_);
  result_.batches_committed = committed_;
  // Ground-truth data accounting from the multiplicity histogram.
  uint64_t never_trained = 0;
  for (uint8_t times : result_.times_trained) {
    if (times == 0) ++never_trained;
  }
  result_.batches_skipped = never_trained;
  result_.final_logloss = result_.curve.back().test_logloss;
  result_.final_auc = result_.curve.back().test_auc;
  return std::move(result_);
}

TrainResult AsyncPsTrainer::RunThreads() {
  // Per-worker control block. Elastic events cannot preempt a real thread
  // mid-batch; they set flags that the worker observes at batch boundaries,
  // which is also how real PS workers drain on scale-in.
  struct WorkerCtl {
    int id = 0;
    std::atomic<bool> stop{false};   // graceful scale-in: requeue + exit
    std::atomic<bool> crash{false};  // abrupt failure: same, picked abruptly
    std::atomic<int> stall_us{0};    // straggler injection per batch
  };

  const size_t pool_threads =
      options_.num_threads > 0 ? static_cast<size_t>(options_.num_threads)
                               : static_cast<size_t>(std::max(1, options_.num_workers));
  ThreadPool pool(pool_threads);

  // state_mu guards committed_, result_, next_event_, the worker control
  // list and the future list. Everything inside is O(1)-ish bookkeeping;
  // the expensive pull/compute/push runs outside the lock.
  std::mutex state_mu;
  std::vector<std::shared_ptr<WorkerCtl>> ctls;
  std::vector<std::future<void>> futures;
  uint64_t last_eval = 0;

  std::function<void(std::shared_ptr<WorkerCtl>)> worker_loop;

  auto spawn_worker_locked = [&]() {
    auto ctl = std::make_shared<WorkerCtl>();
    ctl->id = next_worker_id_++;
    ctls.push_back(ctl);
    futures.push_back(pool.Submit([&worker_loop, ctl]() { worker_loop(ctl); }));
  };

  auto fire_events_locked = [&]() {
    while (next_event_ < options_.events.size() &&
           options_.events[next_event_].at_batches <= committed_) {
      const ElasticEvent& event = options_.events[next_event_++];
      switch (event.kind) {
        case ElasticEvent::Kind::kAddWorkers: {
          for (int i = 0; i < event.count; ++i) spawn_worker_locked();
          break;
        }
        case ElasticEvent::Kind::kRemoveWorkers: {
          int removed = 0;
          for (auto it = ctls.rbegin();
               it != ctls.rend() && removed < event.count; ++it) {
            WorkerCtl& c = **it;
            if (c.stop.load() || c.crash.load()) continue;
            c.stop.store(true);
            ++removed;
          }
          break;
        }
        case ElasticEvent::Kind::kCrashWorker: {
          for (const auto& c : ctls) {
            if (c->stop.load() || c->crash.load() || c->stall_us.load() > 0) {
              continue;  // crash a healthy worker, as in tick mode
            }
            c->crash.store(true);
            spawn_worker_locked();  // replacement joins via the queue
            break;
          }
          break;
        }
        case ElasticEvent::Kind::kMakeStraggler: {
          for (const auto& c : ctls) {
            if (c->stop.load() || c->crash.load() || c->stall_us.load() > 0) {
              continue;
            }
            const double speed = std::max(event.speed, 1e-3);
            c->stall_us.store(static_cast<int>(
                options_.straggler_stall_us / speed));
            break;
          }
          break;
        }
      }
    }
  };

  auto commit_batch = [&](uint64_t batch_index) {
    bool do_eval = false;
    uint64_t eval_at = 0;
    {
      std::lock_guard<std::mutex> lock(state_mu);
      if (batch_index < result_.times_trained.size()) {
        uint8_t& times = result_.times_trained[batch_index];
        if (times < 255) ++times;
        if (times > 1) ++result_.batches_duplicated;
      }
      ++committed_;
      fire_events_locked();
      if (committed_ - last_eval >= options_.eval_every_batches) {
        last_eval = committed_;
        eval_at = committed_;
        do_eval = true;
      }
    }
    if (do_eval) {
      // Predict is thread-safe; only the curve append needs the lock.
      const std::vector<double> probs = model_->Predict(eval_batch_);
      EvalPoint point;
      point.batches = eval_at;
      point.test_logloss = LogLoss(probs, eval_labels_);
      point.test_auc = Auc(probs, eval_labels_);
      std::lock_guard<std::mutex> lock(state_mu);
      result_.curve.push_back(point);
    }
  };

  worker_loop = [&](std::shared_ptr<WorkerCtl> ctl) {
    while (!ctl->stop.load() && !ctl->crash.load()) {
      auto shard_or = queue_->WaitNextShard();
      if (!shard_or.ok()) break;  // terminal: nothing can be served again
      const DataShard shard = *shard_or;
      uint64_t pos = 0;
      bool aborted = false;
      for (; pos < shard.batches(); ++pos) {
        if (ctl->stop.load() || ctl->crash.load()) {
          aborted = true;
          break;
        }
        const uint64_t batch_index = shard.start_batch + pos;
        const CriteoBatch batch = data_->Batch(
            batch_index * options_.batch_size, options_.batch_size);
        // Pull -> compute -> push with real staleness: other workers push
        // between this snapshot and this push.
        const ParamSnapshot snapshot = model_->TakeSnapshot(batch);
        DlrmGradients grads;
        model_->ForwardBackward(batch, snapshot, &grads);
        const int stall = ctl->stall_us.load();
        if (stall > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(stall));
        }
        model_->ApplyGradients(grads, options_.learning_rate);
        commit_batch(batch_index);
      }
      if (aborted) {
        // Exactly-once: the committed prefix is credited, the remainder is
        // re-served to someone else (with a fresh shard index).
        const Status s = queue_->ReportFailed(shard, pos);
        assert(s.ok());
        (void)s;
        break;
      }
      const Status s = queue_->ReportCompleted(shard);
      assert(s.ok());
      (void)s;
    }
  };

  Evaluate(&result_);  // initial point, before any worker starts
  {
    std::lock_guard<std::mutex> lock(state_mu);
    for (int i = 0; i < options_.num_workers; ++i) spawn_worker_locked();
  }

  // Join all workers, including ones spawned by events mid-run.
  for (;;) {
    std::vector<std::future<void>> joinable;
    {
      std::lock_guard<std::mutex> lock(state_mu);
      joinable.swap(futures);
    }
    if (joinable.empty()) break;
    for (std::future<void>& f : joinable) f.get();
  }

  // Events may have stopped every worker while data was still queued; drain
  // the remainder inline (a fresh worker that no event can touch).
  while (!queue_->AllDone()) {
    auto ctl = std::make_shared<WorkerCtl>();
    ctl->id = next_worker_id_++;
    worker_loop(ctl);
  }

  // Concurrent commits record eval points slightly out of order.
  std::sort(result_.curve.begin(), result_.curve.end(),
            [](const EvalPoint& a, const EvalPoint& b) {
              return a.batches < b.batches;
            });
  Evaluate(&result_);
  result_.batches_committed = committed_;
  uint64_t never_trained = 0;
  for (uint8_t times : result_.times_trained) {
    if (times == 0) ++never_trained;
  }
  result_.batches_skipped = never_trained;
  result_.final_logloss = result_.curve.back().test_logloss;
  result_.final_auc = result_.curve.back().test_auc;
  return std::move(result_);
}

}  // namespace dlrover
