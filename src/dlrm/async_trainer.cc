#include "dlrm/async_trainer.h"

#include <algorithm>
#include <cassert>

#include "dlrm/metrics.h"

namespace dlrover {

AsyncPsTrainer::AsyncPsTrainer(MiniDlrm* model, const CriteoSynth* data,
                               const AsyncTrainerOptions& options)
    : model_(model), data_(data), options_(options), rng_(options.seed) {
  result_.times_trained.assign(options_.total_batches, 0);
  if (options_.data_mode == DataMode::kDynamicSharding) {
    ShardQueueOptions qopts;
    qopts.total_batches = options_.total_batches;
    qopts.default_shard_batches = options_.shard_batches;
    qopts.min_shard_batches = std::max<uint64_t>(1, options_.shard_batches / 8);
    queue_ = std::make_unique<ShardQueue>(qopts);
  }
  for (int i = 0; i < options_.num_workers; ++i) {
    Worker w;
    w.id = next_worker_id_++;
    workers_.push_back(std::move(w));
  }
  if (options_.data_mode == DataMode::kStaticPartition) RepartitionStatic();

  eval_batch_ = data_->Batch(options_.eval_start, options_.eval_size);
  eval_labels_.reserve(eval_batch_.size());
  for (const auto& s : eval_batch_.samples) eval_labels_.push_back(s.label);

  // Sort events so FireEvents can walk them with a cursor.
  std::sort(options_.events.begin(), options_.events.end(),
            [](const ElasticEvent& a, const ElasticEvent& b) {
              return a.at_batches < b.at_batches;
            });
}

void AsyncPsTrainer::RepartitionStatic() {
  // Naive re-partitioning, as conventional frameworks do on scale events:
  // training resumes from the *global step counter* and the remaining data
  // is re-split from there. Scattered batches below that offset that were
  // never trained (a straggler's backlog, in-flight work) are silently
  // lost, and batches above it that were already trained get trained again
  // — the "disrupted data sequence" of paper Section 2.2.
  std::vector<Worker*> active;
  for (Worker& w : workers_) {
    if (w.active) active.push_back(&w);
  }
  if (active.empty()) return;
  const uint64_t start = std::min(committed_, options_.total_batches);
  for (size_t i = 0; i < active.size(); ++i) {
    Worker* w = active[i];
    w->part_cursor = start + i;
    w->part_stride = active.size();
    w->shard.reset();
    w->batch.reset();
    w->snapshot.reset();
    w->progress = 0.0;
  }
}

bool AsyncPsTrainer::FetchWork(Worker& worker) {
  if (options_.data_mode == DataMode::kDynamicSharding) {
    if (!worker.shard.has_value() ||
        worker.shard_pos >= worker.shard->batches()) {
      if (worker.shard.has_value()) {
        const Status s = queue_->ReportCompleted(*worker.shard);
        assert(s.ok());
        (void)s;
        worker.shard.reset();
      }
      auto shard = queue_->NextShard();
      if (!shard.ok()) return false;
      worker.shard = *shard;
      worker.shard_pos = 0;
    }
    StartBatch(worker, worker.shard->start_batch + worker.shard_pos);
    return true;
  }
  if (worker.part_stride == 0 ||
      worker.part_cursor >= options_.total_batches) {
    return false;
  }
  StartBatch(worker, worker.part_cursor);
  return true;
}

void AsyncPsTrainer::StartBatch(Worker& worker, uint64_t batch_index) {
  worker.batch_index = batch_index;
  worker.batch = data_->Batch(batch_index * options_.batch_size,
                              options_.batch_size);
  // Pull: the parameters this gradient will be computed against. Slow
  // workers take many ticks to finish, so by push time this is stale.
  worker.snapshot = model_->TakeSnapshot(*worker.batch);
}

void AsyncPsTrainer::FinishBatch(Worker& worker) {
  DlrmGradients grads;
  model_->ForwardBackward(*worker.batch, *worker.snapshot, &grads);
  model_->ApplyGradients(grads, options_.learning_rate);

  if (worker.batch_index < result_.times_trained.size()) {
    uint8_t& times = result_.times_trained[worker.batch_index];
    if (times < 255) ++times;
    if (times > 1) ++result_.batches_duplicated;
  }
  ++committed_;
  if (options_.data_mode == DataMode::kDynamicSharding) {
    ++worker.shard_pos;
  } else {
    worker.part_cursor += worker.part_stride;
  }
  worker.batch.reset();
  worker.snapshot.reset();
}

void AsyncPsTrainer::FireEvents() {
  while (next_event_ < options_.events.size() &&
         options_.events[next_event_].at_batches <= committed_) {
    const ElasticEvent& event = options_.events[next_event_++];
    switch (event.kind) {
      case ElasticEvent::Kind::kAddWorkers: {
        for (int i = 0; i < event.count; ++i) {
          Worker w;
          w.id = next_worker_id_++;
          workers_.push_back(std::move(w));
        }
        if (options_.data_mode == DataMode::kStaticPartition) {
          RepartitionStatic();
        }
        break;
      }
      case ElasticEvent::Kind::kRemoveWorkers: {
        int removed = 0;
        for (auto it = workers_.rbegin();
             it != workers_.rend() && removed < event.count; ++it) {
          if (!it->active) continue;
          it->active = false;
          if (options_.data_mode == DataMode::kDynamicSharding &&
              it->shard.has_value()) {
            // Exactly-once: return the unfinished remainder to the queue.
            const Status s =
                queue_->ReportFailed(*it->shard, it->shard_pos);
            assert(s.ok());
            (void)s;
            it->shard.reset();
          }
          ++removed;
        }
        if (options_.data_mode == DataMode::kStaticPartition) {
          RepartitionStatic();
        }
        break;
      }
      case ElasticEvent::Kind::kCrashWorker: {
        for (Worker& w : workers_) {
          if (!w.active || w.speed < 1.0) continue;  // crash a healthy one
          w.active = false;
          if (options_.data_mode == DataMode::kDynamicSharding) {
            if (w.shard.has_value()) {
              const Status s = queue_->ReportFailed(*w.shard, w.shard_pos);
              assert(s.ok());
              (void)s;
            }
          } else {
            // Conventional frameworks lose the crashed worker's in-flight
            // window (the paper's "workers might miss specific data
            // batches"): the replacement resumes past the prefetch buffer.
            w.part_cursor += w.part_stride * options_.shard_batches / 4;
          }
          // Replacement worker joins.
          Worker fresh;
          fresh.id = next_worker_id_++;
          if (options_.data_mode == DataMode::kStaticPartition) {
            fresh.part_cursor = w.part_cursor;
            fresh.part_stride = w.part_stride;
            w.part_cursor = 0;
            w.part_stride = 0;
          }
          workers_.push_back(std::move(fresh));
          break;
        }
        break;
      }
      case ElasticEvent::Kind::kMakeStraggler: {
        for (Worker& w : workers_) {
          if (w.active && w.speed >= 1.0) {
            w.speed = event.speed;
            break;
          }
        }
        break;
      }
    }
  }
}

void AsyncPsTrainer::Evaluate(TrainResult* result) {
  const std::vector<double> probs = model_->Predict(eval_batch_);
  EvalPoint point;
  point.batches = committed_;
  point.test_logloss = LogLoss(probs, eval_labels_);
  point.test_auc = Auc(probs, eval_labels_);
  result->curve.push_back(point);
}

TrainResult AsyncPsTrainer::Run() {
  uint64_t last_eval = 0;
  Evaluate(&result_);

  auto work_remains = [&]() {
    if (options_.data_mode == DataMode::kDynamicSharding) {
      return !queue_->AllDone();
    }
    for (const Worker& w : workers_) {
      if (w.active && w.part_stride > 0 &&
          w.part_cursor < options_.total_batches) {
        return true;
      }
    }
    return false;
  };

  // Tick loop: each tick every active worker advances by `speed`; one unit
  // of progress completes one batch.
  uint64_t guard = 0;
  const uint64_t max_ticks = options_.total_batches * 2000;
  while (work_remains() && guard++ < max_ticks) {
    bool anyone_working = false;
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker& w = workers_[i];
      if (!w.active) continue;
      if (!w.batch.has_value()) {
        if (!FetchWork(w)) continue;
      }
      anyone_working = true;
      w.progress += w.speed;
      if (w.progress >= 1.0) {
        w.progress -= 1.0;
        FinishBatch(w);
        FireEvents();
        if (committed_ - last_eval >= options_.eval_every_batches) {
          last_eval = committed_;
          Evaluate(&result_);
        }
      }
    }
    if (!anyone_working) break;  // stranded data (static-mode skips)
  }

  Evaluate(&result_);
  result_.batches_committed = committed_;
  // Ground-truth data accounting from the multiplicity histogram.
  uint64_t never_trained = 0;
  for (uint8_t times : result_.times_trained) {
    if (times == 0) ++never_trained;
  }
  result_.batches_skipped = never_trained;
  result_.final_logloss = result_.curve.back().test_logloss;
  result_.final_auc = result_.curve.back().test_auc;
  return std::move(result_);
}

}  // namespace dlrover
