#include "dlrm/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dlrover {

double Auc(const std::vector<double>& scores,
           const std::vector<float>& labels) {
  assert(scores.size() == labels.size());
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Midrank assignment for ties.
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }

  double positive_rank_sum = 0.0;
  size_t positives = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] > 0.5f) {
      positive_rank_sum += ranks[k];
      ++positives;
    }
  }
  const size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  return (positive_rank_sum -
          static_cast<double>(positives) *
              (static_cast<double>(positives) + 1.0) / 2.0) /
         (static_cast<double>(positives) * static_cast<double>(negatives));
}

double LogLoss(const std::vector<double>& probs,
               const std::vector<float>& labels) {
  assert(probs.size() == labels.size() && !probs.empty());
  const double eps = 1e-12;
  double loss = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double y = labels[i];
    loss += -(y * std::log(probs[i] + eps) +
              (1.0 - y) * std::log(1.0 - probs[i] + eps));
  }
  return loss / static_cast<double>(probs.size());
}

}  // namespace dlrover
