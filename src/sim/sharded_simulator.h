#ifndef DLROVER_SIM_SHARDED_SIMULATOR_H_
#define DLROVER_SIM_SHARDED_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/units.h"
#include "runtime/thread_pool.h"
#include "sim/simulator.h"

namespace dlrover {

/// Tunables for the sharded event engine.
struct ShardedSimOptions {
  /// Number of independent event queues. Part of the *scenario shape*: each
  /// shard owns a disjoint slice of the simulated world, and two runs with
  /// different shard counts simulate different partitions. Determinism
  /// guarantees below are for a fixed num_shards across execution widths.
  int num_shards = 1;
  /// Conservative synchronization window: shards run independently for one
  /// window, then all cross-shard effects commit at the barrier. This is
  /// also the engine's lookahead — a cross-shard effect sent during window
  /// W becomes visible no earlier than the end of W.
  Duration window = Minutes(2);
  /// Pool the windows are fanned across. nullptr runs shards sequentially
  /// on the calling thread (the zero-allocation path).
  ThreadPool* pool = nullptr;
  /// Number of execution lanes used per window; 0 means one lane per shard.
  /// Never affects results — only wall-clock. Ignored without a pool.
  size_t parallelism = 0;
};

/// A parallel discrete-event engine built out of N ordinary `Simulator`
/// shards advanced in conservative, barrier-synchronized time windows on the
/// ThreadPool.
///
/// Within a window each shard runs its own slab-backed event queue with no
/// locks and no shared state; anything that crosses shards — cluster
/// capacity changes, brain decisions, failure strikes — must go through
/// Send(), which records the effect into the *sending* shard's commit log.
/// At the window barrier the coordinator merges all commit logs and applies
/// them in canonical (due time, source shard, per-shard sequence) order.
///
/// Why determinism survives parallel execution:
///  - each shard's intra-window execution is sequential and touches only
///    shard-local state, so a shard's event trace (and the order of its
///    outbox appends) is a pure function of its queue at the window start;
///  - commit-log entries carry a (due, src, seq) key that is unique and
///    independent of execution timing, and the barrier applies them after
///    sorting by that key, so the destination shard's FIFO tie-break sees
///    the same arrival order at any parallelism — including 1;
///  - due times are clamped to at least the end of the window in which the
///    send happens, so an effect can never land in a shard's past.
/// Hence for a fixed num_shards, results are byte-identical at every
/// `parallelism` (and with or without a pool).
class ShardedSimulator {
 public:
  /// Pseudo-source for sends issued by the coordinator itself (setup code
  /// or the barrier hook) rather than by a shard. Barrier sends order after
  /// all shard sends at the same due time.
  static constexpr int kCoordinator = 1 << 20;

  explicit ShardedSimulator(const ShardedSimOptions& options);

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardedSimOptions& options() const { return options_; }

  /// The shard-local simulator. Entities living on shard `i` schedule their
  /// intra-shard events directly on it, exactly as in the sequential world.
  Simulator& shard(int i) { return shards_[static_cast<size_t>(i)]->sim; }
  const Simulator& shard(int i) const {
    return shards_[static_cast<size_t>(i)]->sim;
  }

  /// Barrier time: the end of the last committed window.
  SimTime Now() const { return now_; }

  /// Records a cross-shard effect. `src` is the shard whose event is
  /// sending (or kCoordinator); `dst` is the shard whose simulator will run
  /// `cb`. The callback is applied at the next window barrier and scheduled
  /// at max(due, end of the current window) — conservative lookahead of one
  /// window. Thread-safe in the only way the engine needs: a shard may send
  /// only from its own lane, and the coordinator only between windows.
  void Send(int src, int dst, SimTime due, Simulator::Callback cb);

  /// Invoked at every window barrier, after that window's sends have been
  /// committed, with the barrier time. The hook runs on the coordinator
  /// thread with all shards quiescent: it may inspect every shard and issue
  /// further Send()s (committed immediately, before the next window).
  void set_barrier_hook(std::function<void(SimTime)> hook) {
    barrier_hook_ = std::move(hook);
  }

  /// Advances all shards to `deadline` in windows. Like
  /// Simulator::RunUntil, events exactly at the deadline run, and every
  /// shard's clock (and Now()) ends at max(previous, deadline). Runs at
  /// least one (possibly zero-width) window so sends recorded before the
  /// call are committed.
  void RunUntil(SimTime deadline);

  /// Pre-sizes every shard's commit log (and the merge scratch) so warm
  /// windows append without reallocating.
  void ReserveCommitLogs(size_t per_shard);

  /// Total events executed across all shards.
  uint64_t executed_events() const;
  /// Events currently pending across all shards.
  size_t pending_events() const;
  /// Windows run so far (each ends in one barrier).
  uint64_t windows_run() const { return windows_; }
  /// Cross-shard effects committed so far.
  uint64_t cross_shard_sends() const { return sends_committed_; }

 private:
  /// One recorded cross-shard effect. The (due, src, seq) triple is the
  /// canonical commit key: unique (seq is per-source monotonic), total, and
  /// independent of execution interleaving.
  struct PendingSend {
    SimTime due = 0.0;
    uint64_t seq = 0;
    int32_t src = 0;
    int32_t dst = 0;
    Simulator::Callback cb;
  };

  /// A shard: its simulator plus its commit log of outbound sends. Padded
  /// out so two shards never share a cache line while lanes advance them
  /// concurrently.
  struct alignas(64) Shard {
    Simulator sim;
    std::vector<PendingSend> outbox;
    uint64_t next_send_seq = 0;
  };

  void AdvanceShards(SimTime window_end);
  /// Merges all outboxes and applies them in canonical order.
  void CommitSends();

  ShardedSimOptions options_;
  SimTime now_ = 0.0;
  /// End of the window currently executing (== now_ between windows).
  /// Written by the coordinator before lanes start; read-only inside them.
  SimTime window_end_ = 0.0;
  uint64_t windows_ = 0;
  uint64_t sends_committed_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Coordinator-originated sends (setup + barrier hook).
  std::vector<PendingSend> coordinator_outbox_;
  uint64_t coordinator_send_seq_ = 0;
  /// Merge scratch, reused across barriers (capacity persists).
  std::vector<PendingSend> commit_scratch_;
  std::function<void(SimTime)> barrier_hook_;
};

}  // namespace dlrover

#endif  // DLROVER_SIM_SHARDED_SIMULATOR_H_
