#ifndef DLROVER_SIM_SIMULATOR_H_
#define DLROVER_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace dlrover {

/// Opaque handle identifying a scheduled event; usable to cancel it.
using EventId = uint64_t;

/// Discrete-event simulation engine. Single-threaded: all entities (cluster,
/// jobs, schedulers) schedule callbacks on one shared timeline. Events firing
/// at the same timestamp run in scheduling order (stable FIFO tie-break) so
/// runs are fully deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute time `at` (>= Now()). Returns an id
  /// that can be passed to Cancel(). Scheduling in the past is clamped to
  /// Now() and the event fires on the next Step.
  EventId ScheduleAt(SimTime at, Callback cb, std::string label = "");

  /// Schedules `cb` to run `delay` seconds from now.
  EventId ScheduleAfter(Duration delay, Callback cb, std::string label = "");

  /// Cancels a pending event. Returns true if the event existed and had not
  /// yet fired.
  bool Cancel(EventId id);

  /// Runs a single event. Returns false if the queue is empty.
  bool Step();

  /// Runs events until the queue is empty or `deadline` is passed. Events
  /// scheduled exactly at the deadline still run. Time is advanced to
  /// `deadline` if the queue drains earlier (so periodic observers see a
  /// consistent end time).
  void RunUntil(SimTime deadline);

  /// Runs until the event queue is fully drained.
  void RunToCompletion();

  /// Number of events executed so far (for tests and microbenches).
  uint64_t executed_events() const { return executed_events_; }
  /// Number of events currently pending (including cancelled-but-unpopped).
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;  // FIFO tie-break for equal timestamps.
    EventId id;
    std::shared_ptr<Callback> cb;
    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// Repeats a callback at a fixed interval until stopped or the owner is
/// destroyed. Used for profiler ticks, heartbeats, and scheduler rounds.
class PeriodicTask {
 public:
  /// Does not start automatically; call Start().
  PeriodicTask(Simulator* sim, Duration interval, Simulator::Callback cb);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Schedules the first tick `interval` from now. No-op if running.
  void Start();
  /// Cancels the pending tick. Safe to call repeatedly.
  void Stop();
  bool running() const { return running_; }

  /// Changes the interval; takes effect from the next tick.
  void set_interval(Duration interval) { interval_ = interval; }
  Duration interval() const { return interval_; }

 private:
  void Tick();

  Simulator* sim_;
  Duration interval_;
  Simulator::Callback cb_;
  bool running_ = false;
  EventId pending_ = 0;
};

}  // namespace dlrover

#endif  // DLROVER_SIM_SIMULATOR_H_
