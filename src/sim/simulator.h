#ifndef DLROVER_SIM_SIMULATOR_H_
#define DLROVER_SIM_SIMULATOR_H_

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "common/inline_callback.h"
#include "common/status.h"
#include "common/units.h"

namespace dlrover {

/// Opaque handle identifying a scheduled event; usable to cancel it. Encodes
/// a slab slot plus a generation tag, so a handle becomes stale the moment
/// its event fires or is cancelled — cancelling a stale handle is a safe
/// O(1) no-op even after the slot has been recycled for a newer event.
/// 0 is never a valid id (PeriodicTask and friends use it as "none").
using EventId = uint64_t;

/// Discrete-event simulation engine. Single-threaded: all entities (cluster,
/// jobs, schedulers) schedule callbacks on one shared timeline. Events firing
/// at the same timestamp run in scheduling order (stable FIFO tie-break) so
/// runs are fully deterministic.
///
/// Storage layout: callbacks live in a slab of recycled slots (no per-event
/// heap allocation beyond what the callback's own captures need), and the
/// time-ordered heap holds only small {time, seq, slot, generation} entries.
/// Cancellation bumps the slot's generation, which both invalidates the
/// heap entry lazily (popped entries with a stale generation are skipped)
/// and frees the slot for immediate reuse — there is no tombstone set to
/// grow, and Cancel of an already-fired event correctly reports false.
class Simulator {
 public:
  /// Small-buffer-optimized: closures up to InlineCallback::kInlineBytes are
  /// stored inline in the event slab, so steady-state scheduling never
  /// touches the heap.
  using Callback = InlineCallback;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at absolute time `at` (>= Now()). Returns an id
  /// that can be passed to Cancel(). Scheduling in the past is clamped to
  /// Now() and the event fires on the next Step.
  EventId ScheduleAt(SimTime at, Callback cb, std::string label = "");

  /// Schedules `cb` to run `delay` seconds from now.
  EventId ScheduleAfter(Duration delay, Callback cb, std::string label = "");

  /// Cancels a pending event. Returns true only if the event existed and
  /// had not yet fired; ids of already-fired (or never-scheduled, or
  /// already-cancelled) events return false.
  bool Cancel(EventId id);

  /// Runs a single event. Returns false if the queue is empty.
  bool Step();

  /// Runs events until the queue is empty or `deadline` is passed. Events
  /// scheduled exactly at the deadline still run. Time is advanced to
  /// `deadline` if the queue drains earlier (so periodic observers see a
  /// consistent end time).
  ///
  /// Deadline-edge contract (the sharded engine's windows depend on it):
  /// a periodic tick firing exactly at `deadline` runs inside this call and
  /// re-arms an event strictly past the deadline, which then fires in the
  /// next RunUntil window — never twice, never from a stale clock. Chaining
  /// RunUntil(w1), RunUntil(w2), ... is byte-identical to one
  /// RunUntil(wN) for any window cut points (regression-pinned in
  /// simulator_test.cc).
  void RunUntil(SimTime deadline);

  /// Runs until the event queue is fully drained.
  void RunToCompletion();

  /// Emulates the pre-inline-callback dispatch cost model for before/after
  /// benchmarking: every scheduled callback is boxed on the heap behind an
  /// extra indirection, the way std::function stored out-of-line captures.
  /// Execution order and results are identical either way.
  void set_boxed_callbacks(bool boxed) { boxed_callbacks_ = boxed; }

  /// Number of events executed so far (for tests and microbenches).
  uint64_t executed_events() const { return executed_events_; }
  /// Number of events currently scheduled and not yet fired or cancelled.
  size_t pending_events() const { return live_events_; }

 private:
  /// Heap entry: 24 bytes, trivially copyable. The callback stays in the
  /// slab; stale entries (generation mismatch) are skipped on pop.
  struct HeapEntry {
    SimTime at;
    uint64_t seq;  // FIFO tie-break for equal timestamps.
    uint32_t slot;
    uint32_t gen;
    bool operator>(const HeapEntry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  /// One slab slot. `gen` counts how many times the slot has been armed or
  /// disarmed; an EventId carries the generation at scheduling time, so any
  /// later fire/cancel bumps `gen` and invalidates the id.
  struct EventSlot {
    Callback cb;
    uint32_t gen = 1;
    bool armed = false;
  };

  static constexpr uint32_t kGenMask = 0xffffffffu;

  EventId MakeId(uint32_t slot, uint32_t gen) const {
    // slot+1 keeps every valid id nonzero (slot 0, any generation).
    return (static_cast<uint64_t>(slot) + 1) << 32 | gen;
  }

  /// Pops a free slot (or grows the slab) and arms it with `cb`.
  uint32_t ArmSlot(Callback cb);
  /// Disarms a slot after fire/cancel: bumps the generation and recycles it.
  void ReleaseSlot(uint32_t slot);

  SimTime now_ = 0.0;
  bool boxed_callbacks_ = false;
  uint64_t next_seq_ = 0;
  uint64_t executed_events_ = 0;
  size_t live_events_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      queue_;
  std::vector<EventSlot> slots_;
  std::vector<uint32_t> free_slots_;
};

/// Repeats a callback at a fixed interval until stopped or the owner is
/// destroyed. Used for profiler ticks, heartbeats, and scheduler rounds.
class PeriodicTask {
 public:
  /// Does not start automatically; call Start().
  PeriodicTask(Simulator* sim, Duration interval, Simulator::Callback cb);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Schedules the first tick `interval` from now. No-op if running.
  void Start();
  /// Cancels the pending tick. Safe to call repeatedly.
  void Stop();
  bool running() const { return running_; }

  /// Changes the interval. Takes effect immediately: a pending tick is
  /// re-armed at `armed_from + new_interval` (clamped to now if that is
  /// already past), not left to fire on the old schedule.
  void set_interval(Duration interval);
  Duration interval() const { return interval_; }

 private:
  void Tick();

  Simulator* sim_;
  Duration interval_;
  Simulator::Callback cb_;
  bool running_ = false;
  EventId pending_ = 0;
  /// Time the pending tick was armed from; set_interval re-arms relative
  /// to this, so shortening the interval mid-cycle moves the tick earlier.
  SimTime armed_from_ = 0.0;
};

}  // namespace dlrover

#endif  // DLROVER_SIM_SIMULATOR_H_
