#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace dlrover {

EventId Simulator::ScheduleAt(SimTime at, Callback cb, std::string label) {
  (void)label;  // Labels are for debugging; not stored in release builds.
  const SimTime when = std::max(at, now_);
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id,
                    std::make_shared<Callback>(std::move(cb))});
  return id;
}

EventId Simulator::ScheduleAfter(Duration delay, Callback cb,
                                 std::string label) {
  return ScheduleAt(now_ + std::max(0.0, delay), std::move(cb),
                    std::move(label));
}

bool Simulator::Cancel(EventId id) {
  if (id == 0) return false;
  // Lazily deleted: mark and skip when popped.
  return cancelled_.insert(id).second;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.at;
    ++executed_events_;
    (*ev.cb)();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    Step();
  }
  now_ = std::max(now_, deadline);
}

void Simulator::RunToCompletion() {
  while (Step()) {
  }
}

PeriodicTask::PeriodicTask(Simulator* sim, Duration interval,
                           Simulator::Callback cb)
    : sim_(sim), interval_(interval), cb_(std::move(cb)) {}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (running_) return;
  running_ = true;
  pending_ = sim_->ScheduleAfter(interval_, [this] { Tick(); });
}

void PeriodicTask::Stop() {
  if (!running_) return;
  running_ = false;
  sim_->Cancel(pending_);
  pending_ = 0;
}

void PeriodicTask::Tick() {
  if (!running_) return;
  // Re-arm before the callback so the callback may Stop() us.
  pending_ = sim_->ScheduleAfter(interval_, [this] { Tick(); });
  cb_();
}

}  // namespace dlrover
