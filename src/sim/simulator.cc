#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace dlrover {

uint32_t Simulator::ArmSlot(Callback cb) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  EventSlot& s = slots_[slot];
  s.cb = std::move(cb);
  s.armed = true;
  ++live_events_;
  return slot;
}

void Simulator::ReleaseSlot(uint32_t slot) {
  EventSlot& s = slots_[slot];
  s.armed = false;
  s.cb = nullptr;
  ++s.gen;  // any heap entry or EventId carrying the old generation is stale
  --live_events_;
  free_slots_.push_back(slot);
}

EventId Simulator::ScheduleAt(SimTime at, Callback cb, std::string label) {
  (void)label;  // Labels are for debugging; not stored in release builds.
  if (boxed_callbacks_) {
    auto boxed = std::make_unique<Callback>(std::move(cb));
    cb = Callback([b = std::move(boxed)] { (*b)(); });
  }
  const SimTime when = std::max(at, now_);
  const uint32_t slot = ArmSlot(std::move(cb));
  const uint32_t gen = slots_[slot].gen;
  queue_.push(HeapEntry{when, next_seq_++, slot, gen});
  return MakeId(slot, gen);
}

EventId Simulator::ScheduleAfter(Duration delay, Callback cb,
                                 std::string label) {
  return ScheduleAt(now_ + std::max(0.0, delay), std::move(cb),
                    std::move(label));
}

bool Simulator::Cancel(EventId id) {
  const uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return false;
  const uint32_t slot = static_cast<uint32_t>(slot_plus_one - 1);
  const uint32_t gen = static_cast<uint32_t>(id & kGenMask);
  EventSlot& s = slots_[slot];
  // A fired, cancelled, or recycled slot carries a newer generation: the
  // handle is stale and cancelling it is a no-op reporting false.
  if (!s.armed || s.gen != gen) return false;
  ReleaseSlot(slot);
  return true;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    const HeapEntry top = queue_.top();
    queue_.pop();
    EventSlot& s = slots_[top.slot];
    if (!s.armed || s.gen != top.gen) continue;  // cancelled: skip lazily
    // Move the callback out and recycle the slot *before* invoking: the
    // callback may schedule new events (growing or reusing the slab) or
    // Cancel its own now-stale id.
    Callback cb = std::move(s.cb);
    ReleaseSlot(top.slot);
    now_ = top.at;
    ++executed_events_;
    cb();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    const HeapEntry& top = queue_.top();
    const EventSlot& s = slots_[top.slot];
    if (!s.armed || s.gen != top.gen) {
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    Step();
  }
  now_ = std::max(now_, deadline);
}

void Simulator::RunToCompletion() {
  while (Step()) {
  }
}

PeriodicTask::PeriodicTask(Simulator* sim, Duration interval,
                           Simulator::Callback cb)
    : sim_(sim), interval_(interval), cb_(std::move(cb)) {}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (running_) return;
  running_ = true;
  armed_from_ = sim_->Now();
  pending_ = sim_->ScheduleAfter(interval_, [this] { Tick(); });
}

void PeriodicTask::set_interval(Duration interval) {
  interval_ = interval;
  if (!running_ || pending_ == 0) return;
  // Move the already-armed tick onto the new cadence instead of letting it
  // fire on the old one: re-arm relative to when it was armed. ScheduleAt
  // clamps a now-past due time to Now(), so shortening the interval below
  // the time already elapsed fires the tick immediately-next.
  sim_->Cancel(pending_);
  pending_ = sim_->ScheduleAt(armed_from_ + interval_, [this] { Tick(); });
}

void PeriodicTask::Stop() {
  if (!running_) return;
  running_ = false;
  sim_->Cancel(pending_);
  pending_ = 0;
}

void PeriodicTask::Tick() {
  if (!running_) return;
  // Re-arm before the callback so the callback may Stop() us.
  armed_from_ = sim_->Now();
  pending_ = sim_->ScheduleAfter(interval_, [this] { Tick(); });
  cb_();
}

}  // namespace dlrover
