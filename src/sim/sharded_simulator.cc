#include "sim/sharded_simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dlrover {

ShardedSimulator::ShardedSimulator(const ShardedSimOptions& options)
    : options_(options) {
  const int n = std::max(1, options.num_shards);
  options_.num_shards = n;
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void ShardedSimulator::Send(int src, int dst, SimTime due,
                            Simulator::Callback cb) {
  assert(dst >= 0 && dst < num_shards() && "Send to unknown shard");
  // Conservative lookahead: the effect may not land before the end of the
  // window it was sent in (for coordinator sends between windows, not
  // before the barrier time itself).
  const SimTime when = std::max(due, window_end_);
  PendingSend send;
  send.due = when;
  send.dst = dst;
  send.cb = std::move(cb);
  if (src == kCoordinator) {
    send.src = kCoordinator;
    send.seq = coordinator_send_seq_++;
    coordinator_outbox_.push_back(std::move(send));
  } else {
    assert(src >= 0 && src < num_shards() && "Send from unknown shard");
    Shard& s = *shards_[static_cast<size_t>(src)];
    send.src = src;
    send.seq = s.next_send_seq++;
    s.outbox.push_back(std::move(send));
  }
}

void ShardedSimulator::AdvanceShards(SimTime window_end) {
  const size_t n = shards_.size();
  ThreadPool* pool = options_.pool;
  size_t lanes = options_.parallelism == 0 ? n : options_.parallelism;
  lanes = std::min(lanes, n);
  if (pool == nullptr || lanes <= 1 || n <= 1) {
    // Sequential lanes: the zero-allocation path (ParallelFor boxes its
    // chunk closures; this loop touches nothing but the shard slabs).
    for (auto& shard : shards_) shard->sim.RunUntil(window_end);
    return;
  }
  const size_t grain = (n + lanes - 1) / lanes;
  pool->ParallelFor(0, n, grain, [this, window_end](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      shards_[i]->sim.RunUntil(window_end);
    }
  });
}

void ShardedSimulator::CommitSends() {
  // Gather every commit log into the scratch buffer. Order of gathering is
  // irrelevant: the sort below re-establishes the canonical order from the
  // (due, src, seq) key alone.
  commit_scratch_.clear();  // keeps capacity: warm barriers do not allocate
  for (auto& shard : shards_) {
    for (PendingSend& send : shard->outbox) {
      commit_scratch_.push_back(std::move(send));
    }
    shard->outbox.clear();
    shard->next_send_seq = 0;
  }
  for (PendingSend& send : coordinator_outbox_) {
    commit_scratch_.push_back(std::move(send));
  }
  coordinator_outbox_.clear();
  coordinator_send_seq_ = 0;
  if (commit_scratch_.empty()) return;

  // Canonical commit order: due time, then source shard (coordinator
  // last), then the source's own append order. The key is unique, so
  // std::sort (unstable, but allocation-free) yields one well-defined
  // permutation at any execution width.
  std::sort(commit_scratch_.begin(), commit_scratch_.end(),
            [](const PendingSend& a, const PendingSend& b) {
              if (a.due != b.due) return a.due < b.due;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (PendingSend& send : commit_scratch_) {
    // ScheduleAt assigns the destination's FIFO tie-break sequence in call
    // order, so equal-time commits fire in exactly this canonical order.
    shards_[static_cast<size_t>(send.dst)]->sim.ScheduleAt(
        send.due, std::move(send.cb));
    ++sends_committed_;
  }
  commit_scratch_.clear();
}

void ShardedSimulator::RunUntil(SimTime deadline) {
  const SimTime end = std::max(deadline, now_);
  const Duration window = std::max(options_.window, 0.0);
  // do-while: a zero-width window still runs events at exactly `end` and
  // commits any sends recorded before the call.
  do {
    const SimTime window_end =
        window > 0.0 ? std::min(now_ + window, end) : end;
    window_end_ = window_end;
    AdvanceShards(window_end);
    ++windows_;
    now_ = window_end;
    CommitSends();
    if (barrier_hook_) {
      barrier_hook_(window_end);
      // The hook's own sends commit before the next window starts, so the
      // coordinator's view and every shard's queue agree at the barrier.
      CommitSends();
    }
  } while (now_ < end);
}

void ShardedSimulator::ReserveCommitLogs(size_t per_shard) {
  for (auto& shard : shards_) shard->outbox.reserve(per_shard);
  coordinator_outbox_.reserve(per_shard);
  commit_scratch_.reserve(per_shard * (shards_.size() + 1));
}

uint64_t ShardedSimulator::executed_events() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.executed_events();
  return total;
}

size_t ShardedSimulator::pending_events() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->sim.pending_events();
  return total;
}

}  // namespace dlrover
