#ifndef DLROVER_BRAIN_NSGA2_H_
#define DLROVER_BRAIN_NSGA2_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "runtime/thread_pool.h"

namespace dlrover {

/// Bounds of one decision variable. Integer variables are rounded to the
/// nearest integer after every variation operator.
struct DecisionBounds {
  double lo = 0.0;
  double hi = 1.0;
  bool integer = false;
};

struct Nsga2Options {
  int population = 48;
  int generations = 40;
  double crossover_prob = 0.9;
  double mutation_prob = 0.0;  // 0 = use 1/num_vars
  double eta_crossover = 15.0; // SBX distribution index
  double eta_mutation = 20.0;  // polynomial mutation index
  uint64_t seed = 7;
  /// Optional pool (non-owning) for parallel population evaluation. The
  /// objective must be thread-safe (it is required to be deterministic and
  /// is called on const data only). Null runs the evaluation sequentially;
  /// results are identical either way, because all randomness happens in
  /// the sequential variation phase and evaluation writes only the
  /// individual's own objective vector.
  ThreadPool* pool = nullptr;
};

/// A candidate solution with its objective vector (all minimized).
struct Nsga2Individual {
  std::vector<double> x;
  std::vector<double> objectives;
  int rank = 0;
  double crowding = 0.0;
};

/// NSGA-II (Deb et al.) implemented from scratch: fast non-dominated
/// sorting, crowding-distance diversity preservation, binary tournament
/// selection, simulated binary crossover, polynomial mutation. The paper
/// uses NSGA-II to generate the Pareto frontier of job resource plans over
/// the (ResourceCost, 1/ThroughputGain) objectives.
class Nsga2 {
 public:
  /// Objective function: maps a decision vector to objective values, all to
  /// be minimized. Must be deterministic.
  using ObjectiveFn =
      std::function<std::vector<double>(const std::vector<double>&)>;

  Nsga2(std::vector<DecisionBounds> bounds, ObjectiveFn objective,
        const Nsga2Options& options);

  /// Runs the evolution and returns the final first (non-dominated) front,
  /// deduplicated by decision vector.
  std::vector<Nsga2Individual> Run();

  /// Fast non-dominated sort. Returns fronts of indices into `objectives`,
  /// best front first. Exposed for tests.
  static std::vector<std::vector<size_t>> NonDominatedSort(
      const std::vector<std::vector<double>>& objectives);

  /// Crowding distance of each member of one front (larger = lonelier).
  /// Exposed for tests.
  static std::vector<double> CrowdingDistances(
      const std::vector<std::vector<double>>& objectives,
      const std::vector<size_t>& front);

  /// True if objective vector `a` Pareto-dominates `b` (<= everywhere,
  /// < somewhere).
  static bool Dominates(const std::vector<double>& a,
                        const std::vector<double>& b);

 private:
  std::vector<double> RandomVector();
  void Clamp(std::vector<double>& x) const;
  void Evaluate(Nsga2Individual& ind) const;
  /// Evaluates every individual in `pop`, fanning out over options_.pool
  /// when set (deterministic: see Nsga2Options::pool).
  void EvaluateAll(std::vector<Nsga2Individual>& pop) const;
  size_t TournamentPick(const std::vector<Nsga2Individual>& pop);
  void SbxCrossover(const std::vector<double>& p1,
                    const std::vector<double>& p2, std::vector<double>& c1,
                    std::vector<double>& c2);
  void PolynomialMutation(std::vector<double>& x);
  void AssignRankAndCrowding(std::vector<Nsga2Individual>& pop) const;

  std::vector<DecisionBounds> bounds_;
  ObjectiveFn objective_;
  Nsga2Options options_;
  Rng rng_;
};

}  // namespace dlrover

#endif  // DLROVER_BRAIN_NSGA2_H_
