#ifndef DLROVER_BRAIN_WARM_START_H_
#define DLROVER_BRAIN_WARM_START_H_

#include "brain/config_db.h"
#include "ps/job_config.h"

namespace dlrover {

struct WarmStartOptions {
  /// Number of similar historical jobs to smooth over (Algorithm 1's k).
  int top_k = 5;
  /// Exponential smoothing factor mu in (0, 1); higher weights the more
  /// similar job of each step.
  double mu = 0.5;
  /// Fallback used when the database has no usable history (cold start).
  JobConfig default_config;
};

/// Pre-scaling stage: warm-starting (paper Algorithm 1).
///
/// Retrieves the top-k most similar historical jobs and blends their final
/// configurations with exponential smoothing, ending on the most similar
/// one: A-bar^i = mu * A^i + (1 - mu) * A-bar^{i-1}. Counts are rounded at
/// the end; the result is a start-up allocation close to the eventual
/// optimum, which shrinks the number of later scaling operations.
JobConfig WarmStartConfig(const ConfigDb& db, const JobMetadata& query,
                          const WarmStartOptions& options);

}  // namespace dlrover

#endif  // DLROVER_BRAIN_WARM_START_H_
