#ifndef DLROVER_BRAIN_PLAN_GENERATOR_H_
#define DLROVER_BRAIN_PLAN_GENERATOR_H_

#include <vector>

#include "brain/nsga2.h"
#include "brain/objectives.h"
#include "perfmodel/throughput_model.h"
#include "ps/job_config.h"

namespace dlrover {

/// Search space limits for one job's resource plans. Setting min == max
/// freezes a dimension — the brain does this for variables the fitted model
/// has no observational support for (extrapolating an unidentified
/// coefficient would let the optimizer "save" resources it cannot actually
/// model).
struct PlanSearchSpace {
  int min_workers = 1;
  int max_workers = 40;
  int min_ps = 1;
  int max_ps = 8;
  Cores min_worker_cpu = 1.0;
  Cores max_worker_cpu = 16.0;
  Cores min_ps_cpu = 1.0;
  Cores max_ps_cpu = 16.0;
};

struct PlanGeneratorOptions {
  PlanSearchSpace space;
  PriceTable prices;
  ScalingOverheadModel overhead;
  ThroughputGainOptions gain;
  WeightOptions weight;
  MigrationMode mode = MigrationMode::kSeamless;
  bool flash_checkpoint = true;
  Nsga2Options nsga2;
};

/// Job-level resource-plan candidate generation (paper Section 4.3, scaling
/// stage): runs NSGA-II over (w, p, lambda_w, lambda_p) minimizing
/// (RC(A), 1/TG(A)) under the fitted throughput model, returning the Pareto
/// frontier as scored PlanCandidates. Memory fields are carried over from
/// the current config (the OOM predictor owns memory sizing).
class PlanGenerator {
 public:
  explicit PlanGenerator(const PlanGeneratorOptions& options)
      : options_(options) {}

  /// `space_override` (optional) narrows the search space for this call;
  /// pass nullptr to use the configured default.
  std::vector<PlanCandidate> Generate(const ThroughputModel& model,
                                      const PerfModelParams& params,
                                      uint64_t batch_size,
                                      const JobConfig& current,
                                      double current_throughput,
                                      double remaining_samples,
                                      Bytes model_bytes,
                                      const PlanSearchSpace* space_override =
                                          nullptr) const;

  /// Scores one concrete config exactly as Generate() does; used by tests,
  /// by baselines and to score the "keep the current allocation" option.
  PlanCandidate Score(const ThroughputModel& model,
                      const PerfModelParams& params, uint64_t batch_size,
                      const JobConfig& current, const JobConfig& candidate,
                      double current_throughput, double remaining_samples,
                      Bytes model_bytes) const;

  const PlanGeneratorOptions& options() const { return options_; }

 private:
  PlanGeneratorOptions options_;
};

}  // namespace dlrover

#endif  // DLROVER_BRAIN_PLAN_GENERATOR_H_
