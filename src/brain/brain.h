#ifndef DLROVER_BRAIN_BRAIN_H_
#define DLROVER_BRAIN_BRAIN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "brain/config_db.h"
#include "brain/greedy_selector.h"
#include "brain/plan_generator.h"
#include "brain/warm_start.h"
#include "perfmodel/throughput_model.h"
#include "ps/training_job.h"
#include "sim/simulator.h"

namespace dlrover {

struct BrainOptions {
  /// Scheduling round interval (the paper adjusts every 3 minutes in the
  /// auto-scaling ablation).
  Duration round_interval = Minutes(3);
  /// Total resource budget S available to DLRM training (Eqn 13).
  ResourceSpec budget{640.0, TiB(3.75)};
  PlanGeneratorOptions plan;
  WarmStartOptions warm_start;
  /// Plans must beat the current throughput by this relative margin to be
  /// applied (hysteresis against churn).
  double min_relative_gain = 0.05;
  /// Measured/predicted throughput ratio below which a job is considered
  /// degraded (hot PS / interference); two consecutive degraded rounds
  /// trigger a seamless rebalancing migration.
  double degraded_ratio = 0.55;
  /// Sliding window of profiler observations kept per job.
  size_t fitter_window = 240;
  /// Rounds to wait after applying a plan before proposing another for the
  /// same job (lets the new configuration produce clean measurements).
  int plan_cooldown_rounds = 3;
};

/// The cluster brain (paper Fig 4): receives runtime profiles from job
/// masters, fits each job's resource-performance model online, generates
/// Pareto plan candidates with NSGA-II, selects cluster-wide plans with
/// weighted greedy under the budget, and drives instability handling
/// (straggler mitigation, OOM prevention, hot-PS rebalancing). Implements
/// the full three-stage algorithm:
///   stage 1  WarmStart()   — pre-scaling, from the config DB
///   stage 2  RunRound()    — auto-scaling while the job runs
///   stage 3  (within RunRound) — post-scaling instability handling
class ClusterBrain {
 public:
  ClusterBrain(Simulator* sim, const BrainOptions& options);

  /// Stage 1: produces a warm-start configuration for a new job.
  JobConfig WarmStart(const JobMetadata& meta) const;

  /// Puts a job under management. The brain does not own the job; the
  /// caller must keep it alive and must not destroy it mid-simulation.
  void Manage(TrainingJob* job, const JobMetadata& meta);

  /// Attaches the cluster for node-health awareness: every round subtracts
  /// the cluster's quarantined capacity (cordoned + suspect nodes) from the
  /// selection budget, so the plan generator stops proposing capacity the
  /// control plane has fenced off. Optional — with no cluster attached, or
  /// nothing quarantined, rounds are unchanged.
  void AttachCluster(const Cluster* cluster) { cluster_ = cluster; }

  /// Starts periodic scheduling rounds.
  void Start();
  void Stop();

  /// One scheduling round (public so tests and benches can step manually).
  void RunRound();

  ConfigDb& config_db() { return config_db_; }
  const BrainOptions& options() const { return options_; }

  /// Introspection for tests/benches.
  struct ManagedJobView {
    const TrainingJob* job;
    bool fitted;
    PerfModelParams params;
    size_t observations;
  };
  std::vector<ManagedJobView> managed_jobs() const;

  /// Total number of plans applied across all rounds.
  int plans_applied() const { return plans_applied_; }
  int rebalances_triggered() const { return rebalances_; }
  /// Capacity withheld from the selector in the most recent round.
  ResourceSpec last_blacklisted() const { return last_blacklisted_; }

 private:
  struct ManagedJob {
    TrainingJob* job = nullptr;
    JobMetadata meta;
    std::unique_ptr<ThroughputModel> model;
    std::unique_ptr<ModelFitter> fitter;
    size_t history_cursor = 0;
    PerfModelParams params;
    bool fitted = false;
    int degraded_rounds = 0;
    int rounds_since_plan = 1000;  // large: no plan applied yet
    double best_throughput = 0.0;
    int explore_step = 0;
    bool recorded = false;
    /// Monotone per-job plan sequence for epoch/lease fencing: every plan
    /// the brain emits for this job carries the next number, so a delayed
    /// duplicate or reordered stale delivery is rejected at apply time.
    uint64_t next_plan_seq = 0;
  };

  void IngestProfiles(ManagedJob& managed);
  void HandleInstability(ManagedJob& managed);
  void RecordFinished(ManagedJob& managed);
  /// Routes one plan to the job. Without a control channel this is a
  /// direct (sequence-tracked) apply, byte-identical to the historical
  /// call; with one, the plan travels as a reliable channel message pinned
  /// to the job master's handle, and OK means "handed to the network".
  Status DeliverPlan(ManagedJob& managed, const JobConfig& config,
                     MigrationMode mode);

  Simulator* sim_;
  BrainOptions options_;
  ConfigDb config_db_;
  std::vector<std::unique_ptr<ManagedJob>> jobs_;
  std::unique_ptr<PeriodicTask> round_task_;
  const Cluster* cluster_ = nullptr;
  ResourceSpec last_blacklisted_;
  int plans_applied_ = 0;
  int rebalances_ = 0;
  uint64_t next_job_id_ = 1;
};

}  // namespace dlrover

#endif  // DLROVER_BRAIN_BRAIN_H_
