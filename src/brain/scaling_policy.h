#ifndef DLROVER_BRAIN_SCALING_POLICY_H_
#define DLROVER_BRAIN_SCALING_POLICY_H_

#include <optional>
#include <string>

#include "ps/job_config.h"
#include "ps/training_job.h"

namespace dlrover {

/// A resource decision for one job.
struct ResourcePlan {
  JobConfig config;
  MigrationMode mode = MigrationMode::kSeamless;
};

/// Plug-in scaling algorithm API (paper Section 4.3, "Plug-in Algorithm
/// API"): DLRover-RM's weighted-greedy algorithm suits AntGroup's clusters,
/// but operators with specialized hardware can swap in their own policy.
/// Implementations are called once per scheduling round per running job and
/// may return no plan (keep the current allocation). The baselines
/// (Elastic Scheduler, Optimus) implement this interface too, which is what
/// makes the head-to-head benchmarks drop-in.
class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;

  virtual std::string name() const = 0;

  /// Proposes a plan for `job` at the current round; nullopt keeps the
  /// current allocation.
  virtual std::optional<ResourcePlan> Propose(TrainingJob& job) = 0;

  /// Called when a job finishes, for policies that learn across jobs.
  virtual void OnJobFinished(TrainingJob& job) { (void)job; }
};

}  // namespace dlrover

#endif  // DLROVER_BRAIN_SCALING_POLICY_H_
