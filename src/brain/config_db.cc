#include "brain/config_db.h"

#include <algorithm>
#include <cmath>

namespace dlrover {

double ConfigDb::Similarity(const JobMetadata& a, const JobMetadata& b) {
  double score = 0.0;
  // Model architecture is the strongest predictor of resource shape.
  score += (a.model == b.model) ? 0.40 : 0.0;
  // Same user tends to mean same data sources and pipelines.
  score += (a.user == b.user) ? 0.20 : 0.0;
  // Batch size, step budget and declared model size compared on log scale.
  auto ratio_score = [](double x, double y) {
    if (x <= 0.0 || y <= 0.0) return 0.0;
    const double r = std::fabs(std::log(x / y));
    return std::max(0.0, 1.0 - r);  // 1 when equal, 0 at e x difference
  };
  score += 0.10 * ratio_score(static_cast<double>(a.batch_size),
                              static_cast<double>(b.batch_size));
  score += 0.10 * ratio_score(static_cast<double>(a.total_steps),
                              static_cast<double>(b.total_steps));
  score += 0.20 * ratio_score(a.declared_model_bytes, b.declared_model_bytes);
  // Quota is part of the job's metadata: a 10-worker job should copy other
  // small jobs (which run wider per-pod CPU), not a 40-worker giant.
  score += 0.15 * ratio_score(static_cast<double>(a.max_workers_quota),
                              static_cast<double>(b.max_workers_quota));
  return score;
}

std::vector<JobRecord> ConfigDb::TopKSimilar(const JobMetadata& query,
                                             int k) const {
  std::vector<std::pair<double, const JobRecord*>> scored;
  scored.reserve(records_.size());
  for (const JobRecord& record : records_) {
    if (!record.completed) continue;
    scored.emplace_back(Similarity(query, record.meta), &record);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& x, const auto& y) {
                     return x.first > y.first;
                   });
  const size_t take = std::min<size_t>(static_cast<size_t>(std::max(0, k)),
                                       scored.size());
  // Ordered least-similar first so exponential smoothing ends on the most
  // similar job (paper Algorithm 1: A^{k-1} has the highest similarity).
  std::vector<JobRecord> out;
  out.reserve(take);
  for (size_t i = take; i-- > 0;) {
    out.push_back(*scored[i].second);
  }
  return out;
}

}  // namespace dlrover
