#ifndef DLROVER_BRAIN_OBJECTIVES_H_
#define DLROVER_BRAIN_OBJECTIVES_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "ps/job_config.h"
#include "ps/training_job.h"

namespace dlrover {

/// Money(a_r): unit prices used by the Resource Cost function (Eqn 7).
/// Arbitrary but consistent units (USD per resource-hour).
struct PriceTable {
  double cpu_core_hour = 0.033;   // ~ cloud vCPU price
  double mem_gib_hour = 0.0045;
};

/// RC(A) — Eqn 7: total expense rate (USD/hour) of an allocation.
double ResourceCost(const JobConfig& config, const PriceTable& prices);

/// Overhead(A) — wasted training time caused by applying a plan, estimated
/// from historical cluster statistics (pod startup times, checkpoint
/// bandwidths). Mirrors what the paper derives from its config DB.
struct ScalingOverheadModel {
  /// Mean pod startup (image pull + boot) from historical stats.
  Duration mean_pod_startup = Seconds(45);
  /// Time to save+load a checkpoint per byte for each tier.
  double rds_secs_per_byte = 1.0 / MiBps(64);
  double cache_secs_per_byte = 1.0 / GiBps(24);
  Duration rds_fixed = Seconds(90);    // save + load coordination
  Duration cache_fixed = Seconds(0.5);

  /// Estimated wall-clock training time lost when moving `from` -> `to`.
  Duration Estimate(const JobConfig& from, const JobConfig& to,
                    MigrationMode mode, bool flash_checkpoint,
                    Bytes model_bytes) const;
};

/// TG(A) — Eqn 8: throughput gain net of scaling overhead. The overhead (a
/// time) is converted into a throughput-equivalent penalty by amortizing
/// the lost samples over `amortization_horizon`:
///   TG = delta_psi - overhead * psi_new / horizon.
struct ThroughputGainOptions {
  Duration amortization_horizon = Minutes(30);
};

double ThroughputGain(double current_throughput, double planned_throughput,
                      Duration overhead,
                      const ThroughputGainOptions& options);

/// RE(A) — Eqn 11: throughput gain per unit of *additional* resource cost.
/// Plans that free resources while keeping throughput get a large RE.
double ResourceEfficiency(double throughput_gain, double cost_delta);

/// WG(A) — Eqn 14: priority weight from the job's remaining time under the
/// plan. rho > 0 prioritizes short jobs (AntGroup uses rho = 2.5).
struct WeightOptions {
  double rho = 2.5;
  double epsilon = 1e-6;
  /// Remaining-time scale (seconds) that normalizes the weight so rho
  /// exponentiation stays numerically tame.
  double time_scale = 3600.0;
};

double PriorityWeight(double remaining_samples, double planned_throughput,
                      const WeightOptions& options);

/// A scored candidate resource plan for one job.
struct PlanCandidate {
  JobConfig config;
  double predicted_throughput = 0.0;
  Duration overhead = 0.0;
  double throughput_gain = 0.0;
  double resource_cost = 0.0;   // RC of the full allocation
  double cost_delta = 0.0;      // RC(new) - RC(current)
  double resource_efficiency = 0.0;
  double weight = 0.0;          // WG
  std::string ToString() const;
};

}  // namespace dlrover

#endif  // DLROVER_BRAIN_OBJECTIVES_H_
