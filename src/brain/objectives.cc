#include "brain/objectives.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dlrover {

double ResourceCost(const JobConfig& config, const PriceTable& prices) {
  return config.TotalCpu() * prices.cpu_core_hour +
         ToGiB(config.TotalMemory()) * prices.mem_gib_hour;
}

Duration ScalingOverheadModel::Estimate(const JobConfig& from,
                                        const JobConfig& to,
                                        MigrationMode mode,
                                        bool flash_checkpoint,
                                        Bytes model_bytes) const {
  const bool worker_count_only =
      to.num_ps == from.num_ps && to.worker_cpu == from.worker_cpu &&
      to.ps_cpu == from.ps_cpu && to.worker_memory == from.worker_memory &&
      to.ps_memory == from.ps_memory;
  if (from == to) return 0.0;

  if (worker_count_only && mode == MigrationMode::kSeamless) {
    // New workers join the shards queue; no training pause. Small charge
    // for the ramp while pods start.
    const int added = std::max(0, to.num_workers - from.num_workers);
    return added > 0 ? mean_pod_startup * 0.25 : Seconds(1);
  }

  const Duration checkpoint_cost =
      flash_checkpoint
          ? 2.0 * (cache_fixed + model_bytes * cache_secs_per_byte)
          : 2.0 * (rds_fixed + model_bytes * rds_secs_per_byte);
  if (mode == MigrationMode::kSeamless) {
    // Pod startup overlaps training; only the checkpoint handoff pauses.
    return checkpoint_cost;
  }
  // Stop-and-restart: checkpoint + full redeployment on the critical path.
  return checkpoint_cost + mean_pod_startup * 1.5;
}

double ThroughputGain(double current_throughput, double planned_throughput,
                      Duration overhead,
                      const ThroughputGainOptions& options) {
  const double delta = planned_throughput - current_throughput;
  const double horizon = std::max(1.0, options.amortization_horizon);
  const double penalty = overhead * planned_throughput / horizon;
  return delta - penalty;
}

double ResourceEfficiency(double throughput_gain, double cost_delta) {
  // Guard the denominator: near-free plans are scored against a small
  // nominal cost so RE stays finite; freeing resources (negative delta)
  // while gaining throughput is maximally efficient.
  const double kMinCost = 1e-3;
  if (cost_delta <= 0.0) {
    return throughput_gain >= 0.0 ? throughput_gain / kMinCost
                                  : throughput_gain;
  }
  return throughput_gain / std::max(kMinCost, cost_delta);
}

double PriorityWeight(double remaining_samples, double planned_throughput,
                      const WeightOptions& options) {
  const double psi = std::max(1e-9, planned_throughput);
  const double remaining_time = remaining_samples / psi;  // Phi / Psi
  const double scaled =
      remaining_time / std::max(1.0, options.time_scale) + options.epsilon;
  return 1.0 / std::pow(scaled, options.rho);
}

std::string PlanCandidate::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s psi=%.0f tg=%.0f rc=%.3f dcost=%.3f re=%.1f wg=%.3g",
                config.ToString().c_str(), predicted_throughput,
                throughput_gain, resource_cost, cost_delta,
                resource_efficiency, weight);
  return buf;
}

}  // namespace dlrover
