#include "brain/greedy_selector.h"

#include <algorithm>

namespace dlrover {

std::map<uint64_t, PlanCandidate> GreedySelector::Select(
    const std::vector<JobPlanRequest>& requests, ResourceSpec budget) {
  // Start from the budget left after everyone's *current* allocation: a
  // selected plan consumes (new - current) of the free pool; plans that
  // shrink a job release resources back into it.
  ResourceSpec free_pool = budget;
  for (const JobPlanRequest& request : requests) {
    free_pool -= request.current.TotalResources();
  }
  free_pool.cpu = std::max(0.0, free_pool.cpu);
  free_pool.memory = std::max(0.0, free_pool.memory);

  struct Entry {
    const JobPlanRequest* request;
    const PlanCandidate* candidate;
    double score;
  };
  std::vector<Entry> entries;
  for (const JobPlanRequest& request : requests) {
    for (const PlanCandidate& candidate : request.candidates) {
      if (candidate.throughput_gain <= 0.0) continue;
      entries.push_back({&request, &candidate,
                         candidate.resource_efficiency * candidate.weight});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.score > b.score;
                   });

  std::map<uint64_t, PlanCandidate> selected;
  for (const Entry& entry : entries) {
    const uint64_t id = entry.request->job_id;
    if (selected.count(id) > 0) continue;  // one plan per job per round
    const ResourceSpec delta = entry.candidate->config.TotalResources() -
                               entry.request->current.TotalResources();
    const ResourceSpec needed{std::max(0.0, delta.cpu),
                              std::max(0.0, delta.memory)};
    if (!needed.FitsIn(free_pool)) continue;
    free_pool -= delta;  // shrinking plans grow the pool
    free_pool.cpu = std::max(0.0, free_pool.cpu);
    free_pool.memory = std::max(0.0, free_pool.memory);
    selected[id] = *entry.candidate;
  }
  return selected;
}

}  // namespace dlrover
