#include "brain/brain.h"

#include <algorithm>
#include <set>

#include "cluster/control_channel.h"
#include "common/logging.h"

namespace dlrover {

ClusterBrain::ClusterBrain(Simulator* sim, const BrainOptions& options)
    : sim_(sim), options_(options) {
  round_task_ = std::make_unique<PeriodicTask>(
      sim_, options_.round_interval, [this] { RunRound(); });
}

JobConfig ClusterBrain::WarmStart(const JobMetadata& meta) const {
  return WarmStartConfig(config_db_, meta, options_.warm_start);
}

void ClusterBrain::Manage(TrainingJob* job, const JobMetadata& meta) {
  auto managed = std::make_unique<ManagedJob>();
  managed->job = job;
  managed->meta = meta;
  const ModelProfile& profile = job->model_profile();
  // Structural constants (dense size, embedding dim, bandwidth) are known
  // from the model graph and the fabric; the alphas/betas are NOT taken
  // from the profile — they must be learned from runtime observations.
  managed->model = std::make_unique<ThroughputModel>(
      profile.dense_param_bytes, profile.embedding_dim,
      job->environment().network_bandwidth);
  managed->fitter = std::make_unique<ModelFitter>(*managed->model);
  jobs_.push_back(std::move(managed));
}

void ClusterBrain::Start() { round_task_->Start(); }
void ClusterBrain::Stop() { round_task_->Stop(); }

void ClusterBrain::IngestProfiles(ManagedJob& managed) {
  const auto& history = managed.job->history();
  for (; managed.history_cursor < history.size(); ++managed.history_cursor) {
    const ThroughputSample& sample = history[managed.history_cursor];
    if (sample.observed_iter_time <= 0.0 || sample.active_workers <= 0) {
      continue;
    }
    PerfObservation obs;
    obs.batch_size = managed.job->spec().batch_size;
    obs.workers = sample.active_workers;
    obs.ps = sample.config.num_ps;
    obs.worker_cpu = sample.config.worker_cpu;
    obs.ps_cpu = sample.config.ps_cpu;
    obs.iter_time = sample.observed_iter_time;
    managed.fitter->AddObservation(obs);
  }
  // Sliding window: drop stale observations so the fit tracks the present.
  if (managed.fitter->observation_count() > options_.fitter_window) {
    std::vector<PerfObservation> recent(
        managed.fitter->observations().end() -
            static_cast<long>(options_.fitter_window),
        managed.fitter->observations().end());
    managed.fitter->Clear();
    for (const auto& obs : recent) managed.fitter->AddObservation(obs);
  }
}

void ClusterBrain::HandleInstability(ManagedJob& managed) {
  TrainingJob& job = *managed.job;
  // Straggling workers: shrink their shards (dynamic data sharding).
  job.MitigateStragglers();
  // Predicted OOM: pre-scale PS memory via seamless migration.
  job.MaybePreventOom();

  // Hot PS / interference: measured throughput far below what the fitted
  // model predicts for this configuration, persistently. A seamless
  // migration replaces pods and rebalances parameter shares (DeepRec-style
  // even redistribution).
  if (job.state() != JobState::kRunning) return;
  const double predicted =
      managed.fitted ? managed.model->PredictThroughput(
                           managed.params, job.spec().batch_size,
                           job.config())
                     : 0.0;
  const double measured = job.SmoothedThroughput();
  // Two degradation signals: (a) far below the fitted model's prediction
  // for this configuration; (b) far below the job's own demonstrated best
  // (robust even when degraded samples have already polluted the fit).
  const bool below_model = managed.fitted && predicted > 0.0 &&
                           measured > 0.0 &&
                           measured < options_.degraded_ratio * predicted;
  const bool below_best =
      managed.best_throughput > 0.0 && measured > 0.0 &&
      measured < 0.5 * managed.best_throughput;
  if (below_model || below_best) {
    ++managed.degraded_rounds;
    // Severe collapse (a PS at a few % of its speed) is unambiguous:
    // escalate immediately instead of waiting a confirmation round.
    if (measured < 0.35 * std::max(predicted, managed.best_throughput)) {
      ++managed.degraded_rounds;
    }
  } else {
    managed.degraded_rounds = 0;
    managed.best_throughput = std::max(managed.best_throughput, measured);
  }
  if (managed.degraded_rounds >= 2) {
    managed.degraded_rounds = 0;
    ++rebalances_;
    DLROVER_LOG_STREAM(Info)
        << job.spec().name << ": degraded throughput (" << measured << " vs "
        << predicted << " predicted), seamless rebalance";
    const Status status =
        DeliverPlan(managed, job.config(), MigrationMode::kSeamless);
    if (!status.ok()) {
      DLROVER_LOG_STREAM(Warning)
          << job.spec().name << ": rebalance rejected: " << status;
    } else {
      // Re-learn the healthy level on the fresh deployment.
      managed.best_throughput = 0.0;
    }
  }
}

Status ClusterBrain::DeliverPlan(ManagedJob& managed, const JobConfig& config,
                                 MigrationMode mode) {
  ControlChannel* ch =
      cluster_ != nullptr ? cluster_->control_channel() : nullptr;
  const uint64_t seq = ++managed.next_plan_seq;
  if (ch == nullptr) {
    return managed.job->ApplyPlanFenced(config, mode, seq);
  }
  // The plan crosses the brain -> master hop as a reliable message pinned
  // to the job master's failover handle: a cell partition delays it (capped
  // jittered backoff until healed or past the deadline), a master crash
  // fences copies addressed to the dead incarnation, and the sequence
  // number fences whatever stale duplicates still land. OK here only means
  // the network has it; brain-side bookkeeping (cooldown, best-throughput
  // reset) proceeds optimistically, which also keeps the brain from
  // spamming plans into a partition.
  TrainingJob* job = managed.job;
  ch->SendReliable(
      ControlMessageKind::kPlan, ControlChannel::kBrain,
      ControlChannel::kMaster,
      [job, config, mode, seq] {
        (void)job->DeliverPlanFromBrain(config, mode, seq);
      },
      /*on_expire=*/nullptr, job->master_channel_handle());
  return Status::OK();
}

void ClusterBrain::RecordFinished(ManagedJob& managed) {
  if (managed.recorded) return;
  managed.recorded = true;
  JobRecord record;
  record.meta = managed.meta;
  record.final_config = managed.job->config();
  record.final_throughput = managed.job->MeasuredThroughput();
  record.jct = managed.job->stats().Jct();
  record.completed = managed.job->state() == JobState::kCompleted;
  config_db_.Insert(record);
}

void ClusterBrain::RunRound() {
  // Per-job: ingest profiles, fit, handle instability; collect plan
  // requests from jobs healthy enough to scale.
  std::vector<JobPlanRequest> requests;
  std::vector<ManagedJob*> by_id;
  for (auto& managed_ptr : jobs_) {
    ManagedJob& managed = *managed_ptr;
    TrainingJob& job = *managed.job;
    if (job.finished()) {
      RecordFinished(managed);
      continue;
    }
    IngestProfiles(managed);
    if (managed.fitter->ReadyToFit()) {
      auto fitted = managed.fitter->Fit();
      if (fitted.ok()) {
        managed.params = *fitted;
        managed.fitted = true;
      }
    }
    HandleInstability(managed);
    const bool exploring = managed.explore_step < 4;
    if ((!managed.fitted || exploring) &&
        job.state() == JobState::kRunning &&
        managed.fitter->observation_count() >= 2) {
      // Bootstrap exploration: the NNLS fit needs observations across
      // configuration shapes — and each decision variable the optimizer is
      // allowed to move must have been observed at >= 2 values. Probe
      // workers, PSes, and per-pod CPUs seamlessly; visible as the
      // stepwise early growth in the paper's Fig 10 cold-start curves.
      JobConfig probe = job.config();
      switch (managed.explore_step % 4) {
        case 0: {
          const int cap = std::min(options_.plan.space.max_workers,
                                   managed.meta.max_workers_quota);
          const int up = std::min(
              std::max(probe.num_workers + 2, probe.num_workers * 3 / 2),
              cap);
          // At the ceiling, probe downward instead: diversity is what the
          // fit needs, not growth per se.
          probe.num_workers =
              up != probe.num_workers ? up
                                      : std::max(2, probe.num_workers - 4);
          break;
        }
        case 1: {
          const int up =
              std::min(probe.num_ps + 1, options_.plan.space.max_ps);
          probe.num_ps =
              up != probe.num_ps ? up : std::max(1, probe.num_ps - 1);
          break;
        }
        case 2: {
          const Cores up = std::min(probe.worker_cpu + 2.0,
                                    options_.plan.space.max_worker_cpu);
          probe.worker_cpu =
              up != probe.worker_cpu ? up
                                     : std::max(1.0, probe.worker_cpu - 2.0);
          break;
        }
        default: {
          const Cores up = std::min(probe.ps_cpu + 2.0,
                                    options_.plan.space.max_ps_cpu);
          probe.ps_cpu =
              up != probe.ps_cpu ? up : std::max(1.0, probe.ps_cpu - 2.0);
          break;
        }
      }
      ++managed.explore_step;
      if (!(probe == job.config())) {
        (void)DeliverPlan(managed, probe, MigrationMode::kSeamless);
      }
      continue;
    }
    if (!managed.fitted || job.state() != JobState::kRunning) continue;
    if (managed.degraded_rounds > 0) continue;  // wait for a clean window
    ++managed.rounds_since_plan;
    if (managed.rounds_since_plan <= options_.plan_cooldown_rounds) continue;

    // Trust region: the fitted model is only trustworthy near observed
    // configurations. Restrict each decision variable to a modest expansion
    // of its observed support (and freeze it entirely when only one value
    // was ever observed) — applying a plan then extends the support, so the
    // region grows organically round over round.
    PlanSearchSpace space = options_.plan.space;
    space.max_workers = std::min(space.max_workers,
                                 managed.meta.max_workers_quota);
    {
      std::set<int> ws, ps;
      std::set<double> lws, lps;
      for (const PerfObservation& obs : managed.fitter->observations()) {
        ws.insert(obs.workers);
        ps.insert(obs.ps);
        lws.insert(obs.worker_cpu);
        lps.insert(obs.ps_cpu);
      }
      auto bound_int = [](const std::set<int>& seen, int current, int* lo,
                          int* hi) {
        if (seen.size() < 2) {
          *lo = *hi = current;
          return;
        }
        *lo = std::max(*lo, std::max(1, *seen.begin() - 2));
        *hi = std::min(*hi, *seen.rbegin() * 2);
      };
      auto bound_cores = [](const std::set<double>& seen, double current,
                            Cores* lo, Cores* hi) {
        if (seen.size() < 2) {
          *lo = *hi = current;
          return;
        }
        *lo = std::max(*lo, std::max(1.0, *seen.begin() * 0.75));
        *hi = std::min(*hi, *seen.rbegin() * 1.5);
      };
      bound_int(ws, job.config().num_workers, &space.min_workers,
                &space.max_workers);
      bound_int(ps, job.config().num_ps, &space.min_ps, &space.max_ps);
      bound_cores(lws, job.config().worker_cpu, &space.min_worker_cpu,
                  &space.max_worker_cpu);
      bound_cores(lps, job.config().ps_cpu, &space.min_ps_cpu,
                  &space.max_ps_cpu);
    }

    PlanGenerator generator(options_.plan);
    JobPlanRequest request;
    request.job_id = static_cast<uint64_t>(by_id.size());
    request.current = job.config();
    request.candidates = generator.Generate(
        *managed.model, managed.params, job.spec().batch_size, job.config(),
        job.SmoothedThroughput(),
        static_cast<double>(job.RemainingSamples()), job.ModelBytes(),
        &space);
    // Hysteresis: drop marginal plans.
    const double floor_gain =
        options_.min_relative_gain * std::max(1.0, job.SmoothedThroughput());
    request.candidates.erase(
        std::remove_if(request.candidates.begin(), request.candidates.end(),
                       [&](const PlanCandidate& c) {
                         return c.throughput_gain < floor_gain;
                       }),
        request.candidates.end());
    if (!request.candidates.empty()) {
      requests.push_back(std::move(request));
      by_id.push_back(&managed);
    }
  }
  if (requests.empty()) return;

  // Node-health blacklist: capacity on cordoned or suspect nodes is not
  // plannable — subtract it from the budget so the weighted-greedy selector
  // cannot hand it out. With no cluster attached (or nothing quarantined)
  // the budget is exactly options_.budget, as before.
  ResourceSpec budget = options_.budget;
  last_blacklisted_ = ResourceSpec{};
  if (cluster_ != nullptr) {
    last_blacklisted_ = cluster_->QuarantinedCapacity();
    budget.cpu = std::max(0.0, budget.cpu - last_blacklisted_.cpu);
    budget.memory = std::max(0.0, budget.memory - last_blacklisted_.memory);
  }
  const auto selected = GreedySelector::Select(requests, budget);
  for (const auto& [id, plan] : selected) {
    ManagedJob& managed = *by_id[id];
    const Status status = DeliverPlan(
        managed, plan.config, options_.plan.mode);
    if (status.ok()) {
      ++plans_applied_;
      managed.rounds_since_plan = 0;
    } else {
      DLROVER_LOG_STREAM(Warning) << managed.job->spec().name
                                  << ": plan rejected: " << status;
    }
  }
}

std::vector<ClusterBrain::ManagedJobView> ClusterBrain::managed_jobs() const {
  std::vector<ManagedJobView> views;
  views.reserve(jobs_.size());
  for (const auto& managed : jobs_) {
    views.push_back({managed->job, managed->fitted, managed->params,
                     managed->fitter->observation_count()});
  }
  return views;
}

}  // namespace dlrover
