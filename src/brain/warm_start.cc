#include "brain/warm_start.h"

#include <algorithm>
#include <cmath>

namespace dlrover {

namespace {

/// Continuous view of a config for smoothing arithmetic.
struct SmoothConfig {
  double workers, ps, worker_cpu, ps_cpu, worker_mem, ps_mem;

  static SmoothConfig From(const JobConfig& c) {
    return {static_cast<double>(c.num_workers), static_cast<double>(c.num_ps),
            c.worker_cpu, c.ps_cpu, c.worker_memory, c.ps_memory};
  }
  JobConfig Round() const {
    JobConfig c;
    c.num_workers = std::max(1, static_cast<int>(std::lround(workers)));
    c.num_ps = std::max(1, static_cast<int>(std::lround(ps)));
    c.worker_cpu = std::max(1.0, std::round(worker_cpu * 2.0) / 2.0);
    c.ps_cpu = std::max(1.0, std::round(ps_cpu * 2.0) / 2.0);
    c.worker_memory = std::max(GiB(1), worker_mem);
    c.ps_memory = std::max(GiB(1), ps_mem);
    return c;
  }
};

SmoothConfig Blend(double mu, const SmoothConfig& a, const SmoothConfig& b) {
  // mu * a + (1 - mu) * b.
  return {mu * a.workers + (1 - mu) * b.workers,
          mu * a.ps + (1 - mu) * b.ps,
          mu * a.worker_cpu + (1 - mu) * b.worker_cpu,
          mu * a.ps_cpu + (1 - mu) * b.ps_cpu,
          mu * a.worker_mem + (1 - mu) * b.worker_mem,
          mu * a.ps_mem + (1 - mu) * b.ps_mem};
}

}  // namespace

JobConfig WarmStartConfig(const ConfigDb& db, const JobMetadata& query,
                          const WarmStartOptions& options) {
  const std::vector<JobRecord> similar =
      db.TopKSimilar(query, options.top_k);
  if (similar.empty()) return options.default_config;

  // Algorithm 1: A-bar^0 = A^0 (least similar of the top-k); then
  // A-bar^i = mu * A^i + (1-mu) * A-bar^{i-1}, ending on the most similar.
  SmoothConfig smoothed = SmoothConfig::From(similar[0].final_config);
  for (size_t i = 1; i < similar.size(); ++i) {
    smoothed = Blend(options.mu, SmoothConfig::From(similar[i].final_config),
                     smoothed);
  }
  return smoothed.Round();
}

}  // namespace dlrover
