#ifndef DLROVER_BRAIN_CONFIG_DB_H_
#define DLROVER_BRAIN_CONFIG_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "ps/job_config.h"
#include "ps/model_profile.h"

namespace dlrover {

/// Metadata features describing a job before it runs; the warm-start
/// similarity search matches new jobs against these.
struct JobMetadata {
  std::string user;
  ModelKind model = ModelKind::kWideDeep;
  uint64_t batch_size = 512;
  uint64_t total_steps = 200000;
  /// User-declared estimate of the model size (dense + embeddings).
  Bytes declared_model_bytes = GiB(1);
  /// The user's worker-count quota for this job (not part of similarity).
  int max_workers_quota = 40;
};

/// One historical trace entry: what a finished job looked like and the
/// allocation it converged to.
struct JobRecord {
  JobMetadata meta;
  JobConfig final_config;
  double final_throughput = 0.0;  // samples/sec at convergence
  Duration jct = 0.0;
  bool completed = true;
};

/// The cluster brain's configuration database (paper Fig 4): stores
/// historical job traces and answers top-k similarity queries for
/// warm-starting.
class ConfigDb {
 public:
  void Insert(const JobRecord& record) { records_.push_back(record); }
  size_t size() const { return records_.size(); }
  const std::vector<JobRecord>& records() const { return records_; }

  /// Similarity in [0, 1]: weighted agreement over user, model type, batch
  /// size, step budget and declared model size (log-scaled ratios).
  static double Similarity(const JobMetadata& a, const JobMetadata& b);

  /// Returns up to k most similar completed records, ordered from least to
  /// most similar (so that Algorithm 1's smoothing ends on the best match).
  std::vector<JobRecord> TopKSimilar(const JobMetadata& query, int k) const;

 private:
  std::vector<JobRecord> records_;
};

}  // namespace dlrover

#endif  // DLROVER_BRAIN_CONFIG_DB_H_
