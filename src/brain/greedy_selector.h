#ifndef DLROVER_BRAIN_GREEDY_SELECTOR_H_
#define DLROVER_BRAIN_GREEDY_SELECTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "brain/objectives.h"
#include "cluster/resources.h"
#include "ps/job_config.h"

namespace dlrover {

/// One job's input to the cluster-level selection round.
struct JobPlanRequest {
  uint64_t job_id = 0;
  JobConfig current;
  /// Pareto candidates from the PlanGenerator, pre-scored.
  std::vector<PlanCandidate> candidates;
};

/// Cluster-level weighted greedy selection (paper Eqns 12-13): choose at
/// most one candidate per job maximizing sum RE(A^j) * WG(A^j) subject to
/// sum A^j <= S, where S is the DLRM system's resource budget. Jobs without
/// a selected candidate keep their current allocation (which is always
/// assumed to fit, since those pods already run).
class GreedySelector {
 public:
  /// `budget` is the total resources available to all jobs (current
  /// allocations included). Returns job_id -> selected new config; jobs not
  /// in the map keep their current config.
  static std::map<uint64_t, PlanCandidate> Select(
      const std::vector<JobPlanRequest>& requests, ResourceSpec budget);
};

}  // namespace dlrover

#endif  // DLROVER_BRAIN_GREEDY_SELECTOR_H_
