#include "brain/plan_generator.h"

#include <algorithm>
#include <cmath>

namespace dlrover {

PlanCandidate PlanGenerator::Score(const ThroughputModel& model,
                                   const PerfModelParams& params,
                                   uint64_t batch_size,
                                   const JobConfig& current,
                                   const JobConfig& candidate,
                                   double current_throughput,
                                   double remaining_samples,
                                   Bytes model_bytes) const {
  PlanCandidate plan;
  plan.config = candidate;
  plan.predicted_throughput =
      model.PredictThroughput(params, batch_size, candidate);
  plan.overhead = options_.overhead.Estimate(current, candidate,
                                             options_.mode,
                                             options_.flash_checkpoint,
                                             model_bytes);
  plan.throughput_gain =
      ThroughputGain(current_throughput, plan.predicted_throughput,
                     plan.overhead, options_.gain);
  plan.resource_cost = ResourceCost(candidate, options_.prices);
  plan.cost_delta =
      plan.resource_cost - ResourceCost(current, options_.prices);
  plan.resource_efficiency =
      ResourceEfficiency(plan.throughput_gain, plan.cost_delta);
  plan.weight = PriorityWeight(remaining_samples, plan.predicted_throughput,
                               options_.weight);
  return plan;
}

std::vector<PlanCandidate> PlanGenerator::Generate(
    const ThroughputModel& model, const PerfModelParams& params,
    uint64_t batch_size, const JobConfig& current, double current_throughput,
    double remaining_samples, Bytes model_bytes,
    const PlanSearchSpace* space_override) const {
  const PlanSearchSpace& space =
      space_override != nullptr ? *space_override : options_.space;
  std::vector<DecisionBounds> bounds = {
      {static_cast<double>(space.min_workers),
       static_cast<double>(space.max_workers), true},  // w
      {static_cast<double>(space.min_ps),
       static_cast<double>(space.max_ps), true},       // p
      {space.min_worker_cpu, space.max_worker_cpu, true},  // lambda_w
      {space.min_ps_cpu, space.max_ps_cpu, true},          // lambda_p
  };

  auto to_config = [&](const std::vector<double>& x) {
    JobConfig config = current;  // memory carried over
    config.num_workers = static_cast<int>(x[0]);
    config.num_ps = static_cast<int>(x[1]);
    config.worker_cpu = x[2];
    config.ps_cpu = x[3];
    return config;
  };

  // Objectives: minimize (RC(A), 1/TG(A)). Non-positive TG maps to a large
  // finite penalty so the front retains only genuinely improving plans.
  auto objective = [&](const std::vector<double>& x) -> std::vector<double> {
    const JobConfig config = to_config(x);
    const PlanCandidate plan =
        Score(model, params, batch_size, current, config, current_throughput,
              remaining_samples, model_bytes);
    const double inv_tg = plan.throughput_gain > 1e-9
                              ? 1.0 / plan.throughput_gain
                              : 1e9 - plan.throughput_gain;
    return {plan.resource_cost, inv_tg};
  };

  Nsga2 nsga2(bounds, objective, options_.nsga2);
  const std::vector<Nsga2Individual> front = nsga2.Run();

  std::vector<PlanCandidate> candidates;
  candidates.reserve(front.size());
  for (const Nsga2Individual& ind : front) {
    const JobConfig config = to_config(ind.x);
    PlanCandidate plan =
        Score(model, params, batch_size, current, config, current_throughput,
              remaining_samples, model_bytes);
    if (plan.throughput_gain <= 0.0) continue;  // keep-current beats these
    candidates.push_back(std::move(plan));
  }
  // Most resource-efficient first: the greedy selector consumes them in
  // this order.
  std::sort(candidates.begin(), candidates.end(),
            [](const PlanCandidate& a, const PlanCandidate& b) {
              return a.resource_efficiency * a.weight >
                     b.resource_efficiency * b.weight;
            });
  return candidates;
}

}  // namespace dlrover
