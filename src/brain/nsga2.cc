#include "brain/nsga2.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>

namespace dlrover {

Nsga2::Nsga2(std::vector<DecisionBounds> bounds, ObjectiveFn objective,
             const Nsga2Options& options)
    : bounds_(std::move(bounds)),
      objective_(std::move(objective)),
      options_(options),
      rng_(options.seed) {
  assert(!bounds_.empty());
  if (options_.mutation_prob <= 0.0) {
    options_.mutation_prob = 1.0 / static_cast<double>(bounds_.size());
  }
}

bool Nsga2::Dominates(const std::vector<double>& a,
                      const std::vector<double>& b) {
  assert(a.size() == b.size());
  bool strictly_better = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::vector<size_t>> Nsga2::NonDominatedSort(
    const std::vector<std::vector<double>>& objectives) {
  const size_t n = objectives.size();
  std::vector<int> domination_count(n, 0);
  std::vector<std::vector<size_t>> dominated_by(n);
  std::vector<std::vector<size_t>> fronts;
  std::vector<size_t> current;

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (Dominates(objectives[i], objectives[j])) {
        dominated_by[i].push_back(j);
      } else if (Dominates(objectives[j], objectives[i])) {
        ++domination_count[i];
      }
    }
    if (domination_count[i] == 0) current.push_back(i);
  }
  while (!current.empty()) {
    fronts.push_back(current);
    std::vector<size_t> next;
    for (size_t i : current) {
      for (size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
  }
  return fronts;
}

std::vector<double> Nsga2::CrowdingDistances(
    const std::vector<std::vector<double>>& objectives,
    const std::vector<size_t>& front) {
  const size_t n = front.size();
  std::vector<double> distance(n, 0.0);
  if (n == 0) return distance;
  const size_t num_objectives = objectives[front[0]].size();
  std::vector<size_t> order(n);
  for (size_t obj = 0; obj < num_objectives; ++obj) {
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return objectives[front[a]][obj] < objectives[front[b]][obj];
    });
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    const double span = objectives[front[order.back()]][obj] -
                        objectives[front[order.front()]][obj];
    if (span <= 0.0) continue;
    for (size_t i = 1; i + 1 < n; ++i) {
      distance[order[i]] += (objectives[front[order[i + 1]]][obj] -
                             objectives[front[order[i - 1]]][obj]) /
                            span;
    }
  }
  return distance;
}

std::vector<double> Nsga2::RandomVector() {
  std::vector<double> x(bounds_.size());
  for (size_t i = 0; i < bounds_.size(); ++i) {
    x[i] = rng_.Uniform(bounds_[i].lo, bounds_[i].hi);
  }
  Clamp(x);
  return x;
}

void Nsga2::Clamp(std::vector<double>& x) const {
  for (size_t i = 0; i < bounds_.size(); ++i) {
    x[i] = std::clamp(x[i], bounds_[i].lo, bounds_[i].hi);
    if (bounds_[i].integer) x[i] = std::round(x[i]);
  }
}

void Nsga2::Evaluate(Nsga2Individual& ind) const {
  ind.objectives = objective_(ind.x);
}

void Nsga2::EvaluateAll(std::vector<Nsga2Individual>& pop) const {
  if (options_.pool == nullptr || pop.size() < 2) {
    for (auto& ind : pop) Evaluate(ind);
    return;
  }
  // Each chunk writes only its own individuals' objective vectors, and the
  // objective itself is a pure function of the decision vector, so the
  // parallel result is identical to the sequential one.
  options_.pool->ParallelFor(0, pop.size(), 0,
                             [&](size_t begin, size_t end) {
                               for (size_t i = begin; i < end; ++i) {
                                 Evaluate(pop[i]);
                               }
                             });
}

void Nsga2::AssignRankAndCrowding(std::vector<Nsga2Individual>& pop) const {
  std::vector<std::vector<double>> objs;
  objs.reserve(pop.size());
  for (const auto& ind : pop) objs.push_back(ind.objectives);
  const auto fronts = NonDominatedSort(objs);
  for (size_t r = 0; r < fronts.size(); ++r) {
    const auto crowding = CrowdingDistances(objs, fronts[r]);
    for (size_t i = 0; i < fronts[r].size(); ++i) {
      pop[fronts[r][i]].rank = static_cast<int>(r);
      pop[fronts[r][i]].crowding = crowding[i];
    }
  }
}

size_t Nsga2::TournamentPick(const std::vector<Nsga2Individual>& pop) {
  const size_t a = rng_.UniformInt(pop.size());
  const size_t b = rng_.UniformInt(pop.size());
  if (pop[a].rank != pop[b].rank) return pop[a].rank < pop[b].rank ? a : b;
  return pop[a].crowding >= pop[b].crowding ? a : b;
}

void Nsga2::SbxCrossover(const std::vector<double>& p1,
                         const std::vector<double>& p2,
                         std::vector<double>& c1, std::vector<double>& c2) {
  c1 = p1;
  c2 = p2;
  if (!rng_.Bernoulli(options_.crossover_prob)) return;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (!rng_.Bernoulli(0.5)) continue;
    const double u = rng_.Uniform();
    const double eta = options_.eta_crossover;
    const double beta =
        u <= 0.5 ? std::pow(2.0 * u, 1.0 / (eta + 1.0))
                 : std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
    const double x1 = p1[i];
    const double x2 = p2[i];
    c1[i] = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
    c2[i] = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
  }
  Clamp(c1);
  Clamp(c2);
}

void Nsga2::PolynomialMutation(std::vector<double>& x) {
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (!rng_.Bernoulli(options_.mutation_prob)) continue;
    const double span = bounds_[i].hi - bounds_[i].lo;
    if (span <= 0.0) continue;
    const double u = rng_.Uniform();
    const double eta = options_.eta_mutation;
    const double delta =
        u < 0.5 ? std::pow(2.0 * u, 1.0 / (eta + 1.0)) - 1.0
                 : 1.0 - std::pow(2.0 * (1.0 - u), 1.0 / (eta + 1.0));
    x[i] += delta * span;
  }
  Clamp(x);
}

std::vector<Nsga2Individual> Nsga2::Run() {
  // Variation (selection, crossover, mutation) draws from the sequential
  // RNG stream; evaluation is batched afterwards so it can fan out over a
  // thread pool without perturbing that stream — the evolution is
  // bit-identical at any pool size.
  std::vector<Nsga2Individual> pop(static_cast<size_t>(options_.population));
  for (auto& ind : pop) ind.x = RandomVector();
  EvaluateAll(pop);
  AssignRankAndCrowding(pop);

  for (int gen = 0; gen < options_.generations; ++gen) {
    std::vector<Nsga2Individual> offspring;
    offspring.reserve(pop.size());
    while (offspring.size() < pop.size()) {
      const auto& p1 = pop[TournamentPick(pop)];
      const auto& p2 = pop[TournamentPick(pop)];
      Nsga2Individual c1;
      Nsga2Individual c2;
      SbxCrossover(p1.x, p2.x, c1.x, c2.x);
      PolynomialMutation(c1.x);
      PolynomialMutation(c2.x);
      offspring.push_back(std::move(c1));
      if (offspring.size() < pop.size()) offspring.push_back(std::move(c2));
    }
    EvaluateAll(offspring);

    // Environmental selection over the combined population.
    std::vector<Nsga2Individual> combined;
    combined.reserve(pop.size() + offspring.size());
    for (auto& ind : pop) combined.push_back(std::move(ind));
    for (auto& ind : offspring) combined.push_back(std::move(ind));
    std::vector<std::vector<double>> objs;
    objs.reserve(combined.size());
    for (const auto& ind : combined) objs.push_back(ind.objectives);
    const auto fronts = NonDominatedSort(objs);

    std::vector<Nsga2Individual> next;
    next.reserve(pop.size());
    for (const auto& front : fronts) {
      if (next.size() >= pop.size()) break;
      if (next.size() + front.size() <= pop.size()) {
        for (size_t i : front) next.push_back(std::move(combined[i]));
      } else {
        const auto crowding = CrowdingDistances(objs, front);
        std::vector<size_t> order(front.size());
        for (size_t i = 0; i < front.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          return crowding[a] > crowding[b];
        });
        for (size_t i : order) {
          if (next.size() >= pop.size()) break;
          next.push_back(std::move(combined[front[i]]));
        }
      }
    }
    pop = std::move(next);
    AssignRankAndCrowding(pop);
  }

  // Collect the final non-dominated front, deduplicated by decision vector.
  std::vector<Nsga2Individual> front;
  std::map<std::vector<double>, bool> seen;
  for (auto& ind : pop) {
    if (ind.rank != 0) continue;
    if (seen.count(ind.x) > 0) continue;
    seen[ind.x] = true;
    front.push_back(std::move(ind));
  }
  return front;
}

}  // namespace dlrover
