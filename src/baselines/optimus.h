#ifndef DLROVER_BASELINES_OPTIMUS_H_
#define DLROVER_BASELINES_OPTIMUS_H_

#include <map>
#include <memory>

#include "brain/scaling_policy.h"
#include "perfmodel/throughput_model.h"

namespace dlrover {

struct OptimusOptions {
  int max_workers = 40;
  int max_ps = 8;
  /// Minimum predicted marginal throughput gain (samples/sec) to act.
  double min_gain = 50.0;
  /// Stop adjusting after this many adjustments that realized < 30% of the
  /// predicted gain.
  int max_disappointments = 2;
};

/// Baseline: Optimus (Peng et al., EuroSys'18) as characterized in the
/// paper — fits an online performance model and greedily adds the single
/// pod (one worker or one PS) with the best predicted marginal gain each
/// round. Two deliberate fidelity points from the paper's critique:
///   1. its model is *lookup-blind* (no T_emb term, Eqn 5), so it
///      misattributes embedding-lookup time and under-provisions PSes; and
///   2. it applies plans via stop-and-restart without accounting for the
///      transition cost.
class OptimusPolicy : public ScalingPolicy {
 public:
  explicit OptimusPolicy(const OptimusOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "optimus"; }
  std::optional<ResourcePlan> Propose(TrainingJob& job) override;

 private:
  struct PerJobState {
    std::unique_ptr<ThroughputModel> model;  // embedding_dim = 0: blind
    std::unique_ptr<ModelFitter> fitter;
    size_t cursor = 0;
    PerfModelParams params;
    bool fitted = false;
    // Convergence guard: adjustments whose realized gain fell far short of
    // the (lookup-blind) prediction count as disappointments; after a few,
    // Optimus stops adjusting (its utility threshold in the original
    // system plays the same role).
    double throughput_before_last_plan = -1.0;
    double predicted_after_last_plan = -1.0;
    int disappointments = 0;
  };

  OptimusOptions options_;
  std::map<const TrainingJob*, PerJobState> states_;
};

}  // namespace dlrover

#endif  // DLROVER_BASELINES_OPTIMUS_H_
