#ifndef DLROVER_BASELINES_MANUAL_H_
#define DLROVER_BASELINES_MANUAL_H_

#include "brain/scaling_policy.h"
#include "common/rng.h"
#include "ps/model_profile.h"

namespace dlrover {

/// Baseline: manual configuration ("w/o DLRover-RM" in the paper) — the
/// Kubeflow-style workflow where a user picks a fixed allocation up front
/// and nothing ever adjusts it.
class ManualPolicy : public ScalingPolicy {
 public:
  std::string name() const override { return "manual"; }
  std::optional<ResourcePlan> Propose(TrainingJob&) override {
    return std::nullopt;
  }
};

/// The hand-tuned near-optimal allocation for each model on the small
/// cluster (what the paper reaches after "re-running the job more than 10
/// times"). Benches use this as the well-tuned reference.
JobConfig WellTunedConfig(ModelKind kind);

/// A plausible first-guess allocation a careful user submits before any
/// tuning: roughly half the converged optimum on both tiers. Baseline
/// schedulers (ES, Optimus) start here — they have no warm-starting stage.
JobConfig TypicalUserStart(ModelKind kind);

/// The flavour of user mistake a misconfigured job carries.
enum class MisconfigKind : int {
  kOverProvisioned = 0,        // wasteful (the common case)
  kStarvedPsCpu = 1,           // hot PSes, long lookups
  kStarvedPsMemory = 2,        // OOM risk as embeddings grow
  kUnderProvisionedWorkers = 3,  // too few/weak workers: slow training
};

/// A typical *user* misconfiguration, drawn from the trial-and-error
/// behaviour Section 2.2 describes: mostly over-provisioned (to dodge
/// failures), sometimes under-provisioned on PS CPU or memory.
/// `rng` drives which flavour of mistake is made; `kind_out` (optional)
/// reports which one was drawn.
JobConfig UserMisconfiguredConfig(ModelKind kind, Rng& rng,
                                  MisconfigKind* kind_out = nullptr);

}  // namespace dlrover

#endif  // DLROVER_BASELINES_MANUAL_H_
