#include "baselines/optimus.h"

#include <algorithm>

#include "perfmodel/profile_ingest.h"

namespace dlrover {

std::optional<ResourcePlan> OptimusPolicy::Propose(TrainingJob& job) {
  if (job.state() != JobState::kRunning) return std::nullopt;

  PerJobState& state = states_[&job];
  if (state.model == nullptr) {
    // Lookup-blind model: embedding_dim forced to zero removes the T_emb
    // basis term entirely (see header).
    state.model = std::make_unique<ThroughputModel>(
        job.model_profile().dense_param_bytes, /*embedding_dim=*/0,
        job.environment().network_bandwidth);
    state.fitter = std::make_unique<ModelFitter>(*state.model);
  }
  IngestJobHistory(job, &state.cursor, state.fitter.get());
  if (state.fitter->ReadyToFit()) {
    auto fitted = state.fitter->Fit();
    if (fitted.ok()) {
      state.params = *fitted;
      state.fitted = true;
    }
  }
  // Score the previous adjustment: if it realized far less than predicted
  // (the lookup-blind model's systematic error on DLRMs), count a
  // disappointment and eventually stop churning the job.
  const double smoothed = job.SmoothedThroughput();
  if (state.predicted_after_last_plan > 0.0 && smoothed > 0.0) {
    const double predicted_gain =
        state.predicted_after_last_plan - state.throughput_before_last_plan;
    const double realized_gain = smoothed - state.throughput_before_last_plan;
    if (predicted_gain > 0.0 && realized_gain < 0.3 * predicted_gain) {
      ++state.disappointments;
    }
    state.predicted_after_last_plan = -1.0;
  }
  if (state.disappointments >= options_.max_disappointments) {
    return std::nullopt;
  }

  if (!state.fitted) {
    // Bootstrap: before its model is fittable (it needs more than one
    // configuration shape), Optimus grows by its default action of adding
    // one worker.
    if (state.fitter->observation_count() < 2) return std::nullopt;
    if (job.config().num_workers + 1 > options_.max_workers) {
      return std::nullopt;
    }
    ResourcePlan plan;
    plan.config = job.config();
    ++plan.config.num_workers;
    plan.mode = MigrationMode::kStopAndRestart;
    return plan;
  }

  const JobConfig& current = job.config();
  const double base = state.model->PredictThroughput(
      state.params, job.spec().batch_size, current);

  // Gains must clear both an absolute floor and a relative one: Optimus
  // stops once marginal pods stop paying for themselves.
  double best_gain = std::max(options_.min_gain, 0.05 * base);
  std::optional<JobConfig> best;

  if (current.num_workers + 1 <= options_.max_workers) {
    JobConfig plus_worker = current;
    ++plus_worker.num_workers;
    const double gain = state.model->PredictThroughput(
                            state.params, job.spec().batch_size,
                            plus_worker) - base;
    if (gain > best_gain) {
      best_gain = gain;
      best = plus_worker;
    }
  }
  if (current.num_ps + 1 <= options_.max_ps) {
    JobConfig plus_ps = current;
    ++plus_ps.num_ps;
    const double gain = state.model->PredictThroughput(
                            state.params, job.spec().batch_size, plus_ps) -
                        base;
    if (gain > best_gain) {
      best_gain = gain;
      best = plus_ps;
    }
  }
  if (!best.has_value()) return std::nullopt;

  ResourcePlan plan;
  plan.config = *best;
  // Optimus redeploys the job to apply a plan and does not model the
  // transition cost (paper Section 7).
  plan.mode = MigrationMode::kStopAndRestart;
  state.throughput_before_last_plan = smoothed;
  state.predicted_after_last_plan = base + best_gain;
  return plan;
}

}  // namespace dlrover
