#include "baselines/manual.h"

#include <algorithm>
#include <cmath>

#include "ps/iteration_model.h"

namespace dlrover {

namespace {
// Per-job CPU quota a careful user would tune within on the small cluster.
constexpr Cores kTuningQuota = 300.0;
// Default step budget used for sizing PS memory to the final table size.
constexpr double kDefaultSamples = 200000.0 * 512.0;
}  // namespace

namespace {

JobConfig TuneConfigFor(ModelKind kind) {
  const ModelProfile profile = GetModelProfile(kind);
  const EnvironmentProfile env;
  const uint64_t batch = 512;

  JobConfig best;
  double best_throughput = -1.0;
  for (int w = 4; w <= 40; w += 2) {
    for (int p = 2; p <= 8; ++p) {
      for (Cores lw : {4.0, 6.0, 8.0, 10.0, 12.0, 16.0}) {
        for (Cores lp : {2.0, 4.0, 6.0, 8.0}) {
          JobConfig config;
          config.num_workers = w;
          config.num_ps = p;
          config.worker_cpu = lw;
          config.ps_cpu = lp;
          if (config.TotalCpu() > kTuningQuota) continue;
          const IterationBreakdown iter =
              ComputeHealthyIteration(profile, env, batch, config);
          const double psi = ThroughputSamplesPerSec(iter, batch, w);
          if (psi > best_throughput) {
            best_throughput = psi;
            best = config;
          }
        }
      }
    }
  }
  // Memory sized to the final embedding table with ~30% headroom.
  const Bytes final_emb = profile.EmbeddingBytesAt(kDefaultSamples);
  best.worker_memory = profile.worker_static_bytes + GiB(1);
  best.ps_memory =
      profile.ps_static_bytes + final_emb / best.num_ps * 1.3 + GiB(1);
  return best;
}

}  // namespace

JobConfig WellTunedConfig(ModelKind kind) {
  // Manual tuning converges (after many reruns) to the best throughput the
  // ground-truth laws admit within the quota; reproduce that with a grid
  // search (TuneConfigFor). This is the "well-tuned" reference of Fig 7.
  // Cached for all three models behind a magic static so concurrent
  // scenario sweeps can call this from any thread: the old per-slot lazy
  // cache had a check-then-write race.
  static const JobConfig tuned[3] = {TuneConfigFor(ModelKind::kWideDeep),
                                     TuneConfigFor(ModelKind::kXDeepFm),
                                     TuneConfigFor(ModelKind::kDcn)};
  return tuned[static_cast<int>(kind)];
}

JobConfig TypicalUserStart(ModelKind kind) {
  JobConfig config = WellTunedConfig(kind);
  config.num_workers = std::max(2, config.num_workers / 2);
  config.num_ps = std::max(1, config.num_ps / 2);
  return config;
}

JobConfig UserMisconfiguredConfig(ModelKind kind, Rng& rng,
                                  MisconfigKind* kind_out) {
  JobConfig config = WellTunedConfig(kind);
  const double dice = rng.Uniform();
  if (kind_out != nullptr) {
    *kind_out = dice < 0.55   ? MisconfigKind::kOverProvisioned
                : dice < 0.75 ? MisconfigKind::kUnderProvisionedWorkers
                : dice < 0.92 ? MisconfigKind::kStarvedPsCpu
                              : MisconfigKind::kStarvedPsMemory;
  }
  // Universal behaviour first (Section 2.2): users over-request per-pod
  // CPU and memory "to be safe" — beyond the op-parallelism limits this
  // only craters utilisation, it does not speed anything up.
  config.worker_cpu =
      std::min(28.0, config.worker_cpu * rng.Uniform(2.0, 3.5));
  config.ps_cpu = std::min(28.0, config.ps_cpu * rng.Uniform(1.8, 3.0));
  config.worker_memory *= rng.Uniform(3.0, 6.0);
  config.ps_memory *= rng.Uniform(2.5, 5.0);
  // PS replicas get padded too, spreading the update/lookup work thin.
  config.num_ps = std::min(
      12, static_cast<int>(std::ceil(config.num_ps * rng.Uniform(1.2, 1.8))));

  // Then the class-specific mistake.
  if (dice < 0.55) {
    // Pure over-provisioning: nothing else wrong, just waste.
  } else if (dice < 0.75) {
    // Too few workers: the job limps along well under the achievable
    // throughput (these dominate the JCT gains of Fig 15).
    config.num_workers = std::max(
        2, static_cast<int>(config.num_workers * rng.Uniform(0.4, 0.7)));
  } else if (dice < 0.92) {
    // Under-provisioned PS CPU: hot PSes, long lookups (6% of jobs in
    // Fig 15 are CPU-starved on PSes).
    config.ps_cpu = std::max(1.0, WellTunedConfig(kind).ps_cpu *
                                      rng.Uniform(0.25, 0.5));
  } else {
    // Under-provisioned PS memory: sized for the table as it looks early
    // in training; the embedding growth blows through it mid-run (OOM).
    const ModelProfile profile = GetModelProfile(kind);
    const Bytes need_per_ps =
        profile.ps_static_bytes +
        profile.EmbeddingBytesAt(kDefaultSamples) / config.num_ps;
    config.ps_memory = need_per_ps * rng.Uniform(0.45, 0.75);
  }
  return config;
}

}  // namespace dlrover
