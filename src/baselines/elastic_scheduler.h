#ifndef DLROVER_BASELINES_ELASTIC_SCHEDULER_H_
#define DLROVER_BASELINES_ELASTIC_SCHEDULER_H_

#include <map>

#include "brain/scaling_policy.h"

namespace dlrover {

struct ElasticSchedulerOptions {
  /// Fixed number of workers added/removed per adjustment (the paper notes
  /// ES changes a fixed number of nodes each time).
  int step = 2;
  /// Relative throughput improvement required to keep scaling in the same
  /// direction.
  double improve_threshold = 0.04;
  int min_workers = 2;
  int max_workers = 40;
  /// After stalling, re-probe upward every this many rounds.
  int reprobe_rounds = 5;
};

/// Baseline: Elastic Scheduler (Or et al., MLSys'20) as characterized in
/// the paper — scales *workers only*, by a fixed step, using hill climbing
/// on observed throughput. It never touches parameter servers or per-pod
/// CPU, so PS-side bottlenecks (updates, lookups) go unaddressed; that is
/// the gap DLRover-RM's lookup-aware model exploits.
class ElasticSchedulerPolicy : public ScalingPolicy {
 public:
  explicit ElasticSchedulerPolicy(const ElasticSchedulerOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "elastic-scheduler"; }
  std::optional<ResourcePlan> Propose(TrainingJob& job) override;

 private:
  struct PerJobState {
    double last_throughput = 0.0;
    int last_workers = 0;
    int direction = +1;
    bool stalled = false;
    int rounds_since_change = 0;
  };

  ElasticSchedulerOptions options_;
  std::map<const TrainingJob*, PerJobState> states_;
};

}  // namespace dlrover

#endif  // DLROVER_BASELINES_ELASTIC_SCHEDULER_H_
