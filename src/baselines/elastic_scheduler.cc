#include "baselines/elastic_scheduler.h"

#include <algorithm>

namespace dlrover {

std::optional<ResourcePlan> ElasticSchedulerPolicy::Propose(TrainingJob& job) {
  if (job.state() != JobState::kRunning) return std::nullopt;
  const double throughput = job.SmoothedThroughput();
  if (throughput <= 0.0) return std::nullopt;

  PerJobState& state = states_[&job];
  const int workers = job.config().num_workers;

  auto make_plan = [&](int new_workers) -> std::optional<ResourcePlan> {
    new_workers =
        std::clamp(new_workers, options_.min_workers, options_.max_workers);
    if (new_workers == workers) return std::nullopt;
    ResourcePlan plan;
    plan.config = job.config();
    plan.config.num_workers = new_workers;
    plan.mode = MigrationMode::kSeamless;
    state.last_throughput = throughput;
    state.last_workers = workers;
    state.rounds_since_change = 0;
    return plan;
  };

  if (state.last_workers == 0) {
    // First observation: probe upward.
    return make_plan(workers + options_.step);
  }

  ++state.rounds_since_change;
  if (state.stalled) {
    if (state.rounds_since_change >= options_.reprobe_rounds) {
      state.stalled = false;
      state.direction = +1;
      return make_plan(workers + options_.step);
    }
    return std::nullopt;
  }

  const double improvement =
      (throughput - state.last_throughput) /
      std::max(1e-9, state.last_throughput);
  const bool grew = workers > state.last_workers;
  const bool shrank = workers < state.last_workers;

  if ((grew && improvement >= options_.improve_threshold) ||
      (shrank && improvement >= -options_.improve_threshold / 2)) {
    // The move paid off (or shrinking was ~free): continue this direction.
    return make_plan(workers + state.direction * options_.step);
  }
  if (grew) {
    // Growth stopped paying: give the resources back and stall.
    state.stalled = true;
    state.direction = -1;
    return make_plan(workers - options_.step);
  }
  // Shrinking hurt: grow back and stall there.
  state.stalled = true;
  state.direction = +1;
  return make_plan(workers + options_.step);
}

}  // namespace dlrover
