#ifndef DLROVER_TRACE_WORKLOAD_GEN_H_
#define DLROVER_TRACE_WORKLOAD_GEN_H_

#include <string>
#include <vector>

#include "brain/config_db.h"
#include "common/rng.h"
#include "common/units.h"
#include "ps/training_job.h"

namespace dlrover {

/// One job of a synthetic production trace.
struct GeneratedJob {
  JobMetadata meta;
  JobSpec spec;
  SimTime arrival = 0.0;
  /// Whether this job would hit a hot PS (imbalanced parameter shares),
  /// per the paper's report that ~13% of production jobs do.
  bool hot_ps = false;
  /// Job scale relative to the full well-tuned allocation: the production
  /// mix spans small (<100 CPU) and large (>=100 CPU) jobs (Fig 14 buckets
  /// completion rates by this).
  double size_factor = 1.0;
  /// The user's worker-count quota implied by the size.
  int max_workers = 40;
};

/// Knobs for the synthetic AntGroup-like workload. Defaults follow the
/// published statistics: model mix over Wide&Deep/xDeepFM/DCN, step budgets
/// around 200k, ~13% hot-PS-prone jobs, Poisson arrivals.
struct WorkloadOptions {
  int num_jobs = 40;
  Duration arrival_span = Hours(6);
  double hot_ps_fraction = 0.13;
  /// Fraction of jobs whose user-declared model size is badly wrong
  /// (drives warm-start quality spread).
  double noisy_metadata_fraction = 0.2;
  int num_users = 8;
  /// Fraction of small jobs (<100 CPUs); the rest are large.
  double small_fraction = 0.55;
  uint64_t min_steps = 120000;
  uint64_t max_steps = 260000;
  uint64_t seed = 2024;
};

/// Generates a deterministic synthetic job trace.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadOptions& options)
      : options_(options) {}

  std::vector<GeneratedJob> Generate() const;

 private:
  WorkloadOptions options_;
};

}  // namespace dlrover

#endif  // DLROVER_TRACE_WORKLOAD_GEN_H_
