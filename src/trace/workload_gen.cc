#include "trace/workload_gen.h"

#include <algorithm>

#include "ps/model_profile.h"

namespace dlrover {

std::vector<GeneratedJob> WorkloadGenerator::Generate() const {
  Rng rng(options_.seed);
  std::vector<GeneratedJob> jobs;
  jobs.reserve(static_cast<size_t>(options_.num_jobs));

  for (int i = 0; i < options_.num_jobs; ++i) {
    GeneratedJob job;

    // Model mix: Wide&Deep-style models dominate CTR workloads.
    const double mix = rng.Uniform();
    ModelKind kind = ModelKind::kWideDeep;
    if (mix > 0.45 && mix <= 0.72) kind = ModelKind::kXDeepFm;
    if (mix > 0.72) kind = ModelKind::kDcn;

    const ModelProfile profile = GetModelProfile(kind);

    job.meta.user = "user-" + std::to_string(rng.UniformInt(
                                  static_cast<uint64_t>(options_.num_users)));
    job.meta.model = kind;
    job.meta.batch_size = 512;
    job.meta.total_steps = static_cast<uint64_t>(rng.UniformInt(
        static_cast<int64_t>(options_.min_steps),
        static_cast<int64_t>(options_.max_steps)));
    const double total_samples = static_cast<double>(job.meta.total_steps) *
                                 static_cast<double>(job.meta.batch_size);
    job.meta.declared_model_bytes =
        profile.dense_param_bytes + profile.EmbeddingBytesAt(total_samples);
    if (rng.Bernoulli(options_.noisy_metadata_fraction)) {
      job.meta.declared_model_bytes *= rng.LogNormal(1.0, 0.8);
    }

    job.spec.name = "trace-job-" + std::to_string(i);
    job.spec.model = kind;
    job.spec.batch_size = job.meta.batch_size;
    job.spec.total_steps = job.meta.total_steps;
    job.spec.seed = options_.seed * 1000003ull + static_cast<uint64_t>(i);

    job.hot_ps = rng.Bernoulli(options_.hot_ps_fraction);
    if (rng.Bernoulli(options_.small_fraction)) {
      job.size_factor = rng.Uniform(0.2, 0.4);
    } else {
      job.size_factor = rng.Uniform(0.5, 1.0);
    }
    job.max_workers =
        std::max(4, static_cast<int>(40.0 * job.size_factor));
    job.arrival = rng.Uniform(0.0, options_.arrival_span);
    jobs.push_back(std::move(job));
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const GeneratedJob& a, const GeneratedJob& b) {
              return a.arrival < b.arrival;
            });
  return jobs;
}

}  // namespace dlrover
