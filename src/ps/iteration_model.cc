#include "ps/iteration_model.h"

#include <algorithm>
#include <cassert>

namespace dlrover {

PsGroupState PsGroupState::Balanced(int p) {
  PsGroupState state;
  state.shares.assign(static_cast<size_t>(p), 1.0 / std::max(1, p));
  state.speeds.assign(static_cast<size_t>(p), 1.0);
  return state;
}

double PsGroupState::EffectiveInverseP() const {
  assert(shares.size() == speeds.size() && !shares.empty());
  double worst = 0.0;
  for (size_t i = 0; i < shares.size(); ++i) {
    const double speed = std::max(1e-6, speeds[i]);
    worst = std::max(worst, shares[i] / speed);
  }
  return worst;
}

IterationBreakdown ComputeIteration(const ModelProfile& profile,
                                    const EnvironmentProfile& env,
                                    uint64_t batch_size, int active_workers,
                                    const JobConfig& config,
                                    double worker_speed,
                                    const PsGroupState& ps_state) {
  IterationBreakdown out;
  const double m = static_cast<double>(batch_size);
  const double w = std::max(1, active_workers);
  const double lw =
      std::min(std::max(0.1, config.worker_cpu),
               profile.max_worker_parallelism) *
      std::max(1e-3, worker_speed);
  const double lp = std::min(std::max(0.1, config.ps_cpu),
                             profile.max_ps_parallelism);
  // For a balanced healthy group inv_p == 1/p, recovering Eqns 3-5 exactly;
  // imbalance ("hot PS") or a degraded PS raises it.
  const double inv_p = ps_state.EffectiveInverseP();

  // Eqn 2: T_grad = alpha * m / lambda_w + beta.
  out.t_grad = profile.alpha_grad * m / lw + profile.beta_grad;
  // Eqn 3: T_upd = alpha * w / (p * lambda_p) + beta.
  out.t_upd = profile.alpha_upd * w * inv_p / lp + profile.beta_upd;
  // Eqn 4: T_sync = alpha * (M/p) / (B/w) + beta.
  out.t_sync = profile.alpha_sync * profile.dense_param_bytes * inv_p * w /
                   env.network_bandwidth +
               profile.beta_sync;
  // Eqn 5: T_emb = alpha * m * D / p + beta, with 1/p generalized to
  // max_i(share_i / speed_i) for imbalanced or degraded PS groups.
  out.t_emb = profile.alpha_emb * m *
                  static_cast<double>(profile.embedding_dim) * inv_p +
              profile.beta_emb;
  return out;
}

IterationBreakdown ComputeHealthyIteration(const ModelProfile& profile,
                                           const EnvironmentProfile& env,
                                           uint64_t batch_size,
                                           const JobConfig& config) {
  return ComputeIteration(profile, env, batch_size, config.num_workers,
                          config, 1.0, PsGroupState::Balanced(config.num_ps));
}

double ThroughputSamplesPerSec(const IterationBreakdown& iter,
                               uint64_t batch_size, int active_workers) {
  const double total = iter.Total();
  if (total <= 0.0) return 0.0;
  return static_cast<double>(active_workers) *
         static_cast<double>(batch_size) / total;
}

}  // namespace dlrover
